# Standard local gate: `make check` is what CI runs and what every change
# should pass before review. Individual steps are available as targets.
#
#   make lint   runs zslint, the repo-specific static checks (docs/lint.md);
#               machine-readable output: $(GO) run ./cmd/zslint -json ./...

GO ?= go

.PHONY: check fmt vet build test race bench lint

check: fmt vet build race lint

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# zslint enforces the //zerosum:* conventions: hot-path purity, error
# handling in the sampling tiers, goroutine lifecycles, wire codec
# synchronization, and injected clocks. See docs/lint.md.
lint:
	$(GO) run ./cmd/zslint ./...
