# Standard local gate: `make check` is what CI runs and what every change
# should pass before review. Individual steps are available as targets.
#
#   make lint   runs zslint, the repo-specific static checks (docs/lint.md);
#               machine-readable output: $(GO) run ./cmd/zslint -json ./...

GO ?= go

.PHONY: check fmt vet build test race bench bench-record lint lint-baseline lint-self chaos chaos-tree chaos-multijob fuzz golden golden-update

check: fmt vet build race lint lint-self chaos chaos-tree chaos-multijob fuzz golden

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the root-package benchmark suite (the paper-evaluation harness
# in bench_test.go) and gates it against the committed baseline: a benchmark
# more than 20% slower in ns/op, or more than 0.1% over its allocs/op
# baseline (exact for the small deterministic hot-path counts), fails.
# The -zero-alloc pass additionally asserts the sampling and wire hot paths
# report exactly 0 allocs/op, independent of any recorded baseline.
# After an intentional performance change, refresh the baseline with
# `make bench-record` and commit it. docs/perf.md explains the budgets.
BENCH_BASELINE ?= BENCH_PR10.json
ZERO_ALLOC_BENCHES ?= BenchmarkMonitorTick,BenchmarkAdaptiveTick,BenchmarkWireEncodeDecode,BenchmarkWireV4EncodeDecode
bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee bench.out
	$(GO) run ./cmd/zsbench -zero-alloc $(ZERO_ALLOC_BENCHES) bench.out
	$(GO) run ./cmd/zsbench -baseline $(BENCH_BASELINE) bench.out

bench-record:
	$(GO) test -run '^$$' -bench . -benchmem . | tee bench.out
	$(GO) run ./cmd/zsbench -record $(BENCH_BASELINE) \
		-note "recorded by make bench-record; see docs/perf.md" bench.out

# zslint enforces the //zerosum:* conventions: hot-path purity, error
# handling in the sampling tiers, goroutine lifecycles, wire codec
# synchronization, injected clocks, and the dataflow concurrency checks
# (guardedby, lockorder, atomic, goroutinestop). See docs/lint.md.
# Findings are ratcheted against lint-baseline.json: only NEW findings
# fail; after fixing or deliberately accepting one, refresh with
# `make lint-baseline` and commit the file.
lint:
	$(GO) run ./cmd/zslint -time -diff lint-baseline.json ./...

lint-baseline:
	$(GO) run ./cmd/zslint -baseline lint-baseline.json ./...

# lint-self runs zslint's fixture self-test: every check replayed over its
# testdata package and compared against the golden diagnostics.
lint-self:
	$(GO) run ./cmd/zslint -self ./...

# chaos runs the multi-agent fault-injection soak (docs/chaos.md) across a
# range of seeds under the race detector. A failure prints the seed that
# reproduces it: go test ./internal/chaos -run TestChaosSoak -seed=<N>
CHAOS_SEEDS ?= 10
chaos:
	$(GO) test ./internal/chaos -race -run TestChaosSoak -seeds=$(CHAOS_SEEDS)

# chaos-tree runs the aggregation-tree soak (docs/aggregation.md): agents
# hashed over a leaf tier under one root, with leaf crashes, a root bounce,
# and tier-by-tier conservation audits. Replay a failure with its seed:
#   go test ./internal/chaos -run TestTreeSoak -seed=<N>
chaos-tree:
	$(GO) test ./internal/chaos -race -run TestTreeSoak -seeds=$(CHAOS_SEEDS)

# chaos-multijob runs the multi-job isolation soak (docs/scenarios.md): a
# scenario-generated fleet of 100+ jobs with colliding (node, rank, TID)
# tuples streamed concurrently through a 3-leaf tree under leaf crashes,
# with per-job conservation, summary byte-identity, and no-bleed audits.
# Replay a failure with its seed:
#   go test ./internal/chaos -run TestMultiJobSoak -seed=<N>
chaos-multijob:
	$(GO) test ./internal/chaos -race -run TestMultiJobSoak -seeds=$(CHAOS_SEEDS)

# fuzz smoke-runs each native fuzz target for FUZZTIME on top of its
# checked-in seed corpus (testdata/fuzz/). Longer exploratory runs:
#   make fuzz FUZZTIME=10m
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/aggd -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/aggd -run '^$$' -fuzz FuzzRollupFrameDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/proc -run '^$$' -fuzz FuzzProcStatParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/export -run '^$$' -fuzz FuzzHeatmapParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs -run '^$$' -fuzz FuzzObsSpanDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/tsdb -run '^$$' -fuzz FuzzTSDBBlockDecode -fuzztime $(FUZZTIME)

# golden gates the end-of-run report layout (paper Listing 2, including the
# §3.3 stalled column) against internal/report/testdata/. After reviewing an
# intentional layout change, refresh with `make golden-update` and commit.
golden:
	$(GO) test ./internal/report -run TestGolden

golden-update:
	$(GO) test ./internal/report -run TestGolden -update
