# Standard local gate: `make check` is what CI runs and what every change
# should pass before review. Individual steps are available as targets.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
