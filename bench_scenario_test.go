package zerosum

// Multi-job scenario benchmarks (PR 10): the fairness scheduler's
// event-step cost over the fleet preset, and the aggregator's ingest
// throughput when many jobs' colliding streams share one server — the two
// hot paths the multi-job soak leans on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"zerosum/internal/aggd"
	"zerosum/internal/scenario"
	"zerosum/internal/scenario/fairness"
)

// BenchmarkScenarioStep measures the scheduler's per-event cost: one op is
// one discrete-event step (submit, admit, preempt, or finish with its
// fair-share rebalancing) of the 120-job fleet preset, re-loading the same
// generated population whenever a run drains.
func BenchmarkScenarioStep(b *testing.B) {
	cfg, err := scenario.Preset("fleet")
	if err != nil {
		b.Fatal(err)
	}
	gen, err := scenario.NewGenerator(cfg, 42)
	if err != nil {
		b.Fatal(err)
	}
	specs := gen.Generate()
	var res *scenario.Result
	b.ReportAllocs()
	b.ResetTimer()
	for steps := 0; steps < b.N; {
		sch, err := scenario.NewScheduler(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sch.Load(specs)
		for sch.Step() {
			steps++
		}
		res = sch.Finish()
	}
	b.StopTimer()
	rep := fairness.Compute(res)
	if got, want := rep.CPUTimeAllocatedSec, rep.CPUTimeUsedSec; math.Abs(got-want) > 1e-6*want+1e-9 {
		b.Fatalf("schedule does not conserve CPU time: allocated %v, used %v", got, want)
	}
	b.ReportMetric(float64(len(res.Events)), "events/run")
	b.ReportMetric(float64(res.HorizonSec), "horizon_s")
}

// BenchmarkMultiJobIngest measures aggregator throughput when 8 jobs post
// concurrently with deliberately colliding (node, rank, TID) identities —
// the per-job isolation paths (job-keyed dedup, stores, and TSDB) under
// contention. One op is one 256-event batch admitted.
func BenchmarkMultiJobIngest(b *testing.B) {
	const jobs = 8
	const batchSize = 256
	srv := aggd.NewServer(aggd.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = jobs
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			client := ts.Client()
			// Same node and rank 0 in every job: isolation is keyed on the
			// job dimension alone.
			batch := benchBatch(0, batchSize)
			batch.Origin.Job = fmt.Sprintf("mj-%02d", j)
			var frame []byte
			var seq uint64
			for next.Add(1) <= int64(b.N) {
				batch.Seq = seq
				seq++
				var err error
				frame, err = aggd.AppendBatchFrame(frame[:0], batch)
				if err != nil {
					errc <- err
					return
				}
				resp, err := client.Post(ts.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					errc <- fmt.Errorf("ingest returned %s", resp.Status)
					return
				}
			}
		}(j)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*batchSize/secs, "events/s")
	}
	if st := srv.Stats(); st.IngestBatches != uint64(b.N) || st.DupBatches != 0 || st.IngestErrors != 0 {
		b.Fatalf("server stats after %d posts: %+v", b.N, st)
	}
	// The per-job censuses must close over the global counter — the same
	// no-bleed identity the chaos soak audits, here under full contention.
	resp, err := http.Get(ts.URL + "/api/jobs")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var list []aggd.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		b.Fatal(err)
	}
	var sum uint64
	for _, ji := range list {
		sum += ji.Events
	}
	if sum != uint64(b.N)*batchSize {
		b.Fatalf("per-job censuses sum to %d events, server admitted %d", sum, uint64(b.N)*batchSize)
	}
}
