package zerosum

// The benchmark harness regenerates every table and figure from the
// paper's evaluation (§4) as a testing.B benchmark, reporting the headline
// shape numbers as custom metrics alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// Benchmarks run the experiments at a reduced scale so the full suite
// completes in seconds; `go run ./cmd/experiments` runs them at paper
// scale and prints the complete paper-vs-measured comparison.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/experiments"
	"zerosum/internal/export"
	"zerosum/internal/report"
)

const benchScale = 0.1

// BenchmarkListing1Topology regenerates the Listing 1 hwloc output.
func BenchmarkListing1Topology(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Listing1())
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkListing2Report regenerates the full GPU-offload report.
func BenchmarkListing2Report(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Listing2(0.02, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		if err := report.Write(&sb, tr.Snapshot, report.Options{Memory: true}); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkTable1Default regenerates Table 1 (the misconfigured default
// launch) and reports the per-thread nvctx magnitude.
func BenchmarkTable1Default(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Table1(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var maxNV uint64
			for _, l := range tr.Snapshot.LWPs {
				if l.NVCtx > maxNV {
					maxNV = l.NVCtx
				}
			}
			b.ReportMetric(tr.WallSeconds, "sim_s")
			b.ReportMetric(float64(maxNV), "max_nvctx")
		}
	}
}

// BenchmarkTable2Cores7 regenerates Table 2 (-c7, unbound threads).
func BenchmarkTable2Cores7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Table2(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkTable3Spread regenerates Table 3 (-c7 + spread/cores binding)
// and reports the T1/T3 speedup factor, the paper's headline comparison.
func BenchmarkTable3Spread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3, err := experiments.Table3(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t1, err := experiments.Table1(benchScale, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(t1.WallSeconds/t3.WallSeconds, "T1/T3_ratio")
			b.ReportMetric(t3.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkFigure5Heatmap regenerates the 512-rank communication heatmap
// and reports the nearest-neighbour band fraction.
func BenchmarkFigure5Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm, _, err := experiments.Figure5(512, 0.2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := hm.WritePGM(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(hm.BandFraction(1), "nn_band_frac")
		}
	}
}

// BenchmarkFigure6LWPSeries regenerates the per-thread utilization series.
func BenchmarkFigure6LWPSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Figures6And7(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := sr.LWP.WriteTSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sr.LWPNoisiness, "noisiness")
		}
	}
}

// BenchmarkFigure7HWTSeries regenerates the per-core utilization series.
func BenchmarkFigure7HWTSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Figures6And7(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := sr.HWT.WriteTSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sr.HWTNoisiness, "noisiness")
		}
	}
}

// BenchmarkFigure8Overhead runs the reduced overhead experiment (3 runs per
// side per scenario) and reports both scenarios' overhead fractions.
func BenchmarkFigure8Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scens, err := experiments.Figure8(3, 0.2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(scens[0].OverheadFrac*100, "overhead_1t_pct")
			b.ReportMetric(scens[1].OverheadFrac*100, "overhead_2t_pct")
		}
	}
}

// BenchmarkMonitorTick measures one sampling pass of the monitor itself
// against the live /proc of this host — the per-tick cost underlying the
// paper's <0.5% overhead claim.
func BenchmarkMonitorTick(b *testing.B) {
	mon, err := MonitorSelf(MonitorConfig{KeepSeries: false})
	if err != nil {
		b.Skip("no live /proc:", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mon.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveTick measures the sampling pass with per-LWP adaptive
// sampling enabled, against the live /proc of this host. Most of this
// process's threads are parked in the Go runtime, so after the EWMA
// settles the majority of per-tick scans are skipped; the delta versus
// BenchmarkMonitorTick is the tentpole saving, and skips/tick reports how
// much of the thread set went quiescent.
func BenchmarkAdaptiveTick(b *testing.B) {
	mon, err := MonitorSelf(MonitorConfig{
		KeepSeries: false,
		Adaptive:   AdaptiveConfig{Enabled: true},
	})
	if err != nil {
		b.Skip("no live /proc:", err)
	}
	// Settle the EWMA so the measured region reflects steady state.
	for i := 0; i < 4; i++ {
		if err := mon.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	skips0 := mon.AdaptiveSkips()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mon.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(mon.AdaptiveSkips()-skips0)/float64(b.N), "skips/tick")
}

// BenchmarkStreamPublish measures the monitor-side cost of publishing one
// sample event, extending the paper's overhead claim (§4.1) to the network
// export path: attaching an aggd node agent must keep Publish on an O(ns)
// enqueue — no allocation, no I/O — so that streaming to an aggregator
// costs no more than ~2x a detached stream.
func BenchmarkStreamPublish(b *testing.B) {
	ev := export.Event{
		Kind:    export.EventLWP,
		TimeSec: 1.0,
		LWP:     &export.LWPSample{TID: 42, Kind: "Main", State: 'R', UserPct: 90, CPU: 3},
	}
	b.Run("Detached", func(b *testing.B) {
		var s export.Stream
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Publish(ev)
		}
	})
	b.Run("NoopSubscriber", func(b *testing.B) {
		var s export.Stream
		s.Subscribe(func(export.Event) {})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Publish(ev)
		}
	})
	b.Run("AgentAttached", func(b *testing.B) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
		}))
		defer ts.Close()
		agent, err := aggd.NewAgent(aggd.AgentConfig{
			URL: ts.URL, Job: "bench", Node: "n0", Rank: 0,
			RingCap: 1 << 14, FlushInterval: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer agent.Close()
		var s export.Stream
		agent.Attach(&s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Publish(ev)
		}
	})
}

// benchBatch builds one rank's 512-event LWP/HWT/Mem shipment, the batch
// shape both wire and ingest benchmarks round-trip.
func benchBatch(rank, batchSize int) *aggd.Batch {
	batch := &aggd.Batch{Origin: aggd.Origin{Job: "bench", Node: "n0", Rank: rank}, Epoch: 1}
	for i := 0; i < batchSize; i++ {
		t := float64(i) * 0.001
		switch i % 3 {
		case 0:
			batch.Events = append(batch.Events, export.Event{
				Kind: export.EventLWP, TimeSec: t,
				LWP: &export.LWPSample{TID: 100 + i, Kind: "OpenMP", State: 'R', UserPct: 98, NVCtx: uint64(i), CPU: i % 8},
			})
		case 1:
			batch.Events = append(batch.Events, export.Event{
				Kind: export.EventHWT, TimeSec: t,
				HWT: &export.HWTSample{CPU: i % 8, UserPct: 90, SysPct: 5, IdlePct: 5},
			})
		default:
			batch.Events = append(batch.Events, export.Event{
				Kind: export.EventMem, TimeSec: t,
				Mem: &export.MemSample{FreeKB: 1 << 20, ProcRSSKB: 1 << 18},
			})
		}
	}
	return batch
}

// BenchmarkWireEncodeDecode measures a round trip of one 512-event batch
// through the aggregation wire format (the per-batch cost the node agent
// and aggregator pay off the sampling hot path).
func BenchmarkWireEncodeDecode(b *testing.B) {
	const batchSize = 512
	batch := benchBatch(0, batchSize)
	batch.Seq = 1
	frame, err := aggd.EncodeBatchFrame(batch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	buf := make([]byte, 0, len(frame))
	var bb aggd.BatchBuf // reused decode arena, as the ingest path pools them
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = aggd.AppendBatchFrame(buf[:0], batch)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := aggd.DecodeBatchPayloadInto(buf[aggd.FrameHeaderLen:], &bb)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec.Events) != batchSize {
			b.Fatalf("decoded %d events", len(dec.Events))
		}
	}
	b.ReportMetric(float64(len(frame))/batchSize, "bytes/event")
}

// BenchmarkWireV4EncodeDecode pins the v4 wire format explicitly (v4 is
// the current version, so BenchmarkWireEncodeDecode measures the same path
// today; this one keeps measuring v4 if the default ever moves on). The
// round trip must stay allocation-free: encode reuses the caller's buffer
// and decode lands in a pooled BatchBuf arena.
func BenchmarkWireV4EncodeDecode(b *testing.B) {
	const batchSize = 512
	batch := benchBatch(0, batchSize)
	batch.Seq = 1
	frame, err := aggd.AppendBatchFrameVersion(nil, batch, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	buf := make([]byte, 0, len(frame))
	var bb aggd.BatchBuf
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = aggd.AppendBatchFrameVersion(buf[:0], batch, 4)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := aggd.DecodeBatchPayloadVersionInto(buf[aggd.FrameHeaderLen:], 4, &bb)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec.Events) != batchSize {
			b.Fatalf("decoded %d events", len(dec.Events))
		}
	}
	b.ReportMetric(float64(len(frame))/batchSize, "bytes/event")
}

// BenchmarkServerIngest measures aggregator ingest throughput with 8
// concurrent node agents each shipping 512-event batches as fast as the
// server accepts them — the job-wide collection load behind the paper's
// always-on monitoring claim. The Gzip variant includes the senders'
// compression cost, bounding the end-to-end path rather than isolating the
// server.
func BenchmarkServerIngest(b *testing.B) {
	const agents = 8
	const batchSize = 512
	run := func(b *testing.B, gz bool) {
		srv := aggd.NewServer(aggd.ServerConfig{})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		// Default transports idle only two connections per host; with 8
		// agents that measures TCP churn, not the server.
		ts.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = agents
		b.ReportAllocs()
		b.ResetTimer()
		var next atomic.Int64
		var wg sync.WaitGroup
		errc := make(chan error, agents)
		for rank := 0; rank < agents; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				client := ts.Client()
				batch := benchBatch(rank, batchSize)
				var frame []byte
				var zbuf bytes.Buffer
				zw := gzip.NewWriter(io.Discard)
				var seq uint64
				for next.Add(1) <= int64(b.N) {
					batch.Seq = seq
					seq++
					var err error
					frame, err = aggd.AppendBatchFrame(frame[:0], batch)
					if err != nil {
						errc <- err
						return
					}
					body, encoding := frame, ""
					if gz {
						zbuf.Reset()
						zw.Reset(&zbuf)
						if _, err := zw.Write(frame); err != nil {
							errc <- err
							return
						}
						if err := zw.Close(); err != nil {
							errc <- err
							return
						}
						body, encoding = zbuf.Bytes(), "gzip"
					}
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/ingest", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					if encoding != "" {
						req.Header.Set("Content-Encoding", encoding)
					}
					resp, err := client.Do(req)
					if err != nil {
						errc <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode/100 != 2 {
						errc <- fmt.Errorf("ingest returned %s", resp.Status)
						return
					}
				}
			}(rank)
		}
		wg.Wait()
		b.StopTimer()
		select {
		case err := <-errc:
			b.Fatal(err)
		default:
		}
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)*batchSize/secs, "events/s")
		}
		if st := srv.Stats(); st.IngestBatches != uint64(b.N) || st.DupBatches != 0 || st.IngestErrors != 0 {
			b.Fatalf("server stats after %d posts: %+v", b.N, st)
		}
	}
	b.Run("Plain", func(b *testing.B) { run(b, false) })
	b.Run("Gzip", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblations runs the design-choice ablation suite at reduced
// scale, reporting the bandwidth-model ratio gap it exists to justify.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abl, err := experiments.Ablations(2, 0.1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, a := range abl {
				if a.Name == "bandwidth-cap" {
					b.ReportMetric(a.With, "T1/T3_with_cap")
					b.ReportMetric(a.Without, "T1/T3_without_cap")
				}
			}
		}
	}
}

// TestStreamPublishZeroAlloc pins the hot-path contract as a test rather
// than a benchmark number someone has to read: publishing with a
// subscriber attached must not allocate. AllocsPerRun counts
// process-global mallocs, so the subscriber is a plain closure with no
// background machinery behind it.
func TestStreamPublishZeroAlloc(t *testing.T) {
	ev := export.Event{
		Kind:    export.EventLWP,
		TimeSec: 1.0,
		LWP:     &export.LWPSample{TID: 42, Kind: "Main", State: 'R', UserPct: 90, CPU: 3},
	}
	var s export.Stream
	delivered := 0
	s.Subscribe(func(export.Event) { delivered++ })
	if avg := testing.AllocsPerRun(1000, func() { s.Publish(ev) }); avg != 0 {
		t.Errorf("Stream.Publish allocates %.1f times per op with a subscriber attached, want 0", avg)
	}
	if delivered == 0 {
		t.Error("subscriber never ran")
	}
}

// BenchmarkRollupEncode measures the leaf→root re-framing cost: eight
// pre-merged 512-event batches encoded into one rollup frame and decoded
// back as the root's ingest path would, per iteration. The bytes/event
// metric is the tree's wire amplification over the flat batch framing.
func BenchmarkRollupEncode(b *testing.B) {
	const batches = 8
	const batchSize = 512
	ru := &aggd.RollupMsg{LeafID: "leaf-0:9100", LeafEpoch: 1}
	for r := 0; r < batches; r++ {
		batch := benchBatch(r, batchSize)
		batch.Seq = uint64(r)
		ru.Batches = append(ru.Batches, *batch)
	}
	frame, err := aggd.EncodeRollupFrame(ru)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	buf := make([]byte, 0, len(frame))
	for i := 0; i < b.N; i++ {
		ru.Seq = uint64(i)
		buf, err = aggd.AppendRollupFrame(buf[:0], ru)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := aggd.DecodeRollupPayload(buf[aggd.FrameHeaderLen:], aggd.WireVersion)
		if err != nil {
			b.Fatal(err)
		}
		if len(dec.Batches) != batches {
			b.Fatalf("decoded %d batches", len(dec.Batches))
		}
	}
	b.ReportMetric(float64(len(frame))/(batches*batchSize), "bytes/event")
}

// BenchmarkTreeIngest measures end-to-end tree throughput: four agents
// ship 512-event batches into a leaf aggregator that re-frames them as
// rollups to a root, and the run only passes if the root's admitted count
// conserves every event — so the number includes leaf admission, forward
// buffering, rollup framing, and root re-merge, not just the front door.
func BenchmarkTreeIngest(b *testing.B) {
	const agents = 4
	const batchSize = 512
	root := aggd.NewServer(aggd.ServerConfig{})
	rootTS := httptest.NewServer(root.Handler())
	defer rootTS.Close()
	leaf := aggd.NewServer(aggd.ServerConfig{Forward: &aggd.ForwardConfig{
		Upstream:      rootTS.URL,
		LeafID:        "bench-leaf",
		Epoch:         1,
		FlushInterval: 2 * time.Millisecond,
		MaxBuffered:   16 << 20,
		DisableGzip:   true,
	}})
	defer leaf.Close()
	leafTS := httptest.NewServer(leaf.Handler())
	defer leafTS.Close()
	leafTS.Client().Transport.(*http.Transport).MaxIdleConnsPerHost = agents

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, agents)
	for rank := 0; rank < agents; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client := leafTS.Client()
			batch := benchBatch(rank, batchSize)
			var frame []byte
			var seq uint64
			for next.Add(1) <= int64(b.N) {
				batch.Seq = seq
				seq++
				var err error
				frame, err = aggd.AppendBatchFrame(frame[:0], batch)
				if err != nil {
					errc <- err
					return
				}
				resp, err := client.Post(leafTS.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(frame))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode/100 != 2 {
					errc <- fmt.Errorf("leaf ingest returned %s", resp.Status)
					return
				}
			}
		}(rank)
	}
	wg.Wait()
	// Drain the forward buffer before the clock stops: the benchmark claims
	// delivered-to-root throughput, not accepted-at-leaf throughput.
	// Flush serializes with any in-flight shipment, so the books balance
	// once a flush returns with nothing left pending.
	for {
		if !leaf.Forwarder().Flush() {
			b.Fatalf("leaf flush failed: %+v", leaf.Forwarder().Stats())
		}
		fs := leaf.Forwarder().Stats()
		if fs.PendingEvents == 0 && fs.EnqueuedEvents == fs.AckedEvents+fs.DroppedEvents {
			break
		}
	}
	b.StopTimer()
	select {
	case err := <-errc:
		b.Fatal(err)
	default:
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*batchSize/secs, "events/s")
	}
	want := uint64(b.N) * batchSize
	if fs := leaf.Forwarder().Stats(); fs.DroppedEvents != 0 || fs.AckedEvents != want {
		b.Fatalf("forwarder lost events: %+v (want %d acked)", fs, want)
	}
	if st := root.Stats(); st.IngestEvents != want || st.DupBatches != 0 || st.RollupSkippedEvents != 0 {
		b.Fatalf("root stats after %d batches: %+v", b.N, st)
	}
}
