package zerosum

// The benchmark harness regenerates every table and figure from the
// paper's evaluation (§4) as a testing.B benchmark, reporting the headline
// shape numbers as custom metrics alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// Benchmarks run the experiments at a reduced scale so the full suite
// completes in seconds; `go run ./cmd/experiments` runs them at paper
// scale and prints the complete paper-vs-measured comparison.

import (
	"io"
	"strings"
	"testing"

	"zerosum/internal/experiments"
	"zerosum/internal/report"
)

const benchScale = 0.1

// BenchmarkListing1Topology regenerates the Listing 1 hwloc output.
func BenchmarkListing1Topology(b *testing.B) {
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(experiments.Listing1())
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkListing2Report regenerates the full GPU-offload report.
func BenchmarkListing2Report(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Listing2(0.02, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		var sb strings.Builder
		if err := report.Write(&sb, tr.Snapshot, report.Options{Memory: true}); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkTable1Default regenerates Table 1 (the misconfigured default
// launch) and reports the per-thread nvctx magnitude.
func BenchmarkTable1Default(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Table1(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var maxNV uint64
			for _, l := range tr.Snapshot.LWPs {
				if l.NVCtx > maxNV {
					maxNV = l.NVCtx
				}
			}
			b.ReportMetric(tr.WallSeconds, "sim_s")
			b.ReportMetric(float64(maxNV), "max_nvctx")
		}
	}
}

// BenchmarkTable2Cores7 regenerates Table 2 (-c7, unbound threads).
func BenchmarkTable2Cores7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.Table2(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkTable3Spread regenerates Table 3 (-c7 + spread/cores binding)
// and reports the T1/T3 speedup factor, the paper's headline comparison.
func BenchmarkTable3Spread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3, err := experiments.Table3(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t1, err := experiments.Table1(benchScale, uint64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(t1.WallSeconds/t3.WallSeconds, "T1/T3_ratio")
			b.ReportMetric(t3.WallSeconds, "sim_s")
		}
	}
}

// BenchmarkFigure5Heatmap regenerates the 512-rank communication heatmap
// and reports the nearest-neighbour band fraction.
func BenchmarkFigure5Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hm, _, err := experiments.Figure5(512, 0.2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := hm.WritePGM(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(hm.BandFraction(1), "nn_band_frac")
		}
	}
}

// BenchmarkFigure6LWPSeries regenerates the per-thread utilization series.
func BenchmarkFigure6LWPSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Figures6And7(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := sr.LWP.WriteTSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sr.LWPNoisiness, "noisiness")
		}
	}
}

// BenchmarkFigure7HWTSeries regenerates the per-core utilization series.
func BenchmarkFigure7HWTSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sr, err := experiments.Figures6And7(benchScale, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := sr.HWT.WriteTSV(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sr.HWTNoisiness, "noisiness")
		}
	}
}

// BenchmarkFigure8Overhead runs the reduced overhead experiment (3 runs per
// side per scenario) and reports both scenarios' overhead fractions.
func BenchmarkFigure8Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scens, err := experiments.Figure8(3, 0.2, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(scens[0].OverheadFrac*100, "overhead_1t_pct")
			b.ReportMetric(scens[1].OverheadFrac*100, "overhead_2t_pct")
		}
	}
}

// BenchmarkMonitorTick measures one sampling pass of the monitor itself
// against the live /proc of this host — the per-tick cost underlying the
// paper's <0.5% overhead claim.
func BenchmarkMonitorTick(b *testing.B) {
	mon, err := MonitorSelf(MonitorConfig{KeepSeries: false})
	if err != nil {
		b.Skip("no live /proc:", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mon.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablation suite at reduced
// scale, reporting the bandwidth-model ratio gap it exists to justify.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abl, err := experiments.Ablations(2, 0.1, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, a := range abl {
				if a.Name == "bandwidth-cap" {
					b.ReportMetric(a.With, "T1/T3_with_cap")
					b.ReportMetric(a.Without, "T1/T3_without_cap")
				}
			}
		}
	}
}
