package zerosum

// Benchmarks for the embedded time-series store (internal/tsdb): the
// append hot path, block compression, full-blob scan decode, and the
// rollup-served range query. These feed the zsbench regression gate the
// same way the experiment benchmarks do — `make bench-record` pins the
// numbers in the committed baseline. docs/tsdb.md discusses the
// bytes-per-sample budget the Compress benchmark reports.

import (
	"math"
	"testing"
	"time"

	"zerosum/internal/tsdb"
)

// benchStoreTick is the sample clock step the TSDB benchmarks use: 10ms,
// i.e. 100Hz — an order denser than the monitor's usual 1s cadence, so the
// numbers bound the store under a hostile ingest rate.
const benchStoreTick = int64(10 * time.Millisecond)

// benchStore populates a store with eight periodic series of n samples
// each: smooth utilization-shaped floats on an exactly periodic clock, the
// steady-state shape the codec is tuned for.
func benchStore(n int) *tsdb.Store {
	st := tsdb.NewStore(tsdb.Options{})
	keys := make([]tsdb.SeriesKey, 8)
	for r := range keys {
		keys[r] = tsdb.SeriesKey{Node: "n0", Rank: r, TID: 1000 + r, Metric: "lwp.user_pct"}
	}
	for i := 0; i < n; i++ {
		t := int64(i) * benchStoreTick
		v := 50 + 10*math.Sin(float64(i)/30)
		for _, key := range keys {
			st.Append("bench", key, t, v)
		}
	}
	return st
}

// BenchmarkTSDBAppend measures the per-sample cost of the store's append
// hot path — the price every admitted ingest event pays — and reports the
// steady-state compressed footprint.
func BenchmarkTSDBAppend(b *testing.B) {
	st := tsdb.NewStore(tsdb.Options{})
	key := tsdb.SeriesKey{Node: "n0", Rank: 0, TID: 1000, Metric: "lwp.user_pct"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Append("bench", key, int64(i)*benchStoreTick, 50+10*math.Sin(float64(i)/30))
	}
	b.StopTimer()
	js := st.JobStats("bench")
	if js.Samples != uint64(b.N) {
		b.Fatalf("store holds %d samples, appended %d", js.Samples, b.N)
	}
	b.ReportMetric(float64(js.Bytes)/float64(js.Samples), "bytes/sample")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "samples/s")
	}
}

// BenchmarkTSDBCompress measures encoding a job's full block set to the
// ZSTB wire blob (the dump endpoint and any spill-to-disk path) and
// reports the end-to-end compression ratio achieved.
func BenchmarkTSDBCompress(b *testing.B) {
	const samplesPerSeries = 10_000
	st := benchStore(samplesPerSeries)
	total := float64(st.JobStats("bench").Samples)
	var blob []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		blob, err = st.MarshalJob("bench")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(blob))/total, "bytes/sample")
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*total/secs, "samples/s")
	}
}

// BenchmarkTSDBScan measures the full read path over a compressed blob:
// decode the block set and iterate every sample of every chunk.
func BenchmarkTSDBScan(b *testing.B) {
	const samplesPerSeries = 10_000
	st := benchStore(samplesPerSeries)
	blob, err := st.MarshalJob("bench")
	if err != nil {
		b.Fatal(err)
	}
	want := st.JobStats("bench").Samples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, err := tsdb.UnmarshalBlocks(blob)
		if err != nil {
			b.Fatal(err)
		}
		var n uint64
		for _, sr := range bs.Series {
			for _, ch := range sr.Chunks {
				pts, err := ch.Samples()
				if err != nil {
					b.Fatal(err)
				}
				n += uint64(len(pts))
			}
		}
		if n != want {
			b.Fatalf("scanned %d samples, want %d", n, want)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(want)/secs, "samples/s")
	}
}

// BenchmarkTSDBQuery measures a stepped range query over the populated
// store. The 5s step is an exact multiple of the default 5s downsample, so
// sealed chunks serve from rollups; the head chunks decode.
func BenchmarkTSDBQuery(b *testing.B) {
	const samplesPerSeries = 10_000
	st := benchStore(samplesPerSeries)
	opts := tsdb.QueryOpts{
		Metric: "lwp.user_pct",
		Rank:   -1,
		TID:    -1,
		End:    int64(samplesPerSeries) * benchStoreTick,
		Step:   int64(5 * time.Second),
		Agg:    tsdb.AggMean,
	}
	var points int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := st.Query("bench", opts)
		if err != nil {
			b.Fatal(err)
		}
		points = 0
		for _, sr := range series {
			points += len(sr.Points)
		}
		if points == 0 {
			b.Fatal("query returned no points")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)*float64(points)/secs, "points/s")
	}
}
