// Command experiments regenerates every table and figure from the paper's
// evaluation section on the simulated Frontier testbed and prints
// paper-vs-measured comparisons.
//
// Usage:
//
//	experiments [-run L1|L2|T1|T2|T3|F5|F6|F7|F8|all] [-scale 1.0] [-runs 10] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zerosum/internal/analysis"
	"zerosum/internal/core"
	"zerosum/internal/experiments"
	"zerosum/internal/report"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id (L1,L2,T1,T2,T3,F5,F6,F7,F8) or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale relative to the paper (1.0 = full)")
		runs  = flag.Int("runs", 10, "repetitions per side for the Figure 8 overhead experiment")
		ranks = flag.Int("ranks", 512, "MPI ranks for the Figure 5 heatmap")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		verb  = flag.Bool("v", false, "print full per-rank reports")
	)
	flag.Parse()

	ids := strings.Split(strings.ToUpper(*run), ",")
	if *run == "all" {
		ids = []string{"L1", "L2", "T1", "T2", "T3", "F5", "F6", "F7", "F8", "ABL"}
	}
	for _, id := range ids {
		if err := runOne(strings.TrimSpace(id), *scale, *runs, *ranks, *seed, *verb); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runOne(id string, scale float64, runs, ranks int, seed uint64, verbose bool) error {
	switch id {
	case "L1":
		fmt.Println("## Listing 1 — hwloc topology of the 4-core test system")
		fmt.Println(experiments.Listing1())
	case "L2":
		tr, err := experiments.Listing2(scale, seed)
		if err != nil {
			return err
		}
		fmt.Println("## Listing 2 — miniQMC target offload, full ZeroSum report (rank 0)")
		fmt.Printf("# %s\n", tr.Command)
		fmt.Printf("# paper duration %.3f s (at scale %.2f: %.3f s), measured %.3f s\n\n",
			experiments.PaperL2Seconds, scale, tr.PaperSeconds, tr.WallSeconds)
		if err := report.Write(os.Stdout, tr.Snapshot, report.Options{Memory: true, Contention: true}); err != nil {
			return err
		}
	case "T1", "T2", "T3":
		var tr *experiments.TableResult
		var err error
		switch id {
		case "T1":
			tr, err = experiments.Table1(scale, seed)
		case "T2":
			tr, err = experiments.Table2(scale, seed)
		case "T3":
			tr, err = experiments.Table3(scale, seed)
		}
		if err != nil {
			return err
		}
		fmt.Printf("## %s\n", tr.Label)
		fmt.Printf("# %s\n", tr.Command)
		fmt.Printf("# paper runtime %.2f s (scaled: %.2f s), measured %.2f s\n",
			tr.PaperSeconds/scale, tr.PaperSeconds, tr.WallSeconds)
		if err := report.WriteComparison(os.Stdout, []string{tr.Label}, []core.Snapshot{tr.Snapshot}); err != nil {
			return err
		}
		if verbose {
			if err := report.Write(os.Stdout, tr.Snapshot, report.Options{Contention: true, Memory: true}); err != nil {
				return err
			}
		}
	case "F5":
		hm, res, err := experiments.Figure5(ranks, scale, seed)
		if err != nil {
			return err
		}
		fmt.Printf("## Figure 5 — MPI point-to-point heatmap, %d ranks\n", ranks)
		fmt.Printf("# total bytes: %.3e, nearest-neighbour band fraction (|d|<=1): %.3f\n",
			hm.Total(), hm.BandFraction(1))
		fmt.Printf("# job wall: %.2f s\n\n", res.WallSeconds)
		if err := hm.WriteASCII(os.Stdout, 64); err != nil {
			return err
		}
	case "F6", "F7":
		sr, err := experiments.Figures6And7(scale, seed)
		if err != nil {
			return err
		}
		if id == "F6" {
			fmt.Println("## Figure 6 — LWP (threads) utilization over time")
			fmt.Printf("# mean sample-to-sample noisiness: %.4f\n", sr.LWPNoisiness)
			if err := sr.LWP.WriteSparklines(os.Stdout, 100); err != nil {
				return err
			}
			if verbose {
				return sr.LWP.WriteTSV(os.Stdout)
			}
		} else {
			fmt.Println("## Figure 7 — CPU core utilization over time")
			fmt.Printf("# mean sample-to-sample noisiness: %.4f\n", sr.HWTNoisiness)
			if err := sr.HWT.WriteSparklines(os.Stdout, 100); err != nil {
				return err
			}
			if verbose {
				return sr.HWT.WriteTSV(os.Stdout)
			}
		}
	case "F8":
		scens, err := experiments.Figure8(runs, scale, seed)
		if err != nil {
			return err
		}
		fmt.Printf("## Figure 8 — ZeroSum overhead, %d runs per side\n", runs)
		paper := [2]struct {
			base, with, p float64
		}{
			{experiments.PaperF8Base1T, experiments.PaperF8With1T, experiments.PaperF8P1T},
			{experiments.PaperF8Base2T, experiments.PaperF8With2T, experiments.PaperF8P2T},
		}
		for i, sc := range scens {
			fmt.Printf("\n%s:\n", sc.Name)
			fmt.Printf("  baseline: %s\n", sc.BaselineStats)
			fmt.Printf("  zerosum : %s\n", sc.WithStats)
			fmt.Printf("  overhead: %+.4f s (%+.3f%%)\n", sc.OverheadSec, sc.OverheadFrac*100)
			fmt.Printf("  Welch t-test: t=%+.3f df=%.1f p=%.4g\n", sc.TTest.T, sc.TTest.DF, sc.TTest.P)
			fmt.Printf("  paper: baseline %.4f s, zerosum %.4f s, p=%.4g\n",
				paper[i].base*scale, paper[i].with*scale, paper[i].p)
			fmt.Println("  runtime distributions (the Figure 8 view):")
			if err := analysis.CompareDistributions(os.Stdout,
				"baseline", sc.Baseline, "with zerosum", sc.WithZeroSum, 8); err != nil {
				return err
			}
		}
	case "ABL":
		abl, err := experiments.Ablations(min(runs, 5), scale, seed)
		if err != nil {
			return err
		}
		fmt.Println("## Ablations — why each contention model exists")
		for _, a := range abl {
			fmt.Println()
			fmt.Println(a)
		}
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	fmt.Println()
	return nil
}
