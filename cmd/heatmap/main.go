// Command heatmap renders an MPI point-to-point communication matrix (the
// dst,src,bytes CSV that ZeroSum logs per §3.6) as terminal character art
// or a PGM image — the paper's Figure 5 without matplotlib.
//
// Usage:
//
//	heatmap -size 512 [-in comm.csv] [-pgm out.pgm] [-bins 64]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"zerosum/internal/analysis"
	"zerosum/internal/export"
)

func main() {
	var (
		size = flag.Int("size", 0, "communicator size (required)")
		in   = flag.String("in", "-", "input CSV (dst,src,bytes); - for stdin")
		pgm  = flag.String("pgm", "", "also write a PGM image to this path")
		bins = flag.Int("bins", 64, "terminal downsample bins")
	)
	flag.Parse()
	if *size <= 0 {
		fmt.Fprintln(os.Stderr, "heatmap: -size is required")
		os.Exit(2)
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	matrix, err := export.ReadCommCSV(r, *size)
	if err != nil {
		fatal(err)
	}
	hm := analysis.FromMatrix(matrix)
	fmt.Printf("total bytes: %.4e  max cell: %.4e  nearest-neighbour fraction: %.3f\n",
		hm.Total(), hm.Max(), hm.BandFraction(1))
	if err := hm.WriteASCII(os.Stdout, *bins); err != nil {
		fatal(err)
	}
	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := hm.WritePGM(f); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *pgm)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heatmap:", err)
	os.Exit(1)
}
