// Command lstopo prints the hardware topology of a preset machine in the
// hwloc lstopo text style, reproducing the paper's Listing 1. ZeroSum
// prints this at startup so users can see how cores, caches, NUMA domains,
// hardware threads and GPUs are organised before choosing a thread
// placement strategy.
//
// Usage:
//
//	lstopo [-preset frontier|summit|perlmutter|aurora|laptop]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zerosum/internal/topology"
)

func main() {
	preset := flag.String("preset", "laptop", "machine preset: "+strings.Join(topology.PresetNames(), ", "))
	flag.Parse()
	m, err := topology.ByName(*preset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lstopo:", err)
		os.Exit(2)
	}
	fmt.Println("HWLOC Node topology:")
	if err := topology.WriteLstopo(os.Stdout, m); err != nil {
		fmt.Fprintln(os.Stderr, "lstopo:", err)
		os.Exit(1)
	}
}
