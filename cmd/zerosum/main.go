// Command zerosum is the live-host monitor: the user-space equivalent of
// the paper's `zerosum-mpi <application>` wrapper. It launches a child
// command (or attaches to an existing PID), samples its threads, the
// host's hardware threads and memory through the real /proc once per
// period, and prints the utilization + contention report when the child
// exits. All periodic samples can be dumped as CSV for time-series
// analysis.
//
// Usage:
//
//	zerosum [-period 1s] [-csv PREFIX] [-heartbeat N] [--] command args...
//	zerosum -pid 1234 -duration 30s
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/exec"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/crash"
	"zerosum/internal/obs"
	"zerosum/internal/proc"
	"zerosum/internal/report"
)

func main() {
	var (
		period     = flag.Duration("period", time.Second, "sampling period")
		pid        = flag.Int("pid", 0, "attach to an existing process instead of launching one")
		duration   = flag.Duration("duration", 0, "with -pid: how long to monitor (0 = until the process exits)")
		csvPrefix  = flag.String("csv", "", "dump sample CSVs to PREFIX.{lwp,hwt,mem}.csv")
		heartbeat  = flag.Int("heartbeat", 0, "print a heartbeat every N samples")
		backtrace  = flag.Bool("backtrace", true, "install the abnormal-exit backtrace handler")
		stallTicks = flag.Int("stall-ticks", 0, "flag a thread stalled after N samples with no progress (0 = off)")
		budget     = flag.Float64("budget", 0, "self-overhead budget in percent; exceeding it degrades sampling (0 = off)")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/obs and /debug/pprof on this address while monitoring")
	)
	flag.Parse()

	fs := proc.NewRealFS()
	var child *exec.Cmd
	targetPID := *pid
	if targetPID == 0 {
		args := flag.Args()
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "zerosum: need a command to run or -pid")
			os.Exit(2)
		}
		child = exec.Command(args[0], args[1:]...)
		child.Stdout = os.Stdout
		child.Stderr = os.Stderr
		child.Stdin = os.Stdin
		if err := child.Start(); err != nil {
			fatal(err)
		}
		targetPID = child.Process.Pid
	}

	rec := obs.NewRecorder(0)
	mon, err := core.New(core.Config{
		Period:         *period,
		HeartbeatEvery: *heartbeat,
		Heartbeat:      os.Stderr,
		KeepSeries:     true,
		StallTicks:     *stallTicks,
		Obs:            rec,
		Budget:         obs.Budget{Enabled: *budget > 0, MaxPct: *budget},
	}, core.Deps{
		FS:    &pidFS{RealFS: fs, pid: targetPID},
		Clock: time.Now,
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		mux := http.NewServeMux()
		// PublishedSelfStats, not SelfStats: the handler runs on server
		// goroutines concurrent with the Tick loop below.
		mux.Handle("GET /debug/obs", obs.Handler("zerosum", rec, mon.PublishedSelfStats))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//zerosum:detached debug server lives for the whole process; the OS reaps it at exit
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "zerosum: debug server:", err)
			}
		}()
	}

	if *backtrace {
		h := crash.New(os.Stderr)
		h.OnReport(func(w io.Writer) {
			_ = report.Write(w, mon.Snapshot(), report.Options{})
		})
		h.Install(nil)
	}

	done := make(chan struct{})
	if child != nil {
		go func() {
			_ = child.Wait()
			close(done)
		}()
	} else if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			close(done)
		}()
	}

	ticker := time.NewTicker(*period)
	defer ticker.Stop()
	cur := *period
	exitCode := 0
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			if err := mon.Tick(); err != nil {
				// The target exited between samples: finish up.
				break loop
			}
			// The overhead-budget watchdog may have degraded the rate.
			if p := mon.CurrentPeriod(); p != cur {
				cur = p
				ticker.Reset(p)
			}
		}
	}
	mon.Finish()
	if child != nil && child.ProcessState != nil {
		exitCode = child.ProcessState.ExitCode()
	}

	fmt.Fprintln(os.Stderr)
	if err := report.Write(os.Stderr, mon.Snapshot(), report.Options{Contention: true, Memory: true, Self: true}); err != nil {
		fatal(err)
	}
	if *csvPrefix != "" {
		if err := dumpCSVs(mon, *csvPrefix); err != nil {
			fatal(err)
		}
	}
	os.Exit(exitCode)
}

// pidFS retargets a RealFS at another process's /proc entries.
type pidFS struct {
	*proc.RealFS
	pid int
}

func (p *pidFS) SelfPID() int { return p.pid }

func dumpCSVs(mon *core.Monitor, prefix string) error {
	for _, d := range []struct {
		suffix string
		fn     func(f *os.File) error
	}{
		{".lwp.csv", func(f *os.File) error { return mon.WriteLWPCSV(f) }},
		{".hwt.csv", func(f *os.File) error { return mon.WriteHWTCSV(f) }},
		{".mem.csv", func(f *os.File) error { return mon.WriteMemCSV(f) }},
	} {
		f, err := os.Create(prefix + d.suffix)
		if err != nil {
			return err
		}
		if err := d.fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zerosum:", err)
	os.Exit(1)
}
