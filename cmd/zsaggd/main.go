// Command zsaggd is the ZeroSum cluster aggregation daemon: the networked
// data service the paper's export path anticipates (§3.6, §6). Per-process
// node agents (aggd.Agent, wired by zsrun -agg or the zerosum library) POST
// framed sample batches and end-of-run snapshots to it; zsaggd maintains
// per-job sharded in-memory stores, folds snapshots through the same
// report.Aggregate used in-process, and serves the allocation-wide views:
//
//	GET /metrics                 Prometheus text exposition (per-HWT
//	                             utilization, nvctx, GPU busy %, heartbeats)
//	GET /api/jobs                known jobs
//	GET /api/job/<id>/summary    aggregated JobSummary (JSON)
//	GET /api/job/<id>/heatmap    rank x rank received-bytes matrix (JSON);
//	                             with ?metric= a TSDB series x time matrix
//	GET /api/job/<id>/query      TSDB range query (raw or stepped+aggregated)
//	GET /api/job/<id>/topk       top-k series by one aggregate over a window
//	GET /api/job/<id>/tsdb       compressed block-set dump (ZSTB blob)
//
// Every admitted sample also lands in an embedded Gorilla-compressed
// time-series store (see docs/tsdb.md); -block, -downsample and -retention
// tune it.
//
// Usage:
//
//	zsaggd [-addr :9100] [-nvctx-per-sec N] [-retention 0] [-block 1m]
//	       [-downsample 5s] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/tsdb"
)

func main() {
	var (
		addr       = flag.String("addr", ":9100", "listen address")
		nvctx      = flag.Float64("nvctx-per-sec", 0, "contention threshold folded into job summaries (0 = default)")
		verbose    = flag.Bool("v", false, "log every request")
		pprofSrv   = flag.Bool("pprof", false, "also serve /debug/pprof profiling endpoints")
		block      = flag.Duration("block", tsdb.DefaultBlock, "TSDB block width: head chunks seal on this sample-clock boundary")
		downsample = flag.Duration("downsample", tsdb.DefaultDownsample, "TSDB rollup bucket width computed at chunk seal")
		retention  = flag.Duration("retention", 0, "drop sealed TSDB chunks older than this behind each job's newest sample (0 = keep everything)")
	)
	flag.Parse()

	srv := aggd.NewServer(aggd.ServerConfig{
		Thresholds: core.EvalThresholds{NVCtxPerSec: *nvctx},
		TSDB: tsdb.Options{
			Block:      *block,
			Downsample: *downsample,
			Retention:  *retention,
		},
	})
	var handler http.Handler = srv.Handler()
	if *pprofSrv {
		// /debug/obs is always on (it's cheap JSON); CPU/heap profiling of
		// the daemon itself is opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	if *verbose {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if *retention > 0 {
		// Appends already retire expired chunks as they seal; the ticker
		// covers series that stopped appending (a dead rank's history still
		// ages out against the job's advancing clock).
		go func() {
			tick := time.NewTicker(*block)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					srv.TSDB().EnforceRetention()
				}
			}
		}()
	}

	log.Printf("zsaggd: listening on %s (POST /api/ingest, GET /metrics)", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "zsaggd:", err)
		os.Exit(1)
	}
	log.Print("zsaggd: shut down")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
