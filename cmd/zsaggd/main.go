// Command zsaggd is the ZeroSum cluster aggregation daemon: the networked
// data service the paper's export path anticipates (§3.6, §6). Per-process
// node agents (aggd.Agent, wired by zsrun -agg or the zerosum library) POST
// framed sample batches and end-of-run snapshots to it; zsaggd maintains
// per-job sharded in-memory stores, folds snapshots through the same
// report.Aggregate used in-process, and serves the allocation-wide views:
//
//	GET /metrics                 Prometheus text exposition (per-HWT
//	                             utilization, nvctx, GPU busy %, heartbeats)
//	GET /api/jobs                known jobs
//	GET /api/job/<id>/summary    aggregated JobSummary (JSON)
//	GET /api/job/<id>/heatmap    rank x rank received-bytes matrix (JSON);
//	                             with ?metric= a TSDB series x time matrix
//	GET /api/job/<id>/query      TSDB range query (raw or stepped+aggregated)
//	GET /api/job/<id>/topk       top-k series by one aggregate over a window
//	GET /api/job/<id>/tsdb       compressed block-set dump (ZSTB blob)
//
// Every admitted sample also lands in an embedded Gorilla-compressed
// time-series store (see docs/tsdb.md); -block, -downsample and -retention
// tune it.
//
// Daemons compose into an aggregation tree (docs/aggregation.md): a leaf
// started with -leaf -upstream forwards everything it admits to its parent
// as rollup frames, agents spread over the leaf tier by consistent hash,
// and the root answers the job-wide queries exactly as a flat deployment
// would. -peers publishes the sibling list at GET /api/peers so launchers
// can discover the failover set; -restore warms a fresh daemon's TSDB from
// ZSTB dumps.
//
// Usage:
//
//	zsaggd [-addr :9100] [-nvctx-per-sec N] [-retention 0] [-block 1m]
//	       [-downsample 5s] [-v]
//	       [-leaf -upstream http://root:9100 [-leaf-id name]]
//	       [-peers url1,url2,...] [-restore dump1.zstb,...]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/tsdb"
)

func main() {
	var (
		addr       = flag.String("addr", ":9100", "listen address")
		nvctx      = flag.Float64("nvctx-per-sec", 0, "contention threshold folded into job summaries (0 = default)")
		verbose    = flag.Bool("v", false, "log every request")
		pprofSrv   = flag.Bool("pprof", false, "also serve /debug/pprof profiling endpoints")
		block      = flag.Duration("block", tsdb.DefaultBlock, "TSDB block width: head chunks seal on this sample-clock boundary")
		downsample = flag.Duration("downsample", tsdb.DefaultDownsample, "TSDB rollup bucket width computed at chunk seal")
		retention  = flag.Duration("retention", 0, "drop sealed TSDB chunks older than this behind each job's newest sample (0 = keep everything)")
		leaf       = flag.Bool("leaf", false, "run as a leaf aggregator: forward admitted data upstream as rollup frames (requires -upstream)")
		upstream   = flag.String("upstream", "", "parent aggregator base URL for leaf mode (implies -leaf)")
		leafID     = flag.String("leaf-id", "", "leaf identity stamped on rollup frames (default: the listen address)")
		peers      = flag.String("peers", "", "comma-separated sibling leaf URLs served at GET /api/peers for agent failover discovery")
		restore    = flag.String("restore", "", "comma-separated ZSTB dump files imported into the TSDB at startup")
	)
	flag.Parse()

	if *leaf && *upstream == "" {
		fmt.Fprintln(os.Stderr, "zsaggd: -leaf requires -upstream")
		os.Exit(2)
	}
	cfg := aggd.ServerConfig{
		Thresholds: core.EvalThresholds{NVCtxPerSec: *nvctx},
		TSDB: tsdb.Options{
			Block:      *block,
			Downsample: *downsample,
			Retention:  *retention,
		},
	}
	if *upstream != "" {
		id := *leafID
		if id == "" {
			id = *addr
		}
		cfg.Forward = &aggd.ForwardConfig{
			Upstream: *upstream,
			LeafID:   id,
			// Wall-clock nanos make every restart a fresh incarnation, so
			// replays from the previous one dedup at the parent.
			Epoch: uint64(time.Now().UnixNano()),
		}
	}
	srv := aggd.NewServer(cfg)
	if *restore != "" {
		if err := restoreDumps(srv, *restore); err != nil {
			fmt.Fprintln(os.Stderr, "zsaggd:", err)
			os.Exit(1)
		}
	}
	var handler http.Handler = srv.Handler()
	if *peers != "" {
		handler = withPeers(handler, strings.Split(*peers, ","))
	}
	if *pprofSrv {
		// /debug/obs is always on (it's cheap JSON); CPU/heap profiling of
		// the daemon itself is opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	if *verbose {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()
	if *retention > 0 {
		// Appends already retire expired chunks as they seal; the ticker
		// covers series that stopped appending (a dead rank's history still
		// ages out against the job's advancing clock).
		go func() {
			tick := time.NewTicker(*block)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					srv.TSDB().EnforceRetention()
				}
			}
		}()
	}

	role := "root"
	if *upstream != "" {
		role = fmt.Sprintf("leaf -> %s", *upstream)
	}
	log.Printf("zsaggd: listening on %s as %s (POST /api/ingest, GET /metrics)", *addr, role)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "zsaggd:", err)
		os.Exit(1)
	}
	// Flush any rollups still buffered in the leaf forwarder before exiting.
	if err := srv.Close(); err != nil {
		log.Printf("zsaggd: close: %v", err)
	}
	log.Print("zsaggd: shut down")
}

// restoreDumps imports comma-separated ZSTB dump files into the server's
// TSDB before it starts serving.
func restoreDumps(srv *aggd.Server, list string) error {
	for _, path := range strings.Split(list, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("restore %s: %w", path, err)
		}
		bs, err := tsdb.UnmarshalBlocks(data)
		if err != nil {
			return fmt.Errorf("restore %s: %w", path, err)
		}
		n, err := srv.TSDB().ImportBlockSet(bs)
		if err != nil {
			return fmt.Errorf("restore %s: %w", path, err)
		}
		log.Printf("zsaggd: restored %d samples of job %q from %s", n, bs.Job, path)
	}
	return nil
}

// withPeers overlays GET /api/peers — the leaf tier's sibling list, for
// launchers discovering the failover set — on the server handler.
func withPeers(next http.Handler, peers []string) http.Handler {
	clean := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	body, err := json.Marshal(clean)
	if err != nil {
		body = []byte("[]")
	}
	body = append(body, '\n')
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/peers" {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
