// Command zsaggd is the ZeroSum cluster aggregation daemon: the networked
// data service the paper's export path anticipates (§3.6, §6). Per-process
// node agents (aggd.Agent, wired by zsrun -agg or the zerosum library) POST
// framed sample batches and end-of-run snapshots to it; zsaggd maintains
// per-job sharded in-memory stores, folds snapshots through the same
// report.Aggregate used in-process, and serves the allocation-wide views:
//
//	GET /metrics                 Prometheus text exposition (per-HWT
//	                             utilization, nvctx, GPU busy %, heartbeats)
//	GET /api/jobs                known jobs
//	GET /api/job/<id>/summary    aggregated JobSummary (JSON)
//	GET /api/job/<id>/heatmap    rank x rank received-bytes matrix (JSON)
//
// Usage:
//
//	zsaggd [-addr :9100] [-nvctx-per-sec N] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
)

func main() {
	var (
		addr     = flag.String("addr", ":9100", "listen address")
		nvctx    = flag.Float64("nvctx-per-sec", 0, "contention threshold folded into job summaries (0 = default)")
		verbose  = flag.Bool("v", false, "log every request")
		pprofSrv = flag.Bool("pprof", false, "also serve /debug/pprof profiling endpoints")
	)
	flag.Parse()

	srv := aggd.NewServer(aggd.ServerConfig{
		Thresholds: core.EvalThresholds{NVCtxPerSec: *nvctx},
	})
	var handler http.Handler = srv.Handler()
	if *pprofSrv {
		// /debug/obs is always on (it's cheap JSON); CPU/heap profiling of
		// the daemon itself is opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	if *verbose {
		handler = logRequests(handler)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("zsaggd: listening on %s (POST /api/ingest, GET /metrics)", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "zsaggd:", err)
		os.Exit(1)
	}
	log.Print("zsaggd: shut down")
}

func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%v)", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
