// Command zsbench records and compares benchmark baselines so performance
// regressions fail the build instead of landing silently.
//
// It consumes the standard `go test -bench -benchmem` text output:
//
//	record a baseline:   go test -bench . -benchmem . | zsbench -record BENCH.json
//	gate a change:       go test -bench . -benchmem . | zsbench -baseline BENCH.json
//	zero-alloc contract: go test -bench . -benchmem . | zsbench -zero-alloc BenchmarkX,BenchmarkY
//
// The gate fails (exit 1) when any benchmark present in both runs is more
// than -max-ns-regress slower in ns/op (default 20%, absorbing shared-runner
// noise) or exceeds its allocs/op baseline by more than -max-allocs-regress
// (default 0.1%). For the hot-path benchmarks, whose counts are small and
// deterministic, 0.1% of the baseline is less than one allocation, so the
// gate is exact there — a zero-alloc benchmark fails on its first alloc —
// while the multi-million-alloc simulation benchmarks absorb their
// parts-per-million goroutine-scheduling jitter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// Baseline is the on-disk JSON shape.
type Baseline struct {
	Note       string   `json:"note,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	record := flag.String("record", "", "write a baseline JSON to this path instead of comparing")
	baseline := flag.String("baseline", "", "baseline JSON to compare the input against")
	maxNs := flag.Float64("max-ns-regress", 0.20, "maximum tolerated fractional ns/op regression")
	maxAllocs := flag.Float64("max-allocs-regress", 0.001, "maximum tolerated fractional allocs/op regression (sub-1 absolute slack is exact)")
	note := flag.String("note", "", "free-text provenance stored in a recorded baseline")
	zeroAlloc := flag.String("zero-alloc", "", "comma-separated benchmark names that must report exactly 0 allocs/op")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file (default stdin), got %d args", flag.NArg()))
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}

	if *zeroAlloc != "" {
		if !checkZeroAlloc(os.Stdout, strings.Split(*zeroAlloc, ","), results) {
			os.Exit(1)
		}
		if *record == "" && *baseline == "" {
			return
		}
	}

	switch {
	case *record != "":
		if err := writeBaseline(*record, *note, results); err != nil {
			fatal(err)
		}
		fmt.Printf("zsbench: recorded %d benchmarks to %s\n", len(results), *record)
	case *baseline != "":
		base, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		if !compare(os.Stdout, base, results, *maxNs, *maxAllocs) {
			os.Exit(1)
		}
	default:
		// No mode: just echo the parse as JSON (useful for plumbing).
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Baseline{Benchmarks: results}); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsbench:", err)
	os.Exit(2)
}

// parseBench extracts result lines ("BenchmarkX-8  N  v unit  v unit ...")
// from go test output, ignoring everything else.
func parseBench(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Iterations must be an integer or this is a header/PASS line.
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		res := Result{Name: trimProcSuffix(fields[0])}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// trimProcSuffix drops the trailing -GOMAXPROCS so baselines recorded on
// hosts with different core counts still match by name.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func writeBaseline(path, note string, results []Result) error {
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	data, err := json.MarshalIndent(Baseline{Note: note, Benchmarks: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// checkZeroAlloc enforces the exact-zero hot-path contract: every named
// benchmark must be present in the run and report 0 allocs/op. Unlike the
// fractional baseline gate this needs no recorded file, so CI can assert
// the invariant even when the baseline itself is being re-recorded.
// Sub-benchmark names match by prefix ("BenchmarkX" covers "BenchmarkX/Plain").
func checkZeroAlloc(w io.Writer, names []string, cur []Result) bool {
	ok := true
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, r := range cur {
			if r.Name != name && !strings.HasPrefix(r.Name, name+"/") {
				continue
			}
			found = true
			if r.AllocsPerOp != 0 {
				fmt.Fprintf(w, "zsbench: %-40s FAIL %g allocs/op, contract is exactly 0\n", r.Name, r.AllocsPerOp)
				ok = false
			} else {
				fmt.Fprintf(w, "zsbench: %-40s 0 allocs/op ok\n", r.Name)
			}
		}
		if !found {
			fmt.Fprintf(w, "zsbench: %-40s missing from this run (zero-alloc contract unchecked)\n", name)
			ok = false
		}
	}
	return ok
}

// compare reports per-benchmark deltas and returns false when the run
// regresses past the gates.
func compare(w io.Writer, base *Baseline, cur []Result, maxNs, maxAllocs float64) bool {
	byName := make(map[string]Result, len(cur))
	for _, r := range cur {
		byName[r.Name] = r
	}
	ok, matched := true, 0
	for _, b := range base.Benchmarks {
		c, found := byName[b.Name]
		if !found {
			fmt.Fprintf(w, "zsbench: %-40s missing from this run (baseline %.0f ns/op)\n", b.Name, b.NsPerOp)
			continue
		}
		matched++
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = c.NsPerOp/b.NsPerOp - 1
		}
		status := "ok"
		switch {
		case delta > maxNs:
			status = fmt.Sprintf("FAIL ns/op regressed %.1f%% (max %.0f%%)", delta*100, maxNs*100)
			ok = false
		case c.AllocsPerOp > b.AllocsPerOp+b.AllocsPerOp*maxAllocs:
			status = fmt.Sprintf("FAIL allocs/op %g > baseline %g", c.AllocsPerOp, b.AllocsPerOp)
			ok = false
		}
		fmt.Fprintf(w, "zsbench: %-40s %10.0f ns/op (%+6.1f%%)  %4g allocs/op (base %g)  %s\n",
			b.Name, c.NsPerOp, delta*100, c.AllocsPerOp, b.AllocsPerOp, status)
	}
	if matched == 0 {
		fmt.Fprintln(w, "zsbench: no benchmarks matched the baseline")
		return false
	}
	if ok {
		fmt.Fprintf(w, "zsbench: %d/%d benchmarks within budget\n", matched, len(base.Benchmarks))
	}
	return ok
}
