package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: zerosum
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkMonitorTick-8     	   19166	     62309 ns/op	         4.000 lwps	       7 B/op	       0 allocs/op
BenchmarkServerIngest/Plain 	   25917	     87665 ns/op	   5840432 events/s	   32779 B/op	      75 allocs/op
PASS
ok  	zerosum	8.127s
`

func TestParseBench(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d results, want 2", len(res))
	}
	tick := res[0]
	if tick.Name != "BenchmarkMonitorTick" { // -8 suffix trimmed
		t.Errorf("name = %q", tick.Name)
	}
	if tick.NsPerOp != 62309 || tick.AllocsPerOp != 0 || tick.BytesPerOp != 7 {
		t.Errorf("tick = %+v", tick)
	}
	if tick.Metrics["lwps"] != 4 {
		t.Errorf("custom metric lwps = %v", tick.Metrics["lwps"])
	}
	if res[1].Name != "BenchmarkServerIngest/Plain" || res[1].Metrics["events/s"] != 5840432 {
		t.Errorf("ingest = %+v", res[1])
	}
}

func TestCompareGates(t *testing.T) {
	base := &Baseline{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 5},
		{Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 0},
	}}
	cases := []struct {
		name string
		cur  []Result
		ok   bool
	}{
		{"within budget", []Result{{Name: "BenchmarkA", NsPerOp: 115, AllocsPerOp: 5}, {Name: "BenchmarkB", NsPerOp: 90}}, true},
		{"ns regression", []Result{{Name: "BenchmarkA", NsPerOp: 130, AllocsPerOp: 5}, {Name: "BenchmarkB", NsPerOp: 90}}, false},
		{"alloc regression", []Result{{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 5}, {Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 1}}, false},
		{"fewer allocs ok", []Result{{Name: "BenchmarkA", NsPerOp: 80, AllocsPerOp: 0}, {Name: "BenchmarkB", NsPerOp: 100}}, true},
		{"nothing matched", []Result{{Name: "BenchmarkC", NsPerOp: 1}}, false},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := compare(&sb, base, tc.cur, 0.20, 0.001); got != tc.ok {
			t.Errorf("%s: compare = %v, want %v\n%s", tc.name, got, tc.ok, sb.String())
		}
	}
}

// TestCheckZeroAlloc pins the -zero-alloc contract: named benchmarks must
// be present and report exactly 0 allocs/op; sub-benchmarks match by
// prefix; a missing benchmark fails rather than silently passing.
func TestCheckZeroAlloc(t *testing.T) {
	cur := []Result{
		{Name: "BenchmarkTick", AllocsPerOp: 0},
		{Name: "BenchmarkWire/Plain", AllocsPerOp: 0},
		{Name: "BenchmarkWire/Gzip", AllocsPerOp: 2},
		{Name: "BenchmarkIngest", AllocsPerOp: 75},
	}
	cases := []struct {
		name  string
		names []string
		ok    bool
	}{
		{"zero passes", []string{"BenchmarkTick"}, true},
		{"nonzero fails", []string{"BenchmarkIngest"}, false},
		{"prefix covers subbenchmarks", []string{"BenchmarkWire"}, false},
		{"missing fails", []string{"BenchmarkNope"}, false},
		{"blank entries skipped", []string{"BenchmarkTick", " ", ""}, true},
		{"no prefix match on name stem", []string{"BenchmarkTic"}, false},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := checkZeroAlloc(&sb, tc.names, cur); got != tc.ok {
			t.Errorf("%s: checkZeroAlloc = %v, want %v\n%s", tc.name, got, tc.ok, sb.String())
		}
	}
}

// TestCompareAllocJitter pins down the shape of the allocs/op gate: exact for
// small deterministic counts, fractionally tolerant for huge simulation
// benchmarks whose counts wobble by parts per million run to run.
func TestCompareAllocJitter(t *testing.T) {
	base := &Baseline{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 75},
		{Name: "BenchmarkSim", NsPerOp: 100, AllocsPerOp: 15_000_000},
	}}
	cases := []struct {
		name string
		cur  []Result
		ok   bool
	}{
		{"sim jitter absorbed", []Result{
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 75},
			{Name: "BenchmarkSim", NsPerOp: 100, AllocsPerOp: 15_000_010}}, true},
		{"sim real regression", []Result{
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 75},
			{Name: "BenchmarkSim", NsPerOp: 100, AllocsPerOp: 15_200_000}}, false},
		{"hot path stays exact", []Result{
			{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 76},
			{Name: "BenchmarkSim", NsPerOp: 100, AllocsPerOp: 15_000_000}}, false},
	}
	for _, tc := range cases {
		var sb strings.Builder
		if got := compare(&sb, base, tc.cur, 0.20, 0.001); got != tc.ok {
			t.Errorf("%s: compare = %v, want %v\n%s", tc.name, got, tc.ok, sb.String())
		}
	}
}
