// Command zslint runs ZeroSum's repo-specific static checks (hotpath,
// errcheck, goleak, wiresync, clock) over the module containing the given
// directory. It is stdlib-only — parsing and type-checking use go/parser
// and go/types with the source importer, so it needs no network and no
// tools beyond the Go distribution.
//
// Usage:
//
//	zslint [-json] [dir]
//
// dir defaults to "."; the conventional spelling `zslint ./...` also works
// (the whole module is always analyzed). Exit status is 0 when clean, 1
// when there are findings, 2 on load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"zerosum/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: zslint [-json] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		// Accept the conventional ./... spelling; the analyzer always
		// covers the whole module.
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zslint:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, lint.Checks(lint.DefaultOptions()))

	if *jsonOut {
		err = lint.WriteJSON(os.Stdout, diags)
	} else {
		err = lint.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zslint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
