// Command zslint runs ZeroSum's repo-specific static checks (hotpath,
// errcheck, goleak, wiresync, clock, guardedby, lockorder, atomic,
// goroutinestop) over the module containing the given directory. It is
// stdlib-only — parsing and type-checking use go/parser and go/types with
// the source importer, so it needs no network and no tools beyond the Go
// distribution.
//
// Usage:
//
//	zslint [-json] [-time] [-baseline FILE | -diff FILE] [-self] [dir]
//
// dir defaults to "."; the conventional spelling `zslint ./...` also works
// (the whole module is always analyzed).
//
//	-baseline FILE  record the current findings as the accepted set and
//	                exit 0: the ratchet's starting notch.
//	-diff FILE      report (and fail on) only findings not covered by the
//	                baseline — new problems, not inherited ones.
//	-self           run the analyzer's own fixture smoke test first and
//	                fail if any fixture's diagnostics diverge from golden.
//	-time           report per-check wall-clock timings on stderr.
//
// Exit status is 0 when clean (or after -baseline), 1 when there are
// (new) findings, 2 on load/usage/self-test errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zerosum/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	baseline := flag.String("baseline", "", "record current findings to `FILE` as the accepted baseline")
	diffFile := flag.String("diff", "", "fail only on findings not in baseline `FILE`")
	self := flag.Bool("self", false, "run the fixture self-test before analyzing")
	timings := flag.Bool("time", false, "report per-check runtimes on stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: zslint [-json] [-time] [-baseline FILE | -diff FILE] [-self] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *baseline != "" && *diffFile != "" {
		fmt.Fprintln(os.Stderr, "zslint: -baseline and -diff are mutually exclusive")
		os.Exit(2)
	}

	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		// Accept the conventional ./... spelling; the analyzer always
		// covers the whole module.
		dir = strings.TrimSuffix(flag.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zslint:", err)
		os.Exit(2)
	}

	if *self {
		start := time.Now()
		ok, err := lint.SelfTest(prog.Root, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zslint:", err)
			os.Exit(2)
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "zslint: self-test failed")
			os.Exit(2)
		}
		if *timings {
			fmt.Fprintf(os.Stderr, "zslint: self-test ok in %v\n", time.Since(start).Round(time.Millisecond))
		}
	}

	diags, perCheck := lint.RunTimed(prog, lint.Checks(lint.DefaultOptions()))
	if *timings {
		var total time.Duration
		for _, t := range perCheck {
			fmt.Fprintf(os.Stderr, "zslint: %-14s %8v\n", t.Check, t.Elapsed.Round(time.Millisecond))
			total += t.Elapsed
		}
		fmt.Fprintf(os.Stderr, "zslint: %-14s %8v\n", "total", total.Round(time.Millisecond))
	}

	if *baseline != "" {
		if err := lint.WriteBaselineFile(*baseline, lint.NewBaseline(diags)); err != nil {
			fmt.Fprintln(os.Stderr, "zslint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "zslint: baseline recorded to %s (%d finding(s))\n", *baseline, len(diags))
		return
	}
	if *diffFile != "" {
		base, err := lint.LoadBaselineFile(*diffFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zslint:", err)
			os.Exit(2)
		}
		diags = base.Diff(diags)
	}

	if *jsonOut {
		err = lint.WriteJSON(os.Stdout, diags)
	} else {
		err = lint.WriteText(os.Stdout, diags)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zslint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
