// Command zsreport post-processes ZeroSum's per-process logs (the CSV
// dumps from zsrun/zerosum, or the staged .zsbp stream) into utilization
// time-series charts and summaries — Figures 6 and 7 of the paper, from
// recorded data instead of a live run.
//
// Usage:
//
//	zsreport -lwp logs/zerosum.rank000.lwp.csv [-hwt ...hwt.csv] [-tsv]
//	zsreport -staged logs/zerosum.rank000.zsbp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"zerosum/internal/analysis"
	"zerosum/internal/export"
)

func main() {
	var (
		lwpPath    = flag.String("lwp", "", "LWP sample CSV")
		hwtPath    = flag.String("hwt", "", "HWT sample CSV")
		memPath    = flag.String("mem", "", "memory sample CSV")
		stagedPath = flag.String("staged", "", "staged .zsbp stream")
		tsv        = flag.Bool("tsv", false, "emit TSV instead of sparklines")
	)
	flag.Parse()
	if *lwpPath == "" && *hwtPath == "" && *memPath == "" && *stagedPath == "" {
		fmt.Fprintln(os.Stderr, "zsreport: give at least one of -lwp, -hwt, -mem, -staged")
		os.Exit(2)
	}
	if *lwpPath != "" {
		if err := reportLWP(*lwpPath, *tsv); err != nil {
			fatal(err)
		}
	}
	if *hwtPath != "" {
		if err := reportHWT(*hwtPath, *tsv); err != nil {
			fatal(err)
		}
	}
	if *memPath != "" {
		if err := reportMem(*memPath); err != nil {
			fatal(err)
		}
	}
	if *stagedPath != "" {
		if err := reportStaged(*stagedPath, *tsv); err != nil {
			fatal(err)
		}
	}
}

func reportLWP(path string, tsv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := export.ReadLWPCSV(f)
	if err != nil {
		return err
	}
	chart := analysis.NewStackedChart("LWP (threads) utilization over time — " + path)
	series := map[int]*analysis.Series{}
	kinds := map[int]string{}
	for _, s := range samples {
		sr := series[s.TID]
		if sr == nil {
			sr = &analysis.Series{Name: fmt.Sprintf("LWP %d user%%", s.TID)}
			series[s.TID] = sr
			chart.Add(sr)
		}
		sr.Append(s.TimeSec, s.UserPct)
		kinds[s.TID] = s.Kind
	}
	if tsv {
		return chart.WriteTSV(os.Stdout)
	}
	if err := chart.WriteSparklines(os.Stdout, 100); err != nil {
		return err
	}
	// Contention quick-look: final cumulative context switches per thread.
	last := map[int]export.LWPSample{}
	for _, s := range samples {
		last[s.TID] = s
	}
	tids := make([]int, 0, len(last))
	for tid := range last {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	fmt.Println("\nfinal counters:")
	for _, tid := range tids {
		s := last[tid]
		fmt.Printf("  LWP %-8d %-14s nvctx %8d  vctx %8d  last CPU %d\n",
			tid, s.Kind, s.NVCtx, s.VCtx, s.CPU)
	}
	return nil
}

func reportHWT(path string, tsv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := export.ReadHWTCSV(f)
	if err != nil {
		return err
	}
	chart := analysis.NewStackedChart("CPU core utilization over time — " + path)
	series := map[int]*analysis.Series{}
	for _, s := range samples {
		sr := series[s.CPU]
		if sr == nil {
			sr = &analysis.Series{Name: fmt.Sprintf("CPU %d user%%", s.CPU)}
			series[s.CPU] = sr
			chart.Add(sr)
		}
		sr.Append(s.TimeSec, s.UserPct)
	}
	if tsv {
		return chart.WriteTSV(os.Stdout)
	}
	return chart.WriteSparklines(os.Stdout, 100)
}

func reportMem(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	samples, err := export.ReadMemCSV(f)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("no memory samples in %s", path)
	}
	minFree := samples[0].FreeKB
	var peakRSS uint64
	var frees []float64
	for _, s := range samples {
		if s.FreeKB < minFree {
			minFree = s.FreeKB
		}
		if s.ProcRSSKB > peakRSS {
			peakRSS = s.ProcRSSKB
		}
		frees = append(frees, float64(s.FreeKB>>10))
	}
	fmt.Printf("memory — %s\n", path)
	fmt.Printf("  system free (MB) %s\n", analysis.Sparkline(frees, 0))
	fmt.Printf("  minimum free: %d MB of %d MB; peak process RSS: %d MB\n",
		minFree>>10, samples[len(samples)-1].TotalKB>>10, peakRSS>>10)
	return nil
}

func reportStaged(path string, tsv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := export.NewStagedReader(f)
	if err != nil {
		return err
	}
	steps, err := r.ReadAllSteps()
	if err != nil {
		return err
	}
	if len(steps) == 0 {
		return fmt.Errorf("no steps in %s", path)
	}
	// Build one series per variable.
	chart := analysis.NewStackedChart("staged stream — " + path)
	series := map[string]*analysis.Series{}
	for _, st := range steps {
		for name, vals := range st.Vars {
			if len(vals) == 0 {
				continue
			}
			sr := series[name]
			if sr == nil {
				sr = &analysis.Series{Name: name}
				series[name] = sr
				chart.Add(sr)
			}
			sr.Append(st.Time, vals[0])
		}
	}
	fmt.Printf("%d steps, %d variables\n", len(steps), len(series))
	if tsv {
		return chart.WriteTSV(os.Stdout)
	}
	// Sparkline only percentage-like variables to keep output readable.
	filtered := analysis.NewStackedChart(chart.Title)
	for _, sr := range chart.Series {
		if strings.HasSuffix(sr.Name, "_pct") {
			filtered.Add(sr)
		}
	}
	if len(filtered.Series) == 0 {
		filtered = chart
	}
	return filtered.WriteSparklines(os.Stdout, 100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsreport:", err)
	os.Exit(1)
}
