// Command zsrun is an srun-style front end for the simulated testbed: it
// translates launcher flags into a simulated job on a preset machine, runs
// the selected proxy application under ZeroSum monitoring, and writes the
// per-rank reports and CSV logs the paper's tool produces.
//
// Usage:
//
//	zsrun -n 8 -c 7 [-machine frontier] [-app miniqmc|pic|synthetic]
//	      [-threads-per-core 1] [-gpus-per-task 0] [-gpu-bind closest]
//	      [-omp-num-threads N] [-omp-proc-bind spread] [-omp-places cores]
//	      [-steps 96] [-no-monitor] [-logdir DIR] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"zerosum/internal/advisor"
	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/obs"
	"zerosum/internal/openmp"
	"zerosum/internal/report"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of MPI ranks")
		c        = flag.Int("c", 0, "cores per task (srun -c)")
		tpc      = flag.Int("threads-per-core", 1, "--threads-per-core")
		gpus     = flag.Int("gpus-per-task", 0, "--gpus-per-task")
		gpuBind  = flag.String("gpu-bind", "closest", "--gpu-bind: closest or none")
		machine  = flag.String("machine", "frontier", "machine preset")
		nodes    = flag.Int("nodes", 0, "node count (0 = auto)")
		app      = flag.String("app", "miniqmc", "workload: miniqmc, pic or synthetic")
		steps    = flag.Int("steps", 0, "override workload step count")
		ompN     = flag.Int("omp-num-threads", 0, "OMP_NUM_THREADS")
		ompBind  = flag.String("omp-proc-bind", "", "OMP_PROC_BIND: false, master, close, spread")
		ompPlace = flag.String("omp-places", "", "OMP_PLACES: threads, cores, sockets")
		noMon    = flag.Bool("no-monitor", false, "run without the ZeroSum thread")
		period   = flag.Duration("period", 0, "sampling period (default 1s)")
		logdir   = flag.String("logdir", "", "write per-rank logs and CSVs here")
		staged   = flag.Bool("staged", false, "with -logdir: also write per-rank staged .zsbp streams")
		agg      = flag.String("agg", "", "stream samples to zsaggd aggregator(s): one base URL, or a comma-separated leaf-tier list routed by consistent hash with failover")
		jobName  = flag.String("job", "zsrun", "job id used when streaming to -agg")
		trace    = flag.String("trace", "", "write the node-0 scheduling trace (Chrome trace JSON) here")
		advise   = flag.Bool("advise", false, "run the configuration advisor on the rank-0 report")
		summary  = flag.Bool("summary", true, "print the job-wide aggregated summary")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "print every rank's report (default: rank 0 only)")

		scenarioName  = flag.String("scenario", "", "run a multi-job scenario instead of one app: preset name (smoke, contention, fleet) or JSON config path")
		scenarioCSV   = flag.String("scenario-csv", "", "with -scenario: write the allocation-history CSV here")
		scenarioDry   = flag.Bool("scenario-dry", false, "with -scenario: schedule and report fairness only, don't execute the jobs")
		scenarioScale = flag.Float64("scenario-scale", 0, "with -scenario: simulated-runtime fraction of each job's scheduled duration (default 0.05)")

		stallTicks = flag.Int("stall-ticks", 0, "flag a thread stalled after N samples with no progress (0 = off)")
		budget     = flag.Float64("budget", 0, "monitor self-overhead budget in percent; exceeding it degrades sampling (0 = off)")
		selfRep    = flag.Bool("self-report", false, "include the monitor self-report section in reports")
		obsDump    = flag.String("obs-dump", "", "write the monitor's internal-tracing dump (JSON) to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/obs and /debug/pprof on this address while the job runs")
	)
	flag.Parse()

	if *scenarioName != "" {
		// Scenario fleets run many jobs back to back, so the node preset
		// defaults to the small laptop machine unless -machine was given
		// explicitly.
		scenMachine := "laptop"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "machine" {
				scenMachine = *machine
			}
		})
		var aggURLs []string
		for _, u := range strings.Split(*agg, ",") {
			if u = strings.TrimSpace(u); u != "" {
				aggURLs = append(aggURLs, u)
			}
		}
		mc := workload.MonitorConfig{Enabled: !*noMon, CPU: -1}
		if *period > 0 {
			mc.Period = sim.Time(period.Nanoseconds())
		}
		mc.StallTicks = *stallTicks
		runScenarioMode(scenarioOpts{
			name:      *scenarioName,
			csvPath:   *scenarioCSV,
			timeScale: *scenarioScale,
			dryRun:    *scenarioDry,
			machine:   scenMachine,
			seed:      *seed,
			noMonitor: *noMon,
			aggURLs:   aggURLs,
			monitor:   mc,
			verbose:   *verbose,
		})
		return
	}

	mk := func() *topology.Machine {
		m, err := topology.ByName(*machine)
		if err != nil {
			fatal(err)
		}
		return m
	}
	env, err := openmp.ParseEnv(itoa(*ompN), *ompBind, *ompPlace)
	if err != nil {
		fatal(err)
	}
	bind := slurm.GPUBindClosest
	if *gpuBind == "none" {
		bind = slurm.GPUBindNone
	}

	var job workload.App
	switch *app {
	case "miniqmc":
		mq := workload.DefaultMiniQMC()
		if env.NumThreads > 0 {
			mq.Threads = env.NumThreads
		}
		if *steps > 0 {
			mq.Steps = *steps
		}
		job = mq
	case "pic":
		pic := workload.DefaultPICHalo()
		if *steps > 0 {
			pic.Steps = *steps
		}
		job = pic
	case "synthetic":
		job = &workload.Synthetic{Threads: env.NumThreads, Work: 500 * sim.Millisecond, Repeats: maxInt(*steps, 1)}
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	mc := workload.MonitorConfig{Enabled: !*noMon, CPU: -1, Heartbeat: os.Stderr, HeartbeatEvery: 10}
	if *period > 0 {
		mc.Period = sim.Time(period.Nanoseconds())
	}
	mc.StallTicks = *stallTicks
	mc.Budget = obs.Budget{Enabled: *budget > 0, MaxPct: *budget}
	rec := obs.NewRecorder(0)
	if !*noMon {
		mc.Obs = rec
	}
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /debug/obs", obs.Handler("zsrun", rec, nil))
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//zerosum:detached debug server lives for the whole process; the OS reaps it at exit
		go func() {
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "zsrun: debug server:", err)
			}
		}()
	}
	// Per-rank streams feed optional sinks: staged .zsbp files (the
	// ADIOS2-style output path) and/or an aggd node agent shipping batches
	// to a zsaggd aggregator (the LDMS-style networked path).
	type stagedRank struct {
		file *os.File
		sink *export.StagedSink
	}
	stagedSinks := map[int]*stagedRank{}
	wantStaged := *staged && *logdir != "" && !*noMon
	var streamer *aggd.JobStreamer
	var aggURLs []string
	if *agg != "" && !*noMon {
		// A comma-separated -agg names a leaf tier: each rank's agent homes
		// on its consistent-hash leaf and fails over to siblings.
		for _, u := range strings.Split(*agg, ",") {
			if u = strings.TrimSpace(u); u != "" {
				aggURLs = append(aggURLs, u)
			}
		}
		if len(aggURLs) == 0 {
			fatal(fmt.Errorf("-agg %q names no endpoints", *agg))
		}
		streamer = aggd.NewJobStreamer(aggd.AgentConfig{URL: aggURLs[0], URLs: aggURLs, Job: *jobName})
	}
	if wantStaged || streamer != nil {
		if wantStaged {
			if err := os.MkdirAll(*logdir, 0o755); err != nil {
				fatal(err)
			}
		}
		mc.StreamFor = func(rank int, node string) *export.Stream {
			stream := &export.Stream{}
			if streamer != nil {
				stream = streamer.StreamFor(rank, node)
			}
			if wantStaged {
				path := filepath.Join(*logdir, fmt.Sprintf("zerosum.rank%03d.zsbp", rank))
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				w, err := export.NewStagedWriter(f)
				if err != nil {
					fatal(err)
				}
				sink := export.NewStagedSink(w)
				stagedSinks[rank] = &stagedRank{file: f, sink: sink}
				stream.Subscribe(sink.Subscriber())
			}
			return stream
		}
	}
	cfg := workload.Config{
		Machine: mk,
		Nodes:   *nodes,
		App:     job,
		Srun: slurm.Options{
			NTasks: *n, CoresPerTask: *c, ThreadsPerCore: *tpc,
			GPUsPerTask: *gpus, GPUBind: bind,
		},
		OMP:     env,
		Monitor: mc,
		Seed:    *seed,
	}
	if *trace != "" {
		cfg.TraceEvents = 2_000_000
	}
	fmt.Printf("# %s (simulated on %s)\n", cfg.Srun.CommandLine(*app), *machine)
	res, err := workload.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# job complete: %.3f s application runtime, %d ranks\n\n", res.WallSeconds, len(res.Ranks))

	for _, rr := range res.Ranks {
		if rr.Monitor == nil {
			continue
		}
		// Rank 0 writes the summary to stdout; all ranks write their
		// detailed report + CSVs to log files (paper §3.4/§3.6).
		opts := report.Options{Contention: true, Memory: true, Self: *selfRep}
		if rr.Rank == 0 || *verbose {
			if err := report.Write(os.Stdout, rr.Snapshot, opts); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		if *logdir != "" {
			if err := writeRankLogs(*logdir, rr, opts); err != nil {
				fatal(err)
			}
		}
	}
	if !*noMon && *summary {
		var snaps []core.Snapshot
		for _, rr := range res.Ranks {
			snaps = append(snaps, rr.Snapshot)
		}
		if js, err := report.Aggregate(snaps, core.EvalThresholds{}); err == nil {
			if err := report.WriteJobSummary(os.Stdout, js); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
	if !*noMon && *advise {
		machine := mk()
		fmt.Println("Configuration advice (rank 0):")
		advice := advisor.Advise(advisor.Input{
			Snapshot: res.Ranks[0].Snapshot,
			Machine:  machine,
			Srun:     cfg.Srun,
			OMP:      env,
		})
		if len(advice) == 0 {
			fmt.Println("  launch configuration looks good")
		}
		for _, a := range advice {
			fmt.Println(a)
		}
		fmt.Println()
	}
	if streamer != nil {
		for _, rr := range res.Ranks {
			if rr.Monitor == nil {
				continue
			}
			if err := streamer.FinishRank(rr.Rank, rr.Snapshot, rr.Monitor.RecvBytes()); err != nil {
				fmt.Fprintf(os.Stderr, "zsrun: snapshot for rank %d: %v\n", rr.Rank, err)
			}
		}
		if err := streamer.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "zsrun:", err)
		}
		st := streamer.Stats()
		fmt.Printf("# streamed %d events in %d batches to %s (dropped %d)\n",
			st.SentEvents, st.SentBatches, *agg, st.RingDrops+st.SendDrops)
		// In a tree deployment the summary lives at the root, one hop above
		// these leaves; the first endpoint is only a hint.
		fmt.Printf("#   curl %s/api/job/%s/summary\n", aggURLs[0], *jobName)
		fmt.Printf("#   curl %s/metrics\n", aggURLs[0])
	}
	for rank, sr := range stagedSinks {
		if err := sr.sink.Close(); err != nil {
			fatal(fmt.Errorf("staged rank %d: %w", rank, err))
		}
		if err := sr.file.Close(); err != nil {
			fatal(err)
		}
	}
	if *obsDump != "" && !*noMon {
		var self *obs.SelfStats
		if len(res.Ranks) > 0 && res.Ranks[0].Monitor != nil {
			s := res.Ranks[0].Monitor.SelfStats()
			self = &s
		}
		data, err := obs.EncodeDump(obs.BuildDump("zsrun", rec, self))
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*obsDump, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("# internal-tracing dump written to", *obsDump)
	}
	if *logdir != "" {
		fmt.Println("# logs written to", *logdir)
	}
	if *trace != "" && len(res.Traces) > 0 {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := res.Traces[0].WriteChromeTrace(f); err != nil {
			fatal(err)
		}
		fmt.Println("# scheduling trace written to", *trace)
	}
}

func writeRankLogs(dir string, rr workload.RankResult, opts report.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := filepath.Join(dir, fmt.Sprintf("zerosum.rank%03d", rr.Rank))
	logF, err := os.Create(base + ".log")
	if err != nil {
		return err
	}
	defer logF.Close()
	if err := report.Write(logF, rr.Snapshot, opts); err != nil {
		return err
	}
	type dump struct {
		suffix string
		fn     func(f *os.File) error
	}
	for _, d := range []dump{
		{".lwp.csv", func(f *os.File) error { return rr.Monitor.WriteLWPCSV(f) }},
		{".hwt.csv", func(f *os.File) error { return rr.Monitor.WriteHWTCSV(f) }},
		{".mem.csv", func(f *os.File) error { return rr.Monitor.WriteMemCSV(f) }},
		{".gpu.csv", func(f *os.File) error { return rr.Monitor.WriteGPUCSV(f) }},
	} {
		f, err := os.Create(base + d.suffix)
		if err != nil {
			return err
		}
		if err := d.fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func itoa(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf("%d", n)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsrun:", err)
	os.Exit(1)
}
