package main

import (
	"fmt"
	"os"
	"sort"

	"zerosum/internal/aggd"
	"zerosum/internal/scenario"
	"zerosum/internal/scenario/fairness"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// scenarioOpts carries the -scenario* flags into the multi-job path.
type scenarioOpts struct {
	name      string // preset name or JSON config path
	csvPath   string // allocation-history CSV destination ("" = skip)
	timeScale float64
	dryRun    bool // schedule + fairness only, no workload execution
	machine   string
	seed      uint64
	noMonitor bool
	aggURLs   []string
	monitor   workload.MonitorConfig
	verbose   bool
}

// runScenarioMode is zsrun's -scenario path: generate a job population,
// schedule it against the simulated cluster, report fairness, then (unless
// -scenario-dry) execute every admitted job through the real workload
// simulator — each job streaming through its own aggd agents (Job = spec
// ID) when -agg names an aggregator tier.
func runScenarioMode(o scenarioOpts) {
	cfg, err := scenario.Load(o.name)
	if err != nil {
		fatal(err)
	}
	gen, err := scenario.NewGenerator(cfg, o.seed)
	if err != nil {
		fatal(err)
	}
	specs := gen.Generate()
	sch, err := scenario.NewScheduler(cfg)
	if err != nil {
		fatal(err)
	}
	res := sch.Run(specs)

	fmt.Printf("# scenario %s: %d jobs over %d nodes × %d CPUs (seed %d)\n",
		cfg.Name, len(specs), cfg.Nodes, cfg.CPUsPerNode, o.seed)
	rep := fairness.Compute(res)
	if err := rep.Write(os.Stdout); err != nil {
		fatal(err)
	}
	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			fatal(err)
		}
		if err := fairness.WriteAllocCSV(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("# allocation history written to", o.csvPath)
	}
	if o.dryRun {
		return
	}

	mk := func() *topology.Machine {
		m, err := topology.ByName(o.machine)
		if err != nil {
			fatal(err)
		}
		return m
	}
	// Execute in admission order so the streamed traffic reaching the
	// aggregator tier follows the schedule's shape.
	order := make([]*scenario.JobOutcome, 0, len(res.Jobs))
	for _, out := range res.Jobs {
		if out.Done {
			order = append(order, out)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].FirstAdmitSec != order[j].FirstAdmitSec {
			return order[i].FirstAdmitSec < order[j].FirstAdmitSec
		}
		return order[i].Spec.Index < order[j].Spec.Index
	})

	for _, out := range order {
		spec := out.Spec
		jc, err := scenario.BuildJob(spec, len(dedupNodes(out.Placements)), scenario.ExecOptions{
			Machine:   mk,
			TimeScale: o.timeScale,
			Monitor:   o.monitor,
		})
		if err != nil {
			fatal(err)
		}
		var streamer *aggd.JobStreamer
		if len(o.aggURLs) > 0 && !o.noMonitor {
			streamer = aggd.NewJobStreamer(aggd.AgentConfig{URL: o.aggURLs[0], URLs: o.aggURLs, Job: spec.ID})
			jc.Monitor.StreamFor = streamer.StreamFor
		}
		wr, err := workload.Run(jc)
		if err != nil {
			fatal(fmt.Errorf("job %s: %w", spec.ID, err))
		}
		if streamer != nil {
			for _, rr := range wr.Ranks {
				if rr.Monitor == nil {
					continue
				}
				if err := streamer.FinishRank(rr.Rank, rr.Snapshot, rr.Monitor.RecvBytes()); err != nil {
					fmt.Fprintf(os.Stderr, "zsrun: %s rank %d snapshot: %v\n", spec.ID, rr.Rank, err)
				}
			}
			if err := streamer.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "zsrun:", err)
			}
		}
		if o.verbose {
			fmt.Printf("# %-16s queue=%-6s app=%-8s ranks=%d threads=%d wall=%.2fs wait=%.1fs preempts=%d\n",
				spec.ID, spec.Queue, spec.App, spec.Ranks, spec.Threads,
				wr.WallSeconds, out.WaitSec, out.Preemptions)
		}
	}
	fmt.Printf("# scenario complete: %d jobs executed", len(order))
	if len(o.aggURLs) > 0 && !o.noMonitor {
		fmt.Printf(", streamed to %s (per-job summaries at /api/jobs)", o.aggURLs[0])
	}
	fmt.Println()
}

// dedupNodes counts the distinct nodes a placement set spans.
func dedupNodes(ps []scenario.Placement) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range ps {
		if !seen[p.Node] {
			seen[p.Node] = true
			out = append(out, p.Node)
		}
	}
	return out
}
