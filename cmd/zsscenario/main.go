// Command zsscenario is the standalone multi-job fairness simulator: it
// generates a job population from a scenario (a built-in preset or a JSON
// config), schedules it against the simulated cluster with the weighted
// fair-share scheduler, and reports fairness metrics — per-queue share
// integrals, dominant-resource shares, Jain's index, preemption and
// starvation counts — plus, on request, the full allocation-history CSV
// and per-job outcomes. The run is a pure function of (scenario, seed):
// the same pair always reproduces the same schedule byte-for-byte, so a
// CSV from one host goldens against a rerun on any other.
//
// Usage:
//
//	zsscenario -scenario smoke|contention|fleet|<config.json> [-seed N]
//	           [-csv out.csv] [-jobs] [-events]
//
// To execute a scenario's jobs through the workload simulator and an
// aggregator tier (rather than only schedule them), use zsrun -scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"zerosum/internal/scenario"
	"zerosum/internal/scenario/fairness"
)

func main() {
	var (
		name    = flag.String("scenario", "smoke", "scenario preset (smoke, contention, fleet) or JSON config path")
		seed    = flag.Uint64("seed", 42, "generator seed; same scenario+seed replays the identical schedule")
		csvPath = flag.String("csv", "", "write the allocation-history CSV here")
		jobs    = flag.Bool("jobs", false, "print per-job outcomes (admission, waits, preemptions)")
		events  = flag.Bool("events", false, "print the scheduler event log")
	)
	flag.Parse()

	cfg, err := scenario.Load(*name)
	if err != nil {
		fatal(err)
	}
	gen, err := scenario.NewGenerator(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	sch, err := scenario.NewScheduler(cfg)
	if err != nil {
		fatal(err)
	}
	res := sch.Run(gen.Generate())

	fmt.Printf("# scenario %s: %d jobs over %d nodes × %d CPUs (seed %d)\n",
		cfg.Name, len(res.Specs), cfg.Nodes, cfg.CPUsPerNode, *seed)
	rep := fairness.Compute(res)
	if err := rep.Write(os.Stdout); err != nil {
		fatal(err)
	}

	if *events {
		fmt.Println("\n# event log")
		for _, ev := range res.Events {
			fmt.Printf("%10.3fs %-7s %-18s queue=%-8s ranks=%-3d cpus=%-3d total=%d/%d overlap=%d pending=%d\n",
				ev.At.Seconds(), ev.Kind, ev.Job, ev.Queue, ev.Ranks, ev.CPUs,
				ev.TotalCPUs, res.CapacityCPUs, ev.OverlapCPUs, ev.Pending)
		}
	}
	if *jobs {
		fmt.Println("\n# job outcomes")
		outs := append([]*scenario.JobOutcome(nil), res.Jobs...)
		sort.Slice(outs, func(i, j int) bool { return outs[i].Spec.Index < outs[j].Spec.Index })
		for _, out := range outs {
			switch {
			case out.Rejected:
				fmt.Printf("%-18s %-8s REJECTED (ranks=%d cpus/rank=%d gpus/rank=%d cannot fit)\n",
					out.Spec.ID, out.Spec.Queue, out.Spec.Ranks, out.Spec.CPUsPerRank, out.Spec.GPUsPerRank)
			default:
				starved := ""
				if out.Starved {
					starved = " STARVED"
				}
				fmt.Printf("%-18s %-8s app=%-8s ranks=%-3d wait=%7.1fs run=%7.1fs preempts=%d cpu_s=%.0f%s\n",
					out.Spec.ID, out.Spec.Queue, out.Spec.App, out.Spec.Ranks,
					out.WaitSec, out.FinishSec-out.FirstAdmitSec, out.Preemptions, out.CPUSeconds, starved)
			}
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := fairness.WriteAllocCSV(f, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("# allocation history written to", *csvPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zsscenario:", err)
	os.Exit(1)
}
