package zerosum_test

import (
	"fmt"
	"os"

	"zerosum"

	"zerosum/internal/openmp"
	"zerosum/internal/topology"
)

// ExampleLstopo prints the hwloc-style topology of the paper's Listing 1
// test system.
func ExampleLstopo() {
	m, _ := zerosum.MachineByName("laptop")
	fmt.Print(zerosum.Lstopo(m))
	// Output:
	// Machine L#0 (16GB)
	//   Package L#0
	//     L3Cache L#0 12MB
	//       L2Cache L#0 1280KB
	//         L1Cache L#0 48KB
	//           Core L#0
	//             PU L#0 P#0
	//             PU L#1 P#4
	//       L2Cache L#1 1280KB
	//         L1Cache L#1 48KB
	//           Core L#1
	//             PU L#2 P#1
	//             PU L#3 P#5
	//       L2Cache L#2 1280KB
	//         L1Cache L#2 48KB
	//           Core L#2
	//             PU L#4 P#2
	//             PU L#5 P#6
	//       L2Cache L#3 1280KB
	//         L1Cache L#3 48KB
	//           Core L#3
	//             PU L#6 P#3
	//             PU L#7 P#7
}

// ExampleWelchTTest compares two runtime distributions the way the paper's
// overhead experiment does.
func ExampleWelchTTest() {
	baseline := []float64{27.31, 27.35, 27.33, 27.36, 27.32}
	withTool := []float64{27.32, 27.34, 27.33, 27.35, 27.33}
	r, _ := zerosum.WelchTTest(baseline, withTool)
	fmt.Printf("indistinguishable: %v\n", r.P > 0.05)
	// Output:
	// indistinguishable: true
}

// ExampleRunJob launches a tiny simulated MPI+OpenMP job on a Frontier node
// under ZeroSum monitoring and evaluates its configuration.
func ExampleRunJob() {
	app := zerosum.DefaultMiniQMC()
	app.Steps = 4
	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Frontier,
		App:     app,
		Srun:    zerosum.SrunOptions{NTasks: 2, CoresPerTask: 7},
		OMP: zerosum.OMPEnv{NumThreads: 7, Bind: openmp.BindSpread,
			Places: openmp.PlacesCores},
		Monitor: zerosum.JobMonitor{Enabled: true},
		Seed:    1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	snap := res.Ranks[0].Snapshot
	fmt.Printf("ranks: %d\n", len(res.Ranks))
	fmt.Printf("rank 0 cpuset: [%s]\n", snap.ProcessAff)
	fmt.Printf("misconfigurations: %d\n", len(zerosum.Evaluate(snap, zerosum.EvalThresholds{})))
	// Output:
	// ranks: 2
	// rank 0 cpuset: [1-7]
	// misconfigurations: 0
}

// ExampleAdvise diagnoses the paper's Table 1 default launch and proposes
// the -c7 + spread/cores fix.
func ExampleAdvise() {
	app := zerosum.DefaultMiniQMC()
	app.Steps = 6
	bad := zerosum.SrunOptions{NTasks: 8}
	badEnv := zerosum.OMPEnv{NumThreads: 7}
	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Frontier,
		App:     app,
		Srun:    bad,
		OMP:     badEnv,
		Monitor: zerosum.JobMonitor{Enabled: true},
		Seed:    1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	advice := zerosum.Advise(zerosum.AdvisorInput{
		Snapshot: res.Ranks[0].Snapshot,
		Machine:  topology.Frontier(),
		Srun:     bad,
		OMP:      badEnv,
	})
	for _, a := range advice {
		if a.Srun != nil {
			fmt.Println(a.Srun.CommandLine("miniqmc"))
		}
	}
	// Output:
	// srun -n8 -c7 miniqmc
}
