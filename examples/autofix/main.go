// autofix demonstrates the two configuration-repair paths built on top of
// ZeroSum's evaluation (§3.2 + the §3.1 future-work idea):
//
//  1. The advisor: run a misconfigured job, turn the monitor's findings
//     into a corrected srun/OMP configuration, re-run, compare.
//  2. Auto-rebind: let the monitor itself spread piled-up threads across
//     the cpuset mid-run.
package main

import (
	"fmt"
	"log"

	"zerosum/internal/advisor"
	"zerosum/internal/openmp"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

func run(srun slurm.Options, env openmp.Env, rebindAfter int) *workload.Result {
	mq := workload.DefaultMiniQMC()
	mq.Steps = 24
	res, err := workload.Run(workload.Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun:    srun,
		OMP:     env,
		Monitor: workload.MonitorConfig{Enabled: true, CPU: -1, RebindAfter: rebindAfter},
		Sched:   sched.Params{Quantum: 200 * sim.Microsecond, Timeslice: 400 * sim.Microsecond},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	badSrun := slurm.Options{NTasks: 8}
	badEnv := openmp.Env{NumThreads: 7}

	fmt.Println("== 1. The misconfigured default launch ==")
	bad := run(badSrun, badEnv, 0)
	fmt.Printf("%s -> %.2f s\n\n", badSrun.CommandLine("miniqmc"), bad.WallSeconds)

	fmt.Println("== 2. What the advisor says ==")
	advice := advisor.Advise(advisor.Input{
		Snapshot: bad.Ranks[0].Snapshot,
		Machine:  topology.Frontier(),
		Srun:     badSrun,
		OMP:      badEnv,
	})
	var fix *advisor.Advice
	for i := range advice {
		fmt.Println(advice[i])
		if advice[i].Srun != nil && fix == nil {
			fix = &advice[i]
		}
	}
	if fix == nil {
		log.Fatal("no launch fix proposed")
	}

	fmt.Println("\n== 3. Re-run with the advised configuration ==")
	good := run(*fix.Srun, *fix.OMP, 0)
	fmt.Printf("%s -> %.2f s (%.2fx faster)\n\n",
		fix.Srun.CommandLine("miniqmc"), good.WallSeconds, bad.WallSeconds/good.WallSeconds)

	fmt.Println("== 4. Auto-rebind: fix a bad OMP_PROC_BIND=master binding mid-run ==")
	masterEnv := openmp.Env{NumThreads: 7, Bind: openmp.BindMaster, Places: openmp.PlacesCores}
	c7 := slurm.Options{NTasks: 8, CoresPerTask: 7}
	stuck := run(c7, masterEnv, 0)
	healed := run(c7, masterEnv, 3)
	fmt.Printf("master binding, no intervention: %.2f s\n", stuck.WallSeconds)
	fmt.Printf("master binding, auto-rebind on : %.2f s (%.2fx faster)\n",
		healed.WallSeconds, stuck.WallSeconds/healed.WallSeconds)
	for _, ev := range healed.Ranks[0].Monitor.Rebinds() {
		fmt.Println("  ", ev)
	}
}
