// heatmap reproduces Figure 5: a gyrokinetic PIC-like code's MPI
// point-to-point traffic collected by ZeroSum's PMPI wrappers across 128
// ranks, rendered as a communication heatmap with its strong
// nearest-neighbour diagonal.
package main

import (
	"fmt"
	"log"
	"os"

	"zerosum"

	"zerosum/internal/export"
	"zerosum/internal/topology"
)

func main() {
	pic := zerosum.DefaultPICHalo()
	pic.Steps = 10

	const ranks = 128
	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Frontier,
		Nodes:   ranks / 8,
		App:     pic,
		Srun:    zerosum.SrunOptions{NTasks: ranks, CoresPerTask: 7},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	hm := zerosum.HeatmapFromJob(res)
	fmt.Printf("%d ranks, %.3e bytes total, nearest-neighbour fraction %.3f\n\n",
		ranks, hm.Total(), hm.BandFraction(1))
	if err := hm.WriteASCII(os.Stdout, 64); err != nil {
		log.Fatal(err)
	}

	// The same matrix as ZeroSum's CSV log, ready for cmd/heatmap.
	f, err := os.Create("comm.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := export.WriteCommCSV(f, res.World.RecvMatrix()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote comm.csv (render with: go run ./cmd/heatmap -size 128 -in comm.csv)")
}
