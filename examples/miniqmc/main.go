// miniqmc reproduces the paper's central story (§4, Tables 1-3): the same
// miniQMC application launched three ways on a Frontier node, with ZeroSum
// exposing why the default configuration is 2-3x slower — every thread
// time-slicing one core — and how -c7 plus OMP_PROC_BIND=spread fixes it.
package main

import (
	"fmt"
	"log"
	"os"

	"zerosum/internal/core"
	"zerosum/internal/experiments"
	"zerosum/internal/report"
)

func main() {
	const scale = 0.25 // quarter of the paper's run length
	fmt.Println("miniQMC on a simulated Frontier node, three launch configurations")
	fmt.Printf("(workload at %.0f%% of the paper's scale)\n\n", scale*100)

	var labels []string
	var snaps []core.Snapshot
	for i, run := range []func(float64, uint64) (*experiments.TableResult, error){
		experiments.Table1, experiments.Table2, experiments.Table3,
	} {
		tr, err := run(scale, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d. %-62s %6.2f s  (paper: %.2f s)\n", i+1, tr.Command, tr.WallSeconds, tr.PaperSeconds)
		labels = append(labels, tr.Label)
		snaps = append(snaps, tr.Snapshot)
	}
	fmt.Println()
	if err := report.WriteComparison(os.Stdout, labels, snaps); err != nil {
		log.Fatal(err)
	}

	fmt.Println("What ZeroSum's configuration evaluation says about the default launch:")
	for _, w := range core.Evaluate(snaps[0], core.EvalThresholds{}) {
		fmt.Println(" ", w)
	}
}
