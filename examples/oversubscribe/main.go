// oversubscribe demonstrates ZeroSum's misconfiguration detection (§2
// "check for misconfiguration", §3.5 contention report): a job deliberately
// launched with more busy threads than allowed CPUs, plus a deadlocked run,
// and what the monitor reports about each.
package main

import (
	"fmt"
	"log"
	"os"

	"zerosum"

	"zerosum/internal/core"
	"zerosum/internal/openmp"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

func main() {
	fmt.Println("== 1. Oversubscribed: 12 busy threads on a 4-core laptop cpuset ==")
	app := &workload.Synthetic{Threads: 12, Work: 2 * sim.Second, SysFrac: 0.02}
	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Laptop4Core,
		App:     app,
		Srun:    zerosum.SrunOptions{NTasks: 1, CoresPerTask: 1, ThreadsPerCore: 1},
		OMP:     zerosum.OMPEnv{NumThreads: 12, Bind: openmp.BindClose, Places: openmp.PlacesThreads},
		Monitor: zerosum.JobMonitor{Enabled: true, Period: 250 * sim.Millisecond},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	snap := res.Ranks[0].Snapshot
	fmt.Printf("runtime: %.2f s; per-thread utilization and contention:\n\n", res.WallSeconds)
	if err := zerosum.WriteReport(os.Stdout, snap, zerosum.ReportOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconfiguration evaluation:")
	for _, w := range zerosum.Evaluate(snap, zerosum.EvalThresholds{}) {
		fmt.Println(" ", w)
	}

	fmt.Println("\n== 2. Deadlock detection: every thread blocked forever ==")
	deadRes, err := runDeadlocked()
	if err != nil {
		log.Fatal(err)
	}
	if deadRes.DeadlockSuspected {
		fmt.Println("ZeroSum heuristic: possible deadlock — all application threads idle")
		for _, w := range core.Evaluate(deadRes, core.EvalThresholds{}) {
			fmt.Println(" ", w)
		}
	} else {
		fmt.Println("no deadlock detected (unexpected)")
	}
}

// deadlocked is a tiny app whose threads wait on a gate nobody signals; a
// watchdog releases them after the monitor has had time to notice, so the
// simulation itself can end.
type deadlocked struct{}

func (deadlocked) Name() string { return "stuck" }

func (deadlocked) Build(rc *workload.RankCtx) error {
	g := rc.K.NewGate()
	rc.K.NewTask(rc.Proc, "stuck", sched.Seq(
		sched.Call{Fn: func(sim.Time) { rc.MPI.Init() }},
		sched.Compute{Work: 100 * sim.Millisecond},
		sched.WaitGate{G: g},
	))
	rc.Job.Q.After(10*sim.Second, func(sim.Time) { g.Broadcast() })
	return nil
}

func runDeadlocked() (core.Snapshot, error) {
	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Laptop4Core,
		App:     deadlocked{},
		Srun:    zerosum.SrunOptions{NTasks: 1, CoresPerTask: 2, ThreadsPerCore: 1},
		Monitor: zerosum.JobMonitor{Enabled: true, Period: 500 * sim.Millisecond, DeadlockSamples: 4},
		Seed:    1,
	})
	if err != nil {
		return core.Snapshot{}, err
	}
	return res.Ranks[0].Snapshot, nil
}
