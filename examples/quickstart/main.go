// Quickstart: run a small simulated MPI+OpenMP job on a Frontier node under
// ZeroSum monitoring and print the rank-0 utilization report.
package main

import (
	"fmt"
	"log"
	"os"

	"zerosum"

	"zerosum/internal/openmp"
	"zerosum/internal/topology"
)

func main() {
	app := zerosum.DefaultMiniQMC()
	app.Steps = 12 // keep the demo quick

	res, err := zerosum.RunJob(zerosum.JobConfig{
		Machine: topology.Frontier,
		App:     app,
		// The paper's well-configured launch: srun -n8 -c7 with one
		// OpenMP thread pinned per core.
		Srun: zerosum.SrunOptions{NTasks: 8, CoresPerTask: 7},
		OMP: zerosum.OMPEnv{
			NumThreads: 7,
			Bind:       openmp.BindSpread,
			Places:     openmp.PlacesCores,
		},
		Monitor: zerosum.JobMonitor{Enabled: true},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application runtime: %.3f s across %d ranks\n\n", res.WallSeconds, len(res.Ranks))
	if err := zerosum.WriteReport(os.Stdout, res.Ranks[0].Snapshot, zerosum.ReportOptions{
		Contention: true,
		Memory:     true,
	}); err != nil {
		log.Fatal(err)
	}
}
