// realproc runs ZeroSum's always-on library mode against THIS process on a
// real Linux host: it spawns some busy and some sleepy goroutines (which
// the Go runtime maps onto OS threads — LWPs), monitors them through the
// live /proc at a fast period, and prints the genuine utilization report.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"zerosum"
)

func main() {
	if runtime.GOOS != "linux" {
		log.Fatal("realproc needs a Linux /proc")
	}

	mon, err := zerosum.MonitorSelf(zerosum.MonitorConfig{
		Period:         200 * time.Millisecond,
		HeartbeatEvery: 5,
		Heartbeat:      os.Stderr,
		KeepSeries:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Generate load: two spinning workers and one sleeper, on locked OS
	// threads so they are distinct LWPs in /proc.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.LockOSThread()
			x := 0.0
			for ctx.Err() == nil {
				for i := 0; i < 1_000_000; i++ {
					x += float64(i % 7)
				}
			}
			_ = x
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		runtime.LockOSThread()
		<-ctx.Done()
	}()

	if err := mon.Run(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\nObserved %d samples of PID %d on %s through the live /proc:\n\n",
		mon.Samples(), mon.PID(), mon.Hostname())
	if err := zerosum.WriteReport(os.Stdout, mon.Snapshot(), zerosum.ReportOptions{
		Memory: true,
	}); err != nil {
		log.Fatal(err)
	}

	// Dump the sampled time series like the tool's per-process CSV log.
	if err := mon.WriteLWPCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
