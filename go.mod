module zerosum

go 1.22
