// Package advisor implements the configuration-evaluation step the paper
// scopes as future work (§3.2: "a diagnosis would require an evaluation of
// the existing configuration as well as a comparison to a known good
// configuration"): it turns a ZeroSum snapshot plus knowledge of the
// machine into concrete launch-configuration changes — a corrected srun
// line and OpenMP environment — and can verify its own advice by measuring
// the reconfigured job.
package advisor

import (
	"fmt"
	"strings"

	"zerosum/internal/core"
	"zerosum/internal/openmp"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
)

// Advice is one recommended configuration change.
type Advice struct {
	// Finding is the evaluation result the advice addresses.
	Finding core.Warning
	// Explanation says why the change should help, in user terms.
	Explanation string
	// Srun and OMP, when non-nil, are the corrected launch settings.
	Srun *slurm.Options
	// OMP is the corrected OpenMP environment.
	OMP *openmp.Env
}

func (a Advice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n  -> %s", a.Finding, a.Explanation)
	if a.Srun != nil {
		fmt.Fprintf(&b, "\n  -> launch: %s", a.Srun.CommandLine("<app>"))
	}
	if a.OMP != nil {
		fmt.Fprintf(&b, "\n  -> environment: OMP_NUM_THREADS=%d OMP_PROC_BIND=%s OMP_PLACES=%s",
			a.OMP.NumThreads, a.OMP.Bind, a.OMP.Places)
	}
	return b.String()
}

// Input bundles what the advisor reasons over.
type Input struct {
	// Snapshot is rank 0's (or any representative rank's) monitor output.
	Snapshot core.Snapshot
	// Machine describes the node.
	Machine *topology.Machine
	// Srun is the launch configuration the job actually used.
	Srun slurm.Options
	// OMP is the OpenMP environment the job actually used.
	OMP openmp.Env
	// Thresholds tunes the underlying evaluation.
	Thresholds core.EvalThresholds
}

// Advise evaluates the snapshot and proposes fixes, most impactful first.
func Advise(in Input) []Advice {
	warnings := core.Evaluate(in.Snapshot, in.Thresholds)
	var out []Advice
	for _, w := range warnings {
		switch w.Kind {
		case core.WarnSingleCore:
			if a := fixSingleCore(in, w); a != nil {
				out = append(out, *a)
			}
		case core.WarnThreadMigration:
			out = append(out, fixMigration(in, w))
		case core.WarnUnderutilized:
			if a := fixUnderutilized(in, w); a != nil {
				out = append(out, *a)
			}
		case core.WarnIdleGPU:
			out = append(out, Advice{
				Finding: w,
				Explanation: "the assigned GPU is nearly idle; drop --gpus-per-task " +
					"or move more work onto the device so the allocation is not wasted",
			})
		case core.WarnLowMemory:
			out = append(out, Advice{
				Finding: w,
				Explanation: "system memory headroom is nearly exhausted; reduce ranks " +
					"per node or the per-rank working set before the OOM killer intervenes",
			})
		case core.WarnDeadlockHint:
			out = append(out, Advice{
				Finding:     w,
				Explanation: "no thread has made CPU progress for several sampling periods; attach a debugger or inspect the ZeroSum backtrace report",
			})
		}
	}
	return out
}

// busyAppThreads counts application threads doing real work.
func busyAppThreads(snap core.Snapshot) int {
	n := 0
	for _, l := range snap.LWPs {
		if l.Kind != core.KindMain && l.Kind != core.KindOpenMP {
			continue
		}
		if l.UTimePct+l.STimePct >= 5 {
			n++
		}
	}
	return n
}

// fixSingleCore handles the Table 1 disaster: N busy threads confined to
// one core. The fix depends on whether the confinement comes from the
// process cpuset (ask Slurm for more cores) or from thread binding within
// a large cpuset (fix OMP_PROC_BIND).
func fixSingleCore(in Input, w core.Warning) *Advice {
	threads := busyAppThreads(in.Snapshot)
	if threads <= 1 {
		return nil
	}
	cpusetCores := coresIn(in.Machine, in.Snapshot.ProcessAff)
	if cpusetCores <= 1 {
		// The launcher only granted one core: ask for one per thread.
		usable := 0
		for _, c := range in.Machine.Cores() {
			if !c.Reserved {
				usable++
			}
		}
		want := threads
		if in.Srun.NTasks > 0 && want*in.Srun.NTasks > usable {
			want = usable / in.Srun.NTasks
		}
		if want <= 1 {
			return &Advice{Finding: w, Explanation: "the node cannot grant more cores; reduce OMP_NUM_THREADS instead"}
		}
		srun := in.Srun
		srun.CoresPerTask = want
		omp := in.OMP
		omp.Bind = openmp.BindSpread
		omp.Places = openmp.PlacesCores
		return &Advice{
			Finding: w,
			Explanation: fmt.Sprintf(
				"%d busy threads share one core because the launcher granted a single-core cpuset; request -c%d and pin one thread per core",
				threads, want),
			Srun: &srun,
			OMP:  &omp,
		}
	}
	// The cpuset is large but binding piled threads up (OMP_PROC_BIND=
	// master, or a runtime default gone wrong): spread over cores.
	omp := in.OMP
	omp.Bind = openmp.BindSpread
	omp.Places = openmp.PlacesCores
	return &Advice{
		Finding: w,
		Explanation: fmt.Sprintf(
			"the cpuset spans %d cores but thread binding stacked %d busy threads on one of them; use OMP_PROC_BIND=spread OMP_PLACES=cores",
			cpusetCores, threads),
		OMP: &omp,
	}
}

// fixMigration handles unbound threads bouncing between cores (Table 2 ->
// Table 3).
func fixMigration(in Input, w core.Warning) Advice {
	omp := in.OMP
	omp.Bind = openmp.BindSpread
	omp.Places = openmp.PlacesCores
	return Advice{
		Finding: w,
		Explanation: "threads migrate between cores, losing cache state; pin them with " +
			"OMP_PROC_BIND=spread OMP_PLACES=cores",
		OMP: &omp,
	}
}

// fixUnderutilized handles allocations larger than the work.
func fixUnderutilized(in Input, w core.Warning) *Advice {
	threads := busyAppThreads(in.Snapshot)
	cores := coresIn(in.Machine, in.Snapshot.ProcessAff)
	if threads == 0 || cores <= threads {
		return nil
	}
	srun := in.Srun
	srun.CoresPerTask = threads
	return &Advice{
		Finding: w,
		Explanation: fmt.Sprintf(
			"only %d of %d allocated cores do work; request -c%d (or raise OMP_NUM_THREADS to %d) so the allocation is not wasted",
			threads, cores, threads, cores),
		Srun: &srun,
	}
}

// coresIn counts distinct cores covered by a cpuset.
func coresIn(m *topology.Machine, set topology.CPUSet) int {
	seen := map[*topology.Core]bool{}
	for _, pu := range set.List() {
		if c := m.CoreOf(pu); c != nil {
			seen[c] = true
		}
	}
	return len(seen)
}
