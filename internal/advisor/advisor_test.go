package advisor

import (
	"strings"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/openmp"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// runJob executes a scaled miniQMC with the given launch settings and
// returns the result plus rank-0 snapshot.
func runJob(t *testing.T, srun slurm.Options, env openmp.Env, schedP sched.Params) (*workload.Result, core.Snapshot) {
	t.Helper()
	mq := workload.DefaultMiniQMC()
	mq.Steps = 10
	mq.WorkPerStep = 20 * sim.Millisecond
	res, err := workload.Run(workload.Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun:    srun,
		OMP:     env,
		Monitor: workload.MonitorConfig{Enabled: true, Period: 100 * sim.Millisecond, CPU: -1},
		Sched:   schedP,
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, res.Ranks[0].Snapshot
}

// TestAdviceFixesDefaultLaunch closes the loop on the paper's central
// story: measure the misconfigured default launch (Table 1), take the
// advisor's recommendation, re-run with it, and verify the speedup the
// paper demonstrates by hand.
func TestAdviceFixesDefaultLaunch(t *testing.T) {
	badSrun := slurm.Options{NTasks: 8}
	badEnv := openmp.Env{NumThreads: 7}
	badSched := sched.Params{Quantum: 100 * sim.Microsecond, Timeslice: 200 * sim.Microsecond}
	resBad, snapBad := runJob(t, badSrun, badEnv, badSched)

	advice := Advise(Input{
		Snapshot: snapBad,
		Machine:  topology.Frontier(),
		Srun:     badSrun,
		OMP:      badEnv,
	})
	if len(advice) == 0 {
		t.Fatal("advisor found nothing wrong with the Table 1 launch")
	}
	var fix *Advice
	for i := range advice {
		if advice[i].Srun != nil {
			fix = &advice[i]
			break
		}
	}
	if fix == nil {
		t.Fatalf("no launch fix among: %v", advice)
	}
	if fix.Srun.CoresPerTask != 7 {
		t.Fatalf("recommended -c%d, want -c7", fix.Srun.CoresPerTask)
	}
	if fix.OMP == nil || fix.OMP.Bind != openmp.BindSpread || fix.OMP.Places != openmp.PlacesCores {
		t.Fatalf("recommended OMP = %+v, want spread/cores", fix.OMP)
	}
	// Apply the advice and measure.
	resFixed, snapFixed := runJob(t, *fix.Srun, *fix.OMP, sched.Params{})
	speedup := resBad.WallSeconds / resFixed.WallSeconds
	if speedup < 2.0 {
		t.Fatalf("advised config speedup = %.2fx, want >= 2x (paper: 2.3x)", speedup)
	}
	// And the fixed run is clean.
	remaining := Advise(Input{
		Snapshot: snapFixed,
		Machine:  topology.Frontier(),
		Srun:     *fix.Srun,
		OMP:      *fix.OMP,
	})
	for _, a := range remaining {
		if a.Finding.Kind == core.WarnSingleCore {
			t.Fatalf("single-core finding persists after the fix: %v", a)
		}
	}
}

// TestAdviceFixesMasterBinding: a large cpuset with OMP_PROC_BIND=master
// stacks the whole team on one core; the advisor must recommend a binding
// change, not more cores.
func TestAdviceFixesMasterBinding(t *testing.T) {
	srun := slurm.Options{NTasks: 8, CoresPerTask: 7}
	env := openmp.Env{NumThreads: 7, Bind: openmp.BindMaster, Places: openmp.PlacesCores}
	schedP := sched.Params{Quantum: 100 * sim.Microsecond, Timeslice: 200 * sim.Microsecond}
	resBad, snap := runJob(t, srun, env, schedP)

	advice := Advise(Input{Snapshot: snap, Machine: topology.Frontier(), Srun: srun, OMP: env})
	var fix *Advice
	for i := range advice {
		if advice[i].Finding.Kind == core.WarnSingleCore {
			fix = &advice[i]
			break
		}
	}
	if fix == nil {
		t.Fatalf("master-binding pileup not diagnosed: %v", advice)
	}
	if fix.Srun != nil {
		t.Fatalf("should fix binding, not cores: %v", fix)
	}
	if fix.OMP == nil || fix.OMP.Bind != openmp.BindSpread {
		t.Fatalf("want spread binding, got %v", fix.OMP)
	}
	if !strings.Contains(fix.Explanation, "binding") {
		t.Fatalf("explanation should mention binding: %s", fix.Explanation)
	}
	resFixed, _ := runJob(t, srun, *fix.OMP, sched.Params{})
	if speedup := resBad.WallSeconds / resFixed.WallSeconds; speedup < 2.0 {
		t.Fatalf("binding fix speedup = %.2fx, want >= 2x", speedup)
	}
}

// TestAdviceUnderutilized: a 7-core cpuset running 2 threads wastes cores.
func TestAdviceUnderutilized(t *testing.T) {
	srun := slurm.Options{NTasks: 8, CoresPerTask: 7}
	env := openmp.Env{NumThreads: 2, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	// A 2-thread job finishes fast; give the monitor enough samples to
	// observe per-thread utilization (a single observation reads as 0%).
	mq := workload.DefaultMiniQMC()
	mq.Steps = 40
	mq.WorkPerStep = 20 * sim.Millisecond
	res, err := workload.Run(workload.Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun:    srun,
		OMP:     env,
		Monitor: workload.MonitorConfig{Enabled: true, Period: 100 * sim.Millisecond, CPU: -1},
		Seed:    21,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Ranks[0].Snapshot
	advice := Advise(Input{Snapshot: snap, Machine: topology.Frontier(), Srun: srun, OMP: env})
	var found *Advice
	for i := range advice {
		if advice[i].Finding.Kind == core.WarnUnderutilized {
			found = &advice[i]
		}
	}
	if found == nil {
		t.Fatalf("underutilization not diagnosed: %v", advice)
	}
	if found.Srun == nil || found.Srun.CoresPerTask != 2 {
		t.Fatalf("want -c2 recommendation, got %v", found)
	}
}

// TestAdviceCleanRunQuiet: a healthy run generates no launch changes.
func TestAdviceCleanRunQuiet(t *testing.T) {
	srun := slurm.Options{NTasks: 8, CoresPerTask: 7}
	env := openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	_, snap := runJob(t, srun, env, sched.Params{})
	advice := Advise(Input{Snapshot: snap, Machine: topology.Frontier(), Srun: srun, OMP: env})
	for _, a := range advice {
		if a.Srun != nil || a.Finding.Kind == core.WarnSingleCore {
			t.Fatalf("clean run got launch advice: %v", a)
		}
	}
}

// TestAdviceString renders usable text.
func TestAdviceString(t *testing.T) {
	srun := slurm.Options{NTasks: 8, CoresPerTask: 7}
	env := openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	a := Advice{
		Finding:     core.Warning{Kind: core.WarnSingleCore, Message: "pileup"},
		Explanation: "do the thing",
		Srun:        &srun,
		OMP:         &env,
	}
	s := a.String()
	for _, want := range []string{"single-core", "do the thing", "-c7", "OMP_PROC_BIND=spread"} {
		if !strings.Contains(s, want) {
			t.Errorf("advice text missing %q:\n%s", want, s)
		}
	}
}
