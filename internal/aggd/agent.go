package aggd

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/obs"
	"zerosum/internal/sim"
)

// AgentConfig tunes a node agent.
type AgentConfig struct {
	// URL is the aggregator base URL, e.g. "http://aggd:9100".
	URL string
	// URLs is the failover-ordered endpoint list for tree deployments
	// (typically Router.Order for this stream): shipments go to the first
	// entry, and when a shipment exhausts its retries there the agent
	// re-homes to the next endpoint whose /healthz answers, bumping its
	// epoch and restarting sequence numbering (see Rehome semantics on
	// Agent). Empty falls back to [URL].
	URLs []string
	// Job, Node, Rank identify this stream at the aggregator.
	Job  string
	Node string
	Rank int
	// Epoch identifies this incarnation of the (job, node, rank) stream.
	// Batch sequence numbers restart at 0 inside each epoch, so a process
	// that restarts its agent must bump the epoch or the aggregator will
	// discard the new stream's batches as replays of old sequence numbers.
	Epoch uint64

	// RingCap bounds the in-memory event buffer (default 8192). When the
	// ring is full the oldest event is dropped — backpressure never
	// propagates to the sampling loop.
	RingCap int
	// BatchSize is the shipment size that triggers an eager flush
	// (default 512 events).
	BatchSize int
	// FlushInterval ships partial batches at least this often
	// (default 500 ms).
	FlushInterval time.Duration
	// MaxRetries is how many times a failed shipment is retried before its
	// events are counted as dropped (default 3).
	MaxRetries int
	// BackoffBase is the first retry delay, doubling per attempt
	// (default 50 ms), capped at MaxBackoff (default 2 s). Each wait is
	// jittered across [delay/2, delay) so a cluster of agents knocked
	// offline by one aggregator hiccup does not reconnect in lockstep.
	BackoffBase time.Duration
	MaxBackoff  time.Duration
	// DisableGzip ships batches uncompressed.
	DisableGzip bool
	// WireVersion pins the batch framing version this agent emits, for
	// fleets mid-upgrade (and the mixed-version soaks). 0 means the current
	// WireVersion; anything outside [MinWireVersion, WireVersion] is a
	// NewAgent error.
	WireVersion uint8
	// Client overrides the HTTP client (default: 5 s timeout).
	Client *http.Client
	// Obs, when non-nil, records one StageExport span per shipment.
	Obs *obs.Recorder
	// Now is the wall clock used to time shipments (default time.Now).
	Now func() time.Time
}

func (c AgentConfig) withDefaults() AgentConfig {
	if len(c.URLs) == 0 && c.URL != "" {
		c.URLs = []string{c.URL}
	}
	if c.URL == "" && len(c.URLs) > 0 {
		c.URL = c.URLs[0]
	}
	if c.RingCap <= 0 {
		c.RingCap = 8192
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.BatchSize > c.RingCap {
		c.BatchSize = c.RingCap
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.WireVersion == 0 {
		c.WireVersion = WireVersion
	}
	return c
}

// AgentStats is a point-in-time counter snapshot.
type AgentStats struct {
	Enqueued    uint64 // events accepted from the stream
	RingDrops   uint64 // events evicted because the ring was full
	SendDrops   uint64 // events lost after exhausting retries
	SentBatches uint64
	SentEvents  uint64
	Retries     uint64
	Rehomes     uint64 // failovers to a sibling endpoint
	Epoch       uint64 // current stream epoch (bumped once per re-home)
}

// Agent is the per-process collector: it consumes a monitor's export.Stream
// from its own goroutine, buffers events in a bounded ring, and ships them
// to the aggregator in framed batches. The stream-facing hot path is a
// mutex-guarded ring insert — O(ns), no allocation, no I/O — so a slow or
// dead aggregator can never stall the 1 Hz sampling loop (the paper's
// <0.5 % overhead contract); it sheds load by dropping the oldest samples.
type Agent struct {
	cfg AgentConfig

	mu sync.Mutex
	// ring/head/count form the bounded drop-oldest buffer (head indexes
	// the oldest event); enqueued/ringDrops count accepted and evicted
	// events as plain fields because the enqueue path already holds mu,
	// so they beat per-event atomics on the hot path.
	ring      []eventSlot //zerosum:guardedby mu
	head      int         //zerosum:guardedby mu
	count     int         //zerosum:guardedby mu
	enqueued  uint64      //zerosum:guardedby mu
	ringDrops uint64      //zerosum:guardedby mu

	// Sender-goroutine scratch, reused across batches: takeBatch memmoves
	// ring slots into slotScratch under the lock, then builds the Events
	// view pointing into those slots outside it; ship appends the frame
	// into frameBuf.
	slotScratch []eventSlot
	shipEvents  []export.Event
	frameBuf    []byte

	sendDrops   atomic.Uint64
	sentBatches atomic.Uint64
	sentEvents  atomic.Uint64
	retries     atomic.Uint64
	rehomes     atomic.Uint64

	// Failover state. urls is the immutable endpoint list (cfg.URLs); cur
	// indexes the current home. Only the sender goroutine re-homes (and
	// bumps epoch / resets seq with it) — the snapshot path reads cur and
	// walks siblings on failure but never moves home — so cur and epoch
	// are atomics for visibility, not for contended writes.
	urls  []string
	cur   atomic.Int32
	epoch atomic.Uint64

	seq    uint64 // sender-goroutine only
	kick   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	killed atomic.Bool

	// jitterMu guards rng: post runs on the sender goroutine but also on
	// whichever goroutine calls PushSnapshot.
	jitterMu sync.Mutex
	rng      *sim.RNG //zerosum:guardedby jitterMu
}

// NewAgent starts an agent and its sender goroutine.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	cfg = cfg.withDefaults()
	if len(cfg.URLs) == 0 {
		return nil, fmt.Errorf("aggd: AgentConfig.URL (or URLs) is required")
	}
	if cfg.Job == "" {
		return nil, fmt.Errorf("aggd: AgentConfig.Job is required")
	}
	if cfg.WireVersion < MinWireVersion || cfg.WireVersion > WireVersion {
		return nil, fmt.Errorf("aggd: AgentConfig.WireVersion %d unsupported (want %d..%d)",
			cfg.WireVersion, MinWireVersion, WireVersion)
	}
	// Seed the backoff jitter from the stream identity so replaying a run
	// replays the same delays; the exact values only need to differ across
	// agents, not be unpredictable.
	h := fnv.New64a()
	_, _ = io.WriteString(h, cfg.Job)  // hash.Hash Write never fails
	_, _ = io.WriteString(h, cfg.Node) // hash.Hash Write never fails
	a := &Agent{
		cfg:         cfg,
		urls:        cfg.URLs,
		ring:        make([]eventSlot, cfg.RingCap),
		slotScratch: make([]eventSlot, cfg.BatchSize),
		shipEvents:  make([]export.Event, 0, cfg.BatchSize),
		kick:        make(chan struct{}, 1),
		done:        make(chan struct{}),
		rng:         sim.NewRNG(h.Sum64() ^ uint64(cfg.Rank)<<32 ^ cfg.Epoch),
	}
	a.epoch.Store(cfg.Epoch)
	a.wg.Add(1)
	go a.run()
	return a, nil
}

// currentURL returns the active endpoint's base URL.
func (a *Agent) currentURL() string { return a.urls[a.cur.Load()] }

// Home reports the endpoint the stream currently ships to. It moves when
// the sender re-homes after a failed shipment, so harnesses that kill an
// endpoint can wait on the condition "every stream left the dead address"
// instead of guessing a settle time. Safe from any goroutine.
func (a *Agent) Home() string { return a.currentURL() }

// Attach subscribes the agent to a stream. One agent may consume several
// streams (they share the ring and origin identity).
func (a *Agent) Attach(s *export.Stream) { s.Subscribe(a.Subscriber()) }

// Subscriber returns the stream callback; it only enqueues.
func (a *Agent) Subscriber() export.Subscriber { return a.enqueue }

func (a *Agent) enqueue(ev export.Event) {
	a.mu.Lock()
	if a.closed.Load() {
		a.ringDrops++
		a.mu.Unlock()
		return
	}
	if a.count == len(a.ring) {
		a.head++
		if a.head == len(a.ring) {
			a.head = 0
		}
		a.count--
		a.ringDrops++
	}
	i := a.head + a.count
	if i >= len(a.ring) {
		i -= len(a.ring)
	}
	a.ring[i].store(ev)
	a.count++
	a.enqueued++
	// Kick the sender only when the buffer crosses the batch threshold
	// (drain empties the ring, so each crossing is seen exactly once);
	// anything below it rides the FlushInterval ticker.
	kick := a.count == a.cfg.BatchSize
	a.mu.Unlock()
	if kick {
		select {
		case a.kick <- struct{}{}:
		default:
		}
	}
}

// takeBatch pops up to BatchSize buffered events into the sender's reused
// scratch. The returned slice (and the payloads its events point into) is
// valid until the next takeBatch call — the sender finishes shipping each
// batch before taking the next, so nothing is ever shipped twice.
func (a *Agent) takeBatch() []export.Event {
	a.mu.Lock()
	n := a.count
	if n == 0 {
		a.mu.Unlock()
		return nil
	}
	if n > a.cfg.BatchSize {
		n = a.cfg.BatchSize
	}
	// Two contiguous copies keep the lock hold short: enqueue blocks on
	// this mutex, so an element-wise loop here would tax the hot path.
	slots := a.slotScratch[:n]
	first := len(a.ring) - a.head
	if first > n {
		first = n
	}
	copy(slots, a.ring[a.head:a.head+first])
	copy(slots[first:], a.ring[:n-first])
	a.head += n
	if a.head >= len(a.ring) {
		a.head -= len(a.ring)
	}
	a.count -= n
	a.mu.Unlock()

	// Build the Events view outside the lock; the payload pointers target
	// slotScratch, which never grows, so they stay valid for this batch.
	out := a.shipEvents[:0]
	for i := range slots {
		out = append(out, slots[i].event())
	}
	a.shipEvents = out
	return out
}

func (a *Agent) run() {
	defer a.wg.Done()
	tick := time.NewTicker(a.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-a.done:
			if !a.killed.Load() {
				a.drain()
			}
			return
		case <-tick.C:
		case <-a.kick:
		}
		a.drain()
	}
}

// drain ships everything currently buffered.
func (a *Agent) drain() {
	for {
		events := a.takeBatch()
		if len(events) == 0 {
			return
		}
		a.ship(events)
	}
}

func (a *Agent) ship(events []export.Event) {
	shipStart := a.cfg.Now()
	b := Batch{
		Origin: Origin{Job: a.cfg.Job, Node: a.cfg.Node, Rank: a.cfg.Rank},
		Epoch:  a.epoch.Load(),
		Seq:    a.seq,
		Events: events,
	}
	frame, err := AppendBatchFrameVersion(a.frameBuf[:0], &b, a.cfg.WireVersion)
	if err != nil { // unencodable events: drop, nothing to retry
		a.sendDrops.Add(uint64(len(events)))
		a.cfg.Obs.RecordError(obs.StageExport)
		return
	}
	a.frameBuf = frame
	a.seq++
	if err := a.post(a.currentURL(), frame); err != nil {
		// The shipment is dropped, never re-sent elsewhere: the home may
		// have applied it and lost only the ack, so resending it under a
		// new epoch would double-merge. Conservation counts it lost, and
		// the agent re-homes so the next batches land somewhere alive.
		a.sendDrops.Add(uint64(len(events)))
		a.cfg.Obs.RecordError(obs.StageExport)
		a.rehome()
		return
	}
	a.sentBatches.Add(1)
	a.sentEvents.Add(uint64(len(events)))
	a.cfg.Obs.Record(obs.StageExport, shipStart, a.cfg.Now().Sub(shipStart))
}

// rehome moves the stream to the next endpoint whose /healthz answers,
// walking the failover list in ring order from the current home (the home
// itself is probed last — if it recovered, staying is fine, but its state
// may be gone, so the re-home semantics below still apply). Each full pass
// with no healthy endpoint waits out a jittered, doubling backoff;
// MaxRetries+1 passes bound the walk so shutdown is never blocked behind
// a dead fleet.
//
// A successful re-home bumps the stream epoch and restarts sequence
// numbering at 0: the new home has no sequence state for this stream, and
// an epoch bump is exactly how the dedup protocol says "numbering starts
// over — not a replay". Sender goroutine only.
//
//zerosum:wallclock failover probing waits on real network latency, not sampled time
func (a *Agent) rehome() {
	if len(a.urls) <= 1 {
		return
	}
	backoff := a.cfg.BackoffBase
	for pass := 0; pass <= a.cfg.MaxRetries; pass++ {
		if a.killed.Load() {
			return
		}
		cur := int(a.cur.Load())
		for step := 1; step <= len(a.urls); step++ {
			idx := (cur + step) % len(a.urls)
			if a.healthy(a.urls[idx]) {
				a.cur.Store(int32(idx))
				a.epoch.Add(1)
				a.seq = 0
				a.rehomes.Add(1)
				return
			}
		}
		timer := time.NewTimer(a.jitter(backoff))
		select {
		case <-timer.C:
		case <-a.done:
			timer.Stop()
			return
		}
		backoff *= 2
		if backoff > a.cfg.MaxBackoff {
			backoff = a.cfg.MaxBackoff
		}
	}
}

// healthy probes one endpoint's liveness.
func (a *Agent) healthy(url string) bool {
	resp, err := a.cfg.Client.Get(url + "/healthz")
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode/100 == 2
}

// post sends one frame to url with gzip and retry-with-exponential-backoff.
//
//zerosum:wallclock retry backoff waits on real network latency, not sampled time
func (a *Agent) post(url string, frame []byte) error {
	body := frame
	encoding := ""
	if !a.cfg.DisableGzip {
		// Pooled: post runs on the sender goroutine but also on whichever
		// goroutine calls PushSnapshot, and a gzip.Writer plus its output
		// buffer are far too expensive to rebuild per shipment.
		z := gzPool.Get().(*gzScratch)
		defer gzPool.Put(z)
		z.buf.Reset()
		z.zw.Reset(&z.buf)
		if _, err := z.zw.Write(frame); err == nil && z.zw.Close() == nil {
			body, encoding = z.buf.Bytes(), "gzip"
		}
	}
	backoff := a.cfg.BackoffBase
	maxRetries := a.cfg.MaxRetries
	var lastErr error
	for attempt := 0; ; attempt++ {
		if a.killed.Load() {
			if lastErr == nil {
				lastErr = fmt.Errorf("aggd: agent killed")
			}
			return lastErr
		}
		err := a.attempt(url, body, encoding)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= maxRetries {
			return lastErr
		}
		a.retries.Add(1)
		// Sleep the jittered backoff on a stoppable timer: a shutting-down
		// agent must abandon the wait immediately instead of blocking Close
		// behind the full (up to MaxBackoff) delay.
		timer := time.NewTimer(a.jitter(backoff))
		select {
		case <-timer.C:
		case <-a.done:
			timer.Stop()
			// Closing: the events ride one final immediate attempt so a
			// graceful shutdown still flushes through a transient error,
			// then the retry loop ends.
			if maxRetries > attempt+1 {
				maxRetries = attempt + 1
			}
		}
		backoff *= 2
		if backoff > a.cfg.MaxBackoff {
			backoff = a.cfg.MaxBackoff
		}
	}
}

// attempt makes one ingest POST to url.
func (a *Agent) attempt(url string, body []byte, encoding string) error {
	req, err := http.NewRequest(http.MethodPost, url+"/api/ingest", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-zerosum-aggd")
	if encoding != "" {
		req.Header.Set("Content-Encoding", encoding)
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	// Drain so the transport can reuse the connection; a failed drain only
	// costs keep-alive, never data.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		return nil
	}
	return fmt.Errorf("aggd: aggregator returned %s", resp.Status)
}

// jitter spreads a backoff delay uniformly across [d/2, d).
func (a *Agent) jitter(d time.Duration) time.Duration {
	a.jitterMu.Lock()
	f := a.rng.Float64()
	a.jitterMu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// PushSnapshot synchronously ships a rank's report snapshot and its
// received-bytes communication row (monitor.RecvBytes()). When the home
// endpoint stays unreachable through its retries, the other failover
// endpoints each get one direct attempt — a snapshot is an idempotent
// wholesale replacement, so unlike a batch it is safe to deliver anywhere
// (and possibly twice) — without moving the stream's home.
func (a *Agent) PushSnapshot(snap core.Snapshot, commRow map[int]uint64) error {
	frame, err := EncodeSnapshotFrame(&SnapshotMsg{
		Origin:   Origin{Job: a.cfg.Job, Node: a.cfg.Node, Rank: a.cfg.Rank},
		Snapshot: snap,
		CommRow:  commRow,
	})
	if err != nil {
		return err
	}
	cur := int(a.cur.Load())
	if err = a.post(a.urls[cur], frame); err == nil {
		return nil
	}
	for step := 1; step < len(a.urls); step++ {
		if a.killed.Load() {
			return err
		}
		if a.attempt(a.urls[(cur+step)%len(a.urls)], frame, "") == nil {
			return nil
		}
	}
	return err
}

// Stats snapshots the agent's counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	enqueued, ringDrops := a.enqueued, a.ringDrops
	a.mu.Unlock()
	return AgentStats{
		Enqueued:    enqueued,
		RingDrops:   ringDrops,
		SendDrops:   a.sendDrops.Load(),
		SentBatches: a.sentBatches.Load(),
		SentEvents:  a.sentEvents.Load(),
		Retries:     a.retries.Load(),
		Rehomes:     a.rehomes.Load(),
		Epoch:       a.epoch.Load(),
	}
}

// Dropped returns the total events lost to ring eviction or failed sends.
func (a *Agent) Dropped() uint64 {
	a.mu.Lock()
	ringDrops := a.ringDrops
	a.mu.Unlock()
	return ringDrops + a.sendDrops.Load()
}

// Close flushes buffered events and stops the sender. The flush is bounded:
// a shipment already mid-backoff gets one final immediate attempt, and
// whatever still cannot be delivered is counted as dropped rather than
// blocking shutdown behind the full retry schedule. Subscribers left
// attached to a stream keep counting their events as dropped. Close is
// idempotent.
func (a *Agent) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	close(a.done)
	a.wg.Wait()
	return nil
}

// Kill stops the agent the way a crash would: no final drain, no retry of
// an in-flight shipment. Events still buffered in the ring — data a real
// crash would silently lose — are counted as send drops so the agent's
// conservation invariant (enqueued == sent + dropped) survives the crash;
// the chaos harness leans on that to audit fault scenarios exactly. Kill
// is idempotent and safe to race with Close (first caller wins).
func (a *Agent) Kill() {
	if a.closed.Swap(true) {
		return
	}
	a.killed.Store(true)
	close(a.done)
	a.wg.Wait()
	a.mu.Lock()
	orphaned := a.count
	a.head, a.count = 0, 0
	a.mu.Unlock()
	a.sendDrops.Add(uint64(orphaned))
}
