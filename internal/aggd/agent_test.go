package aggd

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zerosum/internal/export"
)

func lwpEvent(t float64, tid int, nvctx uint64) export.Event {
	return export.Event{Kind: export.EventLWP, TimeSec: t, LWP: &export.LWPSample{
		TimeSec: t, TID: tid, Kind: "Main", State: 'R', UserPct: 90, NVCtx: nvctx,
	}}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAgentShipsToServer(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	agent, err := NewAgent(AgentConfig{
		URL: ts.URL, Job: "j1", Node: "node-a", Rank: 0,
		BatchSize: 8, FlushInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)
	for i := 0; i < 100; i++ {
		stream.Publish(lwpEvent(float64(i), 100, uint64(i)))
	}
	waitFor(t, "events to arrive", func() bool { return srv.ingestEvents.Load() == 100 })
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	st := agent.Stats()
	if st.Enqueued != 100 || st.SentEvents != 100 || agent.Dropped() != 0 {
		t.Fatalf("stats: %+v dropped=%d", st, agent.Dropped())
	}
	if srv.ingestBatches.Load() == 0 || srv.lostBatches.Load() != 0 {
		t.Fatalf("server saw %d batches, %d lost", srv.ingestBatches.Load(), srv.lostBatches.Load())
	}
}

// TestAgentBackpressure is the acceptance check: with the aggregator down,
// the publish hot path never blocks — the bounded ring sheds the oldest
// events and the drops are counted.
func TestAgentBackpressure(t *testing.T) {
	// A listener that was closed: connections are refused immediately.
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	agent, err := NewAgent(AgentConfig{
		URL: url, Job: "j1", Node: "node-a", Rank: 0,
		RingCap: 64, BatchSize: 64,
		FlushInterval: time.Hour, // only explicit kicks would flush
		MaxRetries:    -1,        // fail fast; keep Close quick
		BackoffBase:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)

	const n = 10_000
	start := time.Now()
	for i := 0; i < n; i++ {
		stream.Publish(lwpEvent(float64(i), 100, uint64(i)))
	}
	elapsed := time.Since(start)
	// The hot path is a ring insert; even with the aggregator dead and the
	// ring overflowing, 10k publishes must complete promptly (on the order
	// of microseconds each, generously bounded here for slow CI).
	if elapsed > 2*time.Second {
		t.Fatalf("publishing %d events with a dead aggregator took %v", n, elapsed)
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	st := agent.Stats()
	if st.Enqueued != n {
		t.Fatalf("enqueued %d, want %d", st.Enqueued, n)
	}
	if agent.Dropped() == 0 {
		t.Fatal("no drops counted with a dead aggregator")
	}
	if st.RingDrops == 0 {
		t.Fatalf("ring never shed load: %+v", st)
	}
	if st.SentEvents != 0 {
		t.Fatalf("sent %d events to a dead aggregator", st.SentEvents)
	}
	// Conservation: after Close every enqueued event was dropped either by
	// the ring (oldest-first eviction) or after exhausting send retries.
	if st.RingDrops+st.SendDrops != n {
		t.Fatalf("ring %d + send %d drops != %d enqueued", st.RingDrops, st.SendDrops, n)
	}
}

func TestAgentRetriesThenSucceeds(t *testing.T) {
	var fails int32 = 2
	srv := NewServer(ServerConfig{})
	handler := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "try later", http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer ts.Close()

	agent, err := NewAgent(AgentConfig{
		URL: ts.URL, Job: "j1", Node: "node-a", Rank: 1,
		BatchSize: 4, FlushInterval: 5 * time.Millisecond,
		MaxRetries: 5, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)
	for i := 0; i < 4; i++ {
		stream.Publish(lwpEvent(float64(i), 7, 0))
	}
	waitFor(t, "retried batch to land", func() bool { return srv.ingestEvents.Load() == 4 })
	agent.Close()
	if st := agent.Stats(); st.Retries == 0 || st.SentBatches != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAgentCloseFlushes(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	agent, err := NewAgent(AgentConfig{
		URL: ts.URL, Job: "j1", Node: "node-a", Rank: 0,
		BatchSize: 1024, FlushInterval: time.Hour, // nothing flushes until Close
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)
	for i := 0; i < 10; i++ {
		stream.Publish(lwpEvent(float64(i), 1, 0))
	}
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.ingestEvents.Load() != 10 {
		t.Fatalf("server saw %d events after Close, want 10", srv.ingestEvents.Load())
	}
	// Publishing after Close only counts drops.
	stream.Publish(lwpEvent(11, 1, 0))
	if agent.Dropped() == 0 {
		t.Fatal("post-Close publish not counted as dropped")
	}
}
