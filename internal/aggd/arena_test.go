package aggd

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"zerosum/internal/export"
)

// arenaBatch builds a batch exercising every event kind, sized and labeled
// by seed so consecutive batches differ in shape as well as content.
func arenaBatch(seed int) *Batch {
	b := &Batch{
		Origin: Origin{Job: fmt.Sprintf("job%d", seed%3), Node: fmt.Sprintf("node%d", seed%5), Rank: seed % 7},
		Epoch:  uint64(seed%2 + 1),
		Seq:    uint64(seed),
	}
	n := 16 + 13*seed
	for i := 0; i < n; i++ {
		t := float64(seed*1000+i) * 0.25
		switch i % 6 {
		case 0:
			b.Events = append(b.Events, export.Event{Kind: export.EventLWP, TimeSec: t,
				LWP: &export.LWPSample{TimeSec: t, TID: 100 + i, Kind: "OpenMP", State: 'R',
					UserPct: float64(i), SysPct: 1, VCtx: uint64(i), NVCtx: uint64(2 * i),
					MinFlt: 3, MajFlt: 4, NSwap: 5, CPU: i % 8}})
		case 1:
			b.Events = append(b.Events, export.Event{Kind: export.EventHWT, TimeSec: t,
				HWT: &export.HWTSample{TimeSec: t, CPU: i % 8, IdlePct: 10, SysPct: 20, UserPct: 70}})
		case 2:
			b.Events = append(b.Events, export.Event{Kind: export.EventGPU, TimeSec: t,
				GPU: &export.GPUSample{TimeSec: t, GPU: i % 4, Metric: "Device Busy %", Value: float64(i)}})
		case 3:
			b.Events = append(b.Events, export.Event{Kind: export.EventMem, TimeSec: t,
				Mem: &export.MemSample{TimeSec: t, TotalKB: 1 << 24, FreeKB: uint64(i) << 10,
					AvailKB: 1 << 22, ProcRSSKB: uint64(i), ProcHWMKB: uint64(2 * i)}})
		case 4:
			b.Events = append(b.Events, export.Event{Kind: export.EventIO, TimeSec: t,
				IO: &export.IOSample{TimeSec: t, RChar: 1, WChar: 2, SyscR: 3, SyscW: 4,
					ReadBytes: uint64(i), WriteBytes: uint64(i * 2)}})
		default:
			b.Events = append(b.Events, export.Event{Kind: export.EventHeartbeat, TimeSec: t})
		}
	}
	return b
}

// TestDecodeBatchPayloadIntoEquivalence: the arena decoder and the one-shot
// decoder must agree, and both must survive a re-encode byte-for-byte.
func TestDecodeBatchPayloadIntoEquivalence(t *testing.T) {
	batch := arenaBatch(2)
	frame, err := EncodeBatchFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[FrameHeaderLen:]

	fresh, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	var bb BatchBuf
	pooled, err := DecodeBatchPayloadInto(payload, &bb)
	if err != nil {
		t.Fatal(err)
	}
	for name, dec := range map[string]*Batch{"fresh": fresh, "pooled": pooled} {
		re, err := EncodeBatchFrame(dec)
		if err != nil {
			t.Fatalf("%s re-encode: %v", name, err)
		}
		if !bytes.Equal(re, frame) {
			t.Errorf("%s decode → encode is not byte-identical to the original frame", name)
		}
	}
}

// TestDecodeArenaReuseByteIdentity reuses one arena across batches of
// different shapes and sizes; every decode must re-encode byte-identically,
// with no residue from the previous occupant.
func TestDecodeArenaReuseByteIdentity(t *testing.T) {
	var bb BatchBuf
	for seed := 0; seed < 8; seed++ {
		batch := arenaBatch(seed)
		frame, err := EncodeBatchFrame(batch)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeBatchPayloadInto(frame[FrameHeaderLen:], &bb)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(dec.Events) != len(batch.Events) {
			t.Fatalf("seed %d: decoded %d events, want %d", seed, len(dec.Events), len(batch.Events))
		}
		re, err := EncodeBatchFrame(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, frame) {
			t.Errorf("seed %d: arena decode → encode is not byte-identical", seed)
		}
	}
}

// TestDecodeIntoZeroSteadyStateAlloc gates the ingest half of the
// zero-allocation contract below the HTTP layer: with a warm arena and
// intern table, decoding a batch allocates nothing.
func TestDecodeIntoZeroSteadyStateAlloc(t *testing.T) {
	batch := arenaBatch(3)
	frame, err := EncodeBatchFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[FrameHeaderLen:]
	var bb BatchBuf
	if _, err := DecodeBatchPayloadInto(payload, &bb); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := DecodeBatchPayloadInto(payload, &bb); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm arena decode allocates %.1f per run, want 0", avg)
	}
}

// TestFrameScannerReuseZeroAlloc: a warm, Reset scanner iterates a healthy
// multi-frame stream without allocating.
func TestFrameScannerReuseZeroAlloc(t *testing.T) {
	var stream []byte
	for seed := 0; seed < 3; seed++ {
		frame, err := EncodeBatchFrame(arenaBatch(seed))
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, frame...)
	}
	r := bytes.NewReader(stream)
	sc := NewFrameScanner(r)
	scan := func() {
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		sc.Reset(r)
		frames := 0
		for {
			_, _, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			frames++
		}
		if frames != 3 {
			t.Fatalf("scanned %d frames, want 3", frames)
		}
	}
	scan() // warm the payload buffer
	if avg := testing.AllocsPerRun(100, scan); avg != 0 {
		t.Errorf("warm scanner pass allocates %.1f per run, want 0", avg)
	}
}
