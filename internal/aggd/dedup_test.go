package aggd

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"zerosum/internal/export"
)

func mkBatch(epoch, seq uint64, n int) *Batch {
	b := &Batch{Origin: Origin{Job: "j", Node: "n", Rank: 0}, Epoch: epoch, Seq: seq}
	for i := 0; i < n; i++ {
		b.Events = append(b.Events, export.Event{Kind: export.EventHeartbeat, TimeSec: float64(i)})
	}
	return b
}

// TestServerDedupAndRecovery walks the sequence-accounting state machine
// through every admission path: gap, late hole fill (the one path the soak's
// serial sender can never produce), duplicate replay, agent restart into a
// new epoch, and a straggler from the dead epoch.
func TestServerDedupAndRecovery(t *testing.T) {
	srv := NewServer(ServerConfig{})
	apply := func(epoch, seq uint64) { srv.applyBatch(mkBatch(epoch, seq, 2)) }

	apply(1, 0) // first contact
	apply(1, 2) // gap: seq 1 lost-until-proven-otherwise
	st := srv.Stats()
	if st.LostBatches != 1 || st.RecoveredBatches != 0 || st.IngestEvents != 4 {
		t.Fatalf("after gap: %+v", st)
	}

	apply(1, 1) // the missing batch arrives late: a recovery, not a dup
	st = srv.Stats()
	if st.RecoveredBatches != 1 || st.IngestEvents != 6 {
		t.Fatalf("after hole fill: %+v", st)
	}

	apply(1, 2) // retried shipment the server already applied
	st = srv.Stats()
	if st.DupBatches != 1 || st.IngestEvents != 6 {
		t.Fatalf("after replay: %+v", st)
	}

	apply(2, 0) // restarted agent: new epoch, seq restarts — not a replay
	st = srv.Stats()
	if st.DupBatches != 1 || st.IngestEvents != 8 {
		t.Fatalf("after epoch restart: %+v", st)
	}

	apply(1, 3) // straggler from the dead incarnation must not merge
	st = srv.Stats()
	if st.DupBatches != 2 || st.IngestEvents != 8 {
		t.Fatalf("after old-epoch straggler: %+v", st)
	}
}

// TestServerIngestPartialBody checks the resync contract end to end: a body
// holding [good frame, corrupt frame, good frame] applies both healthy
// frames, counts the corruption, and still returns 400 so the sender retries
// (the retry dedups as a replay rather than double-counting).
func TestServerIngestPartialBody(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	f0, err := EncodeBatchFrame(mkBatch(1, 0, 3))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := EncodeBatchFrame(mkBatch(1, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), f0...)
	bad[len(bad)-1] ^= 0xff // corrupt the middle frame's payload

	body := append(append(append([]byte(nil), f0...), bad...), f1...)
	resp, err := http.Post(ts.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial body status = %d, want 400", resp.StatusCode)
	}
	st := srv.Stats()
	if st.IngestEvents != 6 || st.CorruptFrames != 1 {
		t.Fatalf("partial apply: %+v", st)
	}

	// The sender retries the whole body verbatim: the two healthy frames
	// dedup, the corrupt one is counted again, nothing double-merges.
	resp, err = http.Post(ts.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st = srv.Stats()
	if st.IngestEvents != 6 || st.DupBatches != 2 || st.CorruptFrames != 2 {
		t.Fatalf("after verbatim retry: %+v", st)
	}
}

// TestFrameScannerResync verifies the scanner steps over garbage runs and
// checksum failures, reporting each corruption exactly once with the byte
// span it discarded, and keeps returning the healthy frames around them.
func TestFrameScannerResync(t *testing.T) {
	f0, err := EncodeBatchFrame(mkBatch(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := EncodeBatchFrame(mkBatch(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), f0...)
	flipped[len(flipped)-1] ^= 0x01

	garbage := []byte("##noise##")
	stream := append(append(append(append([]byte(nil), garbage...), f0...), flipped...), f1...)
	sc := NewFrameScanner(bytes.NewReader(stream))

	var frames int
	var corrupt []*CorruptFrameError
	for {
		_, payload, err := sc.Next()
		if err == nil {
			frames++
			if b, err := DecodeBatchPayload(payload); err != nil || b.Job != "j" {
				t.Fatalf("healthy frame decode: %v", err)
			}
			continue
		}
		if errors.Is(err, io.EOF) {
			break
		}
		var ce *CorruptFrameError
		if !errors.As(err, &ce) {
			t.Fatalf("terminal scanner error: %v", err)
		}
		corrupt = append(corrupt, ce)
	}
	if frames != 2 {
		t.Fatalf("scanner recovered %d healthy frames, want 2", frames)
	}
	if len(corrupt) != 2 {
		t.Fatalf("scanner reported %d corruption events, want 2: %v", len(corrupt), corrupt)
	}
	if corrupt[0].Skipped != len(garbage) {
		t.Fatalf("garbage run skipped %d bytes, want %d", corrupt[0].Skipped, len(garbage))
	}
	if corrupt[1].Skipped != len(flipped) {
		t.Fatalf("checksum failure skipped %d bytes, want frame span %d", corrupt[1].Skipped, len(flipped))
	}
}

// TestAgentKillConservation: a killed agent abandons its ring and in-flight
// work but its books still balance — every enqueued event is accounted a
// drop or a delivery, with nothing in between.
func TestAgentKillConservation(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()

	agent, err := NewAgent(AgentConfig{
		URL: url, Job: "j", Node: "n", Rank: 0,
		RingCap: 32, BatchSize: 32, FlushInterval: time.Hour,
		MaxRetries: -1, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)
	const n = 100
	for i := 0; i < n; i++ {
		stream.Publish(export.Event{Kind: export.EventHeartbeat, TimeSec: float64(i)})
	}
	agent.Kill()
	st := agent.Stats()
	if st.Enqueued != n {
		t.Fatalf("enqueued %d, want %d", st.Enqueued, n)
	}
	if st.RingDrops+st.SendDrops+st.SentEvents != n {
		t.Fatalf("conservation broken: ring %d + send %d + sent %d != %d",
			st.RingDrops, st.SendDrops, st.SentEvents, n)
	}
	// Kill is idempotent and a second call must not double-count the ring.
	agent.Kill()
	if st2 := agent.Stats(); st2.RingDrops+st2.SendDrops+st2.SentEvents != n {
		t.Fatalf("second Kill broke conservation: %+v", st2)
	}
}

// TestAgentCloseCancelsBackoff: Close during a retry backoff must not wait
// the backoff out — the sleeping sender wakes, takes one last shot, and
// gives up. With multi-second backoffs configured, Close returning quickly
// proves the timer was interrupted.
func TestAgentCloseCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	agent, err := NewAgent(AgentConfig{
		URL: ts.URL, Job: "j", Node: "n", Rank: 0,
		BatchSize: 4, FlushInterval: time.Millisecond,
		MaxRetries: 8, BackoffBase: 10 * time.Second, MaxBackoff: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var stream export.Stream
	agent.Attach(&stream)
	for i := 0; i < 4; i++ {
		stream.Publish(export.Event{Kind: export.EventHeartbeat, TimeSec: float64(i)})
	}
	// Let the sender hit the 503 and enter its first 10s backoff window.
	waitFor(t, "first send attempt", func() bool { return agent.Stats().Retries >= 1 })

	start := time.Now()
	if err := agent.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close took %v — backoff was not cancelled", d)
	}
	if st := agent.Stats(); st.SendDrops != 4 {
		t.Fatalf("events not accounted after cancelled backoff: %+v", st)
	}
}
