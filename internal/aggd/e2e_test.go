package aggd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/report"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// TestEndToEndJobAggregation is the tentpole acceptance test: four
// simulated MPI ranks on two simulated nodes each run a ZeroSum monitor
// whose stream feeds a per-rank aggd.Agent; the agents ship batches over a
// real loopback HTTP listener into one aggregator; and the aggregator's
// served job summary must equal the single-process report.Aggregate ground
// truth computed from the very same snapshots.
func TestEndToEndJobAggregation(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	streamer := NewJobStreamer(AgentConfig{
		URL: ts.URL, Job: "e2e",
		BatchSize:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	cfg := workload.Config{
		Machine: topology.Laptop4Core,
		Nodes:   2,
		Srun:    slurm.Options{NTasks: 4, CoresPerTask: 2, ThreadsPerCore: 2},
		App: &workload.PICHalo{
			Steps:          6,
			ComputePerStep: 50 * sim.Millisecond,
			HaloBytes:      1 << 20,
		},
		Monitor: workload.MonitorConfig{
			Enabled: true, Period: 100 * sim.Millisecond, CPU: -1,
			StreamFor: streamer.StreamFor,
		},
		Seed: 7,
	}
	res, err := workload.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 4 {
		t.Fatalf("ranks = %d", len(res.Ranks))
	}
	nodes := map[int]bool{}
	for _, rr := range res.Ranks {
		nodes[rr.Node] = true
	}
	if len(nodes) < 2 {
		t.Fatalf("job used %d node(s), want >= 2", len(nodes))
	}

	// Ship each rank's end-of-run snapshot and heatmap row, then flush.
	var snaps []core.Snapshot
	for _, rr := range res.Ranks {
		snaps = append(snaps, rr.Snapshot)
		if err := streamer.FinishRank(rr.Rank, rr.Snapshot, rr.Monitor.RecvBytes()); err != nil {
			t.Fatalf("finish rank %d: %v", rr.Rank, err)
		}
	}
	if err := streamer.Close(); err != nil {
		t.Fatal(err)
	}
	st := streamer.Stats()
	if st.SentEvents == 0 || st.SentBatches == 0 {
		t.Fatalf("nothing streamed: %+v", st)
	}
	if st.RingDrops != 0 || st.SendDrops != 0 {
		t.Fatalf("healthy aggregator dropped events: %+v", st)
	}
	if got := srv.ingestEvents.Load(); got != st.SentEvents {
		t.Fatalf("server saw %d events, agents sent %d", got, st.SentEvents)
	}

	// Ground truth: the in-process aggregation of the same snapshots.
	want, err := report.Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var got report.JobSummary
	getJSON(t, ts.URL+"/api/job/e2e/summary", &got)
	assertSummariesEqual(t, want, &got)

	// The served heatmap equals the world's receive matrix.
	var hm HeatmapResponse
	getJSON(t, ts.URL+"/api/job/e2e/heatmap", &hm)
	truth := res.World.RecvMatrix()
	if hm.Ranks != len(truth) {
		t.Fatalf("heatmap size %d, want %d", hm.Ranks, len(truth))
	}
	var total uint64
	for d := range truth {
		for s := range truth[d] {
			if hm.Bytes[d][s] != truth[d][s] {
				t.Fatalf("heatmap[%d][%d] = %d, want %d", d, s, hm.Bytes[d][s], truth[d][s])
			}
			total += truth[d][s]
		}
	}
	if total == 0 {
		t.Fatal("PIC job produced no MPI traffic")
	}

	// The exposition endpoint serves valid Prometheus text carrying the
	// job's live series.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkPrometheusText(t, string(text))
	for _, want := range []string{
		`zerosum_hwt_user_pct{cpu=`,
		`job="e2e"`,
		`zerosum_lwp_nvctx_total{job="e2e"`,
		`zerosum_heartbeat_age_seconds{job="e2e"`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// The summary JSON is self-consistent with what the job ran.
	var roundTrip report.JobSummary
	b, _ := json.Marshal(got)
	if err := json.Unmarshal(b, &roundTrip); err != nil {
		t.Fatal(err)
	}
	if roundTrip.Ranks != 4 || len(roundTrip.Nodes) != 2 {
		t.Fatalf("summary shape: %d ranks on %d nodes", roundTrip.Ranks, len(roundTrip.Nodes))
	}
}
