package aggd

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// failoverAgent builds an agent over the endpoint list with a tight backoff
// budget so a re-home resolves in milliseconds.
func failoverAgent(t *testing.T, urls []string) *Agent {
	t.Helper()
	a, err := NewAgent(AgentConfig{
		URLs:          urls,
		Job:           "jf",
		Node:          "nf",
		Epoch:         1,
		BatchSize:     4,
		FlushInterval: time.Millisecond,
		MaxRetries:    -1, // one attempt per shipment: failure triggers re-home immediately
		BackoffBase:   time.Millisecond,
		MaxBackoff:    4 * time.Millisecond,
		DisableGzip:   true,
		Client:        &http.Client{Timeout: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAgentFailover kills an agent's home leaf mid-stream and checks the
// re-home contract: the unacked shipment is dropped (never resent — the
// home may have applied it and lost only the ack), the stream moves to the
// healthy sibling under a bumped epoch with sequence numbering restarted,
// and the sibling books the arrival as clean first contact — no spurious
// gaps, no dropped epochs.
func TestAgentFailover(t *testing.T) {
	srvA := NewServer(ServerConfig{})
	tsA := httptest.NewServer(srvA.Handler())
	srvB := NewServer(ServerConfig{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	a := failoverAgent(t, []string{tsA.URL, tsB.URL})
	defer a.Close()

	feed := func(n int) {
		for i := 0; i < n; i++ {
			a.enqueue(lwpEvent(float64(i), 100+i, 0))
		}
	}

	feed(4) // one full batch lands at the home leaf
	waitFor(t, "home leaf ingest", func() bool { return srvA.Stats().IngestEvents == 4 })

	tsA.Close() // the home dies: connections refuse from here on

	feed(4) // this shipment fails, is dropped, and triggers the re-home
	waitFor(t, "re-home to sibling", func() bool {
		st := a.Stats()
		return st.Rehomes == 1 && st.Epoch == 2
	})

	feed(4) // post-failover traffic flows to the sibling

	if err := a.Close(); err != nil { // drains whatever is still buffered
		t.Fatal(err)
	}
	// The flush ticker may split a feed into partial batches, so the exact
	// sent/dropped split is timing-dependent; the conservation law and the
	// re-home bookkeeping are not.
	st := a.Stats()
	if st.Enqueued != 12 || st.SentEvents+st.SendDrops != 12 || st.RingDrops != 0 {
		t.Fatalf("agent books do not close across the failover: %+v", st)
	}
	if st.SendDrops == 0 {
		t.Fatalf("the shipment to the dead home was not dropped: %+v", st)
	}
	// The sibling saw epoch 2 seq 0 as first contact: everything the agent
	// sent after the home died landed there exactly once — nothing lost,
	// nothing duplicated, no stale-epoch leakage.
	bst := srvB.Stats()
	if bst.LostBatches != 0 || bst.DupBatches != 0 || bst.IngestEvents != st.SentEvents-4 {
		t.Fatalf("sibling books after failover (agent %+v): %+v", st, bst)
	}
}

// TestAgentSnapshotSiblingDelivery starts an agent homed on a dead leaf:
// PushSnapshot must fall through to a healthy sibling (snapshots are
// idempotent wholesale replacements, safe to deliver anywhere) without
// moving the stream's home.
func TestAgentSnapshotSiblingDelivery(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	srvB := NewServer(ServerConfig{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	a := failoverAgent(t, []string{dead.URL, tsB.URL})
	defer a.Close()

	if err := a.PushSnapshot(testSnapshot(0, "nf"), map[int]uint64{1: 64}); err != nil {
		t.Fatalf("snapshot failed despite a healthy sibling: %v", err)
	}
	if got := srvB.Stats().IngestSnapshots; got != 1 {
		t.Fatalf("sibling holds %d snapshots, want 1", got)
	}
	if st := a.Stats(); st.Rehomes != 0 {
		t.Fatalf("snapshot delivery moved the stream home: %+v", st)
	}
}
