package aggd

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"zerosum/internal/export"
	"zerosum/internal/obs"
	"zerosum/internal/sim"
)

// ForwardConfig tunes a leaf aggregator's upstream forwarder.
type ForwardConfig struct {
	// Upstream is the parent aggregator's base URL, e.g. "http://root:9100".
	Upstream string
	// LeafID is this leaf's stable identity in rollup frames; the parent
	// keys its (epoch, seq) rollup dedup on it. Typically host:port.
	LeafID string
	// Epoch identifies this incarnation of the leaf process. Rollup
	// sequence numbers restart at 0 inside each epoch, so a restarted leaf
	// must bump it or the parent will discard its rollups as replays.
	Epoch uint64

	// FlushInterval ships buffered rollups at least this often
	// (default 100 ms).
	FlushInterval time.Duration
	// EagerEvents triggers an immediate flush once this many events are
	// buffered (default 4096).
	EagerEvents int
	// MaxBuffered bounds the buffered event count (default 65536). When an
	// unreachable parent backs the buffer up past it, the oldest pending
	// batches are dropped (and counted) — backpressure never propagates
	// down to the agents.
	MaxBuffered int
	// MaxRetries is how many times a failed rollup shipment is retried
	// before its events are counted as dropped (default 3).
	MaxRetries int
	// BackoffBase is the first retry delay, doubling per attempt
	// (default 50 ms), capped at MaxBackoff (default 2 s), jittered like
	// the agent's so sibling leaves do not reconnect in lockstep.
	BackoffBase time.Duration
	MaxBackoff  time.Duration
	// DisableGzip ships rollups uncompressed.
	DisableGzip bool
	// Client overrides the HTTP client (default: 5 s timeout).
	Client *http.Client
	// Obs, when non-nil, records one StageExport span per rollup shipment.
	Obs *obs.Recorder
	// Now is the wall clock used to time shipments (default time.Now).
	Now func() time.Time
}

func (c ForwardConfig) withDefaults() ForwardConfig {
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.EagerEvents <= 0 {
		c.EagerEvents = 4096
	}
	if c.MaxBuffered <= 0 {
		c.MaxBuffered = 65536
	}
	if c.EagerEvents > c.MaxBuffered {
		c.EagerEvents = c.MaxBuffered
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// FwdStats is a point-in-time snapshot of a forwarder's counters. The
// leaf's conservation invariant — once the forwarder is stopped — is
//
//	EnqueuedEvents == AckedEvents + DroppedEvents
//
// (while running, events in the pending buffer are in neither bucket),
// which the tree soak audits against the leaf server's admitted counts.
type FwdStats struct {
	EnqueuedEvents uint64 // admitted events handed to the forwarder
	AckedEvents    uint64 // events in rollups the parent acknowledged
	DroppedEvents  uint64 // events lost to buffer overflow, failed shipments, or Kill
	PendingEvents  uint64 // events currently buffered
	SentRollups    uint64 // rollup frames acknowledged by the parent
	DroppedRollups uint64 // rollup frames abandoned after exhausting retries
	SentSnapshots  uint64 // snapshot documents shipped inside acked rollups
	Retries        uint64
	Epoch          uint64
}

// fwdBatch is one admitted agent batch waiting to ride upstream. It keeps
// the original (origin, epoch, seq) identity so the parent's per-origin
// dedup also covers the tree: a batch two leaf incarnations both admitted
// (the agent's retry landed after a leaf restart) merges upstream exactly
// once. Events are deep-copied into slots because the ingest arena that
// decoded them is pooled.
type fwdBatch struct {
	origin Origin
	epoch  uint64
	seq    uint64
	slots  []eventSlot
}

// Forwarder turns a server into a leaf: admitted batches and snapshot
// documents buffer here and flush upstream as rollup frames. The enqueue
// path runs under the server's rank-shard lock (that is what serializes a
// single origin's batches into admission order), so it is a bounded
// append; all I/O happens on the flusher goroutine.
type Forwarder struct {
	cfg ForwardConfig

	mu sync.Mutex
	// pending is the admitted-batch queue in arrival order; pendingEvents
	// sums their event counts for the overflow and eager-flush thresholds.
	pending       []*fwdBatch             //zerosum:guardedby mu
	pendingEvents int                     //zerosum:guardedby mu
	snaps         map[Origin]*SnapshotMsg //zerosum:guardedby mu latest unshipped snapshot per origin

	// sendMu serializes flushes so rollup sequence numbers leave in order;
	// seq and the scratch buffers below belong to whoever holds it.
	sendMu   sync.Mutex
	seq      uint64 //zerosum:guardedby sendMu
	frameBuf []byte //zerosum:guardedby sendMu

	enqueuedEvents atomic.Uint64
	ackedEvents    atomic.Uint64
	droppedEvents  atomic.Uint64
	sentRollups    atomic.Uint64
	droppedRollups atomic.Uint64
	sentSnapshots  atomic.Uint64
	retries        atomic.Uint64

	kick   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	killed atomic.Bool

	// jitterMu guards rng: flushes run on the flusher goroutine but also on
	// whichever goroutine calls Flush.
	jitterMu sync.Mutex
	rng      *sim.RNG //zerosum:guardedby jitterMu
}

// NewForwarder starts a forwarder and its flusher goroutine.
func NewForwarder(cfg ForwardConfig) (*Forwarder, error) {
	cfg = cfg.withDefaults()
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("aggd: ForwardConfig.Upstream is required")
	}
	if cfg.LeafID == "" {
		return nil, fmt.Errorf("aggd: ForwardConfig.LeafID is required")
	}
	// Deterministic jitter, same contract as the agent's: replaying a run
	// replays the delays; the values only need to differ across leaves.
	h := fnv.New64a()
	_, _ = io.WriteString(h, cfg.Upstream) // hash.Hash Write never fails
	_, _ = io.WriteString(h, cfg.LeafID)   // hash.Hash Write never fails
	f := &Forwarder{
		cfg:   cfg,
		snaps: make(map[Origin]*SnapshotMsg),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		rng:   sim.NewRNG(h.Sum64() ^ cfg.Epoch),
	}
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// EnqueueBatch buffers an admitted batch for the next rollup. The events
// (and the payloads they point into) are copied before returning, so the
// caller's decode arena is free to be reused.
//
//zerosum:locked rankShard.mu the server enqueues under the origin's shard lock, which is what orders one origin's batches
func (f *Forwarder) EnqueueBatch(b *Batch) {
	fb := &fwdBatch{origin: b.Origin, epoch: b.Epoch, seq: b.Seq,
		slots: make([]eventSlot, len(b.Events))}
	for i := range b.Events {
		fb.slots[i].store(b.Events[i])
	}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		f.droppedEvents.Add(uint64(len(fb.slots)))
		f.enqueuedEvents.Add(uint64(len(fb.slots)))
		return
	}
	f.enqueuedEvents.Add(uint64(len(fb.slots)))
	f.pending = append(f.pending, fb)
	f.pendingEvents += len(fb.slots)
	// Shed oldest-first when the parent has been unreachable long enough
	// to back the buffer up; the drop is counted, never silent.
	var shed int
	for f.pendingEvents > f.cfg.MaxBuffered && len(f.pending) > 1 {
		old := f.pending[0]
		f.pending = f.pending[1:]
		f.pendingEvents -= len(old.slots)
		shed += len(old.slots)
	}
	eager := f.pendingEvents >= f.cfg.EagerEvents
	f.mu.Unlock()
	if shed > 0 {
		f.droppedEvents.Add(uint64(shed))
	}
	if eager {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
}

// EnqueueSnapshot buffers a rank's snapshot document for the next rollup.
// Snapshots are idempotent wholesale replacements, so only the latest
// unshipped document per origin is kept and a document that fails to ship
// stays buffered for the next flush.
func (f *Forwarder) EnqueueSnapshot(msg *SnapshotMsg) {
	cp := *msg
	f.mu.Lock()
	if !f.closed.Load() {
		f.snaps[msg.Origin] = &cp
	}
	f.mu.Unlock()
}

func (f *Forwarder) run() {
	defer f.wg.Done()
	tick := time.NewTicker(f.cfg.FlushInterval)
	defer tick.Stop()
	for {
		select {
		case <-f.done:
			if !f.killed.Load() {
				f.flushOnce()
			}
			return
		case <-tick.C:
		case <-f.kick:
		}
		f.flushOnce()
	}
}

// Flush synchronously ships everything currently buffered (one rollup) and
// reports whether the shipment was acknowledged. The tree soak uses it to
// settle the pipeline before auditing; a daemon never needs it.
func (f *Forwarder) Flush() bool { return f.flushOnce() }

// flushOnce drains the buffer into one rollup frame and posts it. Returns
// false only when a non-empty rollup was abandoned after its retries.
func (f *Forwarder) flushOnce() bool {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()

	f.mu.Lock()
	batches := f.pending
	nEvents := f.pendingEvents
	f.pending = nil
	f.pendingEvents = 0
	var dirty map[Origin]*SnapshotMsg
	if len(f.snaps) > 0 {
		dirty = f.snaps
		f.snaps = make(map[Origin]*SnapshotMsg)
	}
	f.mu.Unlock()

	if len(batches) == 0 && len(dirty) == 0 {
		return true
	}

	ru := RollupMsg{LeafID: f.cfg.LeafID, LeafEpoch: f.cfg.Epoch, Seq: f.seq}
	f.seq++
	ru.Batches = make([]Batch, len(batches))
	for i, fb := range batches {
		events := make([]export.Event, len(fb.slots))
		for j := range fb.slots {
			events[j] = fb.slots[j].event()
		}
		ru.Batches[i] = Batch{Origin: fb.origin, Epoch: fb.epoch, Seq: fb.seq, Events: events}
	}
	for _, msg := range dirty {
		ru.Snapshots = append(ru.Snapshots, *msg)
	}

	shipStart := f.cfg.Now()
	frame, err := AppendRollupFrame(f.frameBuf[:0], &ru)
	if err == nil {
		f.frameBuf = frame
		err = f.post(frame)
	}
	if err != nil {
		f.droppedEvents.Add(uint64(nEvents))
		f.droppedRollups.Add(1)
		f.cfg.Obs.RecordError(obs.StageExport)
		// The batches are gone (retrying them under the same rollup seq
		// after the parent may have applied it risks double-merging), but
		// snapshots are idempotent: put any not re-dirtied since back.
		f.mu.Lock()
		if !f.closed.Load() {
			for origin, msg := range dirty {
				if _, ok := f.snaps[origin]; !ok {
					f.snaps[origin] = msg
				}
			}
		}
		f.mu.Unlock()
		return false
	}
	f.ackedEvents.Add(uint64(nEvents))
	f.sentRollups.Add(1)
	f.sentSnapshots.Add(uint64(len(dirty)))
	f.cfg.Obs.Record(obs.StageExport, shipStart, f.cfg.Now().Sub(shipStart))
	return true
}

// post sends one rollup frame with gzip and retry-with-exponential-backoff,
// mirroring the agent's shipment path.
//
//zerosum:wallclock retry backoff waits on real network latency, not sampled time
func (f *Forwarder) post(frame []byte) error {
	body := frame
	encoding := ""
	if !f.cfg.DisableGzip {
		z := gzPool.Get().(*gzScratch)
		defer gzPool.Put(z)
		z.buf.Reset()
		z.zw.Reset(&z.buf)
		if _, err := z.zw.Write(frame); err == nil && z.zw.Close() == nil {
			body, encoding = z.buf.Bytes(), "gzip"
		}
	}
	url := f.cfg.Upstream + "/api/ingest"
	backoff := f.cfg.BackoffBase
	maxRetries := f.cfg.MaxRetries
	var lastErr error
	for attempt := 0; ; attempt++ {
		if f.killed.Load() {
			if lastErr == nil {
				lastErr = fmt.Errorf("aggd: forwarder killed")
			}
			return lastErr
		}
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-zerosum-aggd")
		if encoding != "" {
			req.Header.Set("Content-Encoding", encoding)
		}
		resp, err := f.cfg.Client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode/100 == 2 {
				return nil
			}
			err = fmt.Errorf("aggd: upstream returned %s", resp.Status)
		}
		lastErr = err
		if attempt >= maxRetries {
			return lastErr
		}
		f.retries.Add(1)
		timer := time.NewTimer(f.jitter(backoff))
		select {
		case <-timer.C:
		case <-f.done:
			timer.Stop()
			// Closing: one final immediate attempt, then give up.
			if maxRetries > attempt+1 {
				maxRetries = attempt + 1
			}
		}
		backoff *= 2
		if backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
	}
}

// jitter spreads a backoff delay uniformly across [d/2, d).
func (f *Forwarder) jitter(d time.Duration) time.Duration {
	f.jitterMu.Lock()
	v := f.rng.Float64()
	f.jitterMu.Unlock()
	return d/2 + time.Duration(v*float64(d/2))
}

// Stats snapshots the forwarder's counters.
func (f *Forwarder) Stats() FwdStats {
	f.mu.Lock()
	pending := f.pendingEvents
	f.mu.Unlock()
	return FwdStats{
		EnqueuedEvents: f.enqueuedEvents.Load(),
		AckedEvents:    f.ackedEvents.Load(),
		DroppedEvents:  f.droppedEvents.Load(),
		PendingEvents:  uint64(pending),
		SentRollups:    f.sentRollups.Load(),
		DroppedRollups: f.droppedRollups.Load(),
		SentSnapshots:  f.sentSnapshots.Load(),
		Retries:        f.retries.Load(),
		Epoch:          f.cfg.Epoch,
	}
}

// Close flushes the buffer (one bounded final shipment, like the agent's)
// and stops the flusher. Idempotent.
func (f *Forwarder) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	close(f.done)
	f.wg.Wait()
	f.dropPending()
	return nil
}

// Kill stops the forwarder the way a leaf crash would: no final flush, no
// retry of an in-flight rollup. Buffered events — data a real crash would
// silently lose — are counted as drops so the leaf's conservation
// invariant survives the crash. Idempotent, safe to race with Close.
func (f *Forwarder) Kill() {
	if f.closed.Swap(true) {
		return
	}
	f.killed.Store(true)
	close(f.done)
	f.wg.Wait()
	f.dropPending()
}

// dropPending folds whatever is still buffered after shutdown into the
// dropped counter (snapshot documents are not events and simply vanish).
func (f *Forwarder) dropPending() {
	f.mu.Lock()
	orphaned := f.pendingEvents
	f.pending = nil
	f.pendingEvents = 0
	f.snaps = map[Origin]*SnapshotMsg{}
	f.mu.Unlock()
	if orphaned > 0 {
		f.droppedEvents.Add(uint64(orphaned))
	}
}
