package aggd

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// leafFor builds a leaf server forwarding to upstream, with flushes under
// test control (the interval is an hour; tests call Flush explicitly).
func leafFor(upstream string, epoch uint64) *Server {
	return NewServer(ServerConfig{Forward: &ForwardConfig{
		Upstream:      upstream,
		LeafID:        "leaf-under-test",
		Epoch:         epoch,
		FlushInterval: time.Hour,
		MaxRetries:    -1, // fail fast; the tests own the retry story
		BackoffBase:   time.Millisecond,
		MaxBackoff:    2 * time.Millisecond,
		DisableGzip:   true,
	}})
}

// TestForwarderLeafToRoot pushes batches and a snapshot through a real
// leaf -> root hop and audits both ends: the root sees exactly the admitted
// data once, and the leaf's conservation books close after shutdown.
func TestForwarderLeafToRoot(t *testing.T) {
	root := NewServer(ServerConfig{})
	rootTS := httptest.NewServer(root.Handler())
	defer rootTS.Close()

	leaf := leafFor(rootTS.URL, 1)
	leaf.applyBatch(mkBatch(1, 0, 3))
	leaf.applyBatch(mkBatch(1, 1, 2))
	leaf.applyBatch(mkBatch(1, 1, 2)) // dup: admitted nowhere, forwarded nowhere
	leaf.applySnapshot(&SnapshotMsg{
		Origin:   Origin{Job: "j", Node: "n", Rank: 0},
		Snapshot: testSnapshot(0, "n"),
	})

	if !leaf.Forwarder().Flush() {
		t.Fatal("flush to a healthy root failed")
	}
	rst := root.Stats()
	if rst.RollupFrames != 1 || rst.IngestBatches != 2 || rst.IngestEvents != 5 || rst.IngestSnapshots != 1 {
		t.Fatalf("root after one rollup: %+v", rst)
	}
	if rst.DupBatches != 0 || rst.RollupSkippedEvents != 0 {
		t.Fatalf("root saw replays from a clean leaf: %+v", rst)
	}

	// An empty flush ships nothing — no rollup frame, no burned seq.
	if !leaf.Forwarder().Flush() {
		t.Fatal("empty flush reported failure")
	}
	if rst := root.Stats(); rst.RollupFrames != 1 {
		t.Fatalf("empty flush shipped a rollup: %+v", rst)
	}

	if err := leaf.Close(); err != nil {
		t.Fatal(err)
	}
	fst := leaf.Forwarder().Stats()
	if fst.EnqueuedEvents != 5 || fst.AckedEvents != 5 || fst.DroppedEvents != 0 || fst.PendingEvents != 0 {
		t.Fatalf("leaf forwarder books do not close: %+v", fst)
	}
	if fst.SentRollups != 1 || fst.SentSnapshots != 1 {
		t.Fatalf("leaf shipment counters: %+v", fst)
	}
}

// TestForwarderDropsBurnSeq checks the failure contract both sides agree
// on: a rollup abandoned after its retries drops its batches (counted, not
// resent — the root may have applied it and lost only the ack), burns its
// sequence number, and the root later books that burned seq as a lost
// rollup. Snapshots, being idempotent, survive the failure and ride the
// next successful flush.
func TestForwarderDropsBurnSeq(t *testing.T) {
	root := NewServer(ServerConfig{})
	var failing atomic.Bool
	failing.Store(true)
	rootTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "injected outage", http.StatusServiceUnavailable)
			return
		}
		root.Handler().ServeHTTP(w, r)
	}))
	defer rootTS.Close()

	leaf := leafFor(rootTS.URL, 1)
	defer leaf.Close()
	leaf.applyBatch(mkBatch(1, 0, 4))
	leaf.applySnapshot(&SnapshotMsg{
		Origin:   Origin{Job: "j", Node: "n", Rank: 0},
		Snapshot: testSnapshot(0, "n"),
	})

	if leaf.Forwarder().Flush() {
		t.Fatal("flush through the outage reported success")
	}
	fst := leaf.Forwarder().Stats()
	if fst.DroppedEvents != 4 || fst.DroppedRollups != 1 || fst.AckedEvents != 0 {
		t.Fatalf("after failed flush: %+v", fst)
	}

	failing.Store(false)
	leaf.applyBatch(mkBatch(1, 1, 2))
	if !leaf.Forwarder().Flush() {
		t.Fatal("flush after the outage failed")
	}
	fst = leaf.Forwarder().Stats()
	if fst.AckedEvents != 2 || fst.SentSnapshots != 1 {
		t.Fatalf("snapshot did not ride the recovery flush: %+v", fst)
	}
	rst := root.Stats()
	// The recovery rollup carries seq 1; seq 0 died in the outage and shows
	// up at the root as exactly one lost rollup.
	if rst.LostRollups != 1 || rst.RollupFrames != 1 || rst.IngestEvents != 2 || rst.IngestSnapshots != 1 {
		t.Fatalf("root after recovery: %+v", rst)
	}
}

// TestForwarderKillConservation crashes a leaf with data still buffered:
// everything unshipped folds into the dropped counter so the conservation
// invariant survives the crash.
func TestForwarderKillConservation(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused, instantly

	leaf := leafFor(dead.URL, 1)
	leaf.applyBatch(mkBatch(1, 0, 7))
	leaf.Forwarder().Kill()
	fst := leaf.Forwarder().Stats()
	if fst.EnqueuedEvents != 7 || fst.DroppedEvents != 7 || fst.AckedEvents != 0 || fst.PendingEvents != 0 {
		t.Fatalf("killed leaf books do not close: %+v", fst)
	}
	// Idempotent, and Close after Kill stays a no-op.
	leaf.Forwarder().Kill()
	if err := leaf.Close(); err != nil {
		t.Fatal(err)
	}
}
