package aggd

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
)

// fuzzSeedFrames builds a representative set of well-formed frames plus a
// few near-miss mutations so the fuzzer starts inside the interesting part
// of the input space instead of hammering the magic check.
func fuzzSeedFrames(t interface{ Fatalf(string, ...any) }) [][]byte {
	batch := &Batch{
		Origin: Origin{Job: "fuzz", Node: "n00", Rank: 3},
		Epoch:  2,
		Seq:    7,
		Events: []export.Event{
			{Kind: export.EventHeartbeat, TimeSec: 1.5},
			{Kind: export.EventLWP, TimeSec: 2, LWP: &export.LWPSample{TID: 41, Kind: "Main", State: 'R', UserPct: 80, SysPct: 5, VCtx: 3, MinFlt: 9, CPU: 2}},
			{Kind: export.EventHWT, TimeSec: 2, HWT: &export.HWTSample{CPU: 1, IdlePct: 60, SysPct: 10, UserPct: 30}},
			{Kind: export.EventGPU, TimeSec: 2, GPU: &export.GPUSample{GPU: 0, Metric: "Device Busy %", Value: 42.5}},
			{Kind: export.EventMem, TimeSec: 3, Mem: &export.MemSample{TotalKB: 1 << 20, FreeKB: 1 << 18, ProcRSSKB: 1 << 16}},
			{Kind: export.EventIO, TimeSec: 3, IO: &export.IOSample{RChar: 100, WChar: 200, ReadBytes: 50}},
		},
	}
	bf, err := EncodeBatchFrame(batch)
	if err != nil {
		t.Fatalf("seed batch: %v", err)
	}
	sf, err := EncodeSnapshotFrame(&SnapshotMsg{
		Origin: Origin{Job: "fuzz", Node: "n00", Rank: 3},
		Snapshot: core.Snapshot{
			Rank: 3, Size: 4, Hostname: "n00", Samples: 10,
			LWPs: []core.ThreadSummary{{TID: 41, Label: "Main", Kind: core.KindMain, UTimePct: 80}},
			HWTs: []core.HWTSummary{{CPU: 0, IdlePct: 50, UserPct: 40, SysPct: 10}},
		},
		CommRow: map[int]uint64{0: 1024, 2: 4096},
	})
	if err != nil {
		t.Fatalf("seed snapshot: %v", err)
	}

	truncated := append([]byte(nil), bf[:len(bf)-3]...)
	flipped := append([]byte(nil), bf...)
	flipped[len(flipped)/2] ^= 0x40
	withGarbage := append([]byte("torn-write-residue"), sf...)
	backToBack := append(append([]byte(nil), bf...), sf...)

	// Interleaved multi-job body: a second job whose batch collides with
	// the first on node, rank, epoch, seq and TID — only the job name
	// differs — framed back to back with it, the way a shared leaf socket
	// carries several jobs' streams in one request.
	peer := *batch
	peer.Origin.Job = "fuzz2"
	pf, err := EncodeBatchFrame(&peer)
	if err != nil {
		t.Fatalf("seed peer batch: %v", err)
	}
	multiJob := append(append(append([]byte(nil), bf...), pf...), sf...)

	// The rolling-upgrade states: the same batch framed at each supported
	// version, and all three concatenated in one body.
	v3f, err := AppendBatchFrameVersion(nil, batch, 3)
	if err != nil {
		t.Fatalf("seed v3 batch: %v", err)
	}
	batch.Events = batch.Events[:2] // heartbeat + LWP: the kinds a v2 agent ships
	v2f, err := AppendBatchFrameVersion(nil, batch, 2)
	if err != nil {
		t.Fatalf("seed v2 batch: %v", err)
	}
	mixedVers := append(append(append([]byte(nil), v2f...), v3f...), bf...)

	// Hostile v4 payloads with valid CRCs, so they reach the batch decoder:
	// a dictionary count the bytes cannot hold, a non-minimal varint, and an
	// LWP TID delta that overflows int32.
	truncDict := v4Frame(t, []byte{2, 1, 'x'}) // claims 2 strings, carries 1
	nonMinimal := v4Frame(t, []byte{0x80, 0x00})
	overflow := v4Frame(t, append([]byte{
		1, 0, // dict: one empty string
		0, 0, // jobRef, nodeRef
		0,    // rank
		1, 0, // epoch, seq
		1,      // one event
		tagLWP, // LWP event
		0,      // time delta 0
	}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01)) // tid zigzag delta = max uint64

	return [][]byte{bf, sf, truncated, flipped, withGarbage, backToBack,
		multiJob, v2f, v3f, mixedVers, truncDict, nonMinimal, overflow}
}

// v4Frame wraps a raw v4 batch payload in a valid frame (correct magic,
// version, length, CRC), so fuzz seeds exercise the payload decoder rather
// than dying at the checksum.
func v4Frame(t interface{ Fatalf(string, ...any) }, payload []byte) []byte {
	dst := appendHeader(nil, FrameBatch, WireVersion)
	dst = append(dst, payload...)
	frame, err := finishFrame(dst)
	if err != nil {
		t.Fatalf("v4 seed frame: %v", err)
	}
	return frame
}

// FuzzWireDecode throws arbitrary bytes at the frame reader, the payload
// decoders, and the resyncing scanner. Invariants: no panic, the scanner
// always terminates, and any frame that decodes cleanly re-encodes to the
// exact bytes that were consumed (wire canonical form).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("ZSAG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, ver, payload, err := ReadFrame(bytes.NewReader(data))
		if err == nil {
			switch kind {
			case FrameBatch:
				// Canonical-form check only holds for current-version frames:
				// a v2 batch re-encodes as v3 (one stalled byte per LWP event),
				// so compatibility frames are only required not to panic.
				if b, err := DecodeBatchPayloadVersionInto(payload, ver, new(BatchBuf)); err == nil && ver == WireVersion {
					re, err := EncodeBatchFrame(b)
					if err != nil {
						t.Fatalf("decoded batch failed to re-encode: %v", err)
					}
					if consumed := data[:frameHeaderLen+len(payload)]; !bytes.Equal(re, consumed) {
						t.Fatalf("batch round-trip not canonical:\n in  %x\n out %x", consumed, re)
					}
				}
			case FrameSnapshot:
				_, _ = DecodeSnapshotPayload(payload)
			}
		}

		// The scanner must make progress through any input: each Next call
		// either yields a frame, reports a corrupt run, or ends the stream.
		sc := NewFrameScanner(bytes.NewReader(data))
		for steps := 0; ; steps++ {
			if steps > len(data)+16 {
				t.Fatalf("scanner failed to terminate on %d-byte input", len(data))
			}
			_, _, err := sc.Next()
			if err == nil {
				continue
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			var ce *CorruptFrameError
			if errors.As(err, &ce) {
				if ce.Skipped == 0 {
					t.Fatalf("corrupt-frame report skipped zero bytes: %v", ce)
				}
				continue
			}
			break // terminal transport error (truncation mid-frame)
		}
	})
}
