package aggd

// Golden-file tests for the TSDB query API. The three endpoint families —
// range query, windowed heatmap, top-k — serve JSON that downstream
// tooling scripts against, so the exact bytes are pinned under testdata/;
// any shape drift must show up as a reviewable diff.
//
// Regenerate with:
//
//	go test ./internal/aggd -run TestTSDBGolden -update

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/tsdb"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenIngest loads a deterministic two-node, three-rank job: 25 seconds
// of per-second samples per rank plus an end-of-run snapshot each. Block
// width 10s guarantees sealed chunks (and therefore rollup-served buckets)
// inside the query windows below. pick routes each rank's frames to an
// ingest base URL, so the same fixture drives a flat server (constant pick)
// or a leaf tier (consistent-hash pick).
func goldenIngest(t *testing.T, pick func(node string, rank int) string) []core.Snapshot {
	t.Helper()
	var snaps []core.Snapshot
	for rank := 0; rank < 3; rank++ {
		node := "node-a"
		if rank >= 2 {
			node = "node-b"
		}
		var frames [][]byte
		for sec := 0; sec < 25; sec++ {
			tt := float64(sec)
			ev := []export.Event{
				{Kind: export.EventLWP, TimeSec: tt, LWP: &export.LWPSample{
					TID: 1000 + rank, Kind: "Main", State: 'R',
					UserPct: float64(50 + 10*rank + sec%5), SysPct: float64(5 + sec%3),
					VCtx: uint64(10 * sec), NVCtx: uint64(rank * sec),
					CPU: rank, Stalled: rank == 1 && sec >= 20,
				}},
				{Kind: export.EventHWT, TimeSec: tt, HWT: &export.HWTSample{
					CPU: rank, IdlePct: float64(20 - rank), SysPct: 10,
					UserPct: float64(70 + rank),
				}},
				{Kind: export.EventGPU, TimeSec: tt, GPU: &export.GPUSample{
					GPU: rank % 2, Metric: "Device Busy %", Value: float64(40 + sec),
				}},
				{Kind: export.EventMem, TimeSec: tt, Mem: &export.MemSample{
					TotalKB: 64 << 20, FreeKB: uint64(32<<20 - 100*sec),
					ProcRSSKB: uint64(1<<20 + 10*sec),
				}},
				{Kind: export.EventIO, TimeSec: tt, IO: &export.IOSample{
					ReadBytes: uint64(4096 * sec), WriteBytes: uint64(512 * sec),
				}},
			}
			frame, err := EncodeBatchFrame(&Batch{
				Origin: Origin{Job: "jobG", Node: node, Rank: rank},
				Epoch:  1, Seq: uint64(sec), Events: ev,
			})
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, frame)
		}
		snap := testSnapshot(rank, node)
		snaps = append(snaps, snap)
		sf, err := EncodeSnapshotFrame(&SnapshotMsg{
			Origin:   Origin{Job: "jobG", Node: node, Rank: rank},
			Snapshot: snap,
			CommRow:  map[int]uint64{(rank + 1) % 3: uint64(1024 * (rank + 1))},
		})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, sf)
		if resp := postFrames(t, pick(node, rank), false, frames...); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("ingest rank %d: %s", rank, resp.Status)
		}
	}
	return snaps
}

func TestTSDBGolden(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	srv := NewServer(ServerConfig{
		Now:  func() time.Time { return fixed },
		TSDB: tsdb.Options{Block: 10 * time.Second, Downsample: 2 * time.Second},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	goldenIngest(t, func(string, int) string { return ts.URL })

	cases := []struct {
		golden string
		url    string
	}{
		{"query_stepped.json", "/api/job/jobG/query?metric=lwp.user_pct&step=10&agg=mean"},
		{"query_raw.json", "/api/job/jobG/query?metric=lwp.nvctx&rank=2&start=5&end=10"},
		{"query_delta.json", "/api/job/jobG/query?metric=io.read_bytes&step=10&agg=delta&node=node-a"},
		{"heatmap_window.json", "/api/job/jobG/heatmap?metric=hwt.user_pct&start=5&end=25&step=5&agg=max"},
		{"heatmap_sparse.json", "/api/job/jobG/heatmap?metric=lwp.stalled&start=0&end=30&step=10&agg=max"},
		{"topk.json", "/api/job/jobG/topk?metric=lwp.nvctx&agg=delta&k=2&start=0&end=25"},
	}
	for _, tc := range cases {
		resp, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s: %s", tc.url, resp.Status, body)
		}
		path := filepath.Join("testdata", "golden", tc.golden)
		if *update {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate)", err)
		}
		if string(body) != string(want) {
			t.Errorf("%s drifted from %s:\n got: %s\nwant: %s", tc.url, path, body, want)
		}
	}
}

// TestSummaryByteIdentityOverTSDB pins the refactor invariant: moving
// snapshot storage into the TSDB store must not change a byte of the
// summary endpoint. The expected body is computed the way the pre-TSDB
// server did — fold the snapshots (rank-ordered) through report.Aggregate
// and render with the same indented encoder.
func TestSummaryByteIdentityOverTSDB(t *testing.T) {
	srv := NewServer(ServerConfig{TSDB: tsdb.Options{Block: 10 * time.Second}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	snaps := goldenIngest(t, func(string, int) string { return ts.URL })

	summary, err := reportAggregate(snaps, srv.cfg.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/job/jobG/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %s: %s", resp.Status, body)
	}
	if string(body) != summary {
		t.Fatalf("summary not byte-identical to the direct aggregation:\n got: %s\nwant: %s", body, summary)
	}
}

// reportAggregate renders snapshots exactly as the summary handler's
// pre-TSDB implementation did.
func reportAggregate(snaps []core.Snapshot, th core.EvalThresholds) (string, error) {
	summary, err := report.Aggregate(snaps, th)
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}
