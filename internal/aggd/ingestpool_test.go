package aggd_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"zerosum/internal/aggd"
	"zerosum/internal/chaos"
	"zerosum/internal/export"
)

// TestIngestPooledScratchIsolation hammers the ingest endpoint with
// interleaved jobs, ranks, encodings, and batch shapes, so consecutive
// requests share the pooled gzip readers, frame scanners, and decode
// arenas. Every stream's accounting must come out exact — a stale arena or
// scanner bleeding state across requests would misattribute events — and
// the server must return to its goroutine/fd baseline afterwards.
func TestIngestPooledScratchIsolation(t *testing.T) {
	lc := chaos.StartLeakCheck()
	srv := aggd.NewServer(aggd.ServerConfig{})
	ts := httptest.NewServer(srv.Handler())

	const jobs, ranks, rounds = 3, 4, 6
	post := func(t *testing.T, frame []byte, gz bool) {
		t.Helper()
		body := frame
		if gz {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			if _, err := zw.Write(frame); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
			body = buf.Bytes()
		}
		req, err := http.NewRequest("POST", ts.URL+"/api/ingest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if gz {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}

	wantEvents := make(map[string]uint64)
	sent := 0
	for seq := 0; seq < rounds; seq++ {
		for j := 0; j < jobs; j++ {
			for r := 0; r < ranks; r++ {
				job := fmt.Sprintf("job%d", j)
				b := &aggd.Batch{
					Origin: aggd.Origin{Job: job, Node: fmt.Sprintf("n%d", r%2), Rank: r},
					Epoch:  1, Seq: uint64(seq),
				}
				// Vary batch size per stream so a leaked arena length from
				// the previous request would show up as a count mismatch.
				n := 1 + (j+r+seq)%5
				for i := 0; i < n; i++ {
					b.Events = append(b.Events, export.Event{
						Kind: export.EventLWP, TimeSec: float64(seq) + float64(i)*0.01,
						LWP: &export.LWPSample{TID: 100*r + i, Kind: "Main", State: 'R', NVCtx: uint64(seq)},
					})
				}
				frame, err := aggd.EncodeBatchFrame(b)
				if err != nil {
					t.Fatal(err)
				}
				post(t, frame, (j+r+seq)%2 == 0)
				wantEvents[job] += uint64(n)
				sent++
			}
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/api/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var infos []aggd.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != jobs {
		t.Fatalf("listed %d jobs, want %d", len(infos), jobs)
	}
	for _, info := range infos {
		if info.Events != wantEvents[info.Job] {
			t.Errorf("job %s: %d events recorded, want %d", info.Job, info.Events, wantEvents[info.Job])
		}
		if info.Ranks != ranks {
			t.Errorf("job %s: %d ranks recorded, want %d", info.Job, info.Ranks, ranks)
		}
	}
	stats := srv.Stats()
	if stats.IngestBatches != uint64(sent) || stats.IngestErrors != 0 ||
		stats.CorruptFrames != 0 || stats.DupBatches != 0 {
		t.Errorf("stats %+v after %d clean batches", stats, sent)
	}

	ts.Close()
	lc.Assert(t)
}
