package aggd

import (
	"errors"
	"fmt"
	"sync"

	"zerosum/internal/core"
	"zerosum/internal/export"
)

// JobStreamer manages one Agent per rank of a job. Its StreamFor method has
// the signature of workload.MonitorConfig.StreamFor, so wiring a whole
// simulated job into an aggregator is:
//
//	js := aggd.NewJobStreamer(aggd.AgentConfig{URL: aggURL, Job: "run-1"})
//	cfg.Monitor.StreamFor = js.StreamFor
//	res, err := workload.Run(cfg)
//	... js.FinishRank(rank, snapshot, commRow) per rank ...
//	js.Close()
type JobStreamer struct {
	base   AgentConfig
	router *Router // nil unless base.URLs lists several endpoints

	mu     sync.Mutex
	agents map[int]*Agent //zerosum:guardedby mu
	errs   []error        //zerosum:guardedby mu
}

// NewJobStreamer prepares a per-rank agent factory; base.Node and base.Rank
// are filled per rank. When base.URLs lists several endpoints (a leaf
// tier), each rank's agent gets its consistent-hash home and failover
// order from a Router over them.
func NewJobStreamer(base AgentConfig) *JobStreamer {
	j := &JobStreamer{base: base, agents: make(map[int]*Agent)}
	if len(base.URLs) > 1 {
		router, err := NewRouter(base.URLs)
		if err != nil {
			// Surfaces at Close, like a per-rank agent failure.
			j.mu.Lock()
			j.errs = append(j.errs, err)
			j.mu.Unlock()
		}
		j.router = router
	}
	return j
}

// StreamFor creates the rank's stream with a fresh agent attached.
func (j *JobStreamer) StreamFor(rank int, node string) *export.Stream {
	cfg := j.base
	cfg.Node = node
	cfg.Rank = rank
	if j.router != nil {
		cfg.URLs = j.router.Order(node, rank)
		cfg.URL = cfg.URLs[0]
	}
	stream := &export.Stream{}
	agent, err := NewAgent(cfg)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		// Launch proceeds unstreamed; the error surfaces at Close.
		j.errs = append(j.errs, fmt.Errorf("aggd: rank %d agent: %w", rank, err))
		return stream
	}
	agent.Attach(stream)
	j.agents[rank] = agent
	return stream
}

// Agent returns the rank's agent (nil before StreamFor ran for it).
func (j *JobStreamer) Agent(rank int) *Agent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.agents[rank]
}

// FinishRank ships the rank's end-of-run snapshot and communication row.
func (j *JobStreamer) FinishRank(rank int, snap core.Snapshot, commRow map[int]uint64) error {
	agent := j.Agent(rank)
	if agent == nil {
		return fmt.Errorf("aggd: no agent for rank %d", rank)
	}
	return agent.PushSnapshot(snap, commRow)
}

// Stats sums the per-rank agent counters.
func (j *JobStreamer) Stats() AgentStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	var total AgentStats
	for _, a := range j.agents {
		st := a.Stats()
		total.Enqueued += st.Enqueued
		total.RingDrops += st.RingDrops
		total.SendDrops += st.SendDrops
		total.SentBatches += st.SentBatches
		total.SentEvents += st.SentEvents
		total.Retries += st.Retries
	}
	return total
}

// Close flushes and stops every agent, reporting any agent-creation errors.
func (j *JobStreamer) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	errs := j.errs
	for _, a := range j.agents {
		if err := a.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	j.errs = nil
	return errors.Join(errs...)
}
