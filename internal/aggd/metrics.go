package aggd

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): the live per-job view
// of every streamed resource — per-HWT utilization, involuntary context
// switches, GPU busy %, memory, and per-stream heartbeat age — plus the
// aggregator's own ingest counters.

// metricFamily collects one family's series before emission so the output
// is grouped under a single HELP/TYPE header, as the format requires.
type metricFamily struct {
	name string
	help string
	typ  string // "gauge" or "counter"
	rows []string
}

func (f *metricFamily) add(labels string, value float64) {
	var b strings.Builder
	b.WriteString(f.name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	f.rows = append(f.rows, b.String())
}

func (f *metricFamily) write(w io.Writer) error {
	if len(f.rows) == 0 {
		return nil
	}
	sort.Strings(f.rows)
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	for _, row := range f.rows {
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	return nil
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func streamLabels(job string, key rankKey) string {
	return fmt.Sprintf(`job="%s",node="%s",rank="%d"`,
		escapeLabel(job), escapeLabel(key.node), key.rank)
}

// WriteMetrics renders the exposition document.
func (s *Server) WriteMetrics(w io.Writer) error {
	families := []*metricFamily{
		{name: "zerosum_ingest_batches_total", help: "Event batches accepted by the aggregator.", typ: "counter"},
		{name: "zerosum_ingest_events_total", help: "Stream events accepted by the aggregator.", typ: "counter"},
		{name: "zerosum_ingest_snapshots_total", help: "Rank snapshots accepted by the aggregator.", typ: "counter"},
		{name: "zerosum_ingest_errors_total", help: "Rejected ingest requests.", typ: "counter"},
		{name: "zerosum_lost_batches_total", help: "Batch sequence gaps observed across all streams.", typ: "counter"},
		{name: "zerosum_recovered_batches_total", help: "Gap batches later delivered by an agent retry.", typ: "counter"},
		{name: "zerosum_duplicate_batches_total", help: "Replayed batches skipped by sequence dedup.", typ: "counter"},
		{name: "zerosum_corrupt_frames_total", help: "Ingest frames rejected for checksum or framing damage.", typ: "counter"},
		{name: "zerosum_rollup_frames_total", help: "Rollup frames received from downstream leaf aggregators.", typ: "counter"},
		{name: "zerosum_rollup_duplicate_total", help: "Replayed rollups skipped by per-leaf (epoch, seq) dedup.", typ: "counter"},
		{name: "zerosum_rollup_lost_total", help: "Rollup sequence gaps observed across all leaves.", typ: "counter"},
		{name: "zerosum_rollup_recovered_total", help: "Gap rollups later delivered by a leaf retry.", typ: "counter"},
		{name: "zerosum_rollup_skipped_events_total", help: "Events in rollup-embedded batches rejected by per-origin dedup.", typ: "counter"},
		{name: "zerosum_response_write_errors_total", help: "Response bodies that failed mid-write (client hangups).", typ: "counter"},
		{name: "zerosum_stream_events_total", help: "Events received per stream.", typ: "counter"},
		{name: "zerosum_heartbeat_age_seconds", help: "Seconds since the last frame arrived from a stream.", typ: "gauge"},
		{name: "zerosum_hwt_idle_pct", help: "Latest sampled idle share of a hardware thread.", typ: "gauge"},
		{name: "zerosum_hwt_sys_pct", help: "Latest sampled system share of a hardware thread.", typ: "gauge"},
		{name: "zerosum_hwt_user_pct", help: "Latest sampled user share of a hardware thread.", typ: "gauge"},
		{name: "zerosum_lwp_nvctx_total", help: "Cumulative involuntary context switches over a rank's threads.", typ: "counter"},
		{name: "zerosum_lwp_vctx_total", help: "Cumulative voluntary context switches over a rank's threads.", typ: "counter"},
		{name: "zerosum_lwp_stalled", help: "Threads of a rank currently flagged stalled by progress detection.", typ: "gauge"},
		{name: "zerosum_lwp_stall_events_total", help: "Stall flag raises observed over a rank's threads (survives the stall clearing).", typ: "counter"},
		{name: "zerosum_gpu_busy_pct", help: "Latest sampled Device Busy % per GPU.", typ: "gauge"},
		{name: "zerosum_mem_free_kb", help: "Latest sampled free system memory on a rank's node.", typ: "gauge"},
		{name: "zerosum_mem_rss_kb", help: "Latest sampled process RSS of a rank.", typ: "gauge"},
		{name: "zerosum_tsdb_samples_total", help: "Samples appended to a job's time-series store.", typ: "counter"},
		{name: "zerosum_tsdb_series", help: "Live series in a job's time-series store.", typ: "gauge"},
		{name: "zerosum_tsdb_bytes", help: "Compressed bytes held by a job's time-series store.", typ: "gauge"},
		{name: "zerosum_tsdb_sealed_chunks", help: "Sealed immutable chunks in a job's time-series store.", typ: "gauge"},
		{name: "zerosum_tsdb_evicted_samples_total", help: "Samples dropped from a job's store by retention.", typ: "counter"},
	}
	const (
		fBatches = iota
		fEvents
		fSnaps
		fErrors
		fLost
		fRecovered
		fDup
		fCorrupt
		fRollupFrames
		fRollupDup
		fRollupLost
		fRollupRecovered
		fRollupSkipped
		fWriteErrors
		fStreamEvents
		fHeartbeat
		fIdle
		fSys
		fUser
		fNVCtx
		fVCtx
		fStalled
		fStallEvents
		fGPU
		fMemFree
		fMemRSS
		fTSDBSamples
		fTSDBSeries
		fTSDBBytes
		fTSDBSealed
		fTSDBEvicted
	)
	families[fBatches].add("", float64(s.ingestBatches.Load()))
	families[fEvents].add("", float64(s.ingestEvents.Load()))
	families[fSnaps].add("", float64(s.ingestSnapshots.Load()))
	families[fErrors].add("", float64(s.ingestErrors.Load()))
	families[fLost].add("", float64(s.lostBatches.Load()))
	families[fRecovered].add("", float64(s.recoveredBatches.Load()))
	families[fDup].add("", float64(s.dupBatches.Load()))
	families[fCorrupt].add("", float64(s.corruptFrames.Load()))
	families[fRollupFrames].add("", float64(s.rollupFrames.Load()))
	families[fRollupDup].add("", float64(s.dupRollups.Load()))
	families[fRollupLost].add("", float64(s.lostRollups.Load()))
	families[fRollupRecovered].add("", float64(s.recoveredRollups.Load()))
	families[fRollupSkipped].add("", float64(s.rollupSkippedEvents.Load()))
	families[fWriteErrors].add("", float64(s.writeErrors.Load()))

	now := s.cfg.Now()
	s.eachJob(func(name string, js *jobStore) {
		//zerosum:locked rankShard.mu eachRank holds the shard lock around fn
		js.eachRank(func(key rankKey, rs *rankState) {
			base := streamLabels(name, key)
			families[fStreamEvents].add(base, float64(rs.events))
			if !rs.lastRecv.IsZero() {
				families[fHeartbeat].add(base, now.Sub(rs.lastRecv).Seconds())
			}
			for cpu, hw := range rs.hwt {
				labels := fmt.Sprintf(`cpu="%d",%s`, cpu, base)
				families[fIdle].add(labels, hw.IdlePct)
				families[fSys].add(labels, hw.SysPct)
				families[fUser].add(labels, hw.UserPct)
			}
			var nv, v uint64
			for _, c := range rs.nvctx {
				nv += c
			}
			for _, c := range rs.vctx {
				v += c
			}
			if len(rs.nvctx) > 0 {
				families[fNVCtx].add(base, float64(nv))
				families[fVCtx].add(base, float64(v))
				families[fStalled].add(base, float64(len(rs.stalled)))
				families[fStallEvents].add(base, float64(rs.stallEvents))
			}
			for gpu, busy := range rs.gpuBusy {
				families[fGPU].add(fmt.Sprintf(`gpu="%d",%s`, gpu, base), busy)
			}
			if rs.memFree > 0 {
				families[fMemFree].add(base, float64(rs.memFree))
			}
			if rs.memRSS > 0 {
				families[fMemRSS].add(base, float64(rs.memRSS))
			}
		})
	})
	for _, job := range s.store.Jobs() {
		js := s.store.JobStats(job)
		labels := fmt.Sprintf(`job="%s"`, escapeLabel(job))
		families[fTSDBSamples].add(labels, float64(js.Samples))
		families[fTSDBSeries].add(labels, float64(js.Series))
		families[fTSDBBytes].add(labels, float64(js.Bytes))
		families[fTSDBSealed].add(labels, float64(js.SealedChunks))
		families[fTSDBEvicted].add(labels, float64(js.EvictedSamples))
	}
	for _, f := range families {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.WriteMetrics(w); err != nil {
		// Headers are already out; all we can do is count the broken scrape.
		s.writeErrors.Add(1)
	}
}
