package aggd

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
)

// multiJobBatch builds one job's batch whose identifying tuple — node,
// rank, epoch, sequence, and every LWP TID — is identical across jobs.
// Only the job name and the sample magnitudes differ, so any state keyed
// without the job dimension merges two jobs' streams.
func multiJobBatch(t *testing.T, job string, seq uint64, scale float64, ver uint8) []byte {
	t.Helper()
	b := &Batch{
		Origin: Origin{Job: job, Node: "n00", Rank: 0},
		Epoch:  1,
		Seq:    seq,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: float64(seq), LWP: &export.LWPSample{
				TimeSec: float64(seq), TID: 1000, Kind: "Main", State: 'R',
				UserPct: 50 * scale, SysPct: 5, VCtx: uint64(10 * scale), NVCtx: uint64(4 * scale), CPU: 0,
			}},
			{Kind: export.EventHWT, TimeSec: float64(seq), HWT: &export.HWTSample{
				TimeSec: float64(seq), CPU: 0, IdlePct: 10, SysPct: 10, UserPct: 80 * scale,
			}},
		},
	}
	frame, err := AppendBatchFrameVersion(nil, b, ver)
	if err != nil {
		t.Fatalf("job %s batch: %v", job, err)
	}
	return frame
}

// multiJobSnapshot is testSnapshot with the magnitudes scaled per job while
// hostname, rank and TIDs stay identical across jobs.
func multiJobSnapshot(job string, pct float64) core.Snapshot {
	snap := testSnapshot(0, "n00")
	snap.Comm = job
	for i := range snap.LWPs {
		snap.LWPs[i].UTimePct = pct
	}
	return snap
}

// TestMultiJobIsolation posts two jobs whose streams collide on every
// non-job identity dimension — same node, rank 0, epoch 1, the same
// sequence numbers, the same TIDs — into one aggregator, across the
// supported wire versions and both content encodings, and asserts nothing
// merges: per-job event and snapshot censuses, batch dedup state, served
// summaries and heatmaps, TSDB sample counts, and the Prometheus export
// must each stay per-job exact.
func TestMultiJobIsolation(t *testing.T) {
	cases := []struct {
		name       string
		verA, verB uint8
		gzip       bool
	}{
		{"current-version", WireVersion, WireVersion, false},
		{"mixed-versions", MinWireVersion, WireVersion, false},
		{"gzip-interleaved", WireVersion, WireVersion, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(ServerConfig{})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			const batches = 3
			// Interleave the two jobs' colliding batches in single bodies —
			// the FrameScanner walks job-alpha and job-beta frames back to
			// back, the way a leaf sees them arrive from a shared socket.
			for seq := uint64(1); seq <= batches; seq++ {
				a := multiJobBatch(t, "alpha", seq, 1.0, tc.verA)
				b := multiJobBatch(t, "beta", seq, 0.5, tc.verB)
				if resp := postFrames(t, ts.URL, tc.gzip, a, b); resp.StatusCode != http.StatusNoContent {
					t.Fatalf("seq %d: %s", seq, resp.Status)
				}
			}
			// Replaying alpha's last batch must be deduped for alpha without
			// consuming beta's identical (epoch, seq) slot.
			replay := multiJobBatch(t, "alpha", batches, 1.0, tc.verA)
			if resp := postFrames(t, ts.URL, tc.gzip, replay); resp.StatusCode != http.StatusNoContent {
				t.Fatalf("replay: %s", resp.Status)
			}
			if st := srv.Stats(); st.DupBatches != 1 || st.IngestEvents != 2*2*batches {
				t.Fatalf("dedup books: %d dups, %d events; want 1 dup, %d events", st.DupBatches, st.IngestEvents, 2*2*batches)
			}

			// Snapshots: identical tuples, different magnitudes per job.
			snaps := map[string]core.Snapshot{
				"alpha": multiJobSnapshot("alpha", 90),
				"beta":  multiJobSnapshot("beta", 30),
			}
			for job, snap := range snaps {
				frame, err := EncodeSnapshotFrame(&SnapshotMsg{
					Origin:   Origin{Job: job, Node: "n00", Rank: 0},
					Snapshot: snap,
					CommRow:  map[int]uint64{0: 0},
				})
				if err != nil {
					t.Fatal(err)
				}
				if resp := postFrames(t, ts.URL, tc.gzip, frame); resp.StatusCode != http.StatusNoContent {
					t.Fatalf("%s snapshot: %s", job, resp.Status)
				}
			}

			// Census: each job holds exactly its own stream and snapshot.
			var jobs []JobInfo
			getJSON(t, ts.URL+"/api/jobs", &jobs)
			if len(jobs) != 2 {
				t.Fatalf("jobs: %+v", jobs)
			}
			for _, ji := range jobs {
				if ji.Events != 2*batches || ji.Snapshots != 1 || ji.Ranks != 1 || ji.Nodes != 1 {
					t.Fatalf("job %s census bled: %+v", ji.Job, ji)
				}
			}

			// Summaries: byte-for-byte the single-job aggregate of each
			// job's own snapshot, and distinguishable from the other's.
			for job, snap := range snaps {
				want, err := report.Aggregate([]core.Snapshot{snap}, core.EvalThresholds{})
				if err != nil {
					t.Fatal(err)
				}
				var got report.JobSummary
				getJSON(t, ts.URL+"/api/job/"+job+"/summary", &got)
				assertSummariesEqual(t, want, &got)
			}

			// TSDB: per-job sample census is the per-kind arithmetic of that
			// job's own admitted events (LWP 5 appends, HWT 3).
			for _, job := range []string{"alpha", "beta"} {
				if js := srv.TSDB().JobStats(job); js.Samples != (5+3)*batches {
					t.Fatalf("job %s tsdb bled: %d samples, want %d", job, js.Samples, (5+3)*batches)
				}
			}

			// Prometheus: the colliding stream exports under both job labels
			// with per-job values, not one merged series.
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			wantSeries := map[string]bool{
				fmt.Sprintf(`zerosum_stream_events_total{job="alpha",node="n00",rank="0"} %d`, 2*batches): false,
				fmt.Sprintf(`zerosum_stream_events_total{job="beta",node="n00",rank="0"} %d`, 2*batches):  false,
			}
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if _, ok := wantSeries[sc.Text()]; ok {
					wantSeries[sc.Text()] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			for series, seen := range wantSeries {
				if !seen {
					t.Fatalf("metrics missing per-job series %q", series)
				}
			}
		})
	}
}

// TestMultiJobQueryIsolation pins the TSDB read path: range queries for a
// metric both jobs emitted under identical series identities serve only
// the querying job's points.
func TestMultiJobQueryIsolation(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const batches = 4
	for seq := uint64(1); seq <= batches; seq++ {
		a := multiJobBatch(t, "alpha", seq, 1.0, WireVersion)
		b := multiJobBatch(t, "beta", seq, 0.5, WireVersion)
		if resp := postFrames(t, ts.URL, false, a, b); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("seq %d: %s", seq, resp.Status)
		}
	}
	for job, wantNVCtx := range map[string]float64{"alpha": 4, "beta": 2} {
		var qr QueryResponse
		getJSON(t, ts.URL+"/api/job/"+job+"/query?metric=lwp.nvctx", &qr)
		var points int
		for _, sr := range qr.Series {
			points += len(sr.Points)
			for _, p := range sr.Points {
				if p.Value != wantNVCtx {
					t.Fatalf("job %s served foreign point %+v (want nvctx %v)", job, p, wantNVCtx)
				}
			}
		}
		if points != batches {
			t.Fatalf("job %s served %d points, admitted %d LWP events", job, points, batches)
		}
	}
	if body, err := http.Get(ts.URL + "/api/job/gamma/query?metric=lwp.nvctx"); err != nil {
		t.Fatal(err)
	} else {
		body.Body.Close()
		if body.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job served a query: %s", body.Status)
		}
	}
}
