//go:build !race

package aggd

const raceEnabled = false
