//go:build race

package aggd

// raceEnabled lets allocation gates skip under the race detector, which
// deliberately makes sync.Pool drop puts and gets (to expose lifecycle
// races), so pooled scratch is re-allocated on purpose there.
const raceEnabled = true
