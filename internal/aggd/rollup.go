package aggd

import (
	"encoding/binary"
	"fmt"
)

// Rollup frames are the tree's upstream wire format: a leaf aggregator
// admits agent batches (running the usual per-origin dedup), buffers the
// admitted events, and ships them to its parent pre-merged as one rollup
// frame per flush. The frame rides the existing ZSAG framing with its own
// kind byte (FrameRollup, introduced with wire version 3), so leaves and
// roots share one ingest endpoint and the resyncing FrameScanner skips
// corrupt rollups exactly like corrupt batches.
//
// Rollup payload layout (little endian, after the 14-byte frame header):
//
//	leafID    string (u16 length + bytes) — stable identity of the leaf
//	leafEpoch uint64 — incarnation of the leaf process
//	seq       uint64 — rollup sequence within the epoch, 0,1,2,…
//	nBatches  uint32
//	  nBatches × { len uint32, batch payload (the FrameBatch encoding,
//	               same wire version as the rollup frame) }
//	nSnaps    uint32
//	  nSnaps × { len uint32, SnapshotMsg JSON (the FrameSnapshot payload) }
//
// The embedded batches keep their original (origin, epoch, seq) identity,
// so the parent runs the same per-origin dedup it runs for direct agent
// traffic: a batch the dying leaf forwarded and its successor forwards
// again merges exactly once. (leafEpoch, seq) dedup on top makes replaying
// a whole rollup — a retry racing a lost ack, or a restarted leaf — cheap
// and idempotent.
const FrameRollup FrameKind = 3

// RollupMsg is the decoded form of one rollup frame.
type RollupMsg struct {
	// LeafID names the forwarding leaf; the parent tracks (LeafEpoch, Seq)
	// dedup state per leaf ID.
	LeafID    string
	LeafEpoch uint64
	Seq       uint64
	Batches   []Batch
	Snapshots []SnapshotMsg
}

// minRollupPayload is the smallest well-formed rollup payload: an empty
// leaf ID (2 bytes), epoch and seq (8 each), and two zero counts (4 each).
const minRollupPayload = 2 + 8 + 8 + 4 + 4

// AppendRollupFrame appends the framed encoding of ru to dst and returns
// the extended slice, so a forwarder can reuse one scratch buffer per
// flush. The embedded batches are encoded with the current wire version
// (a leaf re-encodes whatever version its agents sent, which is how a v2
// batch crosses a v3 tree).
//
//zerosum:wire-encode rollup
func AppendRollupFrame(dst []byte, ru *RollupMsg) ([]byte, error) {
	start := len(dst)
	dst = appendHeader(dst, FrameRollup, WireVersion)
	var err error
	if dst, err = appendString(dst, ru.LeafID); err != nil {
		return nil, err
	}
	dst = binary.LittleEndian.AppendUint64(dst, ru.LeafEpoch)
	dst = binary.LittleEndian.AppendUint64(dst, ru.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ru.Batches)))
	for i := range ru.Batches {
		// Length-prefix each embedded batch payload; the payload bytes are
		// exactly what AppendBatchFrame would put after its header.
		lenAt := len(dst)
		dst = binary.LittleEndian.AppendUint32(dst, 0)
		bodyAt := len(dst)
		if dst, err = appendBatchPayloadVersion(dst, &ru.Batches[i], WireVersion); err != nil {
			return nil, err
		}
		binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-bodyAt))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ru.Snapshots)))
	for i := range ru.Snapshots {
		body, err := encodeSnapshotPayload(&ru.Snapshots[i])
		if err != nil {
			return nil, err
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(body)))
		dst = append(dst, body...)
	}
	frame, err := finishFrame(dst[start:])
	if err != nil {
		return nil, err
	}
	return dst[:start+len(frame)], nil
}

// EncodeRollupFrame encodes ru as one complete frame.
func EncodeRollupFrame(ru *RollupMsg) ([]byte, error) { return AppendRollupFrame(nil, ru) }

// rollupView is the structural decomposition of a rollup payload: the
// header fields plus zero-copy slices into the embedded sub-payloads.
// walkRollupPayload validates the whole structure before the caller
// commits (leafEpoch, seq) to its dedup state, so a truncated rollup never
// burns a sequence number at the parent.
type rollupView struct {
	leafID    string
	leafEpoch uint64
	seq       uint64
	batches   [][]byte // FrameBatch payload encodings, aliasing the input
	snaps     [][]byte // SnapshotMsg JSON bodies, aliasing the input
}

// walkRollupPayload parses the rollup structure into view, reusing its
// slices. The sub-payloads are not decoded here — only sized and sliced —
// so hostile counts fail on the length walk before anything allocates in
// proportion to them.
//
//zerosum:wire-decode rollup
func walkRollupPayload(payload []byte, ver uint8, view *rollupView) error {
	if ver < 3 {
		return fmt.Errorf("aggd: rollup frame with wire version %d (introduced in 3)", ver)
	}
	if len(payload) < minRollupPayload {
		return fmt.Errorf("aggd: rollup payload of %d bytes too short", len(payload))
	}
	view.batches = view.batches[:0]
	view.snaps = view.snaps[:0]
	d := &decoder{buf: payload, ver: ver}
	var err error
	if view.leafID, err = d.str(); err != nil {
		return err
	}
	if view.leafEpoch, err = d.u64(); err != nil {
		return err
	}
	if view.seq, err = d.u64(); err != nil {
		return err
	}
	nb, err := d.u32()
	if err != nil {
		return err
	}
	// Every embedded batch costs at least its length prefix plus the
	// minimal batch payload — since wire v4 that is the varint form (a
	// one-entry dictionary holding the empty string, two refs, rank, epoch,
	// seq, count: 8 bytes) — so a count the remaining bytes cannot hold is
	// rejected before it sizes anything.
	const minEmbeddedBatch = 4 + 8
	if int64(nb)*minEmbeddedBatch > int64(len(payload)-d.off) {
		return fmt.Errorf("aggd: rollup claims %d batches in %d bytes", nb, len(payload)-d.off)
	}
	for i := uint32(0); i < nb; i++ {
		body, err := d.lenPrefixed()
		if err != nil {
			return fmt.Errorf("aggd: rollup batch %d: %w", i, err)
		}
		view.batches = append(view.batches, body)
	}
	ns, err := d.u32()
	if err != nil {
		return err
	}
	const minEmbeddedSnap = 4 + 2 // length prefix + "{}"
	if int64(ns)*minEmbeddedSnap > int64(len(payload)-d.off) {
		return fmt.Errorf("aggd: rollup claims %d snapshots in %d bytes", ns, len(payload)-d.off)
	}
	for i := uint32(0); i < ns; i++ {
		body, err := d.lenPrefixed()
		if err != nil {
			return fmt.Errorf("aggd: rollup snapshot %d: %w", i, err)
		}
		view.snaps = append(view.snaps, body)
	}
	if d.off != len(payload) {
		return fmt.Errorf("aggd: %d trailing bytes after rollup", len(payload)-d.off)
	}
	return nil
}

// DecodeRollupPayload parses a rollup payload framed with wire version ver
// into an independently owned RollupMsg: every embedded batch decodes into
// its own arena and every snapshot into its own document. The ingest path
// does not use this (it walks the structure and applies sub-payloads
// through the pooled arenas instead); it exists for tests, tooling, and
// the fuzz target's canonicality check.
//
//zerosum:wire-decode rollup
func DecodeRollupPayload(payload []byte, ver uint8) (*RollupMsg, error) {
	var view rollupView
	if err := walkRollupPayload(payload, ver, &view); err != nil {
		return nil, err
	}
	ru := &RollupMsg{LeafID: view.leafID, LeafEpoch: view.leafEpoch, Seq: view.seq}
	for i, body := range view.batches {
		b, err := DecodeBatchPayloadVersionInto(body, ver, new(BatchBuf))
		if err != nil {
			return nil, fmt.Errorf("aggd: rollup batch %d: %w", i, err)
		}
		ru.Batches = append(ru.Batches, *b)
	}
	for i, body := range view.snaps {
		msg, err := DecodeSnapshotPayload(body)
		if err != nil {
			return nil, fmt.Errorf("aggd: rollup snapshot %d: %w", i, err)
		}
		ru.Snapshots = append(ru.Snapshots, *msg)
	}
	return ru, nil
}
