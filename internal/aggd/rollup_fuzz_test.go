package aggd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"zerosum/internal/export"
)

// rollupFuzzSeeds builds the seed corpus for FuzzRollupFrameDecode: healthy
// rollup frames, a mixed v2/v3/rollup stream, and near-miss damage so the
// fuzzer starts past the magic and CRC checks.
func rollupFuzzSeeds(t testing.TB) map[string][]byte {
	full := &RollupMsg{
		LeafID:    "leaf-0:9101",
		LeafEpoch: 3,
		Seq:       12,
		Batches: []Batch{
			mkRollupBatch("n00", 0, 2, 5, 3),
			mkRollupBatch("n01", 1, 1, 0, 1),
		},
		Snapshots: []SnapshotMsg{{
			Origin:   Origin{Job: "jr", Node: "n00", Rank: 0},
			Snapshot: testSnapshot(0, "n00"),
			CommRow:  map[int]uint64{1: 2048},
		}},
	}
	rf, err := EncodeRollupFrame(full)
	if err != nil {
		t.Fatalf("seed rollup: %v", err)
	}
	empty, err := EncodeRollupFrame(&RollupMsg{LeafID: "leaf-1:9101", LeafEpoch: 1})
	if err != nil {
		t.Fatalf("seed empty rollup: %v", err)
	}

	// A mixed stream the resyncing scanner must survive: v2 batch, rollup,
	// torn-write garbage, v3 batch, then a bit-flipped rollup.
	b2 := Batch{Origin: Origin{Job: "jr", Node: "n02", Rank: 2}, Epoch: 1, Seq: 0,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1, LWP: &export.LWPSample{TID: 9, Kind: "Main", State: 'R', UserPct: 70}},
		}}
	v2 := v2BatchFrame(t, &b2)
	b3 := mkRollupBatch("n03", 3, 1, 0, 2)
	v3, err := EncodeBatchFrame(&b3)
	if err != nil {
		t.Fatalf("seed v3 batch: %v", err)
	}
	flipped := append([]byte(nil), rf...)
	flipped[len(flipped)-5] ^= 0x10
	var mixed []byte
	mixed = append(mixed, v2...)
	mixed = append(mixed, rf...)
	mixed = append(mixed, []byte("torn-write-residue")...)
	mixed = append(mixed, v3...)
	mixed = append(mixed, flipped...)

	// A frame whose CRC is valid but whose batch count could never fit the
	// remaining bytes: the structural walk must reject it before sizing
	// anything from the count.
	dst := appendHeader(nil, FrameRollup, WireVersion)
	if dst, err = appendString(dst, "evil"); err != nil {
		t.Fatalf("seed hostile: %v", err)
	}
	dst = binary.LittleEndian.AppendUint64(dst, 1)
	dst = binary.LittleEndian.AppendUint64(dst, 0)
	dst = binary.LittleEndian.AppendUint32(dst, 0xFFFFFFFF)
	hostile, err := finishFrame(dst)
	if err != nil {
		t.Fatalf("seed hostile: %v", err)
	}

	return map[string][]byte{
		"seed_rollup":    rf,
		"seed_empty":     empty,
		"seed_mixed":     mixed,
		"seed_truncated": append([]byte(nil), rf[:len(rf)-9]...),
		"seed_bitflip":   flipped,
		"seed_hostile":   hostile,
	}
}

// FuzzRollupFrameDecode throws arbitrary bytes at the rollup structural
// walk, the full decoder, and the resyncing scanner's rollup path.
// Invariants: no panic, walk and decode agree on structural validity, a
// cleanly decoded rollup re-encodes into a frame that decodes back to the
// same structure, and the scanner terminates on every input.
func FuzzRollupFrameDecode(f *testing.F) {
	for _, seed := range rollupFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte("ZSAG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, ver, payload, err := ReadFrame(bytes.NewReader(data))
		if err == nil && kind == FrameRollup {
			var view rollupView
			walkErr := walkRollupPayload(payload, ver, &view)
			ru, decErr := DecodeRollupPayload(payload, ver)
			if walkErr != nil && decErr == nil {
				t.Fatalf("walk rejected what the decoder accepted: %v", walkErr)
			}
			if walkErr == nil && len(view.batches)+len(view.snaps) > 0 && len(payload) < minRollupPayload {
				t.Fatalf("walk accepted an impossible %d-byte payload", len(payload))
			}
			if decErr == nil {
				re, err := EncodeRollupFrame(ru)
				if err != nil {
					t.Fatalf("decoded rollup failed to re-encode: %v", err)
				}
				// Embedded snapshot JSON is not byte-canonical (a fuzzed body
				// may order keys differently), so the invariant is structural:
				// the re-encoded frame decodes back to the same shape.
				ru2, err := DecodeRollupPayload(re[frameHeaderLen:], WireVersion)
				if err != nil {
					t.Fatalf("re-encoded rollup failed to decode: %v", err)
				}
				if ru2.LeafID != ru.LeafID || ru2.LeafEpoch != ru.LeafEpoch || ru2.Seq != ru.Seq ||
					len(ru2.Batches) != len(ru.Batches) || len(ru2.Snapshots) != len(ru.Snapshots) {
					t.Fatalf("rollup round-trip changed shape: %+v vs %+v", ru, ru2)
				}
				for i := range ru.Batches {
					if ru2.Batches[i].Origin != ru.Batches[i].Origin ||
						len(ru2.Batches[i].Events) != len(ru.Batches[i].Events) {
						t.Fatalf("rollup round-trip changed batch %d", i)
					}
				}
			}
		}

		// The ingest path: scan the input as a stream, walking every rollup
		// frame that survives its CRC. Must terminate and never panic.
		sc := NewFrameScanner(bytes.NewReader(data))
		var view rollupView
		for steps := 0; ; steps++ {
			if steps > len(data)+16 {
				t.Fatalf("scanner failed to terminate on %d-byte input", len(data))
			}
			kind, payload, err := sc.Next()
			if err == nil {
				if kind == FrameRollup {
					_ = walkRollupPayload(payload, sc.Version(), &view)
				}
				continue
			}
			if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			var ce *CorruptFrameError
			if errors.As(err, &ce) {
				continue
			}
			break // terminal transport error (truncation mid-frame)
		}
	})
}

// TestRollupFuzzSeedCorpus pins the checked-in corpus, reusing the golden
// files' -update flag: the bytes on disk must match what today's encoder
// produces, so a wire-layout change that silently invalidates the corpus
// fails here first.
func TestRollupFuzzSeedCorpus(t *testing.T) {
	seeds := rollupFuzzSeeds(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzRollupFrameDecode")
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, frame := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, want := range seeds {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate the corpus)", name, err)
		}
		got, err := parseRollupCorpusFile(raw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: checked-in corpus drifted from the generator (run with -update)", name)
		}
	}
}

// parseRollupCorpusFile reads the single []byte value of a `go test fuzz v1`
// corpus entry.
func parseRollupCorpusFile(raw []byte) ([]byte, error) {
	s := string(raw)
	const header = "go test fuzz v1\n[]byte("
	if len(s) < len(header) || s[:len(header)] != header {
		return nil, errors.New("not a go fuzz v1 []byte entry")
	}
	s = s[len(header):]
	if i := len(s) - 1; i >= 0 && s[i] == '\n' {
		s = s[:i]
	}
	if len(s) == 0 || s[len(s)-1] != ')' {
		return nil, errors.New("unterminated corpus entry")
	}
	v, err := strconv.Unquote(s[:len(s)-1])
	if err != nil {
		return nil, err
	}
	return []byte(v), nil
}
