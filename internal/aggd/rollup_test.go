package aggd

import (
	"bytes"
	"encoding/binary"
	"net/http/httptest"
	"reflect"
	"testing"

	"zerosum/internal/export"
)

func mkRollupBatch(node string, rank int, epoch, seq uint64, n int) Batch {
	b := Batch{Origin: Origin{Job: "jr", Node: node, Rank: rank}, Epoch: epoch, Seq: seq}
	for i := 0; i < n; i++ {
		b.Events = append(b.Events, export.Event{Kind: export.EventHeartbeat, TimeSec: float64(i)})
	}
	return b
}

func mkRollup(leaf string, epoch, seq uint64, batches ...Batch) []byte {
	ru := &RollupMsg{LeafID: leaf, LeafEpoch: epoch, Seq: seq, Batches: batches}
	frame, err := EncodeRollupFrame(ru)
	if err != nil {
		panic(err)
	}
	return frame
}

func TestRollupRoundTrip(t *testing.T) {
	ru := &RollupMsg{
		LeafID:    "leaf-a:9101",
		LeafEpoch: 7,
		Seq:       42,
		Batches: []Batch{
			mkRollupBatch("n0", 0, 3, 11, 4),
			mkRollupBatch("n1", 1, 1, 0, 0), // empty batch must survive too
		},
		Snapshots: []SnapshotMsg{{
			Origin:   Origin{Job: "jr", Node: "n0", Rank: 0},
			Snapshot: testSnapshot(0, "n0"),
			CommRow:  map[int]uint64{1: 4096},
		}},
	}
	frame, err := EncodeRollupFrame(ru)
	if err != nil {
		t.Fatal(err)
	}
	kind, ver, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameRollup || ver != WireVersion {
		t.Fatalf("frame (kind %d, ver %d), want (rollup, %d)", kind, ver, WireVersion)
	}
	got, err := DecodeRollupPayload(payload, ver)
	if err != nil {
		t.Fatal(err)
	}
	if got.LeafID != ru.LeafID || got.LeafEpoch != ru.LeafEpoch || got.Seq != ru.Seq {
		t.Fatalf("rollup header %q/%d/%d, want %q/%d/%d",
			got.LeafID, got.LeafEpoch, got.Seq, ru.LeafID, ru.LeafEpoch, ru.Seq)
	}
	if len(got.Batches) != len(ru.Batches) || len(got.Snapshots) != len(ru.Snapshots) {
		t.Fatalf("decoded %d batches, %d snapshots; want %d, %d",
			len(got.Batches), len(got.Snapshots), len(ru.Batches), len(ru.Snapshots))
	}
	for i := range ru.Batches {
		w, g := ru.Batches[i], got.Batches[i]
		if g.Origin != w.Origin || g.Epoch != w.Epoch || g.Seq != w.Seq || len(g.Events) != len(w.Events) {
			t.Fatalf("batch %d: got %+v (%d events), want %+v (%d events)",
				i, g.Origin, len(g.Events), w.Origin, len(w.Events))
		}
	}
	if !reflect.DeepEqual(got.Snapshots[0].CommRow, ru.Snapshots[0].CommRow) {
		t.Fatalf("snapshot comm row %v, want %v", got.Snapshots[0].CommRow, ru.Snapshots[0].CommRow)
	}
	// Canonicality: re-encoding the decoded message reproduces the frame
	// byte for byte, the property the fuzz corpus pins.
	again, err := EncodeRollupFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, frame) {
		t.Fatal("re-encoded rollup frame differs from the original")
	}
}

func TestRollupWalkRejects(t *testing.T) {
	frame := mkRollup("leaf", 1, 0, mkRollupBatch("n", 0, 1, 0, 2))
	payload := append([]byte(nil), frame[frameHeaderLen:]...)
	var view rollupView

	if err := walkRollupPayload(payload, 2, &view); err == nil {
		t.Fatal("wire version 2 rollup accepted; FrameRollup needs ver >= 3")
	}
	if err := walkRollupPayload(payload, WireVersion, &view); err != nil {
		t.Fatalf("pristine payload rejected: %v", err)
	}
	// Every truncation point must fail the structural walk — never panic,
	// never accept a partial structure.
	for cut := 0; cut < len(payload); cut++ {
		if err := walkRollupPayload(payload[:cut], WireVersion, &view); err == nil {
			t.Fatalf("payload truncated to %d/%d bytes accepted", cut, len(payload))
		}
	}
	// Trailing garbage after a well-formed structure is damage, not slack.
	if err := walkRollupPayload(append(append([]byte(nil), payload...), 0xEE), WireVersion, &view); err == nil {
		t.Fatal("trailing byte after rollup accepted")
	}
	// A hostile batch count larger than the remaining bytes could ever hold
	// must be rejected before anything is sized from it. nBatches sits after
	// leafID (2+4 bytes here) + epoch + seq.
	hostile := append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(hostile[2+4+8+8:], 0xFFFFFFFF)
	if err := walkRollupPayload(hostile, WireVersion, &view); err == nil {
		t.Fatal("hostile batch count accepted")
	}
	// Same for the snapshot count, which trails the embedded batches.
	hostile = append([]byte(nil), payload...)
	binary.LittleEndian.PutUint32(hostile[len(hostile)-4:], 0xFFFFFFFF)
	if err := walkRollupPayload(hostile, WireVersion, &view); err == nil {
		t.Fatal("hostile snapshot count accepted")
	}
}

// TestRollupScannerMixedStream feeds one body holding a v2 batch frame, a v3
// batch frame, a rollup frame, inter-frame garbage, and a corrupted rollup
// through the resyncing scanner: every healthy frame comes out, the damage
// is reported, and the stream never desynchronizes.
func TestRollupScannerMixedStream(t *testing.T) {
	// The v2 encoding predates most event kinds; LWP samples are its bread
	// and butter, so the back-compat frame carries those.
	b2 := Batch{Origin: Origin{Job: "jr", Node: "n2", Rank: 2}, Epoch: 1, Seq: 0}
	for i := 0; i < 3; i++ {
		b2.Events = append(b2.Events, lwpEvent(float64(i), 100+i, uint64(i)))
	}
	v2 := v2BatchFrame(t, &b2)
	b3 := mkRollupBatch("n3", 3, 1, 0, 2)
	v3, err := EncodeBatchFrame(&b3)
	if err != nil {
		t.Fatal(err)
	}
	ru := mkRollup("leaf", 1, 0, mkRollupBatch("n0", 0, 1, 0, 2))
	bad := append([]byte(nil), ru...)
	bad[len(bad)-3] ^= 0x40 // payload damage: CRC must catch it

	var stream bytes.Buffer
	stream.Write(v2)
	stream.Write([]byte("!!!noise!!!"))
	stream.Write(ru)
	stream.Write(bad)
	stream.Write(v3)

	sc := NewFrameScanner(&stream)
	var kinds []FrameKind
	corrupt := 0
	for {
		kind, payload, err := sc.Next()
		if err != nil {
			if _, ok := err.(*CorruptFrameError); ok {
				corrupt++
				continue
			}
			break
		}
		kinds = append(kinds, kind)
		if kind == FrameRollup {
			var view rollupView
			if err := walkRollupPayload(payload, sc.Version(), &view); err != nil {
				t.Fatalf("healthy rollup failed the walk: %v", err)
			}
			if view.leafID != "leaf" || len(view.batches) != 1 {
				t.Fatalf("rollup view %q with %d batches", view.leafID, len(view.batches))
			}
		}
	}
	want := []FrameKind{FrameBatch, FrameRollup, FrameBatch}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("scanner yielded kinds %v, want %v", kinds, want)
	}
	if corrupt == 0 {
		t.Fatal("corrupted rollup frame went unreported")
	}
}

// TestServerRollupDedup drives the per-leaf (epoch, seq) state machine and
// the per-origin dedup of embedded batches through every admission path.
func TestServerRollupDedup(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(frame []byte, wantCode int) {
		t.Helper()
		resp := postFrames(t, ts.URL, false, frame)
		if resp.StatusCode != wantCode {
			t.Fatalf("ingest returned %d, want %d", resp.StatusCode, wantCode)
		}
	}

	first := mkRollup("L", 1, 0, mkRollupBatch("n", 0, 1, 0, 2))
	post(first, 204)
	st := srv.Stats()
	if st.RollupFrames != 1 || st.IngestBatches != 1 || st.IngestEvents != 2 {
		t.Fatalf("after first rollup: %+v", st)
	}

	post(first, 204) // whole-rollup replay: a retry racing a lost ack
	st = srv.Stats()
	if st.DupRollups != 1 || st.IngestEvents != 2 || st.DupBatches != 0 {
		t.Fatalf("after rollup replay: %+v", st)
	}

	// Seq jumps 0 -> 2: the leaf burned seq 1 on an abandoned shipment.
	post(mkRollup("L", 1, 2, mkRollupBatch("n", 0, 1, 1, 2)), 204)
	st = srv.Stats()
	if st.LostRollups != 1 || st.IngestEvents != 4 {
		t.Fatalf("after rollup gap: %+v", st)
	}

	// The missing seq 1 straggles in, replaying batch (1,0) the leaf already
	// forwarded under seq 0: the rollup recovers, the embedded batch dedups,
	// and its events land in RollupSkippedEvents — the leak audit's bucket.
	post(mkRollup("L", 1, 1, mkRollupBatch("n", 0, 1, 0, 2)), 204)
	st = srv.Stats()
	if st.RecoveredRollups != 1 || st.DupBatches != 1 || st.RollupSkippedEvents != 2 || st.IngestEvents != 4 {
		t.Fatalf("after hole fill with replayed batch: %+v", st)
	}

	post(mkRollup("L", 0, 5, mkRollupBatch("n", 0, 1, 9, 2)), 204) // dead-epoch straggler
	st = srv.Stats()
	if st.DupRollups != 2 || st.IngestEvents != 4 {
		t.Fatalf("after old-epoch rollup: %+v", st)
	}

	// The leaf restarts: higher epoch, seq restarts at 0 — not a replay.
	post(mkRollup("L", 2, 0, mkRollupBatch("n", 0, 2, 0, 2)), 204)
	st = srv.Stats()
	if st.IngestEvents != 6 || st.DupRollups != 2 {
		t.Fatalf("after leaf epoch restart: %+v", st)
	}

	// A second leaf has independent sequence state.
	post(mkRollup("M", 1, 0, mkRollupBatch("m", 1, 1, 0, 3)), 204)
	st = srv.Stats()
	if st.IngestEvents != 9 || st.DupRollups != 2 || st.LostRollups != 1 {
		t.Fatalf("after second leaf: %+v", st)
	}
	if st.RollupFrames != 7 {
		t.Fatalf("rollup frames %d, want 7", st.RollupFrames)
	}
}

// TestServerRollupBadEmbeddedBatch hand-frames a rollup whose structure
// walks clean but whose one embedded batch payload cannot decode: the
// request fails (the leaf's shipment is answered 400) without the frame
// burning more than its own seq, and the server survives.
func TestServerRollupBadEmbeddedBatch(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dst := appendHeader(nil, FrameRollup, WireVersion)
	dst, err := appendString(dst, "L")
	if err != nil {
		t.Fatal(err)
	}
	dst = binary.LittleEndian.AppendUint64(dst, 1) // leafEpoch
	dst = binary.LittleEndian.AppendUint64(dst, 0) // seq
	dst = binary.LittleEndian.AppendUint32(dst, 1) // nBatches
	garbage := bytes.Repeat([]byte{0xFF}, 40)      // big enough to pass the size heuristics
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(garbage)))
	dst = append(dst, garbage...)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // nSnaps
	frame, err := finishFrame(dst)
	if err != nil {
		t.Fatal(err)
	}

	resp := postFrames(t, ts.URL, false, frame)
	if resp.StatusCode != 400 {
		t.Fatalf("undecodable embedded batch returned %d, want 400", resp.StatusCode)
	}
	st := srv.Stats()
	if st.RollupFrames != 1 || st.IngestBatches != 0 || st.CorruptFrames != 1 {
		t.Fatalf("after bad embedded batch: %+v", st)
	}
}
