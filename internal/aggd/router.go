package aggd

import (
	"fmt"
	"sort"
)

// Router assigns (node, rank) streams to aggregator endpoints with a
// consistent hash ring, so a fleet of agents spreads evenly over the leaf
// tier and adding or removing one leaf re-homes only ~1/N of the streams
// (every key whose ring successor changed) instead of reshuffling all of
// them.
//
// The hash is pinned: FNV-1a 64-bit over the endpoint string plus "#i"
// for ring point i (routerVNodes points per endpoint), and over the node
// name plus the rank as 4 little-endian bytes for keys — each finalized
// with the splitmix64 avalanche. The finalizer matters: raw FNV values of
// strings differing in one character are near-affine translations of each
// other, so the vnode sets of sibling leaves ("…leaf-0", "…leaf-1") land
// in correlated ring arcs and one leaf can own most of the fleet. Tree
// assignment must be stable across releases — a rolling upgrade that
// silently re-homed every stream would bump every agent epoch at once —
// so changing any part of this hash is a wire-compatibility break;
// TestRouterPinned locks the exact placements.
type Router struct {
	endpoints []string
	points    []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int // index into endpoints
}

// routerVNodes is the virtual-node count per endpoint: enough points that
// three leaves split a fleet within a few percent of evenly, few enough
// that building a router stays trivial.
const routerVNodes = 64

// fnv64a hashes data with FNV-1a (64-bit), the repo's pinned router hash.
func fnv64a(h uint64, data []byte) uint64 {
	if h == 0 {
		h = 14695981039346656037 // FNV offset basis
	}
	for _, b := range data {
		h = (h ^ uint64(b)) * 1099511628211 // FNV prime
	}
	return h
}

// mix64 is the splitmix64 finalizer, applied to every ring point and key
// hash before it lands on the ring (see the correlation note on Router).
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// NewRouter builds a ring over the endpoint list. The list order is
// irrelevant to placement (only the endpoint strings hash); duplicates are
// rejected because they would silently double one leaf's share.
func NewRouter(endpoints []string) (*Router, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("aggd: router needs at least one endpoint")
	}
	seen := make(map[string]bool, len(endpoints))
	r := &Router{
		endpoints: append([]string(nil), endpoints...),
		points:    make([]ringPoint, 0, len(endpoints)*routerVNodes),
	}
	var scratch [8]byte
	for idx, ep := range endpoints {
		if seen[ep] {
			return nil, fmt.Errorf("aggd: duplicate router endpoint %q", ep)
		}
		seen[ep] = true
		base := fnv64a(0, []byte(ep))
		for v := 0; v < routerVNodes; v++ {
			scratch[0] = '#'
			n := 1 + putDecimal(scratch[1:], v)
			r.points = append(r.points, ringPoint{hash: mix64(fnv64a(base, scratch[:n])), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision across endpoints is vanishingly
		// rare but must still order deterministically.
		return r.points[i].idx < r.points[j].idx
	})
	return r, nil
}

// putDecimal writes v's decimal digits into dst and returns the length.
func putDecimal(dst []byte, v int) int {
	if v == 0 {
		dst[0] = '0'
		return 1
	}
	var tmp [4]byte
	n := 0
	for v > 0 {
		tmp[n] = byte('0' + v%10)
		v /= 10
		n++
	}
	for i := 0; i < n; i++ {
		dst[i] = tmp[n-1-i]
	}
	return n
}

// Endpoints returns the router's endpoint list (the constructor's copy).
func (r *Router) Endpoints() []string { return r.endpoints }

// keyHash hashes a (node, rank) stream key: node bytes, then the rank as
// 4 little-endian bytes.
func keyHash(node string, rank int) uint64 {
	h := fnv64a(0, []byte(node))
	var b [4]byte
	v := uint32(int32(rank))
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return mix64(fnv64a(h, b[:]))
}

// succ returns the index of the first ring point at or after h, wrapping.
func (r *Router) succ(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Pick returns the endpoint owning the (node, rank) stream: the first
// ring point clockwise from the key's hash.
func (r *Router) Pick(node string, rank int) string {
	return r.endpoints[r.points[r.succ(keyHash(node, rank))].idx]
}

// Order returns every endpoint in the stream's failover order: the owner
// first, then each further endpoint in the order its first ring point
// appears walking clockwise. Agents use it as their health-checked
// endpoint list, so streams that share an owner still spread their
// failover load across the surviving siblings.
func (r *Router) Order(node string, rank int) []string {
	out := make([]string, 0, len(r.endpoints))
	taken := make([]bool, len(r.endpoints))
	start := r.succ(keyHash(node, rank))
	for i := 0; i < len(r.points) && len(out) < len(r.endpoints); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.idx] {
			taken[p.idx] = true
			out = append(out, r.endpoints[p.idx])
		}
	}
	return out
}
