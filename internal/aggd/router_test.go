package aggd

import (
	"fmt"
	"testing"
)

// TestRouterPinned locks the exact consistent-hash placements. The router
// hash (FNV-1a 64 over endpoint+"#i" ring points and node+rank keys) is a
// wire-compatibility surface: a change that re-homes every stream would bump
// every agent epoch across a fleet at once, so any edit that moves these
// placements must be treated as a breaking protocol change, not a refactor.
func TestRouterPinned(t *testing.T) {
	r, err := NewRouter([]string{"http://leaf-0:9100", "http://leaf-1:9100", "http://leaf-2:9100"})
	if err != nil {
		t.Fatal(err)
	}
	pinned := []struct {
		node string
		rank int
		want string
	}{
		{"node-000", 0, "http://leaf-2:9100"},
		{"node-000", 1, "http://leaf-0:9100"},
		{"node-001", 0, "http://leaf-2:9100"},
		{"node-001", 1, "http://leaf-1:9100"},
		{"node-002", 0, "http://leaf-2:9100"},
		{"node-002", 1, "http://leaf-2:9100"},
		{"node-003", 0, "http://leaf-1:9100"},
		{"node-003", 1, "http://leaf-0:9100"},
	}
	for _, p := range pinned {
		if got := r.Pick(p.node, p.rank); got != p.want {
			t.Errorf("Pick(%q, %d) = %q, want pinned %q — the router hash moved; "+
				"this is a wire-compatibility break", p.node, p.rank, got, p.want)
		}
	}
	wantOrder := []string{"http://leaf-2:9100", "http://leaf-1:9100", "http://leaf-0:9100"}
	got := r.Order("node-000", 0)
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("Order(node-000, 0) = %q, want pinned %q", got, wantOrder)
		}
	}
}

func TestRouterRejects(t *testing.T) {
	if _, err := NewRouter(nil); err == nil {
		t.Fatal("empty endpoint list accepted")
	}
	if _, err := NewRouter([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate endpoint accepted (it would double that leaf's share)")
	}
}

// routerKeys is a synthetic fleet: 125 nodes x 8 ranks.
func routerKeys() []struct {
	node string
	rank int
} {
	keys := make([]struct {
		node string
		rank int
	}, 0, 1000)
	for n := 0; n < 125; n++ {
		for rank := 0; rank < 8; rank++ {
			keys = append(keys, struct {
				node string
				rank int
			}{fmt.Sprintf("n%03d", n), rank})
		}
	}
	return keys
}

// TestRouterChurn grows a 4-leaf tier to 5 and checks the consistent-hash
// contract: roughly 1/N of the streams move (those whose ring successor is
// now the new leaf), everything else stays put, and every stream that moved
// moved TO the new endpoint — removing or adding a leaf never reshuffles
// traffic between the survivors.
func TestRouterChurn(t *testing.T) {
	four := []string{"http://l0", "http://l1", "http://l2", "http://l3"}
	five := append(append([]string(nil), four...), "http://l4")
	r4, err := NewRouter(four)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := NewRouter(five)
	if err != nil {
		t.Fatal(err)
	}
	keys := routerKeys()
	moved := 0
	for _, k := range keys {
		before, after := r4.Pick(k.node, k.rank), r5.Pick(k.node, k.rank)
		if before == after {
			continue
		}
		moved++
		if after != "http://l4" {
			t.Fatalf("stream (%s, %d) moved %q -> %q: growth must only move "+
				"streams onto the new leaf", k.node, k.rank, before, after)
		}
	}
	// Expectation is 1/5 of the keys; 64 vnodes per endpoint lands within a
	// few points of it. The bounds are loose enough to be timeless and tight
	// enough to catch a broken ring (0% or ~80% both fail).
	frac := float64(moved) / float64(len(keys))
	if frac < 0.08 || frac > 0.35 {
		t.Fatalf("adding a 5th leaf moved %.1f%% of streams, want ~20%%", 100*frac)
	}
}

// TestRouterBalance checks the vnode count spreads a fleet acceptably
// evenly: with 3 leaves and 1000 streams each leaf owns at least 20%.
func TestRouterBalance(t *testing.T) {
	eps := []string{"http://leaf-0:9100", "http://leaf-1:9100", "http://leaf-2:9100"}
	r, err := NewRouter(eps)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := routerKeys()
	for _, k := range keys {
		counts[r.Pick(k.node, k.rank)]++
	}
	for _, ep := range eps {
		if frac := float64(counts[ep]) / float64(len(keys)); frac < 0.20 {
			t.Fatalf("leaf %s owns only %.1f%% of 1000 streams: %v", ep, 100*frac, counts)
		}
	}
}

// TestRouterOrderProperties checks Order's failover contract for every
// stream: the owner leads, every endpoint appears exactly once, and the
// list is stable across calls.
func TestRouterOrderProperties(t *testing.T) {
	eps := []string{"http://l0", "http://l1", "http://l2", "http://l3"}
	r, err := NewRouter(eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range routerKeys() {
		order := r.Order(k.node, k.rank)
		if len(order) != len(eps) {
			t.Fatalf("Order(%s, %d) has %d entries, want %d", k.node, k.rank, len(order), len(eps))
		}
		if order[0] != r.Pick(k.node, k.rank) {
			t.Fatalf("Order(%s, %d) leads with %q, Pick says %q", k.node, k.rank, order[0], r.Pick(k.node, k.rank))
		}
		seen := map[string]bool{}
		for _, ep := range order {
			if seen[ep] {
				t.Fatalf("Order(%s, %d) repeats %q: %q", k.node, k.rank, ep, order)
			}
			seen[ep] = true
		}
	}
}
