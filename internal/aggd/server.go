package aggd

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/obs"
	"zerosum/internal/report"
	"zerosum/internal/tsdb"
)

// nShards fans the job map out so concurrent streams from many nodes do not
// serialize on one lock; per-job state has its own finer lock below.
const nShards = 16

// ServerConfig tunes the aggregator.
type ServerConfig struct {
	// Thresholds parameterize the configuration evaluation folded into the
	// job summary (must match the ground-truth aggregation to compare).
	Thresholds core.EvalThresholds
	// Now is the wall clock (injectable for tests; default time.Now).
	Now func() time.Time
	// MaxBody bounds one ingest request body (default 64 MiB).
	MaxBody int64
	// TSDB tunes the embedded time-series store (block width, downsample
	// step, retention). The zero value takes the store's defaults.
	TSDB tsdb.Options
	// Forward, when non-nil, runs the server as a leaf of an aggregation
	// tree: every admitted batch and snapshot document is also queued to a
	// Forwarder that ships pre-merged rollup frames to Forward.Upstream.
	// Upstream and LeafID are required — NewServer panics on a Forward
	// config it cannot start, since a leaf that silently stops forwarding
	// is worse than one that fails to boot.
	Forward *ForwardConfig
}

// Server accepts agent streams and serves the aggregated views.
type Server struct {
	cfg    ServerConfig
	shards [nShards]shard
	obs    *obs.Recorder // ingest spans + stage stats, served at /debug/obs
	store  *tsdb.Store   // every admitted sample, compressed and queryable
	fwd    *Forwarder    // nil unless this server is a leaf (cfg.Forward)

	// Per-leaf rollup sequence accounting, keyed by the rollup's leaf ID.
	// One coarse lock: rollups arrive at flush cadence (per leaf, not per
	// agent), so this is far off the ingest hot path.
	leafMu   sync.Mutex
	leafSeqs map[string]*leafSeq //zerosum:guardedby leafMu

	ingestBatches    atomic.Uint64
	ingestEvents     atomic.Uint64
	ingestSnapshots  atomic.Uint64
	ingestErrors     atomic.Uint64
	lostBatches      atomic.Uint64 // sequence gaps observed across all streams
	recoveredBatches atomic.Uint64 // gap batches that later arrived via retry
	dupBatches       atomic.Uint64 // replayed batches skipped by dedup
	corruptFrames    atomic.Uint64 // frames rejected for checksum/framing damage
	writeErrors      atomic.Uint64 // response bodies that failed mid-write

	// Admitted events by kind. Dedup runs before these, so each counts a
	// kind's events exactly once across retries and replays — the soak's
	// sample-conservation audit divides TSDB sample counts by them.
	eventsLWP atomic.Uint64
	eventsHWT atomic.Uint64
	eventsGPU atomic.Uint64
	eventsMem atomic.Uint64
	eventsIO  atomic.Uint64

	// Rollup (tree ingest) accounting. rollupSkippedEvents counts events
	// inside embedded batches the per-origin dedup rejected — the one
	// legitimate way a parent "loses" data a leaf acked (two leaf
	// incarnations forwarded the same agent batch, or a stale-epoch batch
	// straggled in after its agent re-homed). The tree soak's leak audit
	// closes its books with it.
	rollupFrames        atomic.Uint64
	dupRollups          atomic.Uint64 // replayed rollups skipped by (leaf, epoch, seq) dedup
	lostRollups         atomic.Uint64 // rollup sequence gaps observed across all leaves
	recoveredRollups    atomic.Uint64 // gap rollups that later arrived via retry
	rollupSkippedEvents atomic.Uint64
}

// ServerStats is a point-in-time snapshot of the aggregator's counters; the
// chaos soak audits fault accounting against it without scraping /metrics.
type ServerStats struct {
	IngestBatches    uint64
	IngestEvents     uint64
	IngestSnapshots  uint64
	IngestErrors     uint64
	LostBatches      uint64
	RecoveredBatches uint64
	DupBatches       uint64
	CorruptFrames    uint64
	WriteErrors      uint64
	EventsLWP        uint64
	EventsHWT        uint64
	EventsGPU        uint64
	EventsMem        uint64
	EventsIO         uint64

	RollupFrames        uint64
	DupRollups          uint64
	LostRollups         uint64
	RecoveredRollups    uint64
	RollupSkippedEvents uint64
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		IngestBatches:    s.ingestBatches.Load(),
		IngestEvents:     s.ingestEvents.Load(),
		IngestSnapshots:  s.ingestSnapshots.Load(),
		IngestErrors:     s.ingestErrors.Load(),
		LostBatches:      s.lostBatches.Load(),
		RecoveredBatches: s.recoveredBatches.Load(),
		DupBatches:       s.dupBatches.Load(),
		CorruptFrames:    s.corruptFrames.Load(),
		WriteErrors:      s.writeErrors.Load(),
		EventsLWP:        s.eventsLWP.Load(),
		EventsHWT:        s.eventsHWT.Load(),
		EventsGPU:        s.eventsGPU.Load(),
		EventsMem:        s.eventsMem.Load(),
		EventsIO:         s.eventsIO.Load(),

		RollupFrames:        s.rollupFrames.Load(),
		DupRollups:          s.dupRollups.Load(),
		LostRollups:         s.lostRollups.Load(),
		RecoveredRollups:    s.recoveredRollups.Load(),
		RollupSkippedEvents: s.rollupSkippedEvents.Load(),
	}
}

type shard struct {
	mu   sync.RWMutex
	jobs map[string]*jobStore //zerosum:guardedby mu
}

// nRankShards fans one job's per-rank merge state out over independent
// locks. Ingest touches exactly one (node, rank) stream per batch, so two
// ranks that hash apart merge concurrently; before sharding, every stream of
// a job serialized on a single jobStore mutex.
const nRankShards = 8

// jobStore is one job's aggregation state, sharded by rank key.
type jobStore struct {
	shards [nRankShards]rankShard
}

type rankShard struct {
	mu    sync.Mutex
	ranks map[rankKey]*rankState //zerosum:guardedby mu
}

type rankKey struct {
	node string
	rank int
}

// shardFor hashes the rank key inline (FNV-1a over node bytes then rank
// bytes) — the ingest hot path cannot afford a hash.Hash allocation.
//
//zerosum:hotpath
func (js *jobStore) shardFor(key rankKey) *rankShard {
	h := uint32(2166136261)
	for i := 0; i < len(key.node); i++ {
		h = (h ^ uint32(key.node[i])) * 16777619
	}
	r := uint32(key.rank)
	for i := 0; i < 4; i++ {
		h = (h ^ (r & 0xff)) * 16777619
		r >>= 8
	}
	return &js.shards[h%nRankShards]
}

// eachRank visits every rank state, holding each shard's lock across its
// slice of the iteration.
func (js *jobStore) eachRank(fn func(key rankKey, rs *rankState)) {
	for i := range js.shards {
		sh := &js.shards[i]
		sh.mu.Lock()
		for key, rs := range sh.ranks {
			fn(key, rs)
		}
		sh.mu.Unlock()
	}
}

// rankState is the live view of one (node, rank) stream: the latest sample
// per resource for /metrics, plus the end-of-run snapshot for the summary.
// Every field is guarded by the owning rankShard's mutex — rankState cannot
// name it as a sibling, so the annotations use the lock-class form.
type rankState struct {
	lastRecv    time.Time //zerosum:guardedby rankShard.mu server receipt time of the latest frame
	lastSampleT float64   //zerosum:guardedby rankShard.mu largest sample timestamp seen
	events      uint64    //zerosum:guardedby rankShard.mu

	// Sequence accounting. An agent numbers batches 0,1,2,… within one
	// epoch (incarnation); retries resend the same (epoch, seq). maxSeq is
	// the highest applied sequence and holes records skipped-over sequence
	// numbers still outstanding, so a late retry of a gap batch is merged
	// exactly once while a replay of an already-applied batch is skipped.
	epoch   uint64          //zerosum:guardedby rankShard.mu
	maxSeq  uint64          //zerosum:guardedby rankShard.mu
	seqSeen bool            //zerosum:guardedby rankShard.mu
	holes   map[uint64]bool //zerosum:guardedby rankShard.mu

	hwt     map[int]export.HWTSample //zerosum:guardedby rankShard.mu
	gpuBusy map[int]float64          //zerosum:guardedby rankShard.mu
	nvctx   map[int]uint64           //zerosum:guardedby rankShard.mu per TID, cumulative
	vctx    map[int]uint64           //zerosum:guardedby rankShard.mu
	stalled map[int]bool             //zerosum:guardedby rankShard.mu TIDs currently flagged stalled (§3.3)
	// stallEvents counts false→true transitions of the stalled flag: the
	// gauge above drops back to zero once a stall clears (or the thread
	// dies), so this cumulative counter is what proves a stall happened.
	stallEvents uint64 //zerosum:guardedby rankShard.mu
	memFree     uint64 //zerosum:guardedby rankShard.mu
	memRSS      uint64 //zerosum:guardedby rankShard.mu

	// Cached tsdb series handles, resolved once per stream metric and valid
	// for the store's lifetime (series are never deleted): hashing the
	// struct-keyed series map per sample dominated the ingest profile, so
	// the batch path pays the lookup only on each stream's first event.
	lwpSeries map[int]*lwpSeries            //zerosum:guardedby rankShard.mu per TID
	hwtSeries map[int]*hwtSeries            //zerosum:guardedby rankShard.mu per CPU
	gpuSeries map[gpuSeriesKey]*tsdb.Series //zerosum:guardedby rankShard.mu
	memFreeS  *tsdb.Series                  //zerosum:guardedby rankShard.mu
	memRSSS   *tsdb.Series                  //zerosum:guardedby rankShard.mu
	ioReadS   *tsdb.Series                  //zerosum:guardedby rankShard.mu
	ioWriteS  *tsdb.Series                  //zerosum:guardedby rankShard.mu
}

// NewServer builds an aggregator — the root of a tree (or a flat
// single-server deployment) when cfg.Forward is nil, a leaf forwarding
// rollups upstream when it is set.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 64 << 20
	}
	s := &Server{
		cfg:      cfg,
		obs:      obs.NewRecorder(0),
		store:    tsdb.NewStore(cfg.TSDB),
		leafSeqs: make(map[string]*leafSeq), //zerosum:nolock constructor, not yet shared
	}
	for i := range s.shards {
		s.shards[i].jobs = make(map[string]*jobStore) //zerosum:nolock constructor, not yet shared
	}
	if cfg.Forward != nil {
		fwd, err := NewForwarder(*cfg.Forward)
		if err != nil {
			panic(fmt.Sprintf("aggd: leaf server misconfigured: %v", err))
		}
		s.fwd = fwd
	}
	return s
}

// Forwarder exposes the leaf's upstream forwarder (nil on a root/flat
// server) for stats, explicit flushes, and crash simulation in tests.
func (s *Server) Forwarder() *Forwarder { return s.fwd }

// Close stops the leaf's forwarder after one final flush; on a root/flat
// server it is a no-op. Idempotent.
func (s *Server) Close() error {
	if s.fwd != nil {
		return s.fwd.Close()
	}
	return nil
}

// Obs exposes the server's self-observability recorder (ingest spans).
func (s *Server) Obs() *obs.Recorder { return s.obs }

// TSDB exposes the embedded time-series store: every admitted sample lands
// there at ingest, and the summary/heatmap endpoints read their snapshots
// back out of it. A daemon calls its EnforceRetention on a housekeeping
// tick.
func (s *Server) TSDB() *tsdb.Store { return s.store }

// Handler returns the HTTP API:
//
//	POST /api/ingest              framed batches/snapshots/rollups (gzip accepted)
//	GET  /healthz                 liveness probe (agents health-check failover targets)
//	GET  /metrics                 Prometheus text exposition
//	GET  /api/jobs                known jobs
//	GET  /api/job/{id}/summary    aggregated report.JobSummary (JSON)
//	GET  /api/job/{id}/heatmap    rank x rank received-bytes matrix (JSON);
//	                              with ?metric= a series x time matrix over
//	                              an arbitrary window from the TSDB
//	GET  /api/job/{id}/query      TSDB range query (raw or stepped+aggregated)
//	GET  /api/job/{id}/topk       top-k series by one aggregate over a window
//	GET  /api/job/{id}/tsdb       the job's compressed block set (ZSTB blob)
//	GET  /debug/obs               self-observability span dump (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/ingest", s.handleIngest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/job/{id}/summary", s.handleSummary)
	mux.HandleFunc("GET /api/job/{id}/heatmap", s.handleHeatmap)
	mux.HandleFunc("GET /api/job/{id}/query", s.handleQuery)
	mux.HandleFunc("GET /api/job/{id}/topk", s.handleTopK)
	mux.HandleFunc("GET /api/job/{id}/tsdb", s.handleTSDBDump)
	mux.Handle("GET /debug/obs", obs.Handler("zsaggd", s.obs, nil))
	return mux
}

func (s *Server) job(name string) *jobStore {
	h := fnv.New32a()
	_, _ = io.WriteString(h, name) // hash.Hash Write is documented never to fail
	sh := &s.shards[h.Sum32()%nShards]
	sh.mu.RLock()
	js := sh.jobs[name]
	sh.mu.RUnlock()
	if js != nil {
		return js
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if js = sh.jobs[name]; js == nil {
		js = &jobStore{}
		sh.jobs[name] = js
	}
	return js
}

// lookupJob returns nil when the job is unknown.
func (s *Server) lookupJob(name string) *jobStore {
	h := fnv.New32a()
	_, _ = io.WriteString(h, name) // hash.Hash Write is documented never to fail
	sh := &s.shards[h.Sum32()%nShards]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.jobs[name]
}

// rank returns the shard's state for key, creating it on first contact.
//
//zerosum:locked mu callers ingest under the shard lock
func (sh *rankShard) rank(key rankKey) *rankState {
	rs := sh.ranks[key]
	if rs == nil {
		rs = &rankState{
			hwt:       make(map[int]export.HWTSample),
			gpuBusy:   make(map[int]float64),
			nvctx:     make(map[int]uint64),
			vctx:      make(map[int]uint64),
			stalled:   make(map[int]bool),
			lwpSeries: make(map[int]*lwpSeries),
			hwtSeries: make(map[int]*hwtSeries),
			gpuSeries: make(map[gpuSeriesKey]*tsdb.Series),
		}
		if sh.ranks == nil {
			sh.ranks = make(map[rankKey]*rankState)
		}
		sh.ranks[key] = rs
	}
	return rs
}

// lwpSeries bundles one LWP stream's cached tsdb handles (one per metric
// the aggregator derives from an LWP sample).
type lwpSeries struct {
	user, sys, vctx, nvctx, stalled *tsdb.Series
}

// hwtSeries bundles one hardware thread's cached tsdb handles.
type hwtSeries struct {
	idle, sys, user *tsdb.Series
}

type gpuSeriesKey struct {
	gpu    int
	metric string
}

// resolveLWPSeries pays the series-map lookups for a newly seen TID; every
// later sample of the stream reuses the handles.
//
//zerosum:coldpath
func resolveLWPSeries(ba *tsdb.BatchAppender, node string, rank, tid int) *lwpSeries {
	key := tsdb.SeriesKey{Node: node, Rank: rank, TID: tid}
	ls := &lwpSeries{}
	key.Metric = metricLWPUserPct
	ls.user = ba.Resolve(key)
	key.Metric = metricLWPSysPct
	ls.sys = ba.Resolve(key)
	key.Metric = metricLWPVCtx
	ls.vctx = ba.Resolve(key)
	key.Metric = metricLWPNVCtx
	ls.nvctx = ba.Resolve(key)
	key.Metric = metricLWPStalled
	ls.stalled = ba.Resolve(key)
	return ls
}

//zerosum:coldpath
func resolveHWTSeries(ba *tsdb.BatchAppender, node string, rank, cpu int) *hwtSeries {
	key := tsdb.SeriesKey{Node: node, Rank: rank, TID: cpu}
	hs := &hwtSeries{}
	key.Metric = metricHWTIdlePct
	hs.idle = ba.Resolve(key)
	key.Metric = metricHWTSysPct
	hs.sys = ba.Resolve(key)
	key.Metric = metricHWTUserPct
	hs.user = ba.Resolve(key)
	return hs
}

// Pooled ingest scratch. Every request needs a gzip inflater (its internal
// window alone is tens of kilobytes), a frame scanner (64 KiB read buffer
// plus payload buffer), and a batch decode arena; all three recycle across
// requests so a steady agent fleet ingests with near-zero per-request
// allocation. The arena is safe to reuse per frame because applyBatch copies
// everything it keeps out of the decoded events.
var (
	gzrPool     sync.Pool // *gzip.Reader; no New — first use constructs from the body
	scannerPool = sync.Pool{New: func() any { return NewFrameScanner(nil) }}
	batchPool   = sync.Pool{New: func() any { return new(BatchBuf) }}
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ingestStart := s.cfg.Now()
	defer func() {
		s.obs.Record(obs.StageIngest, ingestStart, s.cfg.Now().Sub(ingestStart))
	}()
	var body io.Reader = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	if r.Header.Get("Content-Encoding") == "gzip" {
		var zr *gzip.Reader
		var err error
		if v := gzrPool.Get(); v != nil {
			zr = v.(*gzip.Reader)
			err = zr.Reset(body)
		} else {
			zr, err = gzip.NewReader(body)
		}
		if err != nil {
			if zr != nil {
				gzrPool.Put(zr)
			}
			s.ingestErrors.Add(1)
			http.Error(w, "bad gzip body: "+err.Error(), http.StatusBadRequest)
			return
		}
		defer func() {
			_ = zr.Close()
			gzrPool.Put(zr)
		}()
		body = zr
	}
	// A body may interleave healthy and damaged frames (bit flips,
	// truncation, garbage from a half-written buffer). The scanner applies
	// every frame that survives its checksum and resynchronizes past the
	// rest; any damage still fails the request so the agent retries the
	// whole body, and sequence dedup makes that retry idempotent.
	sc := scannerPool.Get().(*FrameScanner)
	sc.Reset(body)
	defer func() {
		sc.Reset(nil) // drop the request body reference before pooling
		scannerPool.Put(sc)
	}()
	bb := batchPool.Get().(*BatchBuf)
	defer batchPool.Put(bb)
	frames, corrupt := 0, 0
	var firstErr error
	for {
		kind, payload, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			corrupt++
			s.corruptFrames.Add(1)
			if firstErr == nil {
				firstErr = err
			}
			var ce *CorruptFrameError
			if errors.As(err, &ce) {
				continue // scanner resynchronized; keep consuming
			}
			break // truncated stream or read failure: nothing left to scan
		}
		switch kind {
		case FrameBatch:
			b, err := DecodeBatchPayloadVersionInto(payload, sc.Version(), bb)
			if err != nil {
				corrupt++
				s.corruptFrames.Add(1)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.applyBatch(b)
			frames++
		case FrameSnapshot:
			msg, err := DecodeSnapshotPayload(payload)
			if err != nil {
				corrupt++
				s.corruptFrames.Add(1)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			s.applySnapshot(msg)
			frames++
		case FrameRollup:
			if err := s.applyRollup(payload, sc.Version(), bb); err != nil {
				corrupt++
				s.corruptFrames.Add(1)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			frames++
		}
	}
	if corrupt > 0 {
		s.ingestErrors.Add(1)
		s.obs.RecordError(obs.StageIngest)
		http.Error(w, fmt.Sprintf("aggd: %d corrupt frame(s) in body (%d applied): %v",
			corrupt, frames, firstErr), http.StatusBadRequest)
		return
	}
	if frames == 0 {
		s.ingestErrors.Add(1)
		s.obs.RecordError(obs.StageIngest)
		http.Error(w, "aggd: empty ingest body", http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxTrackedHoles bounds the per-stream set of outstanding sequence gaps so
// a pathological sender cannot grow server memory; beyond the bound, a late
// retry of an untracked gap counts as a duplicate (data already counted
// lost), which errs on the side of never double-merging.
const maxTrackedHoles = 1024

// admitBatch decides whether a batch is new data (true) or a replay that
// must not be merged again (false), updating the stream's sequence
// accounting.
//
//zerosum:locked rankShard.mu caller holds the rank's shard lock
func (s *Server) admitBatch(rs *rankState, b *Batch) bool {
	if !rs.seqSeen || b.Epoch > rs.epoch {
		// First contact, or the agent restarted into a new incarnation:
		// sequence numbering starts over. Earlier batches of the new epoch
		// that were dropped before this one arrived are gaps too.
		rs.epoch = b.Epoch
		rs.seqSeen = true
		rs.maxSeq = b.Seq
		rs.holes = nil
		s.noteGap(rs, 0, b.Seq)
		return true
	}
	if b.Epoch < rs.epoch {
		// Replay from a dead incarnation (e.g. a retry that outlived its
		// agent's restart): everything it carries was already accounted.
		s.dupBatches.Add(1)
		return false
	}
	switch {
	case b.Seq == rs.maxSeq+1:
		rs.maxSeq = b.Seq
		return true
	case b.Seq > rs.maxSeq+1:
		s.noteGap(rs, rs.maxSeq+1, b.Seq)
		rs.maxSeq = b.Seq
		return true
	default: // b.Seq <= rs.maxSeq: a retry — gap fill or replay?
		if rs.holes[b.Seq] {
			delete(rs.holes, b.Seq)
			s.recoveredBatches.Add(1)
			return true
		}
		s.dupBatches.Add(1)
		return false
	}
}

// noteGap records sequence numbers [lo, hi) as lost-until-proven-otherwise.
//
//zerosum:locked rankShard.mu caller holds the rank's shard lock
func (s *Server) noteGap(rs *rankState, lo, hi uint64) {
	if hi <= lo {
		return
	}
	s.lostBatches.Add(hi - lo)
	for q := lo; q < hi; q++ {
		if len(rs.holes) >= maxTrackedHoles {
			return
		}
		if rs.holes == nil {
			rs.holes = make(map[uint64]bool)
		}
		rs.holes[q] = true
	}
}

// applyBatch merges one batch, reporting whether it was admitted as new
// data (false: a replay or stale-epoch straggler the dedup skipped). On a
// leaf, admitted batches are also queued for the upstream rollup — under
// the same shard lock, which is what keeps one origin's batches in
// admission order on the wire up the tree.
func (s *Server) applyBatch(b *Batch) bool {
	now := s.cfg.Now()
	js := s.job(b.Job)
	sh := js.shardFor(rankKey{node: b.Node, rank: b.Rank})
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rs := sh.rank(rankKey{node: b.Node, rank: b.Rank})
	rs.lastRecv = now // even a replay proves the stream is alive
	if !s.admitBatch(rs, b) {
		return false
	}
	if s.fwd != nil {
		s.fwd.EnqueueBatch(b)
	}
	rs.events += uint64(len(b.Events))
	var nLWP, nHWT, nGPU, nMem, nIO uint64
	ba := s.store.BeginBatch(b.Job, b.Node, b.Rank)
	for i := range b.Events {
		ev := &b.Events[i]
		if ev.TimeSec > rs.lastSampleT {
			rs.lastSampleT = ev.TimeSec
		}
		t := tsdb.TimeToNanos(ev.TimeSec)
		switch ev.Kind {
		case export.EventLWP:
			rs.nvctx[ev.LWP.TID] = ev.LWP.NVCtx
			rs.vctx[ev.LWP.TID] = ev.LWP.VCtx
			if ev.LWP.Stalled {
				if !rs.stalled[ev.LWP.TID] {
					rs.stallEvents++
				}
				rs.stalled[ev.LWP.TID] = true
			} else {
				delete(rs.stalled, ev.LWP.TID)
			}
			nLWP++
			ls := rs.lwpSeries[ev.LWP.TID]
			if ls == nil {
				ls = resolveLWPSeries(&ba, b.Node, b.Rank, ev.LWP.TID)
				rs.lwpSeries[ev.LWP.TID] = ls
			}
			ba.Append(ls.user, t, ev.LWP.UserPct)
			ba.Append(ls.sys, t, ev.LWP.SysPct)
			ba.Append(ls.vctx, t, float64(ev.LWP.VCtx))
			ba.Append(ls.nvctx, t, float64(ev.LWP.NVCtx))
			ba.Append(ls.stalled, t, boolSample(ev.LWP.Stalled))
		case export.EventHWT:
			rs.hwt[ev.HWT.CPU] = *ev.HWT
			nHWT++
			hs := rs.hwtSeries[ev.HWT.CPU]
			if hs == nil {
				hs = resolveHWTSeries(&ba, b.Node, b.Rank, ev.HWT.CPU)
				rs.hwtSeries[ev.HWT.CPU] = hs
			}
			ba.Append(hs.idle, t, ev.HWT.IdlePct)
			ba.Append(hs.sys, t, ev.HWT.SysPct)
			ba.Append(hs.user, t, ev.HWT.UserPct)
		case export.EventGPU:
			if ev.GPU.Metric == "Device Busy %" {
				rs.gpuBusy[ev.GPU.GPU] = ev.GPU.Value
			}
			nGPU++
			gk := gpuSeriesKey{gpu: ev.GPU.GPU, metric: ev.GPU.Metric}
			gs := rs.gpuSeries[gk]
			if gs == nil {
				gs = ba.Resolve(tsdb.SeriesKey{Node: b.Node, Rank: b.Rank,
					TID: ev.GPU.GPU, Metric: gpuMetricName(ev.GPU.Metric)})
				rs.gpuSeries[gk] = gs
			}
			ba.Append(gs, t, ev.GPU.Value)
		case export.EventMem:
			rs.memFree = ev.Mem.FreeKB
			rs.memRSS = ev.Mem.ProcRSSKB
			nMem++
			if rs.memFreeS == nil {
				rs.memFreeS = ba.Resolve(tsdb.SeriesKey{Node: b.Node, Rank: b.Rank, Metric: metricMemFreeKB})
				rs.memRSSS = ba.Resolve(tsdb.SeriesKey{Node: b.Node, Rank: b.Rank, Metric: metricMemRSSKB})
			}
			ba.Append(rs.memFreeS, t, float64(ev.Mem.FreeKB))
			ba.Append(rs.memRSSS, t, float64(ev.Mem.ProcRSSKB))
		case export.EventIO:
			nIO++
			if rs.ioReadS == nil {
				rs.ioReadS = ba.Resolve(tsdb.SeriesKey{Node: b.Node, Rank: b.Rank, Metric: metricIOReadBytes})
				rs.ioWriteS = ba.Resolve(tsdb.SeriesKey{Node: b.Node, Rank: b.Rank, Metric: metricIOWriteBytes})
			}
			ba.Append(rs.ioReadS, t, float64(ev.IO.ReadBytes))
			ba.Append(rs.ioWriteS, t, float64(ev.IO.WriteBytes))
		}
	}
	ba.End()
	s.ingestBatches.Add(1)
	s.ingestEvents.Add(uint64(len(b.Events)))
	if nLWP > 0 {
		s.eventsLWP.Add(nLWP)
	}
	if nHWT > 0 {
		s.eventsHWT.Add(nHWT)
	}
	if nGPU > 0 {
		s.eventsGPU.Add(nGPU)
	}
	if nMem > 0 {
		s.eventsMem.Add(nMem)
	}
	if nIO > 0 {
		s.eventsIO.Add(nIO)
	}
	return true
}

// leafSeq is one downstream leaf's rollup sequence accounting, the same
// state machine admitBatch runs per origin, one level up: epoch is the
// leaf process incarnation, seq its rollup counter within the epoch.
type leafSeq struct {
	epoch   uint64          //zerosum:guardedby Server.leafMu
	maxSeq  uint64          //zerosum:guardedby Server.leafMu
	seqSeen bool            //zerosum:guardedby Server.leafMu
	holes   map[uint64]bool //zerosum:guardedby Server.leafMu
}

// admitRollup decides whether a rollup is new data or a replay that must
// not be merged again. The answer only gates whole-rollup replays (a retry
// racing a lost ack, a restarted leaf resending); the embedded batches
// still run the regular per-origin dedup afterwards, which is what catches
// the same agent batch arriving via two different leaf incarnations.
func (s *Server) admitRollup(leafID string, epoch, seq uint64) bool {
	s.leafMu.Lock()
	defer s.leafMu.Unlock()
	ls := s.leafSeqs[leafID]
	if ls == nil {
		ls = &leafSeq{}
		s.leafSeqs[leafID] = ls
	}
	if !ls.seqSeen || epoch > ls.epoch {
		ls.epoch = epoch
		ls.seqSeen = true
		ls.maxSeq = seq
		ls.holes = nil
		s.noteRollupGap(ls, 0, seq)
		return true
	}
	if epoch < ls.epoch {
		s.dupRollups.Add(1)
		return false
	}
	switch {
	case seq == ls.maxSeq+1:
		ls.maxSeq = seq
		return true
	case seq > ls.maxSeq+1:
		s.noteRollupGap(ls, ls.maxSeq+1, seq)
		ls.maxSeq = seq
		return true
	default:
		if ls.holes[seq] {
			delete(ls.holes, seq)
			s.recoveredRollups.Add(1)
			return true
		}
		s.dupRollups.Add(1)
		return false
	}
}

// noteRollupGap records rollup sequence numbers [lo, hi) as
// lost-until-proven-otherwise (a leaf burns a seq on every flush attempt,
// so an abandoned shipment shows up here).
//
//zerosum:locked leafMu caller holds the leaf accounting lock
func (s *Server) noteRollupGap(ls *leafSeq, lo, hi uint64) {
	if hi <= lo {
		return
	}
	s.lostRollups.Add(hi - lo)
	for q := lo; q < hi; q++ {
		if len(ls.holes) >= maxTrackedHoles {
			return
		}
		if ls.holes == nil {
			ls.holes = make(map[uint64]bool)
		}
		ls.holes[q] = true
	}
}

// applyRollup validates and merges one rollup frame. The structure is
// walked — every sub-payload sized and sliced — before (epoch, seq) is
// committed to the leaf's dedup state, so a structurally damaged rollup
// never burns a sequence number; after that point, each embedded batch
// and snapshot applies through the regular ingest paths (per-origin
// dedup included). A sub-payload that fails to decode despite the frame
// passing its CRC (an encoder bug, not line damage) is skipped and
// surfaces as the request's error while the rest of the rollup still
// merges.
func (s *Server) applyRollup(payload []byte, ver uint8, bb *BatchBuf) error {
	var view rollupView
	if err := walkRollupPayload(payload, ver, &view); err != nil {
		return err
	}
	s.rollupFrames.Add(1)
	if !s.admitRollup(view.leafID, view.leafEpoch, view.seq) {
		return nil // replay: everything it carries was already accounted
	}
	var firstErr error
	for i, body := range view.batches {
		b, err := DecodeBatchPayloadVersionInto(body, ver, bb)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("aggd: rollup batch %d: %w", i, err)
			}
			continue
		}
		if !s.applyBatch(b) {
			s.rollupSkippedEvents.Add(uint64(len(b.Events)))
		}
	}
	for i, body := range view.snaps {
		msg, err := DecodeSnapshotPayload(body)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("aggd: rollup snapshot %d: %w", i, err)
			}
			continue
		}
		s.applySnapshot(msg)
	}
	return firstErr
}

// handleHealthz answers liveness probes: agents picking a failover target
// and operators wiring load balancers both ask this before trusting an
// endpoint with traffic.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if _, err := fmt.Fprintf(w, "{\"status\":\"ok\",\"leaf\":%t}\n", s.fwd != nil); err != nil {
		s.writeErrors.Add(1)
	}
}

// TSDB metric names for the streamed sample kinds. The per-thread LWP and
// per-CPU HWT families reuse the series key's TID field for their natural
// sub-identity (thread ID, CPU index, GPU index); node-wide samples use
// TID 0.
const (
	metricLWPUserPct   = "lwp.user_pct"
	metricLWPSysPct    = "lwp.sys_pct"
	metricLWPVCtx      = "lwp.vctx"
	metricLWPNVCtx     = "lwp.nvctx"
	metricLWPStalled   = "lwp.stalled"
	metricHWTIdlePct   = "hwt.idle_pct"
	metricHWTSysPct    = "hwt.sys_pct"
	metricHWTUserPct   = "hwt.user_pct"
	metricMemFreeKB    = "mem.free_kb"
	metricMemRSSKB     = "mem.rss_kb"
	metricIOReadBytes  = "io.read_bytes"
	metricIOWriteBytes = "io.write_bytes"
)

// gpuMetricNames maps the sampler's GPU metric labels to stable series
// names; unknown labels fall through to a "gpu."-prefixed copy (an
// allocation, but only for metrics outside the known sampler set).
var gpuMetricNames = map[string]string{
	"Device Busy %": "gpu.busy_pct",
}

func gpuMetricName(label string) string {
	if name, ok := gpuMetricNames[label]; ok {
		return name
	}
	return "gpu." + label
}

func boolSample(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func (s *Server) applySnapshot(msg *SnapshotMsg) {
	now := s.cfg.Now()
	js := s.job(msg.Job)
	sh := js.shardFor(rankKey{node: msg.Node, rank: msg.Rank})
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rs := sh.rank(rankKey{node: msg.Node, rank: msg.Rank})
	rs.lastRecv = now
	s.store.SetSnapshot(msg.Job, msg.Node, msg.Rank, msg.Snapshot, msg.CommRow)
	s.ingestSnapshots.Add(1)
	if s.fwd != nil {
		// Safe to hold past this call: the decoded document is freshly
		// allocated per frame, never pooled.
		s.fwd.EnqueueSnapshot(msg)
	}
}

// snapshots returns the job's stored snapshots ordered by (rank, node) so
// the fold visits them in the same order a single-process aggregation of
// rank-sorted results would. The documents live in the TSDB store, which
// already yields them in that order.
func (s *Server) snapshots(job string) []core.Snapshot {
	var out []core.Snapshot
	s.store.EachSnapshot(job, func(node string, rank int, snap *core.Snapshot, row map[int]uint64) {
		out = append(out, *snap)
	})
	return out
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	js := s.lookupJob(id)
	if js == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	snaps := s.snapshots(id)
	if len(snaps) == 0 {
		http.Error(w, fmt.Sprintf("aggd: job %q has no snapshots yet", id), http.StatusNotFound)
		return
	}
	summary, err := report.Aggregate(snaps, s.cfg.Thresholds)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, summary)
}

// HeatmapResponse is the JSON shape of /api/job/{id}/heatmap: Bytes[dst][src]
// is what rank dst received from rank src (Figure 5's matrix).
type HeatmapResponse struct {
	Job   string     `json:"job"`
	Ranks int        `json:"ranks"`
	Bytes [][]uint64 `json:"bytes"`
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("metric") != "" {
		// TSDB view: series x time over an arbitrary window. The bare path
		// keeps serving the rank x rank communication matrix unchanged.
		s.handleTSDBHeatmap(w, r)
		return
	}
	id := r.PathValue("id")
	js := s.lookupJob(id)
	if js == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	size := 0
	rows := make(map[int]map[int]uint64)
	// Ranks that streamed batches but have not snapshotted yet still size
	// the matrix.
	js.eachRank(func(key rankKey, rs *rankState) {
		if key.rank+1 > size {
			size = key.rank + 1
		}
	})
	// Reading the snapshot documents after the store's lock drops is safe:
	// SetSnapshot replaces a rank's document wholesale, never mutates it.
	s.store.EachSnapshot(id, func(node string, rank int, snap *core.Snapshot, row map[int]uint64) {
		if rank+1 > size {
			size = rank + 1
		}
		if snap.Size > size {
			size = snap.Size
		}
		if row != nil {
			rows[rank] = row
			for src := range row {
				if src+1 > size {
					size = src + 1
				}
			}
		}
	})
	resp := HeatmapResponse{Job: id, Ranks: size, Bytes: make([][]uint64, size)}
	for dst := range resp.Bytes {
		resp.Bytes[dst] = make([]uint64, size)
		for src, v := range rows[dst] {
			resp.Bytes[dst][src] = v
		}
	}
	s.writeJSON(w, resp)
}

// JobInfo is one entry of /api/jobs.
type JobInfo struct {
	Job       string `json:"job"`
	Nodes     int    `json:"nodes"`
	Ranks     int    `json:"ranks"`
	Snapshots int    `json:"snapshots"`
	Events    uint64 `json:"events"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var jobs []JobInfo
	s.eachJob(func(name string, js *jobStore) {
		info := JobInfo{Job: name, Snapshots: s.store.SnapshotCount(name)}
		nodes := map[string]bool{}
		//zerosum:locked rankShard.mu eachRank holds the shard lock around fn
		js.eachRank(func(key rankKey, rs *rankState) {
			info.Ranks++
			nodes[key.node] = true
			info.Events += rs.events
		})
		info.Nodes = len(nodes)
		jobs = append(jobs, info)
	})
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Job < jobs[j].Job })
	s.writeJSON(w, jobs)
}

// eachJob visits every job store; the callback must do its own locking.
func (s *Server) eachJob(fn func(name string, js *jobStore)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		names := make([]string, 0, len(sh.jobs))
		for name := range sh.jobs {
			names = append(names, name)
		}
		sh.mu.RUnlock()
		sort.Strings(names)
		for _, name := range names {
			sh.mu.RLock()
			js := sh.jobs[name]
			sh.mu.RUnlock()
			if js != nil {
				fn(name, js)
			}
		}
	}
}

// writeJSON renders a response body. Encoding failures here are almost
// always the client hanging up mid-response; the status line is already
// gone, so the error is counted (zerosum_response_write_errors_total)
// rather than reported.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.writeErrors.Add(1)
	}
}
