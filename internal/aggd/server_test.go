package aggd

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/topology"
)

func postFrames(t *testing.T, url string, gz bool, frames ...[]byte) *http.Response {
	t.Helper()
	var body bytes.Buffer
	var w io.Writer = &body
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(&body)
		w = zw
	}
	for _, f := range frames {
		if _, err := w.Write(f); err != nil {
			t.Fatal(err)
		}
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, url+"/api/ingest", &body)
	if err != nil {
		t.Fatal(err)
	}
	if gz {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

func testSnapshot(rank int, node string) core.Snapshot {
	snap := core.Snapshot{
		DurationSec: 20 + float64(rank),
		Rank:        rank, Size: 4, PID: 1000 + rank, Hostname: node,
		ProcessAff: topology.RangeCPUSet(1, 7),
		MemTotalKB: 1 << 20, MemMinFreeKB: 1 << 19,
	}
	for i := 0; i < 4; i++ {
		snap.LWPs = append(snap.LWPs, core.ThreadSummary{
			TID: 100*rank + i, Kind: core.KindOpenMP, Label: "OpenMP",
			UTimePct: 90, STimePct: 2, NVCtx: uint64(10 * rank), VCtx: 5,
			Affinity: topology.NewCPUSet(i + 1), ObservedCPUs: topology.NewCPUSet(i + 1),
		})
		snap.HWTs = append(snap.HWTs, core.HWTSummary{CPU: i + 1, UserPct: 90, IdlePct: 8})
	}
	return snap
}

func TestServerIngestAndSummary(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	srv := NewServer(ServerConfig{Now: func() time.Time { return fixed }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var snaps []core.Snapshot
	for rank := 0; rank < 4; rank++ {
		node := "node-a"
		if rank >= 2 {
			node = "node-b"
		}
		snap := testSnapshot(rank, node)
		snaps = append(snaps, snap)
		frame, err := EncodeSnapshotFrame(&SnapshotMsg{
			Origin:   Origin{Job: "jobX", Node: node, Rank: rank},
			Snapshot: snap,
			CommRow:  map[int]uint64{(rank + 1) % 4: uint64(1000 * (rank + 1))},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp := postFrames(t, ts.URL, rank%2 == 0, frame); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("ingest rank %d: %s", rank, resp.Status)
		}
	}

	want, err := report.Aggregate(snaps, core.EvalThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	var got report.JobSummary
	getJSON(t, ts.URL+"/api/job/jobX/summary", &got)
	assertSummariesEqual(t, want, &got)

	// Heatmap reflects each rank's comm row.
	var hm HeatmapResponse
	getJSON(t, ts.URL+"/api/job/jobX/heatmap", &hm)
	if hm.Ranks != 4 || hm.Bytes[0][1] != 1000 || hm.Bytes[3][0] != 4000 {
		t.Fatalf("heatmap: %+v", hm)
	}

	// Jobs listing.
	var jobs []JobInfo
	getJSON(t, ts.URL+"/api/jobs", &jobs)
	if len(jobs) != 1 || jobs[0].Job != "jobX" || jobs[0].Ranks != 4 || jobs[0].Nodes != 2 || jobs[0].Snapshots != 4 {
		t.Fatalf("jobs: %+v", jobs)
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "/api/job/nope/summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", resp.Status)
	}
}

func TestServerLiveMetrics(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	srv := NewServer(ServerConfig{Now: func() time.Time { return now }})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := &Batch{
		Origin: Origin{Job: "jobY", Node: "node-a", Rank: 0},
		Seq:    0,
		Events: []export.Event{
			lwpEvent(1, 100, 42),
			lwpEvent(1, 101, 8),
			{Kind: export.EventHWT, TimeSec: 1, HWT: &export.HWTSample{TimeSec: 1, CPU: 3, IdlePct: 5, SysPct: 1, UserPct: 94}},
			{Kind: export.EventGPU, TimeSec: 1, GPU: &export.GPUSample{TimeSec: 1, GPU: 0, Metric: "Device Busy %", Value: 77.5}},
			{Kind: export.EventMem, TimeSec: 1, Mem: &export.MemSample{TimeSec: 1, TotalKB: 100, FreeKB: 50, ProcRSSKB: 10}},
		},
	}
	frame, err := EncodeBatchFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	if resp := postFrames(t, ts.URL, true, frame); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("ingest: %s", resp.Status)
	}
	// A later batch with a sequence gap: one batch was lost on the way.
	batch.Seq = 2
	now = now.Add(3 * time.Second)
	frame, err = EncodeBatchFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	postFrames(t, ts.URL, false, frame)
	now = now.Add(2 * time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkPrometheusText(t, string(text))
	for _, want := range []string{
		`zerosum_hwt_user_pct{cpu="3",job="jobY",node="node-a",rank="0"} 94`,
		`zerosum_lwp_nvctx_total{job="jobY",node="node-a",rank="0"} 50`,
		`zerosum_gpu_busy_pct{gpu="0",job="jobY",node="node-a",rank="0"} 77.5`,
		`zerosum_heartbeat_age_seconds{job="jobY",node="node-a",rank="0"} 2`,
		`zerosum_mem_free_kb{job="jobY",node="node-a",rank="0"} 50`,
		`zerosum_lost_batches_total 1`,
		`zerosum_ingest_batches_total 2`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestServerRejectsBadIngest(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Garbage body.
	resp, err := http.Post(ts.URL+"/api/ingest", "application/octet-stream", strings.NewReader("not a frame"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage: %s", resp.Status)
	}
	// Empty body.
	resp, err = http.Post(ts.URL+"/api/ingest", "application/octet-stream", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty: %s", resp.Status)
	}
	if srv.ingestErrors.Load() != 2 {
		t.Fatalf("errors = %d", srv.ingestErrors.Load())
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s\n%s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// assertSummariesEqual compares two JobSummary values through a JSON
// normalization (float64 JSON encoding round-trips exactly, so this is a
// faithful equality check that also covers the wire representation).
func assertSummariesEqual(t *testing.T, want, got *report.JobSummary) {
	t.Helper()
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wj, gj) {
		t.Fatalf("job summaries differ:\nserved %s\nwant   %s", gj, wj)
	}
}

var (
	promSeriesRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (?:[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf)|NaN)( [0-9]+)?$`)
	promHelpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// checkPrometheusText validates the document against the text exposition
// format: every line is a comment or a well-formed series, every series'
// family is declared by a preceding TYPE line, and counters end in _total.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	n := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			if !promHelpRe.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("bad TYPE line: %q", line)
				continue
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSeriesRe.MatchString(line) {
			t.Errorf("bad series line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		typ, ok := typed[name]
		if !ok {
			t.Errorf("series %q has no TYPE declaration", name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %q should end in _total", name)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no series in exposition")
	}
}

// TestServerIngestsV2Frames: an agent from before the v3 stall flag keeps
// streaming through a rolling upgrade — the server must apply its batches,
// with the stalled gauge simply absent-from/cleared-by those events.
func TestServerIngestsV2Frames(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	frame := v2BatchFrame(t, &Batch{
		Origin: Origin{Job: "rolling", Node: "n0", Rank: 0},
		Epoch:  1, Seq: 0,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1, LWP: &export.LWPSample{
				TimeSec: 1, TID: 5, Kind: "Main", State: 'R',
				UserPct: 90, VCtx: 2, NVCtx: 3, CPU: 0,
			}},
		},
	})
	resp, err := http.Post(ts.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("v2 ingest status = %d, want 204", resp.StatusCode)
	}
	st := srv.Stats()
	if st.IngestBatches != 1 || st.IngestEvents != 1 || st.IngestErrors != 0 {
		t.Fatalf("stats after v2 ingest: %+v", st)
	}

	body, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Body.Close()
	text, err := io.ReadAll(body.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `zerosum_lwp_nvctx_total{job="rolling"`) {
		t.Fatalf("v2 batch did not reach /metrics:\n%s", text)
	}
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, `zerosum_lwp_stalled{job="rolling"`) && !strings.HasSuffix(line, " 0") {
			t.Fatalf("v2 stream flagged stalled: %q", line)
		}
	}
}
