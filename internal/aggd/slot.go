package aggd

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"

	"zerosum/internal/export"
)

// eventSlot is one ring entry holding a deep copy of a stream event. Event
// payload pointers are borrowed from the publisher (the monitor reuses one
// sample struct per kind across ticks — see export.Event), so the ring must
// copy the payload at enqueue time; the inline per-kind fields make that a
// single struct assignment with no allocation.
type eventSlot struct {
	kind    export.EventKind
	timeSec float64
	lwp     export.LWPSample
	hwt     export.HWTSample
	gpu     export.GPUSample
	mem     export.MemSample
	io      export.IOSample
}

// store copies ev (and the payload it points to) into the slot.
//
//zerosum:hotpath
func (s *eventSlot) store(ev export.Event) {
	s.kind = ev.Kind
	s.timeSec = ev.TimeSec
	switch ev.Kind {
	case export.EventLWP:
		if ev.LWP != nil {
			s.lwp = *ev.LWP
		}
	case export.EventHWT:
		if ev.HWT != nil {
			s.hwt = *ev.HWT
		}
	case export.EventGPU:
		if ev.GPU != nil {
			s.gpu = *ev.GPU
		}
	case export.EventMem:
		if ev.Mem != nil {
			s.mem = *ev.Mem
		}
	case export.EventIO:
		if ev.IO != nil {
			s.io = *ev.IO
		}
	}
}

// event rebuilds the export.Event view over the slot's own payload storage.
// The returned event is only valid while the slot is.
func (s *eventSlot) event() export.Event {
	ev := export.Event{Kind: s.kind, TimeSec: s.timeSec}
	switch s.kind {
	case export.EventLWP:
		ev.LWP = &s.lwp
	case export.EventHWT:
		ev.HWT = &s.hwt
	case export.EventGPU:
		ev.GPU = &s.gpu
	case export.EventMem:
		ev.Mem = &s.mem
	case export.EventIO:
		ev.IO = &s.io
	}
	return ev
}

// gzScratch bundles a gzip writer with its output buffer so shipment
// compression reuses both.
type gzScratch struct {
	buf bytes.Buffer
	zw  *gzip.Writer
}

var gzPool = sync.Pool{New: func() any {
	return &gzScratch{zw: gzip.NewWriter(io.Discard)}
}}
