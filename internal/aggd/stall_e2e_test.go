package aggd

// End-to-end §3.3 acceptance: a simulated rank with a stalled worker
// thread streams samples through a real agent over loopback HTTP into the
// aggregator, and the stall must be visible in the served Prometheus
// exposition as zerosum_lwp_stalled.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// stallWorkerApp computes on its main thread for the whole run while its
// worker blocks from 1 s to the end — stalled when the final samples ship.
type stallWorkerApp struct{}

func (stallWorkerApp) Build(rc *workload.RankCtx) error {
	const end = 4 * sim.Second
	main := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if now >= end {
			return nil
		}
		return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
	})
	rc.K.NewTask(rc.Proc, "main", main)
	slept := false
	worker := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if now < sim.Second {
			return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
		}
		if !slept {
			slept = true
			return sched.Sleep{D: end - now}
		}
		return nil
	})
	rc.K.NewTask(rc.Proc, "worker", worker)
	return nil
}

func TestStalledLWPReachesAggregatorMetrics(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	streamer := NewJobStreamer(AgentConfig{
		URL: ts.URL, Job: "stall-e2e",
		BatchSize:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	res, err := workload.Run(workload.Config{
		Machine: topology.Laptop4Core,
		App:     stallWorkerApp{},
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: workload.MonitorConfig{
			Enabled: true, Period: 100 * sim.Millisecond, CPU: -1,
			StallTicks: 5,
			StreamFor:  streamer.StreamFor,
		},
		Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamer.FinishRank(0, res.Ranks[0].Snapshot, nil); err != nil {
		t.Fatal(err)
	}
	if err := streamer.Close(); err != nil {
		t.Fatal(err)
	}

	// The worker stalled mid-run and stayed flagged until it exited with
	// the app, so the cumulative counter proves the stall reached the
	// aggregator while the live gauge is back to 0: the monitor ships a
	// final Stalled=false sample when a flagged thread goes away, so dead
	// TIDs never pin the gauge.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var gauge, counter string
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "zerosum_lwp_stalled{") {
			gauge = line
		}
		if strings.HasPrefix(line, "zerosum_lwp_stall_events_total{") {
			counter = line
		}
	}
	if gauge == "" || counter == "" {
		t.Fatalf("stall metrics missing from exposition:\n%s", text)
	}
	if !strings.Contains(counter, `job="stall-e2e"`) || !strings.HasSuffix(counter, " 1") {
		t.Fatalf("stall counter = %q, want job=stall-e2e value 1", counter)
	}
	if !strings.HasSuffix(gauge, " 0") {
		t.Fatalf("stalled gauge = %q, want 0 once the stalled worker exited", gauge)
	}
	checkPrometheusText(t, string(text))
}

// stallExitApp's worker stalls mid-run and then exits while still flagged;
// main keeps computing to the end, so samples keep streaming afterwards.
type stallExitApp struct{}

func (stallExitApp) Build(rc *workload.RankCtx) error {
	const end = 4 * sim.Second
	main := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if now >= end {
			return nil
		}
		return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
	})
	rc.K.NewTask(rc.Proc, "main", main)
	slept := false
	worker := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if now < sim.Second {
			return sched.Compute{Work: 5 * sim.Millisecond, SysFrac: 0.05}
		}
		if !slept {
			slept = true
			return sched.Sleep{D: 1500 * sim.Millisecond}
		}
		return nil // dies on waking, while still flagged stalled
	})
	rc.K.NewTask(rc.Proc, "worker", worker)
	return nil
}

// TestStalledThreadExitClearsAggregatorGauge: a thread that dies while
// flagged stalled must not pin zerosum_lwp_stalled — the monitor ships a
// final Stalled=false sample for the dead TID, so the live gauge reads 0.
func TestStalledThreadExitClearsAggregatorGauge(t *testing.T) {
	srv := NewServer(ServerConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	streamer := NewJobStreamer(AgentConfig{
		URL: ts.URL, Job: "stall-exit-e2e",
		BatchSize:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	res, err := workload.Run(workload.Config{
		Machine: topology.Laptop4Core,
		App:     stallExitApp{},
		Srun:    slurm.Options{NTasks: 1, CoresPerTask: 4},
		Monitor: workload.MonitorConfig{
			Enabled: true, Period: 100 * sim.Millisecond, CPU: -1,
			StallTicks: 5,
			StreamFor:  streamer.StreamFor,
		},
		Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamer.FinishRank(0, res.Ranks[0].Snapshot, nil); err != nil {
		t.Fatal(err)
	}
	if err := streamer.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var gauge string
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, "zerosum_lwp_stalled{") {
			gauge = line
		}
	}
	if gauge == "" {
		t.Fatalf("zerosum_lwp_stalled missing from exposition:\n%s", text)
	}
	if !strings.Contains(gauge, `job="stall-exit-e2e"`) || !strings.HasSuffix(gauge, " 0") {
		t.Fatalf("stalled gauge = %q, want job=stall-exit-e2e value 0 after the stalled thread exited", gauge)
	}
	checkPrometheusText(t, string(text))
}
