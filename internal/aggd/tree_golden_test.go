package aggd

// Tree-transparency tests: a job ingested through a two-level aggregation
// tree (leaf servers forwarding rollup frames to a root) must serve every
// root endpoint byte-identical to a flat deployment. The golden files under
// testdata/golden are pinned by the FLAT server's test — this file never
// regenerates them, it proves the tree converges to the same bytes.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/tsdb"
)

// treeHarness is a 2-level tree over httptest servers: nLeaves leaf
// aggregators forwarding to one root, with a consistent-hash router over
// the leaf URLs.
type treeHarness struct {
	root   *Server
	rootTS *httptest.Server
	leaves []*Server
	leafTS []*httptest.Server
	router *Router
}

func newTreeHarness(t *testing.T, nLeaves int, mk func() ServerConfig) *treeHarness {
	t.Helper()
	h := &treeHarness{root: NewServer(mk())}
	h.rootTS = httptest.NewServer(h.root.Handler())
	t.Cleanup(h.rootTS.Close)
	urls := make([]string, nLeaves)
	for i := 0; i < nLeaves; i++ {
		cfg := mk()
		cfg.Forward = &ForwardConfig{
			Upstream:      h.rootTS.URL,
			LeafID:        fmt.Sprintf("leaf-%d", i),
			Epoch:         1,
			FlushInterval: time.Hour, // flushed explicitly
			BackoffBase:   time.Millisecond,
			MaxBackoff:    4 * time.Millisecond,
			DisableGzip:   true,
		}
		leaf := NewServer(cfg)
		ts := httptest.NewServer(leaf.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = leaf.Close() })
		h.leaves = append(h.leaves, leaf)
		h.leafTS = append(h.leafTS, ts)
		urls[i] = ts.URL
	}
	router, err := NewRouter(urls)
	if err != nil {
		t.Fatal(err)
	}
	h.router = router
	return h
}

// flush ships every leaf's buffered batches and snapshots to the root.
func (h *treeHarness) flush(t *testing.T) {
	t.Helper()
	for i, leaf := range h.leaves {
		if !leaf.Forwarder().Flush() {
			t.Fatalf("leaf %d flush failed: %+v", i, leaf.Forwarder().Stats())
		}
	}
}

func treeGet(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s: %s", path, resp.Status, body)
	}
	return body
}

// TestTreeGoldenEndpoints feeds the golden fixture through a 3-leaf tree,
// routed by the production consistent-hash router, and asserts the ROOT
// serves the exact bytes the flat server's golden files pin — query,
// heatmap, top-k, and the summary identity — proving the tree is invisible
// to every downstream consumer.
func TestTreeGoldenEndpoints(t *testing.T) {
	fixed := time.Unix(1_700_000_000, 0)
	h := newTreeHarness(t, 3, func() ServerConfig {
		return ServerConfig{
			Now:  func() time.Time { return fixed },
			TSDB: tsdb.Options{Block: 10 * time.Second, Downsample: 2 * time.Second},
		}
	})
	snaps := goldenIngest(t, func(node string, rank int) string {
		return h.router.Pick(node, rank)
	})
	h.flush(t)

	for _, golden := range []struct {
		file string
		url  string
	}{
		{"query_stepped.json", "/api/job/jobG/query?metric=lwp.user_pct&step=10&agg=mean"},
		{"query_raw.json", "/api/job/jobG/query?metric=lwp.nvctx&rank=2&start=5&end=10"},
		{"query_delta.json", "/api/job/jobG/query?metric=io.read_bytes&step=10&agg=delta&node=node-a"},
		{"heatmap_window.json", "/api/job/jobG/heatmap?metric=hwt.user_pct&start=5&end=25&step=5&agg=max"},
		{"heatmap_sparse.json", "/api/job/jobG/heatmap?metric=lwp.stalled&start=0&end=30&step=10&agg=max"},
		{"topk.json", "/api/job/jobG/topk?metric=lwp.nvctx&agg=delta&k=2&start=0&end=25"},
	} {
		body := treeGet(t, h.rootTS.URL, golden.url)
		want, err := os.ReadFile(filepath.Join("testdata", "golden", golden.file))
		if err != nil {
			t.Fatalf("%v (the flat golden test pins this file)", err)
		}
		if string(body) != string(want) {
			t.Errorf("%s served through the tree diverges from the flat golden %s:\n got: %s\nwant: %s",
				golden.url, golden.file, body, want)
		}
	}

	summary, err := reportAggregate(snaps, h.root.cfg.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if body := treeGet(t, h.rootTS.URL, "/api/job/jobG/summary"); string(body) != summary {
		t.Fatalf("tree summary not byte-identical to the direct aggregation:\n got: %s\nwant: %s", body, summary)
	}

	st := h.root.Stats()
	if st.RollupFrames == 0 || st.IngestEvents == 0 {
		t.Fatalf("fixture never exercised the rollup path: %+v", st)
	}
	if st.DupBatches != 0 || st.RollupSkippedEvents != 0 || st.LostRollups != 0 {
		t.Fatalf("clean tree run saw faults: %+v", st)
	}
}

// TestTreeFleetScale pushes a simulated fleet — 1000 nodes, 4 ranks per
// node at 25+ LWP threads each (≥100k LWPs) — through the 2-level tree and
// asserts the root's summary is byte-identical to report.Aggregate over the
// same snapshots, and that event conservation holds exactly. This is the
// scale gate: consistent-hash fan-in, rollup re-framing, and root-side
// re-merge must not lose, duplicate, or reorder anything at fleet size.
func TestTreeFleetScale(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-scale tree test skipped in -short mode")
	}
	const (
		nodes        = 1000
		ranksPerNode = 4
		lwpsPerRank  = 26 // 1000*4*26 = 104_000 LWPs
		job          = "fleet"
	)
	h := newTreeHarness(t, 3, func() ServerConfig { return ServerConfig{} })

	// Frames grouped per leaf so the whole fleet lands in one POST per leaf.
	byLeaf := make(map[string][][]byte)
	var snaps []core.Snapshot
	var fedEvents uint64
	rank := 0
	for n := 0; n < nodes; n++ {
		node := fmt.Sprintf("node-%04d", n)
		for r := 0; r < ranksPerNode; r++ {
			origin := Origin{Job: job, Node: node, Rank: rank}
			ev := []export.Event{
				{Kind: export.EventLWP, TimeSec: 1, LWP: &export.LWPSample{
					TID: 100 + rank, Kind: "Main", State: 'R', UserPct: float64(rank % 100),
				}},
				{Kind: export.EventMem, TimeSec: 1, Mem: &export.MemSample{
					TotalKB: 64 << 20, FreeKB: uint64(32<<20 - rank),
				}},
			}
			bf, err := EncodeBatchFrame(&Batch{Origin: origin, Epoch: 1, Events: ev})
			if err != nil {
				t.Fatal(err)
			}
			fedEvents += uint64(len(ev))

			snap := core.Snapshot{
				DurationSec: 60, Rank: rank, Size: nodes * ranksPerNode,
				PID: 9000 + rank, Hostname: node, Comm: "fleetapp",
				MemPeakRSSKB: uint64(1<<20 + rank), MemMinFreeKB: 16 << 20,
				MemTotalKB: 64 << 20, Samples: 60,
			}
			for l := 0; l < lwpsPerRank; l++ {
				kind := core.KindOpenMP
				if l == 0 {
					kind = core.KindMain
				}
				snap.LWPs = append(snap.LWPs, core.ThreadSummary{
					TID: 9000 + rank*lwpsPerRank + l, Label: "w", Kind: kind,
					UTimePct: float64((rank + l) % 90), STimePct: float64(l % 10),
					VCtx: uint64(l), NVCtx: uint64(rank % 7),
				})
			}
			snap.HWTs = []core.HWTSummary{{CPU: r, IdlePct: 10, SysPct: 10, UserPct: 80}}
			snaps = append(snaps, snap)
			sf, err := EncodeSnapshotFrame(&SnapshotMsg{Origin: origin, Snapshot: snap})
			if err != nil {
				t.Fatal(err)
			}
			leaf := h.router.Pick(node, rank)
			byLeaf[leaf] = append(byLeaf[leaf], bf, sf)
			rank++
		}
	}
	if got := nodes * ranksPerNode * lwpsPerRank; got < 100_000 {
		t.Fatalf("fixture too small: %d LWPs", got)
	}
	if len(byLeaf) != 3 {
		t.Fatalf("router concentrated the fleet on %d of 3 leaves", len(byLeaf))
	}
	for leaf, frames := range byLeaf {
		if resp := postFrames(t, leaf, true, frames...); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("fleet ingest via %s: %s", leaf, resp.Status)
		}
	}
	h.flush(t)

	var leafAdmitted uint64
	for _, leaf := range h.leaves {
		leafAdmitted += leaf.Stats().IngestEvents
	}
	rs := h.root.Stats()
	if leafAdmitted != fedEvents || rs.IngestEvents != fedEvents {
		t.Fatalf("fleet conservation: fed %d events, leaves admitted %d, root merged %d",
			fedEvents, leafAdmitted, rs.IngestEvents)
	}
	if rs.IngestSnapshots != uint64(len(snaps)) {
		t.Fatalf("fleet snapshots: root holds %d of %d", rs.IngestSnapshots, len(snaps))
	}

	want, err := reportAggregate(snaps, h.root.cfg.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	got := treeGet(t, h.rootTS.URL, "/api/job/"+job+"/summary")
	if string(got) != want {
		t.Fatalf("fleet summary served through the tree is not byte-identical to the flat aggregation (%d vs %d bytes)",
			len(got), len(want))
	}
	sum, err := report.Aggregate(snaps, h.root.cfg.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ranks != nodes*ranksPerNode {
		t.Fatalf("ground truth covers %d ranks, want %d", sum.Ranks, nodes*ranksPerNode)
	}
}
