package aggd

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"zerosum/internal/tsdb"
)

// HTTP views over the embedded time-series store. Times in requests and
// responses are in seconds on the job's sample clock (the TimeSec domain
// the agents stream); the store's nanosecond clock stays internal.

// SeriesIdent names one series in a JSON response.
type SeriesIdent struct {
	Node string `json:"node"`
	Rank int    `json:"rank"`
	TID  int    `json:"tid"`
}

// QueryPoint is one (time, value) pair of a query response. Aggregated
// points carry the start of their step bucket.
type QueryPoint struct {
	TimeSec float64 `json:"t"`
	Value   float64 `json:"v"`
}

// QuerySeries is one series' slice of a query response.
type QuerySeries struct {
	SeriesIdent
	Points []QueryPoint `json:"points"`
}

// QueryResponse is the JSON shape of /api/job/{id}/query.
type QueryResponse struct {
	Job      string        `json:"job"`
	Metric   string        `json:"metric"`
	Agg      string        `json:"agg"`
	StartSec float64       `json:"start_sec"`
	EndSec   float64       `json:"end_sec"`
	StepSec  float64       `json:"step_sec"`
	Series   []QuerySeries `json:"series"`
}

// TSDBHeatmapResponse is the JSON shape of /api/job/{id}/heatmap?metric=…:
// a dense series x time-bucket matrix. Cells with no samples are null.
type TSDBHeatmapResponse struct {
	Job      string        `json:"job"`
	Metric   string        `json:"metric"`
	Agg      string        `json:"agg"`
	StartSec float64       `json:"start_sec"`
	EndSec   float64       `json:"end_sec"`
	StepSec  float64       `json:"step_sec"`
	Rows     []SeriesIdent `json:"rows"`
	Values   [][]*float64  `json:"values"`
}

// TopKEntry is one series' standing in a top-k response.
type TopKEntry struct {
	SeriesIdent
	Value float64 `json:"value"`
}

// TopKResponse is the JSON shape of /api/job/{id}/topk.
type TopKResponse struct {
	Job      string      `json:"job"`
	Metric   string      `json:"metric"`
	Agg      string      `json:"agg"`
	K        int         `json:"k"`
	StartSec float64     `json:"start_sec"`
	EndSec   float64     `json:"end_sec"`
	Entries  []TopKEntry `json:"entries"`
}

// queryParams parses the shared selector parameters (metric, node, rank,
// tid, start, end, step, agg). end defaults to just past the job's newest
// sample so "everything so far" needs no clock knowledge from the caller.
func (s *Server) queryParams(r *http.Request, job string) (tsdb.QueryOpts, error) {
	q := r.URL.Query()
	opts := tsdb.QueryOpts{Metric: q.Get("metric"), Node: q.Get("node"), Rank: -1, TID: -1}
	if opts.Metric == "" {
		return opts, fmt.Errorf("missing required parameter metric")
	}
	intParam := func(name string, dst *int) error {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s %q", name, v)
			}
			*dst = n
		}
		return nil
	}
	if err := intParam("rank", &opts.Rank); err != nil {
		return opts, err
	}
	if err := intParam("tid", &opts.TID); err != nil {
		return opts, err
	}
	secParam := func(name string) (float64, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false, fmt.Errorf("bad %s %q", name, v)
		}
		return f, true, nil
	}
	start, _, err := secParam("start")
	if err != nil {
		return opts, err
	}
	opts.Start = tsdb.TimeToNanos(start)
	end, ok, err := secParam("end")
	if err != nil {
		return opts, err
	}
	if ok {
		opts.End = tsdb.TimeToNanos(end)
	} else {
		opts.End = s.store.JobStats(job).MaxTimeNanos + 1
	}
	step, ok, err := secParam("step")
	if err != nil {
		return opts, err
	}
	if ok {
		if step <= 0 {
			return opts, fmt.Errorf("bad step %q", q.Get("step"))
		}
		opts.Step = tsdb.TimeToNanos(step)
	}
	opts.Agg, err = tsdb.ParseAgg(q.Get("agg"))
	return opts, err
}

func ident(key tsdb.SeriesKey) SeriesIdent {
	return SeriesIdent{Node: key.Node, Rank: key.Rank, TID: key.TID}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.lookupJob(id) == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	opts, err := s.queryParams(r, id)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	series, err := s.store.Query(id, opts)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := QueryResponse{
		Job: id, Metric: opts.Metric, Agg: opts.Agg.String(),
		StartSec: tsdb.NanosToSec(opts.Start),
		EndSec:   tsdb.NanosToSec(opts.End),
		StepSec:  tsdb.NanosToSec(opts.Step),
		Series:   make([]QuerySeries, 0, len(series)),
	}
	for _, sr := range series {
		qs := QuerySeries{SeriesIdent: ident(sr.Key), Points: make([]QueryPoint, len(sr.Points))}
		for i, p := range sr.Points {
			qs.Points[i] = QueryPoint{TimeSec: p.Sec(), Value: p.V}
		}
		resp.Series = append(resp.Series, qs)
	}
	s.writeJSON(w, resp)
}

// handleTSDBHeatmap serves /api/job/{id}/heatmap?metric=…, the windowed
// series x time view; the legacy rank x rank communication matrix stays on
// the bare path (handleHeatmap dispatches here when metric is present).
func (s *Server) handleTSDBHeatmap(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.lookupJob(id) == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	opts, err := s.queryParams(r, id)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Step <= 0 {
		// Default: carve the window into 60 buckets, mirroring a terminal-
		// width plot; explicit step always wins.
		opts.Step = (opts.End - opts.Start + 59) / 60
		if opts.Step <= 0 {
			opts.Step = 1
		}
	}
	hm, err := s.store.Heatmap(id, opts)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := TSDBHeatmapResponse{
		Job: id, Metric: opts.Metric, Agg: opts.Agg.String(),
		StartSec: tsdb.NanosToSec(opts.Start),
		EndSec:   tsdb.NanosToSec(opts.End),
		StepSec:  tsdb.NanosToSec(opts.Step),
		Rows:     make([]SeriesIdent, len(hm.Rows)),
		Values:   make([][]*float64, len(hm.Rows)),
	}
	for i, key := range hm.Rows {
		resp.Rows[i] = ident(key)
		row := make([]*float64, len(hm.Values[i]))
		for j := range hm.Values[i] {
			if v := hm.Values[i][j]; !math.IsNaN(v) {
				row[j] = &hm.Values[i][j]
			}
		}
		resp.Values[i] = row
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.lookupJob(id) == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	opts, err := s.queryParams(r, id)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if v := r.URL.Query().Get("k"); v != "" {
		if k, err = strconv.Atoi(v); err != nil || k <= 0 {
			http.Error(w, fmt.Sprintf("aggd: bad k %q", v), http.StatusBadRequest)
			return
		}
	}
	top, err := s.store.TopK(id, opts, k)
	if err != nil {
		http.Error(w, "aggd: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := TopKResponse{
		Job: id, Metric: opts.Metric, Agg: opts.Agg.String(), K: k,
		StartSec: tsdb.NanosToSec(opts.Start),
		EndSec:   tsdb.NanosToSec(opts.End),
		Entries:  make([]TopKEntry, len(top)),
	}
	for i, e := range top {
		resp.Entries[i] = TopKEntry{SeriesIdent: ident(e.Key), Value: e.Value}
	}
	s.writeJSON(w, resp)
}

// handleTSDBDump streams the job's entire compressed block set — the ZSTB
// blob UnmarshalBlocks reads back — for offline analysis or spill-to-disk.
func (s *Server) handleTSDBDump(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.lookupJob(id) == nil {
		http.Error(w, fmt.Sprintf("aggd: unknown job %q", id), http.StatusNotFound)
		return
	}
	blob, err := s.store.MarshalJob(id)
	if err != nil {
		// The job exists in the aggregator but holds no samples yet.
		http.Error(w, "aggd: "+err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	if _, err := w.Write(blob); err != nil {
		s.writeErrors.Add(1)
	}
}
