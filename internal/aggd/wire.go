// Package aggd is ZeroSum's cluster aggregation tier: the networked
// collection service the paper's export path anticipates (§3.6 forwards
// periodic samples to a data service; §6 names LDMS/ADIOS2 integration as
// future work). A per-process Agent subscribes to the monitor's
// export.Stream, buffers samples in a bounded ring and ships them in
// batches over HTTP to a Server, which maintains per-job sharded stores of
// every (node, rank)'s live samples and final snapshots, folds them
// through report.Aggregate into the allocation-wide JobSummary, and serves
// Prometheus /metrics plus JSON summary/heatmap endpoints — the per-node
// collector → aggregator → per-job view pipeline of job-specific
// monitoring stacks.
package aggd

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"zerosum/internal/core"
	"zerosum/internal/export"
)

// Wire framing (all little endian). Every message on the wire is one frame:
//
//	magic   "ZSAG" (4 bytes)
//	version uint8  (currently 2)
//	kind    uint8  (FrameBatch | FrameSnapshot)
//	length  uint32 (payload bytes that follow)
//	crc     uint32 (CRC-32C of the payload)
//	payload
//
// A FrameBatch payload is the compact binary batch encoding below; a
// FrameSnapshot payload is the JSON encoding of SnapshotMsg (snapshots are
// sent once per rank, so compactness does not matter there). Multiple
// frames may be concatenated in one HTTP request body.
//
// The checksum exists because the aggregation path must stay trustworthy
// under the link-flap and partial-write regimes an always-on monitor lives
// through: a bit flip inside a float64 payload still decodes "successfully"
// and silently poisons the job view, so every payload is integrity-checked
// before it is parsed. Version 2 also carries the sending agent's stream
// epoch so the server can tell a restarted agent (sequence numbers reset)
// from a retried batch (sequence numbers repeat). Version 3 adds the LWP
// event's stalled flag (§3.3 progress detection); a version-2 LWP event is
// identical minus that byte and decodes with Stalled=false, so a fleet can
// roll agents and aggregators independently during an upgrade. Version 4
// replaces the batch payload encoding wholesale with the dictionary +
// per-stream delta format of wirev4.go (the framing and the other payload
// kinds are unchanged); versions 2 and 3 still decode, so a mixed fleet
// keeps ingesting while agents roll forward.
const (
	// WireVersion is the framing version senders emit.
	WireVersion = 4
	// MinWireVersion is the oldest version readers still accept: version 2
	// frames (pre-stall-flag agents) decode during a rolling upgrade.
	MinWireVersion = 2
	// MaxFramePayload bounds a frame so a corrupt or hostile length field
	// cannot make the server allocate unbounded memory.
	MaxFramePayload = 64 << 20

	// FrameHeaderLen is the fixed byte length of a frame header (magic +
	// version + kind + payload length + payload CRC); frame[FrameHeaderLen:]
	// is the payload of a single-frame buffer built by AppendBatchFrame.
	FrameHeaderLen = 14

	frameHeaderLen = FrameHeaderLen
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64, so checksumming stays off the overhead budget).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var wireMagic = [4]byte{'Z', 'S', 'A', 'G'}

// FrameKind discriminates frame payloads.
type FrameKind byte

// Frame kinds. FrameRollup (kind 3, introduced with wire version 3) is
// declared in rollup.go alongside its codec: a leaf aggregator's pre-merged
// upstream shipment of admitted batches and snapshot documents.
const (
	FrameBatch    FrameKind = 1
	FrameSnapshot FrameKind = 2
)

// Origin identifies the stream a frame belongs to.
type Origin struct {
	Job  string
	Node string
	Rank int
}

// Key renders the origin for diagnostics.
func (o Origin) Key() string { return fmt.Sprintf("%s/%s/%d", o.Job, o.Node, o.Rank) }

// Batch is one shipment of stream events from a single rank's agent. Seq
// increases by one per batch sent, letting the server detect loss and
// deduplicate retried shipments. Epoch identifies one incarnation of the
// sending agent: a restarted agent starts a new epoch with Seq back at 0,
// which the server must not mistake for a replay of old sequence numbers.
type Batch struct {
	Origin
	Epoch  uint64
	Seq    uint64
	Events []export.Event
}

// SnapshotMsg carries a rank's end-of-run (or periodic) report snapshot
// plus its row of the communication matrix: CommRow[src] = bytes this rank
// received from src (internal/mpi's Figure 5 accounting).
type SnapshotMsg struct {
	Origin
	Snapshot core.Snapshot
	CommRow  map[int]uint64
}

// batch payload event tags; distinct from export.EventKind so the wire
// stays stable if the in-process enum is reordered.
const (
	tagLWP byte = iota + 1
	tagHWT
	tagGPU
	tagMem
	tagIO
	tagHeartbeat
)

func appendHeader(dst []byte, kind FrameKind, ver uint8) []byte {
	dst = append(dst, wireMagic[:]...)
	dst = append(dst, ver, byte(kind))
	dst = binary.LittleEndian.AppendUint32(dst, 0)  // length, patched by finishFrame
	return binary.LittleEndian.AppendUint32(dst, 0) // crc, patched by finishFrame
}

func finishFrame(frame []byte) ([]byte, error) {
	payload := len(frame) - frameHeaderLen
	if payload > MaxFramePayload {
		return nil, fmt.Errorf("aggd: frame payload %d exceeds %d", payload, MaxFramePayload)
	}
	binary.LittleEndian.PutUint32(frame[6:10], uint32(payload))
	binary.LittleEndian.PutUint32(frame[10:14], crc32.Checksum(frame[frameHeaderLen:], castagnoli))
	return frame, nil
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("aggd: string field of %d bytes too long", len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// AppendBatchFrame appends the framed encoding of b to dst and returns the
// extended slice, so a sender can reuse one scratch buffer per shipment.
//
//zerosum:hotpath
//zerosum:wire-encode batch
func AppendBatchFrame(dst []byte, b *Batch) ([]byte, error) {
	return AppendBatchFrameVersion(dst, b, WireVersion)
}

// AppendBatchFrameVersion appends b framed with wire version ver, for
// agents pinned to an older format during a rolling upgrade (and for the
// mixed-fleet tests and soaks that exercise the server's version spread).
//
//zerosum:hotpath
//zerosum:wire-encode batch
func AppendBatchFrameVersion(dst []byte, b *Batch, ver uint8) ([]byte, error) {
	if ver < MinWireVersion || ver > WireVersion {
		return nil, fmt.Errorf("aggd: unsupported wire version %d (want %d..%d)",
			ver, MinWireVersion, WireVersion)
	}
	start := len(dst)
	dst = appendHeader(dst, FrameBatch, ver)
	dst, err := appendBatchPayloadVersion(dst, b, ver)
	if err != nil {
		return nil, err
	}
	frame, err := finishFrame(dst[start:])
	if err != nil {
		return nil, err
	}
	return dst[:start+len(frame)], nil
}

// appendBatchPayloadVersion appends the bare batch payload encoding at wire
// version ver (what follows a FrameBatch header). Rollup frames embed the
// same encoding length-prefixed, so it is shared rather than inlined in
// AppendBatchFrameVersion.
//
//zerosum:hotpath
//zerosum:wire-encode batch
func appendBatchPayloadVersion(dst []byte, b *Batch, ver uint8) ([]byte, error) {
	if ver >= 4 {
		return appendBatchPayloadV4(dst, b)
	}
	var err error
	if dst, err = appendString(dst, b.Job); err != nil {
		return nil, err
	}
	if dst, err = appendString(dst, b.Node); err != nil {
		return nil, err
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(b.Rank)))
	dst = binary.LittleEndian.AppendUint64(dst, b.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Events)))
	for i := range b.Events {
		if dst, err = appendEvent(dst, &b.Events[i], ver); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// EncodeBatchFrame encodes b as one complete frame.
func EncodeBatchFrame(b *Batch) ([]byte, error) { return AppendBatchFrame(nil, b) }

// appendEvent is the fixed-width v2/v3 event encoding; ver gates the one
// layout difference (the v3 stalled byte). Version 4 events live in
// wirev4.go.
//
//zerosum:hotpath
//zerosum:wire-encode event
func appendEvent(dst []byte, ev *export.Event, ver uint8) ([]byte, error) {
	var err error
	switch ev.Kind {
	case export.EventLWP:
		l := ev.LWP
		if l == nil {
			return nil, fmt.Errorf("aggd: LWP event with nil payload")
		}
		dst = append(dst, tagLWP)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l.TID)))
		if dst, err = appendString(dst, l.Kind); err != nil {
			return nil, err
		}
		dst = append(dst, l.State)
		if ver >= 3 {
			dst = append(dst, boolByte(l.Stalled))
		}
		dst = appendF64(dst, l.UserPct)
		dst = appendF64(dst, l.SysPct)
		dst = binary.LittleEndian.AppendUint64(dst, l.VCtx)
		dst = binary.LittleEndian.AppendUint64(dst, l.NVCtx)
		dst = binary.LittleEndian.AppendUint64(dst, l.MinFlt)
		dst = binary.LittleEndian.AppendUint64(dst, l.MajFlt)
		dst = binary.LittleEndian.AppendUint64(dst, l.NSwap)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l.CPU)))
	case export.EventHWT:
		h := ev.HWT
		if h == nil {
			return nil, fmt.Errorf("aggd: HWT event with nil payload")
		}
		dst = append(dst, tagHWT)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(h.CPU)))
		dst = appendF64(dst, h.IdlePct)
		dst = appendF64(dst, h.SysPct)
		dst = appendF64(dst, h.UserPct)
	case export.EventGPU:
		g := ev.GPU
		if g == nil {
			return nil, fmt.Errorf("aggd: GPU event with nil payload")
		}
		dst = append(dst, tagGPU)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(g.GPU)))
		if dst, err = appendString(dst, g.Metric); err != nil {
			return nil, err
		}
		dst = appendF64(dst, g.Value)
	case export.EventMem:
		m := ev.Mem
		if m == nil {
			return nil, fmt.Errorf("aggd: Mem event with nil payload")
		}
		dst = append(dst, tagMem)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint64(dst, m.TotalKB)
		dst = binary.LittleEndian.AppendUint64(dst, m.FreeKB)
		dst = binary.LittleEndian.AppendUint64(dst, m.AvailKB)
		dst = binary.LittleEndian.AppendUint64(dst, m.ProcRSSKB)
		dst = binary.LittleEndian.AppendUint64(dst, m.ProcHWMKB)
	case export.EventIO:
		io := ev.IO
		if io == nil {
			return nil, fmt.Errorf("aggd: IO event with nil payload")
		}
		dst = append(dst, tagIO)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint64(dst, io.RChar)
		dst = binary.LittleEndian.AppendUint64(dst, io.WChar)
		dst = binary.LittleEndian.AppendUint64(dst, io.SyscR)
		dst = binary.LittleEndian.AppendUint64(dst, io.SyscW)
		dst = binary.LittleEndian.AppendUint64(dst, io.ReadBytes)
		dst = binary.LittleEndian.AppendUint64(dst, io.WriteBytes)
	case export.EventHeartbeat:
		dst = append(dst, tagHeartbeat)
		dst = appendF64(dst, ev.TimeSec)
	default:
		return nil, fmt.Errorf("aggd: unknown event kind %d", ev.Kind)
	}
	return dst, nil
}

// EncodeSnapshotFrame encodes msg as one complete frame.
func EncodeSnapshotFrame(msg *SnapshotMsg) ([]byte, error) {
	body, err := encodeSnapshotPayload(msg)
	if err != nil {
		return nil, err
	}
	frame := appendHeader(nil, FrameSnapshot, WireVersion)
	frame = append(frame, body...)
	return finishFrame(frame)
}

// encodeSnapshotPayload renders the bare FrameSnapshot payload (JSON);
// rollup frames embed the same bytes length-prefixed.
func encodeSnapshotPayload(msg *SnapshotMsg) ([]byte, error) {
	body, err := json.Marshal(msg)
	if err != nil {
		return nil, fmt.Errorf("aggd: marshal snapshot: %w", err)
	}
	return body, nil
}

// ReadFrame reads one frame from r and verifies its payload checksum,
// returning the frame's wire version alongside its kind and payload (batch
// payloads must be decoded with the version they were framed with; see
// DecodeBatchPayloadVersionInto). io.EOF signals a clean end of stream; a
// truncated frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (FrameKind, uint8, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, fmt.Errorf("aggd: frame header: %w", io.ErrUnexpectedEOF)
	}
	if [4]byte(hdr[:4]) != wireMagic {
		return 0, 0, nil, fmt.Errorf("aggd: bad frame magic %q", hdr[:4])
	}
	ver := hdr[4]
	if ver < MinWireVersion || ver > WireVersion {
		return 0, 0, nil, fmt.Errorf("aggd: unsupported wire version %d (want %d..%d)",
			ver, MinWireVersion, WireVersion)
	}
	kind := FrameKind(hdr[5])
	n := binary.LittleEndian.Uint32(hdr[6:10])
	if n > MaxFramePayload {
		return 0, 0, nil, fmt.Errorf("aggd: frame claims %d payload bytes (max %d)", n, MaxFramePayload)
	}
	payload, err := readPayload(r, int(n))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("aggd: frame payload: %w", io.ErrUnexpectedEOF)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(hdr[10:14]) {
		return 0, 0, nil, fmt.Errorf("aggd: frame payload checksum mismatch (corrupt frame)")
	}
	return kind, ver, payload, nil
}

// readPayload reads exactly n payload bytes, growing the buffer in bounded
// chunks so a corrupt or hostile length field costs at most one chunk of
// allocation before the short read is detected.
func readPayload(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	if n <= chunk {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, chunk)
	for len(buf) < n {
		k := n - len(buf)
		if k > chunk {
			k = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// CorruptFrameError reports bytes a FrameScanner had to throw away to get
// back in sync with the frame stream. It is a recoverable condition: the
// scanner is positioned at the next plausible frame when it is returned.
type CorruptFrameError struct {
	Skipped int    // bytes discarded, including any corrupt frame's own span
	Reason  string // human-readable cause
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("aggd: corrupt frame (%s, %d bytes skipped)", e.Reason, e.Skipped)
}

// FrameScanner iterates the frames of a byte stream, resynchronizing on
// corrupt input instead of giving up: garbage between frames is skipped up
// to the next plausible header, and a frame whose checksum does not match
// is reported and stepped over. Each corruption event surfaces as exactly
// one *CorruptFrameError from Next, so a caller can count losses and keep
// consuming the remaining healthy frames.
//
// The payload slice Next returns is only valid until the following Next or
// Reset call: the scanner reuses one payload buffer across frames so a
// pooled scanner serves a whole ingest stream without per-frame allocation.
type FrameScanner struct {
	r       *bufio.Reader
	payload []byte // reused across Next calls; see readFrameReuse
	ver     uint8  // wire version of the frame Next last returned
}

// NewFrameScanner wraps r for resynchronizing frame iteration.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{r: bufio.NewReaderSize(r, 64<<10)}
}

// maxRetainedPayload caps the payload buffer a scanner keeps between streams,
// so one oversized frame does not pin tens of megabytes inside a pool.
const maxRetainedPayload = 4 << 20

// Reset repoints the scanner at r, keeping its read buffer and (bounded)
// payload buffer so pooled scanners are reused across ingest requests.
func (s *FrameScanner) Reset(r io.Reader) {
	s.r.Reset(r)
	s.ver = 0
	if cap(s.payload) > maxRetainedPayload {
		s.payload = nil
	}
}

// Version returns the wire version of the frame the last successful Next
// returned (0 before the first frame). Batch payloads must be decoded with
// it: DecodeBatchPayloadVersionInto(payload, sc.Version(), bb).
func (s *FrameScanner) Version() uint8 { return s.ver }

// plausibleHeader reports whether hdr could open a real frame. Rollup
// frames only exist from wire version 3 on, so a version-2 header claiming
// one is garbage to resync past, not a frame.
func plausibleHeader(hdr []byte) bool {
	if [4]byte(hdr[:4]) != wireMagic ||
		hdr[4] < MinWireVersion || hdr[4] > WireVersion ||
		binary.LittleEndian.Uint32(hdr[6:10]) > MaxFramePayload {
		return false
	}
	switch FrameKind(hdr[5]) {
	case FrameBatch, FrameSnapshot:
		return true
	case FrameRollup:
		return hdr[4] >= 3
	}
	return false
}

// Next returns the next verified frame. io.EOF signals a clean end of
// stream; *CorruptFrameError signals skipped corruption with the scanner
// still usable; any other error (including a truncated final frame) is
// terminal.
func (s *FrameScanner) Next() (FrameKind, []byte, error) {
	skipped := 0
	for {
		hdr, err := s.r.Peek(frameHeaderLen)
		if len(hdr) == 0 {
			if err != nil && err != io.EOF {
				return 0, nil, err
			}
			if skipped > 0 {
				return 0, nil, &CorruptFrameError{Skipped: skipped, Reason: "no frame magic before end of stream"}
			}
			return 0, nil, io.EOF
		}
		if len(hdr) < frameHeaderLen {
			// Trailing bytes too short to ever form a header.
			n, _ := s.r.Discard(len(hdr))
			return 0, nil, &CorruptFrameError{Skipped: skipped + n, Reason: "truncated trailing bytes"}
		}
		if !plausibleHeader(hdr) {
			_, _ = s.r.Discard(1)
			skipped++
			continue
		}
		if skipped > 0 {
			// Report the garbage run first; the valid frame is still
			// buffered and will be returned by the next call.
			return 0, nil, &CorruptFrameError{Skipped: skipped, Reason: "garbage before frame magic"}
		}
		// hdr aliases the bufio buffer and is invalidated by the payload
		// read below; take what the error path needs now.
		span := frameHeaderLen + int(binary.LittleEndian.Uint32(hdr[6:10]))
		kind, payload, err := s.readFrameReuse(hdr)
		if err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return 0, nil, err
			}
			// Checksum mismatch: the frame span was consumed; resume
			// scanning from the byte after it.
			return 0, nil, &CorruptFrameError{Skipped: span, Reason: "payload checksum mismatch"}
		}
		return kind, payload, nil
	}
}

// readFrameReuse is ReadFrame against the scanner's reusable payload
// buffer. hdr is the full header Next already peeked (and plausibleHeader
// already vetted), so it is parsed in place rather than re-read — re-reading
// into a local array would heap-allocate it once per frame.
func (s *FrameScanner) readFrameReuse(hdr []byte) (FrameKind, []byte, error) {
	kind := FrameKind(hdr[5])
	ver := hdr[4]
	n := int(binary.LittleEndian.Uint32(hdr[6:10]))
	want := binary.LittleEndian.Uint32(hdr[10:14])
	// Cannot fail: Peek just proved frameHeaderLen buffered bytes.
	if _, err := s.r.Discard(frameHeaderLen); err != nil {
		return 0, nil, err
	}
	payload, err := s.readPayloadReuse(n)
	if err != nil {
		return 0, nil, fmt.Errorf("aggd: frame payload: %w", io.ErrUnexpectedEOF)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != want {
		return 0, nil, fmt.Errorf("aggd: frame payload checksum mismatch (corrupt frame)")
	}
	s.ver = ver
	return kind, payload, nil
}

// readPayloadReuse mirrors readPayload's bounded-chunk growth (a lying length
// field costs at most one chunk before the short read surfaces) but grows the
// scanner's own buffer, so a warm scanner reads every frame allocation-free.
func (s *FrameScanner) readPayloadReuse(n int) ([]byte, error) {
	const chunk = 1 << 20
	buf := s.payload[:0]
	if cap(buf) >= n {
		buf = buf[:n]
		_, err := io.ReadFull(s.r, buf)
		return buf, err
	}
	for len(buf) < n {
		k := n - len(buf)
		if k > chunk {
			k = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(s.r, buf[off:]); err != nil {
			return nil, err
		}
	}
	s.payload = buf
	return buf, nil
}

// decoder is a cursor over one frame payload.
type decoder struct {
	buf []byte
	off int
	ver uint8 // wire version the payload was framed with
}

func (d *decoder) need(n int) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, d.short(n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// short is outlined so need (and the u8/u32/u64 readers built on it) stays
// cheap enough to inline into the decode loop.
func (d *decoder) short(n int) error {
	return fmt.Errorf("aggd: truncated payload at offset %d (need %d of %d)", d.off, n, len(d.buf))
}

func (d *decoder) u8() (byte, error) {
	b, err := d.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) i32() (int, error) {
	v, err := d.u32()
	return int(int32(v)), err
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

// str decodes a u16-length-prefixed string without interning (for
// low-frequency fields like a rollup's leaf ID, where an arena table
// buys nothing).
func (d *decoder) str() (string, error) {
	b, err := d.need(2)
	if err != nil {
		return "", err
	}
	raw, err := d.need(int(binary.LittleEndian.Uint16(b)))
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// lenPrefixed returns a u32-length-prefixed sub-payload, aliasing the
// decoder's buffer.
func (d *decoder) lenPrefixed() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	return d.need(int(n))
}

// maxInterned bounds a BatchBuf's string table so a hostile stream of
// distinct label strings cannot grow a pooled arena without limit; overflow
// strings still decode, they just allocate.
const maxInterned = 1024

// strInterned decodes a length-prefixed string through tab: label-like
// fields (job, node, LWP kind, GPU metric name) repeat endlessly across
// batches, so a warm table makes them allocation-free. The map lookup on a
// []byte conversion does not allocate (the compiler elides the copy).
func (d *decoder) strInterned(tab map[string]string) (string, error) {
	b, err := d.need(2)
	if err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b))
	raw, err := d.need(n)
	if err != nil {
		return "", err
	}
	if s, ok := tab[string(raw)]; ok {
		return s, nil
	}
	s := string(raw)
	if len(tab) < maxInterned {
		tab[s] = s
	}
	return s, nil
}

// BatchBuf is a reusable decode arena for batch payloads. The events and
// their payload structs land in slices owned by the arena, and repeated
// strings resolve through its intern table, so a warm arena decodes a batch
// without allocating. Everything DecodeBatchPayloadInto returns aliases the
// arena and is only valid until its next use; a caller that reuses arenas
// (the ingest path pools them) must copy out whatever it keeps.
type BatchBuf struct {
	batch Batch
	lwp   []export.LWPSample
	hwt   []export.HWTSample
	gpu   []export.GPUSample
	mem   []export.MemSample
	io    []export.IOSample
	strs  map[string]string

	// Version-4 decode state: the batch dictionary, its canonical-form
	// bookkeeping, and the per-stream delta predictors. Kept here (rather
	// than on a per-call struct) so a pooled warm arena decodes v4 batches
	// without allocating; resetV4 clears values but keeps the map buckets.
	dict     []string
	dictUsed int
	dictSeen map[string]bool
	streams  v4Streams
}

func (bb *BatchBuf) reset() {
	ev := bb.batch.Events[:0]
	bb.batch = Batch{}
	bb.batch.Events = ev
	bb.lwp = bb.lwp[:0]
	bb.hwt = bb.hwt[:0]
	bb.gpu = bb.gpu[:0]
	bb.mem = bb.mem[:0]
	bb.io = bb.io[:0]
	if bb.strs == nil {
		bb.strs = make(map[string]string)
	}
}

// resetV4 clears the v4-only decode state; split from reset so v2/v3
// decodes do not pay for maps they never touch.
func (bb *BatchBuf) resetV4() {
	bb.dict = bb.dict[:0]
	bb.dictUsed = 0
	if bb.dictSeen == nil {
		bb.dictSeen = make(map[string]bool)
	} else {
		clear(bb.dictSeen)
	}
	bb.streams.reset()
}

// DecodeBatchPayload parses a current-version FrameBatch payload into a
// fresh arena; the result is independently owned by the caller.
func DecodeBatchPayload(payload []byte) (*Batch, error) {
	return DecodeBatchPayloadInto(payload, new(BatchBuf))
}

// DecodeBatchPayloadInto parses a current-version FrameBatch payload into
// bb and returns the arena's batch. See BatchBuf for the aliasing contract.
func DecodeBatchPayloadInto(payload []byte, bb *BatchBuf) (*Batch, error) {
	return DecodeBatchPayloadVersionInto(payload, WireVersion, bb)
}

// DecodeBatchPayloadVersionInto parses a FrameBatch payload framed with
// wire version ver (as reported by ReadFrame or FrameScanner.Version) into
// bb. Version 2 LWP events carry no stalled flag and decode with
// Stalled=false, which keeps a mixed-version fleet ingesting during a
// rolling upgrade.
//
//zerosum:wire-decode batch
func DecodeBatchPayloadVersionInto(payload []byte, ver uint8, bb *BatchBuf) (*Batch, error) {
	if ver < MinWireVersion || ver > WireVersion {
		return nil, fmt.Errorf("aggd: unsupported wire version %d (want %d..%d)",
			ver, MinWireVersion, WireVersion)
	}
	if ver >= 4 {
		return decodeBatchPayloadV4Into(payload, bb)
	}
	bb.reset()
	d := &decoder{buf: payload, ver: ver}
	b := &bb.batch
	var err error
	if b.Job, err = d.strInterned(bb.strs); err != nil {
		return nil, err
	}
	if b.Node, err = d.strInterned(bb.strs); err != nil {
		return nil, err
	}
	if b.Rank, err = d.i32(); err != nil {
		return nil, err
	}
	if b.Epoch, err = d.u64(); err != nil {
		return nil, err
	}
	if b.Seq, err = d.u64(); err != nil {
		return nil, err
	}
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	// Every event costs at least a tag byte plus the f64 timestamp, so a
	// count the remaining bytes cannot hold is a lie — reject it before it
	// sizes an allocation (a hostile count of 2^32-1 would otherwise ask
	// for hundreds of gigabytes of Event headroom).
	const minEventLen = 9
	if int64(n)*minEventLen > int64(len(payload)-d.off) {
		return nil, fmt.Errorf("aggd: batch claims %d events in %d bytes", n, len(payload)-d.off)
	}
	events := b.Events
	for i := uint32(0); i < n; i++ {
		ev, err := decodeEventInto(d, bb)
		if err != nil {
			return nil, fmt.Errorf("aggd: event %d: %w", i, err)
		}
		events = append(events, ev)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("aggd: %d trailing bytes after batch", len(payload)-d.off)
	}
	b.Events = events
	fixupEventPayloads(events, bb)
	return b, nil
}

// fixupEventPayloads assigns each event's payload pointer into the arena.
// This runs only after the whole batch is decoded: the per-kind appends in
// decodeEventInto may relocate the typed slices mid-decode, so events carry
// nil pointers until every backing array has reached its final address.
//
//zerosum:wire-decode event
func fixupEventPayloads(events []export.Event, bb *BatchBuf) {
	var iL, iH, iG, iM, iI int
	for i := range events {
		switch events[i].Kind {
		case export.EventLWP:
			events[i].LWP = &bb.lwp[iL]
			iL++
		case export.EventHWT:
			events[i].HWT = &bb.hwt[iH]
			iH++
		case export.EventGPU:
			events[i].GPU = &bb.gpu[iG]
			iG++
		case export.EventMem:
			events[i].Mem = &bb.mem[iM]
			iM++
		case export.EventIO:
			events[i].IO = &bb.io[iI]
			iI++
		}
	}
}

// decodeEventInto decodes one event, appending its payload struct to the
// arena's per-kind slice. The returned event carries only Kind and TimeSec;
// DecodeBatchPayloadInto's fix-up pass wires the payload pointer once the
// arena slices stop moving.
//
//zerosum:wire-decode event
func decodeEventInto(d *decoder, bb *BatchBuf) (export.Event, error) {
	var ev export.Event
	tag, err := d.u8()
	if err != nil {
		return ev, err
	}
	if ev.TimeSec, err = d.f64(); err != nil {
		return ev, err
	}
	switch tag {
	case tagLWP:
		ev.Kind = export.EventLWP
		bb.lwp = append(bb.lwp, export.LWPSample{TimeSec: ev.TimeSec})
		l := &bb.lwp[len(bb.lwp)-1]
		if l.TID, err = d.i32(); err != nil {
			return ev, err
		}
		if l.Kind, err = d.strInterned(bb.strs); err != nil {
			return ev, err
		}
		if l.State, err = d.u8(); err != nil {
			return ev, err
		}
		// The stalled flag is the one v2→v3 layout change: a v2 sender
		// predates progress detection, so its threads decode as not stalled.
		if d.ver >= 3 {
			var stalled byte
			if stalled, err = d.u8(); err != nil {
				return ev, err
			}
			l.Stalled = stalled != 0
		}
		// The fixed-width tail (2 floats, 5 counters) is bounds-checked once
		// and decoded with direct loads; per-field reads dominated the
		// ingest profile.
		b, err := d.need(56)
		if err != nil {
			return ev, err
		}
		l.UserPct = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
		l.SysPct = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
		l.VCtx = binary.LittleEndian.Uint64(b[16:24])
		l.NVCtx = binary.LittleEndian.Uint64(b[24:32])
		l.MinFlt = binary.LittleEndian.Uint64(b[32:40])
		l.MajFlt = binary.LittleEndian.Uint64(b[40:48])
		l.NSwap = binary.LittleEndian.Uint64(b[48:56])
		if l.CPU, err = d.i32(); err != nil {
			return ev, err
		}
	case tagHWT:
		ev.Kind = export.EventHWT
		bb.hwt = append(bb.hwt, export.HWTSample{TimeSec: ev.TimeSec})
		h := &bb.hwt[len(bb.hwt)-1]
		if h.CPU, err = d.i32(); err != nil {
			return ev, err
		}
		b, err := d.need(24)
		if err != nil {
			return ev, err
		}
		h.IdlePct = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
		h.SysPct = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
		h.UserPct = math.Float64frombits(binary.LittleEndian.Uint64(b[16:24]))
	case tagGPU:
		ev.Kind = export.EventGPU
		bb.gpu = append(bb.gpu, export.GPUSample{TimeSec: ev.TimeSec})
		g := &bb.gpu[len(bb.gpu)-1]
		if g.GPU, err = d.i32(); err != nil {
			return ev, err
		}
		if g.Metric, err = d.strInterned(bb.strs); err != nil {
			return ev, err
		}
		if g.Value, err = d.f64(); err != nil {
			return ev, err
		}
	case tagMem:
		ev.Kind = export.EventMem
		bb.mem = append(bb.mem, export.MemSample{TimeSec: ev.TimeSec})
		m := &bb.mem[len(bb.mem)-1]
		b, err := d.need(40)
		if err != nil {
			return ev, err
		}
		m.TotalKB = binary.LittleEndian.Uint64(b[0:8])
		m.FreeKB = binary.LittleEndian.Uint64(b[8:16])
		m.AvailKB = binary.LittleEndian.Uint64(b[16:24])
		m.ProcRSSKB = binary.LittleEndian.Uint64(b[24:32])
		m.ProcHWMKB = binary.LittleEndian.Uint64(b[32:40])
	case tagIO:
		ev.Kind = export.EventIO
		bb.io = append(bb.io, export.IOSample{TimeSec: ev.TimeSec})
		io := &bb.io[len(bb.io)-1]
		b, err := d.need(48)
		if err != nil {
			return ev, err
		}
		io.RChar = binary.LittleEndian.Uint64(b[0:8])
		io.WChar = binary.LittleEndian.Uint64(b[8:16])
		io.SyscR = binary.LittleEndian.Uint64(b[16:24])
		io.SyscW = binary.LittleEndian.Uint64(b[24:32])
		io.ReadBytes = binary.LittleEndian.Uint64(b[32:40])
		io.WriteBytes = binary.LittleEndian.Uint64(b[40:48])
	case tagHeartbeat:
		ev.Kind = export.EventHeartbeat
	default:
		return ev, fmt.Errorf("unknown event tag %d", tag)
	}
	return ev, nil
}

// DecodeSnapshotPayload parses a FrameSnapshot payload.
func DecodeSnapshotPayload(payload []byte) (*SnapshotMsg, error) {
	var msg SnapshotMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return nil, fmt.Errorf("aggd: unmarshal snapshot: %w", err)
	}
	return &msg, nil
}
