package aggd

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/topology"
)

func sampleBatch() *Batch {
	return &Batch{
		Origin: Origin{Job: "job-42", Node: "node-0003", Rank: 7},
		Seq:    9,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1.5, LWP: &export.LWPSample{
				TimeSec: 1.5, TID: 1234, Kind: "Main, OpenMP", State: 'R',
				UserPct: 97.25, SysPct: 1.5, VCtx: 10, NVCtx: 20000,
				MinFlt: 3, MajFlt: 1, NSwap: 0, CPU: 33,
			}},
			{Kind: export.EventHWT, TimeSec: 1.5, HWT: &export.HWTSample{
				TimeSec: 1.5, CPU: 33, IdlePct: 2.5, SysPct: 0.5, UserPct: 97,
			}},
			{Kind: export.EventGPU, TimeSec: 1.5, GPU: &export.GPUSample{
				TimeSec: 1.5, GPU: 2, Metric: "Device Busy %", Value: 88.5,
			}},
			{Kind: export.EventMem, TimeSec: 2.5, Mem: &export.MemSample{
				TimeSec: 2.5, TotalKB: 1 << 29, FreeKB: 1 << 28,
				AvailKB: 1 << 27, ProcRSSKB: 4096, ProcHWMKB: 8192,
			}},
			{Kind: export.EventIO, TimeSec: 2.5, IO: &export.IOSample{
				TimeSec: 2.5, RChar: 1, WChar: 2, SyscR: 3, SyscW: 4,
				ReadBytes: 5, WriteBytes: 6,
			}},
			{Kind: export.EventHeartbeat, TimeSec: 3.5},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleBatch()
	frame, err := EncodeBatchFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	kind, ver, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameBatch || ver != WireVersion {
		t.Fatalf("kind = %d, ver = %d", kind, ver)
	}
	got, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	want := &Batch{Origin: Origin{Job: "j", Node: "n", Rank: -1}, Seq: 0}
	frame, err := EncodeBatchFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != -1 || got.Job != "j" || len(got.Events) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := &SnapshotMsg{
		Origin: Origin{Job: "job-42", Node: "node-0001", Rank: 3},
		Snapshot: core.Snapshot{
			DurationSec: 27.5, Rank: 3, Size: 8, PID: 4242,
			Hostname: "node-0001", Comm: "miniqmc",
			ProcessAff: topology.RangeCPUSet(1, 7),
			LWPs: []core.ThreadSummary{{
				TID: 4242, Label: "Main", Kind: core.KindMain,
				UTimePct: 93.5, STimePct: 2.25, NVCtx: 17, VCtx: 4,
				Affinity:     topology.NewCPUSet(1),
				ObservedCPUs: topology.NewCPUSet(1, 2),
				CPUChanges:   1, MinFlt: 12,
			}},
			HWTs:         []core.HWTSummary{{CPU: 1, IdlePct: 3, SysPct: 2, UserPct: 95}},
			MemPeakRSSKB: 1 << 20,
		},
		CommRow: map[int]uint64{2: 7 << 20, 4: 1 << 20},
	}
	frame, err := EncodeSnapshotFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	kind, _, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameSnapshot {
		t.Fatalf("kind = %d", kind)
	}
	got, err := DecodeSnapshotPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadFrameConcatenated(t *testing.T) {
	b := sampleBatch()
	var buf []byte
	var err error
	for i := 0; i < 3; i++ {
		b.Seq = uint64(i)
		if buf, err = AppendBatchFrame(buf, b); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	for i := 0; i < 3; i++ {
		_, _, payload, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeBatchPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d", i, got.Seq)
		}
	}
	if _, _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	frame, err := EncodeBatchFrame(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":   append([]byte("NOPE"), frame[4:]...),
		"bad version": append(append([]byte{}, frame[:4]...), append([]byte{99}, frame[5:]...)...),
		"truncated":   frame[:len(frame)-5],
	}
	for name, data := range cases {
		if _, _, _, err := ReadFrame(bytes.NewReader(data)); err == nil || err == io.EOF {
			t.Errorf("%s: want error, got %v", name, err)
		}
	}
}

func TestDecodeBatchPayloadRejectsTrailing(t *testing.T) {
	frame, err := EncodeBatchFrame(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatchPayload(append(payload, 0)); err == nil {
		t.Fatal("trailing byte not rejected")
	}
	if _, err := DecodeBatchPayload(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload not rejected")
	}
}

func TestEncodeRejectsNilPayload(t *testing.T) {
	b := &Batch{Events: []export.Event{{Kind: export.EventLWP}}}
	if _, err := EncodeBatchFrame(b); err == nil {
		t.Fatal("nil LWP payload not rejected")
	}
}

// v2BatchFrame encodes b as a wire-version-2 frame: the layout an agent
// from before the stalled flag (§3.3) ships, which the reader must keep
// accepting through a rolling upgrade.
func v2BatchFrame(t testing.TB, b *Batch) []byte {
	t.Helper()
	dst := appendHeader(nil, FrameBatch, 2)
	var err error
	if dst, err = appendString(dst, b.Job); err != nil {
		t.Fatal(err)
	}
	if dst, err = appendString(dst, b.Node); err != nil {
		t.Fatal(err)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(b.Rank)))
	dst = binary.LittleEndian.AppendUint64(dst, b.Epoch)
	dst = binary.LittleEndian.AppendUint64(dst, b.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Events)))
	for i := range b.Events {
		ev := &b.Events[i]
		if ev.Kind != export.EventLWP {
			t.Fatalf("v2BatchFrame only encodes LWP events, got kind %d", ev.Kind)
		}
		l := ev.LWP
		dst = append(dst, tagLWP)
		dst = appendF64(dst, ev.TimeSec)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l.TID)))
		if dst, err = appendString(dst, l.Kind); err != nil {
			t.Fatal(err)
		}
		dst = append(dst, l.State) // v2: no stalled byte after the state
		dst = appendF64(dst, l.UserPct)
		dst = appendF64(dst, l.SysPct)
		dst = binary.LittleEndian.AppendUint64(dst, l.VCtx)
		dst = binary.LittleEndian.AppendUint64(dst, l.NVCtx)
		dst = binary.LittleEndian.AppendUint64(dst, l.MinFlt)
		dst = binary.LittleEndian.AppendUint64(dst, l.MajFlt)
		dst = binary.LittleEndian.AppendUint64(dst, l.NSwap)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(l.CPU)))
	}
	frame, err := finishFrame(dst)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestDecodeBatchPayloadV2Compat(t *testing.T) {
	want := &Batch{
		Origin: Origin{Job: "roll", Node: "n1", Rank: 2},
		Epoch:  1, Seq: 4,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1.5, LWP: &export.LWPSample{
				TimeSec: 1.5, TID: 99, Kind: "Main", State: 'R',
				UserPct: 50, SysPct: 2, VCtx: 7, NVCtx: 11,
				MinFlt: 1, MajFlt: 0, NSwap: 0, CPU: 3,
			}},
		},
	}
	frame := v2BatchFrame(t, want)
	kind, ver, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameBatch || ver != 2 {
		t.Fatalf("kind = %d, ver = %d, want batch v2", kind, ver)
	}
	got, err := DecodeBatchPayloadVersionInto(payload, ver, new(BatchBuf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 decode mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Events[0].LWP.Stalled {
		t.Fatal("v2 LWP event decoded with Stalled=true")
	}
	// A v2 payload handed to the v3 decoder must not decode silently: the
	// missing stalled byte skews every later field.
	if _, err := DecodeBatchPayloadInto(payload, new(BatchBuf)); err == nil {
		t.Fatal("v3 decoder accepted a v2 payload")
	}
	// Out-of-range versions are rejected outright.
	if _, err := DecodeBatchPayloadVersionInto(payload, 1, new(BatchBuf)); err == nil {
		t.Fatal("version 1 not rejected")
	}
	if _, err := DecodeBatchPayloadVersionInto(payload, WireVersion+1, new(BatchBuf)); err == nil {
		t.Fatal("future version not rejected")
	}
}

// TestFrameScannerMixedVersions: one body interleaving v2, v3 and v4
// frames — the rolling-upgrade wire state — scans cleanly with Version
// tracking each frame.
func TestFrameScannerMixedVersions(t *testing.T) {
	v4 := sampleBatch()
	v4Frame, err := EncodeBatchFrame(v4)
	if err != nil {
		t.Fatal(err)
	}
	v3 := sampleBatch()
	v3.Seq = 5
	v3Frame, err := AppendBatchFrameVersion(nil, v3, 3)
	if err != nil {
		t.Fatal(err)
	}
	v2 := &Batch{
		Origin: Origin{Job: "roll", Node: "n2", Rank: 0},
		Epoch:  1, Seq: 9,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 2, LWP: &export.LWPSample{
				TimeSec: 2, TID: 7, Kind: "Other", State: 'S', CPU: 1,
			}},
		},
	}
	body := append(v2BatchFrame(t, v2), v3Frame...)
	body = append(body, v4Frame...)
	sc := NewFrameScanner(bytes.NewReader(body))

	wantVers := []uint8{2, 3, 4}
	wantSeqs := []uint64{9, 5, 9}
	for i := range wantVers {
		kind, payload, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != FrameBatch || sc.Version() != wantVers[i] {
			t.Fatalf("frame %d: kind %d version %d, want batch v%d", i, kind, sc.Version(), wantVers[i])
		}
		b, err := DecodeBatchPayloadVersionInto(payload, sc.Version(), new(BatchBuf))
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if b.Seq != wantSeqs[i] {
			t.Fatalf("frame %d: seq %d, want %d", i, b.Seq, wantSeqs[i])
		}
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
