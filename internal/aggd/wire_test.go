package aggd

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/topology"
)

func sampleBatch() *Batch {
	return &Batch{
		Origin: Origin{Job: "job-42", Node: "node-0003", Rank: 7},
		Seq:    9,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1.5, LWP: &export.LWPSample{
				TimeSec: 1.5, TID: 1234, Kind: "Main, OpenMP", State: 'R',
				UserPct: 97.25, SysPct: 1.5, VCtx: 10, NVCtx: 20000,
				MinFlt: 3, MajFlt: 1, NSwap: 0, CPU: 33,
			}},
			{Kind: export.EventHWT, TimeSec: 1.5, HWT: &export.HWTSample{
				TimeSec: 1.5, CPU: 33, IdlePct: 2.5, SysPct: 0.5, UserPct: 97,
			}},
			{Kind: export.EventGPU, TimeSec: 1.5, GPU: &export.GPUSample{
				TimeSec: 1.5, GPU: 2, Metric: "Device Busy %", Value: 88.5,
			}},
			{Kind: export.EventMem, TimeSec: 2.5, Mem: &export.MemSample{
				TimeSec: 2.5, TotalKB: 1 << 29, FreeKB: 1 << 28,
				AvailKB: 1 << 27, ProcRSSKB: 4096, ProcHWMKB: 8192,
			}},
			{Kind: export.EventIO, TimeSec: 2.5, IO: &export.IOSample{
				TimeSec: 2.5, RChar: 1, WChar: 2, SyscR: 3, SyscW: 4,
				ReadBytes: 5, WriteBytes: 6,
			}},
			{Kind: export.EventHeartbeat, TimeSec: 3.5},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	want := sampleBatch()
	frame, err := EncodeBatchFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameBatch {
		t.Fatalf("kind = %d", kind)
	}
	got, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	want := &Batch{Origin: Origin{Job: "j", Node: "n", Rank: -1}, Seq: 0}
	frame, err := EncodeBatchFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != -1 || got.Job != "j" || len(got.Events) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := &SnapshotMsg{
		Origin: Origin{Job: "job-42", Node: "node-0001", Rank: 3},
		Snapshot: core.Snapshot{
			DurationSec: 27.5, Rank: 3, Size: 8, PID: 4242,
			Hostname: "node-0001", Comm: "miniqmc",
			ProcessAff: topology.RangeCPUSet(1, 7),
			LWPs: []core.ThreadSummary{{
				TID: 4242, Label: "Main", Kind: core.KindMain,
				UTimePct: 93.5, STimePct: 2.25, NVCtx: 17, VCtx: 4,
				Affinity:     topology.NewCPUSet(1),
				ObservedCPUs: topology.NewCPUSet(1, 2),
				CPUChanges:   1, MinFlt: 12,
			}},
			HWTs:         []core.HWTSummary{{CPU: 1, IdlePct: 3, SysPct: 2, UserPct: 95}},
			MemPeakRSSKB: 1 << 20,
		},
		CommRow: map[int]uint64{2: 7 << 20, 4: 1 << 20},
	}
	frame, err := EncodeSnapshotFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if kind != FrameSnapshot {
		t.Fatalf("kind = %d", kind)
	}
	got, err := DecodeSnapshotPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadFrameConcatenated(t *testing.T) {
	b := sampleBatch()
	var buf []byte
	var err error
	for i := 0; i < 3; i++ {
		b.Seq = uint64(i)
		if buf, err = AppendBatchFrame(buf, b); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	for i := 0; i < 3; i++ {
		_, payload, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := DecodeBatchPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seq != uint64(i) {
			t.Fatalf("frame %d has seq %d", i, got.Seq)
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	frame, err := EncodeBatchFrame(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bad magic":   append([]byte("NOPE"), frame[4:]...),
		"bad version": append(append([]byte{}, frame[:4]...), append([]byte{99}, frame[5:]...)...),
		"truncated":   frame[:len(frame)-5],
	}
	for name, data := range cases {
		if _, _, err := ReadFrame(bytes.NewReader(data)); err == nil || err == io.EOF {
			t.Errorf("%s: want error, got %v", name, err)
		}
	}
}

func TestDecodeBatchPayloadRejectsTrailing(t *testing.T) {
	frame, err := EncodeBatchFrame(sampleBatch())
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBatchPayload(append(payload, 0)); err == nil {
		t.Fatal("trailing byte not rejected")
	}
	if _, err := DecodeBatchPayload(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload not rejected")
	}
}

func TestEncodeRejectsNilPayload(t *testing.T) {
	b := &Batch{Events: []export.Event{{Kind: export.EventLWP}}}
	if _, err := EncodeBatchFrame(b); err == nil {
		t.Fatal("nil LWP payload not rejected")
	}
}
