package aggd

// Wire version 4: the bytes-per-sample format. A v3 batch spends most of
// its bytes on fixed-width fields that barely change between samples of the
// same stream — 8-byte counters that tick up by single digits, float
// percentages that repeat, label strings resent on every event. Version 4
// removes that redundancy with two per-batch mechanisms:
//
//   - a field dictionary: every string the batch carries (job, node, LWP
//     kinds, GPU metric labels) is emitted once, in first-use order, at the
//     head of the payload; events refer to strings by varint index;
//   - per-stream delta prediction: each event is encoded against the
//     previous sample of its own stream within the batch (LWP streams keyed
//     by TID, HWT by CPU, GPU by device+metric, Mem/IO as single streams).
//     Integer counters become zigzag varints of the difference (uint64
//     wraparound, so the mapping is bijective); float values become varints
//     of the byte-swapped XOR against the stream's previous bit pattern
//     (byte-swapping moves a "round" value's trailing zero mantissa bytes
//     into the varint's droppable high positions); event timestamps are
//     delta-of-delta coded on their raw bit patterns (zigzag varint of the
//     change in the uint64 difference between consecutive events' time
//     bits), because a steady sampling cadence makes the bit-space stride
//     between samples almost constant — the second difference is usually
//     zero and costs one byte.
//
// Prediction state resets at every batch boundary: a v4 frame is
// self-contained, so a retried or reordered shipment decodes identically —
// the property the server's sequence dedup and the chaos soaks depend on.
//
// Decoding is strict enough that every accepted payload is in canonical
// form (minimal varints, dictionary exactly in first-use order with no
// duplicate or unused entries): decode∘encode is the identity on valid
// frames, which is what lets FuzzWireDecode pin the format byte-for-byte.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"zerosum/internal/export"
)

// v4MaxStrings bounds a batch dictionary (and each entry's length) to the
// same 64Ki limit the v2/v3 length-prefixed strings had. The encoder
// enforces it so the decoder may reject bigger claims as hostile without
// ever breaking a legitimate sender.
const v4MaxStrings = math.MaxUint16

func zigzag64(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag64(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// v4LWPPred is one LWP stream's prediction state: the previous sample's
// value fields, keyed by TID on both sides of the codec.
type v4LWPPred struct {
	userBits, sysBits                  uint64
	vctx, nvctx, minflt, majflt, nswap uint64
	cpu                                int64
}

type v4HWTPred struct {
	idleBits, sysBits, userBits uint64
}

type v4MemPred struct {
	total, free, avail, rss, hwm uint64
}

type v4IOPred struct {
	rchar, wchar, syscr, syscw, rbytes, wbytes uint64
}

// v4Streams holds the keyed predictor tables. Both codec directions embed
// one; the maps are cleared (retaining their buckets) at each batch
// boundary so warm reuse stays allocation-free. Predictor state lives in
// slices with the maps holding indices, so the per-event path pays one map
// hash (the lookup) and then mutates through a pointer — a map of structs
// would cost a second hash plus a full struct copy on every write-back.
type v4Streams struct {
	lwpIdx map[int64]int32
	lwp    []v4LWPPred
	hwtIdx map[int64]int32
	hwt    []v4HWTPred
	gpu    map[uint64]uint64 // (gpu id << 32 | metric ref) -> previous value bits
}

func (s *v4Streams) reset() {
	if s.lwpIdx == nil {
		s.lwpIdx = make(map[int64]int32)
		s.hwtIdx = make(map[int64]int32)
		s.gpu = make(map[uint64]uint64)
	} else {
		clear(s.lwpIdx)
		clear(s.hwtIdx)
		clear(s.gpu)
	}
	s.lwp = s.lwp[:0]
	s.hwt = s.hwt[:0]
}

// lwpFor returns the (pointer-stable for the duration of one event) LWP
// stream predictor for tid, zero-valued on first use.
//
//zerosum:hotpath
func (s *v4Streams) lwpFor(tid int64) *v4LWPPred {
	if i, ok := s.lwpIdx[tid]; ok {
		return &s.lwp[i]
	}
	i := int32(len(s.lwp))
	s.lwp = append(s.lwp, v4LWPPred{})
	s.lwpIdx[tid] = i
	return &s.lwp[i]
}

//zerosum:hotpath
func (s *v4Streams) hwtFor(cpu int64) *v4HWTPred {
	if i, ok := s.hwtIdx[cpu]; ok {
		return &s.hwt[i]
	}
	i := int32(len(s.hwt))
	s.hwt = append(s.hwt, v4HWTPred{})
	s.hwtIdx[cpu] = i
	return &s.hwt[i]
}

// v4Scalar is the unkeyed per-batch prediction state, held on the stack of
// one encode or decode call.
type v4Scalar struct {
	timeBits  uint64 // previous event's timestamp bits (any kind)
	timeDelta uint64 // previous event-to-event stride in bit space
	lastTID   int64  // previous LWP event's TID
	lastCPU   int64  // previous HWT event's CPU
	lastGPU   int64  // previous GPU event's device id
	mem       v4MemPred
	io        v4IOPred
}

// appendTimeDelta encodes an event timestamp by delta-of-delta on the raw
// float bits: all arithmetic is uint64 wraparound, so the coding is exact
// and bijective for any bit pattern (NaNs included).
//
//zerosum:hotpath
func appendTimeDelta(dst []byte, tb uint64, sc *v4Scalar) []byte {
	db := tb - sc.timeBits
	dst = appendUvarint(dst, zigzag64(int64(db-sc.timeDelta)))
	sc.timeDelta = db
	sc.timeBits = tb
	return dst
}

//zerosum:hotpath
func (d *decoder) timeDelta(sc *v4Scalar) (uint64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	db := sc.timeDelta + uint64(unzigzag64(u))
	sc.timeDelta = db
	sc.timeBits += db
	return sc.timeBits, nil
}

// v4Encoder is the pooled scratch state of one appendBatchPayloadV4 call:
// the dictionary under construction and the body buffer the events render
// into while string refs are still being assigned (the dictionary must
// precede the events on the wire, but is only complete once the last event
// has been walked).
type v4Encoder struct {
	dict    map[string]uint64
	strs    []string
	body    []byte
	streams v4Streams
}

var v4EncPool = sync.Pool{New: func() any { return new(v4Encoder) }}

func (e *v4Encoder) reset() {
	if e.dict == nil {
		e.dict = make(map[string]uint64)
	} else {
		clear(e.dict)
	}
	e.strs = e.strs[:0]
	e.body = e.body[:0]
	e.streams.reset()
}

// ref interns s into the batch dictionary, assigning indices in first-use
// order (the canonical order the decoder enforces).
func (e *v4Encoder) ref(s string) (uint64, error) {
	if r, ok := e.dict[s]; ok {
		return r, nil
	}
	if len(s) > v4MaxStrings {
		return 0, fmt.Errorf("aggd: string field of %d bytes too long", len(s))
	}
	if len(e.strs) >= v4MaxStrings {
		return 0, fmt.Errorf("aggd: batch dictionary exceeds %d strings", v4MaxStrings)
	}
	r := uint64(len(e.strs))
	e.dict[s] = r
	e.strs = append(e.strs, s)
	return r, nil
}

// appendF64Delta encodes a value float against its stream predictor:
// byte-swapped XOR, so unchanged values cost one byte and "round" values a
// few. Returns the new bits for the predictor update.
//
//zerosum:hotpath
func appendF64Delta(dst []byte, v float64, prevBits uint64) ([]byte, uint64) {
	b := math.Float64bits(v)
	return appendUvarint(dst, bits.ReverseBytes64(b^prevBits)), b
}

// appendCtrDelta encodes a cumulative counter against its predictor as the
// zigzag varint of the wrapped difference — bijective on uint64, so the
// decoder recovers the exact value and re-encodes the exact bytes.
//
//zerosum:hotpath
func appendCtrDelta(dst []byte, v, prev uint64) []byte {
	return appendUvarint(dst, zigzag64(int64(v-prev)))
}

// appendBatchPayloadV4 appends the bare v4 batch payload encoding.
//
//zerosum:hotpath
//zerosum:wire-encode batch
func appendBatchPayloadV4(dst []byte, b *Batch) ([]byte, error) {
	e := v4EncPool.Get().(*v4Encoder)
	e.reset()
	body, err := e.appendBody(e.body[:0], b)
	if err != nil {
		v4EncPool.Put(e)
		return nil, err
	}
	e.body = body
	dst = appendUvarint(dst, uint64(len(e.strs)))
	for _, s := range e.strs {
		dst = appendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	dst = append(dst, body...)
	v4EncPool.Put(e)
	return dst, nil
}

// appendBody renders the post-dictionary section (origin, sequence, events)
// while assigning dictionary refs in first-use order.
//
//zerosum:hotpath
//zerosum:wire-encode batch
func (e *v4Encoder) appendBody(dst []byte, b *Batch) ([]byte, error) {
	jobRef, err := e.ref(b.Job)
	if err != nil {
		return nil, err
	}
	nodeRef, err := e.ref(b.Node)
	if err != nil {
		return nil, err
	}
	dst = appendUvarint(dst, jobRef)
	dst = appendUvarint(dst, nodeRef)
	dst = appendUvarint(dst, zigzag64(int64(b.Rank)))
	dst = appendUvarint(dst, b.Epoch)
	dst = appendUvarint(dst, b.Seq)
	dst = appendUvarint(dst, uint64(len(b.Events)))
	var sc v4Scalar
	for i := range b.Events {
		if dst, err = e.appendEventV4(dst, &sc, &b.Events[i]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

//zerosum:hotpath
//zerosum:wire-encode event
func (e *v4Encoder) appendEventV4(dst []byte, sc *v4Scalar, ev *export.Event) ([]byte, error) {
	tb := math.Float64bits(ev.TimeSec)
	switch ev.Kind {
	case export.EventLWP:
		l := ev.LWP
		if l == nil {
			return nil, fmt.Errorf("aggd: LWP event with nil payload")
		}
		kindRef, err := e.ref(l.Kind)
		if err != nil {
			return nil, err
		}
		dst = append(dst, tagLWP)
		dst = appendTimeDelta(dst, tb, sc)
		dst = appendUvarint(dst, zigzag64(int64(l.TID)-sc.lastTID))
		sc.lastTID = int64(l.TID)
		dst = appendUvarint(dst, kindRef)
		// State is an ASCII /proc state char, so its high bit is free to
		// carry the §3.3 stalled flag.
		st := l.State &^ 0x80
		if l.Stalled {
			st |= 0x80
		}
		dst = append(dst, st)
		p := e.streams.lwpFor(int64(l.TID))
		dst, p.userBits = appendF64Delta(dst, l.UserPct, p.userBits)
		dst, p.sysBits = appendF64Delta(dst, l.SysPct, p.sysBits)
		dst = appendCtrDelta(dst, l.VCtx, p.vctx)
		dst = appendCtrDelta(dst, l.NVCtx, p.nvctx)
		dst = appendCtrDelta(dst, l.MinFlt, p.minflt)
		dst = appendCtrDelta(dst, l.MajFlt, p.majflt)
		dst = appendCtrDelta(dst, l.NSwap, p.nswap)
		dst = appendUvarint(dst, zigzag64(int64(l.CPU)-p.cpu))
		p.vctx, p.nvctx, p.minflt, p.majflt, p.nswap = l.VCtx, l.NVCtx, l.MinFlt, l.MajFlt, l.NSwap
		p.cpu = int64(l.CPU)
	case export.EventHWT:
		h := ev.HWT
		if h == nil {
			return nil, fmt.Errorf("aggd: HWT event with nil payload")
		}
		dst = append(dst, tagHWT)
		dst = appendTimeDelta(dst, tb, sc)
		dst = appendUvarint(dst, zigzag64(int64(h.CPU)-sc.lastCPU))
		sc.lastCPU = int64(h.CPU)
		p := e.streams.hwtFor(int64(h.CPU))
		dst, p.idleBits = appendF64Delta(dst, h.IdlePct, p.idleBits)
		dst, p.sysBits = appendF64Delta(dst, h.SysPct, p.sysBits)
		dst, p.userBits = appendF64Delta(dst, h.UserPct, p.userBits)
	case export.EventGPU:
		g := ev.GPU
		if g == nil {
			return nil, fmt.Errorf("aggd: GPU event with nil payload")
		}
		metricRef, err := e.ref(g.Metric)
		if err != nil {
			return nil, err
		}
		dst = append(dst, tagGPU)
		dst = appendTimeDelta(dst, tb, sc)
		dst = appendUvarint(dst, zigzag64(int64(g.GPU)-sc.lastGPU))
		sc.lastGPU = int64(g.GPU)
		dst = appendUvarint(dst, metricRef)
		gk := uint64(uint32(g.GPU))<<32 | metricRef
		var vb uint64
		dst, vb = appendF64Delta(dst, g.Value, e.streams.gpu[gk])
		e.streams.gpu[gk] = vb
	case export.EventMem:
		m := ev.Mem
		if m == nil {
			return nil, fmt.Errorf("aggd: Mem event with nil payload")
		}
		dst = append(dst, tagMem)
		dst = appendTimeDelta(dst, tb, sc)
		p := &sc.mem
		dst = appendCtrDelta(dst, m.TotalKB, p.total)
		dst = appendCtrDelta(dst, m.FreeKB, p.free)
		dst = appendCtrDelta(dst, m.AvailKB, p.avail)
		dst = appendCtrDelta(dst, m.ProcRSSKB, p.rss)
		dst = appendCtrDelta(dst, m.ProcHWMKB, p.hwm)
		*p = v4MemPred{total: m.TotalKB, free: m.FreeKB, avail: m.AvailKB, rss: m.ProcRSSKB, hwm: m.ProcHWMKB}
	case export.EventIO:
		io := ev.IO
		if io == nil {
			return nil, fmt.Errorf("aggd: IO event with nil payload")
		}
		dst = append(dst, tagIO)
		dst = appendTimeDelta(dst, tb, sc)
		p := &sc.io
		dst = appendCtrDelta(dst, io.RChar, p.rchar)
		dst = appendCtrDelta(dst, io.WChar, p.wchar)
		dst = appendCtrDelta(dst, io.SyscR, p.syscr)
		dst = appendCtrDelta(dst, io.SyscW, p.syscw)
		dst = appendCtrDelta(dst, io.ReadBytes, p.rbytes)
		dst = appendCtrDelta(dst, io.WriteBytes, p.wbytes)
		*p = v4IOPred{rchar: io.RChar, wchar: io.WChar, syscr: io.SyscR,
			syscw: io.SyscW, rbytes: io.ReadBytes, wbytes: io.WriteBytes}
	case export.EventHeartbeat:
		dst = append(dst, tagHeartbeat)
		dst = appendTimeDelta(dst, tb, sc)
	default:
		return nil, fmt.Errorf("aggd: unknown event kind %d", ev.Kind)
	}
	return dst, nil
}

// uvarint reads a canonical (minimal-length) base-128 varint. A non-minimal
// encoding — a redundant trailing zero group, or a tenth byte carrying bits
// past the 64th — is rejected so every accepted payload has exactly one
// byte representation. Delta encoding makes single-byte varints the common
// case by far, so that path is inlined here and the loop outlined: going
// through u8/need per byte was the top entry on the decode profile.
//
//zerosum:hotpath
func (d *decoder) uvarint() (uint64, error) {
	if off := d.off; off < len(d.buf) {
		if b := d.buf[off]; b < 0x80 {
			d.off = off + 1
			return uint64(b), nil
		}
	}
	return d.uvarintSlow()
}

//zerosum:hotpath
func (d *decoder) uvarintSlow() (uint64, error) {
	buf, off := d.buf, d.off
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		if off >= len(buf) {
			d.off = off
			return 0, d.short(1)
		}
		b := buf[off]
		off++
		if i == 9 && b > 1 {
			d.off = off
			return 0, fmt.Errorf("aggd: varint overflows 64 bits at offset %d", off)
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			d.off = off
			if b == 0 && i > 0 {
				return 0, fmt.Errorf("aggd: non-minimal varint at offset %d", off)
			}
			return v, nil
		}
		shift += 7
	}
	d.off = off
	return 0, fmt.Errorf("aggd: varint longer than 10 bytes at offset %d", off)
}

// appendUvarint is binary.AppendUvarint with the same single-byte fast path
// the decoder has: after delta prediction most fields fit in one byte, and
// the stdlib's general loop shows up on the encode profile.
//
//zerosum:hotpath
func appendUvarint(dst []byte, v uint64) []byte {
	if v < 0x80 {
		return append(dst, byte(v))
	}
	return binary.AppendUvarint(dst, v)
}

func (d *decoder) zigzag() (int64, error) {
	u, err := d.uvarint()
	return unzigzag64(u), err
}

// f64Delta decodes a value float against its stream predictor, returning
// the value and its bits (the predictor update).
//
//zerosum:hotpath
func (d *decoder) f64Delta(prevBits uint64) (float64, uint64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	b := bits.ReverseBytes64(u) ^ prevBits
	return math.Float64frombits(b), b, nil
}

//zerosum:hotpath
func (d *decoder) ctrDelta(prev uint64) (uint64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return prev + uint64(unzigzag64(u)), nil
}

// dictRef reads a dictionary reference and resolves it under the canonical
// first-use-order rule.
//
//zerosum:hotpath
func (d *decoder) dictRef(bb *BatchBuf) (string, error) {
	r, err := d.uvarint()
	if err != nil {
		return "", err
	}
	return d.resolveRef(bb, r)
}

// resolveRef enforces the canonical first-use order on a dictionary
// reference: a reference may only step one past the highest index used so
// far, and the batch must end with every entry used. Anything else could
// not have come out of the encoder and is rejected.
//
//zerosum:hotpath
func (d *decoder) resolveRef(bb *BatchBuf, r uint64) (string, error) {
	if r >= uint64(len(bb.dict)) {
		return "", fmt.Errorf("aggd: dictionary ref %d of %d at offset %d", r, len(bb.dict), d.off)
	}
	if r > uint64(bb.dictUsed) {
		return "", fmt.Errorf("aggd: dictionary ref %d out of first-use order at offset %d", r, d.off)
	}
	if r == uint64(bb.dictUsed) {
		bb.dictUsed++
	}
	return bb.dict[r], nil
}

// decodeBatchPayloadV4Into parses a v4 batch payload into bb.
//
//zerosum:hotpath
//zerosum:wire-decode batch
func decodeBatchPayloadV4Into(payload []byte, bb *BatchBuf) (*Batch, error) {
	bb.reset()
	bb.resetV4()
	d := &decoder{buf: payload, ver: 4}
	b := &bb.batch

	nStr, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every dictionary entry costs at least its one-byte length prefix, so
	// a count the remaining bytes cannot hold is a lie; the encoder also
	// never emits more than v4MaxStrings entries, so a bigger claim cannot
	// round-trip and is rejected as hostile.
	if nStr > v4MaxStrings || int64(nStr) > int64(len(payload)-d.off) {
		return nil, fmt.Errorf("aggd: batch claims %d dictionary strings in %d bytes", nStr, len(payload)-d.off)
	}
	for i := uint64(0); i < nStr; i++ {
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > v4MaxStrings {
			return nil, fmt.Errorf("aggd: dictionary string %d claims %d bytes", i, n)
		}
		raw, err := d.need(int(n))
		if err != nil {
			return nil, err
		}
		s, ok := bb.strs[string(raw)]
		if !ok {
			s = string(raw)
			if len(bb.strs) < maxInterned {
				bb.strs[s] = s
			}
		}
		if bb.dictSeen[s] {
			return nil, fmt.Errorf("aggd: duplicate dictionary string %q", s)
		}
		bb.dictSeen[s] = true
		bb.dict = append(bb.dict, s)
	}

	if b.Job, err = d.dictRef(bb); err != nil {
		return nil, err
	}
	if b.Node, err = d.dictRef(bb); err != nil {
		return nil, err
	}
	rank, err := d.zigzag()
	if err != nil {
		return nil, err
	}
	b.Rank = int(rank)
	// Rank must survive the int32 round-trip the encoder applies; a wider
	// claim could not have been sent and would not re-encode canonically.
	if int64(int32(b.Rank)) != rank {
		return nil, fmt.Errorf("aggd: rank %d overflows int32", rank)
	}
	if b.Epoch, err = d.uvarint(); err != nil {
		return nil, err
	}
	if b.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Every v4 event costs at least its tag byte plus one timestamp byte.
	const minEventLen = 2
	if int64(n)*minEventLen > int64(len(payload)-d.off) {
		return nil, fmt.Errorf("aggd: batch claims %d events in %d bytes", n, len(payload)-d.off)
	}
	var sc v4Scalar
	events := b.Events
	for i := uint64(0); i < n; i++ {
		events = append(events, export.Event{})
		if err := decodeEventV4Into(d, &sc, bb, &events[len(events)-1]); err != nil {
			return nil, fmt.Errorf("aggd: event %d: %w", i, err)
		}
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("aggd: %d trailing bytes after batch", len(payload)-d.off)
	}
	if bb.dictUsed != len(bb.dict) {
		return nil, fmt.Errorf("aggd: %d of %d dictionary strings unused", len(bb.dict)-bb.dictUsed, len(bb.dict))
	}
	b.Events = events
	fixupEventPayloads(events, bb)
	return b, nil
}

// decodeEventV4Into decodes one v4 event, appending its payload struct to
// the arena's per-kind slice (the fix-up pass wires the pointers once the
// slices stop moving, as in v2/v3).
//
//zerosum:hotpath
//zerosum:wire-decode event
func decodeEventV4Into(d *decoder, sc *v4Scalar, bb *BatchBuf, ev *export.Event) error {
	tag, err := d.u8()
	if err != nil {
		return err
	}
	tb, err := d.timeDelta(sc)
	if err != nil {
		return err
	}
	ev.TimeSec = math.Float64frombits(tb)
	switch tag {
	case tagLWP:
		ev.Kind = export.EventLWP
		bb.lwp = append(bb.lwp, export.LWPSample{TimeSec: ev.TimeSec})
		l := &bb.lwp[len(bb.lwp)-1]
		dt, err := d.zigzag()
		if err != nil {
			return err
		}
		tid := sc.lastTID + dt
		sc.lastTID = tid
		l.TID = int(tid)
		if int64(int32(l.TID)) != tid {
			return fmt.Errorf("TID %d overflows int32", tid)
		}
		if l.Kind, err = d.dictRef(bb); err != nil {
			return err
		}
		st, err := d.u8()
		if err != nil {
			return err
		}
		l.State = st &^ 0x80
		l.Stalled = st&0x80 != 0
		p := bb.streams.lwpFor(tid)
		if l.UserPct, p.userBits, err = d.f64Delta(p.userBits); err != nil {
			return err
		}
		if l.SysPct, p.sysBits, err = d.f64Delta(p.sysBits); err != nil {
			return err
		}
		if l.VCtx, err = d.ctrDelta(p.vctx); err != nil {
			return err
		}
		if l.NVCtx, err = d.ctrDelta(p.nvctx); err != nil {
			return err
		}
		if l.MinFlt, err = d.ctrDelta(p.minflt); err != nil {
			return err
		}
		if l.MajFlt, err = d.ctrDelta(p.majflt); err != nil {
			return err
		}
		if l.NSwap, err = d.ctrDelta(p.nswap); err != nil {
			return err
		}
		dc, err := d.zigzag()
		if err != nil {
			return err
		}
		cpu := p.cpu + dc
		l.CPU = int(cpu)
		if int64(int32(l.CPU)) != cpu {
			return fmt.Errorf("CPU %d overflows int32", cpu)
		}
		p.vctx, p.nvctx, p.minflt, p.majflt, p.nswap = l.VCtx, l.NVCtx, l.MinFlt, l.MajFlt, l.NSwap
		p.cpu = cpu
	case tagHWT:
		ev.Kind = export.EventHWT
		bb.hwt = append(bb.hwt, export.HWTSample{TimeSec: ev.TimeSec})
		h := &bb.hwt[len(bb.hwt)-1]
		dc, err := d.zigzag()
		if err != nil {
			return err
		}
		cpu := sc.lastCPU + dc
		sc.lastCPU = cpu
		h.CPU = int(cpu)
		if int64(int32(h.CPU)) != cpu {
			return fmt.Errorf("CPU %d overflows int32", cpu)
		}
		p := bb.streams.hwtFor(cpu)
		if h.IdlePct, p.idleBits, err = d.f64Delta(p.idleBits); err != nil {
			return err
		}
		if h.SysPct, p.sysBits, err = d.f64Delta(p.sysBits); err != nil {
			return err
		}
		if h.UserPct, p.userBits, err = d.f64Delta(p.userBits); err != nil {
			return err
		}
	case tagGPU:
		ev.Kind = export.EventGPU
		bb.gpu = append(bb.gpu, export.GPUSample{TimeSec: ev.TimeSec})
		g := &bb.gpu[len(bb.gpu)-1]
		dg, err := d.zigzag()
		if err != nil {
			return err
		}
		id := sc.lastGPU + dg
		sc.lastGPU = id
		g.GPU = int(id)
		if int64(int32(g.GPU)) != id {
			return fmt.Errorf("GPU id %d overflows int32", id)
		}
		// The metric ref doubles as half the predictor key, so it is read
		// raw and then resolved.
		r, err := d.uvarint()
		if err != nil {
			return err
		}
		if g.Metric, err = d.resolveRef(bb, r); err != nil {
			return err
		}
		gk := uint64(uint32(g.GPU))<<32 | r
		var vb uint64
		if g.Value, vb, err = d.f64Delta(bb.streams.gpu[gk]); err != nil {
			return err
		}
		bb.streams.gpu[gk] = vb
	case tagMem:
		ev.Kind = export.EventMem
		bb.mem = append(bb.mem, export.MemSample{TimeSec: ev.TimeSec})
		m := &bb.mem[len(bb.mem)-1]
		p := &sc.mem
		if m.TotalKB, err = d.ctrDelta(p.total); err != nil {
			return err
		}
		if m.FreeKB, err = d.ctrDelta(p.free); err != nil {
			return err
		}
		if m.AvailKB, err = d.ctrDelta(p.avail); err != nil {
			return err
		}
		if m.ProcRSSKB, err = d.ctrDelta(p.rss); err != nil {
			return err
		}
		if m.ProcHWMKB, err = d.ctrDelta(p.hwm); err != nil {
			return err
		}
		*p = v4MemPred{total: m.TotalKB, free: m.FreeKB, avail: m.AvailKB, rss: m.ProcRSSKB, hwm: m.ProcHWMKB}
	case tagIO:
		ev.Kind = export.EventIO
		bb.io = append(bb.io, export.IOSample{TimeSec: ev.TimeSec})
		io := &bb.io[len(bb.io)-1]
		p := &sc.io
		if io.RChar, err = d.ctrDelta(p.rchar); err != nil {
			return err
		}
		if io.WChar, err = d.ctrDelta(p.wchar); err != nil {
			return err
		}
		if io.SyscR, err = d.ctrDelta(p.syscr); err != nil {
			return err
		}
		if io.SyscW, err = d.ctrDelta(p.syscw); err != nil {
			return err
		}
		if io.ReadBytes, err = d.ctrDelta(p.rbytes); err != nil {
			return err
		}
		if io.WriteBytes, err = d.ctrDelta(p.wbytes); err != nil {
			return err
		}
		*p = v4IOPred{rchar: io.RChar, wchar: io.WChar, syscr: io.SyscR,
			syscw: io.SyscW, rbytes: io.ReadBytes, wbytes: io.WriteBytes}
	case tagHeartbeat:
		ev.Kind = export.EventHeartbeat
	default:
		return fmt.Errorf("unknown event tag %d", tag)
	}
	return nil
}
