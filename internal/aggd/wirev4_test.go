package aggd

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"zerosum/internal/export"
)

// steadyStateBatch models the wire traffic of a real monitored tick
// cadence: the same LWP/HWT/Mem streams sampled over and over with slowly
// moving counters — the workload the delta encoding is built for.
func steadyStateBatch() *Batch {
	b := &Batch{
		Origin: Origin{Job: "job-42", Node: "node-0003", Rank: 7},
		Epoch:  1,
	}
	for tick := 0; tick < 32; tick++ {
		t := 100.0 + float64(tick)
		for tid := 0; tid < 8; tid++ {
			b.Events = append(b.Events, export.Event{Kind: export.EventLWP, TimeSec: t,
				LWP: &export.LWPSample{TimeSec: t, TID: 4200 + tid, Kind: "OpenMP", State: 'R',
					UserPct: 98, SysPct: 1.5, VCtx: uint64(10*tick + tid), NVCtx: uint64(1000 * tick),
					MinFlt: uint64(34 + tick), CPU: tid}})
		}
		for cpu := 0; cpu < 4; cpu++ {
			b.Events = append(b.Events, export.Event{Kind: export.EventHWT, TimeSec: t,
				HWT: &export.HWTSample{TimeSec: t, CPU: cpu, IdlePct: 2.5, SysPct: 0.5, UserPct: 97}})
		}
		b.Events = append(b.Events, export.Event{Kind: export.EventMem, TimeSec: t,
			Mem: &export.MemSample{TimeSec: t, TotalKB: 64 << 20, FreeKB: uint64(32<<20 - 100*tick),
				AvailKB: 48 << 20, ProcRSSKB: uint64(1<<20 + 512*tick), ProcHWMKB: 2 << 20}})
	}
	return b
}

// TestWireV4CompressionRatio pins the headline property of the format: on
// the steady-state workload fixture, v4 spends at most half the bytes per
// sample v3 did.
func TestWireV4CompressionRatio(t *testing.T) {
	b := steadyStateBatch()
	v4, err := AppendBatchFrameVersion(nil, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := AppendBatchFrameVersion(nil, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(v4)) / float64(len(v3))
	t.Logf("v4 %d bytes, v3 %d bytes, ratio %.3f (%.2f vs %.2f bytes/event)",
		len(v4), len(v3), ratio,
		float64(len(v4))/float64(len(b.Events)), float64(len(v3))/float64(len(b.Events)))
	if ratio > 0.5 {
		t.Fatalf("v4/v3 = %.3f, want <= 0.5", ratio)
	}
}

// TestWireV4RoundTripEdgeValues: the field codings are bijective, so the
// awkward corners — stalled flags riding the state byte's high bit,
// negative ranks, counters that wrap, NaN and signed-zero floats — must
// survive encode → decode → encode unchanged.
func TestWireV4RoundTripEdgeValues(t *testing.T) {
	want := &Batch{
		Origin: Origin{Job: "j", Node: "n", Rank: -3},
		Epoch:  math.MaxUint64,
		Seq:    1 << 40,
		Events: []export.Event{
			{Kind: export.EventLWP, TimeSec: 1.25, LWP: &export.LWPSample{
				TimeSec: 1.25, TID: 2147483647, Kind: "Main", State: 'R', Stalled: true,
				UserPct: math.NaN(), SysPct: math.Copysign(0, -1),
				VCtx: math.MaxUint64, NVCtx: 1, CPU: 127,
			}},
			{Kind: export.EventLWP, TimeSec: 1.25, LWP: &export.LWPSample{
				TimeSec: 1.25, TID: 2147483647, Kind: "Main", State: 'S', Stalled: false,
				VCtx: 0, // wraps from MaxUint64: delta -1... still exact
				CPU:  0,
			}},
			{Kind: export.EventGPU, TimeSec: 0.5, GPU: &export.GPUSample{ // time runs backwards
				TimeSec: 0.5, GPU: -1, Metric: "m", Value: math.Inf(-1),
			}},
			{Kind: export.EventHeartbeat, TimeSec: 0},
		},
	}
	frame, err := EncodeBatchFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchPayload(frame[FrameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	re, err := EncodeBatchFrame(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, frame) {
		t.Fatal("decode → encode not byte-identical")
	}
	if math.Signbit(got.Events[0].LWP.SysPct) != true {
		t.Fatal("-0.0 lost its sign")
	}
	// NaN breaks DeepEqual; compare its bits, then blank it for the rest.
	if gb, wb := math.Float64bits(got.Events[0].LWP.UserPct), math.Float64bits(want.Events[0].LWP.UserPct); gb != wb {
		t.Fatalf("NaN bits changed: %x != %x", gb, wb)
	}
	got.Events[0].LWP.UserPct, want.Events[0].LWP.UserPct = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestWireV4RejectsHostilePayloads drives the strict decoder through the
// malformed shapes the format invites: truncated or lying dictionaries,
// non-canonical varints, references out of first-use order, and deltas that
// reconstruct values no encoder could have sent.
func TestWireV4RejectsHostilePayloads(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":      {},
		"dict count lies":    {200, 1},                                    // claims 200 strings in 1 byte
		"dict count huge":    {0xFF, 0xFF, 0xFF, 0x7F},                    // > v4MaxStrings
		"dict truncated":     {2, 1, 'x'},                                 // second entry missing
		"duplicate string":   {2, 1, 'x', 1, 'x'},                         // same bytes twice
		"non-minimal varint": {0x80, 0x00},                                // 0 in two bytes
		"varint overflow":    append(bytes.Repeat([]byte{0xFF}, 9), 0x02), // 65 bits
		"varint ten bytes":   bytes.Repeat([]byte{0x80}, 10),
		"ref past dict":      {1, 0, 1},                        // jobRef 1 of 1-entry dict
		"unused dict entry":  {2, 1, 'x', 0, 0, 0, 0, 1, 0, 0}, // entry 1 never referenced
		"event count lies":   {1, 0, 0, 0, 0, 1, 0, 200},       // 200 events in 0 bytes
		"unknown event tag":  {1, 0, 0, 0, 0, 1, 0, 1, 99, 0},
		"trailing bytes":     {1, 0, 0, 0, 0, 1, 0, 0, 0},
		"tid delta overflow": append([]byte{1, 0, 0, 0, 0, 1, 0, 1, tagLWP, 0},
			bytes.Repeat([]byte{0xFF}, 9)...), // then 0x01 below
	}
	cases["tid delta overflow"] = append(cases["tid delta overflow"], 0x01)
	for name, payload := range cases {
		if _, err := DecodeBatchPayloadVersionInto(payload, 4, new(BatchBuf)); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
}

// TestWireV4EncodeWarmZeroAlloc: a warm pooled encoder frames a batch into
// a pre-grown buffer without allocating — the agent-side half of the
// zero-allocation contract.
func TestWireV4EncodeWarmZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode makes sync.Pool drop entries by design; the pooled encoder then reallocates")
	}
	b := steadyStateBatch()
	buf, err := AppendBatchFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = AppendBatchFrame(buf[:0], b)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm v4 encode allocates %.1f per run, want 0", avg)
	}
}
