package analysis

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	even := Summarize([]float64{4, 1, 3, 2})
	if even.Median != 2.5 {
		t.Fatalf("median = %v, want 2.5", even.Median)
	}
	single := Summarize([]float64{7})
	if single.Std != 0 || single.Mean != 7 {
		t.Fatalf("single = %+v", single)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatal("String format")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample should panic")
		}
	}()
	Summarize(nil)
}

func TestWelchTTestIdenticalDistributions(t *testing.T) {
	// Two samples drawn to be nearly identical: p should be large (the
	// paper's 1 thread/core comparison: p = 0.998 -> same distribution).
	a := []float64{27.31, 27.35, 27.33, 27.36, 27.32, 27.34, 27.35, 27.33, 27.31, 27.36}
	b := []float64{27.32, 27.34, 27.33, 27.35, 27.33, 27.33, 27.36, 27.32, 27.32, 27.35}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.5 {
		t.Fatalf("p = %v, want > 0.5 for near-identical samples", r.P)
	}
}

func TestWelchTTestShiftedDistributions(t *testing.T) {
	// The 2 threads/core comparison: a consistent ~0.5% shift must give a
	// tiny p (paper: 0.0006).
	a := []float64{57.03, 57.08, 57.05, 57.10, 57.02, 57.07, 57.04, 57.09, 57.06, 57.05}
	b := make([]float64, len(a))
	for i, v := range a {
		b[i] = v + 0.28
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 0.001 {
		t.Fatalf("p = %v, want < 0.001 for shifted samples", r.P)
	}
	if r.T >= 0 {
		t.Fatalf("t = %v, want negative (a < b)", r.T)
	}
}

func TestWelchTTestAgainstKnownValue(t *testing.T) {
	// Cross-checked with scipy.stats.ttest_ind(equal_var=False):
	// a = [1,2,3,4,5], b = [2,3,4,5,6] -> t = -1.0, p ~= 0.3466.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 3, 4, 5, 6}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.T+1.0) > 1e-9 {
		t.Fatalf("t = %v, want -1.0", r.T)
	}
	if math.Abs(r.P-0.3466) > 0.002 {
		t.Fatalf("p = %v, want ~0.3466", r.P)
	}
	if math.Abs(r.DF-8) > 1e-9 {
		t.Fatalf("df = %v, want 8", r.DF)
	}
}

func TestWelchTTestErrorsAndDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("too-small sample should error")
	}
	r, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3})
	if err != nil || r.P != 1 {
		t.Fatalf("identical constants: %+v, %v", r, err)
	}
	r, err = WelchTTest([]float64{3, 3, 3}, []float64{4, 4, 4})
	if err != nil || r.P != 0 {
		t.Fatalf("distinct constants: %+v, %v", r, err)
	}
}

func TestQuickTTestSymmetry(t *testing.T) {
	f := func(seed uint8) bool {
		a := []float64{1 + float64(seed%7), 2, 3, 5, 8}
		b := []float64{2, 3, 4, 4.5, 9}
		r1, err1 := WelchTTest(a, b)
		r2, err2 := WelchTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.T+r2.T) < 1e-9 && math.Abs(r1.P-r2.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeOverhead(t *testing.T) {
	base := []float64{100, 100}
	with := []float64{100.5, 100.5}
	if got := RelativeOverhead(base, with); math.Abs(got-0.005) > 1e-9 {
		t.Fatalf("overhead = %v, want 0.005", got)
	}
	if RelativeOverhead([]float64{0, 0}, with) != 0 {
		t.Fatal("zero baseline should return 0")
	}
}

func TestHeatmapBasics(t *testing.T) {
	h := NewHeatmap(4)
	h.Set(1, 2, 10)
	h.Add(1, 2, 5)
	if h.At(1, 2) != 15 {
		t.Fatal("At/Set/Add")
	}
	if h.Max() != 15 || h.Total() != 15 {
		t.Fatal("Max/Total")
	}
}

func TestHeatmapFromMatrixAndBand(t *testing.T) {
	n := 16
	m := make([][]uint64, n)
	for d := range m {
		m[d] = make([]uint64, n)
		m[d][(d+1)%n] = 100
		m[d][(d+n-1)%n] = 100
	}
	h := FromMatrix(m)
	if got := h.BandFraction(1); got != 1.0 {
		t.Fatalf("band(1) = %v, want 1.0 for pure nearest-neighbor", got)
	}
	if got := h.BandFraction(0); got != 0 {
		t.Fatalf("band(0) = %v, want 0 (no self-sends)", got)
	}
}

func TestHeatmapDownsample(t *testing.T) {
	h := NewHeatmap(8)
	for i := 0; i < 8; i++ {
		h.Set(i, i, 1)
	}
	d := h.Downsample(4)
	if d.N != 4 {
		t.Fatal("size")
	}
	if d.Total() != h.Total() {
		t.Fatalf("downsample must conserve total: %v vs %v", d.Total(), h.Total())
	}
	for i := 0; i < 4; i++ {
		if d.At(i, i) != 2 {
			t.Fatalf("diag cell = %v, want 2", d.At(i, i))
		}
	}
	if got := h.Downsample(0); got.N != 8 {
		t.Fatal("invalid bins should clamp to N")
	}
}

func TestHeatmapASCIIAndPGM(t *testing.T) {
	h := NewHeatmap(4)
	h.Set(0, 0, 100)
	var sb strings.Builder
	if err := h.WriteASCII(&sb, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 4 {
		t.Fatalf("ascii shape: %q", sb.String())
	}
	if lines[0][0] != '@' {
		t.Fatalf("hot cell should be darkest, got %q", lines[0][0])
	}
	var pgm strings.Builder
	if err := h.WritePGM(&pgm); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(pgm.String(), "P2\n4 4\n255\n") {
		t.Fatalf("pgm header: %q", pgm.String()[:20])
	}
}

func TestHeatmapInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero size should panic")
		}
	}()
	NewHeatmap(0)
}

func TestSeriesNoisiness(t *testing.T) {
	smooth := &Series{Name: "smooth"}
	noisy := &Series{Name: "noisy"}
	for i := 0; i < 50; i++ {
		smooth.Append(float64(i), 50)
		v := 50.0
		if i%2 == 0 {
			v = 80
		} else {
			v = 20
		}
		noisy.Append(float64(i), v)
	}
	if smooth.Noisiness() != 0 {
		t.Fatalf("smooth noisiness = %v", smooth.Noisiness())
	}
	if noisy.Noisiness() < 0.5 {
		t.Fatalf("noisy noisiness = %v, want > 0.5", noisy.Noisiness())
	}
	if noisy.Mean() != 50 {
		t.Fatalf("mean = %v", noisy.Mean())
	}
	var empty Series
	if empty.Noisiness() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series should be quiet")
	}
}

func TestStackedChartTSV(t *testing.T) {
	c := NewStackedChart("LWP utilization")
	u := &Series{Name: "user"}
	s := &Series{Name: "system"}
	for i := 0; i < 3; i++ {
		u.Append(float64(i), 90)
		s.Append(float64(i), 5)
	}
	c.Add(u)
	c.Add(s)
	var sb strings.Builder
	if err := c.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time\tuser\tsystem\n") {
		t.Fatalf("header: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("rows: %q", out)
	}
	empty := NewStackedChart("empty")
	if err := empty.WriteTSV(&sb); err == nil {
		t.Fatal("empty chart should error")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 50, 100}, 100)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("ramp ends wrong: %q", s)
	}
	// Auto-scaling path.
	if Sparkline([]float64{0, 0}, 0) != "▁▁" {
		t.Fatal("all-zero should render floor")
	}
}

func TestWriteSparklines(t *testing.T) {
	c := NewStackedChart("CPU cores")
	a := &Series{Name: "cpu1"}
	a.Append(0, 10)
	c.Add(a)
	var sb strings.Builder
	if err := c.WriteSparklines(&sb, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cpu1") || !strings.Contains(sb.String(), "CPU cores") {
		t.Fatalf("output: %q", sb.String())
	}
}
