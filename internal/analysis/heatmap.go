package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Heatmap is a dense 2D matrix with rendering helpers, used for the MPI
// point-to-point communication matrix (Figure 5: receiver on one axis,
// sender on the other, cell value = bytes).
type Heatmap struct {
	N     int
	Cells []float64 // row-major: Cells[dst*N+src]
}

// NewHeatmap creates an N x N zero heatmap.
func NewHeatmap(n int) *Heatmap {
	if n <= 0 {
		panic("analysis: heatmap size must be positive")
	}
	return &Heatmap{N: n, Cells: make([]float64, n*n)}
}

// FromMatrix builds a heatmap from a rank x rank byte matrix.
func FromMatrix(m [][]uint64) *Heatmap {
	h := NewHeatmap(len(m))
	for d, row := range m {
		for s, v := range row {
			h.Set(d, s, float64(v))
		}
	}
	return h
}

// Set stores a cell value.
func (h *Heatmap) Set(dst, src int, v float64) { h.Cells[dst*h.N+src] = v }

// At reads a cell value.
func (h *Heatmap) At(dst, src int) float64 { return h.Cells[dst*h.N+src] }

// Add accumulates into a cell.
func (h *Heatmap) Add(dst, src int, v float64) { h.Cells[dst*h.N+src] += v }

// Max returns the largest cell value.
func (h *Heatmap) Max() float64 {
	m := 0.0
	for _, v := range h.Cells {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the sum of all cells.
func (h *Heatmap) Total() float64 {
	t := 0.0
	for _, v := range h.Cells {
		t += v
	}
	return t
}

// Downsample bins the heatmap into a bins x bins grid by summing cells, for
// terminal display of large matrices (512 ranks into an 64x64 view).
func (h *Heatmap) Downsample(bins int) *Heatmap {
	if bins <= 0 || bins > h.N {
		bins = h.N
	}
	out := NewHeatmap(bins)
	for d := 0; d < h.N; d++ {
		bd := d * bins / h.N
		for s := 0; s < h.N; s++ {
			bs := s * bins / h.N
			out.Add(bd, bs, h.At(d, s))
		}
	}
	return out
}

// BandFraction reports the fraction of total volume within |dst-src| <= w
// (with wraparound), quantifying the "strong nearest-neighbor pattern along
// the central diagonal" the paper reads off Figure 5.
func (h *Heatmap) BandFraction(w int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	band := 0.0
	for d := 0; d < h.N; d++ {
		for s := 0; s < h.N; s++ {
			dist := d - s
			if dist < 0 {
				dist = -dist
			}
			if wrap := h.N - dist; wrap < dist {
				dist = wrap
			}
			if dist <= w {
				band += h.At(d, s)
			}
		}
	}
	return band / total
}

// asciiRamp maps intensity to characters, darkest last.
const asciiRamp = " .:-=+*#%@"

// WriteASCII renders the heatmap as character art (one cell per character),
// downsampling to at most maxSize first.
func (h *Heatmap) WriteASCII(w io.Writer, maxSize int) error {
	hm := h
	if maxSize > 0 && h.N > maxSize {
		hm = h.Downsample(maxSize)
	}
	peak := hm.Max()
	var b strings.Builder
	for d := 0; d < hm.N; d++ {
		for s := 0; s < hm.N; s++ {
			idx := 0
			if peak > 0 {
				idx = int(hm.At(d, s) / peak * float64(len(asciiRamp)-1))
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePGM renders the heatmap as a binary-free plain PGM (P2) image, a
// dependency-free stand-in for the paper's matplotlib figure.
func (h *Heatmap) WritePGM(w io.Writer) error {
	peak := h.Max()
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", h.N, h.N); err != nil {
		return err
	}
	for d := 0; d < h.N; d++ {
		var row strings.Builder
		for s := 0; s < h.N; s++ {
			v := 0
			if peak > 0 {
				v = int(h.At(d, s) / peak * 255)
			}
			if s > 0 {
				row.WriteByte(' ')
			}
			fmt.Fprintf(&row, "%d", v)
		}
		row.WriteByte('\n')
		if _, err := io.WriteString(w, row.String()); err != nil {
			return err
		}
	}
	return nil
}
