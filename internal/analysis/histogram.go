package analysis

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Histogram bins a sample for terminal display — the stand-in for the
// paper's Figure 8 runtime-distribution plots.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram bins xs into the given number of buckets over [min,max] of
// the data (expanded slightly so the max lands inside the last bucket).
// It panics on an empty sample or non-positive bucket count.
func NewHistogram(xs []float64, buckets int) *Histogram {
	if len(xs) == 0 {
		panic("analysis: histogram of empty sample")
	}
	if buckets <= 0 {
		panic("analysis: histogram needs positive bucket count")
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if lo == hi {
		lo -= 0.5
		hi += 0.5
	}
	span := hi - lo
	hi += span * 1e-9 // include the max in the last bucket
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets), N: len(xs)}
	for _, x := range xs {
		idx := int((x - lo) / (hi - lo) * float64(buckets))
		if idx < 0 {
			idx = 0
		}
		if idx >= buckets {
			idx = buckets - 1
		}
		h.Counts[idx]++
	}
	return h
}

// BucketBounds returns bucket i's [lo, hi) range.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Write renders horizontal bars, one row per bucket.
func (h *Histogram) Write(w io.Writer, width int) error {
	if width <= 0 {
		width = 40
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		peak = 1
	}
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(peak)*float64(width))))
		if _, err := fmt.Fprintf(w, "  [%10.4f, %10.4f) %-*s %d\n", lo, hi, width, bar, c); err != nil {
			return err
		}
	}
	return nil
}

// CompareDistributions renders two labelled samples as side-by-side
// histograms over a shared range — the Figure 8 view.
func CompareDistributions(w io.Writer, labelA string, a []float64, labelB string, b []float64, buckets int) error {
	if len(a) == 0 || len(b) == 0 {
		return fmt.Errorf("analysis: empty sample for distribution comparison")
	}
	all := append(append([]float64{}, a...), b...)
	s := Summarize(all)
	lo, hi := s.Min, s.Max
	if lo == hi {
		lo -= 0.5
		hi += 0.5
	}
	span := hi - lo
	hi += span * 1e-9
	bin := func(xs []float64) []int {
		counts := make([]int, buckets)
		for _, x := range xs {
			idx := int((x - lo) / (hi - lo) * float64(buckets))
			if idx < 0 {
				idx = 0
			}
			if idx >= buckets {
				idx = buckets - 1
			}
			counts[idx]++
		}
		return counts
	}
	ca, cb := bin(a), bin(b)
	peak := 1
	for i := range ca {
		if ca[i] > peak {
			peak = ca[i]
		}
		if cb[i] > peak {
			peak = cb[i]
		}
	}
	const width = 20
	if _, err := fmt.Fprintf(w, "  %22s  %-*s | %-*s\n", "", width, labelA, width, labelB); err != nil {
		return err
	}
	for i := 0; i < buckets; i++ {
		bLo := lo + (hi-lo)*float64(i)/float64(buckets)
		bHi := lo + (hi-lo)*float64(i+1)/float64(buckets)
		barA := strings.Repeat("#", ca[i]*width/peak)
		barB := strings.Repeat("#", cb[i]*width/peak)
		if _, err := fmt.Fprintf(w, "  [%9.4f,%9.4f)  %-*s | %-*s\n",
			bLo, bHi, width, barA, width, barB); err != nil {
			return err
		}
	}
	return nil
}
