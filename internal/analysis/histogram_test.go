package analysis

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	xs := []float64{1, 1.1, 1.2, 2.9, 3}
	h := NewHistogram(xs, 2)
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v", h.Counts)
	}
	lo, hi := h.BucketBounds(0)
	if lo != 1 || hi <= lo {
		t.Fatalf("bounds = %v %v", lo, hi)
	}
	// Max value lands inside the last bucket (no off-by-one overflow).
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Fatal("sample lost in binning")
	}
}

func TestHistogramConstantSample(t *testing.T) {
	h := NewHistogram([]float64{7, 7, 7}, 4)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("constant sample binned to %d", total)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(nil, 3) },
		func() { NewHistogram([]float64{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramWrite(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 2, 3, 3, 3}, 3)
	var sb strings.Builder
	if err := h.Write(&sb, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.Contains(lines[2], "##########") {
		t.Fatalf("peak bucket should have a full bar: %q", lines[2])
	}
}

func TestCompareDistributions(t *testing.T) {
	a := []float64{26.88, 26.89, 26.89, 26.90}
	b := []float64{26.93, 26.94, 26.94, 26.95}
	var sb strings.Builder
	if err := CompareDistributions(&sb, "baseline", a, "zerosum", b, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "zerosum") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 7 { // header + 6 buckets
		t.Fatalf("rows:\n%s", out)
	}
	// Shifted samples occupy different buckets: the first bucket has bars
	// only on the left column.
	lines := strings.Split(out, "\n")
	first := lines[1]
	parts := strings.Split(first, "|")
	if !strings.Contains(parts[0], "#") || strings.Contains(parts[1], "#") {
		t.Fatalf("first bucket should be baseline-only: %q", first)
	}
	if err := CompareDistributions(&sb, "x", nil, "y", b, 3); err == nil {
		t.Fatal("empty sample should error")
	}
}
