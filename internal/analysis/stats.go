// Package analysis provides the statistical and post-processing tools the
// paper's evaluation uses: sample statistics and Welch's t-test for the
// overhead experiment (Figure 8), communication-heatmap binning (Figure 5),
// and stacked time-series assembly for the utilization charts (Figures 6-7).
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds sample statistics.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes sample statistics. It panics on an empty sample: a
// caller asking for statistics of nothing is a bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("analysis: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d, min %.4f, max %.4f)", s.Mean, s.Std, s.N, s.Min, s.Max)
}

// TTestResult is the outcome of Welch's unequal-variance t-test.
type TTestResult struct {
	T  float64 // t statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares two independent samples, as the paper does for the
// with/without-ZeroSum runtime distributions ("The t-test score comparing
// the two distributions is 0.998", §4.1).
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("analysis: t-test needs >= 2 samples per group (got %d, %d)", len(a), len(b))
	}
	sa, sb := Summarize(a), Summarize(b)
	va := sa.Std * sa.Std / float64(sa.N)
	vb := sb.Std * sb.Std / float64(sb.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Identical constant samples: indistinguishable distributions.
		if sa.Mean == sb.Mean {
			return TTestResult{T: 0, DF: float64(sa.N + sb.N - 2), P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: float64(sa.N + sb.N - 2), P: 0}, nil
	}
	t := (sa.Mean - sb.Mean) / se
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a,b)
// with the standard continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RelativeOverhead returns (mean(b)-mean(a))/mean(a): the fractional cost
// of b over baseline a.
func RelativeOverhead(baseline, with []float64) float64 {
	sa, sb := Summarize(baseline), Summarize(with)
	if sa.Mean == 0 {
		return 0
	}
	return (sb.Mean - sa.Mean) / sa.Mean
}
