package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one named time series (e.g. "LWP 18992 user%").
type Series struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Append adds a point.
func (s *Series) Append(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Times) }

// Mean returns the mean value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Noisiness quantifies sample-to-sample jitter as the mean absolute
// first difference divided by the mean (the paper notes Figure 6's LWP
// series is visibly noisier than Figure 7's HWT series because
// /proc/<pid>/stat is not precise at 1 Hz).
func (s *Series) Noisiness() float64 {
	if len(s.Values) < 2 {
		return 0
	}
	sumAbs := 0.0
	for i := 1; i < len(s.Values); i++ {
		d := s.Values[i] - s.Values[i-1]
		if d < 0 {
			d = -d
		}
		sumAbs += d
	}
	mean := s.Mean()
	if mean == 0 {
		return 0
	}
	return sumAbs / float64(len(s.Values)-1) / mean
}

// StackedChart is a set of series sharing a time axis, rendered as the
// paper's stacked idle/system/user utilization charts.
type StackedChart struct {
	Title  string
	Series []*Series
}

// NewStackedChart creates a chart.
func NewStackedChart(title string) *StackedChart { return &StackedChart{Title: title} }

// Add appends a series.
func (c *StackedChart) Add(s *Series) { c.Series = append(c.Series, s) }

// WriteTSV emits the chart as tab-separated columns (time, then one column
// per series), the load-into-anything format for regenerating Figures 6-7.
func (c *StackedChart) WriteTSV(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("analysis: chart %q has no series", c.Title)
	}
	var b strings.Builder
	b.WriteString("time")
	for _, s := range c.Series {
		b.WriteByte('\t')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	base := c.Series[0]
	for i := range base.Times {
		fmt.Fprintf(&b, "%.3f", base.Times[i])
		for _, s := range c.Series {
			v := 0.0
			if i < len(s.Values) {
				v = s.Values[i]
			}
			fmt.Fprintf(&b, "\t%.4f", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sparkRamp is the unicode block ramp for terminal sparklines.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip scaled to [0,max].
func Sparkline(values []float64, max float64) string {
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(sparkRamp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRamp) {
			idx = len(sparkRamp) - 1
		}
		b.WriteRune(sparkRamp[idx])
	}
	return b.String()
}

// WriteSparklines renders every series as "name  sparkline  mean%" rows,
// sorted by name, for terminal reproduction of the time-series figures.
func (c *StackedChart) WriteSparklines(w io.Writer, max float64) error {
	series := append([]*Series(nil), c.Series...)
	sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "%-24s %s  mean %6.2f\n", s.Name, Sparkline(s.Values, max), s.Mean()); err != nil {
			return err
		}
	}
	return nil
}
