// Package chaos is the fault-injection layer for ZeroSum's aggregation
// pipeline: seeded, replayable network and filesystem faults plus a
// multi-agent soak harness that drives real aggd agents through them and
// audits the pipeline's accounting invariants. The paper positions ZeroSum
// as an always-on monitor (§3, §4.1); this package is where "always-on"
// is earned — every fault schedule derives from one seed through
// internal/sim's deterministic RNG, so any soak failure replays from the
// seed it prints.
package chaos

import (
	"sync"
	"sync/atomic"
	"time"

	"zerosum/internal/sim"
)

// FaultProfile sets the per-request probability of each fault class. A zero
// profile injects nothing. Probabilities are evaluated independently per
// request in a fixed order, each consuming exactly one RNG draw whether or
// not it fires, so disabling one class never shifts another's schedule.
type FaultProfile struct {
	// DropRequest loses the request before the server sees it (a dead
	// link or dropped SYN): the client gets an error, the server nothing.
	DropRequest float64
	// DropResponse loses the server's reply after the request was fully
	// processed — the pipeline's hardest case, since the client must
	// retry work the server already applied.
	DropResponse float64
	// Delay stalls the request by a uniform fraction of MaxDelay before
	// it is forwarded.
	Delay    float64
	MaxDelay time.Duration
	// CorruptFlip flips one random bit of the request body in flight.
	CorruptFlip float64
	// CorruptTruncate cuts the body to a random prefix.
	CorruptTruncate float64
	// CorruptGarbage prepends random bytes to the body (a torn write from
	// a previous connection re-surfacing).
	CorruptGarbage float64
	// Partition opens a network partition with this probability per
	// request; while open, the next PartitionLen requests all drop.
	Partition    float64
	PartitionLen int
	// CutConn severs a server-side connection per read with this
	// probability, truncating whatever was mid-flight.
	CutConn float64
}

// AllFaults returns a profile with every fault class enabled at soak-test
// rates: high enough that a few hundred requests hit each class, low enough
// that the run still converges.
func AllFaults() FaultProfile {
	return FaultProfile{
		DropRequest:     0.10,
		DropResponse:    0.08,
		Delay:           0.15,
		MaxDelay:        3 * time.Millisecond,
		CorruptFlip:     0.06,
		CorruptTruncate: 0.04,
		CorruptGarbage:  0.04,
		Partition:       0.03,
		PartitionLen:    8,
		CutConn:         0.03,
	}
}

// CorruptKind says how a request body is mangled.
type CorruptKind int

// Body corruption kinds.
const (
	CorruptNone CorruptKind = iota
	CorruptBitFlip
	CorruptTruncated
	CorruptGarbagePrefix
)

// Verdict is one request's fate, fully determined at decision time so the
// transport applies it without consuming further randomness.
type Verdict struct {
	DropRequest  bool
	DropResponse bool
	Delay        time.Duration
	Corrupt      CorruptKind
	FlipBit      uint64  // bit index (mod body bits) for CorruptBitFlip
	TruncFrac    float64 // kept prefix fraction for CorruptTruncated
	GarbageSeed  uint64  // seeds the prepended bytes for CorruptGarbagePrefix
}

// InjectorStats counts what an injector actually did.
type InjectorStats struct {
	Decisions      uint64
	DroppedReqs    uint64
	DroppedResps   uint64
	Delays         uint64
	Corruptions    uint64
	PartitionDrops uint64
	ConnCuts       uint64
}

// Injector turns a FaultProfile and a seeded RNG into per-request verdicts.
// It is safe for concurrent use; the decision order (and therefore the
// fault schedule) is deterministic per injector as long as its callers
// issue requests in a deterministic order, which holds for an aggd agent's
// single sender goroutine.
type Injector struct {
	mu       sync.Mutex
	rng      *sim.RNG     //zerosum:guardedby mu draws mutate the RNG stream
	p        FaultProfile // immutable after NewInjector
	partLeft int          //zerosum:guardedby mu

	healed atomic.Bool

	decisions      atomic.Uint64
	droppedReqs    atomic.Uint64
	droppedResps   atomic.Uint64
	delays         atomic.Uint64
	corruptions    atomic.Uint64
	partitionDrops atomic.Uint64
	connCuts       atomic.Uint64
}

// NewInjector builds an injector over its own RNG (pass a Fork of the run's
// master RNG so injectors never perturb each other's streams).
func NewInjector(rng *sim.RNG, p FaultProfile) *Injector {
	if p.PartitionLen <= 0 {
		p.PartitionLen = 4
	}
	return &Injector{rng: rng, p: p}
}

// Heal permanently disables all future faults; in-flight verdicts stand.
// The soak's convergence phase heals the network so every surviving agent
// can deliver its final state.
func (in *Injector) Heal() { in.healed.Store(true) }

// Healed reports whether Heal has been called.
func (in *Injector) Healed() bool { return in.healed.Load() }

// Decide draws one request's verdict.
func (in *Injector) Decide() Verdict {
	if in.healed.Load() {
		return Verdict{}
	}
	in.mu.Lock()
	r := in.rng
	// Fixed draw order; every class consumes its draws unconditionally.
	enterPartition := r.Bool(in.p.Partition)
	dropReq := r.Bool(in.p.DropRequest)
	dropResp := r.Bool(in.p.DropResponse)
	delay := r.Bool(in.p.Delay)
	delayFrac := r.Float64()
	flip := r.Bool(in.p.CorruptFlip)
	flipBit := r.Uint64()
	trunc := r.Bool(in.p.CorruptTruncate)
	truncFrac := r.Float64()
	garbage := r.Bool(in.p.CorruptGarbage)
	garbageSeed := r.Uint64()

	var v Verdict
	if in.partLeft > 0 {
		in.partLeft--
		in.mu.Unlock()
		in.partitionDrops.Add(1)
		in.decisions.Add(1)
		v.DropRequest = true
		return v
	}
	if enterPartition {
		in.partLeft = in.p.PartitionLen
	}
	in.mu.Unlock()

	in.decisions.Add(1)
	if delay {
		in.delays.Add(1)
		v.Delay = time.Duration(delayFrac * float64(in.p.MaxDelay))
	}
	if dropReq {
		in.droppedReqs.Add(1)
		v.DropRequest = true
		return v
	}
	switch {
	case flip:
		v.Corrupt, v.FlipBit = CorruptBitFlip, flipBit
	case trunc:
		v.Corrupt, v.TruncFrac = CorruptTruncated, truncFrac
	case garbage:
		v.Corrupt, v.GarbageSeed = CorruptGarbagePrefix, garbageSeed
	}
	if v.Corrupt != CorruptNone {
		in.corruptions.Add(1)
	}
	if dropResp {
		in.droppedResps.Add(1)
		v.DropResponse = true
	}
	return v
}

// CutNow draws one connection-cut decision (used per server-side read).
func (in *Injector) CutNow() bool {
	if in.healed.Load() {
		return false
	}
	in.mu.Lock()
	cut := in.rng.Bool(in.p.CutConn)
	in.mu.Unlock()
	if cut {
		in.connCuts.Add(1)
	}
	return cut
}

// Stats snapshots the injector's counters.
func (in *Injector) Stats() InjectorStats {
	return InjectorStats{
		Decisions:      in.decisions.Load(),
		DroppedReqs:    in.droppedReqs.Load(),
		DroppedResps:   in.droppedResps.Load(),
		Delays:         in.delays.Load(),
		Corruptions:    in.corruptions.Load(),
		PartitionDrops: in.partitionDrops.Load(),
		ConnCuts:       in.connCuts.Load(),
	}
}

// Mangle applies v's corruption to body, returning a new slice (the input
// is never modified) or the input itself when the verdict is clean.
func Mangle(body []byte, v Verdict) []byte {
	if len(body) == 0 {
		return body
	}
	switch v.Corrupt {
	case CorruptBitFlip:
		out := append([]byte(nil), body...)
		bit := v.FlipBit % uint64(len(out)*8)
		out[bit/8] ^= 1 << (bit % 8)
		return out
	case CorruptTruncated:
		n := int(v.TruncFrac * float64(len(body)))
		if n >= len(body) {
			n = len(body) - 1
		}
		return append([]byte(nil), body[:n]...)
	case CorruptGarbagePrefix:
		r := sim.NewRNG(v.GarbageSeed)
		n := 1 + r.Intn(32)
		out := make([]byte, 0, n+len(body))
		for i := 0; i < n; i++ {
			out = append(out, byte(r.Uint64()))
		}
		return append(out, body...)
	default:
		return body
	}
}
