package chaos

import (
	"fmt"

	"zerosum/internal/fsio"
	"zerosum/internal/sim"
)

// FSProfile sets per-operation fault probabilities for a simulated shared
// filesystem (the "increased or variable network and disk latency" and
// transient-EIO regimes of the paper's §2).
type FSProfile struct {
	// ErrorRate fails the operation outright (transient EIO).
	ErrorRate float64
	// DelayRate stalls the operation by a uniform fraction of MaxExtra —
	// the server-side stall occupies the filesystem, so queued operations
	// behind it wait too.
	DelayRate float64
	MaxExtra  sim.Time
}

// FSInjector builds an fsio.Injector drawing from rng. Like everything in
// fsio it runs on the single-threaded simulation loop, so the fault
// schedule is bit-reproducible from the RNG seed. Each operation consumes
// exactly three draws regardless of outcome, keeping schedules aligned
// across profile changes.
func FSInjector(rng *sim.RNG, p FSProfile) fsio.Injector {
	return func(op string, bytes uint64) (sim.Time, error) {
		fail := rng.Bool(p.ErrorRate)
		slow := rng.Bool(p.DelayRate)
		frac := rng.Float64()
		if fail {
			return 0, fmt.Errorf("chaos: injected %s error (%d bytes)", op, bytes)
		}
		if slow {
			return sim.Time(frac * float64(p.MaxExtra)), nil
		}
		return 0, nil
	}
}
