package chaos

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// TB is the sliver of *testing.T the leak checker needs, so non-test code
// (the soak harness) can use it too.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// LeakCheck captures a goroutine/file-descriptor baseline; Assert later
// verifies the process returned to it. Usage:
//
//	lc := chaos.StartLeakCheck()
//	defer lc.Assert(t)
type LeakCheck struct {
	goroutines int
	fds        int
}

// netpollInit forces the Go runtime's lazily-created netpoll descriptors
// (an eventpoll fd plus an eventfd on Linux) into existence before any
// baseline is taken. `go test` creates them as a side effect of its
// default -test.timeout timer, but a test binary run by hand does not —
// and the first listener the harness opens would then read as a two-fd
// "leak" against a pre-netpoll baseline.
var netpollInit = sync.OnceFunc(func() {
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err == nil {
		_ = ln.Close()
	}
})

// StartLeakCheck records the current goroutine and FD counts.
func StartLeakCheck() LeakCheck {
	netpollInit()
	return LeakCheck{goroutines: runtime.NumGoroutine(), fds: NumFDs()}
}

// NumFDs counts the process's open file descriptors via /proc/self/fd,
// returning -1 where that interface does not exist (non-Linux hosts); FD
// assertions are skipped there.
func NumFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir traversal itself holds one descriptor open.
	return len(ents) - 1
}

// Assert fails t unless goroutines and FDs have returned to (at most) the
// baseline. Teardown is asynchronous — closed listeners and finished
// senders take a few scheduler rounds to unwind — so it polls with a
// deadline instead of sampling once.
//
//zerosum:wallclock teardown settling is real-host scheduling, not simulated time
func (lc LeakCheck) Assert(t TB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var g, f int
	for {
		g, f = runtime.NumGoroutine(), NumFDs()
		if g <= lc.goroutines && (lc.fds < 0 || f <= lc.fds) {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g > lc.goroutines {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d now vs %d at baseline\n%s", g, lc.goroutines, buf[:n])
	}
	if lc.fds >= 0 && f > lc.fds {
		t.Errorf("fd leak: %d open now vs %d at baseline (%s)", f, lc.fds, fdList())
	}
}

// fdList renders the open descriptors' targets for the leak report.
func fdList() string {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return "?"
	}
	out := ""
	for _, e := range ents {
		dst, err := os.Readlink("/proc/self/fd/" + e.Name())
		if err != nil {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s→%s", e.Name(), dst)
	}
	return out
}
