package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/scenario"
	"zerosum/internal/scenario/fairness"
	"zerosum/internal/sim"
)

// MultiJobSoakConfig parameterizes one multi-job soak: a scenario-generated
// job population streamed concurrently through a leaf tree, with leaf
// crashes mid-run. Where RunSoak mangles packets and RunTreeSoak crashes
// tiers under a single job, this suite's subject is *isolation*: many jobs
// whose (node, rank, TID) tuples deliberately collide share one tree, and
// every per-job book must close independently.
type MultiJobSoakConfig struct {
	Seed uint64
	// Scenario is the fleet to generate and schedule; the zero value uses
	// a built-in 110-job mix sized so a scheduler run admits well over the
	// 100-job acceptance floor.
	Scenario scenario.Config
	// Rounds is how many feed rounds the schedule horizon is mapped onto:
	// each admitted job streams one LWP event per rank per round across its
	// scaled admit→finish window (default 240).
	Rounds int
	// Leaves is the leaf-aggregator count under the root (default 3).
	Leaves int
	// KillLeaves is how many leaves are crash-killed at staggered rounds
	// and revived once their homed streams fail over (default: every leaf;
	// -1 disables).
	KillLeaves int
	// RestartRoot bounces the root front-end midway through the feed.
	RestartRoot bool
	// RingCap overrides the agents' ring size (default 256).
	RingCap    int
	Thresholds core.EvalThresholds
	Logf       func(format string, args ...any)
}

func (c MultiJobSoakConfig) withDefaults() MultiJobSoakConfig {
	if c.Scenario.Jobs == 0 {
		c.Scenario = defaultMultiJobScenario()
	}
	if c.Rounds <= 0 {
		c.Rounds = 240
	}
	if c.Leaves <= 0 {
		c.Leaves = 3
	}
	if c.KillLeaves == 0 {
		c.KillLeaves = c.Leaves
	} else if c.KillLeaves < 0 {
		c.KillLeaves = 0
	}
	if c.KillLeaves > c.Leaves {
		c.KillLeaves = c.Leaves
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// defaultMultiJobScenario is the built-in soak fleet: small ranks so the
// live agent population tracks cluster occupancy (tens, not hundreds), a
// preempting three-queue mix so job windows interleave and overlap, and no
// GPUs so every generated job is feasible and the admitted count stays at
// the full population.
func defaultMultiJobScenario() scenario.Config {
	return scenario.Config{
		Name:          "multijob-soak",
		Nodes:         6,
		CPUsPerNode:   4,
		Oversubscribe: 1.25,
		Queues: []scenario.QueueConfig{
			{Name: "prod", Weight: 3},
			{Name: "batch", Weight: 2},
			{Name: "debug", Weight: 1},
		},
		Jobs:              110,
		ArrivalMeanSec:    4,
		DurationMinSec:    20,
		DurationMeanSec:   40,
		MaxRanks:          3,
		MaxThreadsPerRank: 2,
		CPUsPerRank:       1,
		Preempt:           true,
	}
}

// MultiJobSoakResult reports one multi-job soak run, summed per tier.
type MultiJobSoakResult struct {
	Jobs        int    // jobs executed (scheduler-admitted and streamed)
	Fed         uint64 // events fed across every job's agents
	Preemptions int    // scheduler preemptions in the generating run
	Agent       aggd.AgentStats
	Leaf        aggd.ServerStats
	Forward     aggd.FwdStats
	Root        aggd.ServerStats
	JobEvents   uint64 // Σ over jobs of the root's per-job event census
	CSV         []byte // allocation-history CSV of the generating schedule
}

// jobRun is one scheduled job's streaming lifecycle in the soak.
type jobRun struct {
	spec  scenario.JobSpec
	out   *scenario.JobOutcome
	start int // first feed round (inclusive)
	end   int // last feed round (exclusive)

	nodes  []string // per-rank node name, from the schedule's placements
	agents []*aggd.Agent
	feeds  []export.Subscriber
	fed    uint64
	acc    aggd.AgentStats

	snaps []core.Snapshot
	rows  []map[int]uint64
	want  *report.JobSummary
}

// RunMultiJobSoak generates a job population from cfg.Scenario, schedules
// it with the fairness scheduler, then streams every admitted job through
// a real leaf tree concurrently — each job as its own aggd job (per-rank
// agents homed by consistent hash), its admit→finish window scaled onto
// the feed rounds — while leaves crash and revive mid-run. Jobs reuse the
// same node names, rank numbers and TIDs on purpose: any cross-job state
// sharing in the tree shows up as a broken per-job book. The audit closes
// every book per job and per tier:
//
//   - schedule determinism: a second generator+scheduler run at the same
//     seed reproduces the allocation-history CSV byte-for-byte;
//   - per-job agent conservation: each job's fed events are exactly its
//     agents' enqueued, and enqueued == ring-dropped + send-dropped + sent,
//     across leaf failovers;
//   - per-job no-double-count: the root merged no more of a job's events
//     than its agents shipped;
//   - no cross-job bleed: the root's per-job event censuses sum exactly to
//     its global admitted-event counter, each job's summary is
//     byte-identical to the fault-free report.Aggregate of that job's own
//     snapshots, its heatmap serves only its own comm rows, its TSDB holds
//     exactly 5 samples per admitted event (the per-LWP-event append
//     count), and the Prometheus export's per-job series agree;
//   - tier conservation: the same leaf/forwarder/root books RunTreeSoak
//     closes, summed over the whole fleet.
//
// The returned error (nil on a clean pass) joins every violated invariant.
//
//zerosum:wallclock the soak paces live goroutines and rebinding sockets on the host clock
func RunMultiJobSoak(cfg MultiJobSoakConfig) (*MultiJobSoakResult, error) {
	cfg = cfg.withDefaults()
	master := sim.NewRNG(cfg.Seed)

	// The schedule under audit, and its same-seed replay: the CSV is the
	// deterministic contract the fairness tooling goldens against.
	sres, csv, err := multiJobSchedule(cfg.Scenario, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if _, csv2, err := multiJobSchedule(cfg.Scenario, cfg.Seed); err != nil {
		return nil, err
	} else if !bytes.Equal(csv, csv2) {
		return nil, fmt.Errorf("chaos: scenario seed %d is not replayable: allocation CSVs differ (%d vs %d bytes)",
			cfg.Seed, len(csv), len(csv2))
	}

	// Job windows and ground truth. Every job's snapshots reuse the same
	// TID arithmetic and the node names its agents stream under, so tuples
	// collide across jobs exactly as ISSUE 10 demands.
	jobs := multiJobRuns(cfg, sres, master)
	if len(jobs) == 0 {
		return nil, errors.New("chaos: scenario admitted no jobs")
	}
	for _, jr := range jobs {
		want, err := report.Aggregate(jr.snaps, cfg.Thresholds)
		if err != nil {
			return nil, fmt.Errorf("chaos: job %s fault-free aggregate: %w", jr.spec.ID, err)
		}
		jr.want = want
	}

	// The tree: one root, cfg.Leaves forwarding leaves, as in RunTreeSoak.
	root := aggd.NewServer(aggd.ServerConfig{Thresholds: cfg.Thresholds})
	rootFront, err := startFrontend(root.Handler(), NewInjector(master.Fork(), FaultProfile{}))
	if err != nil {
		return nil, err
	}
	defer rootFront.stop()

	fwdTransport := &http.Transport{MaxIdleConnsPerHost: 2}
	defer fwdTransport.CloseIdleConnections()
	newLeafSrv := func(id string, epoch uint64) *aggd.Server {
		return aggd.NewServer(aggd.ServerConfig{
			Thresholds: cfg.Thresholds,
			Forward: &aggd.ForwardConfig{
				Upstream:      "http://" + rootFront.addr,
				LeafID:        id,
				Epoch:         epoch,
				FlushInterval: 2 * time.Millisecond,
				MaxRetries:    2,
				BackoffBase:   time.Millisecond,
				MaxBackoff:    8 * time.Millisecond,
				DisableGzip:   true,
				Client:        &http.Client{Transport: fwdTransport, Timeout: time.Second},
			},
		})
	}
	leaves := make([]*leafHost, cfg.Leaves)
	leafURLs := make([]string, cfg.Leaves)
	for i := range leaves {
		lh := &leafHost{id: fmt.Sprintf("leaf-%d", i), epoch: 1}
		lh.srv = newLeafSrv(lh.id, lh.epoch)
		if lh.front, err = startFrontend(lh.srv.Handler(), NewInjector(master.Fork(), FaultProfile{})); err != nil {
			return nil, err
		}
		defer lh.front.stop()
		leaves[i] = lh
		leafURLs[i] = "http://" + lh.front.addr
	}
	router, err := aggd.NewRouter(leafURLs)
	if err != nil {
		return nil, err
	}

	agentTransport := &http.Transport{MaxIdleConnsPerHost: 2}
	defer agentTransport.CloseIdleConnections()
	agentClient := &http.Client{Transport: agentTransport, Timeout: 250 * time.Millisecond}

	// live is the open-agent set, owned by this goroutine. A leaf's revive
	// gate must ignore agents whose jobs already closed: a closed agent's
	// Home can never move again, and its undelivered remainder is already
	// settled as send drops in its job's books.
	live := make(map[*aggd.Agent]bool)
	rehomedOrGone := func(lh *leafHost, deadURL string) bool {
		for _, a := range lh.homed {
			if live[a] && a.Home() == deadURL {
				return false
			}
		}
		return true
	}

	byStart := make([][]*jobRun, cfg.Rounds+1)
	byEnd := make([][]*jobRun, cfg.Rounds+1)
	for _, jr := range jobs {
		byStart[jr.start] = append(byStart[jr.start], jr)
		byEnd[jr.end] = append(byEnd[jr.end], jr)
	}
	res := &MultiJobSoakResult{Jobs: len(jobs), CSV: csv}
	for _, out := range sres.Jobs {
		res.Preemptions += out.Preemptions
	}

	startJob := func(jr *jobRun) error {
		jr.agents = make([]*aggd.Agent, jr.spec.Ranks)
		jr.feeds = make([]export.Subscriber, jr.spec.Ranks)
		for r := 0; r < jr.spec.Ranks; r++ {
			agent, err := aggd.NewAgent(aggd.AgentConfig{
				URLs:          router.Order(jr.nodes[r], r),
				Job:           jr.spec.ID,
				Node:          jr.nodes[r],
				Rank:          r,
				RingCap:       cfg.RingCap,
				BatchSize:     16,
				FlushInterval: time.Millisecond,
				MaxRetries:    2,
				BackoffBase:   time.Millisecond,
				MaxBackoff:    4 * time.Millisecond,
				DisableGzip:   true,
				// Mixed wire versions across the fleet, varied per job so
				// colliding (node, rank) tuples often differ in version too.
				WireVersion: wireVersionFor(jr.spec.Index*7 + r),
				Client:      agentClient,
			})
			if err != nil {
				return fmt.Errorf("chaos: job %s rank %d: %w", jr.spec.ID, r, err)
			}
			jr.agents[r] = agent
			jr.feeds[r] = agent.Subscriber()
			live[agent] = true
		}
		return nil
	}
	closeJob := func(jr *jobRun) {
		for _, a := range jr.agents {
			_ = a.Close()
			delete(live, a)
			addStats(&jr.acc, a.Stats())
		}
	}

	// Fault schedule, condition-gated exactly as RunTreeSoak's: a kill
	// captures the streams homed at the leaf, the revive waits until every
	// still-live one has observably re-homed, and kills defer while another
	// leaf is down so streams always have a live sibling.
	killRound := make(map[int]int)
	reviveRound := make(map[int]int)
	killedOwned := false
	if cfg.KillLeaves > 0 {
		stagger := cfg.Rounds / (cfg.KillLeaves + 2)
		if stagger < 2 {
			stagger = 2
		}
		gap := cfg.Rounds / 10
		if gap < 4 {
			gap = 4
		}
		for i := 0; i < cfg.KillLeaves; i++ {
			killRound[i] = (i + 1) * stagger
			reviveRound[i] = killRound[i] + gap
		}
	}
	restartRootAt := -1
	if cfg.RestartRoot {
		restartRootAt = cfg.Rounds / 2
	}
	anyDead := func() bool {
		for _, lh := range leaves {
			if lh.dead {
				return true
			}
		}
		return false
	}
	revive := func(lh *leafHost, round int) error {
		lh.epoch++
		lh.srv = newLeafSrv(lh.id, lh.epoch)
		if err := lh.front.restartWith(lh.srv.Handler()); err != nil {
			return fmt.Errorf("chaos: revive %s: %w", lh.id, err)
		}
		lh.dead = false
		lh.homed = nil
		cfg.Logf("revived %s at round %d as epoch %d", lh.id, round, lh.epoch)
		return nil
	}

	active := make(map[*jobRun]bool)
	for i := 0; i < cfg.Rounds; i++ {
		for li, lh := range leaves {
			kill, hasKill := killRound[li]
			rev, hasRevive := reviveRound[li]
			switch {
			case hasKill && kill <= i && !lh.dead && !anyDead():
				delete(killRound, li)
				lh.front.stop()
				lh.srv.Forwarder().Kill()
				lh.past = append(lh.past, lh.srv)
				lh.dead = true
				for a := range live {
					if a.Home() == leafURLs[li] {
						lh.homed = append(lh.homed, a)
					}
				}
				if len(lh.homed) > 0 {
					killedOwned = true
				}
				cfg.Logf("killed %s at round %d (epoch %d, %d homed streams)",
					lh.id, i, lh.epoch, len(lh.homed))
			case hasRevive && rev <= i && lh.dead && rehomedOrGone(lh, leafURLs[li]):
				delete(reviveRound, li)
				if err := revive(lh, i); err != nil {
					return nil, err
				}
			}
		}
		for _, jr := range byEnd[i] {
			closeJob(jr)
			delete(active, jr)
		}
		for _, jr := range byStart[i] {
			if err := startJob(jr); err != nil {
				return nil, err
			}
			active[jr] = true
		}
		for jr := range active {
			for r, feed := range jr.feeds {
				feed(synthLWPEvent(r, i))
			}
			jr.fed += uint64(jr.spec.Ranks)
		}
		if i == restartRootAt {
			cfg.Logf("restarting root front-end at round %d", i)
			if err := rootFront.restart(); err != nil {
				return nil, fmt.Errorf("chaos: root restart: %w", err)
			}
			time.Sleep(time.Millisecond)
		}
		if i%8 == 7 {
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Revive any leaf still down — gated on its still-live homed streams
	// leaving, with a deadline turning a wedged failover into a loud error
	// rather than a hang. Jobs that already closed prune themselves out of
	// the gate via the live set.
	deadline := time.Now().Add(10 * time.Second)
	for li, lh := range leaves {
		if !lh.dead {
			continue
		}
		for !rehomedOrGone(lh, leafURLs[li]) && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
		if err := revive(lh, cfg.Rounds); err != nil {
			return nil, err
		}
	}
	// Settle, then close the jobs whose windows ran to the horizon.
	time.Sleep(30 * time.Millisecond)
	for _, jr := range byEnd[cfg.Rounds] {
		closeJob(jr)
	}

	// Snapshot delivery happens after the heal, through short-lived courier
	// agents: a leaf crash between acking a snapshot and forwarding it
	// would silently eat it, so the model is an external collector pushing
	// end-of-job documents once the tree is stable. PushSnapshot itself
	// walks the failover ring, so a courier survives a slow leaf too.
	var errs []error
	for _, jr := range jobs {
		for r := 0; r < jr.spec.Ranks; r++ {
			courier, err := aggd.NewAgent(aggd.AgentConfig{
				URLs:          router.Order(jr.nodes[r], r),
				Job:           jr.spec.ID,
				Node:          jr.nodes[r],
				Rank:          r,
				FlushInterval: time.Millisecond,
				DisableGzip:   true,
				Client:        agentClient,
			})
			if err != nil {
				errs = append(errs, fmt.Errorf("job %s courier %d: %w", jr.spec.ID, r, err))
				continue
			}
			if err := pushSnapshotRetry(courier, jr.snaps[r], jr.rows[r]); err != nil {
				errs = append(errs, fmt.Errorf("job %s rank %d snapshot: %w", jr.spec.ID, r, err))
			}
			_ = courier.Close()
		}
	}

	// Closing a leaf flushes its final rollup (tail batches and the
	// snapshot documents) upstream before any book is read.
	for _, lh := range leaves {
		_ = lh.srv.Close()
		for _, srv := range append(lh.past, lh.srv) {
			addServerStats(&res.Leaf, srv.Stats())
			addFwdStats(&res.Forward, srv.Forwarder().Stats())
		}
	}
	res.Root = root.Stats()

	// Per-job books. The root's /api/jobs census is fetched once; every
	// job must appear exactly once, and the censuses must sum to the
	// root's global admitted-event counter — the no-bleed identity.
	census, cerr := rootJobCensus(rootFront.addr)
	if cerr != nil {
		errs = append(errs, cerr)
	}
	promEvents, promSamples, perr := rootPromJobSums(rootFront.addr)
	if perr != nil {
		errs = append(errs, perr)
	}
	for _, jr := range jobs {
		id := jr.spec.ID
		a := jr.acc
		res.Fed += jr.fed
		addStats(&res.Agent, a)
		if a.Enqueued != jr.fed {
			errs = append(errs, fmt.Errorf("job %s enqueue accounting: agents enqueued %d of %d fed events", id, a.Enqueued, jr.fed))
		}
		if a.Enqueued != a.RingDrops+a.SendDrops+a.SentEvents {
			errs = append(errs, fmt.Errorf("job %s conservation: enqueued %d != ring %d + send %d + sent %d",
				id, a.Enqueued, a.RingDrops, a.SendDrops, a.SentEvents))
		}
		got, ok := census[id]
		if !ok {
			errs = append(errs, fmt.Errorf("job %s missing from /api/jobs", id))
			continue
		}
		res.JobEvents += got
		if got > a.Enqueued-a.RingDrops {
			errs = append(errs, fmt.Errorf("job %s double count: root merged %d events, agents only shipped %d",
				id, got, a.Enqueued-a.RingDrops))
		}
		checkSummary(rootFront.addr, id, jr.want, &errs)
		checkHeatmap(rootFront.addr, id, jr.rows, jr.spec.Ranks, &errs)
		// Every admitted event is an LWP sample and appends exactly 5
		// points to the job's series — so the TSDB census per job is pure
		// arithmetic, and any cross-job append shifts two jobs' counts.
		if js := root.TSDB().JobStats(id); js.Samples != 5*got {
			errs = append(errs, fmt.Errorf("job %s tsdb bleed: store holds %d samples, admitted events imply %d", id, js.Samples, 5*got))
		}
		if pe := promEvents[id]; pe != got {
			errs = append(errs, fmt.Errorf("job %s metrics bleed: zerosum_stream_events_total sums to %d, root admitted %d", id, pe, got))
		}
		if ps := promSamples[id]; ps != 5*got {
			errs = append(errs, fmt.Errorf("job %s metrics bleed: zerosum_tsdb_samples_total reports %d, admitted events imply %d", id, ps, 5*got))
		}
	}
	if len(census) != len(jobs) {
		errs = append(errs, fmt.Errorf("root job census: /api/jobs lists %d jobs, scenario ran %d", len(census), len(jobs)))
	}
	if res.JobEvents != res.Root.IngestEvents {
		errs = append(errs, fmt.Errorf("cross-job bleed: per-job censuses sum to %d events, root admitted %d",
			res.JobEvents, res.Root.IngestEvents))
	}

	// Tier books over the whole fleet, as in the single-job tree soak.
	a, lf, fw, rt := res.Agent, res.Leaf, res.Forward, res.Root
	if a.Enqueued != res.Fed {
		errs = append(errs, fmt.Errorf("fleet enqueue accounting: agents enqueued %d of %d fed events", a.Enqueued, res.Fed))
	}
	if lf.IngestEvents > a.Enqueued-a.RingDrops {
		errs = append(errs, fmt.Errorf("leaf double count: leaves admitted %d events, agents only shipped %d",
			lf.IngestEvents, a.Enqueued-a.RingDrops))
	}
	if a.SentEvents > lf.IngestEvents {
		errs = append(errs, fmt.Errorf("lost acknowledged data at leaf tier: agents saw %d acked, leaves admitted %d",
			a.SentEvents, lf.IngestEvents))
	}
	if fw.EnqueuedEvents != lf.IngestEvents {
		errs = append(errs, fmt.Errorf("forwarder intake: leaves admitted %d events but handed %d to their forwarders",
			lf.IngestEvents, fw.EnqueuedEvents))
	}
	if fw.EnqueuedEvents != fw.AckedEvents+fw.DroppedEvents {
		errs = append(errs, fmt.Errorf("forwarder books: enqueued %d != acked %d + dropped %d",
			fw.EnqueuedEvents, fw.AckedEvents, fw.DroppedEvents))
	}
	if fw.PendingEvents != 0 {
		errs = append(errs, fmt.Errorf("forwarder books: %d events still pending after close", fw.PendingEvents))
	}
	if rt.IngestEvents+rt.RollupSkippedEvents > fw.EnqueuedEvents {
		errs = append(errs, fmt.Errorf("root double count: root saw %d events (admitted %d + skipped %d), leaves forwarded at most %d",
			rt.IngestEvents+rt.RollupSkippedEvents, rt.IngestEvents, rt.RollupSkippedEvents, fw.EnqueuedEvents))
	}
	if fw.AckedEvents > rt.IngestEvents+rt.RollupSkippedEvents {
		errs = append(errs, fmt.Errorf("lost acknowledged rollup data: leaves saw %d events acked, root admitted %d + skipped %d",
			fw.AckedEvents, rt.IngestEvents, rt.RollupSkippedEvents))
	}
	if rt.LostRollups > fw.DroppedRollups {
		errs = append(errs, fmt.Errorf("phantom rollup gaps: root counted %d lost rollups, forwarders only dropped %d",
			rt.LostRollups, fw.DroppedRollups))
	}
	if killedOwned && a.Rehomes == 0 {
		errs = append(errs, errors.New("failover: leaves that homed live streams were killed, yet no agent re-homed"))
	}

	cfg.Logf("multijob seed %d: %d jobs, %d preemptions, fed %d", cfg.Seed, res.Jobs, res.Preemptions, res.Fed)
	cfg.Logf("multijob seed %d: agents %+v", cfg.Seed, res.Agent)
	cfg.Logf("multijob seed %d: leaves %+v", cfg.Seed, res.Leaf)
	cfg.Logf("multijob seed %d: forward %+v", cfg.Seed, res.Forward)
	cfg.Logf("multijob seed %d: root %+v", cfg.Seed, res.Root)
	return res, errors.Join(errs...)
}

// multiJobSchedule generates and schedules one fleet, returning the run
// and its allocation-history CSV.
func multiJobSchedule(cfg scenario.Config, seed uint64) (*scenario.Result, []byte, error) {
	gen, err := scenario.NewGenerator(cfg, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: scenario generator: %w", err)
	}
	sch, err := scenario.NewScheduler(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: scenario scheduler: %w", err)
	}
	res := sch.Run(gen.Generate())
	var buf bytes.Buffer
	if err := fairness.WriteAllocCSV(&buf, res); err != nil {
		return nil, nil, fmt.Errorf("chaos: allocation CSV: %w", err)
	}
	return res, buf.Bytes(), nil
}

// multiJobRuns maps every completed job's admit→finish window onto the
// feed rounds and builds its ground truth — snapshots whose hostnames are
// the very node names the job's agents stream under, and whose TIDs repeat
// across jobs by construction.
func multiJobRuns(cfg MultiJobSoakConfig, sres *scenario.Result, master *sim.RNG) []*jobRun {
	scale := float64(cfg.Rounds) / sres.HorizonSec
	var jobs []*jobRun
	for _, out := range sres.Jobs {
		if !out.Done {
			continue
		}
		jr := &jobRun{spec: out.Spec, out: out}
		jr.start = int(out.FirstAdmitSec * scale)
		if jr.start > cfg.Rounds-2 {
			jr.start = cfg.Rounds - 2
		}
		if jr.start < 0 {
			jr.start = 0
		}
		jr.end = int(out.FinishSec * scale)
		if jr.end < jr.start+2 {
			jr.end = jr.start + 2
		}
		if jr.end > cfg.Rounds {
			jr.end = cfg.Rounds
		}
		jr.nodes = make([]string, jr.spec.Ranks)
		jr.snaps = make([]core.Snapshot, jr.spec.Ranks)
		jr.rows = make([]map[int]uint64, jr.spec.Ranks)
		for r := 0; r < jr.spec.Ranks; r++ {
			node := r % max(cfg.Scenario.Nodes, 1)
			if r < len(out.Placements) {
				node = out.Placements[r].Node
			}
			jr.nodes[r] = fmt.Sprintf("n%02d", node)
			rng := master.Fork()
			snap := synthSnapshot(rng, r, jr.spec.Ranks)
			snap.Hostname = jr.nodes[r]
			snap.Comm = "scenario"
			jr.snaps[r] = snap
			jr.rows[r] = synthCommRow(rng, r, jr.spec.Ranks)
		}
		jobs = append(jobs, jr)
	}
	return jobs
}

// synthLWPEvent is round i's stream event for rank r: always an LWP sample
// (5 TSDB appends each, keeping the per-job time-series census pure
// arithmetic) with a TID that collides across every job sharing the rank.
func synthLWPEvent(r, i int) export.Event {
	t := float64(i) / 100
	return export.Event{Kind: export.EventLWP, TimeSec: t, LWP: &export.LWPSample{
		TimeSec: t, TID: 1000 + r, Kind: "Main", State: 'R',
		UserPct: 75, SysPct: 10, VCtx: uint64(i), NVCtx: uint64(i / 2), CPU: r,
	}}
}

// rootJobCensus fetches /api/jobs once and returns job → merged events.
func rootJobCensus(addr string) (map[string]uint64, error) {
	body, err := get(addr, "/api/jobs")
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	var list []aggd.JobInfo
	if err := json.Unmarshal(body, &list); err != nil {
		return nil, fmt.Errorf("jobs decode: %w", err)
	}
	census := make(map[string]uint64, len(list))
	for _, j := range list {
		census[j.Job] = j.Events
	}
	return census, nil
}

// rootPromJobSums scrapes the root's Prometheus exposition once and sums,
// per job label, the per-stream event counters and the TSDB sample
// counters — the externally visible isolation surface.
func rootPromJobSums(addr string) (events, samples map[string]uint64, err error) {
	body, err := get(addr, "/metrics")
	if err != nil {
		return nil, nil, fmt.Errorf("metrics: %w", err)
	}
	events = promJobSums(body, "zerosum_stream_events_total")
	samples = promJobSums(body, "zerosum_tsdb_samples_total")
	return events, samples, nil
}

// promJobSums sums one exposition family's samples per job="..." label.
func promJobSums(text []byte, family string) map[string]uint64 {
	sums := make(map[string]uint64)
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		_, rest, ok := strings.Cut(line, `job="`)
		if !ok {
			continue
		}
		job, _, ok := strings.Cut(rest, `"`)
		if !ok {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		sums[job] += uint64(v)
	}
	return sums
}
