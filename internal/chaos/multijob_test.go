package chaos

import "testing"

// multiJobConfig is the acceptance shape: a scenario-generated fleet of
// well over 100 jobs streamed concurrently through 3 leaves under one
// root, every leaf crash-killed and revived mid-run, the root bounced.
func multiJobConfig(seed uint64, logf func(string, ...any)) MultiJobSoakConfig {
	return MultiJobSoakConfig{
		Seed:        seed,
		Leaves:      3,
		RestartRoot: true,
		Logf:        logf,
	}
}

// TestMultiJobSoak runs the multi-job isolation soak for one seed (-seed)
// or a range (-seeds). Any failure names the seed that reproduces it.
func TestMultiJobSoak(t *testing.T) {
	n := *flagSeeds
	if n <= 0 {
		n = 1
	}
	for seed := *flagSeed; seed < *flagSeed+uint64(n); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			lc := StartLeakCheck()
			res, err := RunMultiJobSoak(multiJobConfig(seed, t.Logf))
			if err != nil {
				t.Fatalf("multi-job soak failed (replay: go test ./internal/chaos -run TestMultiJobSoak -seed=%d): %v", seed, err)
			}
			lc.Assert(t)
			if res.Jobs < 100 {
				t.Fatalf("seed %d: scenario executed only %d jobs, acceptance floor is 100", seed, res.Jobs)
			}
			if res.Agent.SentEvents == 0 {
				t.Fatalf("seed %d: soak delivered nothing: %+v", seed, res.Agent)
			}
			if res.Root.RollupFrames == 0 {
				t.Fatalf("seed %d: root never saw a rollup frame: %+v", seed, res.Root)
			}
			if res.Preemptions == 0 {
				t.Fatalf("seed %d: the generated fleet never preempted — scenario too idle to exercise contention", seed)
			}
		})
	}
}

// TestMultiJobSoakFaultFree pins the baseline equality chain per job: with
// no crashes and a lossless ring, every job's fed events flow untouched to
// the root and every per-job census closes exactly.
func TestMultiJobSoakFaultFree(t *testing.T) {
	lc := StartLeakCheck()
	res, err := RunMultiJobSoak(MultiJobSoakConfig{
		Seed:       42,
		Leaves:     3,
		KillLeaves: -1,
		RingCap:    4096,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fault-free multi-job soak failed: %v", err)
	}
	lc.Assert(t)
	a := res.Agent
	if a.SendDrops != 0 || a.RingDrops != 0 || a.Rehomes != 0 {
		t.Fatalf("fault-free run dropped or re-homed: %+v", a)
	}
	if a.SentEvents != res.Fed {
		t.Fatalf("fault-free run: fed %d, agents sent %d", res.Fed, a.SentEvents)
	}
	if res.JobEvents != res.Fed {
		t.Fatalf("fault-free run: fed %d, root's per-job censuses sum to %d", res.Fed, res.JobEvents)
	}
}
