package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/sim"
	"zerosum/internal/tsdb"
)

// SoakConfig parameterizes one chaos soak run. Every random choice in the
// run — fault schedules, synthetic snapshot contents, jittered backoffs —
// derives from Seed, so a failure replays from the seed alone.
type SoakConfig struct {
	Seed           uint64
	Agents         int // concurrent agent streams (default 8)
	EventsPerAgent int // synthetic events fed to each stream (default 256)
	// Kills is how many times each agent is crash-killed mid-stream and
	// restarted as a new epoch (default 1; -1 disables kills).
	Kills int
	// RingCap overrides the agents' ring size (default 128 — small enough
	// that feed bursts overflow it, exercising drop-oldest backpressure).
	RingCap int
	// RestartServer bounces the aggregator's HTTP front-end mid-run,
	// severing every in-flight request, while the store survives.
	RestartServer bool
	Profile       FaultProfile
	Thresholds    core.EvalThresholds
	Logf          func(format string, args ...any) // optional progress output
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Agents <= 0 {
		c.Agents = 8
	}
	if c.EventsPerAgent <= 0 {
		c.EventsPerAgent = 256
	}
	if c.Kills == 0 {
		c.Kills = 1
	} else if c.Kills < 0 {
		c.Kills = 0
	}
	if c.RingCap <= 0 {
		c.RingCap = 128
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SoakResult reports what a soak run did, for logging and further checks.
type SoakResult struct {
	Agent     aggd.AgentStats // summed over every incarnation of every rank
	Server    aggd.ServerStats
	Transport InjectorStats // summed over the per-agent client injectors
	Listener  InjectorStats
	JobEvents uint64 // events the aggregator merged into the job
}

const soakJob = "chaos-soak"

// RunSoak drives cfg.Agents real aggd agents against a real aggregator over
// loopback HTTP through the fault layer, then audits the pipeline:
//
//   - conservation: every event fed to an agent is accounted as sent,
//     ring-dropped, or send-dropped — across crashes and restarts;
//   - no double-count: the aggregator merged no more events than the
//     agents ever pulled out of their rings, despite retries of bodies the
//     server had already (partially) applied;
//   - at-least-once for acknowledged data: everything an agent counted as
//     sent is in the aggregator's merged total;
//   - convergence: after the network heals, the served job summary and
//     heatmap are byte-identical to the fault-free report.Aggregate ground
//     truth of the same snapshots;
//   - time-series conservation: the embedded TSDB holds exactly the samples
//     the admitted events imply (no loss, no double-append across agent
//     crashes, server restarts, and replayed bodies), a healed-network
//     range query serves every admitted point back out, and the compressed
//     block dump decodes to the same sample census.
//
// The returned error (nil on a clean pass) joins every violated invariant.
//
//zerosum:wallclock the soak paces live goroutines and rebinding sockets on the host clock
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	master := sim.NewRNG(cfg.Seed)

	// Ground truth first: snapshots and comm rows are part of the fault-free
	// world, not of the fault schedule.
	snaps := make([]core.Snapshot, cfg.Agents)
	rows := make([]map[int]uint64, cfg.Agents)
	for r := range snaps {
		rng := master.Fork()
		snaps[r] = synthSnapshot(rng, r, cfg.Agents)
		rows[r] = synthCommRow(rng, r, cfg.Agents)
	}
	want, err := report.Aggregate(snaps, cfg.Thresholds)
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free aggregate: %w", err)
	}

	srv := aggd.NewServer(aggd.ServerConfig{Thresholds: cfg.Thresholds})
	listenerInj := NewInjector(master.Fork(), cfg.Profile)
	front, err := startFrontend(srv.Handler(), listenerInj)
	if err != nil {
		return nil, err
	}
	defer front.stop()

	slots := make([]*slot, cfg.Agents)
	var inners []*http.Transport
	defer func() {
		for _, tr := range inners {
			tr.CloseIdleConnections()
		}
	}()
	for r := range slots {
		slots[r] = &slot{
			rank: r,
			node: fmt.Sprintf("n%02d", r/2),
			ring: cfg.RingCap,
			inj:  NewInjector(master.Fork(), cfg.Profile),
		}
		tr, err := slots[r].start(front.addr)
		if err != nil {
			return nil, err
		}
		inners = append(inners, tr)
	}

	// Feed phase: interleave the ranks' streams, crash-kill and restart
	// agents at staggered points, and bounce the server front-end midway.
	restartAt := cfg.EventsPerAgent / 2
	for i := 0; i < cfg.EventsPerAgent; i++ {
		for _, s := range slots {
			if s.killAt(i, cfg) {
				s.agent.Kill()
				s.retire()
				cfg.Logf("killed rank %d at event %d (epoch %d)", s.rank, i, s.epoch)
				s.epoch++
				tr, err := s.start(front.addr)
				if err != nil {
					return nil, err
				}
				inners = append(inners, tr)
			}
			s.push(synthEvent(s.rank, i))
		}
		if cfg.RestartServer && i == restartAt {
			cfg.Logf("restarting aggregator front-end at event round %d", i)
			if err := front.restart(); err != nil {
				return nil, fmt.Errorf("chaos: aggregator restart: %w", err)
			}
		}
		if i%16 == 15 {
			time.Sleep(200 * time.Microsecond) // let senders run against the faults
		}
	}

	// Storm-settling window: the feed outruns the senders, so give them
	// time to work their backlog through the still-faulty network before
	// the heal — this is where most retries, gaps and replays happen.
	time.Sleep(30 * time.Millisecond)

	// Heal phase: stop injecting, deliver the final state, drain the rings.
	listenerInj.Heal()
	for _, s := range slots {
		s.inj.Heal()
	}
	var errs []error
	for _, s := range slots {
		if err := pushSnapshotRetry(s.agent, snaps[s.rank], rows[s.rank]); err != nil {
			errs = append(errs, fmt.Errorf("rank %d snapshot: %w", s.rank, err))
		}
	}
	res := &SoakResult{Listener: listenerInj.Stats()}
	for _, s := range slots {
		_ = s.agent.Close()
		s.retire()
		addStats(&res.Agent, s.acc)
		addInjStats(&res.Transport, s.inj.Stats())
	}
	res.Server = srv.Stats()
	res.JobEvents = jobEvents(front.addr, soakJob, &errs)

	// Invariants. Fed counts what the harness pushed into live agents; a
	// crash may strand nothing, because Kill folds the ring remainder and
	// the in-flight shipment into SendDrops.
	fed := uint64(cfg.Agents) * uint64(cfg.EventsPerAgent)
	a := res.Agent
	if a.Enqueued != fed {
		errs = append(errs, fmt.Errorf("enqueue accounting: agents enqueued %d of %d fed events", a.Enqueued, fed))
	}
	if a.Enqueued != a.RingDrops+a.SendDrops+a.SentEvents {
		errs = append(errs, fmt.Errorf("conservation: enqueued %d != ring %d + send %d + sent %d",
			a.Enqueued, a.RingDrops, a.SendDrops, a.SentEvents))
	}
	if res.JobEvents > a.Enqueued-a.RingDrops {
		errs = append(errs, fmt.Errorf("double count: server merged %d events, agents only shipped %d",
			res.JobEvents, a.Enqueued-a.RingDrops))
	}
	if a.SentEvents > res.JobEvents {
		errs = append(errs, fmt.Errorf("lost acknowledged data: agents saw %d events acknowledged, server merged %d",
			a.SentEvents, res.JobEvents))
	}
	checkSummary(front.addr, soakJob, want, &errs)
	checkHeatmap(front.addr, soakJob, rows, cfg.Agents, &errs)
	checkTSDB(front.addr, soakJob, srv, res.Server, &errs)

	cfg.Logf("soak seed %d: agents %+v", cfg.Seed, res.Agent)
	cfg.Logf("soak seed %d: server %+v", cfg.Seed, res.Server)
	cfg.Logf("soak seed %d: transport faults %+v listener cuts %d", cfg.Seed, res.Transport, res.Listener.ConnCuts)
	return res, errors.Join(errs...)
}

// wireVersionFor cycles the soak fleet through every supported batch wire
// version by rank, so each run exercises the mixed-version ingest state a
// rolling agent upgrade produces.
func wireVersionFor(rank int) uint8 {
	return aggd.MinWireVersion + uint8(rank%(aggd.WireVersion-aggd.MinWireVersion+1))
}

// slot tracks one rank's agent across incarnations.
type slot struct {
	rank  int
	node  string
	ring  int
	epoch uint64
	inj   *Injector
	agent *aggd.Agent
	acc   aggd.AgentStats // retired incarnations' counters
	feed  export.Subscriber
}

// start spins up the slot's next agent incarnation; the returned inner
// transport must be idle-closed at teardown.
func (s *slot) start(addr string) (*http.Transport, error) {
	inner := &http.Transport{MaxIdleConnsPerHost: 2}
	agent, err := aggd.NewAgent(aggd.AgentConfig{
		URL:  "http://" + addr,
		Job:  soakJob,
		Node: s.node,
		Rank: s.rank,
		// A new epoch per incarnation: sequence numbers restart without
		// colliding with the dead incarnation's.
		Epoch:         s.epoch,
		RingCap:       s.ring,
		BatchSize:     16,
		FlushInterval: time.Millisecond,
		// Spread the fleet across every supported wire version — the
		// rolling-upgrade state: the server must conserve events and
		// produce identical reports whether a rank shipped v2, v3 or v4.
		WireVersion: wireVersionFor(s.rank),
		// Few enough retries that a partition window can defeat a batch
		// outright, producing the real sequence gaps (and gap accounting)
		// the server must absorb.
		MaxRetries:  3,
		BackoffBase: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		// Uncompressed bodies so injected corruption lands on the frame
		// bytes the CRC guards, not on a gzip envelope.
		DisableGzip: true,
		Client: &http.Client{
			Transport: &Transport{Inner: inner, Inj: s.inj},
			Timeout:   time.Second,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: rank %d epoch %d: %w", s.rank, s.epoch, err)
	}
	s.agent = agent
	s.feed = agent.Subscriber()
	return inner, nil
}

func (s *slot) push(ev export.Event) { s.feed(ev) }

// retire folds the (stopped) incarnation's counters into the accumulator.
func (s *slot) retire() { addStats(&s.acc, s.agent.Stats()) }

// killAt reports whether this feed round crash-kills the slot's agent: each
// rank dies cfg.Kills times at points staggered across ranks so the server
// sees overlapping incarnations.
func (s *slot) killAt(i int, cfg SoakConfig) bool {
	for k := 1; k <= cfg.Kills; k++ {
		at := k*cfg.EventsPerAgent/(cfg.Kills+1) - s.rank*3
		if at < 1 {
			at = 1 + s.rank%3
		}
		if i == at {
			return true
		}
	}
	return false
}

func addStats(dst *aggd.AgentStats, s aggd.AgentStats) {
	dst.Enqueued += s.Enqueued
	dst.RingDrops += s.RingDrops
	dst.SendDrops += s.SendDrops
	dst.SentBatches += s.SentBatches
	dst.SentEvents += s.SentEvents
	dst.Retries += s.Retries
	dst.Rehomes += s.Rehomes
}

func addInjStats(dst *InjectorStats, s InjectorStats) {
	dst.Decisions += s.Decisions
	dst.DroppedReqs += s.DroppedReqs
	dst.DroppedResps += s.DroppedResps
	dst.Delays += s.Delays
	dst.Corruptions += s.Corruptions
	dst.PartitionDrops += s.PartitionDrops
	dst.ConnCuts += s.ConnCuts
}

// pushSnapshotRetry delivers a rank's final snapshot over the healed
// network; the retry loop only exists for requests racing the heal.
//
//zerosum:wallclock retries pace a real loopback socket
func pushSnapshotRetry(a *aggd.Agent, snap core.Snapshot, row map[int]uint64) error {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if err = a.PushSnapshot(snap, row); err == nil {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return err
}

// frontend is the aggregator's restartable HTTP front-end: the store (the
// aggd.Server) survives a restart, the listener and every live connection
// do not — the crash model for a supervised collector daemon.
type frontend struct {
	handler http.Handler
	inj     *Injector
	addr    string

	hs        *http.Server
	servedone chan struct{}
}

func startFrontend(h http.Handler, inj *Injector) (*frontend, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: frontend listen: %w", err)
	}
	f := &frontend{handler: h, inj: inj, addr: ln.Addr().String()}
	f.serve(ln)
	return f, nil
}

func (f *frontend) serve(ln net.Listener) {
	hs := &http.Server{Handler: f.handler}
	servedone := make(chan struct{})
	go func() {
		_ = hs.Serve(&FlakyListener{Listener: ln, Inj: f.inj})
		close(servedone)
	}()
	f.hs, f.servedone = hs, servedone
}

// restart hard-stops the front-end (in-flight requests die with their
// connections) and rebinds the same address so agents reconnect without
// reconfiguration.
//
//zerosum:wallclock rebinding races the kernel releasing the port
func (f *frontend) restart() error {
	f.stop()
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 200; attempt++ {
		if ln, err = net.Listen("tcp", f.addr); err == nil {
			f.serve(ln)
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return err
}

func (f *frontend) stop() {
	_ = f.hs.Close()
	<-f.servedone
}

// synthEvent generates rank r's i-th stream event: a deterministic rotation
// through every event kind so the wire codec and the server's live-view
// merge all stay exercised.
func synthEvent(r, i int) export.Event {
	t := float64(i) / 100
	switch i % 6 {
	case 0:
		return export.Event{Kind: export.EventHeartbeat, TimeSec: t}
	case 1:
		return export.Event{Kind: export.EventHWT, TimeSec: t, HWT: &export.HWTSample{
			TimeSec: t, CPU: r, IdlePct: 20, SysPct: 10, UserPct: 70,
		}}
	case 2:
		return export.Event{Kind: export.EventMem, TimeSec: t, Mem: &export.MemSample{
			TimeSec: t, TotalKB: 64 << 20, FreeKB: uint64(32<<20 - i), ProcRSSKB: uint64(1<<20 + i),
		}}
	case 3:
		return export.Event{Kind: export.EventLWP, TimeSec: t, LWP: &export.LWPSample{
			TimeSec: t, TID: 1000 + r, Kind: "Main", State: 'R',
			UserPct: 80, SysPct: 5, VCtx: uint64(i), NVCtx: uint64(i / 2), CPU: r,
		}}
	case 4:
		return export.Event{Kind: export.EventGPU, TimeSec: t, GPU: &export.GPUSample{
			TimeSec: t, GPU: r % 2, Metric: "Device Busy %", Value: float64(50 + i%50),
		}}
	default:
		return export.Event{Kind: export.EventIO, TimeSec: t, IO: &export.IOSample{
			TimeSec: t, RChar: uint64(i) * 512, WChar: uint64(i) * 256,
		}}
	}
}

// synthSnapshot builds rank r's deterministic end-of-run snapshot — the
// ground truth the aggregator must reproduce byte-for-byte after the run.
func synthSnapshot(rng *sim.RNG, r, size int) core.Snapshot {
	return core.Snapshot{
		DurationSec: 100 + rng.Float64()*10,
		Rank:        r,
		Size:        size,
		PID:         4000 + r,
		Hostname:    fmt.Sprintf("n%02d", r/2),
		Comm:        "chaosapp",
		LWPs: []core.ThreadSummary{{
			TID: 4000 + r, Label: "Main", Kind: core.KindMain,
			STimePct: 5 + rng.Float64(), UTimePct: 85 + rng.Float64()*10,
			NVCtx: uint64(rng.Intn(2000)), VCtx: uint64(rng.Intn(5000)),
			MinFlt: uint64(rng.Intn(10000)),
		}},
		HWTs: []core.HWTSummary{{
			CPU: r, IdlePct: rng.Float64() * 30, SysPct: rng.Float64() * 10, UserPct: 60 + rng.Float64()*30,
		}},
		MemPeakRSSKB: uint64(1<<20 + rng.Intn(1<<20)),
		MemMinFreeKB: uint64(16<<20 + rng.Intn(1<<20)),
		MemTotalKB:   64 << 20,
		IOReadBytes:  uint64(rng.Intn(1 << 30)),
		IOWriteBytes: uint64(rng.Intn(1 << 30)),
		Samples:      100,
	}
}

// synthCommRow builds rank r's received-bytes row of the communication
// matrix (what r received from each peer).
func synthCommRow(rng *sim.RNG, r, size int) map[int]uint64 {
	row := make(map[int]uint64)
	for src := 0; src < size; src++ {
		if src != r {
			row[src] = uint64(1<<16 + rng.Intn(1<<20))
		}
	}
	return row
}

// checkSummary asserts the served job summary is byte-identical to the
// fault-free aggregate (same indented encoding the server writes).
func checkSummary(addr, job string, want *report.JobSummary, errs *[]error) {
	body, err := get(addr, "/api/job/"+job+"/summary")
	if err != nil {
		*errs = append(*errs, fmt.Errorf("summary: %w", err))
		return
	}
	exp, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		*errs = append(*errs, fmt.Errorf("summary encode: %w", err))
		return
	}
	exp = append(exp, '\n')
	if !bytes.Equal(body, exp) {
		*errs = append(*errs, fmt.Errorf("summary diverged from fault-free aggregate:\nserved %s\nwant   %s", body, exp))
	}
}

// checkHeatmap asserts the served matrix equals the pushed comm rows.
func checkHeatmap(addr, job string, rows []map[int]uint64, size int, errs *[]error) {
	body, err := get(addr, "/api/job/"+job+"/heatmap")
	if err != nil {
		*errs = append(*errs, fmt.Errorf("heatmap: %w", err))
		return
	}
	var hm aggd.HeatmapResponse
	if err := json.Unmarshal(body, &hm); err != nil {
		*errs = append(*errs, fmt.Errorf("heatmap decode: %w", err))
		return
	}
	if hm.Ranks != size {
		*errs = append(*errs, fmt.Errorf("heatmap size %d, want %d", hm.Ranks, size))
		return
	}
	for dst := 0; dst < size; dst++ {
		for src := 0; src < size; src++ {
			if got, want := hm.Bytes[dst][src], rows[dst][src]; got != want {
				*errs = append(*errs, fmt.Errorf("heatmap[%d][%d] = %d, want %d", dst, src, got, want))
				return
			}
		}
	}
}

// checkTSDB audits the embedded time-series store after the heal. Each
// admitted event kind appends a fixed number of samples (LWP 5, HWT 3,
// GPU 1, Mem 2, IO 2), and admission is exactly-once by epoch/seq dedup —
// so the store's census must equal the per-kind arithmetic no matter how
// many retries, replays, crashes, or front-end restarts the run survived.
// The same census must then come back out the read path: a raw range query
// over the healed network serves one point per admitted event of its
// metric, and the compressed block dump decodes to the same sample count.
func checkTSDB(addr, job string, srv *aggd.Server, st aggd.ServerStats, errs *[]error) {
	wantSamples := 5*st.EventsLWP + 3*st.EventsHWT + st.EventsGPU + 2*st.EventsMem + 2*st.EventsIO
	js := srv.TSDB().JobStats(job)
	if js.Samples != wantSamples {
		*errs = append(*errs, fmt.Errorf("tsdb conservation: store holds %d samples, admitted events imply %d (lwp %d hwt %d gpu %d mem %d io %d)",
			js.Samples, wantSamples, st.EventsLWP, st.EventsHWT, st.EventsGPU, st.EventsMem, st.EventsIO))
	}
	for _, c := range []struct {
		metric string
		want   uint64
	}{
		{"lwp.nvctx", st.EventsLWP},
		{"mem.free_kb", st.EventsMem},
	} {
		body, err := get(addr, "/api/job/"+job+"/query?metric="+c.metric)
		if err != nil {
			*errs = append(*errs, fmt.Errorf("tsdb query %s: %w", c.metric, err))
			continue
		}
		var qr aggd.QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			*errs = append(*errs, fmt.Errorf("tsdb query %s decode: %w", c.metric, err))
			continue
		}
		var got uint64
		for _, sr := range qr.Series {
			got += uint64(len(sr.Points))
		}
		if got != c.want {
			*errs = append(*errs, fmt.Errorf("tsdb query %s: served %d points, admitted %d events", c.metric, got, c.want))
		}
	}
	blob, err := get(addr, "/api/job/"+job+"/tsdb")
	if err != nil {
		*errs = append(*errs, fmt.Errorf("tsdb dump: %w", err))
		return
	}
	bs, err := tsdb.UnmarshalBlocks(blob)
	if err != nil {
		*errs = append(*errs, fmt.Errorf("tsdb dump decode: %w", err))
		return
	}
	var dumped uint64
	for _, sr := range bs.Series {
		for _, ch := range sr.Chunks {
			dumped += uint64(ch.Count)
		}
	}
	if dumped != wantSamples {
		*errs = append(*errs, fmt.Errorf("tsdb dump: blob carries %d samples, admitted events imply %d", dumped, wantSamples))
	}
}

// jobEvents reads the aggregator's merged event count for one job.
func jobEvents(addr, job string, errs *[]error) uint64 {
	body, err := get(addr, "/api/jobs")
	if err != nil {
		*errs = append(*errs, fmt.Errorf("jobs: %w", err))
		return 0
	}
	var jobs []aggd.JobInfo
	if err := json.Unmarshal(body, &jobs); err != nil {
		*errs = append(*errs, fmt.Errorf("jobs decode: %w", err))
		return 0
	}
	for _, j := range jobs {
		if j.Job == job {
			return j.Events
		}
	}
	*errs = append(*errs, fmt.Errorf("jobs: %q missing from /api/jobs", job))
	return 0
}

// cleanClient bypasses the fault layer and keeps no idle connections, so
// post-run API reads cannot trip the FD leak check.
var cleanClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// get fetches one API path over a clean (fault-free) client.
func get(addr, path string) ([]byte, error) {
	resp, err := cleanClient.Get("http://" + addr + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body, nil
}
