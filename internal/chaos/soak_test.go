package chaos

import (
	"flag"
	"testing"
)

var (
	flagSeed  = flag.Uint64("seed", 1, "chaos soak seed to run (replay a failure with its printed seed)")
	flagSeeds = flag.Int("seeds", 0, "run this many consecutive seeds starting at -seed (0 = just -seed)")
)

// soakConfig is the acceptance shape: >= 8 agents, every fault class
// enabled, agent crashes and an aggregator restart mid-run.
func soakConfig(seed uint64, logf func(string, ...any)) SoakConfig {
	return SoakConfig{
		Seed:          seed,
		Agents:        8,
		Kills:         1,
		RestartServer: true,
		Profile:       AllFaults(),
		Logf:          logf,
	}
}

// TestChaosSoak runs the full-fault soak for one seed (-seed) or a range
// (-seeds). Any failure names the seed that reproduces it.
func TestChaosSoak(t *testing.T) {
	n := *flagSeeds
	if n <= 0 {
		n = 1
	}
	for seed := *flagSeed; seed < *flagSeed+uint64(n); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			lc := StartLeakCheck()
			res, err := RunSoak(soakConfig(seed, t.Logf))
			if err != nil {
				t.Fatalf("chaos soak failed (replay: go test ./internal/chaos -run TestChaosSoak -seed=%d): %v", seed, err)
			}
			lc.Assert(t)
			if res.Agent.SentEvents == 0 {
				t.Fatalf("seed %d: soak delivered nothing: %+v", seed, res.Agent)
			}
		})
	}
}

// TestChaosSoakFaultFree pins the baseline: with no faults injected,
// nothing is dropped, nothing is retried, and the aggregator merges every
// event exactly once.
func TestChaosSoakFaultFree(t *testing.T) {
	lc := StartLeakCheck()
	res, err := RunSoak(SoakConfig{
		Seed:   42,
		Agents: 8,
		Kills:  -1,
		// Lossless ring: the baseline asserts zero drops of any kind.
		RingCap: 4096,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("fault-free soak failed: %v", err)
	}
	lc.Assert(t)
	a := res.Agent
	if a.SendDrops != 0 || a.RingDrops != 0 {
		t.Fatalf("fault-free run dropped events: %+v", a)
	}
	if a.SentEvents != res.JobEvents {
		t.Fatalf("fault-free run: sent %d, server merged %d", a.SentEvents, res.JobEvents)
	}
	if res.Server.DupBatches != 0 || res.Server.CorruptFrames != 0 {
		t.Fatalf("fault-free run saw faults: %+v", res.Server)
	}
}

// TestChaosSoakDeterministicSchedule verifies seed replay: two injectors
// built from the same seed issue identical verdict sequences, so a failing
// seed's fault schedule is reconstructed exactly.
func TestChaosSoakDeterministicSchedule(t *testing.T) {
	mkSeq := func() []Verdict {
		in := NewInjector(newTestRNG(7), AllFaults())
		out := make([]Verdict, 400)
		for i := range out {
			out[i] = in.Decide()
		}
		return out
	}
	a, b := mkSeq(), mkSeq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
