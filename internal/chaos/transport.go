package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// Injected fault errors. They are ordinary network-shaped errors: the code
// under test must treat them exactly like a flaky datacenter would deserve.
var (
	ErrInjectedDrop     = errors.New("chaos: request dropped by fault injection")
	ErrInjectedRespLoss = errors.New("chaos: response lost by fault injection")
	ErrInjectedCut      = errors.New("chaos: connection cut by fault injection")
)

// Transport is an http.RoundTripper that subjects every request to an
// Injector's verdict: delay, drop before send, corrupt the body in flight,
// or complete the exchange and then lose the response. Give each client its
// own Transport (and each Transport a forked RNG) so one client's traffic
// never perturbs another's fault schedule.
type Transport struct {
	// Inner performs the real exchange (default http.DefaultTransport).
	Inner http.RoundTripper
	// Inj decides each request's fate.
	Inj *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	v := t.Inj.Decide()
	if v.Delay > 0 {
		timer := time.NewTimer(v.Delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if v.DropRequest {
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return nil, ErrInjectedDrop
	}
	if v.Corrupt != CorruptNone && req.Body != nil {
		body, err := io.ReadAll(req.Body)
		_ = req.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("chaos: reading body to corrupt: %w", err)
		}
		body = Mangle(body, v)
		mutated := req.Clone(req.Context())
		mutated.Body = io.NopCloser(bytes.NewReader(body))
		mutated.ContentLength = int64(len(body))
		mutated.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
		req = mutated
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if v.DropResponse {
		// The server finished its side; the client never learns. Drain so
		// the connection is reusable — the fault is the lost reply, not a
		// broken socket.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, ErrInjectedRespLoss
	}
	return resp, nil
}

// FlakyListener wraps a net.Listener so accepted connections can be severed
// mid-stream by the injector's CutConn class — the server-facing half of
// the fault surface (a request truncated inside the kernel, not at the
// HTTP client).
type FlakyListener struct {
	net.Listener
	Inj *Injector
}

// Accept wraps the next connection with fault injection.
func (l *FlakyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &flakyConn{Conn: c, inj: l.Inj}, nil
}

// flakyConn severs the underlying connection on an injected cut, so both
// halves of the exchange observe a real broken socket.
type flakyConn struct {
	net.Conn
	inj *Injector
}

func (c *flakyConn) Read(p []byte) (int, error) {
	if c.inj.CutNow() {
		_ = c.Conn.Close()
		return 0, ErrInjectedCut
	}
	return c.Conn.Read(p)
}
