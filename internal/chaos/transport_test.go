package chaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zerosum/internal/sim"
)

func newTestRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }

func TestMangleBitFlip(t *testing.T) {
	body := []byte("hello, aggregation frame")
	out := Mangle(body, Verdict{Corrupt: CorruptBitFlip, FlipBit: 13})
	if bytes.Equal(out, body) {
		t.Fatal("bit flip left the body unchanged")
	}
	diff := 0
	for i := range body {
		if body[i] != out[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip touched %d bytes, want 1", diff)
	}
	if !bytes.Equal([]byte("hello, aggregation frame"), body) {
		t.Fatal("Mangle mutated its input")
	}
}

func TestMangleTruncate(t *testing.T) {
	body := []byte("0123456789")
	out := Mangle(body, Verdict{Corrupt: CorruptTruncated, TruncFrac: 0.5})
	if len(out) != 5 || !bytes.Equal(out, body[:5]) {
		t.Fatalf("truncate gave %q", out)
	}
	// Even a fraction of 1.0 must lose at least one byte — a "truncation"
	// that keeps everything would inject nothing.
	if out := Mangle(body, Verdict{Corrupt: CorruptTruncated, TruncFrac: 1.0}); len(out) != len(body)-1 {
		t.Fatalf("full-fraction truncate kept %d of %d bytes", len(out), len(body))
	}
}

func TestMangleGarbagePrefix(t *testing.T) {
	body := []byte("payload")
	out := Mangle(body, Verdict{Corrupt: CorruptGarbagePrefix, GarbageSeed: 99})
	if len(out) <= len(body) || !bytes.HasSuffix(out, body) {
		t.Fatalf("garbage prefix gave %q", out)
	}
	again := Mangle(body, Verdict{Corrupt: CorruptGarbagePrefix, GarbageSeed: 99})
	if !bytes.Equal(out, again) {
		t.Fatal("garbage prefix not deterministic for one seed")
	}
}

// TestTransportFaults drives requests through every verdict class against a
// live server and checks each one's observable effect.
func TestTransportFaults(t *testing.T) {
	var gotBodies [][]byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBodies = append(gotBodies, b)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	post := func(tr *Transport, body string) error {
		client := &http.Client{Transport: tr, Timeout: time.Second}
		resp, err := client.Post(ts.URL, "text/plain", strings.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil
	}

	// Drop-request: client errors, server sees nothing.
	tr := &Transport{Inj: NewInjector(newTestRNG(1), FaultProfile{DropRequest: 1})}
	if err := post(tr, "x"); !errors.Is(err, ErrInjectedDrop) && err == nil {
		t.Fatalf("drop-request err = %v", err)
	}
	if len(gotBodies) != 0 {
		t.Fatalf("dropped request reached the server")
	}

	// Drop-response: server processes, client errors.
	tr = &Transport{Inj: NewInjector(newTestRNG(1), FaultProfile{DropResponse: 1})}
	if err := post(tr, "applied"); err == nil {
		t.Fatal("drop-response returned success")
	}
	if len(gotBodies) != 1 || string(gotBodies[0]) != "applied" {
		t.Fatalf("drop-response server saw %q", gotBodies)
	}

	// Corruption: server receives a different body.
	tr = &Transport{Inj: NewInjector(newTestRNG(1), FaultProfile{CorruptFlip: 1})}
	if err := post(tr, "fragile"); err != nil {
		t.Fatalf("corrupted post: %v", err)
	}
	if len(gotBodies) != 2 || string(gotBodies[1]) == "fragile" {
		t.Fatalf("corruption did not alter the body: %q", gotBodies[1:])
	}

	// Partition: a window of consecutive drops, then recovery.
	tr = &Transport{Inj: NewInjector(newTestRNG(1), FaultProfile{Partition: 1, PartitionLen: 3})}
	drops := 0
	for i := 0; i < 8; i++ {
		if err := post(tr, "p"); err != nil {
			drops++
		}
	}
	if drops < 3 {
		t.Fatalf("partition dropped only %d requests", drops)
	}

	// Heal: all faults off, traffic flows.
	tr = &Transport{Inj: NewInjector(newTestRNG(1), FaultProfile{DropRequest: 1})}
	tr.Inj.Heal()
	if err := post(tr, "healed"); err != nil {
		t.Fatalf("healed transport failed: %v", err)
	}
}

// TestInjectorScheduleAlignment checks that disabling one fault class does
// not shift the draws of the others: the same seed must produce the same
// delay schedule whether or not corruption is enabled.
func TestInjectorScheduleAlignment(t *testing.T) {
	delays := func(p FaultProfile) []time.Duration {
		in := NewInjector(newTestRNG(5), p)
		var out []time.Duration
		for i := 0; i < 200; i++ {
			out = append(out, in.Decide().Delay)
		}
		return out
	}
	base := FaultProfile{Delay: 0.5, MaxDelay: time.Millisecond}
	withCorrupt := base
	withCorrupt.CorruptFlip = 0.5
	a, b := delays(base), delays(withCorrupt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d shifted when corruption was enabled: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlakyListenerCuts(t *testing.T) {
	inj := NewInjector(newTestRNG(3), FaultProfile{CutConn: 1})
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Listener = &FlakyListener{Listener: ts.Listener, Inj: inj}
	ts.Start()
	defer ts.Close()

	client := &http.Client{Timeout: time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := client.Get(ts.URL); err == nil {
		t.Fatal("certain cut still served a response")
	}
	if inj.Stats().ConnCuts == 0 {
		t.Fatal("no cut recorded")
	}
	inj.Heal()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("healed listener: %v", err)
	}
	resp.Body.Close()
}
