package chaos

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"zerosum/internal/aggd"
	"zerosum/internal/core"
	"zerosum/internal/export"
	"zerosum/internal/report"
	"zerosum/internal/sim"
)

// TreeSoakConfig parameterizes one aggregation-tree soak: a fleet of agents
// consistent-hash-routed over a tier of leaf aggregators that forward
// pre-merged rollups to one root. The fault model is process death — leaves
// crash (store, dedup state and forward buffer all lost) and restart as a
// new epoch, the root's front-end bounces mid-run — rather than the packet
// mangling RunSoak injects; the two suites compose rather than overlap.
type TreeSoakConfig struct {
	Seed           uint64
	Agents         int // concurrent agent streams (default 9)
	EventsPerAgent int // synthetic events fed to each stream (default 240)
	Leaves         int // leaf aggregators under the root (default 3)
	// KillLeaves is how many leaves are crash-killed mid-run at staggered
	// points and later restarted as a new forwarder epoch on the same
	// address (default: every leaf; -1 disables).
	KillLeaves int
	// RestartRoot bounces the root's HTTP front-end midway: the root store
	// survives, every in-flight rollup dies with its connection.
	RestartRoot bool
	// RingCap overrides the agents' ring size (default 256).
	RingCap    int
	Thresholds core.EvalThresholds
	Logf       func(format string, args ...any)
}

func (c TreeSoakConfig) withDefaults() TreeSoakConfig {
	if c.Agents <= 0 {
		c.Agents = 9
	}
	if c.EventsPerAgent <= 0 {
		c.EventsPerAgent = 240
	}
	if c.Leaves <= 0 {
		c.Leaves = 3
	}
	if c.KillLeaves == 0 {
		c.KillLeaves = c.Leaves
	} else if c.KillLeaves < 0 {
		c.KillLeaves = 0
	}
	if c.KillLeaves > c.Leaves {
		c.KillLeaves = c.Leaves
	}
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// TreeSoakResult reports one tree soak run's counters, summed per tier.
type TreeSoakResult struct {
	Agent     aggd.AgentStats  // summed over every rank
	Leaf      aggd.ServerStats // summed over every leaf incarnation
	Forward   aggd.FwdStats    // summed over every leaf incarnation's forwarder
	Root      aggd.ServerStats
	JobEvents uint64 // events the ROOT merged into the job
}

const treeJob = "chaos-tree"

// leafHost is one leaf position in the tree: a stable address and leaf ID,
// and the succession of server incarnations that lived there. A kill
// discards the live incarnation (its store, per-origin dedup state, and
// forward buffer die with it) but keeps the pointer so the audit can close
// the books over every incarnation's counters.
type leafHost struct {
	id    string
	front *frontend
	epoch uint64
	srv   *aggd.Server
	past  []*aggd.Server
	dead  bool
	// homed is the set of agents whose Home() was this leaf at the moment
	// it was killed; the revive waits until every one of them has re-homed,
	// making the failover assertion a condition rather than a race.
	homed []*aggd.Agent
}

// RunTreeSoak drives cfg.Agents real aggd agents through a two-level
// aggregation tree — cfg.Leaves leaf servers forwarding rollup frames to
// one root — over loopback HTTP, crash-kills leaves (and optionally the
// root front-end) mid-stream, then audits conservation at every tier:
//
//   - agent conservation: every fed event is sent, ring-dropped, or
//     send-dropped, across failovers;
//   - leaf tier no-double-count and at-least-once: the leaves together
//     admitted no more events than the agents shipped, and everything the
//     agents saw acknowledged;
//   - forwarder books: every leaf-admitted event was handed to that
//     incarnation's forwarder and ends the run acked or dropped, never
//     pending;
//   - root no-double-count and at-least-once: events the root admitted or
//     skipped (stale-epoch stragglers after an agent re-homed) never exceed
//     what the leaves forwarded, and cover everything the leaves saw acked;
//   - convergence: the root's served summary and heatmap are byte-identical
//     to the fault-free report.Aggregate of the same snapshots, and its
//     TSDB census matches its admitted per-kind counts exactly.
//
// The returned error (nil on a clean pass) joins every violated invariant.
//
//zerosum:wallclock the soak paces live goroutines and rebinding sockets on the host clock
func RunTreeSoak(cfg TreeSoakConfig) (*TreeSoakResult, error) {
	cfg = cfg.withDefaults()
	master := sim.NewRNG(cfg.Seed)

	// Ground truth first, exactly as the flat soak builds it: the root must
	// converge to the same bytes no matter how many tiers sit in between.
	snaps := make([]core.Snapshot, cfg.Agents)
	rows := make([]map[int]uint64, cfg.Agents)
	for r := range snaps {
		rng := master.Fork()
		snaps[r] = synthSnapshot(rng, r, cfg.Agents)
		rows[r] = synthCommRow(rng, r, cfg.Agents)
	}
	want, err := report.Aggregate(snaps, cfg.Thresholds)
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free aggregate: %w", err)
	}

	// The tree: root first (leaves need its address), then the leaf tier.
	// Front-ends take pass-through injectors — this suite's faults are
	// process deaths, not mangled packets.
	root := aggd.NewServer(aggd.ServerConfig{Thresholds: cfg.Thresholds})
	rootFront, err := startFrontend(root.Handler(), NewInjector(master.Fork(), FaultProfile{}))
	if err != nil {
		return nil, err
	}
	defer rootFront.stop()

	fwdTransport := &http.Transport{MaxIdleConnsPerHost: 2}
	defer fwdTransport.CloseIdleConnections()
	newLeafSrv := func(id string, epoch uint64) *aggd.Server {
		return aggd.NewServer(aggd.ServerConfig{
			Thresholds: cfg.Thresholds,
			Forward: &aggd.ForwardConfig{
				Upstream:      "http://" + rootFront.addr,
				LeafID:        id,
				Epoch:         epoch,
				FlushInterval: 2 * time.Millisecond,
				MaxRetries:    2,
				BackoffBase:   time.Millisecond,
				MaxBackoff:    8 * time.Millisecond,
				DisableGzip:   true,
				Client:        &http.Client{Transport: fwdTransport, Timeout: time.Second},
			},
		})
	}

	leaves := make([]*leafHost, cfg.Leaves)
	leafURLs := make([]string, cfg.Leaves)
	for i := range leaves {
		lh := &leafHost{id: fmt.Sprintf("leaf-%d", i), epoch: 1}
		lh.srv = newLeafSrv(lh.id, lh.epoch)
		if lh.front, err = startFrontend(lh.srv.Handler(), NewInjector(master.Fork(), FaultProfile{})); err != nil {
			return nil, err
		}
		defer lh.front.stop()
		leaves[i] = lh
		leafURLs[i] = "http://" + lh.front.addr
	}
	router, err := aggd.NewRouter(leafURLs)
	if err != nil {
		return nil, err
	}

	// Agents, each homed by the router with the full ring as failover order.
	agentTransport := &http.Transport{MaxIdleConnsPerHost: 2}
	defer agentTransport.CloseIdleConnections()
	slots := make([]*treeSlot, cfg.Agents)
	for r := range slots {
		node := fmt.Sprintf("n%02d", r/2)
		agent, err := aggd.NewAgent(aggd.AgentConfig{
			URLs:          router.Order(node, r),
			Job:           treeJob,
			Node:          node,
			Rank:          r,
			RingCap:       cfg.RingCap,
			BatchSize:     16,
			FlushInterval: time.Millisecond,
			MaxRetries:    2,
			BackoffBase:   time.Millisecond,
			MaxBackoff:    4 * time.Millisecond,
			DisableGzip:   true,
			// Mixed-version fleet: leaves must admit every supported batch
			// version and re-encode rollups at the current one.
			WireVersion: wireVersionFor(r),
			Client:      &http.Client{Transport: agentTransport, Timeout: 250 * time.Millisecond},
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: tree rank %d: %w", r, err)
		}
		slots[r] = &treeSlot{rank: r, agent: agent, feed: agent.Subscriber()}
	}

	// Fault schedule: leaf k dies at a staggered round and revives no
	// earlier than a window later, with a fresh store under a bumped
	// forwarder epoch. The revive is condition-gated, not tick-counted:
	// it waits until every agent that homed the leaf at kill time has
	// re-homed (observable via Agent.Home), so slow scheduling on small
	// hosts delays the revive instead of racing it. Kills are likewise
	// deferred while another leaf is still down, preserving the
	// one-dead-leaf-at-a-time shape the stagger encodes — agents always
	// have a live sibling to re-home to.
	killRound := make(map[int]int)
	reviveRound := make(map[int]int)
	killedOwned := false
	if cfg.KillLeaves > 0 {
		stagger := cfg.EventsPerAgent / (cfg.KillLeaves + 2)
		if stagger < 2 {
			stagger = 2
		}
		gap := cfg.EventsPerAgent / 10
		if gap < 4 {
			gap = 4
		}
		for i := 0; i < cfg.KillLeaves; i++ {
			killRound[i] = (i + 1) * stagger
			reviveRound[i] = killRound[i] + gap
		}
	}
	restartRootAt := -1
	if cfg.RestartRoot {
		restartRootAt = cfg.EventsPerAgent / 2
	}

	anyDead := func() bool {
		for _, lh := range leaves {
			if lh.dead {
				return true
			}
		}
		return false
	}
	revive := func(lh *leafHost, round int) error {
		lh.epoch++
		lh.srv = newLeafSrv(lh.id, lh.epoch)
		if err := lh.front.restartWith(lh.srv.Handler()); err != nil {
			return fmt.Errorf("chaos: revive %s: %w", lh.id, err)
		}
		lh.dead = false
		lh.homed = nil
		cfg.Logf("revived %s at round %d as epoch %d", lh.id, round, lh.epoch)
		return nil
	}

	for i := 0; i < cfg.EventsPerAgent; i++ {
		for li, lh := range leaves {
			kill, hasKill := killRound[li]
			rev, hasRevive := reviveRound[li]
			switch {
			case hasKill && kill <= i && !lh.dead && !anyDead():
				delete(killRound, li)
				lh.front.stop()
				lh.srv.Forwarder().Kill()
				lh.past = append(lh.past, lh.srv)
				lh.dead = true
				for _, s := range slots {
					if s.agent.Home() == leafURLs[li] {
						lh.homed = append(lh.homed, s.agent)
					}
				}
				if len(lh.homed) > 0 {
					killedOwned = true
				}
				cfg.Logf("killed %s at round %d (epoch %d, %d homed streams)",
					lh.id, i, lh.epoch, len(lh.homed))
			case hasRevive && rev <= i && lh.dead && rehomedAway(lh.homed, leafURLs[li]):
				delete(reviveRound, li)
				if err := revive(lh, i); err != nil {
					return nil, err
				}
			}
		}
		for _, s := range slots {
			s.feed(synthEvent(s.rank, i))
		}
		if i == restartRootAt {
			cfg.Logf("restarting root front-end at round %d", i)
			if err := rootFront.restart(); err != nil {
				return nil, fmt.Errorf("chaos: root restart: %w", err)
			}
			time.Sleep(time.Millisecond)
		}
		if i%8 == 7 {
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Any leaf still down when feeding ends revives here, again gated on
	// its homed streams leaving. Their rings hold the events fed since the
	// kill, so the flush ticker keeps attempting shipments into the dead
	// address until the failover fires — no new events are needed. The
	// deadline turns a wedged failover into a loud assertion, not a hang.
	deadline := time.Now().Add(10 * time.Second)
	for li, lh := range leaves {
		if !lh.dead {
			continue
		}
		for !rehomedAway(lh.homed, leafURLs[li]) && time.Now().Before(deadline) {
			time.Sleep(500 * time.Microsecond)
		}
		if err := revive(lh, cfg.EventsPerAgent); err != nil {
			return nil, err
		}
	}

	// Settle: let agents drain their rings into the (now all-alive) leaf
	// tier and the leaf forwarders work their rollup backlog to the root.
	time.Sleep(30 * time.Millisecond)

	var errs []error
	for _, s := range slots {
		if err := pushSnapshotRetry(s.agent, snaps[s.rank], rows[s.rank]); err != nil {
			errs = append(errs, fmt.Errorf("rank %d snapshot: %w", s.rank, err))
		}
	}
	res := &TreeSoakResult{}
	for _, s := range slots {
		_ = s.agent.Close()
		addStats(&res.Agent, s.agent.Stats())
	}
	// Closing a leaf flushes its final rollup (batches and the snapshot
	// documents just pushed) upstream before the books are read.
	for _, lh := range leaves {
		_ = lh.srv.Close()
		for _, srv := range append(lh.past, lh.srv) {
			addServerStats(&res.Leaf, srv.Stats())
			addFwdStats(&res.Forward, srv.Forwarder().Stats())
		}
	}
	res.Root = root.Stats()
	res.JobEvents = jobEvents(rootFront.addr, treeJob, &errs)

	// Tier-by-tier conservation.
	fed := uint64(cfg.Agents) * uint64(cfg.EventsPerAgent)
	a, lf, fw, rt := res.Agent, res.Leaf, res.Forward, res.Root
	if a.Enqueued != fed {
		errs = append(errs, fmt.Errorf("enqueue accounting: agents enqueued %d of %d fed events", a.Enqueued, fed))
	}
	if a.Enqueued != a.RingDrops+a.SendDrops+a.SentEvents {
		errs = append(errs, fmt.Errorf("agent conservation: enqueued %d != ring %d + send %d + sent %d",
			a.Enqueued, a.RingDrops, a.SendDrops, a.SentEvents))
	}
	if lf.IngestEvents > a.Enqueued-a.RingDrops {
		errs = append(errs, fmt.Errorf("leaf double count: leaves admitted %d events, agents only shipped %d",
			lf.IngestEvents, a.Enqueued-a.RingDrops))
	}
	if a.SentEvents > lf.IngestEvents {
		errs = append(errs, fmt.Errorf("lost acknowledged data at leaf tier: agents saw %d acked, leaves admitted %d",
			a.SentEvents, lf.IngestEvents))
	}
	if fw.EnqueuedEvents != lf.IngestEvents {
		errs = append(errs, fmt.Errorf("forwarder intake: leaves admitted %d events but handed %d to their forwarders",
			lf.IngestEvents, fw.EnqueuedEvents))
	}
	if fw.EnqueuedEvents != fw.AckedEvents+fw.DroppedEvents {
		errs = append(errs, fmt.Errorf("forwarder books: enqueued %d != acked %d + dropped %d",
			fw.EnqueuedEvents, fw.AckedEvents, fw.DroppedEvents))
	}
	if fw.PendingEvents != 0 {
		errs = append(errs, fmt.Errorf("forwarder books: %d events still pending after close", fw.PendingEvents))
	}
	if rt.IngestEvents+rt.RollupSkippedEvents > fw.EnqueuedEvents {
		errs = append(errs, fmt.Errorf("root double count: root saw %d events (admitted %d + skipped %d), leaves forwarded at most %d",
			rt.IngestEvents+rt.RollupSkippedEvents, rt.IngestEvents, rt.RollupSkippedEvents, fw.EnqueuedEvents))
	}
	if fw.AckedEvents > rt.IngestEvents+rt.RollupSkippedEvents {
		errs = append(errs, fmt.Errorf("lost acknowledged rollup data: leaves saw %d events acked, root admitted %d + skipped %d",
			fw.AckedEvents, rt.IngestEvents, rt.RollupSkippedEvents))
	}
	if rt.LostRollups > fw.DroppedRollups {
		errs = append(errs, fmt.Errorf("phantom rollup gaps: root counted %d lost rollups, forwarders only dropped %d",
			rt.LostRollups, fw.DroppedRollups))
	}
	if res.JobEvents != rt.IngestEvents {
		errs = append(errs, fmt.Errorf("root job census: /api/jobs reports %d events, root admitted %d",
			res.JobEvents, rt.IngestEvents))
	}
	if killedOwned && a.Rehomes == 0 {
		errs = append(errs, errors.New("failover: leaves that homed live streams were killed, yet no agent re-homed"))
	}
	checkSummary(rootFront.addr, treeJob, want, &errs)
	checkHeatmap(rootFront.addr, treeJob, rows, cfg.Agents, &errs)
	checkTSDB(rootFront.addr, treeJob, root, res.Root, &errs)

	cfg.Logf("tree seed %d: agents %+v", cfg.Seed, res.Agent)
	cfg.Logf("tree seed %d: leaves %+v", cfg.Seed, res.Leaf)
	cfg.Logf("tree seed %d: forward %+v", cfg.Seed, res.Forward)
	cfg.Logf("tree seed %d: root %+v", cfg.Seed, res.Root)
	return res, errors.Join(errs...)
}

// treeSlot is one rank's agent in the tree soak. Unlike the flat soak's
// slot there is exactly one incarnation: crashes happen to the tier above.
type treeSlot struct {
	rank  int
	agent *aggd.Agent
	feed  export.Subscriber
}

// rehomedAway reports whether every agent in homed has moved off deadURL.
// Vacuously true for an empty set, so unowned leaves revive on schedule.
func rehomedAway(homed []*aggd.Agent, deadURL string) bool {
	for _, a := range homed {
		if a.Home() == deadURL {
			return false
		}
	}
	return true
}

// restartWith rebinds the front-end's address with a replacement handler —
// the crash model for a leaf daemon whose process (store, dedup state and
// all) is replaced by a fresh incarnation rather than merely reconnected.
func (f *frontend) restartWith(h http.Handler) error {
	f.handler = h
	return f.restart()
}

func addServerStats(dst *aggd.ServerStats, s aggd.ServerStats) {
	dst.IngestBatches += s.IngestBatches
	dst.IngestEvents += s.IngestEvents
	dst.IngestSnapshots += s.IngestSnapshots
	dst.IngestErrors += s.IngestErrors
	dst.LostBatches += s.LostBatches
	dst.RecoveredBatches += s.RecoveredBatches
	dst.DupBatches += s.DupBatches
	dst.CorruptFrames += s.CorruptFrames
	dst.WriteErrors += s.WriteErrors
	dst.EventsLWP += s.EventsLWP
	dst.EventsHWT += s.EventsHWT
	dst.EventsGPU += s.EventsGPU
	dst.EventsMem += s.EventsMem
	dst.EventsIO += s.EventsIO
	dst.RollupFrames += s.RollupFrames
	dst.DupRollups += s.DupRollups
	dst.LostRollups += s.LostRollups
	dst.RecoveredRollups += s.RecoveredRollups
	dst.RollupSkippedEvents += s.RollupSkippedEvents
}

func addFwdStats(dst *aggd.FwdStats, s aggd.FwdStats) {
	dst.EnqueuedEvents += s.EnqueuedEvents
	dst.AckedEvents += s.AckedEvents
	dst.DroppedEvents += s.DroppedEvents
	dst.PendingEvents += s.PendingEvents
	dst.SentRollups += s.SentRollups
	dst.DroppedRollups += s.DroppedRollups
	dst.SentSnapshots += s.SentSnapshots
	dst.Retries += s.Retries
}
