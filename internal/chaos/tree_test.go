package chaos

import (
	"runtime"
	"testing"
)

// treeConfig is the acceptance shape: >= 8 agents hashed over 3 leaves
// under one root, every leaf crash-killed and restarted mid-run, the root
// front-end bounced midway.
func treeConfig(seed uint64, logf func(string, ...any)) TreeSoakConfig {
	return TreeSoakConfig{
		Seed:        seed,
		Agents:      9,
		Leaves:      3,
		RestartRoot: true,
		Logf:        logf,
	}
}

// TestTreeSoak runs the aggregation-tree soak for one seed (-seed) or a
// range (-seeds). Any failure names the seed that reproduces it.
func TestTreeSoak(t *testing.T) {
	n := *flagSeeds
	if n <= 0 {
		n = 1
	}
	for seed := *flagSeed; seed < *flagSeed+uint64(n); seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			lc := StartLeakCheck()
			res, err := RunTreeSoak(treeConfig(seed, t.Logf))
			if err != nil {
				t.Fatalf("tree soak failed (replay: go test ./internal/chaos -run TestTreeSoak -seed=%d): %v", seed, err)
			}
			lc.Assert(t)
			if res.Agent.SentEvents == 0 {
				t.Fatalf("seed %d: tree soak delivered nothing: %+v", seed, res.Agent)
			}
			if res.Root.RollupFrames == 0 {
				t.Fatalf("seed %d: root never saw a rollup frame: %+v", seed, res.Root)
			}
		})
	}
}

// TestTreeSoakRehomeGOMAXPROCS1 pins the PR-9-era flake: under -race on a
// 1-CPU host, seed 18 could revive a killed leaf before any of its homed
// agents got scheduled to fail a flush into the dead socket, so no stream
// ever re-homed and the failover assertion fired. The revive is now gated
// on every homed stream observably leaving the dead address (Agent.Home),
// which this test replays at the failing seed with GOMAXPROCS pinned to 1
// so the starvation shape reproduces on any host.
func TestTreeSoakRehomeGOMAXPROCS1(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	lc := StartLeakCheck()
	res, err := RunTreeSoak(treeConfig(18, t.Logf))
	if err != nil {
		t.Fatalf("tree soak failed (replay: go test ./internal/chaos -run TestTreeSoakRehome): %v", err)
	}
	lc.Assert(t)
	// Seed 18 kills leaves that home live streams, so the condition-gated
	// revive guarantees at least one observed failover.
	if res.Agent.Rehomes == 0 {
		t.Fatalf("expected at least one re-home at seed 18: %+v", res.Agent)
	}
}

// TestTreeSoakFaultFree pins the baseline equality chain through the whole
// tree: with no crashes and a lossless ring, every fed event flows
// fed == enqueued == sent == leaf-admitted == forwarded == acked == root-admitted
// with zero drops, duplicates, gaps, or skipped stragglers at any tier.
func TestTreeSoakFaultFree(t *testing.T) {
	lc := StartLeakCheck()
	res, err := RunTreeSoak(TreeSoakConfig{
		Seed:       42,
		Agents:     9,
		Leaves:     3,
		KillLeaves: -1,
		RingCap:    4096,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("fault-free tree soak failed: %v", err)
	}
	lc.Assert(t)
	fed := uint64(9 * 240)
	a, lf, fw, rt := res.Agent, res.Leaf, res.Forward, res.Root
	if a.SendDrops != 0 || a.RingDrops != 0 || a.Rehomes != 0 {
		t.Fatalf("fault-free run dropped or re-homed: %+v", a)
	}
	for name, got := range map[string]uint64{
		"agent sent":    a.SentEvents,
		"leaf admitted": lf.IngestEvents,
		"fwd enqueued":  fw.EnqueuedEvents,
		"fwd acked":     fw.AckedEvents,
		"root admitted": rt.IngestEvents,
		"root job view": res.JobEvents,
	} {
		if got != fed {
			t.Errorf("fault-free equality chain broken at %s: %d, want %d", name, got, fed)
		}
	}
	if fw.DroppedEvents != 0 || fw.DroppedRollups != 0 {
		t.Fatalf("fault-free forwarders dropped: %+v", fw)
	}
	if rt.DupRollups != 0 || rt.LostRollups != 0 || rt.RollupSkippedEvents != 0 ||
		rt.DupBatches != 0 || rt.CorruptFrames != 0 {
		t.Fatalf("fault-free root saw faults: %+v", rt)
	}
	if lf.DupBatches != 0 || lf.LostBatches != 0 || lf.CorruptFrames != 0 {
		t.Fatalf("fault-free leaves saw faults: %+v", lf)
	}
}
