package core

// Per-LWP adaptive sampling: quiescent threads are scanned less often.
//
// The paper's monitor samples every LWP at a fixed cadence, so a process
// with hundreds of parked worker threads pays the full /proc read+parse
// cost on every tick for threads that have not run in minutes. This file
// adds a per-thread change detector: an EWMA over each sample's activity
// (utime/stime jiffies plus context-switch deltas). While the smoothed
// activity stays below a threshold the thread's effective sampling period
// stretches by doubling — the monitor simply skips its scan for
// stretch-1 ticks — and any observed activity, or a stall-flag transition
// in either direction, snaps the thread back to the base rate on the very
// next tick.
//
// The mechanism composes with the two neighbouring controls:
//
//   - the §4.1 overhead watchdog (Config.Budget) doubles the global period
//     when the monitor's own cost exceeds its budget; adaptive stretching
//     reduces that cost per tick, so the watchdog fires later or not at
//     all. Per-interval utilization percentages stay correct under both
//     because applyThread scales the interval by the ticks that actually
//     elapsed for that thread.
//   - §3.3 stall detection stays exact in base-tick units: the counters
//     are cumulative, so a scan that shows zero deltas proves the thread
//     made no progress on every skipped tick in between, and the stall
//     streak advances by the full elapsed tick count. When StallTicks is
//     configured the stretch is additionally capped at StallTicks, so no
//     thread — stalled or about to be — goes unobserved for longer than
//     one stall window and flag transitions are never reported later than
//     a fixed-rate monitor plus one window would report them.
//
// All state lives in the threadState record; steady-state ticks with the
// detector enabled allocate nothing, exactly like fixed-rate ticks
// (TestMonitorTickZeroSteadyStateAlloc covers both).

// AdaptiveConfig tunes per-LWP adaptive sampling (zero value: disabled).
type AdaptiveConfig struct {
	// Enabled turns the per-thread change detector on.
	Enabled bool
	// Alpha is the EWMA smoothing factor in (0, 1]; higher weighs the
	// newest sample more. Default 0.5.
	Alpha float64
	// QuiescentBelow is the smoothed-activity threshold under which a
	// thread is considered quiescent and its sampling period stretches.
	// Activity is measured in jiffies-plus-context-switches per base
	// period. Default 0.5.
	QuiescentBelow float64
	// MaxStretch caps the period multiplier (always also capped at
	// StallTicks when stall detection is on). Default 8.
	MaxStretch int
}

func (a AdaptiveConfig) withDefaults() AdaptiveConfig {
	if a.Alpha <= 0 || a.Alpha > 1 {
		a.Alpha = 0.5
	}
	if a.QuiescentBelow <= 0 {
		a.QuiescentBelow = 0.5
	}
	if a.MaxStretch <= 0 {
		a.MaxStretch = 8
	}
	return a
}

// stretchCap returns the largest period multiplier the configuration
// allows: MaxStretch, tightened to StallTicks when stall detection needs
// every thread observed at least once per stall window.
func (m *Monitor) stretchCap() int {
	limit := m.cfg.Adaptive.MaxStretch
	if st := m.cfg.StallTicks; st > 0 && st < limit {
		limit = st
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// updateAdaptive runs the change detector for one freshly applied sample.
// activity is the raw per-elapsed-period activity, snap forces an
// immediate return to the base rate (observed progress or a stall-flag
// transition).
//
//zerosum:hotpath
func (m *Monitor) updateAdaptive(ts *threadState, activity float64, snap bool) {
	a := m.cfg.Adaptive
	ts.ewma = a.Alpha*activity + (1-a.Alpha)*ts.ewma
	if snap {
		ts.stretch = 1
		ts.skipLeft = 0
		return
	}
	if ts.ewma >= a.QuiescentBelow {
		// Quiet sample, but the smoothed activity has not decayed yet:
		// hold the base rate and let the EWMA decide next tick.
		ts.skipLeft = 0
		return
	}
	if ts.stretch < 1 {
		ts.stretch = 1
	}
	if limit := m.stretchCap(); ts.stretch < limit {
		ts.stretch *= 2
		if ts.stretch > limit {
			ts.stretch = limit
		}
	}
	ts.skipLeft = ts.stretch - 1
}

// AdaptiveSkips reports how many per-thread scans adaptive sampling has
// elided so far (one per thread per skipped tick).
func (m *Monitor) AdaptiveSkips() uint64 { return m.adaptiveSkips }
