package core

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"zerosum/internal/obs"
	"zerosum/internal/proc"
	"zerosum/internal/topology"
)

// writeProcTree lays out a /proc lookalike for this test process (RealFS
// derives the pid from os.Getpid, so the fixture must use it too).
func writeProcTree(t *testing.T, tids ...int) (root string, pid int) {
	t.Helper()
	root, pid = t.TempDir(), os.Getpid()
	cpus, err := topology.ParseCPUList("0-3")
	if err != nil {
		t.Fatal(err)
	}
	statusText := proc.RenderTaskStatus(proc.TaskStatus{
		Name: "alloc", State: proc.StateRunning, Tgid: pid, Pid: pid,
		Threads: len(tids), VmRSSKB: 2048, VmHWMKB: 4096, CpusAllowed: cpus,
		VoluntaryCtxt: 3, NonvoluntaryCtx: 1,
	})
	for _, tid := range tids {
		d := filepath.Join(root, strconv.Itoa(pid), "task", strconv.Itoa(tid))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		writeFile(t, filepath.Join(d, "stat"), proc.RenderTaskStat(proc.TaskStat{
			PID: tid, Comm: "alloc", State: proc.StateRunning,
			UTime: 100, STime: 10, NumThrs: len(tids), Processor: tid % 4,
		}))
		writeFile(t, filepath.Join(d, "status"), statusText)
	}
	pidDir := filepath.Join(root, strconv.Itoa(pid))
	writeFile(t, filepath.Join(pidDir, "status"), statusText)
	writeFile(t, filepath.Join(pidDir, "io"), proc.RenderTaskIO(proc.TaskIO{
		RChar: 1000, WChar: 500, SyscR: 10, SyscW: 5, ReadBytes: 4096, WriteBytes: 2048,
	}))
	writeFile(t, filepath.Join(root, "meminfo"), proc.RenderMeminfo(proc.Meminfo{
		MemTotalKB: 16 << 20, MemFreeKB: 8 << 20, MemAvailableKB: 12 << 20,
	}))
	writeFile(t, filepath.Join(root, "stat"), proc.RenderStat(proc.Stat{
		Aggregate: proc.CPUTimes{CPU: -1, User: 400, System: 40, Idle: 4000},
		PerCPU: []proc.CPUTimes{
			{CPU: 0, User: 100, System: 10, Idle: 1000},
			{CPU: 1, User: 100, System: 10, Idle: 1000},
			{CPU: 2, User: 100, System: 10, Idle: 1000},
			{CPU: 3, User: 100, System: 10, Idle: 1000},
		},
	}))
	return root, pid
}

func writeFile(t *testing.T, path, text string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMonitorTickZeroSteadyStateAlloc is the tentpole gate for the sampling
// hot path: once the thread set is stable and every cache is warm, a full
// Tick — task listing, per-LWP stat+status, /proc/stat, meminfo, process
// status and io, all through the fd-cached RealFS — allocates nothing.
// KeepSeries stays off because series retention allocates by design.
func TestMonitorTickZeroSteadyStateAlloc(t *testing.T) {
	root, pid := writeProcTree(t, os.Getpid(), 7001, 7002, 7003)
	_ = pid
	fs := &proc.RealFS{Root: root}
	defer fs.Close()

	now := time.Unix(0, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	m, err := New(Config{KeepSeries: false}, Deps{FS: fs, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Finish()

	// Warmup: first tick registers threads and opens descriptors, second
	// establishes /proc/stat baselines and settles buffer sizes.
	for i := 0; i < 2; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state Tick allocates %.1f per run, want 0", avg)
	}
	if reads, parses := m.SampleSkips(); reads != 0 || parses != 0 {
		t.Fatalf("sample skips = %d/%d, want 0/0", reads, parses)
	}
}

// TestMonitorTickZeroAllocWithObs re-runs the zero-alloc gate with the
// whole self-observability layer on: phase span recording, stall
// detection and the budget watchdog must all stay off the heap — the
// obs.Recorder is pure atomics and the watchdog only does arithmetic.
func TestMonitorTickZeroAllocWithObs(t *testing.T) {
	root, _ := writeProcTree(t, os.Getpid(), 7001, 7002, 7003)
	fs := &proc.RealFS{Root: root}
	defer fs.Close()

	now := time.Unix(0, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	rec := obs.NewRecorder(64) // smaller than the tick count: exercises wrap
	m, err := New(Config{
		KeepSeries: false,
		StallTicks: 3,
		Obs:        rec,
		Budget:     obs.Budget{Enabled: true},
	}, Deps{FS: fs, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Finish()

	for i := 0; i < 2; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Tick with obs+stall+budget allocates %.1f per run, want 0", avg)
	}
	// Every tick recorded its span and phases.
	samples := uint64(m.SelfStats().Samples)
	if got := rec.Count(obs.StageTick); got != samples {
		t.Errorf("tick spans = %d, samples = %d", got, samples)
	}
	if rec.Count(obs.StageScan) != samples || rec.Count(obs.StageSample) != samples {
		t.Errorf("phase spans: scan=%d sample=%d, want %d each",
			rec.Count(obs.StageScan), rec.Count(obs.StageSample), samples)
	}
	// The fixture's counters never change, so with StallTicks=3 every app
	// thread is eventually flagged — but never the monitor's own LWP.
	if m.StalledLWPs() == 0 {
		t.Error("static fixture threads should be flagged stalled")
	}
}

// TestMonitorTickZeroAllocWithAdaptive re-runs the zero-alloc gate with
// per-LWP adaptive sampling on. The fixture's counters never change, so
// every thread quiesces and the skip path — the one adaptive sampling adds
// to the hot loop — runs on most ticks; neither it nor the EWMA update may
// touch the heap.
func TestMonitorTickZeroAllocWithAdaptive(t *testing.T) {
	root, _ := writeProcTree(t, os.Getpid(), 7001, 7002, 7003)
	fs := &proc.RealFS{Root: root}
	defer fs.Close()

	now := time.Unix(0, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	m, err := New(Config{
		KeepSeries: false,
		Adaptive:   AdaptiveConfig{Enabled: true},
	}, Deps{FS: fs, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Finish()

	for i := 0; i < 2; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Tick with adaptive sampling allocates %.1f per run, want 0", avg)
	}
	if m.AdaptiveSkips() == 0 {
		t.Error("static fixture should have triggered adaptive skips")
	}
}

// TestAdaptiveStretchCap table-drives the interaction between MaxStretch
// and StallTicks: stall detection always wins when it is tighter.
func TestAdaptiveStretchCap(t *testing.T) {
	cases := []struct {
		maxStretch, stallTicks, want int
	}{
		{8, 0, 8},   // no stall detection: MaxStretch rules
		{8, 3, 3},   // stall window tighter than MaxStretch
		{2, 5, 2},   // MaxStretch tighter than the stall window
		{8, 1, 1},   // one-tick stall window: no stretching at all
		{0, 0, 8},   // defaults applied
		{16, 0, 16}, // larger cap honoured
	}
	for _, c := range cases {
		m := &Monitor{cfg: Config{
			StallTicks: c.stallTicks,
			Adaptive:   AdaptiveConfig{Enabled: true, MaxStretch: c.maxStretch}.withDefaults(),
		}}
		if got := m.stretchCap(); got != c.want {
			t.Errorf("stretchCap(MaxStretch=%d, StallTicks=%d) = %d, want %d",
				c.maxStretch, c.stallTicks, got, c.want)
		}
	}
}

// TestMonitorScanWorkersEquivalent runs the same fixture serially and with a
// sharded scan phase; every published series and summary row must match.
func TestMonitorScanWorkersEquivalent(t *testing.T) {
	root, _ := writeProcTree(t, os.Getpid(), 7001, 7002, 7003)
	run := func(workers int) Snapshot {
		fs := &proc.RealFS{Root: root}
		defer fs.Close()
		now := time.Unix(0, 0)
		clock := func() time.Time { now = now.Add(time.Second); return now }
		m, err := New(Config{KeepSeries: true, ScanWorkers: workers}, Deps{FS: fs, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Finish()
		for i := 0; i < 5; i++ {
			if err := m.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return m.Snapshot()
	}
	serial, sharded := run(1), run(4)
	if len(serial.LWPs) != len(sharded.LWPs) {
		t.Fatalf("LWP rows: serial %d, sharded %d", len(serial.LWPs), len(sharded.LWPs))
	}
	for i := range serial.LWPs {
		a, b := serial.LWPs[i], sharded.LWPs[i]
		if a.TID != b.TID || a.UTimePct != b.UTimePct || a.STimePct != b.STimePct ||
			a.VCtx != b.VCtx || a.NVCtx != b.NVCtx || !a.Affinity.Equal(b.Affinity) {
			t.Errorf("LWP row %d differs: serial %+v, sharded %+v", i, a, b)
		}
	}
	if serial.Samples != sharded.Samples || serial.MemPeakRSSKB != sharded.MemPeakRSSKB {
		t.Errorf("summary differs: serial %+v vs sharded %+v", serial.Samples, sharded.Samples)
	}
}

// TestMonitorThreadExitClosesReader checks fd-cache invalidation end to end:
// when a thread disappears from the task listing its cached descriptors are
// closed, and the monitor keeps sampling the remaining threads.
func TestMonitorThreadExitClosesReader(t *testing.T) {
	root, pid := writeProcTree(t, os.Getpid(), 7001)
	fs := &proc.RealFS{Root: root}
	defer fs.Close()
	now := time.Unix(0, 0)
	clock := func() time.Time { now = now.Add(time.Second); return now }
	m, err := New(Config{KeepSeries: true}, Deps{FS: fs, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Finish()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := m.liveThreadCount(); got != 2 {
		t.Fatalf("live threads = %d, want 2", got)
	}
	// Thread 7001 exits: its task dir vanishes from the listing.
	if err := os.RemoveAll(filepath.Join(root, strconv.Itoa(pid), "task", "7001")); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := m.liveThreadCount(); got != 1 {
		t.Fatalf("live threads after exit = %d, want 1", got)
	}
	if ts := m.threads[7001]; ts == nil || !ts.gone || ts.reader != nil {
		t.Fatalf("exited thread state not invalidated: %+v", ts)
	}
	// The exited thread still appears in the end-of-run summary.
	if got := len(m.Snapshot().LWPs); got != 2 {
		t.Fatalf("summary rows = %d, want 2", got)
	}
}
