package core

import (
	"fmt"

	"zerosum/internal/topology"
)

// WarningKind classifies configuration-evaluation findings (paper §3.2's
// "easy benefits": detecting LWPs sharing HWTs with measurable contention,
// under- and over-subscription, and resource exhaustion).
type WarningKind int

// Warning kinds.
const (
	WarnOversubscribed WarningKind = iota
	WarnAffinityOverlap
	WarnUnderutilized
	WarnIdleGPU
	WarnLowMemory
	WarnThreadMigration
	WarnDeadlockHint
	WarnSingleCore
)

func (k WarningKind) String() string {
	switch k {
	case WarnOversubscribed:
		return "oversubscription"
	case WarnAffinityOverlap:
		return "affinity-overlap"
	case WarnUnderutilized:
		return "underutilization"
	case WarnIdleGPU:
		return "idle-gpu"
	case WarnLowMemory:
		return "low-memory"
	case WarnThreadMigration:
		return "thread-migration"
	case WarnDeadlockHint:
		return "deadlock-hint"
	case WarnSingleCore:
		return "single-core"
	default:
		return "unknown"
	}
}

// Warning is one configuration-evaluation finding.
type Warning struct {
	Kind    WarningKind
	Message string
}

func (w Warning) String() string { return fmt.Sprintf("[%s] %s", w.Kind, w.Message) }

// EvalThresholds tunes Evaluate. Zero values select defaults.
type EvalThresholds struct {
	// NVCtxPerSec flags a thread as contended above this rate.
	NVCtxPerSec float64
	// BusyPct is the utilization above which a thread counts as busy.
	BusyPct float64
	// IdleHWTPct flags an allocated hardware thread as wasted above this
	// idle percentage.
	IdleHWTPct float64
	// GPUBusyPct flags a device as idle below this average busy.
	GPUBusyPct float64
	// MemFreeFrac flags low system memory below this free fraction.
	MemFreeFrac float64
}

func (e EvalThresholds) withDefaults() EvalThresholds {
	if e.NVCtxPerSec == 0 {
		e.NVCtxPerSec = 100
	}
	if e.BusyPct == 0 {
		e.BusyPct = 25
	}
	if e.IdleHWTPct == 0 {
		e.IdleHWTPct = 90
	}
	if e.GPUBusyPct == 0 {
		e.GPUBusyPct = 5
	}
	if e.MemFreeFrac == 0 {
		e.MemFreeFrac = 0.05
	}
	return e
}

// Evaluate runs the configuration checks against a snapshot and returns the
// findings, most severe first. This is the §3.2 capability the prototype
// paper leaves as future work, implemented over the data ZeroSum already
// collects.
func Evaluate(snap Snapshot, th EvalThresholds) []Warning {
	th = th.withDefaults()
	var out []Warning
	dur := snap.DurationSec
	if dur <= 0 {
		dur = 1
	}

	// Deadlock hint first: it supersedes everything else.
	if snap.DeadlockSuspected {
		out = append(out, Warning{WarnDeadlockHint,
			"all application threads idle with no CPU progress for several sampling periods; possible deadlock"})
	}

	busy := func(l ThreadSummary) bool { return l.UTimePct+l.STimePct >= th.BusyPct }
	// An oversubscribed thread is NOT "busy" by utilization — starvation
	// is the symptom — so pileup detection uses active (>= 5%) threads
	// and checks the *combined* load on the shared CPU.
	active := func(l ThreadSummary) bool { return l.UTimePct+l.STimePct >= 5 }

	// Single-core pileup: several active threads all confined to one CPU
	// whose combined demand saturates it (the paper's Table 1
	// default-srun disaster).
	type pile struct {
		tids []int
		load float64
	}
	pinned := map[int]*pile{} // cpu -> active single-CPU threads
	for _, l := range snap.LWPs {
		if l.Kind == KindZeroSum {
			continue
		}
		if active(l) && l.Affinity.Count() == 1 {
			c := l.Affinity.First()
			p := pinned[c]
			if p == nil {
				p = &pile{}
				pinned[c] = p
			}
			p.tids = append(p.tids, l.TID)
			p.load += l.UTimePct + l.STimePct
		}
	}
	for c, p := range pinned {
		if len(p.tids) > 1 && p.load >= 70 {
			out = append(out, Warning{WarnSingleCore, fmt.Sprintf(
				"%d active threads are all confined to CPU %d (combined load %.0f%%); request more CPUs per task (-c) or fix thread binding",
				len(p.tids), c, p.load)})
		}
	}

	// Oversubscription: high involuntary context-switch rates on threads
	// doing real work.
	for _, l := range snap.LWPs {
		rate := float64(l.NVCtx) / dur
		if rate >= th.NVCtxPerSec && active(l) {
			out = append(out, Warning{WarnOversubscribed, fmt.Sprintf(
				"LWP %d (%s) suffered %.0f involuntary context switches/sec; it is time-slicing its CPU with other work",
				l.TID, l.Label, rate)})
		}
	}

	// Affinity overlap between busy application threads.
	for i := 0; i < len(snap.LWPs); i++ {
		for j := i + 1; j < len(snap.LWPs); j++ {
			a, b := snap.LWPs[i], snap.LWPs[j]
			if a.Kind == KindZeroSum || b.Kind == KindZeroSum {
				continue
			}
			if !busy(a) || !busy(b) {
				continue
			}
			// Full-cpuset threads are "unbound", not overlapping by intent.
			if a.Affinity.Equal(snap.ProcessAff) || b.Affinity.Equal(snap.ProcessAff) {
				continue
			}
			if a.Affinity.Overlaps(b.Affinity) {
				out = append(out, Warning{WarnAffinityOverlap, fmt.Sprintf(
					"busy LWPs %d and %d share CPUs [%s]; expect involuntary context switches",
					a.TID, b.TID, a.Affinity.And(b.Affinity))})
			}
		}
	}

	// Underutilization: allocated HWTs sitting idle.
	idle := 0
	for _, h := range snap.HWTs {
		if h.IdlePct >= th.IdleHWTPct {
			idle++
		}
	}
	if len(snap.HWTs) > 0 && idle > 0 {
		out = append(out, Warning{WarnUnderutilized, fmt.Sprintf(
			"%d of %d allocated hardware threads were >= %.0f%% idle; the allocation is larger than the work",
			idle, len(snap.HWTs), th.IdleHWTPct)})
	}

	// Thread migrations under explicit pinning defeat the binding.
	for _, l := range snap.LWPs {
		if l.Kind == KindZeroSum {
			continue
		}
		if l.Affinity.Count() == 1 && l.ObservedCPUs.Count() > 1 {
			out = append(out, Warning{WarnThreadMigration, fmt.Sprintf(
				"LWP %d is pinned to CPU %d but was observed on CPUs [%s]",
				l.TID, l.Affinity.First(), l.ObservedCPUs)})
		}
	}

	// Idle GPUs.
	for _, g := range snap.GPUs {
		for _, metric := range g.Metrics {
			if metric.Name == "Device Busy %" && metric.Agg.Avg() < th.GPUBusyPct {
				out = append(out, Warning{WarnIdleGPU, fmt.Sprintf(
					"GPU %d averaged %.1f%% busy; the device is assigned but barely used",
					g.VisibleIndex, metric.Agg.Avg())})
			}
		}
	}

	// Memory headroom.
	if snap.MemTotalKB > 0 {
		frac := float64(snap.MemMinFreeKB) / float64(snap.MemTotalKB)
		if frac < th.MemFreeFrac {
			out = append(out, Warning{WarnLowMemory, fmt.Sprintf(
				"system free memory dropped to %.1f%% of %d MB; out-of-memory risk",
				frac*100, snap.MemTotalKB/1024)})
		}
	}
	return out
}

// OverlapMatrix returns, for each pair of busy threads, the shared CPU set
// — the §3.5 contention cross-check ("comparing the affinity list for a
// given LWP with the other LWPs in the process").
func OverlapMatrix(snap Snapshot) map[[2]int]topology.CPUSet {
	out := map[[2]int]topology.CPUSet{}
	for i := 0; i < len(snap.LWPs); i++ {
		for j := i + 1; j < len(snap.LWPs); j++ {
			a, b := snap.LWPs[i], snap.LWPs[j]
			if shared := a.Affinity.And(b.Affinity); !shared.Empty() {
				out[[2]int{a.TID, b.TID}] = shared
			}
		}
	}
	return out
}
