package core

import (
	"strings"
	"testing"

	"zerosum/internal/topology"
)

func baseSnap() Snapshot {
	return Snapshot{
		DurationSec: 60,
		Rank:        0, Size: 8, PID: 1000,
		Hostname:   "node",
		ProcessAff: topology.RangeCPUSet(1, 7),
		MemTotalKB: 16 << 20, MemMinFreeKB: 8 << 20,
	}
}

func kinds(ws []Warning) map[WarningKind]int {
	out := map[WarningKind]int{}
	for _, w := range ws {
		out[w.Kind]++
	}
	return out
}

func TestEvaluateCleanRun(t *testing.T) {
	snap := baseSnap()
	for i := 1; i <= 7; i++ {
		snap.LWPs = append(snap.LWPs, ThreadSummary{
			TID: 1000 + i, Label: "OpenMP", Kind: KindOpenMP,
			UTimePct: 95, STimePct: 1,
			Affinity:     topology.NewCPUSet(i),
			ObservedCPUs: topology.NewCPUSet(i),
		})
		snap.HWTs = append(snap.HWTs, HWTSummary{CPU: i, IdlePct: 3, UserPct: 95, SysPct: 2})
	}
	ws := Evaluate(snap, EvalThresholds{})
	if len(ws) != 0 {
		t.Fatalf("clean run produced warnings: %v", ws)
	}
}

func TestEvaluateSingleCorePileup(t *testing.T) {
	// The Table 1 disaster: seven busy threads all pinned to CPU 1.
	snap := baseSnap()
	for i := 0; i < 7; i++ {
		snap.LWPs = append(snap.LWPs, ThreadSummary{
			TID: 2000 + i, Kind: KindOpenMP, UTimePct: 13, STimePct: 13,
			Affinity: topology.NewCPUSet(1), ObservedCPUs: topology.NewCPUSet(1),
			NVCtx: 330000,
		})
	}
	ws := Evaluate(snap, EvalThresholds{})
	k := kinds(ws)
	if k[WarnSingleCore] != 1 {
		t.Fatalf("want single-core warning, got %v", ws)
	}
	if k[WarnOversubscribed] != 7 {
		t.Fatalf("want 7 oversubscription warnings, got %v", k)
	}
	if k[WarnAffinityOverlap] == 0 {
		t.Fatalf("want affinity overlap, got %v", k)
	}
}

func TestEvaluateMigrationUnderPinning(t *testing.T) {
	snap := baseSnap()
	snap.LWPs = append(snap.LWPs, ThreadSummary{
		TID: 1, Kind: KindOpenMP, UTimePct: 90,
		Affinity:     topology.NewCPUSet(2),
		ObservedCPUs: topology.NewCPUSet(2, 3),
	})
	ws := Evaluate(snap, EvalThresholds{})
	if kinds(ws)[WarnThreadMigration] != 1 {
		t.Fatalf("want migration warning, got %v", ws)
	}
}

func TestEvaluateUnderutilization(t *testing.T) {
	snap := baseSnap()
	snap.LWPs = append(snap.LWPs, ThreadSummary{TID: 1, Kind: KindMain, UTimePct: 90,
		Affinity: topology.NewCPUSet(1), ObservedCPUs: topology.NewCPUSet(1)})
	snap.HWTs = []HWTSummary{
		{CPU: 1, UserPct: 90, IdlePct: 5},
		{CPU: 2, IdlePct: 99.8},
		{CPU: 3, IdlePct: 99.8},
	}
	ws := Evaluate(snap, EvalThresholds{})
	found := false
	for _, w := range ws {
		if w.Kind == WarnUnderutilized && strings.Contains(w.Message, "2 of 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want '2 of 3' underutilization, got %v", ws)
	}
}

func TestEvaluateIdleGPUAndLowMemory(t *testing.T) {
	snap := baseSnap()
	snap.MemMinFreeKB = 100 << 10 // ~0.6% of 16GB
	var busyAgg MinAvgMax
	busyAgg.Add(1.0)
	snap.GPUs = []GPUSummary{{VisibleIndex: 0, Metrics: []GPUMetric{
		{Name: "Device Busy %", Agg: busyAgg},
	}}}
	ws := Evaluate(snap, EvalThresholds{})
	k := kinds(ws)
	if k[WarnIdleGPU] != 1 || k[WarnLowMemory] != 1 {
		t.Fatalf("want idle-gpu and low-memory, got %v", ws)
	}
}

func TestEvaluateDeadlockHint(t *testing.T) {
	snap := baseSnap()
	snap.DeadlockSuspected = true
	ws := Evaluate(snap, EvalThresholds{})
	if len(ws) == 0 || ws[0].Kind != WarnDeadlockHint {
		t.Fatalf("deadlock hint should lead: %v", ws)
	}
}

func TestEvaluateUnboundThreadsNotOverlap(t *testing.T) {
	// Table 2: threads share the full process cpuset by design; that is
	// "unbound", not an overlap misconfiguration.
	snap := baseSnap()
	for i := 0; i < 3; i++ {
		snap.LWPs = append(snap.LWPs, ThreadSummary{
			TID: 10 + i, Kind: KindOpenMP, UTimePct: 90,
			Affinity:     snap.ProcessAff.Clone(),
			ObservedCPUs: topology.NewCPUSet(1 + i),
		})
	}
	ws := Evaluate(snap, EvalThresholds{})
	if kinds(ws)[WarnAffinityOverlap] != 0 {
		t.Fatalf("unbound threads flagged as overlap: %v", ws)
	}
}

func TestEvaluateZeroSumThreadExempt(t *testing.T) {
	snap := baseSnap()
	snap.LWPs = append(snap.LWPs,
		ThreadSummary{TID: 1, Kind: KindOpenMP, UTimePct: 95, Affinity: topology.NewCPUSet(7), ObservedCPUs: topology.NewCPUSet(7)},
		ThreadSummary{TID: 2, Kind: KindZeroSum, Label: "ZeroSum", UTimePct: 90, Affinity: topology.NewCPUSet(7), ObservedCPUs: topology.NewCPUSet(7)},
	)
	ws := Evaluate(snap, EvalThresholds{})
	if kinds(ws)[WarnAffinityOverlap] != 0 {
		t.Fatalf("monitor thread should not count as contention: %v", ws)
	}
}

func TestOverlapMatrix(t *testing.T) {
	snap := baseSnap()
	snap.LWPs = []ThreadSummary{
		{TID: 1, Affinity: topology.RangeCPUSet(1, 3)},
		{TID: 2, Affinity: topology.RangeCPUSet(3, 5)},
		{TID: 3, Affinity: topology.NewCPUSet(7)},
	}
	m := OverlapMatrix(snap)
	if len(m) != 1 {
		t.Fatalf("overlaps = %v", m)
	}
	if s, ok := m[[2]int{1, 2}]; !ok || s.String() != "3" {
		t.Fatalf("overlap[1,2] = %v", m)
	}
}

func TestWarningString(t *testing.T) {
	w := Warning{WarnSingleCore, "boom"}
	if got := w.String(); !strings.Contains(got, "single-core") || !strings.Contains(got, "boom") {
		t.Fatalf("warning string: %q", got)
	}
	allKinds := []WarningKind{WarnOversubscribed, WarnAffinityOverlap, WarnUnderutilized,
		WarnIdleGPU, WarnLowMemory, WarnThreadMigration, WarnDeadlockHint, WarnSingleCore, WarningKind(99)}
	for _, k := range allKinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestMinAvgMax(t *testing.T) {
	var a MinAvgMax
	if a.Avg() != 0 {
		t.Fatal("empty avg")
	}
	for _, v := range []float64{5, 1, 3} {
		a.Add(v)
	}
	if a.Min != 1 || a.Max != 5 || a.Avg() != 3 || a.N != 3 {
		t.Fatalf("agg = %+v", a)
	}
}
