// Package core implements the ZeroSum monitor: the paper's primary
// contribution. A Monitor periodically samples a process's lightweight
// processes (threads) through the /proc filesystem interface, the hardware
// threads of its cpuset through /proc/stat, system and process memory
// through /proc/meminfo and /proc/<pid>/status, and GPU devices through an
// SMI — then produces the utilization report (paper §3.4, Listing 2), the
// contention report (§3.5), heartbeats (§3.3), configuration evaluation
// (§3.2) and CSV/stream exports (§3.6).
//
// The monitor is substrate-agnostic: it consumes proc.FS and gpu.SMI
// interfaces, so exactly the same code observes the kernel simulator and
// the live /proc of a real Linux host.
package core

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"zerosum/internal/export"
	"zerosum/internal/gpu"
	"zerosum/internal/obs"
	"zerosum/internal/proc"
	"zerosum/internal/topology"
)

// ThreadKind classifies an LWP in reports.
type ThreadKind int

// Thread kinds, in report precedence order.
const (
	KindOther ThreadKind = iota
	KindOpenMP
	KindZeroSum
	KindMain
)

func (k ThreadKind) String() string {
	switch k {
	case KindMain:
		return "Main"
	case KindOpenMP:
		return "OpenMP"
	case KindZeroSum:
		return "ZeroSum"
	default:
		return "Other"
	}
}

// Config tunes the monitor.
type Config struct {
	// Period is the sampling interval (the paper's default: 1 s).
	Period time.Duration
	// HeartbeatEvery emits a progress line every N samples (0 disables).
	HeartbeatEvery int
	// Heartbeat is where heartbeats go (nil disables).
	Heartbeat io.Writer
	// DeadlockSamples is how many consecutive all-idle samples trigger a
	// possible-deadlock hint (0 disables).
	DeadlockSamples int
	// Stream, when non-nil, receives every sample as it is taken.
	Stream *export.Stream
	// KeepSeries retains every periodic sample for CSV export (default
	// true; large runs may disable it and rely on the stream).
	KeepSeries bool
	// RebindAfter, with a Rebinder in Deps, spreads piled-up busy threads
	// across the cpuset after this many consecutive pileup samples
	// (0 disables). The paper's "automatically (re)assign threads to HWT
	// based on detection of bad configurations" future work.
	RebindAfter int
	// ScanWorkers shards the per-LWP read+parse phase of each tick across a
	// persistent worker pool (<=1 scans serially). Workers are spawned once
	// in New and stopped by Finish; they help when a process has hundreds of
	// threads and the sampling period is tight.
	ScanWorkers int
	// StallTicks marks an LWP Stalled after this many consecutive samples
	// with no progress — no utime/stime jiffy and no context-switch delta
	// (0 disables). The paper's §3.3 heartbeat/progress detection.
	StallTicks int
	// Obs, when non-nil, records tick/scan/sample spans and stage stats:
	// the monitor's own tracing, served at /debug/obs.
	Obs *obs.Recorder
	// Budget configures the runtime overhead watchdog (§4.1): when the
	// monitor's own cost exceeds Budget.MaxPct of one core, the sampling
	// period doubles instead of violating the paper's guarantee.
	Budget obs.Budget
	// Adaptive enables per-LWP adaptive sampling: quiescent threads are
	// scanned less often, snapping back to the base period on activity
	// (see adaptive.go).
	Adaptive AdaptiveConfig
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = time.Second
	}
	if c.Adaptive.Enabled {
		c.Adaptive = c.Adaptive.withDefaults()
	}
	return c
}

// Deps are the monitor's data sources.
type Deps struct {
	FS    proc.FS
	SMI   gpu.SMI // nil when no GPUs are visible
	Clock func() time.Time
	// Machine, when known, lets the monitor reason about cores vs HWTs
	// (hwloc's role in the paper's tool).
	Machine *topology.Machine
	// Rebinder, with Config.RebindAfter, enables automatic re-affinity.
	Rebinder Rebinder
}

// Scan outcomes for one thread in one tick (threadState.scan).
const (
	scanOK    = uint8(iota) // stat+status read and parsed
	scanRead                // a read failed (thread likely exited mid-tick)
	scanParse               // a row was present but malformed
)

// threadState is the per-LWP tracking record. Everything needed to resample
// the thread lives here — the cached /proc descriptors, the read buffers and
// the parse scratch — so steady-state ticks allocate nothing and scan
// workers can process distinct threads concurrently without sharing.
type threadState struct {
	tid        int
	comm       string
	kind       ThreadKind
	alsoOpenMP bool // main thread participating in the OpenMP team

	// reader holds the thread's stat+status descriptors open across ticks
	// (nil after a read error; reopened on the next tick the tid is listed).
	reader    proc.TaskReader
	statBuf   []byte          // raw stat text, reused across ticks
	statusBuf []byte          // raw status text, reused across ticks
	stat      proc.TaskStat   // parse scratch, valid when scan == scanOK
	status    proc.TaskStatus // parse scratch, valid when scan == scanOK
	scan      uint8           // this tick's scan outcome
	fresh     bool            // first successful sample not yet applied

	firstSeen time.Time
	lastSeen  time.Time

	firstUTime, firstSTime uint64 // jiffies at first observation
	lastUTime, lastSTime   uint64
	prevUTime, prevSTime   uint64 // previous sample, for per-interval %

	vctx, nvctx    uint64
	minflt, majflt uint64
	lastUserPct    float64
	lastSysPct     float64
	nswap          uint64
	lastCPU        int
	state          proc.TaskState

	affinity     topology.CPUSet
	observedCPUs topology.CPUSet
	cpuChanges   int // observed migrations between samples
	affChanges   int // affinity list changed while running
	gone         bool

	// Heartbeat/progress detection (§3.3). A beat is a sample in which the
	// thread showed any CPU or scheduling delta; StallTicks beat-less
	// samples in a row mark it stalled until the next beat.
	beats       uint64
	stallStreak int
	stalled     bool
	stallEvents int // times the thread entered the stalled state

	// Adaptive sampling (adaptive.go): smoothed activity, the current
	// power-of-two period multiplier, ticks left to skip before the next
	// scan, and ticks actually skipped since the last applied sample
	// (the interval scale for per-period percentages).
	ewma         float64
	stretch      int
	skipLeft     int
	skippedTicks int
}

// Monitor observes one process.
type Monitor struct {
	cfg  Config
	deps Deps
	bfs  proc.BufFS // buffered view of deps.FS (fd-cached on a real host)

	pid      int
	host     string
	started  time.Time
	finished time.Time
	done     bool

	rank, size int // -1 until MPI is detected
	selfTID    int // the monitor's own LWP, reported as ZeroSum kind

	threads map[int]*threadState
	order   []int // TIDs in discovery order

	prevCPU  map[int]proc.CPUTimes // previous /proc/stat rows
	procAff  topology.CPUSet
	procComm string

	samples       int
	lwpReadSkips  uint64 // task stat/status vanished between listing and read
	lwpParseSkips uint64 // task stat/status present but malformed
	lastIO        proc.TaskIO
	ioSeen        bool
	ioSeries      []export.IOSample
	lwpSeries     []export.LWPSample
	hwtSeries     []export.HWTSample
	gpuSeries     []export.GPUSample
	memSeries     []export.MemSample
	gpuAgg        []map[string]*MinAvgMax // per device, per metric
	gpuInfo       []gpu.DeviceInfo
	memMinFreeKB  uint64
	memPeakRSSKB  uint64

	idleStreak   int
	deadlockHint bool
	pileupStreak int
	rebound      bool
	rebinds      []RebindEvent

	// Self-observability (§4.1): the effective sampling period (the
	// watchdog doubles it under overhead pressure), watchdog firings,
	// accumulated tick wall time, and the current stalled-LWP count.
	period        time.Duration
	degradations  int
	tickWallNS    int64
	stalledCount  int
	adaptiveSkips uint64 // per-thread scans elided by adaptive sampling

	// selfStatsPub holds the obs.SelfStats snapshot published at the end of
	// every tick (and by Finish). The monitor itself is single-goroutine and
	// unsynchronized, so concurrent readers — the /debug/obs HTTP handler in
	// particular — must read this copy via PublishedSelfStats instead of
	// calling SelfStats into live state. A mutex-guarded copy rather than an
	// atomic.Value: storing a struct in an atomic.Value boxes it, and the
	// publish runs on the zero-allocation Tick path.
	selfStatsMu  sync.Mutex
	selfStatsPub obs.SelfStats //zerosum:guardedby selfStatsMu

	// MPI point-to-point accounting (this rank's row of the heatmap).
	sentBytes map[int]uint64
	recvBytes map[int]uint64

	kindHints map[int]ThreadKind
	ompHints  map[int]bool

	// Steady-state tick scratch: every buffer, parse struct and published
	// sample below is reused across ticks so Tick allocates nothing once the
	// thread set is stable (the paper's <0.5 % overhead contract; gated by
	// TestMonitorTickZeroSteadyStateAlloc).
	tidScratch []int          // Tasks listing
	seen       map[int]bool   // tids listed this tick, clear()ed per tick
	scanList   []*threadState // threads to scan this tick

	statBuf    []byte // raw /proc/stat
	memBuf     []byte // raw /proc/meminfo
	pstatusBuf []byte // raw /proc/<pid>/status
	ioBuf      []byte // raw /proc/<pid>/io

	statScratch    proc.Stat
	memScratch     proc.Meminfo
	pstatusScratch proc.TaskStatus
	ioScratch      proc.TaskIO
	gpuVals        []float64

	// Published sample payloads. Event payload pointers are borrowed:
	// subscribers must copy anything they keep past the Publish call (see
	// export.Event), which lets the monitor reuse these across ticks.
	lwpSample export.LWPSample
	hwtSample export.HWTSample
	gpuSample export.GPUSample
	memSample export.MemSample
	ioSample  export.IOSample

	scan scanPool // worker pool for the per-LWP phase (Config.ScanWorkers)
}

// New creates a monitor for the process served by deps.FS. Call Tick
// periodically (or Run in real time), then Finish and Report.
func New(cfg Config, deps Deps) (*Monitor, error) {
	if deps.FS == nil {
		return nil, fmt.Errorf("core: Deps.FS is required")
	}
	if deps.Clock == nil {
		return nil, fmt.Errorf("core: Deps.Clock is required")
	}
	m := &Monitor{
		cfg:          cfg.withDefaults(),
		deps:         deps,
		bfs:          proc.AdaptFS(deps.FS),
		pid:          deps.FS.SelfPID(),
		host:         deps.FS.Hostname(),
		started:      deps.Clock(),
		rank:         -1,
		size:         -1,
		selfTID:      -1,
		threads:      make(map[int]*threadState),
		seen:         make(map[int]bool),
		prevCPU:      make(map[int]proc.CPUTimes),
		sentBytes:    make(map[int]uint64),
		recvBytes:    make(map[int]uint64),
		kindHints:    make(map[int]ThreadKind),
		ompHints:     make(map[int]bool),
		memMinFreeKB: ^uint64(0),
	}
	m.period = m.cfg.Period
	m.scan.start(m.cfg.ScanWorkers)
	if deps.SMI != nil {
		n := deps.SMI.DeviceCount()
		m.gpuAgg = make([]map[string]*MinAvgMax, n)
		for i := 0; i < n; i++ {
			m.gpuAgg[i] = make(map[string]*MinAvgMax)
			info, err := deps.SMI.Info(i)
			if err != nil {
				return nil, fmt.Errorf("core: query GPU %d: %w", i, err)
			}
			m.gpuInfo = append(m.gpuInfo, info)
		}
	}
	// Detect the process-level configuration once at startup (§3.1).
	if raw, err := deps.FS.ProcessStatus(m.pid); err == nil {
		if st, err := proc.ParseTaskStatus(raw); err == nil {
			m.procAff = st.CpusAllowed
			m.procComm = st.Name
		}
	}
	return m, nil
}

// PID returns the monitored process id.
func (m *Monitor) PID() int { return m.pid }

// Hostname returns the node name recorded at startup.
func (m *Monitor) Hostname() string { return m.host }

// SetMPIInfo records the communicator rank and size once the asynchronous
// thread observes MPI_Initialized (paper §3.1.3).
func (m *Monitor) SetMPIInfo(rank, size int) {
	m.rank, m.size = rank, size
}

// SetSelfTID identifies the monitor's own LWP so reports classify it as the
// ZeroSum thread.
func (m *Monitor) SetSelfTID(tid int) { m.selfTID = tid }

// HintKind classifies a thread from external knowledge (OMPT callbacks, GPU
// runtime registration). OpenMP hints on the main thread set its
// "Main, OpenMP" dual label instead of replacing Main.
func (m *Monitor) HintKind(tid int, kind ThreadKind) {
	if kind == KindOpenMP {
		m.ompHints[tid] = true
		return
	}
	m.kindHints[tid] = kind
}

// RecordP2P is the PMPI wrapper entry point: it accumulates point-to-point
// bytes per peer rank (paper §3.1.3; Figure 5's heatmap row).
func (m *Monitor) RecordP2P(send bool, peer int, bytes uint64) {
	if send {
		m.sentBytes[peer] += bytes
	} else {
		m.recvBytes[peer] += bytes
	}
}

// RecvBytes returns this rank's received-bytes row keyed by source rank.
func (m *Monitor) RecvBytes() map[int]uint64 { return m.recvBytes }

// SentBytes returns this rank's sent-bytes row keyed by destination rank.
func (m *Monitor) SentBytes() map[int]uint64 { return m.sentBytes }

// Samples returns how many sampling ticks have run.
func (m *Monitor) Samples() int { return m.samples }

// SampleSkips reports per-thread rows dropped during sampling: reads counts
// tasks that vanished between listing and read, parses counts rows that were
// present but malformed. Non-zero parses on a real host deserve a look.
func (m *Monitor) SampleSkips() (reads, parses uint64) {
	return m.lwpReadSkips, m.lwpParseSkips
}

// elapsedSec returns seconds since the monitor started.
func (m *Monitor) elapsedSec(now time.Time) float64 {
	return now.Sub(m.started).Seconds()
}

// Tick takes one sample: threads, hardware threads, memory, GPUs. The
// asynchronous ZeroSum thread calls this once per period.
//
//zerosum:hotpath
func (m *Monitor) Tick() error {
	if m.done {
		return fmt.Errorf("core: monitor already finished")
	}
	now := m.deps.Clock()
	t := m.elapsedSec(now)
	m.samples++

	rec := m.cfg.Obs
	phaseStart := now
	if err := m.sampleThreads(now, t); err != nil {
		rec.RecordError(obs.StageScan)
		return err
	}
	if rec != nil {
		pm := m.deps.Clock()
		rec.Record(obs.StageScan, phaseStart, pm.Sub(phaseStart))
		phaseStart = pm
	}
	if err := m.sampleHWTs(t); err != nil {
		rec.RecordError(obs.StageSample)
		return err
	}
	if err := m.sampleMemory(t); err != nil {
		rec.RecordError(obs.StageSample)
		return err
	}
	if err := m.sampleGPUs(t); err != nil {
		rec.RecordError(obs.StageSample)
		return err
	}
	m.sampleIO(t)
	if rec != nil {
		rec.Record(obs.StageSample, phaseStart, m.deps.Clock().Sub(phaseStart))
	}
	m.maybeHeartbeat(t)
	m.checkDeadlock()
	m.maybeRebind(t)

	end := m.deps.Clock()
	m.tickWallNS += end.Sub(now).Nanoseconds()
	rec.Record(obs.StageTick, now, end.Sub(now))
	m.maybeDegrade(t)
	m.publishSelfStats()
	return nil
}

// publishSelfStats refreshes the snapshot served to concurrent readers.
// Once per tick, uncontended (the only other taker is an occasional debug
// scrape) and allocation-free — the zero-alloc Tick gates cover it.
//
//zerosum:coldpath
func (m *Monitor) publishSelfStats() {
	s := m.SelfStats()
	m.selfStatsMu.Lock()
	m.selfStatsPub = s
	m.selfStatsMu.Unlock()
}

// sampleThreads runs the per-LWP phase of a tick in three steps: list the
// tids and make sure each has a threadState with open descriptors, scan
// (read+parse, serial or sharded across the worker pool), then apply the
// results and publish — the apply step stays serial so publication order and
// counter updates are deterministic.
func (m *Monitor) sampleThreads(now time.Time, t float64) error {
	tids, err := m.bfs.TasksInto(m.pid, m.tidScratch[:0])
	m.tidScratch = tids
	if err != nil {
		return fmt.Errorf("core: list tasks: %w", err)
	}
	clear(m.seen)
	m.scanList = m.scanList[:0]
	for _, tid := range tids {
		m.seen[tid] = true
		ts := m.threads[tid]
		if ts != nil && ts.skipLeft > 0 {
			// Adaptive sampling: this thread's smoothed activity earned it a
			// stretched period; skip the read+parse entirely this tick. It
			// stays listed (so it is not mistaken for an exited thread) and
			// its cached descriptors stay open.
			ts.skipLeft--
			ts.skippedTicks++
			m.adaptiveSkips++
			continue
		}
		if ts == nil {
			// Not registered in m.threads until its first successful scan:
			// a transient thread that dies before it is ever sampled must
			// not appear in reports.
			ts = &threadState{tid: tid, firstSeen: now, fresh: true}
			ts.kind = m.classify(tid)
		}
		if ts.reader == nil {
			rd, err := m.bfs.OpenTask(m.pid, tid)
			if err != nil {
				m.lwpReadSkips++ // died between listing and open
				continue
			}
			ts.reader = rd
		}
		m.scanList = append(m.scanList, ts)
	}
	m.scan.run(m.scanList)
	for _, ts := range m.scanList {
		m.applyThread(ts, now, t)
	}
	for tid, ts := range m.threads {
		if !m.seen[tid] && !ts.gone {
			ts.gone = true
			// An exited thread is dead, not stalled; keep its stallEvents
			// history but take it out of the live stalled count — and ship
			// one final not-stalled sample, because downstream gauges keyed
			// by TID (aggd's zerosum_lwp_stalled) only clear on an explicit
			// Stalled=false event and would otherwise pin the dead TID for
			// the rest of the job.
			if ts.stalled {
				ts.stalled = false
				m.stalledCount--
				m.lwpSample = export.LWPSample{
					TimeSec: t, TID: ts.tid, Kind: m.kindLabel(ts),
					State: byte(ts.state),
					VCtx:  ts.vctx, NVCtx: ts.nvctx,
					MinFlt: ts.minflt, MajFlt: ts.majflt, NSwap: ts.nswap,
					CPU: ts.lastCPU,
				}
				if m.cfg.KeepSeries {
					m.lwpSeries = append(m.lwpSeries, m.lwpSample)
				}
				m.publish(export.Event{Kind: export.EventLWP, TimeSec: t, LWP: &m.lwpSample})
			}
			ts.closeReader()
		}
	}
	return nil
}

// scanThread reads and parses one thread's stat+status into its own scratch.
// Workers call this concurrently on distinct threadStates; it must not touch
// any monitor-wide state.
//
//zerosum:hotpath
func scanThread(ts *threadState) {
	var err error
	if ts.statBuf, err = ts.reader.StatInto(ts.statBuf); err != nil {
		ts.scan = scanRead // transient thread: died between listing and read
		return
	}
	if err = proc.ParseTaskStatInto(ts.statBuf, &ts.stat); err != nil {
		// One malformed row (e.g. torn read of an exiting task) must not
		// lose the whole sample; flag it and keep going.
		ts.scan = scanParse
		return
	}
	if ts.statusBuf, err = ts.reader.StatusInto(ts.statusBuf); err != nil {
		ts.scan = scanRead
		return
	}
	if err = proc.ParseTaskStatusInto(ts.statusBuf, &ts.status); err != nil {
		ts.scan = scanParse
		return
	}
	ts.scan = scanOK
}

// applyThread folds one scanned thread into the monitor state and publishes
// its sample. Serial.
func (m *Monitor) applyThread(ts *threadState, now time.Time, t float64) {
	switch ts.scan {
	case scanRead:
		m.lwpReadSkips++
		// The cached descriptors are dead (procfs returns ESRCH once the
		// thread exits); drop them so a relisted tid reopens fresh ones.
		ts.closeReader()
		return
	case scanParse:
		m.lwpParseSkips++
		if ts.fresh {
			ts.closeReader() // unregistered: the state is dropped entirely
		}
		return
	}
	st, status := &ts.stat, &ts.status
	if ts.fresh {
		ts.fresh = false
		ts.comm = st.Comm
		ts.firstUTime, ts.firstSTime = st.UTime, st.STime
		ts.prevUTime, ts.prevSTime = st.UTime, st.STime
		ts.lastCPU = st.Processor
		m.threads[ts.tid] = ts
		m.order = append(m.order, ts.tid)
	}
	if m.ompHints[ts.tid] {
		if ts.kind == KindMain {
			ts.alsoOpenMP = true
		} else if ts.kind == KindOther {
			ts.kind = KindOpenMP
		}
	}
	// Per-interval utilization percentages, against the effective period
	// (the watchdog may have degraded it from Config.Period) scaled by the
	// ticks that actually elapsed for this thread — adaptive sampling may
	// have skipped some, and the cumulative deltas cover all of them.
	elapsedTicks := 1 + ts.skippedTicks
	ts.skippedTicks = 0
	interval := m.period.Seconds() * float64(elapsedTicks)
	if interval <= 0 {
		interval = 1
	}
	du := float64(st.UTime-ts.prevUTime) / proc.ClockTick
	ds := float64(st.STime-ts.prevSTime) / proc.ClockTick
	userPct := du / interval * 100
	sysPct := ds / interval * 100

	// Heartbeat/progress detection (§3.3): any CPU-time or context-switch
	// delta since the previous sample is a beat. The monitor's own LWP is
	// exempt — at 1 Hz its per-interval cost rounds to zero jiffies and it
	// would flag itself.
	progressed := st.UTime != ts.prevUTime || st.STime != ts.prevSTime ||
		status.VoluntaryCtxt != ts.vctx || status.NonvoluntaryCtx != ts.nvctx
	stallFlipped := false
	if progressed {
		ts.beats++
		ts.stallStreak = 0
		if ts.stalled {
			ts.stalled = false
			m.stalledCount--
			stallFlipped = true
		}
	} else if m.cfg.StallTicks > 0 && ts.kind != KindZeroSum {
		// Counters are cumulative, so a no-delta scan proves the thread made
		// no progress on every skipped tick too: the streak advances in
		// base-tick units and stall detection timing is unchanged by
		// adaptive sampling.
		ts.stallStreak += elapsedTicks
		if ts.stallStreak >= m.cfg.StallTicks && !ts.stalled {
			ts.stalled = true
			ts.stallEvents++
			m.stalledCount++
			stallFlipped = true
		}
	}
	if m.cfg.Adaptive.Enabled {
		jiffies := float64((st.UTime - ts.prevUTime) + (st.STime - ts.prevSTime))
		ctx := float64((status.VoluntaryCtxt - ts.vctx) + (status.NonvoluntaryCtx - ts.nvctx))
		m.updateAdaptive(ts, (jiffies+ctx)/float64(elapsedTicks), progressed || stallFlipped)
	}

	if st.Processor != ts.lastCPU {
		ts.cpuChanges++
	}
	if !status.CpusAllowed.Equal(ts.affinity) && !ts.affinity.Empty() {
		ts.affChanges++
	}
	ts.lastSeen = now
	ts.prevUTime, ts.prevSTime = st.UTime, st.STime
	ts.lastUTime, ts.lastSTime = st.UTime, st.STime
	ts.vctx = status.VoluntaryCtxt
	ts.nvctx = status.NonvoluntaryCtx
	ts.minflt, ts.majflt = st.MinFlt, st.MajFlt
	ts.nswap = st.NSwap
	ts.lastCPU = st.Processor
	ts.state = st.State
	ts.affinity.CopyFrom(status.CpusAllowed)
	ts.lastUserPct, ts.lastSysPct = userPct, sysPct
	ts.observedCPUs.Set(st.Processor)

	m.lwpSample = export.LWPSample{
		TimeSec: t, TID: ts.tid, Kind: m.kindLabel(ts), State: byte(st.State),
		UserPct: userPct, SysPct: sysPct,
		VCtx: status.VoluntaryCtxt, NVCtx: status.NonvoluntaryCtx,
		MinFlt: st.MinFlt, MajFlt: st.MajFlt, NSwap: st.NSwap,
		CPU: st.Processor, Stalled: ts.stalled,
	}
	if m.cfg.KeepSeries {
		m.lwpSeries = append(m.lwpSeries, m.lwpSample)
	}
	m.publish(export.Event{Kind: export.EventLWP, TimeSec: t, LWP: &m.lwpSample})
}

func (ts *threadState) closeReader() {
	if ts.reader != nil {
		_ = ts.reader.Close() // read-only descriptors: nothing to flush
		ts.reader = nil
	}
}

func (m *Monitor) sampleHWTs(t float64) error {
	raw, err := m.bfs.StatInto(m.statBuf)
	m.statBuf = raw
	if err != nil {
		return fmt.Errorf("core: read /proc/stat: %w", err)
	}
	if err := proc.ParseStatInto(raw, &m.statScratch); err != nil {
		return fmt.Errorf("core: parse /proc/stat: %w", err)
	}
	for _, row := range m.statScratch.PerCPU {
		prev, ok := m.prevCPU[row.CPU]
		m.prevCPU[row.CPU] = row
		if !ok {
			continue // first sample establishes the baseline
		}
		dTotal := float64(row.Total() - prev.Total())
		if dTotal <= 0 {
			continue
		}
		m.hwtSample = export.HWTSample{
			TimeSec: t,
			CPU:     row.CPU,
			IdlePct: float64(row.Idle-prev.Idle) / dTotal * 100,
			SysPct:  float64(row.System-prev.System) / dTotal * 100,
			UserPct: float64(row.User-prev.User) / dTotal * 100,
		}
		if m.cfg.KeepSeries {
			m.hwtSeries = append(m.hwtSeries, m.hwtSample)
		}
		m.publish(export.Event{Kind: export.EventHWT, TimeSec: t, HWT: &m.hwtSample})
	}
	return nil
}

func (m *Monitor) sampleMemory(t float64) error {
	rawMem, err := m.bfs.MeminfoInto(m.memBuf)
	m.memBuf = rawMem
	if err != nil {
		return fmt.Errorf("core: read meminfo: %w", err)
	}
	if err := proc.ParseMeminfoInto(rawMem, &m.memScratch); err != nil {
		return fmt.Errorf("core: parse meminfo: %w", err)
	}
	mi := &m.memScratch
	var rss, hwm uint64
	raw, err := m.bfs.ProcessStatusInto(m.pid, m.pstatusBuf)
	m.pstatusBuf = raw
	if err == nil {
		if err := proc.ParseTaskStatusInto(raw, &m.pstatusScratch); err == nil {
			rss, hwm = m.pstatusScratch.VmRSSKB, m.pstatusScratch.VmHWMKB
			m.procAff.CopyFrom(m.pstatusScratch.CpusAllowed)
		}
	}
	if mi.MemFreeKB < m.memMinFreeKB {
		m.memMinFreeKB = mi.MemFreeKB
	}
	if rss > m.memPeakRSSKB {
		m.memPeakRSSKB = rss
	}
	m.memSample = export.MemSample{
		TimeSec: t, TotalKB: mi.MemTotalKB, FreeKB: mi.MemFreeKB,
		AvailKB: mi.MemAvailableKB, ProcRSSKB: rss, ProcHWMKB: hwm,
	}
	if m.cfg.KeepSeries {
		m.memSeries = append(m.memSeries, m.memSample)
	}
	m.publish(export.Event{Kind: export.EventMem, TimeSec: t, Mem: &m.memSample})
	return nil
}

func (m *Monitor) sampleGPUs(t float64) error {
	if m.deps.SMI == nil {
		return nil
	}
	for i := 0; i < m.deps.SMI.DeviceCount(); i++ {
		metrics, err := m.deps.SMI.Sample(i)
		if err != nil {
			return fmt.Errorf("core: sample GPU %d: %w", i, err)
		}
		m.gpuVals = metrics.AppendValues(m.gpuVals[:0])
		for j, name := range gpu.MetricNames {
			agg := m.gpuAgg[i][name]
			if agg == nil {
				agg = &MinAvgMax{}
				m.gpuAgg[i][name] = agg
			}
			agg.Add(m.gpuVals[j])
			m.gpuSample = export.GPUSample{TimeSec: t, GPU: i, Metric: name, Value: m.gpuVals[j]}
			if m.cfg.KeepSeries {
				m.gpuSeries = append(m.gpuSeries, m.gpuSample)
			}
			m.publish(export.Event{Kind: export.EventGPU, TimeSec: t, GPU: &m.gpuSample})
		}
	}
	return nil
}

// sampleIO reads /proc/<pid>/io; hosts without the file (permissions,
// non-Linux) are tolerated silently, like the paper's optional collectors.
func (m *Monitor) sampleIO(t float64) {
	raw, err := m.bfs.ProcessIOInto(m.pid, m.ioBuf)
	m.ioBuf = raw
	if err != nil {
		return
	}
	if err := proc.ParseTaskIOInto(raw, &m.ioScratch); err != nil {
		return
	}
	io := &m.ioScratch
	m.lastIO = *io
	m.ioSeen = true
	m.ioSample = export.IOSample{
		TimeSec: t, RChar: io.RChar, WChar: io.WChar,
		SyscR: io.SyscR, SyscW: io.SyscW,
		ReadBytes: io.ReadBytes, WriteBytes: io.WriteBytes,
	}
	if m.cfg.KeepSeries {
		m.ioSeries = append(m.ioSeries, m.ioSample)
	}
	m.publish(export.Event{Kind: export.EventIO, TimeSec: t, IO: &m.ioSample})
}

// maybeHeartbeat formats a progress line; rate-limited by HeartbeatEvery,
// so it is off the steady-state sampling path.
//
//zerosum:coldpath
func (m *Monitor) maybeHeartbeat(t float64) {
	if m.cfg.HeartbeatEvery <= 0 || m.cfg.Heartbeat == nil {
		return
	}
	if m.samples%m.cfg.HeartbeatEvery == 0 {
		fmt.Fprintf(m.cfg.Heartbeat, "ZeroSum: heartbeat t=%.1fs samples=%d threads=%d\n",
			t, m.samples, m.liveThreadCount())
	}
}

// checkDeadlock implements the §3.3 future-work idea: if every application
// thread has been sleeping with no CPU progress for several consecutive
// samples, flag a possible deadlock.
func (m *Monitor) checkDeadlock() {
	if m.cfg.DeadlockSamples <= 0 {
		return
	}
	allIdle := true
	active := 0
	for _, ts := range m.threads {
		if ts.gone || ts.kind == KindZeroSum {
			continue
		}
		active++
		progressed := ts.lastUTime != ts.firstUTime || ts.lastSTime != ts.firstSTime
		_ = progressed
		if ts.state == proc.StateRunning {
			allIdle = false
		}
		// Progress in the last interval also clears the streak.
		if ts.lastUTime != ts.prevUTime || ts.lastSTime != ts.prevSTime {
			allIdle = false
		}
	}
	if active == 0 {
		allIdle = false
	}
	if allIdle {
		m.idleStreak++
		if m.idleStreak >= m.cfg.DeadlockSamples {
			m.deadlockHint = true
		}
	} else {
		m.idleStreak = 0
	}
}

// DeadlockSuspected reports whether the deadlock heuristic fired.
func (m *Monitor) DeadlockSuspected() bool { return m.deadlockHint }

// CurrentPeriod returns the sampling period in effect right now; the
// overhead watchdog may have doubled it from Config.Period.
func (m *Monitor) CurrentPeriod() time.Duration { return m.period }

// Degradations counts overhead-watchdog firings; each one doubled the
// sampling period.
func (m *Monitor) Degradations() int { return m.degradations }

// StalledLWPs returns how many live threads are currently stalled.
func (m *Monitor) StalledLWPs() int { return m.stalledCount }

// SelfStats assembles the monitor's own cost accounting (§4.1): CPU time
// consumed by the ZeroSum LWP (when identified via SetSelfTID), the
// accumulated tick wall time, and the overhead percentage against the run
// so far. Under the simulator ticks execute in zero simulated time, so the
// self LWP's jiffies carry the accounting; on a real host whichever of the
// two measures is larger is reported.
//
// SelfStats reads live monitor state (including the threads map a running
// Tick mutates), so like every other Monitor method it must not be called
// concurrently with Tick; concurrent readers use PublishedSelfStats.
func (m *Monitor) SelfStats() obs.SelfStats {
	now := m.deps.Clock()
	if m.done {
		now = m.finished
	}
	var selfCPU float64
	if ts := m.threads[m.selfTID]; ts != nil {
		selfCPU = float64((ts.lastUTime-ts.firstUTime)+(ts.lastSTime-ts.firstSTime)) / proc.ClockTick
	}
	s := obs.SelfStats{
		Samples:       m.samples,
		SelfCPUSec:    selfCPU,
		TickWallSec:   float64(m.tickWallNS) / 1e9,
		ElapsedSec:    m.elapsedSec(now),
		Degradations:  m.degradations,
		PeriodSec:     m.period.Seconds(),
		StalledLWPs:   m.stalledCount,
		AdaptiveSkips: m.adaptiveSkips,
	}
	s.OverheadPct = obs.Overhead(s.SelfCPUSec, s.TickWallSec, s.ElapsedSec)
	if m.cfg.Budget.Enabled {
		s.BudgetPct = m.cfg.Budget.WithDefaults().MaxPct
	}
	return s
}

// PublishedSelfStats returns the SelfStats snapshot published by the most
// recent Tick (or Finish); the zero value before the first tick. Unlike
// SelfStats it is safe to call from any goroutine while the monitor runs,
// which is what the /debug/obs handler needs.
func (m *Monitor) PublishedSelfStats() obs.SelfStats {
	m.selfStatsMu.Lock()
	s := m.selfStatsPub
	m.selfStatsMu.Unlock()
	return s
}

// maybeDegrade runs the overhead-budget watchdog: when the monitor's own
// measured cost exceeds the configured budget, double the sampling period
// rather than violate the paper's <0.5 % contract. Fires rarely by
// construction (Budget.MaxDegrade caps it).
//
//zerosum:coldpath
func (m *Monitor) maybeDegrade(t float64) {
	if !m.cfg.Budget.Enabled {
		return
	}
	stats := m.SelfStats()
	if !m.cfg.Budget.Exceeded(stats) {
		return
	}
	m.period *= 2
	m.degradations++
	if m.cfg.Heartbeat != nil {
		fmt.Fprintf(m.cfg.Heartbeat,
			"ZeroSum: self-overhead %.2f%% over budget %.2f%%; sampling period degraded to %s (t=%.1fs)\n",
			stats.OverheadPct, stats.BudgetPct, m.period, t)
	}
}

func (m *Monitor) liveThreadCount() int {
	n := 0
	for _, ts := range m.threads {
		if !ts.gone {
			n++
		}
	}
	return n
}

func (m *Monitor) classify(tid int) ThreadKind {
	if k, ok := m.kindHints[tid]; ok {
		return k
	}
	if tid == m.pid {
		return KindMain
	}
	if tid == m.selfTID {
		return KindZeroSum
	}
	return KindOther
}

func (m *Monitor) kindLabel(ts *threadState) string {
	if ts.kind == KindMain && ts.alsoOpenMP {
		return "Main, OpenMP"
	}
	return ts.kind.String()
}

//zerosum:hotpath
func (m *Monitor) publish(ev export.Event) {
	if m.cfg.Stream != nil {
		m.cfg.Stream.Publish(ev)
	}
}

// Finish freezes the monitor; further Ticks fail. It stops the scan worker
// pool and releases every cached /proc descriptor.
func (m *Monitor) Finish() {
	if !m.done {
		m.done = true
		m.finished = m.deps.Clock()
		m.scan.stop()
		for _, ts := range m.threads {
			ts.closeReader()
		}
		m.publishSelfStats()
	}
}

// Duration returns the observed execution time.
func (m *Monitor) Duration() time.Duration {
	end := m.finished
	if !m.done {
		end = m.deps.Clock()
	}
	return end.Sub(m.started)
}

// WriteLWPCSV dumps the thread time series.
func (m *Monitor) WriteLWPCSV(w io.Writer) error { return export.WriteLWPCSV(w, m.lwpSeries) }

// WriteHWTCSV dumps the hardware-thread time series.
func (m *Monitor) WriteHWTCSV(w io.Writer) error { return export.WriteHWTCSV(w, m.hwtSeries) }

// WriteGPUCSV dumps the GPU metric time series.
func (m *Monitor) WriteGPUCSV(w io.Writer) error { return export.WriteGPUCSV(w, m.gpuSeries) }

// WriteMemCSV dumps the memory time series.
func (m *Monitor) WriteMemCSV(w io.Writer) error { return export.WriteMemCSV(w, m.memSeries) }

// WriteIOCSV dumps the process I/O time series.
func (m *Monitor) WriteIOCSV(w io.Writer) error { return export.WriteIOCSV(w, m.ioSeries) }

// IOSeries exposes the collected I/O samples.
func (m *Monitor) IOSeries() []export.IOSample { return m.ioSeries }

// LWPSeries exposes the collected thread samples (for analysis/examples).
func (m *Monitor) LWPSeries() []export.LWPSample { return m.lwpSeries }

// HWTSeries exposes the collected hardware-thread samples.
func (m *Monitor) HWTSeries() []export.HWTSample { return m.hwtSeries }

// MemSeries exposes the collected memory samples.
func (m *Monitor) MemSeries() []export.MemSample { return m.memSeries }

// GPUSeries exposes the collected GPU samples.
func (m *Monitor) GPUSeries() []export.GPUSample { return m.gpuSeries }

// sortedTIDs returns thread ids in discovery order (stable reports).
func (m *Monitor) sortedTIDs() []int {
	out := append([]int(nil), m.order...)
	sort.Ints(out)
	return out
}
