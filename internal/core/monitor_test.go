package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"zerosum/internal/export"
	"zerosum/internal/gpu"
	"zerosum/internal/proc"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// fakeFS is a scripted proc.FS whose state tests mutate between ticks.
type fakeFS struct {
	pid      int
	host     string
	tasks    []int
	stats    map[int]proc.TaskStat
	statuses map[int]proc.TaskStatus
	mem      proc.Meminfo
	io       proc.TaskIO
	stat     proc.Stat
	procStat proc.TaskStatus
	failTask map[int]bool
}

func newFakeFS() *fakeFS {
	f := &fakeFS{
		pid:      1000,
		host:     "testnode",
		stats:    map[int]proc.TaskStat{},
		statuses: map[int]proc.TaskStatus{},
		failTask: map[int]bool{},
		mem:      proc.Meminfo{MemTotalKB: 16 << 20, MemFreeKB: 8 << 20, MemAvailableKB: 10 << 20},
		procStat: proc.TaskStatus{Name: "app", State: proc.StateRunning, Tgid: 1000, Pid: 1000,
			Threads: 1, VmRSSKB: 1 << 20, VmHWMKB: 1 << 20, CpusAllowed: topology.RangeCPUSet(0, 3)},
	}
	f.addThread(1000, "app", proc.StateRunning, topology.RangeCPUSet(0, 3))
	f.stat = proc.Stat{
		Aggregate: proc.CPUTimes{CPU: -1},
		PerCPU: []proc.CPUTimes{
			{CPU: 0}, {CPU: 1}, {CPU: 2}, {CPU: 3},
		},
	}
	return f
}

func (f *fakeFS) addThread(tid int, comm string, state proc.TaskState, aff topology.CPUSet) {
	f.tasks = append(f.tasks, tid)
	f.stats[tid] = proc.TaskStat{PID: tid, Comm: comm, State: state, NumThrs: len(f.tasks)}
	f.statuses[tid] = proc.TaskStatus{Name: comm, State: state, Tgid: f.pid, Pid: tid,
		Threads: len(f.tasks), CpusAllowed: aff}
}

// burn adds CPU jiffies to a thread (utime, stime).
func (f *fakeFS) burn(tid int, du, ds uint64) {
	st := f.stats[tid]
	st.UTime += du
	st.STime += ds
	f.stats[tid] = st
}

func (f *fakeFS) SelfPID() int     { return f.pid }
func (f *fakeFS) Hostname() string { return f.host }
func (f *fakeFS) Tasks(pid int) ([]int, error) {
	if pid != f.pid {
		return nil, fmt.Errorf("no process %d", pid)
	}
	return append([]int(nil), f.tasks...), nil
}
func (f *fakeFS) TaskStat(pid, tid int) ([]byte, error) {
	if f.failTask[tid] {
		return nil, fmt.Errorf("task %d vanished", tid)
	}
	st, ok := f.stats[tid]
	if !ok {
		return nil, fmt.Errorf("no task %d", tid)
	}
	return []byte(proc.RenderTaskStat(st)), nil
}
func (f *fakeFS) TaskStatus(pid, tid int) ([]byte, error) {
	st, ok := f.statuses[tid]
	if !ok {
		return nil, fmt.Errorf("no task %d", tid)
	}
	return []byte(proc.RenderTaskStatus(st)), nil
}
func (f *fakeFS) ProcessStatus(pid int) ([]byte, error) {
	return []byte(proc.RenderTaskStatus(f.procStat)), nil
}
func (f *fakeFS) ProcessIO(pid int) ([]byte, error) {
	return []byte(proc.RenderTaskIO(f.io)), nil
}
func (f *fakeFS) Meminfo() ([]byte, error) {
	return []byte(proc.RenderMeminfo(f.mem)), nil
}
func (f *fakeFS) Stat() ([]byte, error) {
	return []byte(proc.RenderStat(f.stat)), nil
}

var _ proc.FS = (*fakeFS)(nil)

// testClock is an advanceable clock.
type testClock struct{ now time.Time }

func (c *testClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func (c *testClock) fn() func() time.Time    { return func() time.Time { return c.now } }

func newTestMonitor(t *testing.T, fs proc.FS, cfg Config) (*Monitor, *testClock) {
	t.Helper()
	clk := &testClock{now: time.Date(2023, 11, 12, 9, 0, 0, 0, time.UTC)}
	m, err := New(cfg, Deps{FS: fs, Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	return m, clk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, Deps{}); err == nil {
		t.Fatal("nil FS should error")
	}
	if _, err := New(Config{}, Deps{FS: newFakeFS()}); err == nil {
		t.Fatal("nil clock should error")
	}
}

func TestTickDiscoversThreadsAndUtilization(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1001, "omp", proc.StateRunning, topology.NewCPUSet(1))
	m, clk := newTestMonitor(t, fs, Config{Period: time.Second, KeepSeries: true})
	m.HintKind(1001, KindOpenMP)

	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	// Thread 1001 burns 90 jiffies user + 10 sys over the next second.
	fs.burn(1001, 90, 10)
	fs.burn(1000, 50, 0)
	clk.advance(time.Second)
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	m.Finish()
	snap := m.Snapshot()
	if len(snap.LWPs) != 2 {
		t.Fatalf("threads = %d", len(snap.LWPs))
	}
	byTID := map[int]ThreadSummary{}
	for _, l := range snap.LWPs {
		byTID[l.TID] = l
	}
	if byTID[1000].Label != "Main" {
		t.Fatalf("main label = %q", byTID[1000].Label)
	}
	if byTID[1001].Label != "OpenMP" {
		t.Fatalf("omp label = %q", byTID[1001].Label)
	}
	// Utilization over the 1-second observed window.
	if u := byTID[1001].UTimePct; u < 85 || u > 95 {
		t.Fatalf("omp utime%% = %v, want ~90", u)
	}
	if s := byTID[1001].STimePct; s < 8 || s > 12 {
		t.Fatalf("omp stime%% = %v, want ~10", s)
	}
	// Per-sample series captured.
	if len(m.LWPSeries()) != 4 { // 2 threads x 2 ticks
		t.Fatalf("lwp samples = %d", len(m.LWPSeries()))
	}
}

func TestMainAlsoOpenMPLabel(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{Period: time.Second})
	m.HintKind(1000, KindOpenMP) // OMPT reports the master as a team member
	m.Tick()
	clk.advance(time.Second)
	m.Tick()
	snap := m.Snapshot()
	if snap.LWPs[0].Label != "Main, OpenMP" {
		t.Fatalf("label = %q, want 'Main, OpenMP'", snap.LWPs[0].Label)
	}
}

func TestZeroSumSelfClassification(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1002, "zerosum", proc.StateSleeping, topology.NewCPUSet(3))
	m, clk := newTestMonitor(t, fs, Config{})
	m.SetSelfTID(1002)
	m.Tick()
	clk.advance(time.Second)
	m.Tick()
	snap := m.Snapshot()
	var found bool
	for _, l := range snap.LWPs {
		if l.TID == 1002 {
			found = true
			if l.Label != "ZeroSum" {
				t.Fatalf("label = %q", l.Label)
			}
		}
	}
	if !found {
		t.Fatal("zerosum thread missing")
	}
}

func TestHWTSampling(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{Period: time.Second, KeepSeries: true})
	m.Tick() // baseline
	// CPU1: 60 user, 10 sys, 30 idle over the second.
	fs.stat.PerCPU[1].User += 60
	fs.stat.PerCPU[1].System += 10
	fs.stat.PerCPU[1].Idle += 30
	// CPU2 fully idle.
	fs.stat.PerCPU[2].Idle += 100
	clk.advance(time.Second)
	m.Tick()
	m.Finish()
	snap := m.Snapshot()
	by := map[int]HWTSummary{}
	for _, h := range snap.HWTs {
		by[h.CPU] = h
	}
	if h := by[1]; h.UserPct < 59 || h.UserPct > 61 || h.SysPct < 9 || h.SysPct > 11 {
		t.Fatalf("cpu1 = %+v", h)
	}
	if h := by[2]; h.IdlePct < 99 {
		t.Fatalf("cpu2 idle = %+v", h)
	}
	// CPUs outside the process affinity (none here: 0-3 all in) —
	// restrict affinity and confirm filtering.
	fs.procStat.CpusAllowed = topology.NewCPUSet(1)
	m2, clk2 := newTestMonitor(t, fs, Config{Period: time.Second, KeepSeries: true})
	m2.Tick()
	fs.stat.PerCPU[2].Idle += 100
	fs.stat.PerCPU[1].User += 100
	clk2.advance(time.Second)
	m2.Tick()
	snap2 := m2.Snapshot()
	if len(snap2.HWTs) != 1 || snap2.HWTs[0].CPU != 1 {
		t.Fatalf("HWT filter: %+v", snap2.HWTs)
	}
}

func TestMemoryWatermarks(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{KeepSeries: true})
	m.Tick()
	fs.mem.MemFreeKB = 1 << 20
	fs.procStat.VmRSSKB = 4 << 20
	fs.procStat.VmHWMKB = 4 << 20
	clk.advance(time.Second)
	m.Tick()
	fs.mem.MemFreeKB = 6 << 20
	clk.advance(time.Second)
	m.Tick()
	snap := m.Snapshot()
	if snap.MemMinFreeKB != 1<<20 {
		t.Fatalf("min free = %d", snap.MemMinFreeKB)
	}
	if snap.MemPeakRSSKB != 4<<20 {
		t.Fatalf("peak rss = %d", snap.MemPeakRSSKB)
	}
	if len(m.MemSeries()) != 3 {
		t.Fatalf("mem samples = %d", len(m.MemSeries()))
	}
}

func TestGPUAggregation(t *testing.T) {
	fs := newFakeFS()
	var now sim.Time
	dev := gpu.NewDevice(gpu.DeviceInfo{VisibleIndex: 0, TrueIndex: 4, Model: "test"},
		gpu.DefaultParams(), func() sim.Time { return now }, nil)
	smi := gpu.NewSimSMI([]*gpu.Device{dev}, nil)
	clk := &testClock{now: time.Unix(0, 0)}
	m, err := New(Config{KeepSeries: true}, Deps{FS: fs, SMI: smi, Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	m.Tick() // baseline sample at t=0
	dev.Submit(500*sim.Millisecond, 0)
	now = 1 * sim.Second
	clk.advance(time.Second)
	m.Tick()
	now = 2 * sim.Second
	clk.advance(time.Second)
	m.Tick()
	snap := m.Snapshot()
	if len(snap.GPUs) != 1 {
		t.Fatalf("gpus = %d", len(snap.GPUs))
	}
	if snap.GPUs[0].TrueIndex != 4 {
		t.Fatalf("true index = %d", snap.GPUs[0].TrueIndex)
	}
	var busy *GPUMetric
	for i := range snap.GPUs[0].Metrics {
		if snap.GPUs[0].Metrics[i].Name == "Device Busy %" {
			busy = &snap.GPUs[0].Metrics[i]
		}
	}
	if busy == nil {
		t.Fatal("no busy metric")
	}
	// Samples: 0 (baseline), ~50 (busy second), 0 (idle second).
	if busy.Agg.Max < 45 || busy.Agg.Max > 55 {
		t.Fatalf("busy max = %v, want ~50", busy.Agg.Max)
	}
	if busy.Agg.Min != 0 {
		t.Fatalf("busy min = %v", busy.Agg.Min)
	}
	if len(m.GPUSeries()) != 3*len(gpu.MetricNames) {
		t.Fatalf("gpu samples = %d", len(m.GPUSeries()))
	}
}

func TestHeartbeat(t *testing.T) {
	fs := newFakeFS()
	var hb strings.Builder
	m, clk := newTestMonitor(t, fs, Config{HeartbeatEvery: 2, Heartbeat: &hb})
	for i := 0; i < 4; i++ {
		m.Tick()
		clk.advance(time.Second)
	}
	if got := strings.Count(hb.String(), "heartbeat"); got != 2 {
		t.Fatalf("heartbeats = %d, want 2:\n%s", got, hb.String())
	}
	if !strings.Contains(hb.String(), "threads=1") {
		t.Fatalf("heartbeat content: %s", hb.String())
	}
}

func TestDeadlockDetection(t *testing.T) {
	fs := newFakeFS()
	// Main thread asleep forever, never accruing CPU.
	st := fs.stats[1000]
	st.State = proc.StateSleeping
	fs.stats[1000] = st
	m, clk := newTestMonitor(t, fs, Config{DeadlockSamples: 3})
	for i := 0; i < 5; i++ {
		m.Tick()
		clk.advance(time.Second)
	}
	if !m.DeadlockSuspected() {
		t.Fatal("idle threads should trigger the deadlock hint")
	}
	// A progressing thread clears it.
	fs2 := newFakeFS()
	m2, clk2 := newTestMonitor(t, fs2, Config{DeadlockSamples: 3})
	for i := 0; i < 5; i++ {
		fs2.burn(1000, 50, 1)
		m2.Tick()
		clk2.advance(time.Second)
	}
	if m2.DeadlockSuspected() {
		t.Fatal("busy thread must not trigger deadlock hint")
	}
}

func TestTransientThreadSkipped(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1003, "flash", proc.StateRunning, topology.NewCPUSet(0))
	fs.failTask[1003] = true // dies between listing and stat read
	m, _ := newTestMonitor(t, fs, Config{})
	if err := m.Tick(); err != nil {
		t.Fatalf("transient thread should be skipped, got %v", err)
	}
	snap := m.Snapshot()
	if len(snap.LWPs) != 1 {
		t.Fatalf("threads = %d, want 1 (transient skipped)", len(snap.LWPs))
	}
}

func TestGoneThreadMarked(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1004, "w", proc.StateRunning, topology.NewCPUSet(0))
	m, clk := newTestMonitor(t, fs, Config{})
	m.Tick()
	// Thread exits.
	fs.tasks = fs.tasks[:1]
	clk.advance(time.Second)
	m.Tick()
	if m.liveThreadCount() != 1 {
		t.Fatalf("live = %d", m.liveThreadCount())
	}
	// It still appears in the final report (observed during execution).
	if len(m.Snapshot().LWPs) != 2 {
		t.Fatal("exited thread should stay in the summary")
	}
}

func TestMPIInfoAndP2P(t *testing.T) {
	fs := newFakeFS()
	m, _ := newTestMonitor(t, fs, Config{})
	m.SetMPIInfo(3, 8)
	m.RecordP2P(true, 4, 1000)
	m.RecordP2P(false, 2, 500)
	m.RecordP2P(false, 2, 250)
	snap := m.Snapshot()
	if snap.Rank != 3 || snap.Size != 8 {
		t.Fatalf("rank/size = %d/%d", snap.Rank, snap.Size)
	}
	if m.SentBytes()[4] != 1000 || m.RecvBytes()[2] != 750 {
		t.Fatalf("p2p accounting: %v %v", m.SentBytes(), m.RecvBytes())
	}
}

func TestStreamPublishes(t *testing.T) {
	fs := newFakeFS()
	var stream export.Stream
	events := map[export.EventKind]int{}
	stream.Subscribe(func(ev export.Event) { events[ev.Kind]++ })
	clk := &testClock{now: time.Unix(0, 0)}
	m, err := New(Config{Stream: &stream}, Deps{FS: fs, Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	m.Tick()
	for i := range fs.stat.PerCPU {
		fs.stat.PerCPU[i].Idle += 100
	}
	clk.advance(time.Second)
	m.Tick()
	if events[export.EventLWP] == 0 || events[export.EventMem] == 0 {
		t.Fatalf("events: %v", events)
	}
	if events[export.EventHWT] == 0 {
		t.Fatalf("expected HWT events after second tick: %v", events)
	}
}

func TestFinishBlocksTicks(t *testing.T) {
	fs := newFakeFS()
	m, _ := newTestMonitor(t, fs, Config{})
	m.Tick()
	m.Finish()
	if err := m.Tick(); err == nil {
		t.Fatal("tick after finish should error")
	}
	if m.Duration() < 0 {
		t.Fatal("duration")
	}
}

func TestCSVExports(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{KeepSeries: true})
	m.Tick()
	clk.advance(time.Second)
	fs.burn(1000, 10, 2)
	m.Tick()
	var lwp, hwt, mem strings.Builder
	if err := m.WriteLWPCSV(&lwp); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteHWTCSV(&hwt); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteMemCSV(&mem); err != nil {
		t.Fatal(err)
	}
	back, err := export.ReadLWPCSV(strings.NewReader(lwp.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("lwp rows = %d", len(back))
	}
}

func TestAffinityChangeTracked(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{})
	m.Tick()
	st := fs.statuses[1000]
	st.CpusAllowed = topology.NewCPUSet(2)
	fs.statuses[1000] = st
	clk.advance(time.Second)
	m.Tick()
	if m.threads[1000].affChanges != 1 {
		t.Fatalf("affChanges = %d", m.threads[1000].affChanges)
	}
}

func TestObservedCPUMigrationTracking(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{})
	m.Tick()
	for _, cpu := range []int{1, 2, 1} {
		st := fs.stats[1000]
		st.Processor = cpu
		fs.stats[1000] = st
		clk.advance(time.Second)
		m.Tick()
	}
	snap := m.Snapshot()
	if snap.LWPs[0].ObservedCPUs.Count() != 3 { // CPUs 0,1,2
		t.Fatalf("observed = %s", snap.LWPs[0].ObservedCPUs)
	}
	if snap.LWPs[0].CPUChanges != 3 {
		t.Fatalf("cpu changes = %d", snap.LWPs[0].CPUChanges)
	}
}

func TestSampleIOSeries(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{KeepSeries: true})
	m.Tick()
	fs.io = proc.TaskIO{RChar: 100, WChar: 200, SyscR: 1, SyscW: 2, ReadBytes: 100, WriteBytes: 200}
	clk.advance(time.Second)
	m.Tick()
	snap := m.Snapshot()
	if snap.IOWriteBytes != 200 || snap.IOReadBytes != 100 {
		t.Fatalf("io totals: %+v", snap)
	}
	if len(m.IOSeries()) != 2 {
		t.Fatalf("io samples = %d", len(m.IOSeries()))
	}
	var sb strings.Builder
	if err := m.WriteIOCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := export.ReadIOCSV(strings.NewReader(sb.String()))
	if err != nil || len(back) != 2 || back[1].WriteBytes != 200 {
		t.Fatalf("io csv round trip: %v %+v", err, back)
	}
}

// fakeRebinder records SetAffinity calls against the fake FS.
type fakeRebinder struct {
	fs    *fakeFS
	calls []int
	fail  bool
}

func (r *fakeRebinder) SetAffinity(tid int, cpus topology.CPUSet) error {
	if r.fail {
		return fmt.Errorf("nope")
	}
	r.calls = append(r.calls, tid)
	st := r.fs.statuses[tid]
	st.CpusAllowed = cpus
	r.fs.statuses[tid] = st
	return nil
}

func TestAutoRebindViaFakeFS(t *testing.T) {
	fs := newFakeFS()
	// Three busy threads all pinned to CPU 0 within a 0-3 cpuset.
	for _, tid := range []int{1001, 1002} {
		fs.addThread(tid, "omp", proc.StateRunning, topology.NewCPUSet(0))
	}
	st := fs.statuses[1000]
	st.CpusAllowed = topology.NewCPUSet(0)
	fs.statuses[1000] = st

	rb := &fakeRebinder{fs: fs}
	clk := &testClock{now: time.Unix(0, 0)}
	m, err := New(Config{Period: time.Second, RebindAfter: 2},
		Deps{FS: fs, Clock: clk.fn(), Rebinder: rb})
	if err != nil {
		t.Fatal(err)
	}
	// OMPT classifies the workers; "Other" threads (MPI helpers, GPU
	// runtimes) are deliberately never rebound.
	m.HintKind(1001, KindOpenMP)
	m.HintKind(1002, KindOpenMP)
	for i := 0; i < 4; i++ {
		for _, tid := range []int{1000, 1001, 1002} {
			fs.burn(tid, 30, 1) // each ~30% busy: piled up
		}
		m.Tick()
		clk.advance(time.Second)
	}
	if len(m.Rebinds()) == 0 {
		t.Fatal("no rebinds recorded")
	}
	if len(rb.calls) != 3 {
		t.Fatalf("rebinder calls = %v, want 3 threads", rb.calls)
	}
	// Targets are distinct PUs of the process cpuset.
	seen := map[int]bool{}
	for _, ev := range m.Rebinds() {
		c := ev.To.First()
		if seen[c] {
			t.Fatalf("duplicate target %d", c)
		}
		seen[c] = true
	}
	// One-shot: further ticks do not rebind again.
	n := len(rb.calls)
	for i := 0; i < 3; i++ {
		fs.burn(1000, 30, 0)
		m.Tick()
		clk.advance(time.Second)
	}
	if len(rb.calls) != n {
		t.Fatal("rebind should act once")
	}
}

func TestAutoRebindRespectsHealthyRuns(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1001, "omp", proc.StateRunning, topology.NewCPUSet(1))
	rb := &fakeRebinder{fs: fs}
	clk := &testClock{now: time.Unix(0, 0)}
	m, err := New(Config{Period: time.Second, RebindAfter: 2},
		Deps{FS: fs, Clock: clk.fn(), Rebinder: rb})
	if err != nil {
		t.Fatal(err)
	}
	// Threads on different CPUs: no pileup.
	for i := 0; i < 5; i++ {
		fs.burn(1000, 50, 0)
		fs.burn(1001, 50, 0)
		m.Tick()
		clk.advance(time.Second)
	}
	if len(rb.calls) != 0 {
		t.Fatalf("healthy run rebound: %v", rb.calls)
	}
}

// corruptFS wraps fakeFS to return a garbage stat row for chosen tasks,
// modelling a torn read of an exiting thread's /proc entry.
type corruptFS struct {
	*fakeFS
	badStat map[int]bool
}

func (c *corruptFS) TaskStat(pid, tid int) ([]byte, error) {
	if c.badStat[tid] {
		return []byte("not a stat line"), nil
	}
	return c.fakeFS.TaskStat(pid, tid)
}

func TestTickCountsSkippedThreads(t *testing.T) {
	base := newFakeFS()
	base.addThread(1001, "good", proc.StateRunning, topology.NewCPUSet(1))
	base.addThread(1002, "torn", proc.StateRunning, topology.NewCPUSet(2))
	base.addThread(1003, "vanishing", proc.StateRunning, topology.NewCPUSet(3))
	base.failTask[1003] = true // read error between listing and read
	fs := &corruptFS{fakeFS: base, badStat: map[int]bool{1002: true}}

	m, _ := newTestMonitor(t, fs, Config{Period: time.Second, KeepSeries: true})
	if err := m.Tick(); err != nil {
		t.Fatalf("a torn row must not abort the sample: %v", err)
	}
	reads, parses := m.SampleSkips()
	if reads != 1 || parses != 1 {
		t.Fatalf("SampleSkips() = (%d, %d), want (1, 1)", reads, parses)
	}
	// The healthy threads were still sampled this tick.
	if got := len(m.LWPSeries()); got != 2 {
		t.Fatalf("sampled %d threads, want 2", got)
	}
	snap := m.Snapshot()
	if snap.LWPReadSkips != 1 || snap.LWPParseSkips != 1 {
		t.Fatalf("snapshot skips = (%d, %d), want (1, 1)", snap.LWPReadSkips, snap.LWPParseSkips)
	}
}

// TestStalledThreadExitEmitsFinalNotStalledSample: when a thread dies while
// flagged stalled, the monitor must publish one last Stalled=false sample
// for it — downstream per-TID gauges (aggd's zerosum_lwp_stalled) clear only
// on an explicit event and would otherwise pin the dead TID forever.
func TestStalledThreadExitEmitsFinalNotStalledSample(t *testing.T) {
	fs := newFakeFS()
	fs.addThread(1001, "worker", proc.StateSleeping, topology.NewCPUSet(1))
	var stream export.Stream
	var worker []export.LWPSample
	stream.Subscribe(func(ev export.Event) {
		if ev.Kind == export.EventLWP && ev.LWP.TID == 1001 {
			worker = append(worker, *ev.LWP)
		}
	})
	m, clk := newTestMonitor(t, fs, Config{Period: time.Second, StallTicks: 3, Stream: &stream})

	// The worker never progresses: after StallTicks samples it is stalled.
	for i := 0; i < 5; i++ {
		fs.burn(1000, 50, 5)
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	if got := m.StalledLWPs(); got != 1 {
		t.Fatalf("StalledLWPs = %d, want 1 before the worker exits", got)
	}
	if len(worker) == 0 || !worker[len(worker)-1].Stalled {
		t.Fatalf("worker's last live sample not stalled: %+v", worker)
	}

	// The worker exits between ticks: the next listing no longer has it.
	fs.tasks = []int{1000}
	fs.burn(1000, 50, 5)
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	last := worker[len(worker)-1]
	if last.Stalled {
		t.Fatal("dead worker's final sample still stalled; downstream gauges would leak")
	}
	if got := m.StalledLWPs(); got != 0 {
		t.Fatalf("StalledLWPs = %d, want 0 after the stalled thread exited", got)
	}
	m.Finish()
	snap := m.Snapshot()
	for _, l := range snap.LWPs {
		if l.TID == 1001 {
			if l.Stalled {
				t.Fatal("snapshot still flags the dead worker stalled")
			}
			if l.StallEvents != 1 {
				t.Fatalf("stall events = %d, want the episode history kept", l.StallEvents)
			}
		}
	}
}

// TestPublishedSelfStatsConcurrentWithTicks hammers PublishedSelfStats from
// another goroutine while the monitor ticks; under `go test -race` this
// proves the /debug/obs read path shares no unsynchronized state with Tick.
func TestPublishedSelfStatsConcurrentWithTicks(t *testing.T) {
	fs := newFakeFS()
	m, clk := newTestMonitor(t, fs, Config{Period: time.Second})

	if s := m.PublishedSelfStats(); s.Samples != 0 {
		t.Fatalf("pre-tick published samples = %d, want 0", s.Samples)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.PublishedSelfStats()
			if s.Samples < prev {
				t.Errorf("published samples went backwards: %d after %d", s.Samples, prev)
				return
			}
			prev = s.Samples
		}
	}()

	const ticks = 300
	for i := 0; i < ticks; i++ {
		fs.burn(1000, 1, 0)
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	close(stop)
	wg.Wait()
	m.Finish()

	if got := m.PublishedSelfStats(); got.Samples != ticks {
		t.Fatalf("published samples = %d, want %d", got.Samples, ticks)
	}
	if live, pub := m.SelfStats(), m.PublishedSelfStats(); live != pub {
		t.Fatalf("post-Finish published stats diverged:\nlive %+v\npub  %+v", live, pub)
	}
}
