package core

import (
	"fmt"

	"zerosum/internal/topology"
)

// Rebinder applies an affinity change to a live thread. The simulator's
// kernel provides one (sched_setaffinity semantics); on a real Linux host
// LinuxRebinder issues the actual syscall.
type Rebinder interface {
	SetAffinity(tid int, cpus topology.CPUSet) error
}

// RebindEvent records one automatic re-affinity action for the report.
type RebindEvent struct {
	TimeSec float64
	TID     int
	From    topology.CPUSet
	To      topology.CPUSet
}

func (e RebindEvent) String() string {
	return fmt.Sprintf("t=%.1fs rebound LWP %d [%s] -> [%s]", e.TimeSec, e.TID, e.From, e.To)
}

// maybeRebind implements the paper's §3.1 future-work idea: when several
// consecutive samples show busy threads piled onto fewer cores than the
// process cpuset offers, spread them one per core, like a corrected
// OMP_PROC_BIND would have. It acts once per process.
func (m *Monitor) maybeRebind(t float64) {
	if m.deps.Rebinder == nil || m.cfg.RebindAfter <= 0 || m.rebound {
		return
	}
	busy := m.pileupCandidates()
	if len(busy) < 2 {
		m.pileupStreak = 0
		return
	}
	// Distinct PUs the busy threads are currently allowed to use.
	var used topology.CPUSet
	for _, ts := range busy {
		used = used.Or(ts.affinity)
	}
	usedCores := m.coreCount(used)
	availCores := m.coreCount(m.procAff)
	if usedCores >= len(busy) || availCores < len(busy) {
		m.pileupStreak = 0
		return
	}
	m.pileupStreak++
	if m.pileupStreak < m.cfg.RebindAfter {
		return
	}
	// Spread: one target core per busy thread, ascending over the cpuset.
	targets := m.spreadTargets(len(busy))
	if len(targets) < len(busy) {
		return
	}
	for i, ts := range busy {
		ev := RebindEvent{TimeSec: t, TID: ts.tid, From: ts.affinity.Clone(), To: targets[i]}
		if err := m.deps.Rebinder.SetAffinity(ts.tid, targets[i]); err != nil {
			continue // thread may have exited between sample and rebind
		}
		m.rebinds = append(m.rebinds, ev)
	}
	m.rebound = true
}

// pileupCandidates returns live application threads with meaningful
// utilization in the last interval, in discovery order.
func (m *Monitor) pileupCandidates() []*threadState {
	var out []*threadState
	for _, tid := range m.sortedTIDs() {
		ts := m.threads[tid]
		if ts.gone || ts.kind == KindZeroSum || ts.kind == KindOther {
			continue
		}
		if ts.lastUserPct+ts.lastSysPct >= 5 {
			out = append(out, ts)
		}
	}
	return out
}

// coreCount counts cores covered by a cpuset when the machine is known,
// else distinct PUs.
func (m *Monitor) coreCount(set topology.CPUSet) int {
	if m.deps.Machine == nil {
		return set.Count()
	}
	seen := map[*topology.Core]bool{}
	for _, pu := range set.List() {
		if c := m.deps.Machine.CoreOf(pu); c != nil {
			seen[c] = true
		}
	}
	return len(seen)
}

// spreadTargets picks n single-PU targets across distinct cores of the
// process cpuset (first hardware thread of each core when topology is
// known).
func (m *Monitor) spreadTargets(n int) []topology.CPUSet {
	var out []topology.CPUSet
	if m.deps.Machine != nil {
		seen := map[*topology.Core]bool{}
		for _, pu := range m.procAff.List() {
			c := m.deps.Machine.CoreOf(pu)
			if c == nil || seen[c] {
				continue
			}
			seen[c] = true
			out = append(out, topology.NewCPUSet(pu))
			if len(out) == n {
				return out
			}
		}
		return out
	}
	for _, pu := range m.procAff.List() {
		out = append(out, topology.NewCPUSet(pu))
		if len(out) == n {
			break
		}
	}
	return out
}

// Rebinds returns the automatic re-affinity actions taken this run.
func (m *Monitor) Rebinds() []RebindEvent { return m.rebinds }
