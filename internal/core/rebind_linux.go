//go:build linux

package core

import (
	"fmt"
	"syscall"
	"unsafe"

	"zerosum/internal/topology"
)

// LinuxRebinder applies affinity changes to real threads of this process
// via the sched_setaffinity(2) syscall — the live-host side of the
// auto-rebind feature. It only works on threads the caller is allowed to
// retarget (same user, typically the monitored process itself).
type LinuxRebinder struct{}

// SetAffinity implements Rebinder with the raw syscall (stdlib only: the
// x/sys wrapper is off-limits in this module).
func (LinuxRebinder) SetAffinity(tid int, cpus topology.CPUSet) error {
	last := cpus.Last()
	if last < 0 {
		return fmt.Errorf("core: empty cpuset for tid %d", tid)
	}
	words := make([]uint64, last/64+1)
	for _, pu := range cpus.List() {
		words[pu/64] |= 1 << uint(pu%64)
	}
	size := uintptr(len(words) * 8)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		uintptr(tid), size, uintptr(unsafe.Pointer(&words[0])))
	if errno != 0 {
		return fmt.Errorf("core: sched_setaffinity(%d): %v", tid, errno)
	}
	return nil
}

var _ Rebinder = LinuxRebinder{}
