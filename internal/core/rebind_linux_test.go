//go:build linux

package core

import (
	"os"
	"runtime"
	"syscall"
	"testing"

	"zerosum/internal/proc"
	"zerosum/internal/topology"
)

// TestLinuxRebinderOnSelf pins the calling OS thread via the real syscall
// and reads the result back from the live /proc.
func TestLinuxRebinderOnSelf(t *testing.T) {
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Skip("no /proc")
	}
	runtime.LockOSThread()
	defer runtime.LockOSThread() // stay locked; the thread's mask is dirty now

	tid := syscall.Gettid()
	fs := proc.NewRealFS()
	raw, err := fs.TaskStatus(os.Getpid(), tid)
	if err != nil {
		t.Fatal(err)
	}
	before, err := proc.ParseTaskStatus(raw)
	if err != nil {
		t.Fatal(err)
	}
	if before.CpusAllowed.Empty() {
		t.Fatal("no affinity visible")
	}
	target := topology.NewCPUSet(before.CpusAllowed.First())

	var rb LinuxRebinder
	if err := rb.SetAffinity(tid, target); err != nil {
		t.Fatalf("sched_setaffinity: %v", err)
	}
	raw, err = fs.TaskStatus(os.Getpid(), tid)
	if err != nil {
		t.Fatal(err)
	}
	after, err := proc.ParseTaskStatus(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !after.CpusAllowed.Equal(target) {
		t.Fatalf("affinity after rebind = %s, want %s", after.CpusAllowed, target)
	}
	// Restore.
	if err := rb.SetAffinity(tid, before.CpusAllowed); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

func TestLinuxRebinderEmptySet(t *testing.T) {
	var rb LinuxRebinder
	if err := rb.SetAffinity(syscall.Gettid(), topology.CPUSet{}); err == nil {
		t.Fatal("empty cpuset should error")
	}
}
