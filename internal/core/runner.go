package core

import (
	"context"
	"time"
)

// Run samples in real time every cfg.Period until the context is cancelled,
// then finishes the monitor. This is the live-host mode (monitoring a real
// Linux process through proc.RealFS); the simulator drives Tick directly
// from its asynchronous-thread task instead.
func (m *Monitor) Run(ctx context.Context) error {
	period := m.CurrentPeriod()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	defer m.Finish()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			if err := m.Tick(); err != nil {
				return err
			}
			// The overhead watchdog may have degraded the period mid-run.
			if p := m.CurrentPeriod(); p != period {
				period = p
				ticker.Reset(period)
			}
		}
	}
}
