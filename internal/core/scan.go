package core

import (
	"sync"
	"sync/atomic"
)

// scanPool shards the per-LWP read+parse phase of a tick across a small set
// of persistent workers. The zero value scans serially; start(n) with n > 1
// spawns the pool. Workers only ever touch distinct threadStates (each owns
// its buffers and parse scratch), so the phase needs no locking — just an
// atomic work index and a WaitGroup barrier per tick. The pool is persistent
// precisely so the sampling hot path never spawns goroutines.
type scanPool struct {
	workers int
	work    []*threadState // current tick's work list, set before waking
	next    atomic.Int64   // work index shared by the workers
	wake    chan struct{}  // one token per worker per tick
	wg      sync.WaitGroup // barrier: all workers finished this tick
}

// start spawns n-1 workers (the tick goroutine itself is the n-th). Called
// once from New; no-op for n <= 1.
func (p *scanPool) start(n int) {
	if n <= 1 {
		return
	}
	p.workers = n
	p.wake = make(chan struct{}, n)
	for i := 0; i < n-1; i++ {
		go p.worker()
	}
}

func (p *scanPool) worker() {
	for range p.wake {
		p.drain()
		p.wg.Done()
	}
}

// drain claims and scans threads until the work list is exhausted.
func (p *scanPool) drain() {
	for {
		i := int(p.next.Add(1)) - 1
		if i >= len(p.work) {
			return
		}
		scanThread(p.work[i])
	}
}

// run scans every thread in the list, returning when all are done. Serial
// when the pool was never started.
//
//zerosum:hotpath
func (p *scanPool) run(list []*threadState) {
	if p.workers <= 1 {
		for _, ts := range list {
			scanThread(ts)
		}
		return
	}
	p.work = list
	p.next.Store(0)
	p.wg.Add(p.workers - 1)
	for i := 0; i < p.workers-1; i++ {
		p.wake <- struct{}{}
	}
	// The tick goroutine pulls from the same work list instead of idling at
	// the barrier.
	p.drain()
	p.wg.Wait()
	p.work = nil
}

// stop terminates the workers. The pool must not be run again.
func (p *scanPool) stop() {
	if p.wake != nil {
		close(p.wake)
		p.wake = nil
		p.workers = 0
	}
}
