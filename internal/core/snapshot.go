package core

import (
	"sort"

	"zerosum/internal/gpu"
	"zerosum/internal/obs"
	"zerosum/internal/topology"
)

// MinAvgMax accumulates a metric's extremes and mean, the aggregation shown
// in Listing 2's GPU summary.
type MinAvgMax struct {
	N        int
	Min, Max float64
	Sum      float64
}

// Add folds one observation in.
func (a *MinAvgMax) Add(v float64) {
	if a.N == 0 || v < a.Min {
		a.Min = v
	}
	if a.N == 0 || v > a.Max {
		a.Max = v
	}
	a.Sum += v
	a.N++
}

// Avg returns the mean (0 for no observations).
func (a *MinAvgMax) Avg() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// ThreadSummary is one row of the LWP report table.
type ThreadSummary struct {
	TID   int
	Label string // Main / "Main, OpenMP" / OpenMP / ZeroSum / Other
	Kind  ThreadKind
	// STimePct and UTimePct are the average share of wall time the thread
	// spent in system calls / user code over the whole run.
	STimePct float64
	UTimePct float64
	NVCtx    uint64
	VCtx     uint64
	// Affinity is the thread's allowed-CPU list at the end of the run.
	Affinity topology.CPUSet
	// ObservedCPUs is every CPU the thread was seen executing on; more
	// than one entry with a pinned affinity means migrations happened.
	ObservedCPUs topology.CPUSet
	// CPUChanges counts observed processor changes between samples.
	CPUChanges int
	MinFlt     uint64
	MajFlt     uint64
	// Beats counts samples in which the thread made progress (§3.3).
	Beats uint64
	// Stalled is the thread's progress state at the end of the run;
	// StallEvents counts how many times it entered the stalled state.
	Stalled     bool
	StallEvents int
}

// HWTSummary is one row of the hardware report table.
type HWTSummary struct {
	CPU     int
	IdlePct float64
	SysPct  float64
	UserPct float64
}

// GPUMetric is one aggregated metric row.
type GPUMetric struct {
	Name string
	Agg  MinAvgMax
}

// GPUSummary is one device's aggregated metrics.
type GPUSummary struct {
	VisibleIndex int
	TrueIndex    int
	Model        string
	Metrics      []GPUMetric // in gpu.MetricNames order
}

// Snapshot is everything the end-of-run reports need, assembled by
// Monitor.Snapshot.
type Snapshot struct {
	DurationSec float64
	Rank, Size  int
	PID         int
	Hostname    string
	Comm        string
	ProcessAff  topology.CPUSet

	LWPs []ThreadSummary
	HWTs []HWTSummary
	GPUs []GPUSummary

	MemPeakRSSKB uint64
	MemMinFreeKB uint64
	MemTotalKB   uint64

	// Cumulative process I/O at the end of the run (zero when the host
	// does not expose /proc/<pid>/io).
	IOReadBytes    uint64
	IOWriteBytes   uint64
	IOReadSyscalls uint64
	IOWriteSyscall uint64

	DeadlockSuspected bool
	Samples           int
	// LWPReadSkips / LWPParseSkips count per-thread rows dropped during
	// sampling (task vanished mid-read / row was malformed).
	LWPReadSkips  uint64
	LWPParseSkips uint64

	// StalledLWPs is how many threads were stalled when the snapshot was
	// taken (always 0 with Config.StallTicks disabled).
	StalledLWPs int
	// Self is the monitor's own cost accounting (§4.1).
	Self obs.SelfStats
}

// Snapshot assembles the report data from everything observed so far.
func (m *Monitor) Snapshot() Snapshot {
	now := m.deps.Clock()
	if m.done {
		now = m.finished
	}
	dur := now.Sub(m.started).Seconds()
	snap := Snapshot{
		DurationSec:       dur,
		Rank:              m.rank,
		Size:              m.size,
		PID:               m.pid,
		Hostname:          m.host,
		Comm:              m.procComm,
		ProcessAff:        m.procAff.Clone(),
		MemPeakRSSKB:      m.memPeakRSSKB,
		DeadlockSuspected: m.deadlockHint,
		Samples:           m.samples,
		LWPReadSkips:      m.lwpReadSkips,
		LWPParseSkips:     m.lwpParseSkips,
		StalledLWPs:       m.stalledCount,
		Self:              m.SelfStats(),
	}
	if m.memMinFreeKB != ^uint64(0) {
		snap.MemMinFreeKB = m.memMinFreeKB
	}
	if n := len(m.memSeries); n > 0 {
		snap.MemTotalKB = m.memSeries[n-1].TotalKB
	}
	if m.ioSeen {
		snap.IOReadBytes = m.lastIO.ReadBytes
		snap.IOWriteBytes = m.lastIO.WriteBytes
		snap.IOReadSyscalls = m.lastIO.SyscR
		snap.IOWriteSyscall = m.lastIO.SyscW
	}

	for _, tid := range m.sortedTIDs() {
		ts := m.threads[tid]
		wall := ts.lastSeen.Sub(ts.firstSeen).Seconds()
		if wall <= 0 {
			wall = dur
		}
		if wall <= 0 {
			wall = 1
		}
		row := ThreadSummary{
			TID:      ts.tid,
			Label:    m.kindLabel(ts),
			Kind:     ts.kind,
			STimePct: float64(ts.lastSTime-ts.firstSTime) / 100 / wall * 100,
			UTimePct: float64(ts.lastUTime-ts.firstUTime) / 100 / wall * 100,
			NVCtx:    ts.nvctx,
			VCtx:     ts.vctx,
			// Cloned: the monitor mutates these sets in place every tick,
			// and a snapshot must stay stable after it is taken.
			Affinity:     ts.affinity.Clone(),
			ObservedCPUs: ts.observedCPUs.Clone(),
			CPUChanges:   ts.cpuChanges,
			MinFlt:       ts.minflt,
			MajFlt:       ts.majflt,
			Beats:        ts.beats,
			Stalled:      ts.stalled,
			StallEvents:  ts.stallEvents,
		}
		snap.LWPs = append(snap.LWPs, row)
	}

	// HWT summary: mean utilization per CPU in the process affinity list.
	type acc struct {
		idle, sys, user float64
		n               int
	}
	per := map[int]*acc{}
	for _, s := range m.hwtSeries {
		if !m.procAff.Empty() && !m.procAff.Contains(s.CPU) {
			continue
		}
		a := per[s.CPU]
		if a == nil {
			a = &acc{}
			per[s.CPU] = a
		}
		a.idle += s.IdlePct
		a.sys += s.SysPct
		a.user += s.UserPct
		a.n++
	}
	cpus := make([]int, 0, len(per))
	for c := range per {
		cpus = append(cpus, c)
	}
	sort.Ints(cpus)
	for _, c := range cpus {
		a := per[c]
		snap.HWTs = append(snap.HWTs, HWTSummary{
			CPU:     c,
			IdlePct: a.idle / float64(a.n),
			SysPct:  a.sys / float64(a.n),
			UserPct: a.user / float64(a.n),
		})
	}

	for i, aggs := range m.gpuAgg {
		gs := GPUSummary{VisibleIndex: i}
		if i < len(m.gpuInfo) {
			gs.TrueIndex = m.gpuInfo[i].TrueIndex
			gs.Model = m.gpuInfo[i].Model
		}
		for _, name := range gpu.MetricNames {
			if agg := aggs[name]; agg != nil {
				gs.Metrics = append(gs.Metrics, GPUMetric{Name: name, Agg: *agg})
			}
		}
		snap.GPUs = append(snap.GPUs, gs)
	}
	return snap
}
