// Package crash implements ZeroSum's abnormal-exit reporting (paper §3.1):
// an optional signal handler that, on SIGSEGV/SIGBUS-class failures or
// explicit request, writes a backtrace of every goroutine plus the
// monitor's last-known state to the process log, so users can distinguish
// their own crashes from system failures. This is a live-host feature (the
// simulator has no signals); it uses the real os/signal machinery.
package crash

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"
)

// Handler installs signal-driven backtrace reporting.
type Handler struct {
	mu        sync.Mutex
	out       io.Writer         //zerosum:guardedby mu
	extra     []func(io.Writer) //zerosum:guardedby mu
	ch        chan os.Signal    // read by the signal goroutine without mu
	done      chan struct{}     // channel ops synchronize themselves
	installed bool              //zerosum:guardedby mu
}

// New creates a handler writing reports to out.
func New(out io.Writer) *Handler {
	if out == nil {
		out = os.Stderr
	}
	return &Handler{out: out}
}

// OnReport registers a callback that contributes context to crash reports
// (ZeroSum adds its latest utilization snapshot here).
func (h *Handler) OnReport(fn func(io.Writer)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.extra = append(h.extra, fn)
}

// Signals that indicate abnormal termination. SIGSEGV cannot be usefully
// caught from pure Go (the runtime owns it), so the catchable set is the
// conventional abnormal-exit group.
var defaultSignals = []os.Signal{
	syscall.SIGBUS, syscall.SIGABRT, syscall.SIGTERM, syscall.SIGQUIT,
}

// Install starts listening; the report fires at most once, then the
// handler re-raises the default disposition by exiting with 128+signum.
// exitFn defaults to os.Exit and exists for tests.
func (h *Handler) Install(exitFn func(int)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.installed {
		return
	}
	h.installed = true
	if exitFn == nil {
		exitFn = os.Exit
	}
	h.ch = make(chan os.Signal, 1)
	h.done = make(chan struct{})
	signal.Notify(h.ch, defaultSignals...)
	go func() {
		defer close(h.done)
		sig, ok := <-h.ch
		if !ok {
			return
		}
		h.Report(fmt.Sprintf("caught signal %v", sig))
		if s, ok := sig.(syscall.Signal); ok {
			exitFn(128 + int(s))
		} else {
			exitFn(1)
		}
	}()
}

// Uninstall stops listening (for tests and clean shutdown).
func (h *Handler) Uninstall() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.installed {
		return
	}
	h.installed = false
	signal.Stop(h.ch)
	close(h.ch)
	<-h.done
}

// Report writes a backtrace and all registered context immediately.
func (h *Handler) Report(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(h.out, "=== ZeroSum abnormal exit report ===\n")
	fmt.Fprintf(h.out, "reason: %s\n", reason)
	fmt.Fprintf(h.out, "time: %s\n", time.Now().UTC().Format(time.RFC3339))
	fmt.Fprintf(h.out, "pid: %d\n\n", os.Getpid())
	for _, fn := range h.extra {
		fn(h.out)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(h.out, "--- backtrace (all goroutines) ---\n%s\n", buf[:n])
}
