package crash

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe string buffer for handler output.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestReportContainsBacktraceAndContext(t *testing.T) {
	var buf syncBuffer
	h := New(&buf)
	h.OnReport(func(w io.Writer) { fmt.Fprintln(w, "monitor-context-line") })
	h.Report("unit test")
	out := buf.String()
	for _, want := range []string{
		"ZeroSum abnormal exit report",
		"reason: unit test",
		"monitor-context-line",
		"backtrace (all goroutines)",
		"goroutine",
		"TestReportContainsBacktraceAndContext",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestSignalTriggersReportAndExit(t *testing.T) {
	var buf syncBuffer
	h := New(&buf)
	exitCode := make(chan int, 1)
	h.Install(func(code int) { exitCode <- code })
	defer h.Uninstall()

	// Deliver a catchable abnormal signal to ourselves.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitCode:
		if code != 128+int(syscall.SIGQUIT) {
			t.Fatalf("exit code = %d, want %d", code, 128+int(syscall.SIGQUIT))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("signal handler never fired")
	}
	if !strings.Contains(buf.String(), "SIGQUIT") && !strings.Contains(buf.String(), "quit") {
		t.Errorf("report should name the signal:\n%s", buf.String())
	}
}

func TestUninstallIdempotent(t *testing.T) {
	h := New(nil)
	h.Uninstall() // never installed: no-op
	h.Install(func(int) {})
	h.Install(func(int) {}) // double install: no-op
	h.Uninstall()
	h.Uninstall()
}
