package experiments

import (
	"fmt"

	"zerosum/internal/analysis"
	"zerosum/internal/openmp"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// Ablation quantifies one simulator design choice by running the relevant
// experiment with the mechanism enabled and disabled. These are the checks
// that justify each model in DESIGN.md: without them the paper's shapes do
// not reproduce.
type Ablation struct {
	Name     string
	Detail   string
	Metric   string
	With     float64
	Without  float64
	PaperRef string
}

func (a Ablation) String() string {
	return fmt.Sprintf("%-22s %s\n  with: %8.3f   without: %8.3f   (paper: %s)\n  %s",
		a.Name, a.Metric, a.With, a.Without, a.PaperRef, a.Detail)
}

// frontierNoBandwidthCap builds a Frontier node with unlimited memory
// bandwidth (the naive CPU-only model).
func frontierNoBandwidthCap() *topology.Machine {
	m := topology.Frontier()
	for _, nn := range m.NUMANodes() {
		nn.BandwidthBytesPerSec = 0
	}
	return m
}

// AblateBandwidthModel removes the per-NUMA bandwidth cap and measures the
// Table1/Table3 runtime ratio. Without the cap, seven dedicated cores beat
// one shared core by ~7x — far from the paper's 2.3x — because miniQMC's
// memory-bound nature is lost.
func AblateBandwidthModel(scale float64, seed uint64) (Ablation, error) {
	ratio := func(machine func() *topology.Machine) (float64, error) {
		run := func(table int) (float64, error) {
			cfg := workload.Config{Machine: machine, App: miniQMC(scale), Seed: seed}
			switch table {
			case 1:
				cfg.Srun = slurm.Options{NTasks: 8}
				cfg.OMP = openmp.Env{NumThreads: 7}
				cfg.Sched = sched.Params{Quantum: 100 * sim.Microsecond, Timeslice: 200 * sim.Microsecond}
			case 3:
				cfg.Srun = slurm.Options{NTasks: 8, CoresPerTask: 7}
				cfg.OMP = openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
			}
			res, err := workload.Run(cfg)
			if err != nil {
				return 0, err
			}
			return res.WallSeconds, nil
		}
		t1, err := run(1)
		if err != nil {
			return 0, err
		}
		t3, err := run(3)
		if err != nil {
			return 0, err
		}
		return t1 / t3, nil
	}
	with, err := ratio(topology.Frontier)
	if err != nil {
		return Ablation{}, err
	}
	without, err := ratio(frontierNoBandwidthCap)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name:     "bandwidth-cap",
		Detail:   "per-NUMA memory-bandwidth throttling is what keeps the default-launch slowdown near the paper's value instead of the naive core-count ratio",
		Metric:   "T1/T3 runtime ratio",
		With:     with,
		Without:  without,
		PaperRef: "2.32x",
	}, nil
}

// AblateSMTModel measures a compute-bound job on SMT pairs with and without
// the sibling slowdown: without it, doubling threads per core is free.
func AblateSMTModel(scale float64, seed uint64) (Ablation, error) {
	run := func(smt float64, tpc int) (float64, error) {
		mq := miniQMC(scale)
		mq.BytesPerSec = 0 // compute-bound: isolates the SMT effect
		mq.Threads = 7 * tpc
		res, err := workload.Run(workload.Config{
			Machine: topology.Frontier,
			App:     mq,
			Srun:    slurm.Options{NTasks: 8, CoresPerTask: 7, ThreadsPerCore: tpc},
			OMP: openmp.Env{NumThreads: 7 * tpc, Bind: openmp.BindSpread,
				Places: openmp.PlacesCores},
			Sched: sched.Params{SMTFactor: smt},
			Seed:  seed,
		})
		if err != nil {
			return 0, err
		}
		return res.WallSeconds, nil
	}
	ratioFor := func(smt float64) (float64, error) {
		one, err := run(smt, 1)
		if err != nil {
			return 0, err
		}
		two, err := run(smt, 2)
		if err != nil {
			return 0, err
		}
		return two / one, nil
	}
	with, err := ratioFor(0.62)
	if err != nil {
		return Ablation{}, err
	}
	without, err := ratioFor(0.9999)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name:     "smt-slowdown",
		Detail:   "the SMT factor makes two busy hardware threads per core slower than two cores; without it, 2 t/core doubles walkers for free",
		Metric:   "2t/1t runtime ratio (compute-bound)",
		With:     with,
		Without:  without,
		PaperRef: "~2.09x on the bandwidth-bound real workload",
	}, nil
}

// AblateRefillModel measures the Figure 8 two-threads-per-core overhead
// with and without the cache-refill charge on monitor preemptions.
func AblateRefillModel(runs int, scale float64, seed uint64) (Ablation, error) {
	overhead := func(refill sim.Time) (float64, error) {
		var base, with []float64
		for r := 0; r < runs; r++ {
			for _, zs := range []bool{false, true} {
				mq := miniQMC(scale)
				mq.Threads = 14
				mq.RunJitter = 0.0013
				cfg := workload.Config{
					Machine: topology.Frontier,
					App:     mq,
					Srun:    slurm.Options{NTasks: 8, CoresPerTask: 7, ThreadsPerCore: 2},
					OMP: openmp.Env{NumThreads: 14, Bind: openmp.BindSpread,
						Places: openmp.PlacesCores},
					Sched: sched.Params{Quantum: 250 * sim.Microsecond, PreemptRefill: refill},
					Seed:  seed + uint64(r)*101,
				}
				if zs {
					cfg.Monitor = monitorOn()
				}
				res, err := workload.Run(cfg)
				if err != nil {
					return 0, err
				}
				if zs {
					with = append(with, res.WallSeconds)
				} else {
					base = append(base, res.WallSeconds)
				}
			}
		}
		return analysis.RelativeOverhead(base, with) * 100, nil
	}
	withRefill, err := overhead(600 * sim.Microsecond)
	if err != nil {
		return Ablation{}, err
	}
	withoutRefill, err := overhead(0)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name:     "preempt-refill",
		Detail:   "charging cache refills to preempted threads (and SMT siblings) on a saturated memory bus is the mechanism behind the paper's 2 t/core overhead; without it the monitor is free",
		Metric:   "ZeroSum overhead % at 2 t/core",
		With:     withRefill,
		Without:  withoutRefill,
		PaperRef: "+0.48%",
	}, nil
}

// AblateWakeNoise measures Table 2 thread migrations with and without the
// wake-affinity noise model.
func AblateWakeNoise(scale float64, seed uint64) (Ablation, error) {
	migrations := func(noise float64) (float64, error) {
		cfg := workload.Config{
			Machine: topology.Frontier,
			App:     miniQMC(scale),
			Srun:    slurm.Options{NTasks: 8, CoresPerTask: 7},
			OMP:     openmp.Env{NumThreads: 7},
			Monitor: monitorOn(),
			Sched:   sched.Params{WakeAffinityNoise: noise},
			Seed:    seed,
		}
		res, err := workload.Run(cfg)
		if err != nil {
			return 0, err
		}
		migrated := 0
		for _, l := range res.Ranks[0].Snapshot.LWPs {
			if l.ObservedCPUs.Count() > 1 {
				migrated++
			}
		}
		return float64(migrated), nil
	}
	with, err := migrations(0.05)
	if err != nil {
		return Ablation{}, err
	}
	without, err := migrations(0)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name:     "wake-noise",
		Detail:   "imperfect wake placement is what makes unbound threads migrate, as the paper observed on Table 2's run; perfectly affine wakeups never move",
		Metric:   "rank-0 threads observed on >1 CPU",
		With:     with,
		Without:  without,
		PaperRef: "\"threads were all migrated at least once\"",
	}, nil
}

// Ablations runs the full set at the given scale.
func Ablations(runs int, scale float64, seed uint64) ([]Ablation, error) {
	var out []Ablation
	a, err := AblateBandwidthModel(scale, seed)
	if err != nil {
		return nil, err
	}
	out = append(out, a)
	if a, err = AblateSMTModel(scale, seed); err != nil {
		return nil, err
	}
	out = append(out, a)
	if a, err = AblateRefillModel(runs, scale, seed); err != nil {
		return nil, err
	}
	out = append(out, a)
	if a, err = AblateWakeNoise(scale, seed); err != nil {
		return nil, err
	}
	out = append(out, a)
	return out, nil
}
