// Package experiments defines one runnable reproduction for every table and
// figure in the paper's evaluation (§4): Listing 1 (topology output),
// Listing 2 (full report with GPU offload), Tables 1-3 (the three srun
// configurations of miniQMC), Figure 5 (512-rank communication heatmap),
// Figures 6-7 (LWP/HWT utilization time series) and Figure 8 (overhead
// distributions with Welch's t-test). cmd/experiments, the benchmark
// harness and the integration tests all drive these same definitions.
package experiments

import (
	"fmt"
	"math"

	"zerosum/internal/analysis"
	"zerosum/internal/core"
	"zerosum/internal/openmp"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/slurm"
	"zerosum/internal/topology"
	"zerosum/internal/workload"
)

// Paper reference values (from the paper text and tables).
const (
	PaperT1Seconds = 63.67
	PaperT2Seconds = 27.33
	PaperT3Seconds = 27.40
	PaperL2Seconds = 210.878

	PaperF8Base1T     = 27.3396
	PaperF8With1T     = 27.3395
	PaperF8P1T        = 0.998
	PaperF8Base2T     = 57.0657
	PaperF8With2T     = 57.3409
	PaperF8P2T        = 0.0006
	PaperF8Overhead2T = 0.2752 // seconds, ~0.48%
)

// miniQMC builds the calibrated workload at the given scale (1.0 = paper
// scale, ~27 s for the -c7 configuration).
func miniQMC(scale float64) *workload.MiniQMC {
	mq := workload.DefaultMiniQMC()
	steps := int(math.Round(float64(mq.Steps) * scale))
	if steps < 4 {
		steps = 4
	}
	mq.Steps = steps
	return mq
}

// monitorOn returns the standard 1 Hz monitoring configuration.
func monitorOn() workload.MonitorConfig {
	return workload.MonitorConfig{Enabled: true, Period: sim.Second, CPU: -1}
}

// TableResult is the outcome of one table experiment.
type TableResult struct {
	Label        string
	Command      string
	WallSeconds  float64
	PaperSeconds float64
	Snapshot     core.Snapshot // rank 0
	Result       *workload.Result
}

// table runs miniQMC under one of the paper's three configurations.
func table(n int, scale float64, seed uint64, monitored bool) (*TableResult, error) {
	cfg := workload.Config{
		Machine: topology.Frontier,
		App:     miniQMC(scale),
		Seed:    seed,
	}
	if monitored {
		cfg.Monitor = monitorOn()
	}
	var label string
	var paper float64
	switch n {
	case 1:
		label = "Table 1: srun -n8 (default)"
		paper = PaperT1Seconds
		cfg.Srun = slurm.Options{NTasks: 8}
		cfg.OMP = openmp.Env{NumThreads: 7}
		// CFS under heavy oversubscription effectively time-slices at
		// tens of microseconds (wakeup preemption + scaled granularity);
		// this is what produces the paper's ~3x10^5 nvctx per thread.
		cfg.Sched = sched.Params{Quantum: 25 * sim.Microsecond, Timeslice: 25 * sim.Microsecond}
	case 2:
		label = "Table 2: srun -n8 -c7"
		paper = PaperT2Seconds
		cfg.Srun = slurm.Options{NTasks: 8, CoresPerTask: 7}
		cfg.OMP = openmp.Env{NumThreads: 7}
		// Unbound threads: Linux's imperfect wake placement migrates them
		// occasionally, the paper's "all migrated at least once".
		cfg.Sched = sched.Params{WakeAffinityNoise: 0.05}
	case 3:
		label = "Table 3: srun -n8 -c7 + OMP_PROC_BIND=spread OMP_PLACES=cores"
		paper = PaperT3Seconds
		cfg.Srun = slurm.Options{NTasks: 8, CoresPerTask: 7}
		cfg.OMP = openmp.Env{NumThreads: 7, Bind: openmp.BindSpread, Places: openmp.PlacesCores}
	default:
		return nil, fmt.Errorf("experiments: no table %d", n)
	}
	res, err := workload.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &TableResult{
		Label:        label,
		Command:      cfg.Srun.CommandLine("zerosum-mpi miniqmc"),
		WallSeconds:  res.WallSeconds,
		PaperSeconds: paper * scale,
		Result:       res,
	}
	if monitored {
		out.Snapshot = res.Ranks[0].Snapshot
	}
	return out, nil
}

// Table1 reproduces the default-configuration disaster.
func Table1(scale float64, seed uint64) (*TableResult, error) { return table(1, scale, seed, true) }

// Table2 reproduces the -c7 configuration.
func Table2(scale float64, seed uint64) (*TableResult, error) { return table(2, scale, seed, true) }

// Table3 reproduces the -c7 + spread/cores configuration.
func Table3(scale float64, seed uint64) (*TableResult, error) { return table(3, scale, seed, true) }

// Listing1 renders the paper's hwloc topology listing for the 4-core test
// laptop.
func Listing1() string {
	return "HWLOC Node topology:\n" + topology.Lstopo(topology.Laptop4Core())
}

// Listing2 runs the GPU target-offload miniQMC (8 ranks, 4 threads, one
// GCD per rank, spread/cores binding) and returns the rank-0 report data.
func Listing2(scale float64, seed uint64) (*TableResult, error) {
	mq := miniQMC(scale)
	mq.Threads = 4
	// The offload variant is host-dominated, matching the listing's
	// numbers: walkers spend ~64% in user code and ~12.5% in syscalls
	// (launch/transfer/sync) with ~1700 offload cycles per second per
	// thread (vctx 365k over 211 s), while the GCD is only ~15% busy
	// (four threads x ~1700 x 25 us kernels).
	mq.Offload = &workload.Offload{
		LaunchesPerStep: 3800,
		KernelTime:      25 * sim.Microsecond,
		XferBytes:       64 << 10,
		LaunchCPU:       440 * sim.Microsecond,
		LaunchSysFrac:   0.165,
		VRAMBytes:       4742 << 20, // the listing's ~4.7 GB VRAM average
	}
	cfg := workload.Config{
		Machine: topology.Frontier,
		App:     mq,
		Srun: slurm.Options{NTasks: 8, CoresPerTask: 7, GPUsPerTask: 1,
			GPUBind: slurm.GPUBindClosest},
		OMP:     openmp.Env{NumThreads: 4, Bind: openmp.BindSpread, Places: openmp.PlacesCores},
		Monitor: monitorOn(),
		// Offload cycles are ~0.6 ms; the accounting quantum must resolve
		// them or sleep/launch cycles stretch to the tick length.
		Sched: sched.Params{Quantum: 50 * sim.Microsecond},
		Seed:  seed,
	}
	res, err := workload.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &TableResult{
		Label:        "Listing 2: miniQMC OpenMP target offload",
		Command:      cfg.Srun.CommandLine("zerosum-mpi miniqmc-offload"),
		WallSeconds:  res.WallSeconds,
		PaperSeconds: PaperL2Seconds * scale,
		Snapshot:     res.Ranks[0].Snapshot,
		Result:       res,
	}, nil
}

// Figure5 runs the PIC-like halo exchange and returns the communication
// heatmap. The paper uses 512 ranks; tests use fewer.
func Figure5(ranks int, scale float64, seed uint64) (*analysis.Heatmap, *workload.Result, error) {
	pic := workload.DefaultPICHalo()
	steps := int(math.Round(float64(pic.Steps) * scale))
	if steps < 3 {
		steps = 3
	}
	pic.Steps = steps
	nodes := (ranks + 7) / 8
	res, err := workload.Run(workload.Config{
		Machine: topology.Frontier,
		Nodes:   nodes,
		App:     pic,
		Srun:    slurm.Options{NTasks: ranks, CoresPerTask: 7},
		Seed:    seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return analysis.FromMatrix(res.World.RecvMatrix()), res, nil
}

// SeriesResult carries the Figure 6/7 time-series charts.
type SeriesResult struct {
	LWP *analysis.StackedChart
	HWT *analysis.StackedChart
	// LWPNoisiness is the mean sample-to-sample jitter of the busy LWP
	// user% series; the paper notes the LWP chart (Fig. 6) is visibly
	// noisier than the HWT chart (Fig. 7).
	LWPNoisiness float64
	HWTNoisiness float64
}

// Figures6And7 runs the Table 3 configuration and assembles per-LWP and
// per-HWT utilization time series from the monitor's CSV data.
func Figures6And7(scale float64, seed uint64) (*SeriesResult, error) {
	tr, err := table(3, scale, seed, true)
	if err != nil {
		return nil, err
	}
	mon := tr.Result.Ranks[0].Monitor
	out := &SeriesResult{
		LWP: analysis.NewStackedChart("miniQMC LWP (threads) utilization over time"),
		HWT: analysis.NewStackedChart("CPU core utilization over time"),
	}
	lwpUser := map[int]*analysis.Series{}
	for _, s := range mon.LWPSeries() {
		sr := lwpUser[s.TID]
		if sr == nil {
			sr = &analysis.Series{Name: fmt.Sprintf("LWP %d user%%", s.TID)}
			lwpUser[s.TID] = sr
			out.LWP.Add(sr)
		}
		sr.Append(s.TimeSec, s.UserPct)
	}
	hwtUser := map[int]*analysis.Series{}
	aff := tr.Result.Ranks[0].Snapshot.ProcessAff
	for _, s := range mon.HWTSeries() {
		if !aff.Contains(s.CPU) {
			continue
		}
		sr := hwtUser[s.CPU]
		if sr == nil {
			sr = &analysis.Series{Name: fmt.Sprintf("CPU %d user%%", s.CPU)}
			hwtUser[s.CPU] = sr
			out.HWT.Add(sr)
		}
		sr.Append(s.TimeSec, s.UserPct)
	}
	out.LWPNoisiness = meanNoisiness(out.LWP, 20)
	out.HWTNoisiness = meanNoisiness(out.HWT, 20)
	return out, nil
}

// meanNoisiness averages Noisiness over series whose mean exceeds a floor
// (idle series are uninformative).
func meanNoisiness(c *analysis.StackedChart, minMean float64) float64 {
	sum, n := 0.0, 0
	for _, s := range c.Series {
		if s.Mean() >= minMean {
			sum += s.Noisiness()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// OverheadScenario is one side of Figure 8.
type OverheadScenario struct {
	Name           string
	ThreadsPerCore int
	Baseline       []float64
	WithZeroSum    []float64
	BaselineStats  analysis.Summary
	WithStats      analysis.Summary
	TTest          analysis.TTestResult
	OverheadSec    float64
	OverheadFrac   float64
}

// Figure8 runs the overhead experiment: `runs` seeded repetitions of the
// best miniQMC configuration with and without ZeroSum, at one and two
// OpenMP threads per core, compared with Welch's t-test (paper §4.1).
func Figure8(runs int, scale float64, seed uint64) ([2]*OverheadScenario, error) {
	var out [2]*OverheadScenario
	for i, tpc := range []int{1, 2} {
		sc := &OverheadScenario{
			Name:           fmt.Sprintf("%d thread(s) per core", tpc),
			ThreadsPerCore: tpc,
		}
		// Cache-refill cost of each monitor preemption: each rank's walker
		// working sets (~4 MB/thread) fit the 32 MB L3 region at one
		// thread per core, so a displaced thread refills from L3 — nearly
		// free. At two threads per core the region is ~2x overcommitted
		// and refills come from DRAM, charging real bandwidth on a
		// saturated memory controller. This is the asymmetry behind the
		// paper's "no overhead at 1 t/core, ~0.5% at 2 t/core".
		const wsPerThreadMB = 4
		refill := 60 * sim.Microsecond
		if wsPerThreadMB*7*tpc > 32 {
			refill = 600 * sim.Microsecond
		}
		for r := 0; r < runs; r++ {
			for _, withZS := range []bool{false, true} {
				mq := miniQMC(scale)
				mq.Threads = 7 * tpc
				mq.RunJitter = 0.0013
				cfg := workload.Config{
					Machine: topology.Frontier,
					App:     mq,
					Srun: slurm.Options{NTasks: 8, CoresPerTask: 7,
						ThreadsPerCore: tpc},
					OMP: openmp.Env{NumThreads: 7 * tpc,
						Bind: openmp.BindSpread, Places: openmp.PlacesCores},
					Sched: sched.Params{
						Quantum:       250 * sim.Microsecond,
						PreemptRefill: refill,
					},
					Seed: seed + uint64(r)*7919 + uint64(tpc)*13,
				}
				if withZS {
					cfg.Monitor = monitorOn()
				}
				res, err := workload.Run(cfg)
				if err != nil {
					return out, err
				}
				if withZS {
					sc.WithZeroSum = append(sc.WithZeroSum, res.WallSeconds)
				} else {
					sc.Baseline = append(sc.Baseline, res.WallSeconds)
				}
			}
		}
		sc.BaselineStats = analysis.Summarize(sc.Baseline)
		sc.WithStats = analysis.Summarize(sc.WithZeroSum)
		tt, err := analysis.WelchTTest(sc.Baseline, sc.WithZeroSum)
		if err != nil {
			return out, err
		}
		sc.TTest = tt
		sc.OverheadSec = sc.WithStats.Mean - sc.BaselineStats.Mean
		sc.OverheadFrac = sc.OverheadSec / sc.BaselineStats.Mean
		out[i] = sc
	}
	return out, nil
}
