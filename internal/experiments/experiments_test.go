package experiments

import (
	"strings"
	"testing"

	"zerosum/internal/core"
)

const testScale = 0.08

func TestListing1Shape(t *testing.T) {
	out := Listing1()
	for _, want := range []string{
		"HWLOC Node topology:",
		"Machine L#0",
		"L3Cache L#0 12MB",
		"PU L#1 P#4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("listing 1 missing %q", want)
		}
	}
}

func TestTablesShapeCriteria(t *testing.T) {
	t1, err := Table1(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Table2(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Shape criterion 1: T1 slowest by >= 2x.
	if ratio := t1.WallSeconds / t3.WallSeconds; ratio < 2.0 || ratio > 4.0 {
		t.Errorf("T1/T3 = %.2f, want 2-4x (paper 2.3x)", ratio)
	}
	// Shape criterion 2: T2 and T3 within a few percent.
	if r := t2.WallSeconds / t3.WallSeconds; r < 0.9 || r > 1.1 {
		t.Errorf("T2/T3 = %.2f, want ~1", r)
	}
	// Shape criterion 3: T1 nvctx orders of magnitude above T3.
	maxNV := func(tr *TableResult, skipMonitorCore bool) uint64 {
		var m uint64
		for _, l := range tr.Snapshot.LWPs {
			if l.Kind != core.KindOpenMP && l.Kind != core.KindMain {
				continue
			}
			if skipMonitorCore && l.Affinity.Contains(7) {
				continue
			}
			if l.NVCtx > m {
				m = l.NVCtx
			}
		}
		return m
	}
	nv1 := maxNV(t1, false)
	nv3 := maxNV(t3, true)
	if nv1 < 10000 {
		t.Errorf("T1 max nvctx = %d, want >= 10^4 at scale %.2f", nv1, testScale)
	}
	if nv3 != 0 {
		t.Errorf("T3 non-victim nvctx = %d, want 0", nv3)
	}
	// Shape criterion 4: T2's unbound threads migrate; T3's pinned ones
	// never do.
	migrated := 0
	for _, l := range t2.Snapshot.LWPs {
		if l.Kind == core.KindOpenMP && l.ObservedCPUs.Count() > 1 {
			migrated++
		}
	}
	if migrated == 0 {
		t.Error("T2: expected at least one migrated OpenMP thread")
	}
	for _, l := range t3.Snapshot.LWPs {
		if (l.Kind == core.KindOpenMP || l.Kind == core.KindMain) && l.ObservedCPUs.Count() > 1 {
			t.Errorf("T3: LWP %d migrated (observed %s)", l.TID, l.ObservedCPUs)
		}
	}
	// Shape criterion 5: runtimes near the scaled paper values (+/- 25%).
	for _, tr := range []*TableResult{t1, t2, t3} {
		if tr.WallSeconds < tr.PaperSeconds*0.75 || tr.WallSeconds > tr.PaperSeconds*1.25 {
			t.Errorf("%s: measured %.2f s vs paper-scaled %.2f s", tr.Label, tr.WallSeconds, tr.PaperSeconds)
		}
	}
}

func TestListing2Shape(t *testing.T) {
	tr, err := Listing2(0.03, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot
	if len(snap.GPUs) != 1 || snap.GPUs[0].TrueIndex != 4 {
		t.Fatalf("rank 0 must see GCD true index 4, got %+v", snap.GPUs)
	}
	var busy, vram, clock *core.GPUMetric
	for i := range snap.GPUs[0].Metrics {
		m := &snap.GPUs[0].Metrics[i]
		switch m.Name {
		case "Device Busy %":
			busy = m
		case "Used VRAM Bytes":
			vram = m
		case "Clock Frequency, GLX (MHz)":
			clock = m
		}
	}
	if busy == nil || busy.Agg.Avg() < 5 || busy.Agg.Avg() > 60 {
		t.Errorf("GPU busy avg = %v, want moderate (paper 14.6)", busy)
	}
	if vram == nil || vram.Agg.Max < 4.5e9 {
		t.Errorf("VRAM max = %+v, want ~4.97e9", vram)
	}
	if clock == nil || clock.Agg.Avg() < 1200 {
		t.Errorf("clock avg = %+v, want ramped near peak", clock)
	}
	// Walkers: substantial stime from launches, high vctx from syncs.
	for _, l := range snap.LWPs {
		if l.Kind != core.KindOpenMP && l.Kind != core.KindMain {
			continue
		}
		if l.STimePct < 5 {
			t.Errorf("walker %d stime = %.2f, want >= 5 (offload syscalls)", l.TID, l.STimePct)
		}
		if l.VCtx < 1000 {
			t.Errorf("walker %d vctx = %d, want thousands of kernel syncs", l.TID, l.VCtx)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	hm, res, err := Figure5(64, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallSeconds <= 0 {
		t.Fatal("no runtime")
	}
	if frac := hm.BandFraction(1); frac < 0.7 {
		t.Errorf("nearest-neighbour fraction = %.3f, want > 0.7", frac)
	}
	if hm.BandFraction(16) <= hm.BandFraction(1) {
		t.Error("secondary band (±16) should add volume")
	}
	if hm.Total() == 0 {
		t.Error("empty heatmap")
	}
}

func TestFigures6And7Shape(t *testing.T) {
	sr, err := Figures6And7(0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.LWP.Series) < 8 {
		t.Fatalf("LWP series = %d, want >= 8 (7 walkers + monitor + helper)", len(sr.LWP.Series))
	}
	if len(sr.HWT.Series) != 7 {
		t.Fatalf("HWT series = %d, want 7 (cpuset CPUs)", len(sr.HWT.Series))
	}
	// Busy series must carry signal.
	busy := 0
	for _, s := range sr.HWT.Series {
		if s.Mean() > 50 {
			busy++
		}
	}
	if busy != 7 {
		t.Errorf("busy HWT series = %d, want 7", busy)
	}
	var tsv strings.Builder
	if err := sr.LWP.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tsv.String(), "time\t") {
		t.Error("TSV header missing")
	}
}

func TestFigure8ShapeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead experiment is slow")
	}
	// 4 runs at 30% scale: assert mechanics and the direction of the
	// asymmetry; full significance is checked at paper scale by
	// cmd/experiments (see EXPERIMENTS.md).
	scens, err := Figure8(4, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scens {
		if len(sc.Baseline) != 4 || len(sc.WithZeroSum) != 4 {
			t.Fatalf("scenario %d sample sizes wrong", i)
		}
		if sc.BaselineStats.Std == 0 {
			t.Errorf("scenario %d: no run-to-run noise", i)
		}
	}
	// 2 t/core runs ~2x longer (double walkers, bandwidth-bound).
	if r := scens[1].BaselineStats.Mean / scens[0].BaselineStats.Mean; r < 1.7 || r > 2.4 {
		t.Errorf("2t/1t runtime ratio = %.2f, want ~2", r)
	}
	// The overhead asymmetry: 2 t/core pays visibly more than 1 t/core.
	if scens[1].OverheadFrac < scens[0].OverheadFrac {
		t.Errorf("overhead 2t (%.4f) should exceed 1t (%.4f)",
			scens[1].OverheadFrac, scens[0].OverheadFrac)
	}
	if scens[1].OverheadFrac < 0.001 {
		t.Errorf("2t overhead = %.4f%%, want >= 0.1%%", scens[1].OverheadFrac*100)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run many jobs")
	}
	abl, err := Ablations(2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 4 {
		t.Fatalf("ablations = %d", len(abl))
	}
	byName := map[string]Ablation{}
	for _, a := range abl {
		byName[a.Name] = a
		if a.String() == "" {
			t.Fatalf("%s renders empty", a.Name)
		}
	}
	// The bandwidth cap keeps T1/T3 near the paper; removing it blows the
	// ratio up toward the core count.
	bw := byName["bandwidth-cap"]
	if bw.With > 3.5 || bw.Without < 5 {
		t.Fatalf("bandwidth ablation: with=%.2f without=%.2f", bw.With, bw.Without)
	}
	// SMT: without the model, doubling threads per core is free.
	smt := byName["smt-slowdown"]
	if smt.With < 1.3 || smt.Without > 1.1 {
		t.Fatalf("smt ablation: with=%.2f without=%.2f", smt.With, smt.Without)
	}
	// Wake noise produces migrations; without it there are none.
	wn := byName["wake-noise"]
	if wn.With == 0 || wn.Without != 0 {
		t.Fatalf("wake-noise ablation: with=%v without=%v", wn.With, wn.Without)
	}
	// Refill creates overhead; without it the monitor is ~free. At this
	// tiny scale only the ordering is stable.
	rf := byName["preempt-refill"]
	if rf.With <= rf.Without {
		t.Fatalf("refill ablation: with=%v without=%v", rf.With, rf.Without)
	}
}
