// Package export handles ZeroSum's data-out paths (paper §3.6): per-process
// CSV dumps of every periodic sample (for time-series analysis and the
// Figure 6/7 charts) and an in-process publish/subscribe stream standing in
// for integrations with data services such as LDMS or ADIOS2 (paper §6).
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LWPSample is one periodic observation of one thread, matching the CSV
// field list the paper describes: state, utilization split, context
// switches, page faults, pages swapped, and the CPU the LWP last ran on.
type LWPSample struct {
	TimeSec float64 //zerosum:nowire carried by the enclosing Event frame header
	TID     int
	Kind    string // Main, OpenMP, ZeroSum, Other
	State   byte   // R, S, D, Z...
	UserPct float64
	SysPct  float64
	VCtx    uint64 // cumulative voluntary context switches
	NVCtx   uint64 // cumulative non-voluntary context switches
	MinFlt  uint64
	MajFlt  uint64
	NSwap   uint64
	CPU     int  // processor the LWP last executed on
	Stalled bool // §3.3 progress detection: no beat for Config.StallTicks samples
}

// HWTSample is one periodic observation of one hardware thread.
type HWTSample struct {
	TimeSec float64 //zerosum:nowire carried by the enclosing Event frame header
	CPU     int
	IdlePct float64
	SysPct  float64
	UserPct float64
}

// GPUSample is one periodic observation of one GPU metric.
type GPUSample struct {
	TimeSec float64 //zerosum:nowire carried by the enclosing Event frame header
	GPU     int
	Metric  string
	Value   float64
}

// MemSample is one periodic observation of system and process memory.
type MemSample struct {
	TimeSec   float64 //zerosum:nowire carried by the enclosing Event frame header
	TotalKB   uint64
	FreeKB    uint64
	AvailKB   uint64
	ProcRSSKB uint64
	ProcHWMKB uint64
}

// IOSample is one periodic observation of the process's cumulative I/O
// counters from /proc/<pid>/io.
type IOSample struct {
	TimeSec    float64 //zerosum:nowire carried by the enclosing Event frame header
	RChar      uint64
	WChar      uint64
	SyscR      uint64
	SyscW      uint64
	ReadBytes  uint64
	WriteBytes uint64
}

// Column headers for each CSV section.
var (
	LWPHeader = []string{"time", "tid", "kind", "state", "user_pct", "sys_pct",
		"vctx", "nvctx", "minflt", "majflt", "nswap", "cpu", "stalled"}
	HWTHeader = []string{"time", "cpu", "idle_pct", "sys_pct", "user_pct"}
	GPUHeader = []string{"time", "gpu", "metric", "value"}
	MemHeader = []string{"time", "total_kb", "free_kb", "avail_kb", "rss_kb", "hwm_kb"}
	IOHeader  = []string{"time", "rchar", "wchar", "syscr", "syscw", "read_bytes", "write_bytes"}
)

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func u(v uint64) string  { return strconv.FormatUint(v, 10) }
func i(v int) string     { return strconv.Itoa(v) }

func b(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// WriteLWPCSV writes the thread samples with a header row.
func WriteLWPCSV(w io.Writer, samples []LWPSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(LWPHeader); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{f(s.TimeSec), i(s.TID), s.Kind, string(s.State),
			f(s.UserPct), f(s.SysPct), u(s.VCtx), u(s.NVCtx),
			u(s.MinFlt), u(s.MajFlt), u(s.NSwap), i(s.CPU), b(s.Stalled)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadLWPCSV parses what WriteLWPCSV wrote.
func ReadLWPCSV(r io.Reader) ([]LWPSample, error) {
	rows, err := readRows(r, len(LWPHeader), "lwp")
	if err != nil {
		return nil, err
	}
	out := make([]LWPSample, 0, len(rows))
	for _, rec := range rows {
		var s LWPSample
		s.TimeSec = pf(rec[0])
		s.TID = pi(rec[1])
		s.Kind = rec[2]
		if len(rec[3]) > 0 {
			s.State = rec[3][0]
		}
		s.UserPct, s.SysPct = pf(rec[4]), pf(rec[5])
		s.VCtx, s.NVCtx = pu(rec[6]), pu(rec[7])
		s.MinFlt, s.MajFlt, s.NSwap = pu(rec[8]), pu(rec[9]), pu(rec[10])
		s.CPU = pi(rec[11])
		s.Stalled = rec[12] == "1"
		out = append(out, s)
	}
	return out, nil
}

// WriteHWTCSV writes the hardware-thread samples.
func WriteHWTCSV(w io.Writer, samples []HWTSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(HWTHeader); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write([]string{f(s.TimeSec), i(s.CPU), f(s.IdlePct), f(s.SysPct), f(s.UserPct)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadHWTCSV parses what WriteHWTCSV wrote.
func ReadHWTCSV(r io.Reader) ([]HWTSample, error) {
	rows, err := readRows(r, len(HWTHeader), "hwt")
	if err != nil {
		return nil, err
	}
	out := make([]HWTSample, 0, len(rows))
	for _, rec := range rows {
		out = append(out, HWTSample{
			TimeSec: pf(rec[0]), CPU: pi(rec[1]),
			IdlePct: pf(rec[2]), SysPct: pf(rec[3]), UserPct: pf(rec[4]),
		})
	}
	return out, nil
}

// WriteGPUCSV writes the GPU metric samples.
func WriteGPUCSV(w io.Writer, samples []GPUSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(GPUHeader); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write([]string{f(s.TimeSec), i(s.GPU), s.Metric, f(s.Value)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadGPUCSV parses what WriteGPUCSV wrote.
func ReadGPUCSV(r io.Reader) ([]GPUSample, error) {
	rows, err := readRows(r, len(GPUHeader), "gpu")
	if err != nil {
		return nil, err
	}
	out := make([]GPUSample, 0, len(rows))
	for _, rec := range rows {
		out = append(out, GPUSample{TimeSec: pf(rec[0]), GPU: pi(rec[1]), Metric: rec[2], Value: pf(rec[3])})
	}
	return out, nil
}

// WriteMemCSV writes the memory samples.
func WriteMemCSV(w io.Writer, samples []MemSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(MemHeader); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write([]string{f(s.TimeSec), u(s.TotalKB), u(s.FreeKB), u(s.AvailKB), u(s.ProcRSSKB), u(s.ProcHWMKB)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMemCSV parses what WriteMemCSV wrote.
func ReadMemCSV(r io.Reader) ([]MemSample, error) {
	rows, err := readRows(r, len(MemHeader), "mem")
	if err != nil {
		return nil, err
	}
	out := make([]MemSample, 0, len(rows))
	for _, rec := range rows {
		out = append(out, MemSample{
			TimeSec: pf(rec[0]), TotalKB: pu(rec[1]), FreeKB: pu(rec[2]),
			AvailKB: pu(rec[3]), ProcRSSKB: pu(rec[4]), ProcHWMKB: pu(rec[5]),
		})
	}
	return out, nil
}

// WriteIOCSV writes the process I/O samples.
func WriteIOCSV(w io.Writer, samples []IOSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(IOHeader); err != nil {
		return err
	}
	for _, s := range samples {
		rec := []string{f(s.TimeSec), u(s.RChar), u(s.WChar), u(s.SyscR), u(s.SyscW), u(s.ReadBytes), u(s.WriteBytes)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadIOCSV parses what WriteIOCSV wrote.
func ReadIOCSV(r io.Reader) ([]IOSample, error) {
	rows, err := readRows(r, len(IOHeader), "io")
	if err != nil {
		return nil, err
	}
	out := make([]IOSample, 0, len(rows))
	for _, rec := range rows {
		out = append(out, IOSample{
			TimeSec: pf(rec[0]), RChar: pu(rec[1]), WChar: pu(rec[2]),
			SyscR: pu(rec[3]), SyscW: pu(rec[4]),
			ReadBytes: pu(rec[5]), WriteBytes: pu(rec[6]),
		})
	}
	return out, nil
}

// WriteCommCSV writes the MPI point-to-point matrix as dst,src,bytes rows.
func WriteCommCSV(w io.Writer, matrix [][]uint64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dst", "src", "bytes"}); err != nil {
		return err
	}
	for d, row := range matrix {
		for s, v := range row {
			if v == 0 {
				continue
			}
			if err := cw.Write([]string{i(d), i(s), u(v)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCommCSV rebuilds a size x size matrix from WriteCommCSV output.
func ReadCommCSV(r io.Reader, size int) ([][]uint64, error) {
	if size < 0 {
		return nil, fmt.Errorf("export: negative comm matrix size %d", size)
	}
	rows, err := readRows(r, 3, "comm")
	if err != nil {
		return nil, err
	}
	m := make([][]uint64, size)
	for d := range m {
		m[d] = make([]uint64, size)
	}
	for _, rec := range rows {
		d, s := pi(rec[0]), pi(rec[1])
		if d < 0 || d >= size || s < 0 || s >= size {
			return nil, fmt.Errorf("export: comm entry (%d,%d) outside %dx%d", d, s, size, size)
		}
		m[d][s] = pu(rec[2])
	}
	return m, nil
}

func readRows(r io.Reader, width int, what string) ([][]string, error) {
	cr := csv.NewReader(r)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("export: read %s csv: %w", what, err)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("export: %s csv is empty", what)
	}
	if len(all[0]) != width {
		return nil, fmt.Errorf("export: %s csv has %d columns, want %d", what, len(all[0]), width)
	}
	return all[1:], nil
}

func pf(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

func pi(s string) int {
	v, _ := strconv.Atoi(s)
	return v
}

func pu(s string) uint64 {
	v, _ := strconv.ParseUint(s, 10, 64)
	return v
}
