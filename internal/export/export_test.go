package export

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLWPCSVRoundTrip(t *testing.T) {
	in := []LWPSample{
		{TimeSec: 1, TID: 18351, Kind: "Main", State: 'R', UserPct: 63.94,
			SysPct: 12.48, VCtx: 365488, NVCtx: 4, MinFlt: 120, MajFlt: 1, NSwap: 0, CPU: 1},
		{TimeSec: 2, TID: 18356, Kind: "ZeroSum", State: 'S', UserPct: 0.26,
			SysPct: 0.15, VCtx: 679, NVCtx: 9, CPU: 7},
	}
	var sb strings.Builder
	if err := WriteLWPCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLWPCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip:\n in=%+v\nout=%+v", in, out)
	}
}

func TestHWTCSVRoundTrip(t *testing.T) {
	in := []HWTSample{
		{TimeSec: 1, CPU: 1, IdlePct: 22.7, SysPct: 12.42, UserPct: 64.52},
		{TimeSec: 1, CPU: 2, IdlePct: 99.82, SysPct: 0, UserPct: 0},
	}
	var sb strings.Builder
	if err := WriteHWTCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadHWTCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch")
	}
}

func TestGPUAndMemCSVRoundTrip(t *testing.T) {
	gin := []GPUSample{{TimeSec: 1, GPU: 0, Metric: "Device Busy %", Value: 14.6161}}
	var sb strings.Builder
	if err := WriteGPUCSV(&sb, gin); err != nil {
		t.Fatal(err)
	}
	gout, err := ReadGPUCSV(strings.NewReader(sb.String()))
	if err != nil || !reflect.DeepEqual(gin, gout) {
		t.Fatalf("gpu round trip: %v %+v", err, gout)
	}
	min := []MemSample{{TimeSec: 2, TotalKB: 512 << 20, FreeKB: 100, AvailKB: 200, ProcRSSKB: 42, ProcHWMKB: 50}}
	sb.Reset()
	if err := WriteMemCSV(&sb, min); err != nil {
		t.Fatal(err)
	}
	mout, err := ReadMemCSV(strings.NewReader(sb.String()))
	if err != nil || !reflect.DeepEqual(min, mout) {
		t.Fatalf("mem round trip: %v %+v", err, mout)
	}
}

func TestCommCSVRoundTrip(t *testing.T) {
	m := [][]uint64{
		{0, 5, 0},
		{7, 0, 0},
		{0, 9, 0},
	}
	var sb strings.Builder
	if err := WriteCommCSV(&sb, m); err != nil {
		t.Fatal(err)
	}
	// Zero cells are omitted from the file.
	if strings.Count(sb.String(), "\n") != 4 { // header + 3 nonzero
		t.Fatalf("unexpected rows:\n%s", sb.String())
	}
	out, err := ReadCommCSV(strings.NewReader(sb.String()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, out) {
		t.Fatalf("round trip: %v", out)
	}
}

func TestReadCommCSVOutOfRange(t *testing.T) {
	csv := "dst,src,bytes\n9,0,5\n"
	if _, err := ReadCommCSV(strings.NewReader(csv), 3); err == nil {
		t.Fatal("out-of-range entry should error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadLWPCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadHWTCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("wrong width should error")
	}
}

func TestQuickLWPRoundTrip(t *testing.T) {
	f := func(tid uint16, user, sys uint8, vctx, nvctx uint32, cpu uint8) bool {
		in := []LWPSample{{
			TimeSec: 1.5, TID: int(tid), Kind: "OpenMP", State: 'R',
			UserPct: float64(user), SysPct: float64(sys),
			VCtx: uint64(vctx), NVCtx: uint64(nvctx), CPU: int(cpu),
		}}
		var sb strings.Builder
		if err := WriteLWPCSV(&sb, in); err != nil {
			return false
		}
		out, err := ReadLWPCSV(strings.NewReader(sb.String()))
		return err == nil && reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamPubSub(t *testing.T) {
	var s Stream
	var got []Event
	s.Subscribe(func(ev Event) { got = append(got, ev) })
	s.Subscribe(nil) // ignored
	second := 0
	s.Subscribe(func(Event) { second++ })
	s.Publish(Event{Kind: EventHeartbeat, TimeSec: 1})
	s.Publish(Event{Kind: EventLWP, TimeSec: 2, LWP: &LWPSample{TID: 7}})
	if len(got) != 2 || second != 2 {
		t.Fatalf("delivery: %d / %d", len(got), second)
	}
	if got[1].LWP.TID != 7 {
		t.Fatal("payload lost")
	}
	if s.Published() != 2 {
		t.Fatalf("published = %d", s.Published())
	}
}
