package export

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzHeatmapParse feeds arbitrary CSV at the comm-matrix reader. The matrix
// size is an independent fuzz argument (in production it comes from the job
// summary, which crosses the wire separately from the CSV), bounded so a
// hostile size cannot allocate size^2 cells. Invariants: no panic, and any
// matrix that parses cleanly survives a write/read round trip.
func FuzzHeatmapParse(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCommCSV(&buf, [][]uint64{{0, 5, 0}, {7, 0, 1}, {0, 2, 0}}); err != nil {
		f.Fatalf("seed matrix: %v", err)
	}
	f.Add(buf.Bytes(), 3)
	f.Add([]byte("dst,src,bytes\n"), 1)
	f.Add([]byte("dst,src,bytes\n9,9,1\n"), 2)       // out-of-range entry
	f.Add([]byte("dst,src,bytes\n-1,0,1\n"), 2)      // negative index
	f.Add([]byte("dst,src,bytes\n0,0,notanum\n"), 1) // soft-parsed value
	f.Add([]byte("dst,src\n0,0\n"), 1)               // wrong column count
	f.Add([]byte(""), 0)
	f.Add([]byte("x"), -1)

	f.Fuzz(func(t *testing.T, data []byte, size int) {
		// Bound the allocation, not the parser: size*size cells at 8 bytes
		// each stays under a few hundred KiB.
		if size > 128 {
			size %= 128
		}
		m, err := ReadCommCSV(bytes.NewReader(data), size)
		if err != nil {
			return
		}
		if len(m) != size {
			t.Fatalf("parsed matrix has %d rows, want %d", len(m), size)
		}
		var out bytes.Buffer
		if err := WriteCommCSV(&out, m); err != nil {
			t.Fatalf("re-writing parsed matrix: %v", err)
		}
		again, err := ReadCommCSV(bytes.NewReader(out.Bytes()), size)
		if err != nil {
			t.Fatalf("re-reading written matrix: %v", err)
		}
		if !reflect.DeepEqual(m, again) {
			t.Fatalf("comm matrix round trip diverged:\n %v\n %v", m, again)
		}
	})
}
