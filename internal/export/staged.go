package export

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// The paper's future work (§6) calls for refactoring ZeroSum's log output
// onto the ADIOS2 time-series I/O staging library. This file implements a
// small self-contained staging format with the same shape as ADIOS2's BP
// streams: an append-only sequence of steps, each carrying named float64
// variable blocks, readable both after the fact and while being written.
//
// Layout (all little endian):
//
//	magic   "ZSBP1\n"
//	frame*  step:uint32  time:float64  nvars:uint32
//	        var*: nameLen:uint16 name  count:uint32  values:float64*
//
// The stream has no footer, so a crashed writer leaves a readable prefix.

var stagedMagic = []byte("ZSBP1\n")

// StagedWriter writes a step stream.
type StagedWriter struct {
	w     *bufio.Writer
	step  uint32
	open  bool
	time  float64
	names []string
	vars  map[string][]float64
	err   error
}

// NewStagedWriter starts a stream on w (the magic is written immediately).
func NewStagedWriter(w io.Writer) (*StagedWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(stagedMagic); err != nil {
		return nil, fmt.Errorf("export: staged magic: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return nil, fmt.Errorf("export: staged magic: %w", err)
	}
	return &StagedWriter{w: bw, vars: map[string][]float64{}}, nil
}

// BeginStep opens a step at the given time; steps may not nest.
func (s *StagedWriter) BeginStep(t float64) error {
	if s.err != nil {
		return s.err
	}
	if s.open {
		return fmt.Errorf("export: BeginStep with step %d still open", s.step)
	}
	s.open = true
	s.time = t
	s.names = s.names[:0]
	for k := range s.vars {
		delete(s.vars, k)
	}
	return nil
}

// Put appends values under name in the current step. Repeated Puts with the
// same name within a step append to the block.
func (s *StagedWriter) Put(name string, values ...float64) error {
	if s.err != nil {
		return s.err
	}
	if !s.open {
		return fmt.Errorf("export: Put(%q) outside a step", name)
	}
	if len(name) > 0xFFFF {
		return fmt.Errorf("export: variable name too long (%d bytes)", len(name))
	}
	if _, seen := s.vars[name]; !seen {
		s.names = append(s.names, name)
	}
	s.vars[name] = append(s.vars[name], values...)
	return nil
}

// EndStep serialises the frame.
func (s *StagedWriter) EndStep() error {
	if s.err != nil {
		return s.err
	}
	if !s.open {
		return fmt.Errorf("export: EndStep without a step")
	}
	s.open = false
	put := func(v any) {
		if s.err == nil {
			s.err = binary.Write(s.w, binary.LittleEndian, v)
		}
	}
	put(s.step)
	put(math.Float64bits(s.time))
	put(uint32(len(s.names)))
	// Deterministic variable order: insertion order, which callers keep
	// stable; names sorted here would also work but loses intent.
	for _, name := range s.names {
		put(uint16(len(name)))
		if s.err == nil {
			_, s.err = s.w.WriteString(name)
		}
		vals := s.vars[name]
		put(uint32(len(vals)))
		for _, v := range vals {
			put(math.Float64bits(v))
		}
	}
	s.step++
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Steps returns how many steps have been completed.
func (s *StagedWriter) Steps() int { return int(s.step) }

// Step is one decoded frame.
type Step struct {
	Index uint32
	Time  float64
	Vars  map[string][]float64
}

// VarNames returns the step's variable names, sorted.
func (st Step) VarNames() []string {
	out := make([]string, 0, len(st.Vars))
	for k := range st.Vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// StagedReader reads a step stream.
type StagedReader struct {
	r *bufio.Reader
}

// NewStagedReader validates the magic and prepares to read steps.
func NewStagedReader(r io.Reader) (*StagedReader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(stagedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("export: staged magic: %w", err)
	}
	if string(magic) != string(stagedMagic) {
		return nil, fmt.Errorf("export: bad staged magic %q", magic)
	}
	return &StagedReader{r: br}, nil
}

// Next reads one step; io.EOF signals a clean end of stream.
func (sr *StagedReader) Next() (Step, error) {
	var st Step
	var step uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &step); err != nil {
		if err == io.EOF {
			return st, io.EOF
		}
		return st, fmt.Errorf("export: staged step header: %w", err)
	}
	st.Index = step
	var tbits uint64
	if err := binary.Read(sr.r, binary.LittleEndian, &tbits); err != nil {
		return st, fmt.Errorf("export: staged time: %w", err)
	}
	st.Time = math.Float64frombits(tbits)
	var nvars uint32
	if err := binary.Read(sr.r, binary.LittleEndian, &nvars); err != nil {
		return st, fmt.Errorf("export: staged nvars: %w", err)
	}
	if nvars > 1<<20 {
		return st, fmt.Errorf("export: staged frame claims %d variables", nvars)
	}
	st.Vars = make(map[string][]float64, nvars)
	for i := uint32(0); i < nvars; i++ {
		var nameLen uint16
		if err := binary.Read(sr.r, binary.LittleEndian, &nameLen); err != nil {
			return st, fmt.Errorf("export: staged name len: %w", err)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(sr.r, name); err != nil {
			return st, fmt.Errorf("export: staged name: %w", err)
		}
		var count uint32
		if err := binary.Read(sr.r, binary.LittleEndian, &count); err != nil {
			return st, fmt.Errorf("export: staged count: %w", err)
		}
		if count > 1<<28 {
			return st, fmt.Errorf("export: staged block claims %d values", count)
		}
		vals := make([]float64, count)
		for j := range vals {
			var bits uint64
			if err := binary.Read(sr.r, binary.LittleEndian, &bits); err != nil {
				return st, fmt.Errorf("export: staged value: %w", err)
			}
			vals[j] = math.Float64frombits(bits)
		}
		st.Vars[string(name)] = vals
	}
	return st, nil
}

// ReadAllSteps drains the stream.
func (sr *StagedReader) ReadAllSteps() ([]Step, error) {
	var out []Step
	for {
		st, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
}

// StagedSink bridges the in-process Stream onto a staged writer: every
// heartbeat-to-heartbeat window of samples becomes one step, with per-kind
// variable blocks — the LDMS/ADIOS2 integration point from §6.
type StagedSink struct {
	w        *StagedWriter
	lastTime float64
	dirty    bool
	err      error
}

// NewStagedSink wraps a writer.
func NewStagedSink(w *StagedWriter) *StagedSink { return &StagedSink{w: w, lastTime: -1} }

// Subscriber returns the Stream callback. Samples sharing a timestamp are
// grouped into one step; a new timestamp closes the previous step.
func (s *StagedSink) Subscriber() Subscriber {
	return func(ev Event) {
		if s.err != nil {
			return
		}
		if ev.TimeSec != s.lastTime {
			if s.dirty {
				s.err = s.w.EndStep()
				if s.err != nil {
					return
				}
			}
			s.err = s.w.BeginStep(ev.TimeSec)
			if s.err != nil {
				return
			}
			s.lastTime = ev.TimeSec
			s.dirty = true
		}
		switch ev.Kind {
		case EventLWP:
			l := ev.LWP
			s.put(fmt.Sprintf("lwp.%d.user_pct", l.TID), l.UserPct)
			s.put(fmt.Sprintf("lwp.%d.sys_pct", l.TID), l.SysPct)
			s.put(fmt.Sprintf("lwp.%d.nvctx", l.TID), float64(l.NVCtx))
			s.put(fmt.Sprintf("lwp.%d.vctx", l.TID), float64(l.VCtx))
			s.put(fmt.Sprintf("lwp.%d.cpu", l.TID), float64(l.CPU))
		case EventHWT:
			h := ev.HWT
			s.put(fmt.Sprintf("hwt.%d.user_pct", h.CPU), h.UserPct)
			s.put(fmt.Sprintf("hwt.%d.sys_pct", h.CPU), h.SysPct)
			s.put(fmt.Sprintf("hwt.%d.idle_pct", h.CPU), h.IdlePct)
		case EventGPU:
			g := ev.GPU
			s.put(fmt.Sprintf("gpu.%d.%s", g.GPU, g.Metric), g.Value)
		case EventMem:
			m := ev.Mem
			s.put("mem.free_kb", float64(m.FreeKB))
			s.put("mem.rss_kb", float64(m.ProcRSSKB))
		}
	}
}

func (s *StagedSink) put(name string, v float64) {
	if s.err == nil {
		s.err = s.w.Put(name, v)
	}
}

// Close flushes the final step and reports any deferred error.
func (s *StagedSink) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.dirty {
		s.dirty = false
		return s.w.EndStep()
	}
	return nil
}
