package export

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStagedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewStagedWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.BeginStep(1.0); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("lwp.1.user_pct", 95.5); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("lwp.1.user_pct", 96.5); err != nil { // appends
		t.Fatal(err)
	}
	if err := w.Put("mem.free_kb", 12345); err != nil {
		t.Fatal(err)
	}
	if err := w.EndStep(); err != nil {
		t.Fatal(err)
	}
	if err := w.BeginStep(2.0); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("empty.block"); err != nil {
		t.Fatal(err)
	}
	if err := w.EndStep(); err != nil {
		t.Fatal(err)
	}
	if w.Steps() != 2 {
		t.Fatalf("steps = %d", w.Steps())
	}

	r, err := NewStagedReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := r.ReadAllSteps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("read %d steps", len(steps))
	}
	if steps[0].Index != 0 || steps[0].Time != 1.0 {
		t.Fatalf("step 0 header: %+v", steps[0])
	}
	if !reflect.DeepEqual(steps[0].Vars["lwp.1.user_pct"], []float64{95.5, 96.5}) {
		t.Fatalf("appended block: %v", steps[0].Vars)
	}
	if steps[0].Vars["mem.free_kb"][0] != 12345 {
		t.Fatal("second var lost")
	}
	if got := steps[1].VarNames(); len(got) != 1 || got[0] != "empty.block" {
		t.Fatalf("step 1 names: %v", got)
	}
	if len(steps[1].Vars["empty.block"]) != 0 {
		t.Fatal("empty block should stay empty")
	}
}

func TestStagedWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStagedWriter(&buf)
	if err := w.Put("x", 1); err == nil {
		t.Fatal("Put outside step should fail")
	}
	if err := w.EndStep(); err == nil {
		t.Fatal("EndStep without step should fail")
	}
	if err := w.BeginStep(0); err != nil {
		t.Fatal(err)
	}
	if err := w.BeginStep(1); err == nil {
		t.Fatal("nested BeginStep should fail")
	}
}

func TestStagedReaderValidation(t *testing.T) {
	if _, err := NewStagedReader(bytes.NewReader([]byte("WRONG!"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	if _, err := NewStagedReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
	// Truncated frame: readable prefix then an error (not a hang).
	var buf bytes.Buffer
	w, _ := NewStagedWriter(&buf)
	w.BeginStep(1)
	w.Put("a", 1, 2, 3)
	w.EndStep()
	data := buf.Bytes()
	r, err := NewStagedReader(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated frame should error")
	}
}

func TestStagedCrashLeavesReadablePrefix(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStagedWriter(&buf)
	for i := 0; i < 3; i++ {
		w.BeginStep(float64(i))
		w.Put("v", float64(i)*10)
		w.EndStep()
	}
	// "Crash": a step begun but never ended is simply absent.
	w.BeginStep(99)
	w.Put("v", 999)

	r, _ := NewStagedReader(bytes.NewReader(buf.Bytes()))
	steps, err := r.ReadAllSteps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("prefix steps = %d, want 3", len(steps))
	}
}

func TestStagedSinkGroupsByTimestamp(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStagedWriter(&buf)
	sink := NewStagedSink(w)
	var stream Stream
	stream.Subscribe(sink.Subscriber())

	for tick := 1; tick <= 3; tick++ {
		ts := float64(tick)
		stream.Publish(Event{Kind: EventLWP, TimeSec: ts,
			LWP: &LWPSample{TID: 100, UserPct: 90, VCtx: uint64(tick)}})
		stream.Publish(Event{Kind: EventHWT, TimeSec: ts,
			HWT: &HWTSample{CPU: 1, UserPct: 88}})
		stream.Publish(Event{Kind: EventMem, TimeSec: ts,
			Mem: &MemSample{FreeKB: 1000, ProcRSSKB: 10}})
		stream.Publish(Event{Kind: EventGPU, TimeSec: ts,
			GPU: &GPUSample{GPU: 0, Metric: "Device Busy %", Value: 14.6}})
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	r, _ := NewStagedReader(bytes.NewReader(buf.Bytes()))
	steps, err := r.ReadAllSteps()
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3 (one per timestamp)", len(steps))
	}
	st := steps[1]
	if st.Time != 2 {
		t.Fatalf("step time = %v", st.Time)
	}
	if st.Vars["lwp.100.user_pct"][0] != 90 {
		t.Fatalf("lwp var: %v", st.Vars)
	}
	if st.Vars["hwt.1.user_pct"][0] != 88 {
		t.Fatal("hwt var missing")
	}
	if st.Vars["gpu.0.Device Busy %"][0] != 14.6 {
		t.Fatal("gpu var missing")
	}
	if st.Vars["mem.free_kb"][0] != 1000 {
		t.Fatal("mem var missing")
	}
}

func TestStagedSinkEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewStagedWriter(&buf)
	sink := NewStagedSink(w)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewStagedReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestQuickStagedRoundTrip(t *testing.T) {
	f := func(times []uint16, vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0 // NaN != NaN breaks DeepEqual; values survive regardless
			}
		}
		var buf bytes.Buffer
		w, err := NewStagedWriter(&buf)
		if err != nil {
			return false
		}
		for i, tt := range times {
			if w.BeginStep(float64(tt)) != nil {
				return false
			}
			if w.Put("v", vals...) != nil {
				return false
			}
			if w.Put("i", float64(i)) != nil {
				return false
			}
			if w.EndStep() != nil {
				return false
			}
		}
		r, err := NewStagedReader(&buf)
		if err != nil {
			return false
		}
		steps, err := r.ReadAllSteps()
		if err != nil || len(steps) != len(times) {
			return false
		}
		for i, st := range steps {
			if st.Time != float64(times[i]) || st.Vars["i"][0] != float64(i) {
				return false
			}
			if !reflect.DeepEqual(st.Vars["v"], append([]float64{}, vals...)) {
				// Empty slices decode as non-nil empty; normalise.
				if len(st.Vars["v"]) != len(vals) {
					return false
				}
				for j := range vals {
					if st.Vars["v"][j] != vals[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
