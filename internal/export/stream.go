package export

import "sync"
import "sync/atomic"

// EventKind tags stream events.
type EventKind int

// Stream event kinds.
const (
	EventLWP EventKind = iota
	EventHWT
	EventGPU
	EventMem
	EventIO
	EventHeartbeat
)

// Event is one published observation. Exactly one payload pointer matching
// Kind is non-nil (Heartbeat events carry only the time).
//
// Payload pointers are borrowed from the publisher: they are valid only for
// the duration of the Subscriber call, because the monitor reuses one sample
// struct per kind across ticks to keep its hot path allocation-free. A
// subscriber that retains an event past its return must copy the payload it
// cares about (the aggd agent copies into its ring slots; see Agent).
type Event struct {
	Kind    EventKind
	TimeSec float64
	LWP     *LWPSample
	HWT     *HWTSample
	GPU     *GPUSample
	Mem     *MemSample
	IO      *IOSample
}

// Subscriber consumes stream events.
type Subscriber func(Event)

// Stream is ZeroSum's in-process data-service hook: tools that would, in a
// production deployment, forward samples to LDMS/ADIOS2/TAU subscribe here
// and receive every sample as it is taken (paper §3.6 and §6). The zero
// value is ready to use.
//
// Stream is safe for concurrent use: Subscribe may race with Publish (the
// aggd node agent consumes the stream from outside the monitor loop), and
// multiple goroutines may Publish. Subscribers registered concurrently with
// a Publish in flight receive only subsequent events. A subscriber that
// panics does not kill the publishing (sampling) loop: the panic is
// recovered, the event counts as dropped for that subscriber, and delivery
// to the remaining subscribers continues.
type Stream struct {
	mu      sync.Mutex                   // guards Subscribe/Close's copy-on-write
	closed  bool                         //zerosum:guardedby mu
	subs    atomic.Pointer[[]Subscriber] // immutable snapshot read by Publish
	n       atomic.Uint64
	dropped atomic.Uint64
}

// Subscribe registers a consumer for all subsequent events. Subscribing to
// a closed stream is a no-op.
func (s *Stream) Subscribe(fn Subscriber) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	var next []Subscriber
	if old := s.subs.Load(); old != nil {
		next = append(next, *old...)
	}
	next = append(next, fn)
	s.subs.Store(&next)
}

// Close detaches every subscriber and rejects future Subscribes, so a torn-
// down consumer (e.g. a killed aggregation agent) can never be called again
// through a stream that outlives it. Publish stays safe on a closed stream:
// events are still counted but delivered to no one. A Publish already in
// flight may deliver to the old subscriber snapshot it loaded before Close
// swapped it out — callers that need a hard barrier must stop publishers
// first. Close is idempotent.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.subs.Store(nil)
}

// Publish delivers an event to every subscriber. The hot path is one atomic
// increment plus one atomic load when nobody is subscribed.
//
//zerosum:hotpath
func (s *Stream) Publish(ev Event) {
	s.n.Add(1)
	subs := s.subs.Load()
	if subs == nil {
		return
	}
	for _, fn := range *subs {
		s.deliver(fn, ev)
	}
}

// deliver isolates one subscriber call so its panic cannot unwind into the
// sampling loop.
func (s *Stream) deliver(fn Subscriber, ev Event) {
	defer func() {
		if recover() != nil {
			s.dropped.Add(1)
		}
	}()
	fn(ev)
}

// Published returns the number of events published so far.
func (s *Stream) Published() uint64 { return s.n.Load() }

// Dropped returns how many subscriber deliveries were lost to recovered
// subscriber panics.
func (s *Stream) Dropped() uint64 { return s.dropped.Load() }
