package export

// EventKind tags stream events.
type EventKind int

// Stream event kinds.
const (
	EventLWP EventKind = iota
	EventHWT
	EventGPU
	EventMem
	EventIO
	EventHeartbeat
)

// Event is one published observation. Exactly one payload pointer matching
// Kind is non-nil (Heartbeat events carry only the time).
type Event struct {
	Kind    EventKind
	TimeSec float64
	LWP     *LWPSample
	HWT     *HWTSample
	GPU     *GPUSample
	Mem     *MemSample
	IO      *IOSample
}

// Subscriber consumes stream events.
type Subscriber func(Event)

// Stream is ZeroSum's in-process data-service hook: tools that would, in a
// production deployment, forward samples to LDMS/ADIOS2/TAU subscribe here
// and receive every sample as it is taken (paper §3.6 and §6). The zero
// value is ready to use. It is not safe for concurrent use; the simulated
// monitor is single-threaded by construction.
type Stream struct {
	subs []Subscriber
	n    uint64
}

// Subscribe registers a consumer for all subsequent events.
func (s *Stream) Subscribe(fn Subscriber) {
	if fn != nil {
		s.subs = append(s.subs, fn)
	}
}

// Publish delivers an event to every subscriber.
func (s *Stream) Publish(ev Event) {
	s.n++
	for _, fn := range s.subs {
		fn(ev)
	}
}

// Published returns the number of events published so far.
func (s *Stream) Published() uint64 { return s.n }
