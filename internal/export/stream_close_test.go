// Stream shutdown tests live in an external test package so they can reuse
// the chaos leak checker (chaos imports export; an in-package test would be
// an import cycle).
package export_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"zerosum/internal/chaos"
	"zerosum/internal/export"
)

func hb(t float64) export.Event {
	return export.Event{Kind: export.EventHeartbeat, TimeSec: t}
}

func TestStreamCloseStopsDelivery(t *testing.T) {
	var s export.Stream
	var got atomic.Uint64
	s.Subscribe(func(export.Event) { got.Add(1) })
	s.Publish(hb(1))
	if got.Load() != 1 {
		t.Fatalf("pre-close publish delivered %d, want 1", got.Load())
	}
	s.Close()
	s.Publish(hb(2))
	if got.Load() != 1 {
		t.Fatalf("post-close publish delivered: %d", got.Load())
	}
	// Subscribing after Close is a no-op, not a resurrection.
	s.Subscribe(func(export.Event) { got.Add(100) })
	s.Publish(hb(3))
	if got.Load() != 1 {
		t.Fatalf("post-close subscribe received events: %d", got.Load())
	}
	s.Close() // idempotent
}

// TestStreamConcurrentPublishSubscribeClose hammers all three operations
// from concurrent goroutines under -race. The assertions are structural —
// no data race, no panic, no goroutine left behind — plus monotonic
// delivery: a subscriber registered before any publish sees every event
// delivered before Close won the race.
func TestStreamConcurrentPublishSubscribeClose(t *testing.T) {
	lc := chaos.StartLeakCheck()
	for round := 0; round < 20; round++ {
		var s export.Stream
		var delivered atomic.Uint64
		s.Subscribe(func(export.Event) { delivered.Add(1) })

		var wg sync.WaitGroup
		start := make(chan struct{})
		published := make([]uint64, 4)
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					s.Publish(hb(float64(i)))
					published[p]++
				}
			}(p)
		}
		for q := 0; q < 2; q++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					s.Subscribe(func(export.Event) {})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Close()
		}()
		close(start)
		wg.Wait()

		var total uint64
		for _, n := range published {
			total += n
		}
		if delivered.Load() > total {
			t.Fatalf("round %d: delivered %d > published %d", round, delivered.Load(), total)
		}
	}
	lc.Assert(t)
}
