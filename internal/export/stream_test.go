package export

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStreamPublishSubscribe(t *testing.T) {
	var s Stream
	var got []Event
	s.Subscribe(func(ev Event) { got = append(got, ev) })
	s.Subscribe(nil) // ignored
	s.Publish(Event{Kind: EventHeartbeat, TimeSec: 1})
	s.Publish(Event{Kind: EventHeartbeat, TimeSec: 2})
	if len(got) != 2 || got[1].TimeSec != 2 {
		t.Fatalf("delivered %v", got)
	}
	if s.Published() != 2 {
		t.Fatalf("published = %d", s.Published())
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

// TestStreamPanickingSubscriber checks a panicking subscriber cannot kill
// the sampling loop and that the loss is counted and later subscribers
// still receive the event.
func TestStreamPanickingSubscriber(t *testing.T) {
	var s Stream
	var after int
	s.Subscribe(func(Event) { panic("bad subscriber") })
	s.Subscribe(func(Event) { after++ })
	for i := 0; i < 3; i++ {
		s.Publish(Event{Kind: EventHeartbeat})
	}
	if after != 3 {
		t.Fatalf("subscriber after the panicking one got %d events, want 3", after)
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
	if s.Published() != 3 {
		t.Fatalf("published = %d, want 3", s.Published())
	}
}

// TestStreamConcurrent exercises concurrent Publish/Subscribe/Published
// under -race: the agent goroutine consumes the stream from outside the
// monitor loop.
func TestStreamConcurrent(t *testing.T) {
	var s Stream
	var delivered atomic.Uint64
	var wg sync.WaitGroup
	const (
		publishers = 4
		perPub     = 1000
		lateSubs   = 16
	)
	s.Subscribe(func(Event) { delivered.Add(1) })
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				s.Publish(Event{Kind: EventHeartbeat, TimeSec: float64(i)})
			}
		}()
	}
	for j := 0; j < lateSubs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Subscribe(func(Event) { delivered.Add(1) })
			_ = s.Published()
			_ = s.Dropped()
		}()
	}
	wg.Wait()
	if s.Published() != publishers*perPub {
		t.Fatalf("published = %d, want %d", s.Published(), publishers*perPub)
	}
	// The original subscriber saw everything; late subscribers saw a suffix.
	if delivered.Load() < publishers*perPub {
		t.Fatalf("delivered = %d, want >= %d", delivered.Load(), publishers*perPub)
	}
}
