// External test package: chaos imports fsio, so wiring the chaos injector
// into the filesystem can only be tested from outside the package.
package fsio_test

import (
	"testing"

	"zerosum/internal/chaos"
	"zerosum/internal/fsio"
	"zerosum/internal/sim"
)

// TestChaosFSInjector wires the chaos package's seeded injector into the
// filesystem and checks determinism: one seed, one fault schedule.
func TestChaosFSInjector(t *testing.T) {
	run := func(seed uint64) (errs uint64, delay sim.Time) {
		var now sim.Time
		fs := fsio.New(fsio.Params{BytesPerSec: 1e9}, func() sim.Time { return now })
		fs.SetInjector(chaos.FSInjector(sim.NewRNG(seed), chaos.FSProfile{
			ErrorRate: 0.3, DelayRate: 0.3, MaxExtra: sim.Millisecond,
		}))
		for i := 0; i < 200; i++ {
			fs.Write(nil, 1000)
			fs.Read(nil, 1000)
		}
		return fs.InjectedFaults()
	}
	e1, d1 := run(11)
	e2, d2 := run(11)
	if e1 != e2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%v) vs (%d,%v)", e1, d1, e2, d2)
	}
	if e1 == 0 || d1 == 0 {
		t.Fatalf("30%% rates over 400 ops injected nothing: errs=%d delay=%v", e1, d1)
	}
	e3, d3 := run(12)
	if e1 == e3 && d1 == d3 {
		t.Fatalf("different seeds produced identical schedules: errs=%d delay=%v", e1, d1)
	}
}
