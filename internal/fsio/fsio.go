// Package fsio simulates a shared (parallel) filesystem: the Darshan-shaped
// substrate behind the paper's I/O motivations — "increased or variable
// network and disk latency", "file system quotas" as an exhaustible
// resource (§2), and the /proc/<pid>/io counters ZeroSum samples. Transfers
// from all processes on all nodes serialize through an aggregate-bandwidth
// server queue, so concurrent checkpoints contend exactly like jobs sharing
// a Lustre OST.
package fsio

import (
	"fmt"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
)

// Params describes the filesystem.
type Params struct {
	// BytesPerSec is the aggregate server bandwidth.
	BytesPerSec float64
	// LatencyPerOp is the fixed per-operation cost (metadata round trip).
	LatencyPerOp sim.Time
	// QuotaBytes caps the total data written (0 = unlimited), the
	// resource-exhaustion case users want ZeroSum to help diagnose.
	QuotaBytes uint64
}

// DefaultParams returns a modest shared-filesystem profile.
func DefaultParams() Params {
	return Params{
		BytesPerSec:  5e9, // a few OSTs worth
		LatencyPerOp: 500 * sim.Microsecond,
	}
}

// ErrQuota is returned (wrapped) when a write would exceed the quota.
var ErrQuota = fmt.Errorf("fsio: filesystem quota exhausted")

// Injector lets a fault harness perturb filesystem operations: it is
// consulted once per Read/Write with the operation and size, and returns
// extra latency to add to the transfer plus an error that, when non-nil,
// fails the operation before any bandwidth or quota is consumed. A nil
// Injector injects nothing.
type Injector func(op string, bytes uint64) (extra sim.Time, err error)

// FileSystem is one shared filesystem instance.
type FileSystem struct {
	P     Params
	clock func() sim.Time

	inject Injector

	busyUntil sim.Time
	usedBytes uint64

	totalRead    uint64
	totalWritten uint64
	readOps      uint64
	writeOps     uint64

	injectedErrs  uint64
	injectedDelay sim.Time
}

// SetInjector installs (or, with nil, removes) the fault injector. Like the
// rest of the filesystem it must only be called from the single-threaded
// simulation loop.
func (f *FileSystem) SetInjector(in Injector) { f.inject = in }

// InjectedFaults reports how many operations the injector failed and the
// total extra latency it added, so a chaos run can audit exact accounting.
func (f *FileSystem) InjectedFaults() (errs uint64, delay sim.Time) {
	return f.injectedErrs, f.injectedDelay
}

// New creates a filesystem on the given clock.
func New(p Params, clock func() sim.Time) *FileSystem {
	if clock == nil {
		panic("fsio: nil clock")
	}
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = DefaultParams().BytesPerSec
	}
	return &FileSystem{P: p, clock: clock}
}

// transfer queues an operation and returns its completion time.
func (f *FileSystem) transfer(bytes uint64) sim.Time {
	now := f.clock()
	start := now
	if f.busyUntil > start {
		start = f.busyUntil
	}
	dur := f.P.LatencyPerOp + sim.Time(float64(bytes)/f.P.BytesPerSec*float64(sim.Second))
	f.busyUntil = start + dur
	return f.busyUntil
}

// Write issues a write on behalf of p. It returns the completion time; the
// calling task should sleep until then. The process's /proc/<pid>/io
// counters advance immediately (the syscall is issued now).
func (f *FileSystem) Write(p *sched.Process, bytes uint64) (sim.Time, error) {
	extra, err := f.consultInjector("write", bytes)
	if err != nil {
		return 0, err
	}
	if f.P.QuotaBytes > 0 && f.usedBytes+bytes > f.P.QuotaBytes {
		return 0, fmt.Errorf("%w: used %d + %d > %d", ErrQuota, f.usedBytes, bytes, f.P.QuotaBytes)
	}
	f.usedBytes += bytes
	f.totalWritten += bytes
	f.writeOps++
	if p != nil {
		p.AddIO(false, bytes)
	}
	return f.transferExtra(bytes, extra), nil
}

// Read issues a read on behalf of p.
func (f *FileSystem) Read(p *sched.Process, bytes uint64) (sim.Time, error) {
	extra, err := f.consultInjector("read", bytes)
	if err != nil {
		return 0, err
	}
	f.totalRead += bytes
	f.readOps++
	if p != nil {
		p.AddIO(true, bytes)
	}
	return f.transferExtra(bytes, extra), nil
}

// consultInjector runs the fault hook, recording what it injected.
func (f *FileSystem) consultInjector(op string, bytes uint64) (sim.Time, error) {
	if f.inject == nil {
		return 0, nil
	}
	extra, err := f.inject(op, bytes)
	if err != nil {
		f.injectedErrs++
		return 0, err
	}
	if extra < 0 {
		extra = 0
	}
	f.injectedDelay += extra
	return extra, nil
}

// transferExtra queues an operation whose service time is stretched by the
// injected latency; the delay occupies the server (it models a stalled OST,
// not a client-side pause), so queued operations behind it wait too.
func (f *FileSystem) transferExtra(bytes uint64, extra sim.Time) sim.Time {
	done := f.transfer(bytes)
	if extra > 0 {
		f.busyUntil = done + extra
		done = f.busyUntil
	}
	return done
}

// Remove frees quota (file deletion).
func (f *FileSystem) Remove(bytes uint64) {
	if bytes > f.usedBytes {
		f.usedBytes = 0
		return
	}
	f.usedBytes -= bytes
}

// UsedBytes reports quota consumption.
func (f *FileSystem) UsedBytes() uint64 { return f.usedBytes }

// Stats reports lifetime totals: bytes read/written and operation counts.
func (f *FileSystem) Stats() (readBytes, writtenBytes, readOps, writeOps uint64) {
	return f.totalRead, f.totalWritten, f.readOps, f.writeOps
}

// WriteAction builds the behavior fragment for one blocking write: issue
// the syscall (accounting now), then sleep until the server completes. The
// returned actions are consumed in order by a SeqBehavior or state machine.
func (f *FileSystem) WriteAction(p *sched.Process, bytes uint64, onErr func(error)) []sched.Action {
	return f.opActions(p, bytes, false, onErr)
}

// ReadAction builds the behavior fragment for one blocking read.
func (f *FileSystem) ReadAction(p *sched.Process, bytes uint64, onErr func(error)) []sched.Action {
	return f.opActions(p, bytes, true, onErr)
}

func (f *FileSystem) opActions(p *sched.Process, bytes uint64, read bool, onErr func(error)) []sched.Action {
	var wait sim.Time
	issue := sched.Call{Fn: func(now sim.Time) {
		var done sim.Time
		var err error
		if read {
			done, err = f.Read(p, bytes)
		} else {
			done, err = f.Write(p, bytes)
		}
		if err != nil {
			if onErr != nil {
				onErr(err)
				return
			}
			panic(err)
		}
		wait = done - now
	}}
	// The syscall burns a little CPU (buffer copy), then blocks until the
	// server answers; the sleep duration is bound when the Call above has
	// run.
	cpu := sched.Compute{Work: 20 * sim.Microsecond, SysFrac: 1.0}
	sleep := sched.Deferred{Fn: func() sched.Action {
		d := wait
		if d < 0 {
			d = 0
		}
		return sched.Sleep{D: d}
	}}
	return []sched.Action{issue, cpu, sleep}
}
