package fsio

import (
	"errors"
	"testing"

	"zerosum/internal/proc"
	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

func testFS(clockVal *sim.Time, p Params) *FileSystem {
	return New(p, func() sim.Time { return *clockVal })
}

func TestTransferSerializes(t *testing.T) {
	var now sim.Time
	fs := testFS(&now, Params{BytesPerSec: 1e9, LatencyPerOp: sim.Millisecond})
	// 1 GB at 1 GB/s = 1s + 1ms latency.
	d1, err := fs.Write(nil, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got := d1.Seconds(); got < 1.0 || got > 1.01 {
		t.Fatalf("first write completes at %v, want ~1.001s", got)
	}
	// Second write queues behind the first.
	d2, err := fs.Write(nil, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Seconds(); got < 2.0 || got > 2.02 {
		t.Fatalf("second write completes at %v, want ~2.002s", got)
	}
}

func TestQuotaEnforced(t *testing.T) {
	var now sim.Time
	fs := testFS(&now, Params{BytesPerSec: 1e9, QuotaBytes: 1000})
	if _, err := fs.Write(nil, 900); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(nil, 200); !errors.Is(err, ErrQuota) {
		t.Fatalf("want quota error, got %v", err)
	}
	fs.Remove(500)
	if _, err := fs.Write(nil, 200); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	if fs.UsedBytes() != 600 {
		t.Fatalf("used = %d", fs.UsedBytes())
	}
	fs.Remove(10000) // over-remove clamps
	if fs.UsedBytes() != 0 {
		t.Fatal("over-remove should clamp to 0")
	}
}

func TestReadsDoNotConsumeQuota(t *testing.T) {
	var now sim.Time
	fs := testFS(&now, Params{BytesPerSec: 1e9, QuotaBytes: 100})
	if _, err := fs.Read(nil, 1e6); err != nil {
		t.Fatal(err)
	}
	if fs.UsedBytes() != 0 {
		t.Fatal("reads should not consume quota")
	}
	r, w, ro, wo := fs.Stats()
	if r != 1e6 || w != 0 || ro != 1 || wo != 0 {
		t.Fatalf("stats = %d %d %d %d", r, w, ro, wo)
	}
}

func TestProcessCountersAdvance(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	var now sim.Time
	fs := testFS(&now, DefaultParams())
	if _, err := fs.Write(p, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read(p, 8192); err != nil {
		t.Fatal(err)
	}
	if p.IO.WriteBytes != 4096 || p.IO.ReadBytes != 8192 {
		t.Fatalf("proc io = %+v", p.IO)
	}
	if p.IO.SyscW != 1 || p.IO.SyscR != 1 {
		t.Fatalf("syscall counts = %+v", p.IO)
	}
	// The counters render through /proc/<pid>/io and parse back.
	pfs := k.ProcFS(p.PID)
	raw, err := pfs.ProcessIO(p.PID)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := proc.ParseTaskIO(raw)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != p.IO {
		t.Fatalf("round trip: %+v vs %+v", parsed, p.IO)
	}
}

func TestWriteActionBlocksTask(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	fs := New(Params{BytesPerSec: 1e9, LatencyPerOp: sim.Millisecond},
		func() sim.Time { return q.Now() })

	var acts []sched.Action
	acts = append(acts, sched.Compute{Work: 10 * sim.Millisecond})
	acts = append(acts, fs.WriteAction(p, 500e6, nil)...) // 0.5s transfer
	acts = append(acts, sched.Compute{Work: 10 * sim.Millisecond})
	task := k.NewTask(p, "writer", sched.Seq(acts...))
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	// Wall: ~10ms + 0.501s + 10ms; CPU: only ~20ms + syscall sliver.
	if got := k.Now().Seconds(); got < 0.5 || got > 0.56 {
		t.Fatalf("wall = %v, want ~0.52s", got)
	}
	if cpu := (task.UTime + task.STime).Seconds(); cpu > 0.03 {
		t.Fatalf("cpu = %v, want ~0.02s (blocked during transfer)", cpu)
	}
	if task.VCtx == 0 {
		t.Fatal("blocking I/O should register voluntary switches")
	}
	if p.IO.WriteBytes != 500e6 {
		t.Fatalf("io counters: %+v", p.IO)
	}
}

func TestWriteActionQuotaError(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	p := k.NewProcess("app", topology.NewCPUSet(0))
	fs := New(Params{BytesPerSec: 1e9, QuotaBytes: 10}, func() sim.Time { return q.Now() })
	var gotErr error
	acts := fs.WriteAction(p, 1000, func(err error) { gotErr = err })
	acts = append(acts, sched.Compute{Work: sim.Millisecond})
	k.NewTask(p, "writer", sched.Seq(acts...))
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrQuota) {
		t.Fatalf("quota error not delivered: %v", gotErr)
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock should panic")
		}
	}()
	New(DefaultParams(), nil)
}
