package fsio

import (
	"testing"

	"zerosum/internal/sim"
)

// TestInjectorFaultsOps: an injected error fails the op before any transfer
// or quota accounting; injected latency extends the completion time past the
// modeled bandwidth, and both are tallied by InjectedFaults.
func TestInjectorFaultsOps(t *testing.T) {
	var now sim.Time
	fs := testFS(&now, Params{BytesPerSec: 1e9, QuotaBytes: 1000})

	fail := true
	fs.SetInjector(func(op string, bytes uint64) (sim.Time, error) {
		if fail {
			return 0, &injectErr{op}
		}
		return sim.Second, nil
	})

	if _, err := fs.Write(nil, 100); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	if fs.UsedBytes() != 0 {
		t.Fatalf("failed write consumed quota: %d bytes", fs.UsedBytes())
	}
	if _, w, _, wo := fs.Stats(); w != 0 || wo != 0 {
		t.Fatalf("failed write counted in stats: %d bytes, %d ops", w, wo)
	}

	fail = false
	done, err := fs.Write(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 100 B at 1 GB/s is essentially instant; the injected second dominates.
	if done < sim.Second {
		t.Fatalf("injected latency not applied: done at %v", done)
	}

	errs, delay := fs.InjectedFaults()
	if errs != 1 || delay != sim.Second {
		t.Fatalf("InjectedFaults = (%d, %v), want (1, 1s)", errs, delay)
	}

	// Queued ops wait behind the injected stall, like a real hung device.
	done2, err := fs.Write(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if done2 < done {
		t.Fatalf("second op finished at %v, before the stalled first op at %v", done2, done)
	}
}

type injectErr struct{ op string }

func (e *injectErr) Error() string { return "injected " + e.op + " failure" }
