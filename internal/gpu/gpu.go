// Package gpu provides a vendor-neutral System Management Interface (SMI)
// in the style of ROCm SMI / NVIDIA NVML / Intel SysMan — the libraries
// ZeroSum queries for GPU utilization — plus a simulated accelerator device
// driven by offload traffic from the workload. The metric set matches the
// paper's Listing 2 (clocks, busy %, energy, activity counters, power,
// temperature, VRAM/GTT usage, voltage).
package gpu

import (
	"fmt"

	"zerosum/internal/sim"
)

// DeviceInfo identifies one accelerator.
type DeviceInfo struct {
	// VisibleIndex is the index the process sees (after
	// ROCR/CUDA_VISIBLE_DEVICES remapping); TrueIndex is the physical
	// device. The paper stresses that these differ (GCD 0 on Frontier is
	// "visible HIP index 0, true index 4").
	VisibleIndex int
	TrueIndex    int
	NUMAIndex    int
	Model        string
	MemBytes     uint64
	GTTBytes     uint64
}

// Metrics is one SMI sample: the Listing 2 metric set.
type Metrics struct {
	ClockGFXMHz      float64
	ClockSOCMHz      float64
	DeviceBusyPct    float64
	EnergyAvgJ       float64
	GFXActivity      float64 // accumulated activity counter
	GFXActivityPct   float64
	MemoryActivity   float64 // accumulated counter
	MemoryBusyPct    float64
	MemCtrlActivity  float64
	PowerAvgW        float64
	TemperatureC     float64
	UVDActivityPct   float64
	UsedGTTBytes     float64
	UsedVRAMBytes    float64
	UsedVisVRAMBytes float64
	VoltageMV        float64
}

// MetricNames lists the metric labels in report order (Listing 2).
var MetricNames = []string{
	"Clock Frequency, GLX (MHz)",
	"Clock Frequency, SOC (MHz)",
	"Device Busy %",
	"Energy Average (J)",
	"GFX Activity",
	"GFX Activity %",
	"Memory Activity",
	"Memory Busy %",
	"Memory Controller Activity",
	"Power Average (W)",
	"Temperature (C)",
	"UVD|VCN Activity",
	"Used GTT Bytes",
	"Used VRAM Bytes",
	"Used Visible VRAM Bytes",
	"Voltage (mV)",
}

// Values returns the metric values in MetricNames order.
func (m Metrics) Values() []float64 {
	return m.AppendValues(make([]float64, 0, len(MetricNames)))
}

// AppendValues appends the metric values in MetricNames order, letting the
// sampling loop reuse one scratch slice across ticks.
//
//zerosum:hotpath
func (m Metrics) AppendValues(dst []float64) []float64 {
	return append(dst,
		m.ClockGFXMHz, m.ClockSOCMHz, m.DeviceBusyPct, m.EnergyAvgJ,
		m.GFXActivity, m.GFXActivityPct, m.MemoryActivity, m.MemoryBusyPct,
		m.MemCtrlActivity, m.PowerAvgW, m.TemperatureC, m.UVDActivityPct,
		m.UsedGTTBytes, m.UsedVRAMBytes, m.UsedVisVRAMBytes, m.VoltageMV,
	)
}

// SMI is the management-library interface the monitor samples through.
type SMI interface {
	// DeviceCount returns how many devices this process can see.
	DeviceCount() int
	// Info describes a visible device.
	Info(i int) (DeviceInfo, error)
	// Sample reads the device's current metrics. Rate-style metrics
	// (busy %, power) cover the window since the previous Sample call.
	Sample(i int) (Metrics, error)
}

// Params shapes the simulated device's analog behaviour.
type Params struct {
	BaseClockMHz float64
	PeakClockMHz float64
	SOCClockMHz  float64
	IdlePowerW   float64
	TDPWatts     float64
	IdleTempC    float64
	HotTempC     float64
	IdleVoltMV   float64
	PeakVoltMV   float64
	// XferBytesPerSec is the host<->device link bandwidth used to turn
	// offloaded bytes into transfer time.
	XferBytesPerSec float64
	// ActivityPerBusySec converts busy time into the raw GFX activity
	// counter units the SMI exposes.
	ActivityPerBusySec float64
}

// DefaultParams returns MI250X-GCD-flavoured parameters.
func DefaultParams() Params {
	return Params{
		BaseClockMHz:       800,
		PeakClockMHz:       1700,
		SOCClockMHz:        1090,
		IdlePowerW:         90,
		TDPWatts:           280,
		IdleTempC:          35,
		HotTempC:           65,
		IdleVoltMV:         806,
		PeakVoltMV:         906,
		XferBytesPerSec:    36e9, // PCIe4 x16 / Infinity Fabric class
		ActivityPerBusySec: 180000,
	}
}

// Device is one simulated accelerator. Offload submissions serialize on the
// device queue; busy time integrates between samples. All methods take the
// current simulated time from the clock function so the device can be
// shared by the workload (submitting) and the monitor (sampling).
type Device struct {
	Info DeviceInfo
	P    Params

	clock func() sim.Time
	rng   *sim.RNG

	busyUntil   sim.Time
	lastAccrue  sim.Time
	accruedBusy sim.Time

	usedVRAM    uint64
	usedGTT     uint64
	gfxActivity float64
	memActivity float64

	kernelsLaunched uint64
	bytesMoved      uint64
}

// NewDevice creates a simulated device.
func NewDevice(info DeviceInfo, p Params, clock func() sim.Time, rng *sim.RNG) *Device {
	if clock == nil {
		panic("gpu: nil clock")
	}
	return &Device{Info: info, P: p, clock: clock, rng: rng}
}

// accrue integrates busy time up to now.
func (d *Device) accrue(now sim.Time) {
	if now <= d.lastAccrue {
		return
	}
	busyEnd := d.busyUntil
	if busyEnd > now {
		busyEnd = now
	}
	if busyEnd > d.lastAccrue {
		delta := busyEnd - d.lastAccrue
		d.accruedBusy += delta
		d.gfxActivity += d.P.ActivityPerBusySec * delta.Seconds()
	}
	d.lastAccrue = now
}

// Submit enqueues an offloaded kernel of the given device-time cost plus a
// host<->device transfer of the given size. It returns the completion time;
// the caller (workload) typically blocks until then. Kernels serialize in
// submission order, like a single HIP stream.
func (d *Device) Submit(work sim.Time, xferBytes uint64) sim.Time {
	now := d.clock()
	d.accrue(now)
	xfer := sim.Time(0)
	if xferBytes > 0 && d.P.XferBytesPerSec > 0 {
		xfer = sim.Time(float64(xferBytes) / d.P.XferBytesPerSec * float64(sim.Second))
		d.memActivity += float64(xferBytes) / (1 << 20) // counter in MB moved
		d.bytesMoved += xferBytes
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + work + xfer
	d.kernelsLaunched++
	return d.busyUntil
}

// AllocVRAM reserves device memory, failing when the device is full
// (surfacing the resource-exhaustion case the paper's contention report is
// designed to catch).
func (d *Device) AllocVRAM(bytes uint64) error {
	if d.usedVRAM+bytes > d.Info.MemBytes {
		return fmt.Errorf("gpu: device %d out of memory: used %d + %d > %d",
			d.Info.VisibleIndex, d.usedVRAM, bytes, d.Info.MemBytes)
	}
	d.usedVRAM += bytes
	return nil
}

// FreeVRAM releases device memory.
func (d *Device) FreeVRAM(bytes uint64) {
	if bytes > d.usedVRAM {
		d.usedVRAM = 0
		return
	}
	d.usedVRAM -= bytes
}

// SetGTT sets the host-visible aperture usage.
func (d *Device) SetGTT(bytes uint64) { d.usedGTT = bytes }

// UsedVRAM returns current device-memory usage.
func (d *Device) UsedVRAM() uint64 { return d.usedVRAM }

// KernelsLaunched returns the number of Submit calls.
func (d *Device) KernelsLaunched() uint64 { return d.kernelsLaunched }

// BusyFraction reports the busy fraction over [since, now].
func (d *Device) BusyFraction(since sim.Time) float64 {
	now := d.clock()
	d.accrue(now)
	window := now - since
	if window <= 0 {
		return 0
	}
	// accruedBusy is total since creation; caller tracks the previous
	// total. This helper exists for tests; SMI sampling uses snapshots.
	return float64(d.accruedBusy) / float64(window)
}

// snapshot is per-device sampling state held by the SimSMI.
type snapshot struct {
	at   sim.Time
	busy sim.Time
}

// SimSMI exposes a set of simulated devices through the SMI interface,
// optionally restricted to a visibility list (the per-process
// ROCR_VISIBLE_DEVICES view Slurm's --gpu-bind creates).
type SimSMI struct {
	devices []*Device
	prev    []snapshot
	rng     *sim.RNG
}

// NewSimSMI wraps devices in an SMI. The order of the slice defines the
// visible indexes 0..n-1.
func NewSimSMI(devices []*Device, rng *sim.RNG) *SimSMI {
	return &SimSMI{devices: devices, prev: make([]snapshot, len(devices)), rng: rng}
}

// DeviceCount implements SMI.
func (s *SimSMI) DeviceCount() int { return len(s.devices) }

// Device returns the underlying simulated device (for workloads).
func (s *SimSMI) Device(i int) *Device { return s.devices[i] }

// Info implements SMI.
func (s *SimSMI) Info(i int) (DeviceInfo, error) {
	if i < 0 || i >= len(s.devices) {
		return DeviceInfo{}, fmt.Errorf("gpu: no device %d", i)
	}
	return s.devices[i].Info, nil
}

// Sample implements SMI.
func (s *SimSMI) Sample(i int) (Metrics, error) {
	if i < 0 || i >= len(s.devices) {
		return Metrics{}, fmt.Errorf("gpu: no device %d", i)
	}
	d := s.devices[i]
	now := d.clock()
	d.accrue(now)
	prev := s.prev[i]
	window := now - prev.at
	busyFrac := 0.0
	if window > 0 {
		busyFrac = float64(d.accruedBusy-prev.busy) / float64(window)
		if busyFrac > 1 {
			busyFrac = 1
		}
	}
	s.prev[i] = snapshot{at: now, busy: d.accruedBusy}

	p := d.P
	noise := func(scale float64) float64 {
		if s.rng == nil {
			return 0
		}
		return (s.rng.Float64() - 0.5) * scale
	}
	clock := p.BaseClockMHz
	if busyFrac > 0 {
		// Clocks race to near-peak under even moderate activity, as the
		// paper's listing shows (avg GFX clock 1614 MHz at 14.6% busy).
		ramp := busyFrac * 6
		if ramp > 1 {
			ramp = 1
		}
		clock = p.BaseClockMHz + (p.PeakClockMHz-p.BaseClockMHz)*ramp
	}
	power := p.IdlePowerW + (p.TDPWatts-p.IdlePowerW)*busyFrac + noise(4)
	if power < p.IdlePowerW {
		power = p.IdlePowerW
	}
	temp := p.IdleTempC + (p.HotTempC-p.IdleTempC)*busyFrac + noise(1)
	volt := p.IdleVoltMV + (p.PeakVoltMV-p.IdleVoltMV)*minf(busyFrac*3, 1)
	m := Metrics{
		ClockGFXMHz:      clock,
		ClockSOCMHz:      p.SOCClockMHz,
		DeviceBusyPct:    busyFrac * 100,
		EnergyAvgJ:       power * window.Seconds() / 15, // SMI's 64ms energy accumulator window scaling
		GFXActivity:      d.gfxActivity,
		GFXActivityPct:   busyFrac * 100 * 0.94, // shader partition of busy time
		MemoryActivity:   d.memActivity,
		MemoryBusyPct:    minf(busyFrac*100*0.05+float64(d.usedGTT>>30)*0.01, 100),
		MemCtrlActivity:  minf(busyFrac*2, 100),
		PowerAvgW:        power,
		TemperatureC:     temp,
		UVDActivityPct:   0, // no video decode in HPC workloads
		UsedGTTBytes:     float64(d.usedGTT),
		UsedVRAMBytes:    float64(d.usedVRAM),
		UsedVisVRAMBytes: float64(d.usedVRAM),
		VoltageMV:        volt,
	}
	return m, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

var _ SMI = (*SimSMI)(nil)
