package gpu

import (
	"testing"

	"zerosum/internal/sim"
)

func testDevice(clockVal *sim.Time) *Device {
	info := DeviceInfo{VisibleIndex: 0, TrueIndex: 4, NUMAIndex: 3,
		Model: "AMD MI250X GCD", MemBytes: 64 << 30, GTTBytes: 256 << 30}
	return NewDevice(info, DefaultParams(), func() sim.Time { return *clockVal }, sim.NewRNG(1))
}

func TestSubmitSerializesKernels(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	c1 := d.Submit(100*sim.Millisecond, 0)
	c2 := d.Submit(50*sim.Millisecond, 0)
	if c1 != 100*sim.Millisecond {
		t.Fatalf("c1 = %v, want 100ms", c1)
	}
	if c2 != 150*sim.Millisecond {
		t.Fatalf("c2 = %v, want 150ms (serialized)", c2)
	}
	if d.KernelsLaunched() != 2 {
		t.Fatalf("kernels = %d", d.KernelsLaunched())
	}
}

func TestSubmitTransferTime(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	p := DefaultParams()
	// 36e9 bytes at 36 GB/s = 1 second of transfer.
	done := d.Submit(0, uint64(p.XferBytesPerSec))
	if got := done.Seconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("transfer completion = %vs, want ~1s", got)
	}
}

func TestVRAMAllocation(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	if err := d.AllocVRAM(60 << 30); err != nil {
		t.Fatal(err)
	}
	if err := d.AllocVRAM(8 << 30); err == nil {
		t.Fatal("allocation beyond capacity should fail (OOM)")
	}
	if d.UsedVRAM() != 60<<30 {
		t.Fatalf("used = %d", d.UsedVRAM())
	}
	d.FreeVRAM(30 << 30)
	if d.UsedVRAM() != 30<<30 {
		t.Fatalf("used after free = %d", d.UsedVRAM())
	}
	d.FreeVRAM(1 << 40) // over-free clamps to zero
	if d.UsedVRAM() != 0 {
		t.Fatalf("over-free should clamp, used = %d", d.UsedVRAM())
	}
}

func TestSMISampleBusyWindow(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	smi := NewSimSMI([]*Device{d}, sim.NewRNG(2))
	// First sample at t=0: no window yet.
	if _, err := smi.Sample(0); err != nil {
		t.Fatal(err)
	}
	// Busy 300ms out of the next second.
	d.Submit(300*sim.Millisecond, 0)
	now = 1 * sim.Second
	m, err := smi.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeviceBusyPct < 28 || m.DeviceBusyPct > 32 {
		t.Fatalf("busy = %v%%, want ~30%%", m.DeviceBusyPct)
	}
	if m.ClockGFXMHz <= DefaultParams().BaseClockMHz {
		t.Fatalf("clock should ramp when busy, got %v", m.ClockGFXMHz)
	}
	if m.PowerAvgW <= DefaultParams().IdlePowerW {
		t.Fatalf("power should rise when busy, got %v", m.PowerAvgW)
	}
	// Idle window: busy back to ~0.
	now = 2 * sim.Second
	m2, err := smi.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.DeviceBusyPct != 0 {
		t.Fatalf("idle busy = %v%%, want 0", m2.DeviceBusyPct)
	}
	if m2.ClockGFXMHz != DefaultParams().BaseClockMHz {
		t.Fatalf("idle clock = %v, want base", m2.ClockGFXMHz)
	}
}

func TestSMIActivityCountersMonotonic(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	smi := NewSimSMI([]*Device{d}, nil)
	prev := 0.0
	for i := 1; i <= 5; i++ {
		d.Submit(100*sim.Millisecond, 10<<20)
		now = sim.Time(i) * sim.Second
		m, err := smi.Sample(0)
		if err != nil {
			t.Fatal(err)
		}
		if m.GFXActivity < prev {
			t.Fatalf("GFX activity decreased: %v -> %v", prev, m.GFXActivity)
		}
		prev = m.GFXActivity
	}
	if prev == 0 {
		t.Fatal("activity counter never advanced")
	}
}

func TestSMIInfoAndErrors(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	smi := NewSimSMI([]*Device{d}, nil)
	if smi.DeviceCount() != 1 {
		t.Fatal("count")
	}
	info, err := smi.Info(0)
	if err != nil || info.TrueIndex != 4 || info.NUMAIndex != 3 {
		t.Fatalf("info = %+v, err %v", info, err)
	}
	if _, err := smi.Info(1); err == nil {
		t.Fatal("missing device should error")
	}
	if _, err := smi.Sample(-1); err == nil {
		t.Fatal("negative index should error")
	}
	if smi.Device(0) != d {
		t.Fatal("Device accessor")
	}
}

func TestMetricsValuesMatchNames(t *testing.T) {
	var m Metrics
	if len(m.Values()) != len(MetricNames) {
		t.Fatalf("Values len %d != MetricNames len %d", len(m.Values()), len(MetricNames))
	}
}

func TestBusySaturatesAt100(t *testing.T) {
	var now sim.Time
	d := testDevice(&now)
	smi := NewSimSMI([]*Device{d}, nil)
	smi.Sample(0)
	d.Submit(10*sim.Second, 0)
	now = 1 * sim.Second
	m, _ := smi.Sample(0)
	if m.DeviceBusyPct != 100 {
		t.Fatalf("busy = %v, want 100", m.DeviceBusyPct)
	}
}

func TestNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clock should panic")
		}
	}()
	NewDevice(DeviceInfo{}, DefaultParams(), nil, nil)
}
