package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// atomicCheck enforces atomic-consistency: a struct field accessed through
// sync/atomic anywhere in the module must be accessed through sync/atomic
// everywhere. A field updated with atomic.AddUint64 in one place and read
// with a plain load in another is a data race the race detector only
// catches if the schedule cooperates; this check catches it statically.
//
// Fields whose declared type already comes from sync/atomic (atomic.Uint64
// and friends) are safe by construction and skipped — the method set is the
// only access path. //zerosum:nolock <why> on the plain access's line
// suppresses (e.g. a read inside a section where the writer is quiesced).
type atomicCheck struct{}

func (atomicCheck) Name() string { return "atomic" }

// fieldUse is one access to a field, classified atomic or plain.
type fieldUse struct {
	pos    token.Pos
	atomic bool
	expr   string // rendered access, for the message
}

func (c atomicCheck) Run(p *Program) []Diagnostic {
	w := p.lockworld()
	uses := map[*types.Var][]fieldUse{}

	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if f := fieldOf(pkg.Info, sel); f != nil && !isAtomicTyped(f) {
						uses[f] = append(uses[f], fieldUse{pos: sel.Pos(), atomic: true, expr: types.ExprString(sel)})
					}
				}
				return true
			})
		}
	}
	if len(uses) == 0 {
		return nil
	}

	// Second pass: every other selector touching one of those fields is a
	// plain access — unless it sits inside an atomic call's &arg (already
	// recorded) or is suppressed.
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			covered := w.fileDirectives(file)
			atomicArgs := map[*ast.SelectorExpr]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					if un, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && un.Op == token.AND {
						if sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr); ok {
							atomicArgs[sel] = true
						}
					}
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicArgs[sel] {
					return true
				}
				f := fieldOf(pkg.Info, sel)
				if f == nil {
					return true
				}
				if _, tracked := uses[f]; !tracked {
					return true
				}
				line := p.Fset.Position(sel.Pos()).Line
				if _, ok := covered[line]["nolock"]; ok {
					return true
				}
				uses[f] = append(uses[f], fieldUse{pos: sel.Pos(), atomic: false, expr: types.ExprString(sel)})
				return true
			})
		}
	}

	var fields []*types.Var
	for f := range uses {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	var diags []Diagnostic
	for _, f := range fields {
		var atomicN, plainN int
		var firstAtomic token.Pos
		for _, u := range uses[f] {
			if u.atomic {
				atomicN++
				if firstAtomic == token.NoPos || u.pos < firstAtomic {
					firstAtomic = u.pos
				}
			} else {
				plainN++
			}
		}
		if atomicN == 0 || plainN == 0 {
			continue
		}
		afile, aline, _ := p.Position(firstAtomic)
		for _, u := range uses[f] {
			if u.atomic {
				continue
			}
			diags = append(diags, p.Diag("atomic", u.pos,
				"field %s accessed plainly here but atomically at %s:%d (%d atomic vs %d plain use(s)); use sync/atomic everywhere or annotate //zerosum:nolock <why>",
				fieldDisplay(f), afile, aline, atomicN, plainN))
		}
	}
	return diags
}

// isAtomicCall reports whether a call resolves into package sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicTyped reports whether the field's declared type is one of the
// sync/atomic wrapper types (safe by construction).
func isAtomicTyped(f *types.Var) bool {
	t := f.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

func fieldDisplay(f *types.Var) string {
	name := f.Name()
	if f.Pkg() != nil {
		// Walk up to find the owning struct name via the package scope.
		for _, tn := range scopeTypeNames(f.Pkg()) {
			if st, ok := tn.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i) == f {
						return tn.Obj().Name() + "." + name
					}
				}
			}
		}
	}
	return name
}

func scopeTypeNames(pkg *types.Package) []*types.Named {
	var out []*types.Named
	scope := pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, n := range names {
		if tn, ok := scope.Lookup(n).(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				out = append(out, named)
			}
		}
	}
	return out
}
