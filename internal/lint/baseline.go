package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a recorded set of accepted findings — the ratchet. Entries
// are keyed by (check, file, message) with a count, deliberately NOT by
// line: unrelated edits move code, and a baseline that churns on every
// reflow trains people to regenerate it blindly, which defeats the ratchet.
// A new finding is one whose key is absent, or whose count exceeded the
// recorded count (the same latent issue copy-pasted once more is new).
type Baseline struct {
	// Version guards the file format; bump on incompatible change.
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
	Count   int    `json:"count"`
}

const baselineVersion = 1

type baselineKey struct {
	check, file, message string
}

// NewBaseline records the current findings as the accepted set.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	for _, d := range diags {
		counts[baselineKey{d.Check, d.File, d.Message}]++
	}
	b := &Baseline{Version: baselineVersion, Entries: []BaselineEntry{}}
	for k, n := range counts {
		b.Entries = append(b.Entries, BaselineEntry{Check: k.check, File: k.file, Message: k.message, Count: n})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Check != c.Check {
			return a.Check < c.Check
		}
		return a.Message < c.Message
	})
	return b
}

// Diff returns the findings not covered by the baseline, in canonical
// order. When count exceeds the accepted count, the surplus findings (in
// canonical order, the later ones) are returned.
func (b *Baseline) Diff(diags []Diagnostic) []Diagnostic {
	budget := map[baselineKey]int{}
	for _, e := range b.Entries {
		budget[baselineKey{e.Check, e.File, e.Message}] += e.Count
	}
	sorted := append([]Diagnostic(nil), diags...)
	sortDiagnostics(sorted)
	var out []Diagnostic
	for _, d := range sorted {
		k := baselineKey{d.Check, d.File, d.Message}
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaselineFile saves a baseline as stable, diff-reviewable JSON.
func WriteBaselineFile(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaselineFile reads a baseline written by WriteBaselineFile.
func LoadBaselineFile(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("lint: baseline %s: version %d, want %d (regenerate with -baseline)", path, b.Version, baselineVersion)
	}
	return &b, nil
}
