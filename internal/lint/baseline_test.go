package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func diag(check, file string, line int, msg string) Diagnostic {
	return Diagnostic{Check: check, File: file, Line: line, Message: msg}
}

func TestBaselineCoversRecordedFindings(t *testing.T) {
	diags := []Diagnostic{
		diag("guardedby", "a/a.go", 10, "field S.x read without mu"),
		diag("guardedby", "a/a.go", 20, "field S.x read without mu"),
		diag("atomic", "b/b.go", 5, "mixed atomic and plain"),
	}
	b := NewBaseline(diags)
	if got := b.Diff(diags); len(got) != 0 {
		t.Fatalf("self-diff must be empty, got %v", got)
	}
}

func TestBaselineLineInsensitive(t *testing.T) {
	b := NewBaseline([]Diagnostic{diag("clock", "x/x.go", 10, "raw time.Now")})
	// Same (check, file, message) at a different line is still covered —
	// unrelated edits move code.
	moved := []Diagnostic{diag("clock", "x/x.go", 99, "raw time.Now")}
	if got := b.Diff(moved); len(got) != 0 {
		t.Fatalf("line move must stay covered, got %v", got)
	}
}

func TestBaselineDiffNewFinding(t *testing.T) {
	b := NewBaseline([]Diagnostic{diag("clock", "x/x.go", 10, "raw time.Now")})
	novel := diag("goleak", "y/y.go", 3, "goroutine leak")
	got := b.Diff([]Diagnostic{diag("clock", "x/x.go", 10, "raw time.Now"), novel})
	if len(got) != 1 || got[0] != novel {
		t.Fatalf("want only the novel finding, got %v", got)
	}
}

func TestBaselineDiffSurplusCount(t *testing.T) {
	// Baseline accepts the finding once; a second identical instance is new.
	b := NewBaseline([]Diagnostic{diag("guardedby", "a/a.go", 10, "field S.x read without mu")})
	dup := []Diagnostic{
		diag("guardedby", "a/a.go", 10, "field S.x read without mu"),
		diag("guardedby", "a/a.go", 40, "field S.x read without mu"),
	}
	got := b.Diff(dup)
	if len(got) != 1 {
		t.Fatalf("want 1 surplus finding, got %v", got)
	}
	// Canonical order charges the budget to the earliest instance, so the
	// later one is the surplus.
	if got[0].Line != 40 {
		t.Fatalf("surplus should be the later instance, got line %d", got[0].Line)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	b := NewBaseline([]Diagnostic{
		diag("atomic", "b/b.go", 5, "mixed atomic and plain"),
		diag("guardedby", "a/a.go", 10, "field S.x read without mu"),
		diag("guardedby", "a/a.go", 20, "field S.x read without mu"),
	})
	if err := WriteBaselineFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaselineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	// Entries must be sorted by (file, check, message) for diff-reviewable
	// output.
	for i := 1; i < len(b.Entries); i++ {
		a, c := b.Entries[i-1], b.Entries[i]
		if a.File > c.File || (a.File == c.File && a.Check > c.Check) {
			t.Fatalf("entries not in canonical order: %+v before %+v", a, c)
		}
	}
}

func TestBaselineVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "entries": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineFile(path); err == nil {
		t.Fatal("version mismatch must fail the load")
	}
}

// TestDiagnosticOrdering pins THE canonical ordering: (file, line, check,
// col, message). Run, the baseline diff, and the CLI all rely on it.
func TestDiagnosticOrdering(t *testing.T) {
	in := []Diagnostic{
		{Check: "clock", File: "b.go", Line: 1, Col: 1, Message: "m"},
		{Check: "hotpath", File: "a.go", Line: 9, Col: 1, Message: "m"},
		{Check: "atomic", File: "a.go", Line: 2, Col: 5, Message: "m"},
		{Check: "guardedby", File: "a.go", Line: 2, Col: 1, Message: "m"},
		{Check: "atomic", File: "a.go", Line: 2, Col: 1, Message: "z"},
		{Check: "atomic", File: "a.go", Line: 2, Col: 1, Message: "a"},
	}
	sortDiagnostics(in)
	want := []Diagnostic{
		{Check: "atomic", File: "a.go", Line: 2, Col: 1, Message: "a"},
		{Check: "atomic", File: "a.go", Line: 2, Col: 1, Message: "z"},
		{Check: "atomic", File: "a.go", Line: 2, Col: 5, Message: "m"},
		{Check: "guardedby", File: "a.go", Line: 2, Col: 1, Message: "m"},
		{Check: "hotpath", File: "a.go", Line: 9, Col: 1, Message: "m"},
		{Check: "clock", File: "b.go", Line: 1, Col: 1, Message: "m"},
	}
	if !reflect.DeepEqual(in, want) {
		t.Fatalf("ordering drifted:\n got %v\nwant %v", in, want)
	}
}
