package lint

import (
	"go/ast"
	"go/types"
)

// clockCheck bans raw wall-clock reads in the packages that take an
// injected clock (core.Config.Clock, sim's virtual time, aggd's cfg.Now):
// a stray time.Now in those tiers splits behaviour between the simulator
// and the live host and breaks deterministic replay. Referencing time.Now
// as a value (wiring it in as the default clock) is fine — only calls are
// findings. time.NewTicker is allowed: tickers are handed to the runner as
// an injectable interval source. A function that legitimately needs the
// wall clock (e.g. a retry backoff against real external latency) opts
// out with //zerosum:wallclock <why>.
type clockCheck struct {
	scope []string
}

func (clockCheck) Name() string { return "clock" }

func (c clockCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		if !inScope(pkg.Rel, c.scope) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, ok := directives(fd.Doc)["wallclock"]; ok {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if bad := wallClockCall(calleeFunc(pkg.Info, call)); bad != "" {
						diags = append(diags, p.Diag("clock", call.Pos(),
							"call to %s in a clock-injected package; use the injected clock, or annotate the function //zerosum:wallclock <why>", bad))
					}
					return true
				})
			}
		}
	}
	return diags
}

// wallClockCall names the violation when f reads or waits on the wall clock.
func wallClockCall(f *types.Func) string {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" {
		return ""
	}
	switch f.Name() {
	case "Now", "Sleep", "Tick", "After", "AfterFunc":
		return "time." + f.Name()
	}
	return ""
}
