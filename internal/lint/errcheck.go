package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// errcheckCheck flags silently discarded error results in the scoped
// packages — the sampling, wire, and export tiers, where a dropped error
// means silently missing samples or corrupt batches. A bare call statement
// (or go statement) whose callee returns an error is a finding; assigning
// the error to _ is the explicit, greppable acknowledgment and is allowed,
// as are deferred calls (close-on-error-path convention) and writes into
// strings.Builder / bytes.Buffer, which are documented not to fail.
type errcheckCheck struct {
	scope []string
}

func (errcheckCheck) Name() string { return "errcheck" }

func (c errcheckCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		if !inScope(pkg.Rel, c.scope) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = n.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = n.Call
				}
				if call == nil || !discardsError(pkg.Info, call) {
					return true
				}
				name := "call"
				if f := calleeFunc(pkg.Info, call); f != nil {
					name = shortName(f)
				}
				diags = append(diags, p.Diag("errcheck", call.Pos(),
					"error result of %s is silently discarded; handle it, count it, or assign it to _ explicitly", name))
				return true
			})
		}
	}
	return diags
}

// discardsError reports whether the statement-position call returns an
// error that the statement drops, modulo the documented exemptions.
func discardsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || !returnsError(tv.Type) {
		return false
	}
	f := calleeFunc(info, call)
	if f == nil {
		return true // function values still drop the error
	}
	full := f.FullName()
	if strings.HasPrefix(full, "(*strings.Builder).") || strings.HasPrefix(full, "(*bytes.Buffer).") {
		return false
	}
	// fmt.Fprint* into an in-memory buffer cannot fail.
	if f.Pkg() != nil && f.Pkg().Path() == "fmt" && strings.HasPrefix(f.Name(), "Fprint") && len(call.Args) > 0 {
		if argTV, ok := info.Types[call.Args[0]]; ok && isMemWriter(argTV.Type) {
			return false
		}
	}
	return true
}

var errorType = types.Universe.Lookup("error").Type()

func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

func isMemWriter(t types.Type) bool {
	s := t.String()
	return s == "*strings.Builder" || s == "*bytes.Buffer"
}
