// Package flow is zslint's intraprocedural control-flow and dataflow
// engine. It builds a control-flow graph over one function body's go/ast
// (handling if/for/range/switch/type-switch/select/defer/goto and labeled
// break/continue) and runs a generic forward dataflow solver over it
// (solve.go). The concurrency checks — guardedby, lockorder, atomic,
// goroutinestop — sit on top in internal/lint; this package knows nothing
// about locks or types, only about statement ordering.
//
// The graph is deliberately simple: a Block is a straight-line sequence of
// leaf nodes (statements and the control expressions of the statements that
// branch), and edges are the possible successors. Compound statements never
// appear as block nodes — their pieces are distributed so a walker that
// visits Block.Nodes in order sees each executable expression exactly once,
// in evaluation order.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of nodes. Nodes holds leaf statements and
// branch-head expressions (an if condition, a switch tag, a range operand)
// in evaluation order; compound statements are decomposed into blocks, so
// walking Nodes never revisits a nested body.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // every return, panic and fall-off-the-end edges here
	Blocks []*Block

	// Defers lists every defer's call expression in source order. The
	// builder is path-insensitive about which defers actually ran; callers
	// that model function exit (lock summaries) apply all of them, which
	// under-approximates held locks — the safe direction for a must
	// analysis.
	Defers []*ast.CallExpr
}

// New builds the CFG of a function body. A nil body yields a graph whose
// entry falls straight through to the exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.Exit)
	for _, pg := range b.gotos {
		if target := b.labels[pg.label]; target != nil {
			b.edge(pg.from, target)
		}
	}
	return b.g
}

// ExitReachable reports whether some path from the entry reaches the exit —
// i.e. whether the function can terminate. A goroutine body whose exit is
// unreachable (for {} with no break, a receive loop with no ok-check) can
// never be stopped.
func (g *Graph) ExitReachable() bool {
	seen := make(map[*Block]bool)
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if visit(s) {
				return true
			}
		}
		return false
	}
	return visit(g.Entry)
}

type pendingGoto struct {
	from  *Block
	label string
}

// breakTarget is one enclosing breakable/continuable construct.
type breakTarget struct {
	label string
	block *Block
}

type builder struct {
	g         *Graph
	cur       *Block
	breaks    []breakTarget
	continues []breakTarget
	labels    map[string]*Block
	gotos     []pendingGoto
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// dead starts a fresh block with no predecessors, for code after a
// return/branch; it stays unreachable unless a label lands on it.
func (b *builder) dead() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) findBreak(label string) *Block {
	for i := len(b.breaks) - 1; i >= 0; i-- {
		if label == "" || b.breaks[i].label == label {
			return b.breaks[i].block
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.continues) - 1; i >= 0; i-- {
		if label == "" || b.continues[i].label == label {
			return b.continues[i].block
		}
	}
	return nil
}

// stmt lowers one statement. label is the name of the LabeledStmt directly
// wrapping it ("" otherwise): a labeled loop registers its break/continue
// targets under that name.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.edge(b.cur, lb)
		b.cur = lb
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.dead()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			name := ""
			if s.Label != nil {
				name = s.Label.Name
			}
			if t := b.findBreak(name); t != nil {
				b.edge(b.cur, t)
			}
			b.dead()
		case token.CONTINUE:
			name := ""
			if s.Label != nil {
				name = s.Label.Name
			}
			if t := b.findContinue(name); t != nil {
				b.edge(b.cur, t)
			}
			b.dead()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.dead()
		case token.FALLTHROUGH:
			// The switch lowering adds the edge to the next clause.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		condEnd := b.cur
		thenBlk := b.newBlock()
		b.edge(condEnd, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condEnd, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(condEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		b.edge(head, body)
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after) // condition may be false on first test
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		b.breaks = append(b.breaks, breakTarget{label, after})
		b.continues = append(b.continues, breakTarget{label, contTarget})
		b.cur = body
		b.stmtList(s.Body.List)
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post, "")
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		// The iteration variables are (re)assigned at the loop head; a
		// synthesized assignment keeps write/read classification honest for
		// walkers without embedding the whole RangeStmt (whose Body would
		// then be visited twice).
		if s.Key != nil {
			lhs := []ast.Expr{s.Key}
			if s.Value != nil {
				lhs = append(lhs, s.Value)
			}
			b.add(&ast.AssignStmt{Lhs: lhs, TokPos: s.TokPos, Tok: token.ASSIGN, Rhs: []ast.Expr{s.X}})
		} else {
			b.add(s.X)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after) // zero iterations
		b.breaks = append(b.breaks, breakTarget{label, after})
		b.continues = append(b.continues, breakTarget{label, head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, breakTarget{label, after})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select blocks until a case is ready; with no cases it blocks
		// forever, so `after` keeps no edge from the head either way.
		b.cur = after

	case *ast.DeferStmt:
		// Arguments are evaluated here; the call itself runs at exit.
		b.add(s)
		b.g.Defers = append(b.g.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && id.Obj == nil {
				b.edge(b.cur, b.g.Exit)
				b.dead()
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, IncDec, Send, Go, Decl, ...: straight-line leaves.
		b.add(s)
	}
}

// switchClauses lowers expression- and type-switch clause lists. Each clause
// is entered from the switch head; fallthrough (expression switches only)
// chains one clause body into the next.
func (b *builder) switchClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, breakTarget{label, after})
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after) // no case matched
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		if allowFallthrough && len(cc.Body) > 0 {
			if br, ok := cc.Body[len(cc.Body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(cc.Body)
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}
