package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestExitReachable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"empty body", ``, true},
		{"plain statements", `x := 1; _ = x`, true},
		{"infinite for", `for { }`, false},
		{"infinite for with work", `for { println(1) }`, false},
		{"for with break", `for { break }`, true},
		{"bounded for", `for i := 0; i < 3; i++ { println(i) }`, true},
		{"infinite receive loop", `ch := make(chan int); for { <-ch }`, false},
		{"range over channel", `ch := make(chan int); for v := range ch { _ = v }`, true},
		{"select with return case", `
			ch := make(chan int)
			done := make(chan struct{})
			for {
				select {
				case <-ch:
				case <-done:
					return
				}
			}`, true},
		{"select no escape", `
			ch := make(chan int)
			for {
				select {
				case <-ch:
				}
			}`, false},
		{"empty select", `select {}`, false},
		{"select with default", `
			ch := make(chan int)
			select {
			case <-ch:
			default:
			}`, true},
		{"labeled break from nested loop", `
		outer:
			for {
				for {
					break outer
				}
			}`, true},
		{"unlabeled break only exits inner", `
			for {
				for {
					break
				}
			}`, false},
		{"labeled continue never exits", `
		outer:
			for {
				for {
					continue outer
				}
			}`, false},
		{"goto past loop", `
			goto done
			for {
			}
		done:
			println(1)`, true},
		{"goto backward loop", `
		again:
			println(1)
			goto again`, false},
		{"goto backward with conditional exit", `
			i := 0
		again:
			i++
			if i > 3 {
				return
			}
			goto again`, true},
		{"switch all terminate except default", `
			x := 1
			switch x {
			case 1:
				return
			default:
				return
			}`, true},
		{"type switch", `
			var v interface{} = 1
			switch v.(type) {
			case int:
			case string:
				return
			}`, true},
		{"fallthrough", `
			switch 1 {
			case 1:
				fallthrough
			case 2:
				println(2)
			}`, true},
		{"panic only", `panic("x")`, true}, // panic edges to exit: the goroutine terminates
		{"if both branches loop", `
			x := 1
			if x > 0 {
				for {
				}
			} else {
				for {
				}
			}`, false},
		{"if one branch escapes", `
			x := 1
			if x > 0 {
				for {
				}
			}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(parseBody(t, tc.src))
			if got := g.ExitReachable(); got != tc.want {
				t.Errorf("ExitReachable() = %v, want %v\nsrc:\n%s", got, tc.want, tc.src)
			}
		})
	}
}

func TestNewNilBody(t *testing.T) {
	g := New(nil)
	if !g.ExitReachable() {
		t.Fatal("nil body must fall through to exit")
	}
}

// TestNodesEvaluationOrder checks that decomposing compound statements
// distributes every executable leaf exactly once across the blocks.
func TestNodesEvaluationOrder(t *testing.T) {
	body := parseBody(t, `
		a := 1
		if a > 0 {
			b := 2
			_ = b
		} else {
			c := 3
			_ = c
		}
		d := 4
		_ = d`)
	g := New(body)

	seen := make(map[ast.Node]int)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			seen[n]++
		}
	}
	for n, count := range seen {
		if count != 1 {
			t.Errorf("node %T appears in %d blocks, want 1", n, count)
		}
	}
	// The if condition must appear as a block node so dataflow sees it.
	var condSeen bool
	cond := body.List[1].(*ast.IfStmt).Cond
	if _, ok := seen[cond]; ok {
		condSeen = true
	}
	if !condSeen {
		t.Error("if condition missing from block nodes")
	}
}

// TestDefersRecorded checks defers are collected in source order and not
// placed inline in the block node stream.
func TestDefersRecorded(t *testing.T) {
	body := parseBody(t, `
		defer println(1)
		if true {
			defer println(2)
		}
		defer println(3)`)
	g := New(body)
	if len(g.Defers) != 3 {
		t.Fatalf("got %d defers, want 3", len(g.Defers))
	}
	for i := 1; i < len(g.Defers); i++ {
		if g.Defers[i].Pos() < g.Defers[i-1].Pos() {
			t.Errorf("defers out of source order at %d", i)
		}
	}
}

// TestGotoUndefinedLabel must not panic or create an edge.
func TestGotoEdgeCases(t *testing.T) {
	// goto jumping into a dead region after return
	g := New(parseBody(t, `
		goto skip
		return
	skip:
		println(1)`))
	if !g.ExitReachable() {
		t.Error("goto over return should reach exit")
	}
}
