package flow

import "go/ast"

// Lattice defines a forward dataflow problem over a Graph. F is the fact
// type (e.g. the set of locks that must be held). The solver treats facts
// as immutable values: Transfer and Meet must return fresh (or unchanged)
// facts, never mutate their inputs.
//
// The solver runs a must-style analysis: a block's entry fact is the Meet
// over its predecessors' exit facts, and blocks not yet reached contribute
// nothing (top). With Meet = set intersection this computes "facts that
// hold on every path", the lattice the guardedby check needs.
type Lattice[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Meet combines facts at a control-flow merge.
	Meet(a, b F) F
	// Transfer flows a fact through one block node.
	Transfer(fact F, n ast.Node) F
	// Equal reports whether two facts are the same (fixpoint test).
	Equal(a, b F) bool
}

// Solve runs the forward dataflow problem to fixpoint and returns the fact
// at the entry of every reachable block. Unreachable blocks are absent from
// the map — their facts are top ("anything may hold"), which a must
// analysis reads as "no finding possible here".
//
// Termination: each iteration either leaves a block's entry fact unchanged
// or moves it strictly down the lattice; with the finite lattices the lint
// checks use (subsets of the locks mentioned in one function) the fixpoint
// is reached in a handful of passes. A generous iteration cap guards
// against a non-monotone Transfer.
func Solve[F any](g *Graph, lat Lattice[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = lat.Entry()

	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := (len(g.Blocks) + 1) * 64
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b] = false

		fact := in[b]
		for _, n := range b.Nodes {
			fact = lat.Transfer(fact, n)
		}
		for _, succ := range b.Succs {
			next := fact
			if old, ok := in[succ]; ok {
				next = lat.Meet(old, fact)
				if lat.Equal(old, next) {
					continue
				}
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
