package flow

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// assignedLattice is a toy must-analysis: the set of variable names that
// have been assigned on every path. Meet is set intersection, so a name
// assigned in only one branch of an if does not survive the merge —
// exactly the shape the guardedby lattice uses for held locks.
type assignedLattice struct{}

type assignedFact map[string]bool

func (assignedLattice) Entry() assignedFact { return assignedFact{} }

func (assignedLattice) Meet(a, b assignedFact) assignedFact {
	out := assignedFact{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (assignedLattice) Transfer(fact assignedFact, n ast.Node) assignedFact {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return fact
	}
	out := assignedFact{}
	for k := range fact {
		out[k] = true
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
	}
	return out
}

func (assignedLattice) Equal(a, b assignedFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func names(f assignedFact) string {
	var out []string
	for k := range f {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// exitFact computes the fact at the graph exit by transferring through the
// exit block's own nodes (the exit block is empty, so its entry fact is it).
func exitFact(t *testing.T, src string) assignedFact {
	t.Helper()
	g := New(parseBody(t, src))
	in := Solve[assignedFact](g, assignedLattice{})
	f, ok := in[g.Exit]
	if !ok {
		t.Fatalf("exit unreachable for:\n%s", src)
	}
	return f
}

func TestSolveStraightLine(t *testing.T) {
	f := exitFact(t, `
		a := 1
		b := 2
		_, _ = a, b`)
	if got := names(f); got != "a,b" {
		t.Fatalf("got %q, want %q", got, "a,b")
	}
}

func TestSolveBranchIntersection(t *testing.T) {
	// "both" is assigned on every path; "only" is not and must be dropped
	// at the merge.
	f := exitFact(t, `
		x := 1
		both := 0
		if x > 0 {
			only := 1
			both = only
		} else {
			both = 2
		}
		_ = both`)
	if !f["both"] || f["only"] {
		t.Fatalf("got %q, want both without only", names(f))
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	// The loop body may run zero times, so "inLoop" must not survive to
	// the exit; "before" must.
	f := exitFact(t, `
		before := 1
		for i := 0; i < 3; i++ {
			inLoop := i
			_ = inLoop
		}
		_ = before`)
	if !f["before"] || f["inLoop"] {
		t.Fatalf("got %q, want before without inLoop", names(f))
	}
}

func TestSolveUnreachableBlocksAbsent(t *testing.T) {
	g := New(parseBody(t, `
		return
		a := 1
		_ = a`))
	in := Solve[assignedFact](g, assignedLattice{})
	// The dead block after return must be absent from the result map.
	for _, b := range g.Blocks {
		if _, ok := in[b]; !ok {
			return // found an unreachable block, as expected
		}
	}
	t.Fatal("expected at least one unreachable block after return")
}

func TestSolveSwitchMerge(t *testing.T) {
	// Every case assigns v, including default, so v must hold at exit.
	f := exitFact(t, `
		x := 1
		v := 0
		switch x {
		case 1:
			v = 1
		case 2:
			v = 2
		default:
			v = 3
		}
		_ = v`)
	if !f["v"] {
		t.Fatalf("got %q, want v assigned on all switch paths", names(f))
	}
}
