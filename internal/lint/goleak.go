package lint

import (
	"go/ast"
	"strings"
)

// goleakCheck enforces that every spawned goroutine has a visible lifecycle:
// its body (or, for `go f()`, the body of the module function f) must
// reference a context or a done/stop-style channel, or the go statement
// must carry a //zerosum:detached <why> annotation. ZeroSum's backpressure
// and crash-handling goroutines all follow the ctx/done convention; a
// goroutine with neither is how always-on monitors leak threads across job
// lifetimes.
type goleakCheck struct{}

func (goleakCheck) Name() string { return "goleak" }

// lifecycleHints are the identifier substrings that mark a stop mechanism.
var lifecycleHints = []string{"ctx", "done", "stop", "quit", "cancel", "exit"}

func (c goleakCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			covered := lineDirectives(p.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := p.Fset.Position(g.Pos()).Line
				if _, detached := covered[line]["detached"]; detached {
					return true
				}
				if c.hasLifecycle(p, pkg, g) {
					return true
				}
				diags = append(diags, p.Diag("goleak", g.Pos(),
					"goroutine has no visible stop mechanism (no ctx/done/stop reference); thread it a context or done channel, or annotate //zerosum:detached <why>"))
				return true
			})
		}
	}
	return diags
}

// hasLifecycle reports whether the spawned code references a lifecycle
// value. For function literals the literal body is scanned; for named
// module functions, that function's body.
func (c goleakCheck) hasLifecycle(p *Program, pkg *Pkg, g *ast.GoStmt) bool {
	// Arguments evaluated at spawn time count: `go run(ctx)` is governed.
	for _, arg := range g.Call.Args {
		if bodyMentionsLifecycle(pkg, arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyMentionsLifecycle(pkg, fun.Body)
	default:
		if f := calleeFunc(pkg.Info, g.Call); f != nil {
			if src := p.FuncFor(f); src != nil {
				return bodyMentionsLifecycle(src.Pkg, src.Decl.Body)
			}
		}
	}
	return false
}

func bodyMentionsLifecycle(pkg *Pkg, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lower := strings.ToLower(id.Name)
		for _, hint := range lifecycleHints {
			if strings.Contains(lower, hint) {
				found = true
				return false
			}
		}
		// A value of type context.Context is a lifecycle regardless of name.
		if obj := pkg.Info.Uses[id]; obj != nil && obj.Type() != nil &&
			obj.Type().String() == "context.Context" {
			found = true
			return false
		}
		return true
	})
	return found
}
