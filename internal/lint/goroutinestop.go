package lint

import (
	"go/ast"

	"zerosum/internal/lint/flow"
)

// goroutinestopCheck upgrades goleak with flow evidence: it is not enough
// for a goroutine body to *mention* a ctx/done channel — its CFG must have
// a path from entry to exit, i.e. the goroutine must be able to terminate.
// A `for {}` with no break, or a receive loop that never checks the
// channel-closed ok, mentions whatever it likes and still runs forever.
//
// The rule is exit-reachability, deliberately weak in the safe direction:
// a bounded loop passes (its condition can go false), a select with a
// return in some case passes, `for range ch` passes (the range ends when
// ch closes). What fails is a body with no terminating path at all — which
// is exactly the shape that leaks a thread per job on a long-lived node
// daemon. //zerosum:detached <why> on the go statement's line opts out.
type goroutinestopCheck struct{}

func (goroutinestopCheck) Name() string { return "goroutinestop" }

func (c goroutinestopCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			covered := lineDirectives(p.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := p.Fset.Position(g.Pos()).Line
				if _, detached := covered[line]["detached"]; detached {
					return true
				}
				body, where := spawnedBody(p, pkg, g)
				if body == nil {
					// Unresolvable callee (method value, stdlib, function
					// variable): no CFG to inspect, fall back to the goleak
					// convention — a lifecycle value among the arguments.
					for _, arg := range g.Call.Args {
						if bodyMentionsLifecycle(pkg, arg) {
							return true
						}
					}
					diags = append(diags, p.Diag("goroutinestop", g.Pos(),
						"cannot see the spawned function's body and no lifecycle value is passed; pass a ctx/done or annotate //zerosum:detached <why>"))
					return true
				}
				if flow.New(body).ExitReachable() {
					return true
				}
				diags = append(diags, p.Diag("goroutinestop", g.Pos(),
					"goroutine body%s has no path to return: every loop spins forever (no break/return, no ok-checked receive); give it a reachable exit or annotate //zerosum:detached <why>", where))
				return true
			})
		}
	}
	return diags
}

// spawnedBody resolves the function body a go statement runs: the literal's
// body for `go func(){...}()`, the declaration's body for `go f()` when f
// is a module function. where names the callee for the diagnostic.
func spawnedBody(p *Program, pkg *Pkg, g *ast.GoStmt) (body *ast.BlockStmt, where string) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	default:
		if f := calleeFunc(pkg.Info, g.Call); f != nil {
			if src := p.FuncFor(f); src != nil && src.Decl.Body != nil {
				return src.Decl.Body, " (" + shortName(f) + ")"
			}
		}
	}
	return nil, ""
}
