package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardedbyCheck enforces //zerosum:guardedby field annotations with the
// flow engine: every read of an annotated field must happen with the named
// mutex held (shared or exclusive) on ALL paths reaching the access, and
// every write with it held exclusively. The lock is named either as a
// sibling field ("mu": the instance's own mutex, matched precisely against
// the access's base expression) or as "Type.field" (any held instance of
// that lock class — the sharded-state pattern, where the mutex lives in an
// enclosing shard struct).
//
// Interprocedural reach is one level, two ways: a module helper that
// acquires a lock on every path contributes it at call sites (summaries),
// and a function annotated //zerosum:locked <lock> is analyzed with that
// lock pre-held — while every call TO it is checked to actually hold the
// lock. The escape hatch is //zerosum:nolock <why> on the access's line.
type guardedbyCheck struct{}

func (guardedbyCheck) Name() string { return "guardedby" }

// guardSpec is one annotated field's requirement.
type guardSpec struct {
	owner   string // struct type name, for messages
	field   string
	sibling string // lock field name when the lock lives in the same struct
	class   string // lock class (always resolved, used for class matching)
	declPos token.Pos
	badSpec string // non-empty when the annotation names a missing sibling
}

func (c guardedbyCheck) Run(p *Program) []Diagnostic {
	w := p.lockworld()
	specs := collectGuards(p)
	var diags []Diagnostic

	// Annotation sanity: a guardedby naming a sibling field that does not
	// exist is a silent no-op without this.
	for _, spec := range orderedSpecs(specs) {
		if spec.badSpec != "" {
			diags = append(diags, p.Diag("guardedby", spec.declPos,
				"field %s.%s: //zerosum:guardedby names %q, which is neither a sibling field nor a Type.field lock class",
				spec.owner, spec.field, spec.badSpec))
		}
	}

	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			covered := w.fileDirectives(file)
			for _, fn := range functionsIn(file) {
				a := w.analyze(pkg, file, fn)
				a.eachNode(func(n ast.Node, fact *lockFact) {
					for _, acc := range collectAccesses(n) {
						sel := acc.sel
						field := fieldOf(pkg.Info, sel)
						if field == nil {
							continue
						}
						spec := specs[field]
						if spec == nil || spec.badSpec != "" {
							continue
						}
						line := p.Fset.Position(sel.Pos()).Line
						if _, ok := covered[line]["nolock"]; ok {
							continue
						}
						need := lockShared
						verb := "read"
						if acc.write {
							need = lockExcl
							verb = "written"
						}
						if holdsGuard(pkg, fact, sel, spec, need) {
							continue
						}
						diags = append(diags, p.Diag("guardedby", sel.Pos(),
							"field %s.%s %s without %s held%s on all paths; acquire it or annotate //zerosum:nolock <why>",
							spec.owner, spec.field, verb, guardName(pkg, sel, spec), needSuffix(need)))
					}
					// Obligations: calls to //zerosum:locked functions.
					forEachCall(n, func(call *ast.CallExpr) {
						callee := calleeFunc(pkg.Info, call)
						if callee == nil {
							return
						}
						sum := w.summaries[callee]
						if sum == nil || len(sum.requires) == 0 {
							return
						}
						line := p.Fset.Position(call.Pos()).Line
						if _, ok := covered[line]["nolock"]; ok {
							return
						}
						lat := a.lat
						for _, ref := range sum.requires {
							want, ok := lat.instantiate(ref, call)
							if !ok {
								want = lockKey{class: ref.class}
							}
							if fact.holds(want, lockExcl) {
								continue
							}
							diags = append(diags, p.Diag("guardedby", call.Pos(),
								"call to %s requires %s held (//zerosum:locked), but it is not held on all paths here",
								shortName(callee), want.display()))
						}
					})
				})
			}
		}
	}
	return diags
}

// holdsGuard checks one access against its spec. Sibling-form specs demand
// the access's own base instance ("x.F needs x.mu" — holding some OTHER
// instance's mutex does not count); class-form specs accept any held lock
// of the class. One exception keeps sibling specs usable inside closures:
// a class-only fact (root == nil) comes from a //zerosum:locked
// precondition, which asserts "an instance of this class is held", and the
// declared word is accepted.
func holdsGuard(pkg *Pkg, fact *lockFact, sel *ast.SelectorExpr, spec *guardSpec, need lockMode) bool {
	if spec.sibling != "" {
		if root, base, ok := resolvePathExpr(pkg.Info, sel.X); ok {
			want := lockKey{root: root, path: joinPath(base, spec.sibling), class: spec.class}
			if m, held := fact.held[want]; held && m >= need {
				return true
			}
			for k, m := range fact.held {
				if k.root == nil && k.class == spec.class && m >= need {
					return true
				}
			}
			return false
		}
		// Base not a simple path (map element, call result): fall back to
		// the class so chained expressions do not false-positive.
	}
	return fact.holds(lockKey{class: spec.class}, need)
}

func guardName(pkg *Pkg, sel *ast.SelectorExpr, spec *guardSpec) string {
	if spec.sibling != "" {
		if _, base, ok := resolvePathExpr(pkg.Info, sel.X); ok {
			root, _, _ := resolvePathExpr(pkg.Info, sel.X)
			name := root.Name()
			if base != "" {
				name += "." + base
			}
			return name + "." + spec.sibling
		}
	}
	return spec.class
}

func needSuffix(need lockMode) string {
	if need == lockExcl {
		return " exclusively"
	}
	return ""
}

// collectGuards gathers every //zerosum:guardedby field annotation in the
// module, keyed by the field's type object.
func collectGuards(p *Program) map[*types.Var]*guardSpec {
	specs := make(map[*types.Var]*guardSpec)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, s := range gd.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					collectStructGuards(pkg, ts.Name.Name, st, specs)
				}
			}
		}
	}
	return specs
}

func collectStructGuards(pkg *Pkg, typeName string, st *ast.StructType, specs map[*types.Var]*guardSpec) {
	fieldNames := make(map[string]bool)
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			fieldNames[name.Name] = true
		}
	}
	for _, f := range st.Fields.List {
		arg, ok := fieldDirectives(f)["guardedby"]
		if !ok {
			continue
		}
		lockName, _, _ := strings.Cut(arg, " ")
		for _, name := range f.Names {
			v, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			spec := &guardSpec{owner: typeName, field: name.Name, declPos: name.Pos()}
			if tn, fn, isClass := strings.Cut(lockName, "."); isClass {
				spec.class = fieldClass(pkg, tn, fn)
			} else if fieldNames[lockName] {
				spec.sibling = lockName
				spec.class = fieldClass(pkg, typeName, lockName)
			} else {
				spec.badSpec = lockName
			}
			specs[v] = spec
		}
	}
}

func orderedSpecs(specs map[*types.Var]*guardSpec) []*guardSpec {
	out := make([]*guardSpec, 0, len(specs))
	for _, s := range specs {
		out = append(out, s)
	}
	// Position order keeps the bad-annotation diagnostics deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].declPos < out[j-1].declPos; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// functionsIn lists every function body in a file: declarations plus all
// function literals (each literal is its own analysis unit — it may run on
// a different goroutine or under a caller-provided lock, declared with a
// //zerosum:locked line directive).
func functionsIn(file *ast.File) []ast.Node {
	var out []ast.Node
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}

// fieldOf resolves a selector to the struct field it reads or writes (nil
// for methods, package members, and unresolved selectors).
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// access is one field use found inside a CFG node.
type access struct {
	sel   *ast.SelectorExpr
	write bool
}

// collectAccesses finds every selector access inside one CFG node, with
// write/read classification. Function-literal bodies are excluded (they are
// separate analysis units); for defer/go statements the argument
// expressions count (evaluated at the statement), the deferred call's
// effects do not.
func collectAccesses(n ast.Node) []access {
	writes := make(map[ast.Expr]bool)
	markWrite := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				writes[x] = true
				return
			default:
				return
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				// Address taken: the pointer may be written through.
				markWrite(x.X)
			}
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Obj == nil && id.Name == "delete" && len(x.Args) > 0 {
				markWrite(x.Args[0])
			}
		}
		return true
	})

	var out []access
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := x.(*ast.SelectorExpr); ok {
			out = append(out, access{sel: sel, write: writes[sel]})
		}
		return true
	})
	return out
}
