package lint

import (
	"go/ast"
	"go/types"
)

// hotpathCheck enforces the paper's <0.5% overhead contract (§4.1) on the
// measurement path: a function annotated //zerosum:hotpath — and every
// module function it calls, one level deep — may not format with the fmt
// package (fmt.Errorf is exempt: error construction only runs on failure
// paths, which abort sampling, whereas steady-state formatting is what
// burns the overhead budget), read the wall clock, take a mutex, spawn
// goroutines, or call the per-call-allocating convenience readers and
// splitters (os.ReadFile/ReadDir/Open, io.ReadAll, strings.Fields/Split,
// bytes.Fields/Split): the sampling loop reads through cached descriptors
// into reusable buffers and parses with index scans, and these calls are
// how allocation sneaks back in. A callee annotated //zerosum:coldpath is a
// declared off-steady-state helper (rate-limited or failure-only) and is
// not descended into.
type hotpathCheck struct{}

func (hotpathCheck) Name() string { return "hotpath" }

func (c hotpathCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, hot := directives(fd.Doc)["hotpath"]; !hot {
					continue
				}
				diags = append(diags, c.checkHot(p, pkg, fd)...)
			}
		}
	}
	return diags
}

func (c hotpathCheck) checkHot(p *Program, pkg *Pkg, fd *ast.FuncDecl) []Diagnostic {
	hot := funcDisplayName(fd)
	diags := c.scanBody(p, pkg, fd.Body, hot, "")

	// One level deep: module functions the hot path calls are part of it.
	for _, callee := range c.callees(pkg, fd.Body) {
		src := p.FuncFor(callee)
		if src == nil {
			continue // outside the module, or no body
		}
		dirs := directives(src.Decl.Doc)
		if _, cold := dirs["coldpath"]; cold {
			continue // declared off the steady-state path
		}
		if _, alsoHot := dirs["hotpath"]; alsoHot {
			continue // gets its own depth-0 scan
		}
		diags = append(diags, c.scanBody(p, src.Pkg, src.Decl.Body, hot, shortName(callee))...)
	}
	return diags
}

// callees collects the statically resolvable functions called in body, in
// source order, deduplicated.
func (c hotpathCheck) callees(pkg *Pkg, body *ast.BlockStmt) []*types.Func {
	seen := make(map[*types.Func]bool)
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(pkg.Info, call); f != nil && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
		return true
	})
	return out
}

// scanBody reports forbidden operations in one function body. via is the
// callee name when scanning one level below the annotated function.
func (c hotpathCheck) scanBody(p *Program, pkg *Pkg, body *ast.BlockStmt, hot, via string) []Diagnostic {
	var diags []Diagnostic
	report := func(pos ast.Node, what string) {
		if via == "" {
			diags = append(diags, p.Diag("hotpath", pos.Pos(),
				"hot path %s %s (forbidden in //zerosum:hotpath functions)", hot, what))
		} else {
			diags = append(diags, p.Diag("hotpath", pos.Pos(),
				"%s, called from hot path %s, %s (forbidden one level below //zerosum:hotpath; restructure or annotate the callee //zerosum:coldpath)", via, hot, what))
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			report(n, "spawns a goroutine")
		case *ast.CallExpr:
			if bad := forbiddenHotCall(calleeFunc(pkg.Info, n)); bad != "" {
				report(n, "calls "+bad)
			}
		}
		return true
	})
	return diags
}

// forbiddenHotCall names the violation when f may not run on a hot path.
func forbiddenHotCall(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "fmt":
		if f.Name() != "Errorf" {
			return "fmt." + f.Name()
		}
	case "time":
		switch f.Name() {
		case "Now", "Sleep", "Tick", "After", "AfterFunc":
			return "time." + f.Name()
		}
	case "strings", "bytes":
		// Each call allocates its result slice; hot-path parsing is written
		// against []byte with index scans instead (internal/proc/parse.go).
		switch f.Name() {
		case "Fields", "FieldsFunc", "Split", "SplitN", "SplitAfter", "SplitAfterN":
			return f.Pkg().Path() + "." + f.Name()
		}
	case "os":
		// The sampling loop rereads cached descriptors (proc.BufFS); opening
		// or slurping files per call is the allocation the fd cache removed.
		switch f.Name() {
		case "ReadFile", "ReadDir", "Open", "OpenFile", "Create":
			return "os." + f.Name()
		}
	case "io":
		if f.Name() == "ReadAll" {
			return "io.ReadAll"
		}
	}
	switch f.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).TryLock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).TryLock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).TryRLock":
		return f.FullName()
	}
	return ""
}
