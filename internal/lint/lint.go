// Package lint is ZeroSum's repo-specific static analyzer (the zslint
// tool). The paper's whole value proposition is always-on monitoring at
// <0.5% overhead (§4.1); the repo encodes that as conventions — an
// allocation-free export.Stream.Publish hot path, a versioned little-endian
// wire format whose encoder and decoder must never drift apart, bounded
// drop-oldest backpressure goroutines with explicit stop mechanisms, and
// injected clocks so the simulator and the live host run identical code.
// Nothing but reviewer vigilance enforces any of that, so this package
// machine-checks it: a stdlib-only framework (go/parser, go/ast, go/types
// with the source importer — no external dependencies) loads every package
// of the module and runs a pluggable set of checks over the type-checked
// ASTs. See docs/lint.md for the check catalogue and the //zerosum:*
// annotation conventions.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, renderable as "file:line: [check] message".
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Check is one analysis pass over a loaded Program.
type Check interface {
	Name() string
	Run(p *Program) []Diagnostic
}

// Options scopes the checks. Scopes are module-relative package directories
// ("internal/proc"; "" is the module root package); a scope entry also
// covers its subdirectories.
type Options struct {
	// ErrcheckScope is where discarded error results are findings: packages
	// where a dropped error means silently missing samples.
	ErrcheckScope []string
	// ClockScope is where raw wall-clock calls are findings: packages that
	// already take an injected clock or interval.
	ClockScope []string
}

// DefaultOptions returns the scopes enforced on the ZeroSum repo itself.
func DefaultOptions() Options {
	return Options{
		ErrcheckScope: []string{"internal/proc", "internal/aggd", "internal/export", "internal/tsdb", "internal/scenario"},
		ClockScope: []string{
			"internal/core", "internal/sched", "internal/sim",
			"internal/proc", "internal/export", "internal/aggd",
			"internal/chaos", "internal/tsdb", "internal/scenario",
		},
	}
}

// Checks returns the full check suite under the given options.
func Checks(opt Options) []Check {
	return []Check{
		hotpathCheck{},
		errcheckCheck{scope: opt.ErrcheckScope},
		goleakCheck{},
		wiresyncCheck{},
		clockCheck{scope: opt.ClockScope},
		guardedbyCheck{},
		lockorderCheck{},
		atomicCheck{},
		goroutinestopCheck{},
	}
}

// Run executes the checks and returns their findings in the canonical order.
func Run(p *Program, checks []Check) []Diagnostic {
	diags, _ := RunTimed(p, checks)
	return diags
}

// CheckTiming is one check's wall-clock cost, for the -time budget report.
type CheckTiming struct {
	Check   string
	Elapsed time.Duration
}

// RunTimed is Run with per-check wall-clock timings (zslint -time uses it
// to police the CI runtime budget).
func RunTimed(p *Program, checks []Check) ([]Diagnostic, []CheckTiming) {
	var diags []Diagnostic
	timings := make([]CheckTiming, 0, len(checks))
	for _, c := range checks {
		start := time.Now()
		diags = append(diags, c.Run(p)...)
		timings = append(timings, CheckTiming{Check: c.Name(), Elapsed: time.Since(start)})
	}
	sortDiagnostics(diags)
	return diags, timings
}

// sortDiagnostics is THE diagnostic ordering — (file, line, check, col,
// message) — used by Run, the baseline machinery, and the CLI alike, and
// pinned by a golden test. Keying check before column keeps the order
// stable when a check's reported column shifts by a token.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

// WriteText renders diagnostics one per line.
func WriteText(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders diagnostics as a JSON array (always an array, never
// null, so consumers can len() it).
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// inScope reports whether a module-relative package directory is covered by
// one of the scope entries.
func inScope(rel string, scope []string) bool {
	for _, s := range scope {
		if rel == s || (s != "" && strings.HasPrefix(rel, s+"/")) {
			return true
		}
	}
	return false
}

// ---- //zerosum:* annotations ----
//
// Annotations are machine-readable comment directives (written without a
// space after //, like //go:build): //zerosum:hotpath, //zerosum:coldpath,
// //zerosum:detached <why>, //zerosum:wallclock <why>,
// //zerosum:wire-encode <group>, //zerosum:wire-decode <group>,
// //zerosum:nowire <why>, and the concurrency set — //zerosum:guardedby
// <lock> on struct fields (lock is a sibling field name or Type.field lock
// class), //zerosum:locked <lock> [why] on functions or closure lines
// (declares the caller-holds-lock precondition; checked at call sites),
// //zerosum:nolock <why> on an access line (suppresses guardedby, atomic
// and lockorder there).

const directivePrefix = "//zerosum:"

// directives parses the //zerosum: lines of a comment group into a
// directive -> argument map (argument may be empty).
func directives(doc *ast.CommentGroup) map[string]string {
	if doc == nil {
		return nil
	}
	var out map[string]string
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(rest, " ")
		if name == "" {
			continue
		}
		if out == nil {
			out = make(map[string]string)
		}
		out[name] = strings.TrimSpace(args)
	}
	return out
}

// fieldDirectives merges a struct field's doc and trailing line comments.
func fieldDirectives(f *ast.Field) map[string]string {
	out := directives(f.Doc)
	for name, args := range directives(f.Comment) {
		if out == nil {
			out = make(map[string]string)
		}
		out[name] = args
	}
	return out
}

// lineDirectives maps source lines to the //zerosum: directives that cover
// them: a directive covers its own line (trailing comment) and the line
// immediately below it (comment above a statement).
func lineDirectives(fset *token.FileSet, file *ast.File) map[int]map[string]string {
	out := make(map[int]map[string]string)
	add := func(line int, name, args string) {
		m := out[line]
		if m == nil {
			m = make(map[string]string)
			out[line] = m
		}
		m[name] = args
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, args, _ := strings.Cut(rest, " ")
			if name == "" {
				continue
			}
			line := fset.Position(c.Pos()).Line
			add(line, name, strings.TrimSpace(args))
			add(line+1, name, strings.TrimSpace(args))
		}
	}
	return out
}

// ---- shared AST/type helpers ----

// calleeFunc resolves a call expression to the function or method object it
// statically invokes (nil for builtins, function values, and interface
// methods that cannot be resolved to a declaration).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcDisplayName renders a declaration as Recv.Name or Name for messages.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// shortName renders a types.Func as pkg.Name or (pkg.Recv).Name without the
// full import path, for readable messages.
func shortName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		if named, isNamed := recv.(*types.Named); isNamed {
			return named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}
