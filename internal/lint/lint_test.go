package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixture expected.txt golden files")

// TestFixtures runs each check over its fixture mini-module under testdata/
// and compares the diagnostics against the golden expected.txt. Every
// fixture contains at least one true positive (asserted by the golden being
// non-empty) and clean negative declarations (asserted by their absence
// from the golden). Regenerate goldens with: go test ./internal/lint -run
// Fixtures -update
func TestFixtures(t *testing.T) {
	// Fixture code lives in each mini-module's root package, so scope the
	// scoped checks to the module root.
	opts := Options{ErrcheckScope: []string{""}, ClockScope: []string{""}}
	byName := make(map[string]Check)
	for _, c := range Checks(opts) {
		byName[c.Name()] = c
	}

	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(byName) {
		t.Errorf("testdata has %d fixtures, want one per check (%d)", len(entries), len(byName))
	}
	for _, e := range entries {
		name := e.Name()
		check := byName[name]
		if check == nil {
			t.Errorf("testdata/%s does not match any check", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			prog, err := Load(dir)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			diags := Run(prog, []Check{check})
			var got strings.Builder
			if err := WriteText(&got, diags); err != nil {
				t.Fatal(err)
			}

			golden := filepath.Join(dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got.String() != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got.String(), want)
			}
			if len(diags) == 0 {
				t.Error("fixture produced no findings; it must prove at least one true positive")
			}
		})
	}
}

// TestRepoIsClean is the self-test: the full suite over this repository
// must report nothing, i.e. `zslint ./...` stays green.
func TestRepoIsClean(t *testing.T) {
	prog, err := Load("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range Run(prog, Checks(DefaultOptions())) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestDiagnosticFormat pins the rendering contract the issue specifies.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{Check: "hotpath", File: "internal/export/stream.go", Line: 7, Col: 2, Message: "calls fmt.Sprintf"}
	want := "internal/export/stream.go:7: [hotpath] calls fmt.Sprintf"
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}

// TestWriteJSONNeverNull pins that -json output is always an array.
func TestWriteJSONNeverNull(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty diagnostics rendered %q, want []", b.String())
	}
}
