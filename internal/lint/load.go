package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Program is a parsed and type-checked Go module, the unit zslint analyzes.
type Program struct {
	ModPath string // module path from go.mod
	Root    string // absolute module root directory
	Fset    *token.FileSet
	Pkgs    []*Pkg // dependency order (imports before importers)

	funcs map[*types.Func]*FuncSource
	locks *lockWorld // lazily-built shared state for the concurrency checks
}

// Pkg is one loaded, type-checked package of the module. Test files are not
// loaded: the checks guard production invariants, and tests legitimately
// sleep, format, and spawn short-lived goroutines.
type Pkg struct {
	Path  string // full import path
	Rel   string // module-relative directory ("" for the root package)
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FuncSource locates a function declaration in the loaded source.
type FuncSource struct {
	Pkg  *Pkg
	Decl *ast.FuncDecl
}

// FuncFor returns the declaration of a module function (nil for functions
// from outside the module and for declarations without bodies).
func (p *Program) FuncFor(obj *types.Func) *FuncSource {
	return p.funcs[obj]
}

// Position translates a token position into a module-relative file, line
// and column.
func (p *Program) Position(pos token.Pos) (file string, line, col int) {
	pp := p.Fset.Position(pos)
	file = pp.Filename
	if rel, err := filepath.Rel(p.Root, pp.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return file, pp.Line, pp.Column
}

// Diag builds a Diagnostic for a check at a position.
func (p *Program) Diag(check string, pos token.Pos, format string, args ...any) Diagnostic {
	file, line, col := p.Position(pos)
	return Diagnostic{
		Check:   check,
		File:    file,
		Line:    line,
		Col:     col,
		Message: fmt.Sprintf(format, args...),
	}
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from go.mod text.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: go.mod has no module line")
}

// Load parses and type-checks every non-test package under the module
// rooted at (or above) dir, resolving imports from outside the module with
// the stdlib source importer — no external tooling, no go command.
func Load(dir string) (*Program, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}

	p := &Program{
		ModPath: modPath,
		Root:    root,
		Fset:    token.NewFileSet(),
		funcs:   make(map[*types.Func]*FuncSource),
	}

	// File selection honours build tags and GOOS/GOARCH filename suffixes
	// via go/build's matcher. Cgo is disabled so stdlib dependencies (net
	// via net/http, etc.) resolve to their pure-Go variants, which the
	// source importer can type-check without invoking the cgo tool.
	ctxt := build.Default
	ctxt.CgoEnabled = false
	build.Default.CgoEnabled = false

	byPath, err := p.parseModule(&ctxt)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(modPath, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		prog:     p,
		checked:  make(map[string]*types.Package),
		fallback: importer.ForCompiler(p.Fset, "source", nil),
	}
	for _, pkg := range order {
		if err := p.typeCheck(pkg, imp); err != nil {
			return nil, err
		}
		imp.checked[pkg.Path] = pkg.Types
		p.Pkgs = append(p.Pkgs, pkg)
	}
	return p, nil
}

// parseModule walks the module tree and parses each package directory.
func (p *Program) parseModule(ctxt *build.Context) (map[string]*Pkg, error) {
	byPath := make(map[string]*Pkg)
	err := filepath.WalkDir(p.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.Root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if path != p.Root {
			// A nested module is its own analysis unit; skip it.
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		pkg, err := p.parseDir(ctxt, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(byPath) == 0 {
		return nil, fmt.Errorf("lint: no Go packages under %s", p.Root)
	}
	return byPath, nil
}

// parseDir parses one directory's buildable non-test Go files (nil when the
// directory holds none).
func (p *Program) parseDir(ctxt *build.Context, dir string) (*Pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := ctxt.MatchFile(dir, name)
		if err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil {
		return nil, err
	}
	pkg := &Pkg{Rel: filepath.ToSlash(rel), Dir: dir, Files: files}
	if pkg.Rel == "." {
		pkg.Rel = ""
		pkg.Path = p.ModPath
	} else {
		pkg.Path = p.ModPath + "/" + pkg.Rel
	}
	return pkg, nil
}

// topoSort orders packages so every intra-module import precedes its
// importer.
func topoSort(modPath string, byPath map[string]*Pkg) ([]*Pkg, error) {
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(byPath))
	var order []*Pkg
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		}
		state[path] = visiting
		pkg := byPath[path]
		for _, imp := range moduleImports(modPath, pkg) {
			if _, ok := byPath[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, pkg)
		return nil
	}
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImports lists a package's imports that live inside the module.
func moduleImports(modPath string, pkg *Pkg) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != modPath && !strings.HasPrefix(path, modPath+"/") {
				continue
			}
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out
}

// typeCheck runs go/types over one package and indexes its functions.
func (p *Program) typeCheck(pkg *Pkg, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkg.Path, p.Fset, pkg.Files, pkg.Info)
	if len(typeErrs) > 0 {
		return fmt.Errorf("lint: type-check %s: %v", pkg.Path, typeErrs[0])
	}
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				p.funcs[obj] = &FuncSource{Pkg: pkg, Decl: fd}
			}
		}
	}
	return nil
}

// moduleImporter resolves module packages from the already-checked set and
// everything else (the standard library) through the source importer.
type moduleImporter struct {
	prog     *Program
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	if path == m.prog.ModPath || strings.HasPrefix(path, m.prog.ModPath+"/") {
		return nil, fmt.Errorf("lint: module package %s imported before it was checked", path)
	}
	return m.fallback.Import(path)
}
