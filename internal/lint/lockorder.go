package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockorderCheck builds the module-wide lock-acquisition-order graph over
// lock classes and reports cycles. An edge A -> B is recorded whenever a
// lock of class B is acquired while a lock of class A is (must-)held — from
// direct mutex calls, and from calls to module helpers whose summary says
// they may acquire B (the one-level interprocedural reach). Two code paths
// that take the same pair of locks in opposite orders deadlock when they
// race; a cycle in this graph is exactly that hazard.
//
// Suppression: //zerosum:nolock on the acquiring line drops that edge.
type lockorderCheck struct{}

func (lockorderCheck) Name() string { return "lockorder" }

// lockEdge is one observed ordering with its first witness site.
type lockEdge struct {
	from, to string
	pos      token.Pos
	what     string // description of the acquiring site
}

func (c lockorderCheck) Run(p *Program) []Diagnostic {
	w := p.lockworld()
	edges := map[[2]string]*lockEdge{}
	record := func(from, to string, pos token.Pos, what string) {
		if from == "" || to == "" || from == to {
			return
		}
		k := [2]string{from, to}
		if prev, ok := edges[k]; ok && prev.pos <= pos {
			return
		}
		edges[k] = &lockEdge{from: from, to: to, pos: pos, what: what}
	}

	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			covered := w.fileDirectives(file)
			for _, fn := range functionsIn(file) {
				a := w.analyze(pkg, file, fn)
				a.eachNode(func(n ast.Node, fact *lockFact) {
					forEachCall(n, func(call *ast.CallExpr) {
						line := p.Fset.Position(call.Pos()).Line
						if _, ok := covered[line]["nolock"]; ok {
							return
						}
						var acquired []string
						what := ""
						if op, lockExpr, ok := mutexOp(pkg.Info, call); ok {
							if op == opLock || op == opRLock {
								if cl := lockClass(pkg.Info, lockExpr); cl != "" {
									acquired = append(acquired, cl)
									what = cl + ".Lock"
								}
							}
						} else if callee := calleeFunc(pkg.Info, call); callee != nil {
							if sum := w.summaries[callee]; sum != nil && len(sum.touched) > 0 {
								acquired = sum.touched
								what = "call to " + shortName(callee)
							}
						}
						if len(acquired) == 0 {
							return
						}
						heldClasses := map[string]bool{}
						for k := range fact.held {
							if k.class != "" {
								heldClasses[k.class] = true
							}
						}
						for _, to := range acquired {
							for from := range heldClasses {
								record(from, to, call.Pos(), what)
							}
						}
						// Advance held state so later calls on the same line
						// see this acquisition (mu1.Lock(); mu2.Lock() in
						// one statement). Touched-vs-touched ordering inside
						// a callee is the callee's own analysis.
						fact = a.lat.applyCall(fact, call)
					})
				})
			}
		}
	}

	// Find cycles: strongly connected components of the class digraph with
	// more than one node (or a self-loop, excluded at record time).
	adj := map[string][]string{}
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, v := range adj {
		sort.Strings(v)
	}
	sccs := stronglyConnected(adj)

	var diags []Diagnostic
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		// Witness: the lexicographically first in-cycle edge, for a stable
		// position to report.
		var witness *lockEdge
		for _, from := range scc {
			for _, to := range scc {
				if e, ok := edges[[2]string{from, to}]; ok {
					if witness == nil || e.pos < witness.pos {
						witness = e
					}
				}
			}
		}
		if witness == nil {
			continue
		}
		diags = append(diags, p.Diag("lockorder", witness.pos,
			"lock-order cycle among {%s}: %s acquires %s while %s is held, but another path orders them the other way — a deadlock when both run",
			strings.Join(scc, ", "), witness.what, witness.to, witness.from))
	}
	return diags
}

// stronglyConnected is Tarjan's algorithm over a string digraph, returning
// the components in a deterministic order.
func stronglyConnected(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, wn := range adj[v] {
			if _, ok := index[wn]; !ok {
				strong(wn)
				if low[wn] < low[v] {
					low[v] = low[wn]
				}
			} else if onStack[wn] && index[wn] < low[v] {
				low[v] = index[wn]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[n] = false
				scc = append(scc, n)
				if n == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strong(n)
		}
	}
	return sccs
}
