package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"zerosum/internal/lint/flow"
)

// This file models mutex state for the concurrency checks (guardedby,
// lockorder). A lock is identified two ways at once:
//
//   - a key: the base variable plus selector path that names it in one
//     function ("sh" + "mu" for sh.mu.Lock()), precise but function-local;
//   - a class: the package-qualified declaration site ("aggd.rankShard.mu"
//     for field mu of struct rankShard, "export.mu" for a package-level
//     var), coarse but stable across functions and packages.
//
// The guardedby check matches keys when the annotation names a sibling
// field (exact instance) and classes when it names a Type.field (any
// instance — the sharded-state pattern where the mutex lives in an
// enclosing shard struct). The lockorder graph is built over classes.

// lockMode distinguishes shared (RLock) from exclusive (Lock) holds.
type lockMode uint8

const (
	lockShared lockMode = 1
	lockExcl   lockMode = 2
)

func (m lockMode) String() string {
	if m == lockShared {
		return "read-locked"
	}
	return "locked"
}

// lockKey identifies one lock inside one function's analysis. root is the
// base variable object (nil for class-only facts, e.g. those seeded by a
// //zerosum:locked Type.field precondition); path is the selector path from
// it; class is the declaration-site class ("" for locals with no class).
type lockKey struct {
	root  types.Object
	path  string
	class string
}

func (k lockKey) display() string {
	if k.root == nil {
		return k.class
	}
	name := k.root.Name()
	if k.path != "" {
		name += "." + k.path
	}
	return name
}

func joinPath(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "." + b
}

// lockFact is the dataflow fact: the locks that must be held at a program
// point, plus the locks this function has released so far on every path
// (the latter feeds function summaries). nil means "unreached" (top).
type lockFact struct {
	held     map[lockKey]lockMode
	released map[lockKey]bool
}

func newLockFact() *lockFact {
	return &lockFact{held: map[lockKey]lockMode{}, released: map[lockKey]bool{}}
}

func (f *lockFact) clone() *lockFact {
	n := newLockFact()
	for k, m := range f.held {
		n.held[k] = m
	}
	for k := range f.released {
		n.released[k] = true
	}
	return n
}

// holds reports whether the fact satisfies a requirement: an exact key when
// want.root is non-nil, otherwise any held lock of want.class. need is the
// weakest acceptable mode (lockShared accepts either).
func (f *lockFact) holds(want lockKey, need lockMode) bool {
	if f == nil {
		return true // unreachable code proves anything
	}
	if want.root != nil {
		if m, ok := f.held[want]; ok && m >= need {
			return true
		}
		// Fall through: an aliased instance of the same class still
		// satisfies a class-bearing requirement.
	}
	if want.class == "" {
		return false
	}
	for k, m := range f.held {
		if k.class == want.class && m >= need {
			return true
		}
	}
	return false
}

// lockLattice implements flow.Lattice for *lockFact.
type lockLattice struct {
	w     *lockWorld
	pkg   *Pkg
	entry *lockFact
	// summaries toggles one-level interprocedural effects; off while the
	// summaries themselves are being computed (keeping them strictly
	// intraprocedural, the documented depth).
	summaries bool
}

func (l *lockLattice) Entry() *lockFact { return l.entry }

func (l *lockLattice) Meet(a, b *lockFact) *lockFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	n := newLockFact()
	for k, m := range a.held {
		if mb, ok := b.held[k]; ok {
			if mb < m {
				m = mb
			}
			n.held[k] = m
		}
	}
	for k := range a.released {
		if b.released[k] {
			n.released[k] = true
		}
	}
	return n
}

func (l *lockLattice) Equal(a, b *lockFact) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.held) != len(b.held) || len(a.released) != len(b.released) {
		return false
	}
	for k, m := range a.held {
		if mb, ok := b.held[k]; !ok || mb != m {
			return false
		}
	}
	for k := range a.released {
		if !b.released[k] {
			return false
		}
	}
	return true
}

func (l *lockLattice) Transfer(f *lockFact, n ast.Node) *lockFact {
	if f == nil {
		return nil
	}
	out := f
	forEachCall(n, func(call *ast.CallExpr) {
		out = l.applyCall(out, call)
	})
	return out
}

// applyCall flows one call's lock effects.
func (l *lockLattice) applyCall(f *lockFact, call *ast.CallExpr) *lockFact {
	if op, lockExpr, ok := mutexOp(l.pkg.Info, call); ok {
		key := l.w.lockKeyFor(l.pkg, lockExpr)
		n := f.clone()
		switch op {
		case opLock:
			n.held[key] = lockExcl
			delete(n.released, key)
		case opRLock:
			n.held[key] = lockShared
			delete(n.released, key)
		case opUnlock, opRUnlock:
			delete(n.held, key)
			n.released[key] = true
		}
		return n
	}
	if !l.summaries {
		return f
	}
	callee := calleeFunc(l.pkg.Info, call)
	if callee == nil {
		return f
	}
	sum := l.w.summaries[callee]
	if sum == nil || (len(sum.acquires) == 0 && len(sum.releases) == 0) {
		return f
	}
	n := f.clone()
	for _, ref := range sum.releases {
		key, ok := l.instantiate(ref, call)
		if !ok {
			continue
		}
		delete(n.held, key)
		n.released[key] = true
	}
	for _, ref := range sum.acquires {
		key, ok := l.instantiate(ref, call)
		if !ok {
			key = lockKey{class: ref.class} // class-only fallback
			if ref.class == "" {
				continue
			}
		}
		n.held[key] = ref.mode
		delete(n.released, key)
	}
	return n
}

// instantiate maps a summary's formal lock reference to a caller-side key.
func (l *lockLattice) instantiate(ref sumRef, call *ast.CallExpr) (lockKey, bool) {
	switch ref.kind {
	case sumGlobal:
		return lockKey{root: ref.global, path: ref.path, class: ref.class}, true
	case sumClass:
		if ref.class == "" {
			return lockKey{}, false
		}
		return lockKey{class: ref.class}, true
	case sumRecv:
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return lockKey{}, false
		}
		root, base, ok := resolvePathExpr(l.pkg.Info, sel.X)
		if !ok {
			return lockKey{}, false
		}
		return lockKey{root: root, path: joinPath(base, ref.path), class: ref.class}, true
	case sumParam:
		if ref.param >= len(call.Args) {
			return lockKey{}, false
		}
		root, base, ok := resolvePathExpr(l.pkg.Info, call.Args[ref.param])
		if !ok {
			return lockKey{}, false
		}
		return lockKey{root: root, path: joinPath(base, ref.path), class: ref.class}, true
	}
	return lockKey{}, false
}

// ---- mutex call resolution ----

type mutexOpKind int

const (
	opLock mutexOpKind = iota
	opRLock
	opUnlock
	opRUnlock
)

// mutexOp recognizes sync.Mutex/RWMutex method calls and returns the lock
// operand expression (the `sh.mu` of sh.mu.Lock()). TryLock/TryRLock are
// ignored: their acquisition is conditional on the return value, which a
// path-insensitive analysis cannot track (a documented soundness limit).
func mutexOp(info *types.Info, call *ast.CallExpr) (mutexOpKind, ast.Expr, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0, nil, false
	}
	var op mutexOpKind
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock":
		op = opLock
	case "(*sync.RWMutex).RLock":
		op = opRLock
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock":
		op = opUnlock
	case "(*sync.RWMutex).RUnlock":
		op = opRUnlock
	default:
		return 0, nil, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, nil, false
	}
	return op, sel.X, true
}

// resolvePathExpr reduces an expression to (base variable, selector path):
// sh.mu -> (sh, "mu"), js.shards[i].mu -> (js, "shards[i].mu"), &x -> x's
// resolution. ok is false for expressions rooted in calls or literals.
func resolvePathExpr(info *types.Info, e ast.Expr) (types.Object, string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, "", true
		}
		return nil, "", false
	case *ast.SelectorExpr:
		root, p, ok := resolvePathExpr(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, joinPath(p, e.Sel.Name), true
	case *ast.IndexExpr:
		root, p, ok := resolvePathExpr(info, e.X)
		if !ok {
			return nil, "", false
		}
		return root, p + "[" + types.ExprString(e.Index) + "]", true
	case *ast.StarExpr:
		return resolvePathExpr(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolvePathExpr(info, e.X)
		}
	}
	return nil, "", false
}

// lockClass names a lock's declaration site: "pkg.Type.field" for a struct
// field, "pkg.var" for a package-level variable, "" for locals.
func lockClass(info *types.Info, lockExpr ast.Expr) string {
	switch e := ast.Unparen(lockExpr).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			if f, ok := sel.Obj().(*types.Var); ok && f.IsField() {
				if named := namedRecv(sel.Recv()); named != nil && named.Obj().Pkg() != nil {
					return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + f.Name()
				}
			}
		}
		// pkg-qualified package-level var: otherpkg.mu
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.IndexExpr:
		return lockClass(info, e.X)
	case *ast.StarExpr:
		return lockClass(info, e.X)
	}
	return ""
}

func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldClass resolves "pkg.Type.field" for field name on struct type named
// typeName in pkg (used when an annotation names the lock by Type.field).
func fieldClass(pkg *Pkg, typeName, fieldName string) string {
	return pkg.Types.Name() + "." + typeName + "." + fieldName
}

// forEachCall applies fn to every call expression evaluated when node runs:
// function-literal bodies are skipped (they run when called, not here), and
// for defer/go statements only the argument expressions count (the call
// itself runs later / elsewhere). Calls are visited in position order,
// which matches evaluation order for the straight-line leaves the CFG
// stores.
func forEachCall(n ast.Node, fn func(*ast.CallExpr)) {
	var skipCall *ast.CallExpr
	switch s := n.(type) {
	case *ast.DeferStmt:
		skipCall = s.Call
	case *ast.GoStmt:
		skipCall = s.Call
	case nil:
		return
	}
	var calls []*ast.CallExpr
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := x.(*ast.CallExpr); ok && c != skipCall {
			calls = append(calls, c)
		}
		return true
	})
	sort.SliceStable(calls, func(i, j int) bool { return calls[i].End() < calls[j].End() })
	for _, c := range calls {
		fn(c)
	}
}

// ---- function summaries ----

type sumKind int

const (
	sumRecv sumKind = iota
	sumParam
	sumGlobal
	sumClass
)

// sumRef is one lock in a function summary, expressed relative to the
// function's formals so call sites can substitute their actuals.
type sumRef struct {
	kind   sumKind
	param  int
	global types.Object
	path   string
	class  string
	mode   lockMode
}

// lockSummary is the one-level interprocedural view of a function: the
// locks it acquires and releases on every path through to return (net of
// its deferred unlocks), the lock classes it may touch at all (for the
// lock-order graph), and the locks its //zerosum:locked annotation obliges
// callers to hold.
type lockSummary struct {
	acquires []sumRef
	releases []sumRef
	touched  []string
	requires []sumRef
}

// lockWorld is the shared analysis state the concurrency checks draw from:
// per-function summaries and lazily-computed per-function dataflow results.
// Built once per Program and cached (the checks run sequentially).
type lockWorld struct {
	p         *Program
	summaries map[*types.Func]*lockSummary
	analyses  map[ast.Node]*lockAnalysis
	lineDirs  map[*ast.File]map[int]map[string]string
}

// lockworld returns the Program's cached lock analysis state.
func (p *Program) lockworld() *lockWorld {
	if p.locks == nil {
		w := &lockWorld{
			p:         p,
			summaries: make(map[*types.Func]*lockSummary),
			analyses:  make(map[ast.Node]*lockAnalysis),
			lineDirs:  make(map[*ast.File]map[int]map[string]string),
		}
		w.buildSummaries()
		p.locks = w
	}
	return p.locks
}

func (w *lockWorld) fileDirectives(file *ast.File) map[int]map[string]string {
	m, ok := w.lineDirs[file]
	if !ok {
		m = lineDirectives(w.p.Fset, file)
		w.lineDirs[file] = m
	}
	return m
}

func (w *lockWorld) lockKeyFor(pkg *Pkg, lockExpr ast.Expr) lockKey {
	class := lockClass(pkg.Info, lockExpr)
	root, path, ok := resolvePathExpr(pkg.Info, lockExpr)
	if !ok {
		return lockKey{class: class}
	}
	return lockKey{root: root, path: path, class: class}
}

func (w *lockWorld) buildSummaries() {
	for _, pkg := range w.p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w.summaries[obj] = w.summarize(pkg, fd)
			}
		}
	}
}

// requiresOf parses a //zerosum:locked directive value ("mu", "Type.mu", or
// a comma-separated list; trailing free text after a space is the why).
func (w *lockWorld) requiresOf(pkg *Pkg, fd *ast.FuncDecl, arg string) []sumRef {
	spec, _, _ := strings.Cut(arg, " ")
	var out []sumRef
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		if typeName, fieldName, ok := strings.Cut(one, "."); ok {
			out = append(out, sumRef{kind: sumClass, class: fieldClass(pkg, typeName, fieldName), mode: lockExcl})
			continue
		}
		// Sibling-field form: the receiver's own lock field.
		if fd != nil && fd.Recv != nil && len(fd.Recv.List) > 0 {
			class := ""
			if named := recvNamed(pkg, fd); named != nil && named.Obj().Pkg() != nil {
				class = named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + one
			}
			out = append(out, sumRef{kind: sumRecv, path: one, class: class, mode: lockExcl})
		}
	}
	return out
}

func recvNamed(pkg *Pkg, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil
	}
	return namedRecv(tv.Type)
}

// summarize runs the strictly intraprocedural lock dataflow over one
// declaration and lifts the result into formal-relative terms.
func (w *lockWorld) summarize(pkg *Pkg, fd *ast.FuncDecl) *lockSummary {
	sum := &lockSummary{}
	if dirs := directives(fd.Doc); dirs != nil {
		if arg, ok := dirs["locked"]; ok {
			sum.requires = w.requiresOf(pkg, fd, arg)
		}
	}

	g := flow.New(fd.Body)
	lat := &lockLattice{w: w, pkg: pkg, entry: w.entryFact(pkg, fd, sum.requires)}
	facts := flow.Solve[*lockFact](g, lat)
	exit := facts[g.Exit]
	if exit != nil {
		exit = w.applyDefers(lat, g, exit)
	}

	// Formal objects: receiver and named parameters.
	var recvObj types.Object
	params := map[types.Object]int{}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	idx := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, name := range f.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				params[obj] = idx
			}
			idx++
		}
	}
	entrySeeded := map[lockKey]bool{}
	for k := range lat.entry.held {
		entrySeeded[k] = true
	}
	lift := func(k lockKey, mode lockMode) (sumRef, bool) {
		if k.root == nil {
			return sumRef{}, false
		}
		if k.root == recvObj && recvObj != nil {
			return sumRef{kind: sumRecv, path: k.path, class: k.class, mode: mode}, true
		}
		if i, ok := params[k.root]; ok {
			return sumRef{kind: sumParam, param: i, path: k.path, class: k.class, mode: mode}, true
		}
		if k.root.Pkg() != nil && k.root.Parent() == k.root.Pkg().Scope() {
			return sumRef{kind: sumGlobal, global: k.root, path: k.path, class: k.class, mode: mode}, true
		}
		return sumRef{}, false
	}
	if exit != nil {
		for k, m := range exit.held {
			if entrySeeded[k] {
				continue
			}
			if ref, ok := lift(k, m); ok {
				sum.acquires = append(sum.acquires, ref)
			}
		}
		for k := range exit.released {
			if ref, ok := lift(k, lockExcl); ok {
				sum.releases = append(sum.releases, ref)
			}
		}
	}
	sortRefs(sum.acquires)
	sortRefs(sum.releases)

	// touched: every lock class this body may acquire directly (defers and
	// goroutine bodies excluded — they run elsewhere in time or space).
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, lockExpr, ok := mutexOp(pkg.Info, call); ok && (op == opLock || op == opRLock) {
				if c := lockClass(pkg.Info, lockExpr); c != "" && !seen[c] {
					seen[c] = true
					sum.touched = append(sum.touched, c)
				}
			}
		}
		return true
	})
	sort.Strings(sum.touched)
	return sum
}

func sortRefs(refs []sumRef) {
	sort.Slice(refs, func(i, j int) bool {
		a, b := refs[i], refs[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.param != b.param {
			return a.param < b.param
		}
		if a.path != b.path {
			return a.path < b.path
		}
		return a.class < b.class
	})
}

// entryFact seeds a function's entry with its declared preconditions.
func (w *lockWorld) entryFact(pkg *Pkg, fd *ast.FuncDecl, requires []sumRef) *lockFact {
	f := newLockFact()
	var recvObj types.Object
	if fd != nil && fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvObj = pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	for _, ref := range requires {
		switch ref.kind {
		case sumClass:
			f.held[lockKey{class: ref.class}] = ref.mode
		case sumRecv:
			if recvObj != nil {
				f.held[lockKey{root: recvObj, path: ref.path, class: ref.class}] = ref.mode
			} else if ref.class != "" {
				f.held[lockKey{class: ref.class}] = ref.mode
			}
		}
	}
	return f
}

// applyDefers flows the recorded defer calls through a fact — the state
// after the function's deferred unlocks run. Deferred closures are scanned
// for direct mutex operations too (the `defer func() { mu.Unlock() }()`
// idiom).
func (w *lockWorld) applyDefers(lat *lockLattice, g *flow.Graph, f *lockFact) *lockFact {
	for _, call := range g.Defers {
		if _, _, ok := mutexOp(lat.pkg.Info, call); ok {
			f = lat.applyCall(f, call)
			continue
		}
		if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if inner, ok := n.(*ast.CallExpr); ok {
					if _, _, ok := mutexOp(lat.pkg.Info, inner); ok {
						f = lat.applyCall(f, inner)
					}
				}
				return true
			})
			continue
		}
		if lat.summaries {
			f = lat.applyCall(f, call)
		}
	}
	return f
}

// ---- per-function analysis for the checks ----

// lockAnalysis is one function's solved dataflow, replayable node by node.
type lockAnalysis struct {
	pkg   *Pkg
	graph *flow.Graph
	lat   *lockLattice
	facts map[*flow.Block]*lockFact
}

// analyze returns the (cached) lock dataflow for a FuncDecl or FuncLit.
// file is the file containing it (for //zerosum:locked line directives on
// function literals).
func (w *lockWorld) analyze(pkg *Pkg, file *ast.File, fn ast.Node) *lockAnalysis {
	if a, ok := w.analyses[fn]; ok {
		return a
	}
	var body *ast.BlockStmt
	entry := newLockFact()
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
		var requires []sumRef
		if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
			if sum := w.summaries[obj]; sum != nil {
				requires = sum.requires
			}
		}
		entry = w.entryFact(pkg, fn, requires)
	case *ast.FuncLit:
		body = fn.Body
		line := w.p.Fset.Position(fn.Pos()).Line
		if arg, ok := w.fileDirectives(file)[line]["locked"]; ok {
			entry = w.entryFact(pkg, nil, w.requiresOf(pkg, nil, arg))
		}
	}
	g := flow.New(body)
	lat := &lockLattice{w: w, pkg: pkg, entry: entry, summaries: true}
	a := &lockAnalysis{pkg: pkg, graph: g, lat: lat, facts: flow.Solve[*lockFact](g, lat)}
	w.analyses[fn] = a
	return a
}

// eachNode replays the transfer function block by block, handing fn the
// fact in force just before each node executes. Unreachable blocks are
// skipped (no fact can be wrong in code that cannot run).
func (a *lockAnalysis) eachNode(fn func(n ast.Node, fact *lockFact)) {
	for _, b := range a.graph.Blocks {
		fact, ok := a.facts[b]
		if !ok || fact == nil {
			continue
		}
		for _, n := range b.Nodes {
			fn(n, fact)
			fact = a.lat.Transfer(fact, n)
		}
	}
}
