package lint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// SelfTest is the analyzer's own smoke test, runnable from the built binary
// (`zslint -self`): it loads every fixture mini-module under
// <root>/internal/lint/testdata, runs the matching check, and compares the
// diagnostics against the committed expected.txt goldens. This catches an
// analyzer built against a toolchain whose go/types behaves differently —
// each fixture must still produce exactly its known findings and nothing
// else. Returns false (with details on w) when any fixture diverges.
func SelfTest(root string, w io.Writer) (bool, error) {
	fixtures := filepath.Join(root, "internal", "lint", "testdata")
	entries, err := os.ReadDir(fixtures)
	if err != nil {
		return false, fmt.Errorf("lint: self-test fixtures: %w", err)
	}
	byName := make(map[string]Check)
	for _, c := range Checks(Options{ErrcheckScope: []string{""}, ClockScope: []string{""}}) {
		byName[c.Name()] = c
	}
	ok := true
	ran := 0
	for _, e := range entries {
		name := e.Name()
		check := byName[name]
		if check == nil {
			ok = false
			fmt.Fprintf(w, "self-test: testdata/%s matches no check\n", name)
			continue
		}
		dir := filepath.Join(fixtures, name)
		prog, err := Load(dir)
		if err != nil {
			return false, fmt.Errorf("lint: self-test %s: %w", name, err)
		}
		var got strings.Builder
		if err := WriteText(&got, Run(prog, []Check{check})); err != nil {
			return false, err
		}
		want, err := os.ReadFile(filepath.Join(dir, "expected.txt"))
		if err != nil {
			return false, fmt.Errorf("lint: self-test %s: %w", name, err)
		}
		if got.String() != string(want) {
			ok = false
			fmt.Fprintf(w, "self-test: %s diverged\n--- got ---\n%s--- want ---\n%s", name, got.String(), want)
		}
		ran++
	}
	if ran < len(byName) {
		ok = false
		fmt.Fprintf(w, "self-test: %d fixtures for %d checks\n", ran, len(byName))
	}
	return ok, nil
}
