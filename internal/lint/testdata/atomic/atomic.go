// Package atomicfix exercises the atomic-consistency check: a field
// updated through sync/atomic in one place and read plainly in another is
// a data race the schedule may never surface; atomic-everywhere,
// plain-everywhere, and typed-atomic fields are all fine.
package atomicfix

import "sync/atomic"

// stats mixes access modes on hits — the race this check exists for.
type stats struct {
	hits   uint64
	misses uint64
	flips  atomic.Bool
}

// Hit bumps hits atomically.
func (s *stats) Hit() { atomic.AddUint64(&s.hits, 1) }

// Snapshot reads hits plainly while Hit runs concurrently.
func (s *stats) Snapshot() uint64 {
	return s.hits // true positive: plain read of an atomically-written field
}

// Miss and MissCount agree on plain access; no atomics, no finding.
func (s *stats) Miss()             { s.misses++ }
func (s *stats) MissCount() uint64 { return s.misses }

// Flip uses a typed atomic — safe by construction, never flagged.
func (s *stats) Flip() { s.flips.Store(true) }

// consistent is atomic-everywhere: clean.
type consistent struct {
	n int64
}

func (c *consistent) Add() int64 { return atomic.AddInt64(&c.n, 1) }
func (c *consistent) Get() int64 { return atomic.LoadInt64(&c.n) }

// Final reads hits after every writer goroutine joined — justified escape.
func (s *stats) Final() uint64 {
	return s.hits //zerosum:nolock writers joined before this read
}
