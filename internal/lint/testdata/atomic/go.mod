module fixture/atomic

go 1.22
