// Package clock exercises the clock check: raw wall-clock calls versus the
// injected-clock convention and the wallclock opt-out.
package clock

import "time"

// Sampler takes an injected clock, the convention the check protects.
type Sampler struct {
	Now func() time.Time
}

// New wires the default clock in as a value: referencing time.Now without
// calling it is clean.
func New() *Sampler {
	return &Sampler{Now: time.Now}
}

// Bad reads and waits on the wall clock directly.
func (s *Sampler) Bad() time.Time {
	time.Sleep(time.Millisecond) // true positive
	return time.Now()            // true positive
}

// Good goes through the injected clock: clean.
func (s *Sampler) Good() time.Time {
	return s.Now()
}

// Backoff legitimately waits on real external latency.
//
//zerosum:wallclock retry pacing against a real network
func Backoff() {
	time.Sleep(time.Millisecond)
}
