module fixture/clock

go 1.22
