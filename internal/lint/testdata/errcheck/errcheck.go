// Package errcheck exercises the errcheck check: silently dropped errors
// versus the explicit and exempted forms.
package errcheck

import (
	"fmt"
	"strings"
)

func mayFail() error { return nil }

// Bad drops errors silently.
func Bad() {
	mayFail()    // true positive: bare call statement
	go mayFail() // true positive: go statement
}

// Good handles, acknowledges, or uses exempted sinks.
func Good() error {
	_ = mayFail() // explicit discard: clean
	if err := mayFail(); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("in-memory") // strings.Builder: clean
	fmt.Fprintf(&b, "x=%d", 1) // Fprintf into a memory writer: clean
	defer func() { _ = b }()   // keep b used
	defer mayFail()            // deferred close-on-exit convention: clean
	return nil
}
