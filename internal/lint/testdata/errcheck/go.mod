module fixture/errcheck

go 1.22
