module fixture/goleak

go 1.22
