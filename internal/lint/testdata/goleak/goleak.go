// Package goleak exercises the goleak check: goroutines without a stop
// mechanism versus governed and justified-detached ones.
package goleak

import "context"

// Bad spawns a goroutine nothing can stop.
func Bad() {
	go func() { // true positive: no lifecycle reference
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// GoodDone is governed by a done channel.
func GoodDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

// GoodCtx passes a context at spawn time.
func GoodCtx(c context.Context, run func(context.Context)) {
	go run(c)
}

// Detached is a justified fire-and-forget goroutine.
func Detached() {
	//zerosum:detached one-shot best-effort flush on exit
	go func() {
		println("bye")
	}()
}

type worker struct {
	stop chan struct{}
}

func (w *worker) loop() { <-w.stop }

// Start spawns a named method whose body references the stop channel.
func (w *worker) Start() {
	go w.loop()
}
