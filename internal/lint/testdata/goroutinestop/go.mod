module fixture/goroutinestop

go 1.22
