// Package goroutinestop exercises the flow-based goroutine lifecycle
// check: a spawned body must have some path from entry to exit. Bounded
// loops, ok-checked receives, range-over-channel and select-with-return
// all terminate; for {} and unconditional receive loops never do.
package goroutinestop

// Spin spawns a goroutine with no path to return.
func Spin() {
	go func() { // true positive: for {} has no exit
		for {
		}
	}()
}

// Drain receives forever with no close/ok check.
func Drain(ch chan int) {
	go func() { // true positive: the loop never breaks
		for {
			<-ch
		}
	}()
}

// WithDone exits through the select's return case.
func WithDone(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Consume ends when the channel closes: range terminates.
func Consume(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Burst runs a bounded loop; the condition can go false.
func Burst() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

// worker blocks until told to stop, then returns.
func worker(done chan struct{}) {
	<-done
}

// SpawnWorker resolves the named body through the module.
func SpawnWorker(done chan struct{}) {
	go worker(done)
}

// spin never returns; the call site is caught through the module body.
func spin() {
	for {
	}
}

// SpawnSpin spawns the unstoppable named function.
func SpawnSpin() {
	go spin() // true positive: resolved body has no exit
}

// SpawnFn cannot see fn's body; passing a lifecycle value satisfies the
// fallback convention.
func SpawnFn(fn func(chan struct{}), done chan struct{}) {
	go fn(done)
}

// SpawnFnBad cannot see fn's body and passes nothing governable.
func SpawnFnBad(fn func()) {
	go fn() // true positive: opaque callee, no lifecycle argument
}

// Detached opts out with a reason.
func Detached() {
	//zerosum:detached process-lifetime ticker, dies with the process
	go func() {
		for {
		}
	}()
}
