module fixture/guardedby

go 1.22
