// Package guardedby exercises the guardedby check: annotated fields
// accessed with and without their lock, across the idioms the dataflow
// engine must understand — defer-unlock, early-return unlock, branch
// release, RLock reads, helper-acquired locks, //zerosum:locked
// preconditions, and the class-form sharded pattern.
package guardedby

import "sync"

// Counter guards n with its own mutex.
type Counter struct {
	mu sync.Mutex
	n  int //zerosum:guardedby mu
}

// IncBad writes n without holding mu.
func (c *Counter) IncBad() {
	c.n++ // true positive: write without the lock
}

// IncGood locks around the write.
func (c *Counter) IncGood() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// IncDefer uses the defer-unlock idiom; the lock is held until return.
func (c *Counter) IncDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// GetEarly unlocks on the early-return path and re-reads only while held.
func (c *Counter) GetEarly(skip bool) int {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return -1
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// BranchBad releases on one branch, so the join holds nothing for sure.
func (c *Counter) BranchBad(flush bool) int {
	c.mu.Lock()
	if flush {
		c.mu.Unlock()
	}
	v := c.n // true positive: not held on the flush path
	if !flush {
		c.mu.Unlock()
	}
	return v
}

// acquire and release give callers the lock through their summaries.
func (c *Counter) acquire() { c.mu.Lock() }
func (c *Counter) release() { c.mu.Unlock() }

// IncViaHelper relies on acquire's one-level summary.
func (c *Counter) IncViaHelper() {
	c.acquire()
	c.n++
	c.release()
}

// incLocked runs with mu already held by the caller.
//
//zerosum:locked mu callers batch increments under one acquisition
func (c *Counter) incLocked() {
	c.n += 2
}

// Batch holds the lock across the locked helper.
func (c *Counter) Batch() {
	c.mu.Lock()
	c.incLocked()
	c.mu.Unlock()
}

// BatchBad calls the locked helper without the lock.
func (c *Counter) BatchBad() {
	c.incLocked() // true positive: declared precondition not met
}

// Snapshot reads n after all writers quiesced — justified escape.
func (c *Counter) Snapshot() int {
	return c.n //zerosum:nolock single-threaded at shutdown
}

// Table guards m with an RWMutex: reads need shared, writes exclusive.
type Table struct {
	rw sync.RWMutex
	m  map[string]int //zerosum:guardedby rw
}

// LookupGood reads under the read lock.
func (t *Table) LookupGood(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// StoreBad writes under the read lock: shared mode cannot write.
func (t *Table) StoreBad(k string, v int) {
	t.rw.RLock()
	t.m[k] = v // true positive: write needs the exclusive lock
	t.rw.RUnlock()
}

// StoreGood writes under the write lock.
func (t *Table) StoreGood(k string, v int) {
	t.rw.Lock()
	t.m[k] = v
	t.rw.Unlock()
}

// shard is the sharded-state pattern: entry fields are guarded by the
// owning shard's mutex, which the entry cannot name as a sibling — the
// annotation names the lock class instead.
type shard struct {
	mu   sync.Mutex
	ents map[string]*entry
}

type entry struct {
	hits int //zerosum:guardedby shard.mu
}

// bump mutates an entry under its shard's lock.
func (s *shard) bump(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.ents[k]
	e.hits++
}

// peekBad touches an entry with no shard lock held anywhere.
func (s *shard) peekBad(k string) int {
	e := s.ents[k]
	return e.hits // true positive: no shard.mu instance held
}

// each runs fn for every entry with the shard lock held.
func (s *shard) each(fn func(*entry)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.ents {
		fn(e)
	}
}

// Total sums hits; the closure inherits the lock via the line directive.
func (s *shard) Total() int {
	n := 0
	//zerosum:locked shard.mu each invokes fn under the shard lock
	s.each(func(e *entry) {
		n += e.hits
	})
	return n
}

// stale demonstrates annotation validation: the named sibling is missing.
type stale struct {
	mu  sync.Mutex
	val int //zerosum:guardedby mux
}
