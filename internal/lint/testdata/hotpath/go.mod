module fixture/hotpath

go 1.22
