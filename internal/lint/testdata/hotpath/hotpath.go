// Package hotpath exercises the hotpath check: forbidden operations at
// depth 0, a violation one level down, and clean annotated functions.
package hotpath

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

var mu sync.Mutex

// Hot violates every hot-path rule at depth 0 and one at depth 1.
//
//zerosum:hotpath
func Hot() {
	fmt.Println("steady-state formatting") // true positive: fmt call
	_ = time.Now()                         // true positive: wall clock
	mu.Lock()                              // true positive: mutex
	mu.Unlock()
	go func() {}() // true positive: goroutine spawn
	helper()       // true positive one level down (time.Sleep inside)
}

func helper() {
	time.Sleep(time.Millisecond)
}

// Clean is annotated and clean: plain arithmetic, and fmt.Errorf on the
// failure path is allowed.
//
//zerosum:hotpath
func Clean(a, b int) error {
	if add(a, b) < 0 {
		return fmt.Errorf("negative sum of %d and %d", a, b)
	}
	return nil
}

func add(a, b int) int { return a + b }

// cold is a declared off-steady-state helper; callers stay clean.
//
//zerosum:coldpath
func cold() { fmt.Println("rate-limited diagnostics") }

// ColdCaller is hot but only calls a coldpath helper: clean.
//
//zerosum:hotpath
func ColdCaller() { cold() }

// Slurper is hot and reaches for the per-call-allocating conveniences the
// buffered read/parse layer exists to avoid.
//
//zerosum:hotpath
func Slurper(raw []byte) int {
	parts := strings.Fields(string(raw))       // true positive: allocates the field slice
	data, _ := os.ReadFile("/proc/stat")       // true positive: open+alloc per call
	all, _ := io.ReadAll(bytes.NewReader(raw)) // true positive: unbounded alloc
	return len(parts) + len(data) + len(all)
}
