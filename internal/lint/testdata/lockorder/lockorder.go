// Package lockorder exercises the lockorder check: two code paths taking
// the same pair of locks in opposite orders are a deadlock waiting for the
// right schedule; consistent nesting is fine, and one-level helper
// summaries contribute edges too.
package lockorder

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex
	e sync.Mutex
)

// AB nests a then b.
func AB() {
	a.Lock()
	b.Lock() // true positive witness: a -> b here, b -> a in BA
	b.Unlock()
	a.Unlock()
}

// BA nests b then a: the reverse of AB — a cycle.
func BA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

// AC nests a then c, the only order c ever sees: no finding.
func AC() {
	a.Lock()
	c.Lock()
	c.Unlock()
	a.Unlock()
}

// COnly takes c alone; single locks order nothing.
func COnly() {
	c.Lock()
	c.Unlock()
}

// lockE gives callers e through its summary.
func lockE()   { e.Lock() }
func unlockE() { e.Unlock() }

// DE orders d before e through the helper.
func DE() {
	d.Lock()
	lockE()
	unlockE()
	d.Unlock()
}

// ED orders e before d directly: cycles with DE's summary edge.
func ED() {
	e.Lock()
	d.Lock()
	d.Unlock()
	e.Unlock()
}

// Shutdown nests c then a — the reverse of AC — but runs single-threaded
// at process exit, so the edge is suppressed.
func Shutdown() {
	c.Lock()
	a.Lock() //zerosum:nolock single-threaded shutdown path
	a.Unlock()
	c.Unlock()
}
