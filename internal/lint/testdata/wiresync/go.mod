module fixture/wiresync

go 1.22
