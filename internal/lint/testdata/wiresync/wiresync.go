// Package wiresync exercises the wiresync check: a drifted codec pair, a
// synchronized one, an opted-out field, and an orphaned group.
package wiresync

import "encoding/binary"

// Msg drifted: C is decoded but the encoder was never updated.
type Msg struct {
	A uint64
	B uint64
	C uint64 // true positive: decoder-only
	D uint64 //zerosum:nowire derived from the frame length, never on the wire
}

//zerosum:wire-encode msg
func Encode(dst []byte, m *Msg) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.A)
	dst = binary.LittleEndian.AppendUint64(dst, m.B)
	return dst
}

//zerosum:wire-decode msg
func Decode(b []byte) Msg {
	var m Msg
	m.A = binary.LittleEndian.Uint64(b)
	m.B = binary.LittleEndian.Uint64(b[8:])
	m.C = binary.LittleEndian.Uint64(b[16:])
	return m
}

// Pair is fully synchronized: clean.
type Pair struct {
	X uint32
	Y uint32
}

//zerosum:wire-encode pair
func EncodePair(dst []byte, p Pair) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, p.X)
	dst = binary.LittleEndian.AppendUint32(dst, p.Y)
	return dst
}

//zerosum:wire-decode pair
func DecodePair(b []byte) Pair {
	return Pair{X: binary.LittleEndian.Uint32(b), Y: binary.LittleEndian.Uint32(b[4:])}
}

// EncodeOrphan has no decoding counterpart: true positive.
//
//zerosum:wire-encode orphan
func EncodeOrphan(dst []byte) []byte { return dst }
