package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// wiresyncCheck keeps the aggregation wire format's encoder and decoder in
// lockstep. Functions annotated //zerosum:wire-encode <group> and
// //zerosum:wire-decode <group> form a codec pair; every exported,
// non-embedded field of an exported module struct that either side touches
// must be referenced by both sides, so adding a field to a wire struct and
// updating only one side fails `make check` instead of silently producing
// frames the other end misreads. A field that is deliberately carried
// elsewhere (e.g. in the frame header) opts out with //zerosum:nowire <why>
// on the field.
type wiresyncCheck struct{}

func (wiresyncCheck) Name() string { return "wiresync" }

// wireStruct is an exported module struct whose fields a codec may touch.
type wireStruct struct {
	pkg    *Pkg
	name   string
	fields []wireField // named fields in declaration order
}

type wireField struct {
	v    *types.Var
	decl *ast.Field
	name string
}

type wireGroup struct {
	name    string
	encoder []*FuncSource
	decoder []*FuncSource
}

func (c wiresyncCheck) Run(p *Program) []Diagnostic {
	var diags []Diagnostic
	structOf := c.indexStructs(p)

	groups := make(map[string]*wireGroup)
	var names []string
	ensure := func(name string) *wireGroup {
		g := groups[name]
		if g == nil {
			g = &wireGroup{name: name}
			groups[name] = g
			names = append(names, name)
		}
		return g
	}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				dirs := directives(fd.Doc)
				if group, ok := dirs["wire-encode"]; ok {
					if group == "" {
						diags = append(diags, p.Diag("wiresync", fd.Pos(),
							"//zerosum:wire-encode on %s needs a group name", funcDisplayName(fd)))
					} else {
						g := ensure(group)
						g.encoder = append(g.encoder, &FuncSource{Pkg: pkg, Decl: fd})
					}
				}
				if group, ok := dirs["wire-decode"]; ok {
					if group == "" {
						diags = append(diags, p.Diag("wiresync", fd.Pos(),
							"//zerosum:wire-decode on %s needs a group name", funcDisplayName(fd)))
					} else {
						g := ensure(group)
						g.decoder = append(g.decoder, &FuncSource{Pkg: pkg, Decl: fd})
					}
				}
			}
		}
	}

	sort.Strings(names)
	for _, name := range names {
		g := groups[name]
		switch {
		case len(g.encoder) == 0:
			diags = append(diags, p.Diag("wiresync", g.decoder[0].Decl.Pos(),
				"wire group %q has a decoder but no function annotated //zerosum:wire-encode %s", name, name))
			continue
		case len(g.decoder) == 0:
			diags = append(diags, p.Diag("wiresync", g.encoder[0].Decl.Pos(),
				"wire group %q has an encoder but no function annotated //zerosum:wire-decode %s", name, name))
			continue
		}
		enc := fieldRefs(g.encoder, structOf)
		dec := fieldRefs(g.decoder, structOf)
		diags = append(diags, c.compare(p, name, enc, dec, structOf)...)
	}
	return diags
}

// compare reports every exported field of every struct the group touches
// that is not referenced on both sides.
func (c wiresyncCheck) compare(p *Program, group string, enc, dec map[*types.Var]bool, structOf map[*types.Var]*wireStruct) []Diagnostic {
	touched := make(map[*wireStruct]bool)
	for v := range enc {
		if ws := structOf[v]; ws != nil {
			touched[ws] = true
		}
	}
	for v := range dec {
		if ws := structOf[v]; ws != nil {
			touched[ws] = true
		}
	}
	var structs []*wireStruct
	for ws := range touched {
		structs = append(structs, ws)
	}
	sort.Slice(structs, func(i, j int) bool {
		if structs[i].pkg.Path != structs[j].pkg.Path {
			return structs[i].pkg.Path < structs[j].pkg.Path
		}
		return structs[i].name < structs[j].name
	})

	var diags []Diagnostic
	for _, ws := range structs {
		for _, f := range ws.fields {
			if !ast.IsExported(f.name) {
				continue
			}
			if _, skip := fieldDirectives(f.decl)["nowire"]; skip {
				continue
			}
			inEnc, inDec := enc[f.v], dec[f.v]
			var what string
			switch {
			case inEnc && inDec:
				continue
			case inEnc:
				what = "referenced by the encoder but not the decoder"
			case inDec:
				what = "referenced by the decoder but not the encoder"
			default:
				what = "not referenced by the encoder or the decoder"
			}
			diags = append(diags, p.Diag("wiresync", f.decl.Pos(),
				"wire group %q: field %s.%s is %s; wire it through both sides or annotate the field //zerosum:nowire <why>",
				group, ws.name, f.name, what))
		}
	}
	return diags
}

// indexStructs maps every named field of every exported module struct to its
// declaring struct.
func (c wiresyncCheck) indexStructs(p *Program) map[*types.Var]*wireStruct {
	structOf := make(map[*types.Var]*wireStruct)
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				ws := &wireStruct{pkg: pkg, name: ts.Name.Name}
				for _, field := range st.Fields.List {
					for _, name := range field.Names { // embedded fields have no names and stay out
						v, ok := pkg.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						ws.fields = append(ws.fields, wireField{v: v, decl: field, name: name.Name})
						structOf[v] = ws
					}
				}
				return true
			})
		}
	}
	return structOf
}

// fieldRefs collects every struct field a set of functions references, via
// selectors (including promoted fields), keyed composite literals, or —
// for unkeyed composite literals — all fields of the literal's struct type.
func fieldRefs(fns []*FuncSource, structOf map[*types.Var]*wireStruct) map[*types.Var]bool {
	refs := make(map[*types.Var]bool)
	for _, fn := range fns {
		info := fn.Pkg.Info
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := info.Uses[n].(*types.Var); ok && v.IsField() {
					refs[v] = true
				}
			case *ast.CompositeLit:
				if len(n.Elts) == 0 {
					return true
				}
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); keyed {
					return true // keys land in info.Uses above
				}
				// Unkeyed literal: positional initialization touches every field.
				tv, ok := info.Types[n]
				if !ok {
					return true
				}
				if st, ok := tv.Type.Underlying().(*types.Struct); ok {
					for i := 0; i < st.NumFields(); i++ {
						refs[st.Field(i)] = true
					}
				}
			}
			return true
		})
	}
	// Limit to fields the check knows how to attribute.
	for v := range refs {
		if structOf[v] == nil {
			delete(refs, v)
		}
	}
	return refs
}
