// Package mpi simulates the Message Passing Interface surface ZeroSum
// integrates with: communicator rank/size discovery (MPI_Initialized,
// MPI_Comm_rank/size), point-to-point sends and receives with PMPI-style
// interception for byte accounting (paper §3.1.3, Figure 5's heatmap), and
// the unbound MPI progress/helper thread that shows up as an "Other" LWP in
// the paper's tables.
//
// Ranks may live on one kernel (one node) or across several kernels sharing
// one event queue (multi-node jobs); message timing uses a latency +
// bandwidth model with distinct intra- and inter-node parameters.
package mpi

import (
	"fmt"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// NetParams models the interconnect.
type NetParams struct {
	IntraNodeLatency sim.Time
	InterNodeLatency sim.Time
	IntraNodeBW      float64 // bytes/sec
	InterNodeBW      float64
	// NICBytesPerSec caps each node's injection/ejection bandwidth;
	// concurrent inter-node transfers through one NIC queue behind each
	// other, which is how "noisy neighbours" (Bhatele et al., cited in
	// the paper's motivation) turn into latency variability. 0 disables
	// the model.
	NICBytesPerSec float64
}

// DefaultNet returns Slingshot-flavoured defaults.
func DefaultNet() NetParams {
	return NetParams{
		IntraNodeLatency: 800 * sim.Nanosecond,
		InterNodeLatency: 2 * sim.Microsecond,
		IntraNodeBW:      80e9,
		InterNodeBW:      25e9,
	}
}

// P2PKind distinguishes the direction of an intercepted call.
type P2PKind int

// Directions seen by the interception hook.
const (
	OpSend P2PKind = iota
	OpRecv
)

// P2PHook is the PMPI-style wrapper callback ZeroSum registers: it fires on
// every point-to-point call with the peer rank and payload size.
type P2PHook func(kind P2PKind, peer int, bytes uint64)

// World is a simulated MPI_COMM_WORLD.
type World struct {
	Q    *sim.Queue
	Net  NetParams
	size int

	ranks []*Rank
	// recvMatrix[dst][src] accumulates bytes received, the Figure 5 data.
	recvMatrix [][]uint64
	// nicBusy serializes inter-node transfers through each node's NIC
	// (keyed by kernel).
	nicBusy map[*sched.Kernel]sim.Time
}

// NewWorld creates a communicator of the given size.
func NewWorld(q *sim.Queue, size int, net NetParams) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	m := make([][]uint64, size)
	for i := range m {
		m[i] = make([]uint64, size)
	}
	return &World{Q: q, Net: net, size: size, ranks: make([]*Rank, size),
		recvMatrix: m, nicBusy: make(map[*sched.Kernel]sim.Time)}
}

// Size returns the communicator size.
func (w *World) Size() int { return w.size }

// Rank returns the attached rank r, or nil.
func (w *World) Rank(r int) *Rank {
	if r < 0 || r >= w.size {
		return nil
	}
	return w.ranks[r]
}

// RecvMatrix returns the rank x rank received-bytes matrix
// (matrix[dst][src]); the caller must not mutate it.
func (w *World) RecvMatrix() [][]uint64 { return w.recvMatrix }

// TotalBytes returns the sum of all received bytes.
func (w *World) TotalBytes() uint64 {
	var total uint64
	for _, row := range w.recvMatrix {
		for _, v := range row {
			total += v
		}
	}
	return total
}

// Rank is one MPI process's communicator endpoint.
type Rank struct {
	World *World
	ID    int
	K     *sched.Kernel
	Proc  *sched.Process

	initialized bool
	hooks       []P2PHook
	inbox       map[int]*sched.Gate // keyed by source rank
	pendingRecv map[int][]uint64    // byte sizes queued per source
}

// Attach binds rank id to a process on a kernel. It must be called once per
// rank before any communication.
func (w *World) Attach(id int, k *sched.Kernel, p *sched.Process) *Rank {
	if id < 0 || id >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", id, w.size))
	}
	if w.ranks[id] != nil {
		panic(fmt.Sprintf("mpi: rank %d attached twice", id))
	}
	r := &Rank{
		World:       w,
		ID:          id,
		K:           k,
		Proc:        p,
		inbox:       make(map[int]*sched.Gate),
		pendingRecv: make(map[int][]uint64),
	}
	w.ranks[id] = r
	return r
}

// Init marks MPI as initialized for this rank (what MPI_Init does); the
// monitor polls Initialized before reading rank/size, as ZeroSum's
// asynchronous thread does.
func (r *Rank) Init() { r.initialized = true }

// Initialized reports whether MPI_Init has run.
func (r *Rank) Initialized() bool { return r.initialized }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.World.size }

// Hostname returns the node name this rank runs on.
func (r *Rank) Hostname() string { return r.K.Hostname() }

// OnP2P registers an interception hook (ZeroSum's MPI wrapper).
func (r *Rank) OnP2P(h P2PHook) { r.hooks = append(r.hooks, h) }

func (r *Rank) fire(kind P2PKind, peer int, bytes uint64) {
	for _, h := range r.hooks {
		h(kind, peer, bytes)
	}
}

func (r *Rank) gateFor(src int) *sched.Gate {
	g, ok := r.inbox[src]
	if !ok {
		g = r.K.NewGate()
		r.inbox[src] = g
	}
	return g
}

// transferTime computes message delivery delay between two ranks,
// including queueing behind other traffic on either endpoint's NIC for
// inter-node messages.
func (w *World) transferTime(src, dst *Rank, bytes uint64) sim.Time {
	sameNode := src.K == dst.K
	lat := w.Net.InterNodeLatency
	bw := w.Net.InterNodeBW
	if sameNode {
		lat = w.Net.IntraNodeLatency
		bw = w.Net.IntraNodeBW
	}
	wire := lat
	if bw > 0 {
		wire += sim.Time(float64(bytes) / bw * float64(sim.Second))
	}
	if sameNode || w.Net.NICBytesPerSec <= 0 {
		return wire
	}
	// NIC serialization: the transfer occupies both endpoints' NICs for
	// bytes/NICbw; it starts when both are free.
	now := w.Q.Now()
	start := now
	if b := w.nicBusy[src.K]; b > start {
		start = b
	}
	if b := w.nicBusy[dst.K]; b > start {
		start = b
	}
	occupy := sim.Time(float64(bytes) / w.Net.NICBytesPerSec * float64(sim.Second))
	end := start + occupy
	w.nicBusy[src.K] = end
	w.nicBusy[dst.K] = end
	total := end - now + lat
	if total < wire {
		total = wire
	}
	return total
}

// Send transmits bytes to rank dst: accounting fires immediately (the PMPI
// wrapper runs in the caller), and delivery is scheduled after the
// latency/bandwidth delay. It is asynchronous, like an eager-protocol
// MPI_Send that returns once the payload is buffered.
func (r *Rank) Send(dst int, bytes uint64) error {
	if dst < 0 || dst >= r.World.size {
		return fmt.Errorf("mpi: send to invalid rank %d (size %d)", dst, r.World.size)
	}
	peer := r.World.Rank(dst)
	if peer == nil {
		return fmt.Errorf("mpi: rank %d not attached yet; attach every rank before starting tasks", dst)
	}
	r.fire(OpSend, dst, bytes)
	delay := r.World.transferTime(r, peer, bytes)
	src := r.ID
	r.World.Q.After(delay, func(sim.Time) {
		peer.pendingRecv[src] = append(peer.pendingRecv[src], bytes)
		peer.gateFor(src).Signal(1)
	})
	return nil
}

// SendAction wraps Send as a behavior action.
func (r *Rank) SendAction(dst int, bytes uint64) sched.Action {
	return sched.Call{Fn: func(sim.Time) {
		if err := r.Send(dst, bytes); err != nil {
			panic(err)
		}
	}}
}

// RecvAction blocks the calling task until a message from src arrives, then
// records the received bytes (the receive-side PMPI wrapper + the Figure 5
// matrix).
func (r *Rank) RecvAction(src int) sched.Action {
	return sched.WaitGate{G: r.gateFor(src)}
}

// CompleteRecv pops the delivered message accounting for one receive. It is
// invoked via a Call action immediately after RecvAction unblocks.
func (r *Rank) CompleteRecv(src int) sched.Action {
	return sched.Call{Fn: func(sim.Time) {
		q := r.pendingRecv[src]
		if len(q) == 0 {
			return
		}
		bytes := q[0]
		r.pendingRecv[src] = q[1:]
		r.fire(OpRecv, src, bytes)
		r.World.recvMatrix[r.ID][src] += bytes
	}}
}

// RecvActions is the conventional pair: wait for the message, then account
// it.
func (r *Rank) RecvActions(src int) []sched.Action {
	return []sched.Action{r.RecvAction(src), r.CompleteRecv(src)}
}

// SpawnProgressThread creates the MPI helper LWP real MPI implementations
// run: unbound (full machine cpuset minus nothing — job schedulers do not
// confine it), almost always asleep, waking rarely. It appears in ZeroSum
// reports as an "Other" thread with a huge affinity list and a handful of
// context switches, exactly like LWP 18385 in the paper's tables.
func (r *Rank) SpawnProgressThread(lifetime sim.Time) *sched.Task {
	aff := r.K.Machine.UsableSet(0)
	k := r.K
	deadline := k.Now() + lifetime
	sleeping := false
	behavior := sched.BehaviorFunc(func(t *sched.Task, now sim.Time) sched.Action {
		if now >= deadline {
			return nil
		}
		// Alternate long sleeps with slivers of progress work.
		sleeping = !sleeping
		if sleeping {
			return sched.Sleep{D: 500 * sim.Millisecond}
		}
		return sched.Compute{Work: 20 * sim.Microsecond, SysFrac: 0.9}
	})
	return k.NewTask(r.Proc, "cxi_progress", behavior,
		sched.WithKind(sched.KindOther),
		sched.WithAffinity(aff))
}

// Barrier returns a communicator-wide barrier action set. All ranks must
// use the same *sched.Barrier; create it once via NewBarrier.
func (w *World) NewBarrier(k *sched.Kernel) *sched.Barrier {
	return k.NewBarrier(w.size)
}

// NeighborExchange returns the action list for one halo-exchange step with
// the given neighbour offsets (e.g. ±1, ±16 for a 2D decomposition):
// sends to every neighbour, then receives from each. This is the
// communication skeleton of the gyrokinetic PIC code behind Figure 5.
func (r *Rank) NeighborExchange(offsets []int, bytes uint64) []sched.Action {
	var acts []sched.Action
	size := r.World.size
	for _, off := range offsets {
		dst := ((r.ID+off)%size + size) % size
		if dst == r.ID {
			continue
		}
		acts = append(acts, r.SendAction(dst, bytes))
	}
	for _, off := range offsets {
		src := ((r.ID+off)%size + size) % size
		if src == r.ID {
			continue
		}
		acts = append(acts, r.RecvActions(src)...)
	}
	return acts
}

// CPUSetUnion is a helper for launchers building rank masks.
func CPUSetUnion(sets ...topology.CPUSet) topology.CPUSet {
	var out topology.CPUSet
	for _, s := range sets {
		out = out.Or(s)
	}
	return out
}
