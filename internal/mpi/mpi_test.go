package mpi

import (
	"testing"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// twoRankWorld builds a world with two ranks on one laptop node.
func twoRankWorld(t *testing.T) (*World, *sched.Kernel, [2]*Rank, [2]*sched.Process) {
	t.Helper()
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	w := NewWorld(&q, 2, DefaultNet())
	var ranks [2]*Rank
	var procs [2]*sched.Process
	for i := 0; i < 2; i++ {
		procs[i] = k.NewProcess("app", topology.NewCPUSet(i))
		ranks[i] = w.Attach(i, k, procs[i])
		ranks[i].Init()
	}
	return w, k, ranks, procs
}

func TestRankBasics(t *testing.T) {
	w, _, ranks, _ := twoRankWorld(t)
	if w.Size() != 2 {
		t.Fatal("size")
	}
	if !ranks[0].Initialized() || ranks[0].Size() != 2 {
		t.Fatal("init/size")
	}
	if ranks[0].Hostname() == "" {
		t.Fatal("hostname")
	}
	if w.Rank(5) != nil || w.Rank(-1) != nil {
		t.Fatal("out-of-range rank should be nil")
	}
}

func TestAttachValidation(t *testing.T) {
	w, k, _, procs := twoRankWorld(t)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach should panic")
		}
	}()
	w.Attach(0, k, procs[0])
}

func TestSendRecvAccounting(t *testing.T) {
	w, k, ranks, procs := twoRankWorld(t)
	var sends, recvs []uint64
	ranks[0].OnP2P(func(kind P2PKind, peer int, bytes uint64) {
		if kind == OpSend {
			if peer != 1 {
				t.Errorf("send peer = %d", peer)
			}
			sends = append(sends, bytes)
		}
	})
	ranks[1].OnP2P(func(kind P2PKind, peer int, bytes uint64) {
		if kind == OpRecv {
			if peer != 0 {
				t.Errorf("recv peer = %d", peer)
			}
			recvs = append(recvs, bytes)
		}
	})
	acts := []sched.Action{ranks[0].SendAction(1, 1<<20), sched.Compute{Work: sim.Millisecond}}
	k.NewTask(procs[0], "sender", sched.Seq(acts...))
	racts := append([]sched.Action{sched.Compute{Work: sim.Millisecond}}, ranks[1].RecvActions(0)...)
	k.NewTask(procs[1], "receiver", sched.Seq(racts...))
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if len(sends) != 1 || sends[0] != 1<<20 {
		t.Fatalf("send hook: %v", sends)
	}
	if len(recvs) != 1 || recvs[0] != 1<<20 {
		t.Fatalf("recv hook: %v", recvs)
	}
	if w.RecvMatrix()[1][0] != 1<<20 {
		t.Fatalf("matrix[1][0] = %d", w.RecvMatrix()[1][0])
	}
	if w.TotalBytes() != 1<<20 {
		t.Fatalf("total = %d", w.TotalBytes())
	}
}

func TestSendBeforeRecvCredits(t *testing.T) {
	// An eager send that completes delivery before the receiver posts the
	// recv must not deadlock (gate credits).
	w, k, ranks, procs := twoRankWorld(t)
	k.NewTask(procs[0], "sender", sched.Seq(
		ranks[0].SendAction(1, 4096),
		sched.Compute{Work: sim.Millisecond},
	))
	late := append([]sched.Action{sched.Compute{Work: 500 * sim.Millisecond}}, ranks[1].RecvActions(0)...)
	k.NewTask(procs[1], "receiver", sched.Seq(late...))
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if w.RecvMatrix()[1][0] != 4096 {
		t.Fatal("late recv lost the message")
	}
}

func TestSendToInvalidRank(t *testing.T) {
	_, _, ranks, _ := twoRankWorld(t)
	if err := ranks[0].Send(7, 10); err == nil {
		t.Fatal("invalid destination should error")
	}
}

func TestTransferTimeIntraVsInter(t *testing.T) {
	var q sim.Queue
	mA := topology.Laptop4Core()
	mB := topology.Laptop4Core()
	kA := sched.NewKernel(mA, &q, sim.NewRNG(1), sched.Params{})
	kB := sched.NewKernel(mB, &q, sim.NewRNG(2), sched.Params{})
	w := NewWorld(&q, 3, DefaultNet())
	pA0 := kA.NewProcess("a0", topology.NewCPUSet(0))
	pA1 := kA.NewProcess("a1", topology.NewCPUSet(1))
	pB0 := kB.NewProcess("b0", topology.NewCPUSet(0))
	r0 := w.Attach(0, kA, pA0)
	r1 := w.Attach(1, kA, pA1)
	r2 := w.Attach(2, kB, pB0)
	intra := w.transferTime(r0, r1, 1<<20)
	inter := w.transferTime(r0, r2, 1<<20)
	if intra >= inter {
		t.Fatalf("intra %v should beat inter %v", intra, inter)
	}
}

func TestNeighborExchangeMatrixShape(t *testing.T) {
	// 8 ranks in a ring exchanging with ±1: the recv matrix must be
	// band-diagonal (wrapping), i.e. nonzero exactly at dst = src±1 mod n.
	m := topology.Frontier()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	const n = 8
	w := NewWorld(&q, n, DefaultNet())
	// Attach every rank before starting any task: sends at t=0 must find
	// their peers.
	var rs [n]*Rank
	var ps [n]*sched.Process
	for i := 0; i < n; i++ {
		ps[i] = k.NewProcess("pic", topology.NewCPUSet(1+i))
		rs[i] = w.Attach(i, k, ps[i])
		rs[i].Init()
	}
	for i := 0; i < n; i++ {
		acts := rs[i].NeighborExchange([]int{-1, 1}, 1000)
		acts = append(acts, sched.Compute{Work: sim.Millisecond})
		k.NewTask(ps[i], "pic", sched.Seq(acts...))
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	mat := w.RecvMatrix()
	for d := 0; d < n; d++ {
		for s := 0; s < n; s++ {
			want := uint64(0)
			if s == (d+1)%n || s == (d+n-1)%n {
				want = 1000
			}
			if mat[d][s] != want {
				t.Fatalf("matrix[%d][%d] = %d, want %d", d, s, mat[d][s], want)
			}
		}
	}
}

func TestProgressThreadShape(t *testing.T) {
	// The helper thread must be unbound (huge affinity), mostly idle, with
	// a small number of context switches — the "Other" row of the tables.
	m := topology.Frontier()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	w := NewWorld(&q, 1, DefaultNet())
	p := k.NewProcess("app", topology.RangeCPUSet(1, 7))
	r := w.Attach(0, k, p)
	k.NewTask(p, "app", sched.Seq(sched.Compute{Work: 3 * sim.Second}))
	helper := r.SpawnProgressThread(3 * sim.Second)
	if err := k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if got := helper.Affinity.Count(); got != m.UsableSet(0).Count() {
		t.Fatalf("helper affinity %d PUs, want unbound %d", got, m.UsableSet(0).Count())
	}
	busy := (helper.UTime + helper.STime).Seconds()
	if busy > 0.01 {
		t.Fatalf("helper used %vs CPU, want ~idle", busy)
	}
	if helper.VCtx == 0 || helper.VCtx > 100 {
		t.Fatalf("helper vctx = %d, want a handful", helper.VCtx)
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero size should panic")
		}
	}()
	var q sim.Queue
	NewWorld(&q, 0, DefaultNet())
}

func TestNICContentionSerializesTransfers(t *testing.T) {
	// Two nodes; ranks 1 and 2 both send 100 MB to rank 0 at the same
	// instant. With a 10 GB/s NIC the second transfer queues behind the
	// first at rank 0's NIC.
	var q sim.Queue
	mA := topology.Laptop4Core()
	mB := topology.Laptop4Core()
	kA := sched.NewKernel(mA, &q, sim.NewRNG(1), sched.Params{})
	kB := sched.NewKernel(mB, &q, sim.NewRNG(2), sched.Params{})
	net := DefaultNet()
	net.InterNodeBW = 1e12 // wire not the bottleneck
	net.NICBytesPerSec = 10e9
	w := NewWorld(&q, 3, net)
	p0 := kA.NewProcess("r0", topology.NewCPUSet(0))
	p1 := kB.NewProcess("r1", topology.NewCPUSet(0))
	p2 := kB.NewProcess("r2", topology.NewCPUSet(1))
	r0 := w.Attach(0, kA, p0)
	r1 := w.Attach(1, kB, p1)
	r2 := w.Attach(2, kB, p2)
	const msg = 100 << 20 // 100 MB -> 10 ms on the NIC
	k := kA
	acts := []sched.Action{}
	acts = append(acts, r0.RecvActions(1)...)
	acts = append(acts, r0.RecvActions(2)...)
	acts = append(acts, sched.Compute{Work: sim.Millisecond})
	recvDone := sim.Time(0)
	acts = append(acts, sched.Call{Fn: func(now sim.Time) { recvDone = now }})
	k.NewTask(p0, "recv", sched.Seq(acts...))
	kB.NewTask(p1, "send1", sched.Seq(r1.SendAction(0, msg), sched.Compute{Work: sim.Millisecond}))
	kB.NewTask(p2, "send2", sched.Seq(r2.SendAction(0, msg), sched.Compute{Work: sim.Millisecond}))
	if err := runQueue(&q, []*sched.Kernel{kA, kB}); err != nil {
		t.Fatal(err)
	}
	// Serialized: ~10ms + ~10ms (+ latency) before both receives land.
	if got := recvDone.Seconds(); got < 0.020 || got > 0.035 {
		t.Fatalf("both receives done at %vs, want ~0.021s (serialized NICs)", got)
	}
	// Without the NIC model the same exchange overlaps fully.
	_ = r0
}

func TestNICDisabledOverlaps(t *testing.T) {
	var q sim.Queue
	mA := topology.Laptop4Core()
	mB := topology.Laptop4Core()
	kA := sched.NewKernel(mA, &q, sim.NewRNG(1), sched.Params{})
	kB := sched.NewKernel(mB, &q, sim.NewRNG(2), sched.Params{})
	net := DefaultNet()
	net.InterNodeBW = 10e9
	net.NICBytesPerSec = 0
	w := NewWorld(&q, 3, net)
	p0 := kA.NewProcess("r0", topology.NewCPUSet(0))
	p1 := kB.NewProcess("r1", topology.NewCPUSet(0))
	p2 := kB.NewProcess("r2", topology.NewCPUSet(1))
	r0 := w.Attach(0, kA, p0)
	r1 := w.Attach(1, kB, p1)
	r2 := w.Attach(2, kB, p2)
	const msg = 100 << 20
	acts := []sched.Action{}
	acts = append(acts, r0.RecvActions(1)...)
	acts = append(acts, r0.RecvActions(2)...)
	acts = append(acts, sched.Compute{Work: sim.Millisecond})
	recvDone := sim.Time(0)
	acts = append(acts, sched.Call{Fn: func(now sim.Time) { recvDone = now }})
	kA.NewTask(p0, "recv", sched.Seq(acts...))
	kB.NewTask(p1, "send1", sched.Seq(r1.SendAction(0, msg), sched.Compute{Work: sim.Millisecond}))
	kB.NewTask(p2, "send2", sched.Seq(r2.SendAction(0, msg), sched.Compute{Work: sim.Millisecond}))
	if err := runQueue(&q, []*sched.Kernel{kA, kB}); err != nil {
		t.Fatal(err)
	}
	// Overlapped wire model: ~10.5ms.
	if got := recvDone.Seconds(); got > 0.02 {
		t.Fatalf("receives done at %vs, want ~0.011s (overlapping)", got)
	}
}

// runQueue drives a shared queue until all kernels' processes exit.
func runQueue(q *sim.Queue, ks []*sched.Kernel) error {
	for i := 0; i < 10_000_000; i++ {
		done := true
		for _, k := range ks {
			if !k.AllExited() {
				done = false
			}
		}
		if done {
			return nil
		}
		if !q.Step() {
			return nil
		}
	}
	return nil
}
