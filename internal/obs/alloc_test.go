package obs

import (
	"testing"
	"time"
)

// TestRecordZeroAlloc gates the hot-path contract: recording a span must
// not allocate, ever — Record sits inside Monitor.Tick and the aggd
// ingest loop, both //zerosum:hotpath.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(32)
	start := time.Unix(42, 0)
	if avg := testing.AllocsPerRun(200, func() {
		r.Record(StageTick, start, time.Millisecond)
	}); avg != 0 {
		t.Fatalf("Record allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		r.RecordNS(StageScan, 1, 2)
	}); avg != 0 {
		t.Fatalf("RecordNS allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		r.RecordError(StageExport)
	}); avg != 0 {
		t.Fatalf("RecordError allocates %.1f per call, want 0", avg)
	}
}

// TestSpansZeroAllocWithCapacity checks the reader side reuses its
// destination: report/debug paths poll Spans in a loop and should not
// churn the heap once the slice has grown.
func TestSpansZeroAllocWithCapacity(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 16; i++ {
		r.RecordNS(StageTick, int64(i), 1)
	}
	buf := make([]Span, 0, 16)
	if avg := testing.AllocsPerRun(100, func() {
		buf = r.Spans(buf[:0])
	}); avg != 0 {
		t.Fatalf("Spans with capacity allocates %.1f per call, want 0", avg)
	}
}
