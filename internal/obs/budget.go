package obs

// SelfStats is the monitor's own cost, accounted against the process it
// observes. It is assembled by core.Monitor.SelfStats and rendered in the
// end-of-run report and /debug/obs.
//
// OverheadPct is the paper's §4.1 number: the share of one core the
// monitor consumed over the run. On a real host it comes from the monitor
// LWP's own utime+stime jiffies; under the simulator (where Tick runs
// inside a zero-duration callback) the accumulated tick wall time is the
// fallback, and the larger of the two is reported.
type SelfStats struct {
	// Samples is how many ticks contributed to the accounting.
	Samples int `json:"samples"`
	// SelfCPUSec is the monitor thread's own CPU time (user+sys), seconds.
	SelfCPUSec float64 `json:"self_cpu_sec"`
	// TickWallSec is the summed wall-clock duration of every tick, seconds.
	TickWallSec float64 `json:"tick_wall_sec"`
	// ElapsedSec is the monitored run's wall-clock duration so far, seconds.
	ElapsedSec float64 `json:"elapsed_sec"`
	// OverheadPct = max(SelfCPUSec, TickWallSec) / ElapsedSec * 100.
	OverheadPct float64 `json:"overhead_pct"`
	// BudgetPct is the configured ceiling (0 when the watchdog is off).
	BudgetPct float64 `json:"budget_pct"`
	// Degradations counts watchdog firings: each one doubled the period.
	Degradations int `json:"degradations"`
	// PeriodSec is the sampling period currently in effect.
	PeriodSec float64 `json:"period_sec"`
	// StalledLWPs is how many observed threads are currently stalled.
	StalledLWPs int `json:"stalled_lwps"`
	// AdaptiveSkips counts per-thread scans elided by adaptive sampling.
	AdaptiveSkips uint64 `json:"adaptive_skips"`
}

// Overhead computes the reported overhead percentage from its inputs; it
// is the one formula both the monitor and its tests use.
func Overhead(selfCPUSec, tickWallSec, elapsedSec float64) float64 {
	if elapsedSec <= 0 {
		return 0
	}
	cost := selfCPUSec
	if tickWallSec > cost {
		cost = tickWallSec
	}
	return cost / elapsedSec * 100
}

// Default watchdog parameters.
const (
	// DefaultBudgetPct is the paper's §4.1 overhead contract.
	DefaultBudgetPct = 0.5
	// DefaultBudgetMinSamples is how many ticks must elapse before the
	// watchdog may fire: early in a run the ratio is all noise.
	DefaultBudgetMinSamples = 5
	// DefaultMaxDegrade caps period doubling (2^3 = 8x the configured
	// period at most), so a pathological host still gets some samples.
	DefaultMaxDegrade = 3
)

// Budget configures the runtime overhead watchdog. The zero value is a
// disabled watchdog; enable it and the defaults above fill unset fields.
type Budget struct {
	// Enabled turns the watchdog on.
	Enabled bool
	// MaxPct is the overhead ceiling in percent (default 0.5).
	MaxPct float64
	// MinSamples is the tick count before the first check (default 5).
	MinSamples int
	// MaxDegrade caps how many times the period may double (default 3).
	MaxDegrade int
}

// WithDefaults returns b with unset fields filled in.
func (b Budget) WithDefaults() Budget {
	if b.MaxPct <= 0 {
		b.MaxPct = DefaultBudgetPct
	}
	if b.MinSamples <= 0 {
		b.MinSamples = DefaultBudgetMinSamples
	}
	if b.MaxDegrade <= 0 {
		b.MaxDegrade = DefaultMaxDegrade
	}
	return b
}

// Exceeded reports whether the watchdog should fire given the current
// accounting: enabled, warmed up, over the ceiling, and not already
// degraded to the cap. Pure so tests can table-drive it.
func (b Budget) Exceeded(stats SelfStats) bool {
	if !b.Enabled {
		return false
	}
	b = b.WithDefaults()
	if stats.Samples < b.MinSamples {
		return false
	}
	if stats.Degradations >= b.MaxDegrade {
		return false
	}
	return stats.OverheadPct > b.MaxPct
}
