package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Dump is the /debug/obs document: who is reporting, the per-stage
// statistics, the most recent spans, and the self-cost accounting.
type Dump struct {
	// Name identifies the reporting component ("zsrun", "zsaggd", ...).
	Name string `json:"name"`
	// Stats is the cumulative per-stage accounting.
	Stats []StageStats `json:"stats,omitempty"`
	// Spans is the ring's current contents, oldest first.
	Spans []SpanJSON `json:"spans,omitempty"`
	// Self is the overhead accounting; nil for components (like the
	// aggregator) that do not monitor a victim process.
	Self *SelfStats `json:"self,omitempty"`
}

// SpanJSON is Span with the stage spelled out by name, the form external
// tooling consumes.
type SpanJSON struct {
	Stage   string `json:"stage"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// BuildDump assembles a Dump from a recorder and optional self stats.
// rec may be nil (empty stats/spans); self may be nil.
func BuildDump(name string, rec *Recorder, self *SelfStats) Dump {
	d := Dump{Name: name, Stats: rec.Stats(), Self: self}
	for _, sp := range rec.Spans(nil) {
		d.Spans = append(d.Spans, SpanJSON{
			Stage:   sp.Stage.String(),
			StartNS: sp.StartNS,
			DurNS:   sp.DurNS,
		})
	}
	return d
}

// EncodeDump renders d as JSON.
func EncodeDump(d Dump) ([]byte, error) {
	return json.Marshal(d)
}

// DecodeDump parses and validates a /debug/obs document. It is strict:
// unknown stage names, negative durations or counts, and inconsistent
// stage statistics are rejected, so a successful decode means the
// document could have been produced by EncodeDump.
func DecodeDump(data []byte) (Dump, error) {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return Dump{}, err
	}
	seen := map[string]bool{}
	for i, s := range d.Stats {
		if _, ok := StageByName(s.Stage); !ok {
			return Dump{}, fmt.Errorf("obs: stats[%d]: unknown stage %q", i, s.Stage)
		}
		if seen[s.Stage] {
			return Dump{}, fmt.Errorf("obs: stats[%d]: duplicate stage %q", i, s.Stage)
		}
		seen[s.Stage] = true
		if s.Count == 0 && s.Errors == 0 {
			return Dump{}, fmt.Errorf("obs: stats[%d]: empty entry for %q", i, s.Stage)
		}
		if s.TotalNS < 0 || s.MaxNS < 0 || s.MeanNS < 0 {
			return Dump{}, fmt.Errorf("obs: stats[%d]: negative duration", i)
		}
		if s.MaxNS > s.TotalNS {
			return Dump{}, fmt.Errorf("obs: stats[%d]: max %d exceeds total %d", i, s.MaxNS, s.TotalNS)
		}
		if s.Count == 0 && s.TotalNS != 0 {
			return Dump{}, fmt.Errorf("obs: stats[%d]: duration without spans", i)
		}
	}
	for i, sp := range d.Spans {
		if _, ok := StageByName(sp.Stage); !ok {
			return Dump{}, fmt.Errorf("obs: spans[%d]: unknown stage %q", i, sp.Stage)
		}
		if sp.DurNS < 0 {
			return Dump{}, fmt.Errorf("obs: spans[%d]: negative duration", i)
		}
	}
	if s := d.Self; s != nil {
		if s.Samples < 0 || s.Degradations < 0 || s.StalledLWPs < 0 {
			return Dump{}, fmt.Errorf("obs: self: negative count")
		}
		if s.SelfCPUSec < 0 || s.TickWallSec < 0 || s.ElapsedSec < 0 ||
			s.OverheadPct < 0 || s.BudgetPct < 0 || s.PeriodSec < 0 {
			return Dump{}, fmt.Errorf("obs: self: negative duration")
		}
	}
	return d, nil
}

// Handler serves the /debug/obs endpoint. selfFn may be nil; when set it
// is called per request so the self stats are current.
func Handler(name string, rec *Recorder, selfFn func() SelfStats) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var self *SelfStats
		if selfFn != nil {
			s := selfFn()
			self = &s
		}
		body, err := EncodeDump(BuildDump(name, rec, self))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
}
