package obs

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedDumps builds seed documents at runtime so the checked-in corpus
// stays valid even if the schema evolves.
func fuzzSeedDumps() [][]byte {
	var seeds [][]byte

	r := NewRecorder(8)
	r.Record(StageTick, time.Unix(100, 0), 2*time.Millisecond)
	r.Record(StageScan, time.Unix(100, 0), 300*time.Microsecond)
	r.Record(StageExport, time.Unix(101, 0), time.Millisecond)
	r.RecordError(StageIngest)
	self := SelfStats{
		Samples: 2, SelfCPUSec: 0.004, TickWallSec: 0.0033, ElapsedSec: 2,
		OverheadPct: 0.2, BudgetPct: 0.5, PeriodSec: 1, StalledLWPs: 1,
	}
	if b, err := EncodeDump(BuildDump("zsrun", r, &self)); err == nil {
		seeds = append(seeds, b)
	}
	if b, err := EncodeDump(BuildDump("zsaggd", r, nil)); err == nil {
		seeds = append(seeds, b)
	}
	if b, err := EncodeDump(Dump{Name: "empty"}); err == nil {
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzObsSpanDecode exercises the /debug/obs JSON decoder: it must never
// panic, and any document it accepts must re-encode and re-decode to the
// same bytes (the decoder validates everything the encoder emits).
func FuzzObsSpanDecode(f *testing.F) {
	for _, seed := range fuzzSeedDumps() {
		f.Add(seed)
	}
	f.Add([]byte(`{"name":"x","spans":[{"stage":"tick","start_ns":1,"dur_ns":2}]}`))
	f.Add([]byte(`{"name":"x","stats":[{"stage":"ingest","count":3,"total_ns":9,"max_ns":4,"mean_ns":3}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"x","spans":[{"stage":"nope"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDump(data)
		if err != nil {
			return
		}
		enc, err := EncodeDump(d)
		if err != nil {
			t.Fatalf("accepted dump failed to encode: %v", err)
		}
		d2, err := DecodeDump(enc)
		if err != nil {
			t.Fatalf("canonical re-encode rejected: %v\n%s", err, enc)
		}
		enc2, err := EncodeDump(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixed point:\n %s\n %s", enc, enc2)
		}
	})
}
