// Package obs is ZeroSum's self-observability layer: the monitor watching
// itself. The paper makes two operational promises — heartbeat-based
// progress detection (§3.3) and a measured monitoring overhead under 0.5 %
// (§4.1, Fig. 8) — and a monitor that is trusted in production must export
// evidence for both at runtime, not just in an offline evaluation. This
// package provides the three primitives the rest of the tree threads
// through its pipelines:
//
//   - Recorder: a fixed-capacity, lock-free span ring plus per-stage
//     cumulative statistics. Recording a span is a handful of atomic stores
//     — zero allocation, no locks — so it is legal inside //zerosum:hotpath
//     functions (the sampling tick, the ingest loop).
//   - SelfStats / Budget: the monitor's own cost accounted against the
//     process it observes, and the runtime watchdog that degrades sampling
//     (halves the rate) instead of silently violating the overhead budget.
//   - Dump: the /debug/obs JSON document (span dump + stage stats + self
//     stats) with a strict decoder, so external tooling — and the fuzzer —
//     can round-trip it.
//
// Readers (the /debug/obs handler, end-of-run reports) may run concurrently
// with writers: every slot is a seqlock over atomic words, so a torn read
// is detected and retried, never observed.
package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented pipeline stage. The set covers both
// sides of the deployment: the per-process monitor (tick, scan/parse,
// sample, export) and the aggregation service (ingest, decode, merge).
type Stage uint8

// Instrumented stages, in pipeline order.
const (
	// StageTick is one whole Monitor.Tick: every phase below plus the
	// bookkeeping between them.
	StageTick Stage = iota
	// StageScan is the per-LWP read+parse phase of a tick.
	StageScan
	// StageSample is the node-scoped phase: /proc/stat, meminfo, process
	// status/io and GPU sampling.
	StageSample
	// StageExport is one shipment on the data-out path (a staged write or
	// an aggd agent batch flush).
	StageExport
	// StageIngest is one aggregator ingest request, body to merge.
	StageIngest
	numStages
)

var stageNames = [numStages]string{
	StageTick:   "tick",
	StageScan:   "scan",
	StageSample: "sample",
	StageExport: "export",
	StageIngest: "ingest",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// StageByName maps a stage name back to its Stage; ok is false for an
// unknown name.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Span is one recorded interval of one stage.
type Span struct {
	Stage   Stage
	StartNS int64 // wall-clock start, Unix nanoseconds
	DurNS   int64 // duration in nanoseconds
}

// slot is one seqlock-protected ring entry. The sequence is even when the
// slot is stable; a writer claims it by CAS-ing the sequence from even to
// odd, stores the words, then makes it even again. The CAS claim means at
// most one writer ever owns a slot: a second Record whose pos collides
// after ring wrap loses the CAS and drops its span body instead of
// co-writing, so a reader that validates an unchanged even sequence has
// never seen a torn span. A reader that observes an odd sequence, or a
// sequence that changed across its reads, discards the slot. All words are
// atomics, so concurrent access is race-detector clean by construction.
type slot struct {
	seq   atomic.Uint64
	stage atomic.Uint32
	start atomic.Int64
	dur   atomic.Int64
}

// stageAgg is one stage's cumulative accounting.
type stageAgg struct {
	count atomic.Uint64
	errs  atomic.Uint64
	total atomic.Int64 // summed duration, ns
	max   atomic.Int64 // worst single span, ns
}

// StageStats is the exported view of one stage's accumulated spans.
type StageStats struct {
	Stage   string  `json:"stage"`
	Count   uint64  `json:"count"`
	Errors  uint64  `json:"errors,omitempty"`
	TotalNS int64   `json:"total_ns"`
	MaxNS   int64   `json:"max_ns"`
	MeanNS  float64 `json:"mean_ns"`
}

// Recorder holds the span ring and the per-stage statistics. The zero
// value is not usable; construct with NewRecorder. A nil *Recorder is a
// valid no-op sink: every method tolerates it, so instrumented code does
// not branch on "is self-observability enabled".
type Recorder struct {
	mask  uint64
	pos   atomic.Uint64 // next ring slot (monotonic; masked on use)
	slots []slot
	stats [numStages]stageAgg

	// slotDrops counts span bodies discarded because the claimed ring slot
	// was still owned by a concurrent writer (only reachable when writers
	// outpace the ring enough to wrap onto each other). The per-stage stats
	// still account the span; only the ring entry is lost.
	slotDrops atomic.Uint64
}

// DefaultRingCapacity is the span ring size NewRecorder(0) uses: enough
// for ~1 minute of 1 Hz ticks with all stages instrumented.
const DefaultRingCapacity = 256

// NewRecorder builds a recorder whose ring holds capacity spans, rounded
// up to a power of two (0 means DefaultRingCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Record stores one completed span. Safe for concurrent use from any
// number of writers; allocation-free; a handful of atomic operations.
//
//zerosum:hotpath
func (r *Recorder) Record(st Stage, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.RecordNS(st, start.UnixNano(), int64(dur))
}

// RecordNS is Record for callers that already hold raw nanosecond values.
//
//zerosum:hotpath
func (r *Recorder) RecordNS(st Stage, startNS, durNS int64) {
	if r == nil || st >= numStages {
		return
	}
	if durNS < 0 {
		durNS = 0
	}
	r.recordSlot(st, startNS, durNS)
}

// recordSlot claims a ring slot and publishes the span through its seqlock.
//
//zerosum:hotpath
func (r *Recorder) recordSlot(st Stage, startNS, durNS int64) {
	i := (r.pos.Add(1) - 1) & r.mask
	s := &r.slots[i]
	seq := s.seq.Load()
	if seq&1 == 0 && s.seq.CompareAndSwap(seq, seq+1) {
		// Claimed (odd): this goroutine is the slot's only writer.
		s.stage.Store(uint32(st))
		s.start.Store(startNS)
		s.dur.Store(durNS)
		s.seq.Store(seq + 2) // even again: slot is stable
	} else {
		// Another writer still owns the slot (the ring wrapped onto an
		// in-flight Record). Co-writing would let a reader validate a torn
		// span, so drop the ring entry; the stats below still count it.
		r.slotDrops.Add(1)
	}

	agg := &r.stats[st]
	agg.count.Add(1)
	agg.total.Add(durNS)
	for {
		old := agg.max.Load()
		if durNS <= old || agg.max.CompareAndSwap(old, durNS) {
			break
		}
	}
}

// RecordError counts a failed pass through a stage (the span itself is
// usually not recorded: error paths abort mid-stage).
//
//zerosum:hotpath
func (r *Recorder) RecordError(st Stage) {
	if r == nil || st >= numStages {
		return
	}
	r.stats[st].errs.Add(1)
}

// DroppedSpans returns how many span bodies were discarded because their
// ring slot was mid-write by a concurrent Record (their stage stats were
// still counted).
func (r *Recorder) DroppedSpans() uint64 {
	if r == nil {
		return 0
	}
	return r.slotDrops.Load()
}

// Count returns how many spans of st have been recorded.
func (r *Recorder) Count(st Stage) uint64 {
	if r == nil || st >= numStages {
		return 0
	}
	return r.stats[st].count.Load()
}

// TotalNS returns the summed duration of every recorded span of st.
func (r *Recorder) TotalNS(st Stage) int64 {
	if r == nil || st >= numStages {
		return 0
	}
	return r.stats[st].total.Load()
}

// Stats snapshots the per-stage statistics, skipping stages never seen.
func (r *Recorder) Stats() []StageStats {
	if r == nil {
		return nil
	}
	out := make([]StageStats, 0, numStages)
	for st := Stage(0); st < numStages; st++ {
		agg := &r.stats[st]
		n := agg.count.Load()
		e := agg.errs.Load()
		if n == 0 && e == 0 {
			continue
		}
		s := StageStats{
			Stage:   st.String(),
			Count:   n,
			Errors:  e,
			TotalNS: agg.total.Load(),
			MaxNS:   agg.max.Load(),
		}
		if n > 0 {
			s.MeanNS = float64(s.TotalNS) / float64(n)
		}
		out = append(out, s)
	}
	return out
}

// Spans appends a consistent snapshot of the ring's current spans to dst
// (oldest first) and returns the extended slice. Slots being concurrently
// rewritten are skipped, never returned torn.
func (r *Recorder) Spans(dst []Span) []Span {
	if r == nil {
		return dst
	}
	pos := r.pos.Load()
	n := uint64(len(r.slots))
	begin := uint64(0)
	if pos > n {
		begin = pos - n
	}
	for i := begin; i < pos; i++ {
		s := &r.slots[i&r.mask]
		const maxTries = 4
		for try := 0; try < maxTries; try++ {
			s1 := s.seq.Load()
			if s1%2 != 0 {
				continue // mid-write; retry
			}
			sp := Span{
				Stage:   Stage(s.stage.Load()),
				StartNS: s.start.Load(),
				DurNS:   s.dur.Load(),
			}
			if s.seq.Load() != s1 {
				continue // torn; retry
			}
			if sp.Stage < numStages {
				dst = append(dst, sp)
			}
			break
		}
	}
	return dst
}
