package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for st := Stage(0); st < numStages; st++ {
		name := st.String()
		if strings.HasPrefix(name, "stage(") {
			t.Fatalf("stage %d has no name", st)
		}
		got, ok := StageByName(name)
		if !ok || got != st {
			t.Fatalf("StageByName(%q) = %v, %v; want %v, true", name, got, ok, st)
		}
	}
	if _, ok := StageByName("bogus"); ok {
		t.Fatal("StageByName accepted unknown name")
	}
	if !strings.HasPrefix(Stage(200).String(), "stage(") {
		t.Fatal("out-of-range stage should stringify to stage(n)")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(StageTick, time.Unix(1, 0), time.Millisecond)
	r.RecordNS(StageScan, 0, 1)
	r.RecordError(StageScan)
	if got := r.Count(StageTick); got != 0 {
		t.Fatalf("nil Count = %d", got)
	}
	if got := r.TotalNS(StageTick); got != 0 {
		t.Fatalf("nil TotalNS = %d", got)
	}
	if got := r.Stats(); got != nil {
		t.Fatalf("nil Stats = %v", got)
	}
	if got := r.Spans(nil); got != nil {
		t.Fatalf("nil Spans = %v", got)
	}
}

func TestRecorderStatsAndRing(t *testing.T) {
	r := NewRecorder(8)
	base := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		r.Record(StageTick, base.Add(time.Duration(i)*time.Second), time.Duration(i+1)*time.Millisecond)
	}
	r.Record(StageScan, base, 500*time.Microsecond)
	r.RecordError(StageExport)

	if got := r.Count(StageTick); got != 5 {
		t.Fatalf("Count(tick) = %d, want 5", got)
	}
	wantTotal := int64((1 + 2 + 3 + 4 + 5) * time.Millisecond)
	if got := r.TotalNS(StageTick); got != wantTotal {
		t.Fatalf("TotalNS(tick) = %d, want %d", got, wantTotal)
	}

	stats := r.Stats()
	byStage := map[string]StageStats{}
	for _, s := range stats {
		byStage[s.Stage] = s
	}
	tick, ok := byStage["tick"]
	if !ok {
		t.Fatalf("tick missing from stats: %v", stats)
	}
	if tick.MaxNS != int64(5*time.Millisecond) {
		t.Fatalf("tick MaxNS = %d", tick.MaxNS)
	}
	if tick.MeanNS != float64(wantTotal)/5 {
		t.Fatalf("tick MeanNS = %g", tick.MeanNS)
	}
	if exp := byStage["export"]; exp.Errors != 1 || exp.Count != 0 {
		t.Fatalf("export stats = %+v", exp)
	}
	if _, ok := byStage["ingest"]; ok {
		t.Fatal("untouched stage should be omitted")
	}

	spans := r.Spans(nil)
	if len(spans) != 6 {
		t.Fatalf("Spans returned %d entries, want 6", len(spans))
	}
	if spans[0].Stage != StageTick || spans[0].StartNS != base.UnixNano() {
		t.Fatalf("oldest span = %+v", spans[0])
	}
	if last := spans[len(spans)-1]; last.Stage != StageScan {
		t.Fatalf("newest span = %+v", last)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.RecordNS(StageTick, int64(i), int64(i))
	}
	spans := r.Spans(nil)
	if len(spans) != 4 {
		t.Fatalf("wrapped ring returned %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := int64(6 + i); sp.StartNS != want {
			t.Fatalf("spans[%d].StartNS = %d, want %d", i, sp.StartNS, want)
		}
	}
	if got := r.Count(StageTick); got != 10 {
		t.Fatalf("Count survives ring wrap: got %d, want 10", got)
	}
}

func TestRecorderNegativeDurationClamped(t *testing.T) {
	r := NewRecorder(4)
	r.RecordNS(StageTick, 5, -17)
	if got := r.TotalNS(StageTick); got != 0 {
		t.Fatalf("TotalNS = %d, want 0 (negative clamped)", got)
	}
	if spans := r.Spans(nil); len(spans) != 1 || spans[0].DurNS != 0 {
		t.Fatalf("spans = %+v", spans)
	}
}

// TestRecorderConcurrent drives several writers against a reader; under
// `go test -race` this proves the seqlock ring is race-clean, and the
// assertions prove readers never observe torn or invalid spans.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			st := Stage(w % int(numStages))
			for i := 0; i < perWriter; i++ {
				r.RecordNS(st, int64(i), int64(i%100))
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		buf := make([]Span, 0, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = r.Spans(buf[:0])
			for _, sp := range buf {
				if sp.Stage >= numStages {
					t.Errorf("torn span: stage %d", sp.Stage)
					return
				}
				if sp.DurNS < 0 || sp.DurNS >= 100 {
					t.Errorf("torn span: dur %d", sp.DurNS)
					return
				}
			}
			r.Stats()
		}
	}()

	wg.Wait()
	close(stop)
	readerWG.Wait()

	var total uint64
	for st := Stage(0); st < numStages; st++ {
		total += r.Count(st)
	}
	if total != writers*perWriter {
		t.Fatalf("recorded %d spans, want %d", total, writers*perWriter)
	}
}

// TestRecordSkipsClaimedSlot: a Record landing on a slot another writer
// still owns (odd sequence) must drop the span body instead of co-writing
// it — co-writes are how a reader could validate a torn span.
func TestRecordSkipsClaimedSlot(t *testing.T) {
	r := NewRecorder(1) // single-slot ring: every Record collides on slot 0
	r.slots[0].seq.Store(1)
	r.RecordNS(StageTick, 5, 7)
	if got := r.DroppedSpans(); got != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", got)
	}
	if got := r.Count(StageTick); got != 1 {
		t.Fatalf("Count = %d, want 1 (stats still account dropped spans)", got)
	}
	if spans := r.Spans(nil); len(spans) != 0 {
		t.Fatalf("claimed slot yielded spans %+v", spans)
	}
	if got := r.slots[0].seq.Load(); got != 1 {
		t.Fatalf("losing writer mutated the claimed slot's seq: %d", got)
	}

	// Once the owning writer releases the slot (even sequence), recording
	// works again.
	r.slots[0].seq.Store(2)
	r.RecordNS(StageScan, 9, 3)
	spans := r.Spans(nil)
	if len(spans) != 1 || spans[0].Stage != StageScan || spans[0].StartNS != 9 {
		t.Fatalf("spans after release = %+v", spans)
	}
	if got := r.DroppedSpans(); got != 1 {
		t.Fatalf("DroppedSpans after release = %d, want still 1", got)
	}
}

// TestRecorderConcurrentTinyRing hammers a 2-slot ring with writers whose
// spans all satisfy start==dur: constant wrap collisions exercise the CAS
// slot claim, and any span violating the invariant is a torn read.
func TestRecorderConcurrentTinyRing(t *testing.T) {
	r := NewRecorder(2)
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := int64(w*perWriter + i)
				r.RecordNS(StageTick, v, v)
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		buf := make([]Span, 0, 2)
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf = r.Spans(buf[:0])
			for _, sp := range buf {
				if sp.StartNS != sp.DurNS {
					t.Errorf("torn span: start %d != dur %d", sp.StartNS, sp.DurNS)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := r.Count(StageTick); got != writers*perWriter {
		t.Fatalf("Count = %d, want %d (drops must still hit stats)", got, writers*perWriter)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(0.5, 0.1, 100); got != 0.5 {
		t.Fatalf("Overhead = %g, want 0.5 (self-CPU dominates)", got)
	}
	if got := Overhead(0.1, 0.5, 100); got != 0.5 {
		t.Fatalf("Overhead = %g, want 0.5 (tick wall dominates)", got)
	}
	if got := Overhead(1, 1, 0); got != 0 {
		t.Fatalf("Overhead with zero elapsed = %g, want 0", got)
	}
}

func TestBudgetExceeded(t *testing.T) {
	on := Budget{Enabled: true}
	cases := []struct {
		name  string
		b     Budget
		stats SelfStats
		want  bool
	}{
		{"disabled", Budget{}, SelfStats{Samples: 100, OverheadPct: 99}, false},
		{"warming up", on, SelfStats{Samples: 2, OverheadPct: 99}, false},
		{"under budget", on, SelfStats{Samples: 100, OverheadPct: 0.4}, false},
		{"at budget", on, SelfStats{Samples: 100, OverheadPct: 0.5}, false},
		{"over budget", on, SelfStats{Samples: 100, OverheadPct: 0.6}, true},
		{"degraded out", on, SelfStats{Samples: 100, OverheadPct: 99, Degradations: DefaultMaxDegrade}, false},
		{"custom ceiling", Budget{Enabled: true, MaxPct: 5}, SelfStats{Samples: 100, OverheadPct: 4}, false},
		{"custom ceiling hit", Budget{Enabled: true, MaxPct: 5}, SelfStats{Samples: 100, OverheadPct: 6}, true},
	}
	for _, tc := range cases {
		if got := tc.b.Exceeded(tc.stats); got != tc.want {
			t.Errorf("%s: Exceeded = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(8)
	r.Record(StageTick, time.Unix(10, 0), 2*time.Millisecond)
	r.Record(StageScan, time.Unix(10, 0), time.Millisecond)
	r.RecordError(StageIngest)
	self := &SelfStats{
		Samples: 1, SelfCPUSec: 0.01, TickWallSec: 0.002, ElapsedSec: 10,
		OverheadPct: 0.1, BudgetPct: 0.5, PeriodSec: 1,
	}
	d := BuildDump("test", r, self)
	data, err := EncodeDump(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDump(data)
	if err != nil {
		t.Fatalf("DecodeDump of own output: %v", err)
	}
	if got.Name != "test" || len(got.Spans) != 2 || got.Self == nil {
		t.Fatalf("decoded dump = %+v", got)
	}
	if got.Self.OverheadPct != 0.1 {
		t.Fatalf("Self = %+v", got.Self)
	}

	// The re-encode of a decode must be byte-identical: DecodeDump
	// validated everything EncodeDump writes.
	again, err := EncodeDump(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encode differs:\n %s\n %s", data, again)
	}
}

func TestDecodeDumpRejects(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"not json", `{`},
		{"unknown stat stage", `{"name":"x","stats":[{"stage":"warp","count":1,"total_ns":1,"max_ns":1}]}`},
		{"duplicate stat stage", `{"name":"x","stats":[{"stage":"tick","count":1,"total_ns":1,"max_ns":1},{"stage":"tick","count":1,"total_ns":1,"max_ns":1}]}`},
		{"empty stat entry", `{"name":"x","stats":[{"stage":"tick"}]}`},
		{"negative total", `{"name":"x","stats":[{"stage":"tick","count":1,"total_ns":-1}]}`},
		{"max over total", `{"name":"x","stats":[{"stage":"tick","count":1,"total_ns":5,"max_ns":9}]}`},
		{"errors with duration", `{"name":"x","stats":[{"stage":"tick","errors":1,"total_ns":5,"max_ns":1}]}`},
		{"unknown span stage", `{"name":"x","spans":[{"stage":"warp","start_ns":0,"dur_ns":0}]}`},
		{"negative span dur", `{"name":"x","spans":[{"stage":"tick","start_ns":0,"dur_ns":-1}]}`},
		{"negative self samples", `{"name":"x","self":{"samples":-1}}`},
		{"negative self cpu", `{"name":"x","self":{"samples":1,"self_cpu_sec":-0.5}}`},
	}
	for _, tc := range bad {
		if _, err := DecodeDump([]byte(tc.doc)); err == nil {
			t.Errorf("%s: DecodeDump accepted %s", tc.name, tc.doc)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(8)
	r.Record(StageIngest, time.Unix(1, 0), time.Millisecond)
	h := Handler("zsaggd", r, nil)

	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}
	d, err := DecodeDump(body)
	if err != nil {
		t.Fatalf("handler served invalid dump: %v\n%s", err, body)
	}
	if d.Name != "zsaggd" || len(d.Spans) != 1 || d.Self != nil {
		t.Fatalf("dump = %+v", d)
	}

	// Self stats are fetched per request when a selfFn is wired.
	calls := 0
	hs := Handler("zsrun", r, func() SelfStats {
		calls++
		return SelfStats{Samples: calls}
	})
	for want := 1; want <= 2; want++ {
		req := httptest.NewRequest(http.MethodGet, "/debug/obs", nil)
		rec := httptest.NewRecorder()
		hs.ServeHTTP(rec, req)
		var d Dump
		if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		if d.Self == nil || d.Self.Samples != want {
			t.Fatalf("request %d: self = %+v", want, d.Self)
		}
	}

	// Non-GET is refused.
	req := httptest.NewRequest(http.MethodPost, "/debug/obs", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
}
