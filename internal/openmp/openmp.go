// Package openmp models the thread-team behaviour of an OpenMP runtime on
// top of the kernel simulator: OMP_NUM_THREADS team sizing, OMP_PLACES
// partitioning (threads/cores/sockets) and OMP_PROC_BIND policies
// (false/master/close/spread), plus OMPT-style thread-begin callbacks — the
// integration surface ZeroSum uses to classify LWPs as OpenMP threads
// (paper §3.1.2). The paper's Tables 1-3 differ only in these settings.
package openmp

import (
	"fmt"
	"strings"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

// Policy is the OMP_PROC_BIND binding policy.
type Policy int

// Binding policies.
const (
	BindFalse Policy = iota // no binding: threads inherit the process mask
	BindMaster
	BindClose
	BindSpread
)

func (p Policy) String() string {
	switch p {
	case BindMaster:
		return "master"
	case BindClose:
		return "close"
	case BindSpread:
		return "spread"
	default:
		return "false"
	}
}

// ParsePolicy parses an OMP_PROC_BIND value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "false":
		return BindFalse, nil
	case "true", "close":
		return BindClose, nil
	case "master", "primary":
		return BindMaster, nil
	case "spread":
		return BindSpread, nil
	}
	return BindFalse, fmt.Errorf("openmp: bad OMP_PROC_BIND %q", s)
}

// PlaceKind is the OMP_PLACES granularity.
type PlaceKind int

// Place kinds.
const (
	PlacesThreads PlaceKind = iota
	PlacesCores
	PlacesSockets
)

func (p PlaceKind) String() string {
	switch p {
	case PlacesCores:
		return "cores"
	case PlacesSockets:
		return "sockets"
	default:
		return "threads"
	}
}

// ParsePlaces parses an OMP_PLACES value.
func ParsePlaces(s string) (PlaceKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "threads":
		return PlacesThreads, nil
	case "cores":
		return PlacesCores, nil
	case "sockets":
		return PlacesSockets, nil
	}
	return PlacesThreads, fmt.Errorf("openmp: bad OMP_PLACES %q", s)
}

// Env carries the OpenMP environment settings of a process.
type Env struct {
	// NumThreads is OMP_NUM_THREADS; zero means one per available PU in
	// the process cpuset (the runtime default).
	NumThreads int
	Bind       Policy
	Places     PlaceKind
}

// ParseEnv builds an Env from environment-variable strings.
func ParseEnv(numThreads, procBind, places string) (Env, error) {
	var e Env
	if s := strings.TrimSpace(numThreads); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &e.NumThreads); err != nil || e.NumThreads < 0 {
			return e, fmt.Errorf("openmp: bad OMP_NUM_THREADS %q", numThreads)
		}
	}
	var err error
	if e.Bind, err = ParsePolicy(procBind); err != nil {
		return e, err
	}
	if e.Places, err = ParsePlaces(places); err != nil {
		return e, err
	}
	return e, nil
}

// ComputePlaces partitions the cpuset into places of the given granularity,
// in ascending hardware order. Empty intersections are dropped.
func ComputePlaces(m *topology.Machine, cpuset topology.CPUSet, kind PlaceKind) []topology.CPUSet {
	var places []topology.CPUSet
	add := func(s topology.CPUSet) {
		in := s.And(cpuset)
		if !in.Empty() {
			places = append(places, in)
		}
	}
	switch kind {
	case PlacesThreads:
		for _, pu := range cpuset.List() {
			if m.PUByOS(pu) != nil {
				places = append(places, topology.NewCPUSet(pu))
			}
		}
	case PlacesCores:
		for _, c := range m.Cores() {
			var s topology.CPUSet
			for _, pu := range c.PUs {
				s.Set(pu.OSIndex)
			}
			add(s)
		}
	case PlacesSockets:
		for _, pkg := range m.Packages {
			var s topology.CPUSet
			for _, nn := range pkg.NUMA {
				for _, g := range nn.L3 {
					for _, c := range g.Cores {
						for _, pu := range c.PUs {
							s.Set(pu.OSIndex)
						}
					}
				}
			}
			add(s)
		}
	}
	return places
}

// Bindings returns the affinity mask for each of n team threads under the
// policy. With BindFalse every thread gets the full cpuset. With more
// threads than places, threads wrap around (oversubscribing places), as the
// standard prescribes.
func Bindings(places []topology.CPUSet, policy Policy, n int, cpuset topology.CPUSet) []topology.CPUSet {
	out := make([]topology.CPUSet, n)
	if policy == BindFalse || len(places) == 0 {
		for i := range out {
			out[i] = cpuset.Clone()
		}
		return out
	}
	p := len(places)
	for i := 0; i < n; i++ {
		switch policy {
		case BindMaster:
			out[i] = places[0].Clone()
		case BindClose:
			out[i] = places[i%p].Clone()
		case BindSpread:
			// Spread partitions the place list evenly.
			out[i] = places[(i*p)/max(n, 1)%p].Clone()
		}
	}
	return out
}

// ThreadBeginFn is the OMPT thread-begin callback signature: the runtime
// reports each team thread (including the master, threadNum 0) as it is
// identified. ZeroSum registers one of these to classify LWPs.
type ThreadBeginFn func(t *sched.Task, threadNum int)

// Runtime is a per-process OpenMP runtime instance.
type Runtime struct {
	K   *sched.Kernel
	Env Env

	callbacks []ThreadBeginFn
}

// NewRuntime creates a runtime for a kernel with the given environment.
func NewRuntime(k *sched.Kernel, env Env) *Runtime {
	return &Runtime{K: k, Env: env}
}

// OnThreadBegin registers an OMPT-style callback.
func (rt *Runtime) OnThreadBegin(fn ThreadBeginFn) {
	rt.callbacks = append(rt.callbacks, fn)
}

// TeamSize resolves the team size for a process cpuset: OMP_NUM_THREADS if
// set, else one thread per available PU.
func (rt *Runtime) TeamSize(cpuset topology.CPUSet) int {
	if rt.Env.NumThreads > 0 {
		return rt.Env.NumThreads
	}
	if n := cpuset.Count(); n > 0 {
		return n
	}
	return 1
}

// Team is a launched parallel team.
type Team struct {
	// Tasks holds the team in threadNum order; Tasks[0] is the master
	// (the process main thread, not created by the runtime).
	Tasks []*sched.Task
	// Bindings holds the affinity assigned to each thread.
	Bindings []topology.CPUSet
	// Barrier synchronises the team (implicit barriers at region ends).
	Barrier *sched.Barrier
}

// Launch creates the worker threads of a parallel team in process p with
// master as thread 0. workerBehavior builds each worker's life (threadNums
// 1..n-1); the master's behaviour is owned by the caller, since in a real
// program the master executes the parallel region inline. Binding policy is
// applied to the master too, exactly as OMP_PROC_BIND does.
func (rt *Runtime) Launch(p *sched.Process, master *sched.Task, n int, workerBehavior func(threadNum int) sched.Behavior) *Team {
	if n <= 0 {
		n = rt.TeamSize(p.Affinity)
	}
	places := ComputePlaces(rt.K.Machine, p.Affinity, rt.Env.Places)
	bindings := Bindings(places, rt.Env.Bind, n, p.Affinity)
	team := &Team{Bindings: bindings, Barrier: rt.K.NewBarrier(n)}
	if master != nil {
		if rt.Env.Bind != BindFalse {
			rt.K.SetAffinity(master, bindings[0])
		}
		team.Tasks = append(team.Tasks, master)
		master.Kind = sched.KindMain // master stays "Main"; it is also an OpenMP thread
		rt.fire(master, 0)
	}
	for i := 1; i < n; i++ {
		t := rt.K.NewTask(p, p.Comm, workerBehavior(i),
			sched.WithKind(sched.KindOpenMP),
			sched.WithAffinity(bindings[i]))
		team.Tasks = append(team.Tasks, t)
		rt.fire(t, i)
	}
	return team
}

func (rt *Runtime) fire(t *sched.Task, threadNum int) {
	for _, fn := range rt.callbacks {
		fn(t, threadNum)
	}
}

// ProbeTIDs returns the TIDs of a team, emulating the pre-5.1 fallback
// where ZeroSum runs a probe parallel region to learn the team's LWP ids
// when no OMPT support is present (paper §3.1.2).
func (team *Team) ProbeTIDs() []int {
	out := make([]int, 0, len(team.Tasks))
	for _, t := range team.Tasks {
		out = append(out, t.TID)
	}
	return out
}

// WorkshareBarrier returns the action a team thread uses at an implicit
// region barrier.
func (team *Team) WorkshareBarrier() sched.Action {
	return sched.WaitBarrier{B: team.Barrier}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Jitter is a helper for workloads: a deterministic per-thread perturbation
// in [-spread, +spread] seconds of work, derived from the RNG.
func Jitter(rng *sim.RNG, spread float64) sim.Time {
	return sim.FromSeconds((rng.Float64()*2 - 1) * spread)
}
