package openmp

import (
	"testing"
	"testing/quick"

	"zerosum/internal/sched"
	"zerosum/internal/sim"
	"zerosum/internal/topology"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"": BindFalse, "false": BindFalse, "true": BindClose,
		"close": BindClose, "CLOSE": BindClose, "spread": BindSpread,
		"master": BindMaster, "primary": BindMaster,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sideways"); err == nil {
		t.Fatal("bad policy should error")
	}
}

func TestParsePlaces(t *testing.T) {
	for in, want := range map[string]PlaceKind{
		"": PlacesThreads, "threads": PlacesThreads, "cores": PlacesCores, "sockets": PlacesSockets,
	} {
		got, err := ParsePlaces(in)
		if err != nil || got != want {
			t.Errorf("ParsePlaces(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePlaces("l3"); err == nil {
		t.Fatal("bad places should error")
	}
}

func TestParseEnv(t *testing.T) {
	e, err := ParseEnv("7", "spread", "cores")
	if err != nil {
		t.Fatal(err)
	}
	if e.NumThreads != 7 || e.Bind != BindSpread || e.Places != PlacesCores {
		t.Fatalf("env = %+v", e)
	}
	if _, err := ParseEnv("x", "", ""); err == nil {
		t.Fatal("bad num threads should error")
	}
	if _, err := ParseEnv("", "bogus", ""); err == nil {
		t.Fatal("bad bind should error")
	}
	if _, err := ParseEnv("", "", "bogus"); err == nil {
		t.Fatal("bad places should error")
	}
}

func TestComputePlacesFrontierCores(t *testing.T) {
	m := topology.Frontier()
	// The Table 3 cpuset: cores 1-7 (one HWT each enabled).
	cpuset := topology.RangeCPUSet(1, 7)
	places := ComputePlaces(m, cpuset, PlacesCores)
	if len(places) != 7 {
		t.Fatalf("places = %d, want 7", len(places))
	}
	for i, p := range places {
		if p.Count() != 1 || p.First() != i+1 {
			t.Fatalf("place %d = %s", i, p)
		}
	}
	// With both HWTs enabled, a core place holds the sibling pair.
	full := topology.RangeCPUSet(1, 7).Or(topology.RangeCPUSet(65, 71))
	places = ComputePlaces(m, full, PlacesCores)
	if len(places) != 7 {
		t.Fatalf("places = %d, want 7", len(places))
	}
	if places[0].String() != "1,65" {
		t.Fatalf("place 0 = %s, want 1,65", places[0])
	}
}

func TestComputePlacesThreadsAndSockets(t *testing.T) {
	m := topology.Laptop4Core()
	cpuset := m.AllPUSet()
	if got := len(ComputePlaces(m, cpuset, PlacesThreads)); got != 8 {
		t.Fatalf("thread places = %d, want 8", got)
	}
	if got := len(ComputePlaces(m, cpuset, PlacesSockets)); got != 1 {
		t.Fatalf("socket places = %d, want 1", got)
	}
	// Restricting the cpuset restricts places.
	if got := len(ComputePlaces(m, topology.NewCPUSet(0, 1), PlacesCores)); got != 2 {
		t.Fatalf("restricted core places = %d, want 2", got)
	}
}

func TestBindingsSpreadOneThreadPerCore(t *testing.T) {
	m := topology.Frontier()
	cpuset := topology.RangeCPUSet(1, 7)
	places := ComputePlaces(m, cpuset, PlacesCores)
	b := Bindings(places, BindSpread, 7, cpuset)
	seen := map[int]bool{}
	for i, s := range b {
		if s.Count() != 1 {
			t.Fatalf("thread %d binding %s, want single core", i, s)
		}
		if seen[s.First()] {
			t.Fatalf("core %d bound twice under spread", s.First())
		}
		seen[s.First()] = true
	}
}

func TestBindingsSpreadFewerThreadsThanPlaces(t *testing.T) {
	m := topology.Frontier()
	cpuset := topology.RangeCPUSet(1, 7)
	places := ComputePlaces(m, cpuset, PlacesCores)
	b := Bindings(places, BindSpread, 4, cpuset)
	// 4 threads over 7 places spread out: places 0,1,3,5.
	want := []int{1, 2, 4, 6}
	for i, s := range b {
		if s.First() != want[i] {
			t.Fatalf("thread %d -> core %d, want %d", i, s.First(), want[i])
		}
	}
}

func TestBindingsCloseWrapsWhenOversubscribed(t *testing.T) {
	m := topology.Laptop4Core()
	cpuset := topology.RangeCPUSet(0, 3)
	places := ComputePlaces(m, cpuset, PlacesThreads)
	b := Bindings(places, BindClose, 6, cpuset)
	if b[4].First() != 0 || b[5].First() != 1 {
		t.Fatalf("close wrap: b4=%s b5=%s", b[4], b[5])
	}
}

func TestBindingsFalseAndMaster(t *testing.T) {
	m := topology.Laptop4Core()
	cpuset := topology.RangeCPUSet(0, 3)
	places := ComputePlaces(m, cpuset, PlacesThreads)
	for _, s := range Bindings(places, BindFalse, 3, cpuset) {
		if !s.Equal(cpuset) {
			t.Fatalf("false binding should be full cpuset, got %s", s)
		}
	}
	for _, s := range Bindings(places, BindMaster, 3, cpuset) {
		if s.First() != 0 || s.Count() != 1 {
			t.Fatalf("master binding should be place 0, got %s", s)
		}
	}
}

func TestRuntimeLaunchTeam(t *testing.T) {
	m := topology.Frontier()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	cpuset := topology.RangeCPUSet(1, 7)
	p := k.NewProcess("miniqmc", cpuset)
	master := k.NewTask(p, "miniqmc", sched.Seq(sched.Compute{Work: 10 * sim.Millisecond}))

	rt := NewRuntime(k, Env{NumThreads: 7, Bind: BindSpread, Places: PlacesCores})
	var reported []int
	rt.OnThreadBegin(func(task *sched.Task, threadNum int) {
		reported = append(reported, threadNum)
		if threadNum > 0 && task.Kind != sched.KindOpenMP {
			t.Errorf("worker %d kind = %v", threadNum, task.Kind)
		}
	})
	team := rt.Launch(p, master, 0, func(i int) sched.Behavior {
		return sched.Seq(sched.Compute{Work: 10 * sim.Millisecond})
	})
	if len(team.Tasks) != 7 {
		t.Fatalf("team size = %d, want 7", len(team.Tasks))
	}
	if len(reported) != 7 {
		t.Fatalf("OMPT reported %d threads, want 7", len(reported))
	}
	// Master rebound to core 1 under spread/cores.
	if master.Affinity.String() != "1" {
		t.Fatalf("master affinity = %s, want 1", master.Affinity)
	}
	// Each worker pinned to its own core, TIDs unique.
	tids := team.ProbeTIDs()
	seen := map[int]bool{}
	for _, tid := range tids {
		if seen[tid] {
			t.Fatalf("duplicate tid %d", tid)
		}
		seen[tid] = true
	}
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, task := range team.Tasks {
		if task.Migrations != 0 {
			t.Errorf("pinned team thread %d migrated", i)
		}
	}
}

func TestRuntimeTeamSizeDefaults(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	rt := NewRuntime(k, Env{})
	if got := rt.TeamSize(topology.RangeCPUSet(0, 3)); got != 4 {
		t.Fatalf("default team size = %d, want 4 (one per PU)", got)
	}
	rt2 := NewRuntime(k, Env{NumThreads: 9})
	if got := rt2.TeamSize(topology.RangeCPUSet(0, 3)); got != 9 {
		t.Fatalf("explicit team size = %d, want 9", got)
	}
	if got := rt.TeamSize(topology.CPUSet{}); got != 1 {
		t.Fatalf("empty cpuset team size = %d, want 1", got)
	}
}

func TestTeamBarrierSynchronisesWorkers(t *testing.T) {
	m := topology.Laptop4Core()
	var q sim.Queue
	k := sched.NewKernel(m, &q, sim.NewRNG(1), sched.Params{})
	cpuset := topology.RangeCPUSet(0, 3)
	p := k.NewProcess("app", cpuset)
	rt := NewRuntime(k, Env{NumThreads: 4, Bind: BindSpread, Places: PlacesCores})

	var order []sim.Time
	barrier := k.NewBarrier(4)
	mk := func(i int) sched.Behavior {
		return sched.Seq(
			sched.Compute{Work: sim.Time(i+1) * 20 * sim.Millisecond},
			sched.WaitBarrier{B: barrier},
			sched.Call{Fn: func(now sim.Time) { order = append(order, now) }},
		)
	}
	master := k.NewTask(p, "app", mk(0))
	rt.Launch(p, master, 4, func(i int) sched.Behavior { return mk(i) })
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("barrier released %d, want 4", len(order))
	}
	for _, at := range order {
		if at < 80*sim.Millisecond {
			t.Fatalf("released at %v, before slowest arriver", at)
		}
	}
}

func TestQuickBindingsWithinCpuset(t *testing.T) {
	m := topology.Frontier()
	f := func(lo, span, n uint8, policy uint8, places uint8) bool {
		l := int(lo) % 50
		h := l + int(span)%14 + 1
		cpuset := topology.RangeCPUSet(l, h)
		kind := PlaceKind(int(places) % 3)
		pol := Policy(int(policy) % 4)
		count := int(n)%12 + 1
		pls := ComputePlaces(m, cpuset, kind)
		for _, b := range Bindings(pls, pol, count, cpuset) {
			if b.Empty() {
				return false
			}
			// Every binding stays within... the cpuset for thread/core
			// granularity; socket places may legitimately extend beyond
			// (hwloc intersects, and so do we).
			if !b.And(cpuset).Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSpreadDistinctWhenPossible(t *testing.T) {
	m := topology.Frontier()
	f := func(n uint8) bool {
		count := int(n)%7 + 1 // <= number of places
		cpuset := topology.RangeCPUSet(1, 7)
		pls := ComputePlaces(m, cpuset, PlacesCores)
		b := Bindings(pls, BindSpread, count, cpuset)
		seen := map[int]bool{}
		for _, s := range b {
			if seen[s.First()] {
				return false
			}
			seen[s.First()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
