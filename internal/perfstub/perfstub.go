// Package perfstub is a PerfStubs/Caliper-style instrumentation interface
// (paper §6: "interfaces to ZeroSum could make its data accessible to
// application performance tools like TAU. Caliper or PerfStubs would be a
// good candidate for this purpose"). Applications register named timers and
// counters; a tool (ZeroSum, a profiler, a test) reads consistent snapshots
// and correlates them with system-level samples — the joint
// application/system context the paper argues configuration optimization
// needs.
//
// The clock is injected so the same instrumentation works inside the
// simulator (simulated time) and on a live host (wall time).
package perfstub

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Clock returns the current time as a float64 of seconds.
type Clock func() float64

// WallClock adapts time.Now.
func WallClock() Clock {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// Timer accumulates start/stop intervals.
type Timer struct {
	name    string
	clock   Clock
	count   uint64
	total   float64
	min     float64
	max     float64
	started bool
	startAt float64
}

// Start begins an interval; nested Starts are an error surfaced at Stop.
func (t *Timer) Start() {
	if t.started {
		return // tolerate double-start like PerfStubs; interval restarts
	}
	t.started = true
	t.startAt = t.clock()
}

// Stop ends the interval and folds it into the statistics. Stop without
// Start is a no-op.
func (t *Timer) Stop() {
	if !t.started {
		return
	}
	t.started = false
	d := t.clock() - t.startAt
	if d < 0 {
		d = 0
	}
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if t.count == 0 || d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
}

// Time runs fn inside a Start/Stop pair.
func (t *Timer) Time(fn func()) {
	t.Start()
	defer t.Stop()
	fn()
}

// TimerStats is a snapshot of one timer.
type TimerStats struct {
	Name  string
	Count uint64
	Total float64
	Min   float64
	Max   float64
}

// Mean returns the average interval (0 when never stopped).
func (s TimerStats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Total / float64(s.Count)
}

// Counter accumulates a named value.
type Counter struct {
	name  string
	value float64
	count uint64
}

// Add folds v into the counter.
func (c *Counter) Add(v float64) {
	c.value += v
	c.count++
}

// CounterStats is a snapshot of one counter.
type CounterStats struct {
	Name    string
	Value   float64
	Samples uint64
}

// Registry holds an application's instrumentation. It is not safe for
// concurrent use; in the simulator everything is single-threaded, and live
// applications keep one registry per goroutine or add their own locking
// (as PerfStubs leaves threading to the tool).
type Registry struct {
	clock    Clock
	timers   map[string]*Timer
	counters map[string]*Counter
}

// NewRegistry creates a registry on the given clock.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = WallClock()
	}
	return &Registry{
		clock:    clock,
		timers:   map[string]*Timer{},
		counters: map[string]*Counter{},
	}
}

// Timer returns (creating if needed) the named timer.
func (r *Registry) Timer(name string) *Timer {
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{name: name, clock: r.clock}
		r.timers[name] = t
	}
	return t
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Timers returns snapshots sorted by name.
func (r *Registry) Timers() []TimerStats {
	out := make([]TimerStats, 0, len(r.timers))
	for _, t := range r.timers {
		out = append(out, TimerStats{Name: t.name, Count: t.count, Total: t.total, Min: t.min, Max: t.max})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counters returns snapshots sorted by name.
func (r *Registry) Counters() []CounterStats {
	out := make([]CounterStats, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, CounterStats{Name: c.name, Value: c.value, Samples: c.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteReport renders the instrumentation summary in the style of the
// ZeroSum log's application section.
func (r *Registry) WriteReport(w io.Writer) error {
	if len(r.timers) > 0 {
		if _, err := fmt.Fprintf(w, "Application Timers:\n"); err != nil {
			return err
		}
		for _, t := range r.Timers() {
			if _, err := fmt.Fprintf(w, "  %-32s count: %6d total: %10.4fs mean: %10.6fs min: %10.6fs max: %10.6fs\n",
				t.Name, t.Count, t.Total, t.Mean(), t.Min, t.Max); err != nil {
				return err
			}
		}
	}
	if len(r.counters) > 0 {
		if _, err := fmt.Fprintf(w, "Application Counters:\n"); err != nil {
			return err
		}
		for _, c := range r.Counters() {
			if _, err := fmt.Fprintf(w, "  %-32s value: %14.4f samples: %6d\n",
				c.Name, c.Value, c.Samples); err != nil {
				return err
			}
		}
	}
	return nil
}
