package perfstub

import (
	"strings"
	"testing"
)

// fakeClock is an advanceable seconds counter.
type fakeClock struct{ now float64 }

func (c *fakeClock) fn() Clock { return func() float64 { return c.now } }

func TestTimerAccumulates(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry(clk.fn())
	tm := r.Timer("step")
	for i, d := range []float64{1, 3, 2} {
		tm.Start()
		clk.now += d
		tm.Stop()
		_ = i
	}
	stats := r.Timers()
	if len(stats) != 1 {
		t.Fatalf("timers = %d", len(stats))
	}
	s := stats[0]
	if s.Name != "step" || s.Count != 3 || s.Total != 6 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Mean() != 2 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestTimerMisuseTolerated(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry(clk.fn())
	tm := r.Timer("x")
	tm.Stop() // stop before start: no-op
	tm.Start()
	tm.Start() // double start: keeps first interval
	clk.now += 5
	tm.Stop()
	tm.Stop()
	s := r.Timers()[0]
	if s.Count != 1 || s.Total != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTimerTimeHelper(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry(clk.fn())
	r.Timer("fn").Time(func() { clk.now += 2.5 })
	if got := r.Timers()[0].Total; got != 2.5 {
		t.Fatalf("total = %v", got)
	}
}

func TestTimerIdentity(t *testing.T) {
	r := NewRegistry(nil)
	if r.Timer("a") != r.Timer("a") {
		t.Fatal("same name should return the same timer")
	}
	if r.Timer("a") == r.Timer("b") {
		t.Fatal("different names should differ")
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("bytes")
	c.Add(100)
	c.Add(50)
	r.Counter("events").Add(1)
	stats := r.Counters()
	if len(stats) != 2 {
		t.Fatalf("counters = %d", len(stats))
	}
	// Sorted by name: bytes, events.
	if stats[0].Name != "bytes" || stats[0].Value != 150 || stats[0].Samples != 2 {
		t.Fatalf("bytes = %+v", stats[0])
	}
}

func TestWriteReport(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry(clk.fn())
	tm := r.Timer("walker_step")
	tm.Start()
	clk.now += 0.28
	tm.Stop()
	r.Counter("walkers").Add(7)
	var sb strings.Builder
	if err := r.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Application Timers:", "walker_step", "Application Counters:", "walkers"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyReport(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry(nil).WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("empty registry should write nothing, got %q", sb.String())
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := WallClock()
	a := c()
	b := c()
	if b < a {
		t.Fatal("wall clock went backwards")
	}
}

func TestNegativeIntervalClamped(t *testing.T) {
	clk := &fakeClock{now: 10}
	r := NewRegistry(clk.fn())
	tm := r.Timer("t")
	tm.Start()
	clk.now = 5 // clock anomaly
	tm.Stop()
	if got := r.Timers()[0].Total; got != 0 {
		t.Fatalf("negative interval should clamp to 0, got %v", got)
	}
}
