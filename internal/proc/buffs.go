package proc

// BufFS is the allocation-free extension of FS the monitor's sampling loop
// reads through. Every XxxInto method writes the file's current text into
// the caller's reusable buffer (growing it only when the content outgrows
// the capacity) and returns the filled slice, so a steady-state tick
// performs no allocation; OpenTask returns a per-LWP reader that holds the
// underlying file descriptors open across ticks. Both RealFS (cached fds +
// pread) and the sched simulator implement it; AdaptFS upgrades any other
// FS via the allocating read path.
//
// BufFS methods share cached state and must be called from one goroutine at
// a time; distinct TaskReaders are independent and may be used concurrently
// with each other (the monitor's scan workers rely on this).
type BufFS interface {
	FS
	// TasksInto appends the live LWP ids of pid to tids in ascending order
	// and returns the extended slice, reusing its storage across ticks.
	TasksInto(pid int, tids []int) ([]int, error)
	// OpenTask returns a reader over one LWP's stat and status files. The
	// reader stays valid across ticks until the thread exits, at which point
	// reads fail (ESRCH on live /proc) and the caller must Close it.
	OpenTask(pid, tid int) (TaskReader, error)
	// ProcessStatusInto reads /proc/<pid>/status into buf.
	ProcessStatusInto(pid int, buf []byte) ([]byte, error)
	// ProcessIOInto reads /proc/<pid>/io into buf.
	ProcessIOInto(pid int, buf []byte) ([]byte, error)
	// MeminfoInto reads /proc/meminfo into buf.
	MeminfoInto(buf []byte) ([]byte, error)
	// StatInto reads /proc/stat into buf.
	StatInto(buf []byte) ([]byte, error)
}

// TaskReader reads one LWP's files through cached descriptors. StatInto and
// StatusInto fill the caller's buffer and return the filled slice; a read
// error means the thread is gone and the reader must be closed.
type TaskReader interface {
	StatInto(buf []byte) ([]byte, error)
	StatusInto(buf []byte) ([]byte, error)
	Close() error
}

// AdaptFS returns fs as a BufFS. Implementations that already provide the
// buffered extension are returned unchanged; anything else is wrapped in an
// adapter whose Into methods copy through the plain allocating reads (still
// correct, just not allocation-free).
func AdaptFS(fs FS) BufFS {
	if b, ok := fs.(BufFS); ok {
		return b
	}
	return &bufAdapter{FS: fs}
}

type bufAdapter struct{ FS }

func (a *bufAdapter) TasksInto(pid int, tids []int) ([]int, error) {
	ts, err := a.FS.Tasks(pid)
	if err != nil {
		return tids, err
	}
	return append(tids, ts...), nil
}

func (a *bufAdapter) OpenTask(pid, tid int) (TaskReader, error) {
	// Probe once so a dead tid fails at open, matching RealFS.
	if _, err := a.FS.TaskStat(pid, tid); err != nil {
		return nil, err
	}
	return &adapterTaskReader{fs: a.FS, pid: pid, tid: tid}, nil
}

func (a *bufAdapter) ProcessStatusInto(pid int, buf []byte) ([]byte, error) {
	b, err := a.FS.ProcessStatus(pid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (a *bufAdapter) ProcessIOInto(pid int, buf []byte) ([]byte, error) {
	b, err := a.FS.ProcessIO(pid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (a *bufAdapter) MeminfoInto(buf []byte) ([]byte, error) {
	b, err := a.FS.Meminfo()
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (a *bufAdapter) StatInto(buf []byte) ([]byte, error) {
	b, err := a.FS.Stat()
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

type adapterTaskReader struct {
	fs       FS
	pid, tid int
}

func (r *adapterTaskReader) StatInto(buf []byte) ([]byte, error) {
	b, err := r.fs.TaskStat(r.pid, r.tid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (r *adapterTaskReader) StatusInto(buf []byte) ([]byte, error) {
	b, err := r.fs.TaskStatus(r.pid, r.tid)
	if err != nil {
		return buf, err
	}
	return append(buf[:0], b...), nil
}

func (r *adapterTaskReader) Close() error { return nil }
