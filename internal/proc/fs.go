package proc

import (
	"fmt"
	"io"
	"os"
	"strconv"
)

// FS is the view of /proc the monitor reads through. Both the kernel
// simulator (internal/sched) and the live Linux host (RealFS) implement it.
// All payloads are genuine /proc text so the monitor exercises identical
// parsing either way.
type FS interface {
	// SelfPID returns the pid of the monitored process.
	SelfPID() int
	// Tasks lists the LWP (thread) ids of a process, ascending — the
	// contents of /proc/<pid>/task.
	Tasks(pid int) ([]int, error)
	// TaskStat returns /proc/<pid>/task/<tid>/stat text.
	TaskStat(pid, tid int) ([]byte, error)
	// TaskStatus returns /proc/<pid>/task/<tid>/status text.
	TaskStatus(pid, tid int) ([]byte, error)
	// ProcessStatus returns /proc/<pid>/status text.
	ProcessStatus(pid int) ([]byte, error)
	// ProcessIO returns /proc/<pid>/io text (cumulative I/O counters).
	ProcessIO(pid int) ([]byte, error)
	// Meminfo returns /proc/meminfo text.
	Meminfo() ([]byte, error)
	// Stat returns /proc/stat text.
	Stat() ([]byte, error)
	// Hostname returns the node's hostname (the monitor records it in the
	// process summary, as ZeroSum does via gethostname).
	Hostname() string
}

// RealFS reads the live /proc of this Linux host. Root is normally "/proc";
// tests may point it at a fixture tree. The zero value (plus Root) works;
// the BufFS fd caches initialise lazily on first use and are released by
// Close. The plain FS methods stay stateless; the BufFS methods share
// cached descriptors and are not safe for concurrent use (see BufFS).
type RealFS struct {
	Root string

	// Cached descriptors for the process-scoped and node-scoped files the
	// monitor re-reads every tick. One slot per file: a monitor watches a
	// single process, so keying by pid would only add lookups.
	statusFile  *os.File
	statusPID   int
	ioFile      *os.File
	ioPID       int
	meminfoFile *os.File
	statFile    *os.File

	// Task-listing state for TasksInto (see fs_linux.go).
	taskDir    *os.File
	taskDirPID int
	direntBuf  []byte

	pathBuf []byte // scratch for building file paths without fmt
}

// NewRealFS returns a RealFS rooted at /proc.
func NewRealFS() *RealFS { return &RealFS{Root: "/proc"} }

// SelfPID implements FS.
func (r *RealFS) SelfPID() int { return os.Getpid() }

// Tasks implements FS by listing <root>/<pid>/task.
func (r *RealFS) Tasks(pid int) ([]int, error) {
	return r.TasksInto(pid, nil)
}

// TaskStat implements FS.
func (r *RealFS) TaskStat(pid, tid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/task/%d/stat", r.Root, pid, tid))
}

// TaskStatus implements FS.
func (r *RealFS) TaskStatus(pid, tid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/task/%d/status", r.Root, pid, tid))
}

// ProcessStatus implements FS.
func (r *RealFS) ProcessStatus(pid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/status", r.Root, pid))
}

// ProcessIO implements FS.
func (r *RealFS) ProcessIO(pid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/io", r.Root, pid))
}

// Meminfo implements FS.
func (r *RealFS) Meminfo() ([]byte, error) {
	return os.ReadFile(r.Root + "/meminfo")
}

// Stat implements FS.
func (r *RealFS) Stat() ([]byte, error) {
	return os.ReadFile(r.Root + "/stat")
}

// Hostname implements FS.
func (r *RealFS) Hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}

// Close releases every cached descriptor. The RealFS remains usable; caches
// re-open lazily on the next BufFS read.
func (r *RealFS) Close() error {
	closeFile(&r.statusFile)
	closeFile(&r.ioFile)
	closeFile(&r.meminfoFile)
	closeFile(&r.statFile)
	closeFile(&r.taskDir)
	return nil
}

func closeFile(f **os.File) {
	if *f != nil {
		_ = (*f).Close() // read-only descriptor: nothing to flush
		*f = nil
	}
}

// appendPidPath builds "<root>/<pid>/<file>" into r.pathBuf.
func (r *RealFS) pidPath(pid int, file string) string {
	b := append(r.pathBuf[:0], r.Root...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, '/')
	b = append(b, file...)
	r.pathBuf = b
	return string(b)
}

// taskPath builds "<root>/<pid>/task" or "<root>/<pid>/task/<tid>/<file>".
func (r *RealFS) taskPath(pid, tid int, file string) string {
	b := append(r.pathBuf[:0], r.Root...)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, "/task"...)
	if tid >= 0 {
		b = append(b, '/')
		b = strconv.AppendInt(b, int64(tid), 10)
		b = append(b, '/')
		b = append(b, file...)
	}
	r.pathBuf = b
	return string(b)
}

// cachedFile returns the cached descriptor, opening it on first use or when
// the pid changed (pid < 0 means a node-scoped file with no pid check).
func (r *RealFS) cachedFile(slot **os.File, slotPID *int, pid int, path func() string) (*os.File, error) {
	if *slot != nil && (slotPID == nil || *slotPID == pid) {
		return *slot, nil
	}
	closeFile(slot)
	f, err := os.Open(path())
	if err != nil {
		return nil, err
	}
	*slot = f
	if slotPID != nil {
		*slotPID = pid
	}
	return f, nil
}

// readFileInto preads the whole file from offset 0 into buf's storage,
// growing it only when the content does not fit. Reading from offset 0
// makes procfs regenerate the content on every call, so one cached
// descriptor serves the file for the thread's whole lifetime; when the
// thread exits the pread fails (ESRCH) and the caller invalidates.
//
//zerosum:hotpath
func readFileInto(f *os.File, buf []byte) ([]byte, error) {
	if cap(buf) < 512 {
		buf = make([]byte, 8192)
	} else {
		buf = buf[:cap(buf)]
	}
	for {
		n, err := f.ReadAt(buf, 0)
		if err == io.EOF {
			return buf[:n], nil
		}
		if err != nil {
			return buf[:0], err
		}
		// The buffer was filled exactly; the content may continue. Double
		// and re-read from 0 so the result is one consistent snapshot.
		buf = make([]byte, 2*len(buf))
	}
}

// ProcessStatusInto implements BufFS.
func (r *RealFS) ProcessStatusInto(pid int, buf []byte) ([]byte, error) {
	f, err := r.cachedFile(&r.statusFile, &r.statusPID, pid, func() string { return r.pidPath(pid, "status") })
	if err != nil {
		return buf, err
	}
	out, err := readFileInto(f, buf)
	if err != nil {
		closeFile(&r.statusFile)
		return buf, err
	}
	return out, nil
}

// ProcessIOInto implements BufFS.
func (r *RealFS) ProcessIOInto(pid int, buf []byte) ([]byte, error) {
	f, err := r.cachedFile(&r.ioFile, &r.ioPID, pid, func() string { return r.pidPath(pid, "io") })
	if err != nil {
		return buf, err
	}
	out, err := readFileInto(f, buf)
	if err != nil {
		closeFile(&r.ioFile)
		return buf, err
	}
	return out, nil
}

// MeminfoInto implements BufFS.
func (r *RealFS) MeminfoInto(buf []byte) ([]byte, error) {
	f, err := r.cachedFile(&r.meminfoFile, nil, -1, func() string { return r.Root + "/meminfo" })
	if err != nil {
		return buf, err
	}
	out, err := readFileInto(f, buf)
	if err != nil {
		closeFile(&r.meminfoFile)
		return buf, err
	}
	return out, nil
}

// StatInto implements BufFS.
func (r *RealFS) StatInto(buf []byte) ([]byte, error) {
	f, err := r.cachedFile(&r.statFile, nil, -1, func() string { return r.Root + "/stat" })
	if err != nil {
		return buf, err
	}
	out, err := readFileInto(f, buf)
	if err != nil {
		closeFile(&r.statFile)
		return buf, err
	}
	return out, nil
}

// OpenTask implements BufFS: both per-LWP files are opened eagerly so a
// vanished thread fails here rather than on the first read.
func (r *RealFS) OpenTask(pid, tid int) (TaskReader, error) {
	stat, err := os.Open(r.taskPath(pid, tid, "stat"))
	if err != nil {
		return nil, err
	}
	status, err := os.Open(r.taskPath(pid, tid, "status"))
	if err != nil {
		_ = stat.Close() // read-only descriptor: nothing to flush
		return nil, err
	}
	return &realTaskReader{stat: stat, status: status}, nil
}

// realTaskReader holds one LWP's stat and status descriptors open across
// ticks, rereading them via pread from offset 0.
type realTaskReader struct {
	stat, status *os.File
}

// StatInto implements TaskReader.
//
//zerosum:hotpath
func (t *realTaskReader) StatInto(buf []byte) ([]byte, error) {
	return readFileInto(t.stat, buf)
}

// StatusInto implements TaskReader.
//
//zerosum:hotpath
func (t *realTaskReader) StatusInto(buf []byte) ([]byte, error) {
	return readFileInto(t.status, buf)
}

// Close implements TaskReader.
func (t *realTaskReader) Close() error {
	err := t.stat.Close()
	if err2 := t.status.Close(); err == nil {
		err = err2
	}
	return err
}

var (
	_ FS    = (*RealFS)(nil)
	_ BufFS = (*RealFS)(nil)
)
