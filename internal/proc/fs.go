package proc

import (
	"fmt"
	"os"
	"sort"
	"strconv"
)

// FS is the view of /proc the monitor reads through. Both the kernel
// simulator (internal/sched) and the live Linux host (RealFS) implement it.
// All payloads are genuine /proc text so the monitor exercises identical
// parsing either way.
type FS interface {
	// SelfPID returns the pid of the monitored process.
	SelfPID() int
	// Tasks lists the LWP (thread) ids of a process, ascending — the
	// contents of /proc/<pid>/task.
	Tasks(pid int) ([]int, error)
	// TaskStat returns /proc/<pid>/task/<tid>/stat text.
	TaskStat(pid, tid int) ([]byte, error)
	// TaskStatus returns /proc/<pid>/task/<tid>/status text.
	TaskStatus(pid, tid int) ([]byte, error)
	// ProcessStatus returns /proc/<pid>/status text.
	ProcessStatus(pid int) ([]byte, error)
	// ProcessIO returns /proc/<pid>/io text (cumulative I/O counters).
	ProcessIO(pid int) ([]byte, error)
	// Meminfo returns /proc/meminfo text.
	Meminfo() ([]byte, error)
	// Stat returns /proc/stat text.
	Stat() ([]byte, error)
	// Hostname returns the node's hostname (the monitor records it in the
	// process summary, as ZeroSum does via gethostname).
	Hostname() string
}

// RealFS reads the live /proc of this Linux host. Root is normally "/proc";
// tests may point it at a fixture tree.
type RealFS struct {
	Root string
}

// NewRealFS returns a RealFS rooted at /proc.
func NewRealFS() *RealFS { return &RealFS{Root: "/proc"} }

// SelfPID implements FS.
func (r *RealFS) SelfPID() int { return os.Getpid() }

// Tasks implements FS by listing <root>/<pid>/task.
func (r *RealFS) Tasks(pid int) ([]int, error) {
	entries, err := os.ReadDir(fmt.Sprintf("%s/%d/task", r.Root, pid))
	if err != nil {
		return nil, fmt.Errorf("proc: list tasks of %d: %w", pid, err)
	}
	tids := make([]int, 0, len(entries))
	for _, e := range entries {
		if tid, err := strconv.Atoi(e.Name()); err == nil {
			tids = append(tids, tid)
		}
	}
	sort.Ints(tids)
	return tids, nil
}

// TaskStat implements FS.
func (r *RealFS) TaskStat(pid, tid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/task/%d/stat", r.Root, pid, tid))
}

// TaskStatus implements FS.
func (r *RealFS) TaskStatus(pid, tid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/task/%d/status", r.Root, pid, tid))
}

// ProcessStatus implements FS.
func (r *RealFS) ProcessStatus(pid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/status", r.Root, pid))
}

// ProcessIO implements FS.
func (r *RealFS) ProcessIO(pid int) ([]byte, error) {
	return os.ReadFile(fmt.Sprintf("%s/%d/io", r.Root, pid))
}

// Meminfo implements FS.
func (r *RealFS) Meminfo() ([]byte, error) {
	return os.ReadFile(r.Root + "/meminfo")
}

// Stat implements FS.
func (r *RealFS) Stat() ([]byte, error) {
	return os.ReadFile(r.Root + "/stat")
}

// Hostname implements FS.
func (r *RealFS) Hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "unknown"
	}
	return h
}

var _ FS = (*RealFS)(nil)
