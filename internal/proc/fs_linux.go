//go:build linux

package proc

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"slices"
	"syscall"
)

// TasksInto implements BufFS by scanning <root>/<pid>/task with getdents64
// on a cached directory descriptor: the dirent names are parsed as bytes
// (non-numeric entries skipped without a strconv error allocation) and the
// directory is rewound with lseek instead of re-opened, so the steady-state
// tick allocates nothing.
//
//zerosum:hotpath
func (r *RealFS) TasksInto(pid int, tids []int) ([]int, error) {
	if r.taskDir == nil || r.taskDirPID != pid {
		if err := r.openTaskDir(pid); err != nil {
			return tids, err
		}
	} else if _, err := r.taskDir.Seek(0, io.SeekStart); err != nil {
		closeFile(&r.taskDir)
		return tids, fmt.Errorf("proc: rewind tasks of %d: %w", pid, err)
	}
	if r.direntBuf == nil {
		r.direntBuf = make([]byte, 16<<10)
	}
	fd := int(r.taskDir.Fd())
	start := len(tids)
	for {
		n, err := syscall.ReadDirent(fd, r.direntBuf)
		if err != nil {
			closeFile(&r.taskDir)
			return tids, fmt.Errorf("proc: list tasks of %d: %w", pid, err)
		}
		if n == 0 {
			break
		}
		buf := r.direntBuf[:n]
		for len(buf) >= direntNameOff {
			reclen := int(binary.LittleEndian.Uint16(buf[direntReclenOff:]))
			if reclen < direntNameOff || reclen > len(buf) {
				closeFile(&r.taskDir)
				return tids, fmt.Errorf("proc: malformed dirent in tasks of %d", pid)
			}
			if tid, ok := direntTID(buf[direntNameOff:reclen]); ok {
				tids = append(tids, tid)
			}
			buf = buf[reclen:]
		}
	}
	slices.Sort(tids[start:])
	return tids, nil
}

// openTaskDir (re)opens the cached task directory descriptor. It runs on
// first use and after pid changes or listing failures, never steady-state.
//
//zerosum:coldpath
func (r *RealFS) openTaskDir(pid int) error {
	closeFile(&r.taskDir)
	d, err := os.Open(r.taskPath(pid, -1, ""))
	if err != nil {
		return fmt.Errorf("proc: list tasks of %d: %w", pid, err)
	}
	r.taskDir, r.taskDirPID = d, pid
	return nil
}

// linux_dirent64 field offsets: ino(8) off(8) reclen(2) type(1) name...
const (
	direntReclenOff = 16
	direntNameOff   = 19
)

// direntTID parses a NUL-terminated dirent name as a tid; any non-numeric
// name (".", "..", stray files) reports !ok without allocating.
func direntTID(name []byte) (int, bool) {
	n := 0
	for i, c := range name {
		if c == 0 {
			return n, i > 0
		}
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, len(name) > 0
}
