//go:build !linux

package proc

import (
	"fmt"
	"os"
	"slices"
)

// TasksInto implements BufFS on non-Linux hosts (where RealFS only ever
// reads fixture trees) via the portable directory listing. It still skips
// non-numeric entries without the strconv error allocation, but the listing
// itself allocates.
func (r *RealFS) TasksInto(pid int, tids []int) ([]int, error) {
	entries, err := os.ReadDir(r.taskPath(pid, -1, ""))
	if err != nil {
		return tids, fmt.Errorf("proc: list tasks of %d: %w", pid, err)
	}
	start := len(tids)
	for _, e := range entries {
		name := e.Name()
		tid, ok := 0, len(name) > 0
		for i := 0; i < len(name) && ok; i++ {
			c := name[i]
			if c < '0' || c > '9' {
				ok = false
				break
			}
			tid = tid*10 + int(c-'0')
		}
		if ok {
			tids = append(tids, tid)
		}
	}
	slices.Sort(tids[start:])
	return tids, nil
}
