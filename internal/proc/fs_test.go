package proc

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"zerosum/internal/topology"
)

// writeFixtureTree lays out a minimal /proc lookalike for pid 42 with the
// given tids, returning its root.
func writeFixtureTree(t *testing.T, tids ...int) string {
	t.Helper()
	root := t.TempDir()
	pidDir := filepath.Join(root, "42")
	statText := func(tid int) string {
		return RenderTaskStat(TaskStat{PID: tid, Comm: "fix", State: StateRunning,
			UTime: 100, STime: 10, NumThrs: len(tids), Processor: 1})
	}
	statusText := RenderTaskStatus(TaskStatus{Name: "fix", State: StateRunning,
		Tgid: 42, Pid: 42, Threads: len(tids), VmRSSKB: 1024,
		CpusAllowed: mustCPUList(t, "0-3"), VoluntaryCtxt: 5, NonvoluntaryCtx: 2})
	for _, tid := range tids {
		d := filepath.Join(pidDir, "task", strconv.Itoa(tid))
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		mustWrite(t, filepath.Join(d, "stat"), statText(tid))
		mustWrite(t, filepath.Join(d, "status"), statusText)
	}
	mustWrite(t, filepath.Join(pidDir, "status"), statusText)
	mustWrite(t, filepath.Join(pidDir, "io"), RenderTaskIO(TaskIO{RChar: 100, WChar: 50}))
	mustWrite(t, filepath.Join(root, "meminfo"), RenderMeminfo(Meminfo{MemTotalKB: 1 << 20, MemFreeKB: 1 << 19}))
	mustWrite(t, filepath.Join(root, "stat"), RenderStat(Stat{
		Aggregate: CPUTimes{CPU: -1, User: 10, Idle: 100},
		PerCPU:    []CPUTimes{{CPU: 0, User: 10, Idle: 100}},
	}))
	return root
}

func mustWrite(t *testing.T, path, text string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustCPUList(t *testing.T, s string) topology.CPUSet {
	t.Helper()
	set, err := topology.ParseCPUList(s)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestRealFSBufReads(t *testing.T) {
	root := writeFixtureTree(t, 42, 77, 103)
	fs := &RealFS{Root: root}
	defer fs.Close()

	tids, err := fs.TasksInto(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tids) != 3 || tids[0] != 42 || tids[1] != 77 || tids[2] != 103 {
		t.Fatalf("TasksInto = %v, want [42 77 103]", tids)
	}

	rd, err := fs.OpenTask(42, 77)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var buf []byte
	buf, err = rd.StatInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := ParseTaskStat(buf)
	if err != nil || st.PID != 77 {
		t.Fatalf("stat via reader: %v %+v", err, st)
	}

	// A cached descriptor must observe in-place rewrites (procfs regenerates
	// content per pread; a fixture file rewrite models the same thing).
	mustWrite(t, filepath.Join(root, "42", "task", "77", "stat"),
		RenderTaskStat(TaskStat{PID: 77, Comm: "fix", State: StateSleeping,
			UTime: 222, STime: 11, NumThrs: 3, Processor: 0}))
	buf, err = rd.StatInto(buf)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = ParseTaskStat(buf); err != nil || st.UTime != 222 || st.State != StateSleeping {
		t.Fatalf("reread after rewrite: %v %+v", err, st)
	}

	var mbuf []byte
	if mbuf, err = fs.MeminfoInto(mbuf); err != nil {
		t.Fatal(err)
	}
	if m, err := ParseMeminfo(mbuf); err != nil || m.MemTotalKB != 1<<20 {
		t.Fatalf("meminfo via cache: %v %+v", err, m)
	}

	// OpenTask on a dead tid fails.
	if _, err := fs.OpenTask(42, 9999); err == nil {
		t.Fatal("OpenTask on missing tid should fail")
	}
}

// TestRealFSBufZeroAlloc pins the fd-cache contract: after the first tick
// warms the caches, listing tasks and rereading every cached file allocates
// nothing. This runs against a fixture tree so CI exercises it without a
// live /proc.
func TestRealFSBufZeroAlloc(t *testing.T) {
	root := writeFixtureTree(t, 42, 77, 103)
	fs := &RealFS{Root: root}
	defer fs.Close()

	var tids []int
	rd, err := fs.OpenTask(42, 77)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	var statBuf, statusBuf, pstatusBuf, ioBuf, memBuf, cpuBuf []byte
	tick := func() {
		var err error
		if tids, err = fs.TasksInto(42, tids[:0]); err != nil {
			t.Fatal(err)
		}
		if statBuf, err = rd.StatInto(statBuf); err != nil {
			t.Fatal(err)
		}
		if statusBuf, err = rd.StatusInto(statusBuf); err != nil {
			t.Fatal(err)
		}
		if pstatusBuf, err = fs.ProcessStatusInto(42, pstatusBuf); err != nil {
			t.Fatal(err)
		}
		if ioBuf, err = fs.ProcessIOInto(42, ioBuf); err != nil {
			t.Fatal(err)
		}
		if memBuf, err = fs.MeminfoInto(memBuf); err != nil {
			t.Fatal(err)
		}
		if cpuBuf, err = fs.StatInto(cpuBuf); err != nil {
			t.Fatal(err)
		}
	}
	tick() // warmup: opens descriptors, sizes buffers
	if avg := testing.AllocsPerRun(100, tick); avg != 0 {
		t.Errorf("steady-state BufFS tick allocates %.1f per run, want 0", avg)
	}
}
