package proc

import "testing"

// FuzzProcStatParse feeds arbitrary text through every /proc text parser.
// The parsers run on the monitor's sampling path against files the kernel —
// or a hostile container runtime — controls, so the only contract is: return
// an error, never panic, never allocate proportional to anything but the
// input length.
func FuzzProcStatParse(f *testing.F) {
	f.Add("1234 (app (x) y) R 1 1234 1234 0 -1 4194304 100 0 2 0 50 10 0 0 20 0 4 0 300 10485760 2048 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0")
	f.Add("Name:\tapp\nState:\tR (running)\nTgid:\t1234\nPid:\t1234\nPPid:\t1\nThreads:\t4\nVmPeak:\t  10240 kB\nVmRSS:\t 2048 kB\nCpus_allowed:\tff\nCpus_allowed_list:\t0-7\nvoluntary_ctxt_switches:\t12\nnonvoluntary_ctxt_switches:\t3\n")
	f.Add("MemTotal:       16384000 kB\nMemFree:         8192000 kB\nMemAvailable:   12288000 kB\nBuffers:          100000 kB\nCached:          2000000 kB\nSwapTotal:             0 kB\nSwapFree:              0 kB\n")
	f.Add("rchar: 100\nwchar: 200\nsyscr: 10\nsyscw: 20\nread_bytes: 4096\nwrite_bytes: 8192\ncancelled_write_bytes: 0\n")
	f.Add("cpu  10 0 20 1000 5 0 1 0 0 0\ncpu0 5 0 10 500 2 0 1 0 0 0\ncpu1 5 0 10 500 3 0 0 0 0 0\nctxt 12345\nbtime 1700000000\nprocesses 100\nprocs_running 2\nprocs_blocked 0\n")
	f.Add("")
	f.Add("1 () R")
	f.Add("cpu bad row\n")
	f.Add("Cpus_allowed_list:\t0-\n")

	f.Fuzz(func(t *testing.T, text string) {
		b := []byte(text)
		_, _ = ParseTaskStat(b)
		_, _ = ParseTaskStatus(b)
		_, _ = ParseMeminfo(b)
		_, _ = ParseTaskIO(b)
		_, _ = ParseStat(b)
	})
}
