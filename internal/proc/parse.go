package proc

import (
	"bytes"
	"fmt"

	"zerosum/internal/topology"
)

// The parsers in this file run once per LWP per sampling tick, so they are
// written against []byte with index-based field scanning: no strings.Fields
// field slices, no substring copies, no strconv round trips through string.
// Each ParseXxx has a ParseXxxInto variant that reuses the caller's struct
// (and any slice/string storage inside it) so the steady-state sampling loop
// allocates nothing; the value-returning forms are thin wrappers kept for
// call sites off the hot path.

func isSpaceByte(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && isSpaceByte(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceByte(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// parseU64 parses an unsigned decimal; the whole input must be digits.
func parseU64(b []byte) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// parseI64 parses a signed decimal; the whole input must be a number.
func parseI64(b []byte) (int64, bool) {
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	v, ok := parseU64(b)
	if !ok {
		return 0, false
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// atoiSoft parses the leading integer of b ("1234 kB" → 1234), returning 0
// on malformed input — the forgiving read /proc status-style lines get.
func atoiSoft(b []byte) int {
	b = trimSpaceBytes(b)
	neg := false
	if len(b) > 0 && (b[0] == '-' || b[0] == '+') {
		neg = b[0] == '-'
		b = b[1:]
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		return -n
	}
	return n
}

// u64Soft parses the leading unsigned integer of b, 0 on malformed input.
func u64Soft(b []byte) uint64 {
	b = trimSpaceBytes(b)
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

// kbSoft parses "1234 kB" (or bare "1234") into 1234.
func kbSoft(b []byte) uint64 { return u64Soft(b) }

// setString reassigns *dst only when the bytes differ, so an unchanged
// field (the overwhelmingly common case tick over tick) costs a compare
// instead of a string allocation.
func setString(dst *string, b []byte) {
	if string(b) != *dst { // comparison does not allocate
		*dst = string(b)
	}
}

// nextLine splits b at the first newline, returning the line (without the
// newline) and the remainder.
func nextLine(b []byte) (line, rest []byte) {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

// ParseTaskStat parses the single-line /proc/<pid>/task/<tid>/stat format.
// The comm field may contain spaces and parentheses; per the proc(5) advice
// the parser scans for the *last* ')'.
func ParseTaskStat(b []byte) (TaskStat, error) {
	var s TaskStat
	err := ParseTaskStatInto(b, &s)
	return s, err
}

// ParseTaskStatInto parses stat text into s, reusing s's storage: Comm is
// only re-allocated when the thread was renamed.
//
//zerosum:hotpath
func ParseTaskStatInto(b []byte, s *TaskStat) error {
	comm := s.Comm
	*s = TaskStat{Comm: comm}
	b = trimSpaceBytes(b)
	open := bytes.IndexByte(b, '(')
	close_ := bytes.LastIndexByte(b, ')')
	if open < 0 || close_ < open {
		return fmt.Errorf("proc: malformed stat line %q", truncate(b, 60))
	}
	pid, ok := parseI64(trimSpaceBytes(b[:open]))
	if !ok {
		return fmt.Errorf("proc: bad pid in stat %q", truncate(b, 60))
	}
	s.PID = int(pid)
	setString(&s.Comm, b[open+1:close_])
	// Scan the space-separated fields after the comm by index; the first is
	// field 3 (state) in proc(5) numbering.
	rest := b[close_+1:]
	field := 2
	for i := 0; i < len(rest); {
		for i < len(rest) && isSpaceByte(rest[i]) {
			i++
		}
		if i >= len(rest) {
			break
		}
		j := i
		for j < len(rest) && !isSpaceByte(rest[j]) {
			j++
		}
		field++
		f := rest[i:j]
		i = j
		if field == 3 {
			if len(f) != 1 {
				return fmt.Errorf("proc: bad state %q", f)
			}
			s.State = TaskState(f[0])
			continue
		}
		var udst *uint64
		var idst *int
		switch field {
		case 4:
			idst = &s.PPID
		case 10:
			udst = &s.MinFlt
		case 12:
			udst = &s.MajFlt
		case 14:
			udst = &s.UTime
		case 15:
			udst = &s.STime
		case 18:
			idst = &s.Priority
		case 19:
			idst = &s.Nice
		case 20:
			idst = &s.NumThrs
		case 22:
			udst = &s.StartTime
		case 23:
			udst = &s.VSize
		case 24:
			v, ok := parseI64(f)
			if !ok {
				return fmt.Errorf("proc: bad rss %q", f)
			}
			s.RSS = v
		case 36:
			udst = &s.NSwap
		case 39:
			idst = &s.Processor
		}
		if udst != nil {
			v, ok := parseU64(f)
			if !ok {
				return fmt.Errorf("proc: bad stat field %d %q", field, f)
			}
			*udst = v
		}
		if idst != nil {
			v, ok := parseI64(f)
			if !ok {
				return fmt.Errorf("proc: bad stat field %d %q", field, f)
			}
			*idst = int(v)
		}
	}
	if field < 39 {
		return fmt.Errorf("proc: stat line has %d fields after comm, want >= 37", field-2)
	}
	return nil
}

// ParseTaskStatus parses /proc/<pid>/status text. Lines it does not model
// are ignored, so it works against any kernel version's status file.
func ParseTaskStatus(b []byte) (TaskStatus, error) {
	var s TaskStatus
	err := ParseTaskStatusInto(b, &s)
	return s, err
}

// ParseTaskStatusInto parses status text into s, reusing s's storage (the
// Name string when unchanged and the CpusAllowed word slice).
//
//zerosum:hotpath
func ParseTaskStatusInto(b []byte, s *TaskStatus) error {
	name := s.Name
	cpus := s.CpusAllowed
	*s = TaskStatus{Name: name}
	s.CpusAllowed = cpus
	s.CpusAllowed.Reset()
	for len(b) > 0 {
		var line []byte
		line, b = nextLine(b)
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := line[:colon]
		val := trimSpaceBytes(line[colon+1:])
		switch string(key) { // constant cases: the conversion does not allocate
		case "Name":
			setString(&s.Name, val)
		case "State":
			if len(val) > 0 {
				s.State = TaskState(val[0])
			}
		case "Tgid":
			s.Tgid = atoiSoft(val)
		case "Pid":
			s.Pid = atoiSoft(val)
		case "PPid":
			s.PPid = atoiSoft(val)
		case "Threads":
			s.Threads = atoiSoft(val)
		case "VmPeak":
			s.VmPeakKB = kbSoft(val)
		case "VmSize":
			s.VmSizeKB = kbSoft(val)
		case "VmHWM":
			s.VmHWMKB = kbSoft(val)
		case "VmRSS":
			s.VmRSSKB = kbSoft(val)
		case "Cpus_allowed_list":
			if err := topology.ParseCPUListInto(val, &s.CpusAllowed); err != nil {
				return fmt.Errorf("proc: bad Cpus_allowed_list: %v", err)
			}
		case "Cpus_allowed":
			// Only used if the list form is absent; the list form is
			// parsed after and wins because it appears later in the file.
			if s.CpusAllowed.Empty() {
				// A malformed mask is ignored, matching the soft treatment
				// of the other fallback fields; Reset leaves the set empty.
				if err := topology.ParseHexMaskInto(val, &s.CpusAllowed); err != nil {
					s.CpusAllowed.Reset()
				}
			}
		case "voluntary_ctxt_switches":
			s.VoluntaryCtxt = u64Soft(val)
		case "nonvoluntary_ctxt_switches":
			s.NonvoluntaryCtx = u64Soft(val)
		}
	}
	if s.Name == "" && s.Pid == 0 {
		return fmt.Errorf("proc: status text has no recognisable fields")
	}
	return nil
}

// ParseMeminfo parses /proc/meminfo text.
func ParseMeminfo(b []byte) (Meminfo, error) {
	var m Meminfo
	err := ParseMeminfoInto(b, &m)
	return m, err
}

// ParseMeminfoInto parses meminfo text into m.
//
//zerosum:hotpath
func ParseMeminfoInto(b []byte, m *Meminfo) error {
	*m = Meminfo{}
	seen := false
	for len(b) > 0 {
		var line []byte
		line, b = nextLine(b)
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := line[:colon]
		kb := kbSoft(line[colon+1:])
		switch string(key) {
		case "MemTotal":
			m.MemTotalKB = kb
			seen = true
		case "MemFree":
			m.MemFreeKB = kb
		case "MemAvailable":
			m.MemAvailableKB = kb
		case "Buffers":
			m.BuffersKB = kb
		case "Cached":
			m.CachedKB = kb
		case "SwapTotal":
			m.SwapTotalKB = kb
		case "SwapFree":
			m.SwapFreeKB = kb
		case "Active":
			m.ActiveKB = kb
		case "Inactive":
			m.InactiveKB = kb
		}
	}
	if !seen {
		return fmt.Errorf("proc: meminfo text has no MemTotal")
	}
	return nil
}

// ParseTaskIO parses /proc/<pid>/io text.
func ParseTaskIO(b []byte) (TaskIO, error) {
	var io TaskIO
	err := ParseTaskIOInto(b, &io)
	return io, err
}

// ParseTaskIOInto parses io text into io.
//
//zerosum:hotpath
func ParseTaskIOInto(b []byte, io *TaskIO) error {
	*io = TaskIO{}
	seen := false
	for len(b) > 0 {
		var line []byte
		line, b = nextLine(b)
		colon := bytes.IndexByte(line, ':')
		if colon < 0 {
			continue
		}
		key := line[:colon]
		v := u64Soft(line[colon+1:])
		switch string(key) {
		case "rchar":
			io.RChar = v
			seen = true
		case "wchar":
			io.WChar = v
		case "syscr":
			io.SyscR = v
		case "syscw":
			io.SyscW = v
		case "read_bytes":
			io.ReadBytes = v
		case "write_bytes":
			io.WriteBytes = v
		case "cancelled_write_bytes":
			io.Cancelled = v
		}
	}
	if !seen {
		return fmt.Errorf("proc: io text has no rchar")
	}
	return nil
}

// ParseStat parses /proc/stat text.
func ParseStat(b []byte) (Stat, error) {
	var st Stat
	err := ParseStatInto(b, &st)
	return st, err
}

// ParseStatInto parses stat text into st, reusing st.PerCPU across calls.
//
//zerosum:hotpath
func ParseStatInto(b []byte, st *Stat) error {
	perCPU := st.PerCPU[:0]
	*st = Stat{}
	st.PerCPU = perCPU
	seenAgg := false
	for len(b) > 0 {
		var line []byte
		line, b = nextLine(b)
		i := 0
		for i < len(line) && isSpaceByte(line[i]) {
			i++
		}
		j := i
		for j < len(line) && !isSpaceByte(line[j]) {
			j++
		}
		label := line[i:j]
		rest := line[j:]
		if len(label) == 0 {
			continue
		}
		switch {
		case string(label) == "cpu":
			c, err := parseCPURow(-1, rest)
			if err != nil {
				return err
			}
			st.Aggregate = c
			seenAgg = true
		case bytes.HasPrefix(label, []byte("cpu")):
			n, ok := parseU64(label[3:])
			if !ok {
				return fmt.Errorf("proc: bad cpu row label %q", label)
			}
			c, err := parseCPURow(int(n), rest)
			if err != nil {
				return err
			}
			st.PerCPU = append(st.PerCPU, c)
		case string(label) == "ctxt":
			st.Ctxt = u64Soft(rest)
		case string(label) == "btime":
			st.BTime = u64Soft(rest)
		case string(label) == "processes":
			st.Processes = u64Soft(rest)
		case string(label) == "procs_running":
			st.Running = u64Soft(rest)
		case string(label) == "procs_blocked":
			st.Blocked = u64Soft(rest)
		}
	}
	if !seenAgg {
		return fmt.Errorf("proc: stat text has no aggregate cpu row")
	}
	return nil
}

// parseCPURow parses the jiffy buckets after a cpuN label.
func parseCPURow(cpu int, b []byte) (CPUTimes, error) {
	c := CPUTimes{CPU: cpu}
	dst := [...]*uint64{&c.User, &c.Nice, &c.System, &c.Idle, &c.IOWait, &c.IRQ, &c.SoftIRQ, &c.Steal}
	n := 0
	for i := 0; i < len(b) && n < len(dst); {
		for i < len(b) && isSpaceByte(b[i]) {
			i++
		}
		if i >= len(b) {
			break
		}
		j := i
		for j < len(b) && !isSpaceByte(b[j]) {
			j++
		}
		v, ok := parseU64(b[i:j])
		if !ok {
			return c, fmt.Errorf("proc: bad cpu field %q", b[i:j])
		}
		*dst[n] = v
		n++
		i = j
	}
	if n < 4 {
		return c, fmt.Errorf("proc: cpu row too short (%d fields)", n)
	}
	return c, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
