package proc

import (
	"fmt"
	"strconv"
	"strings"

	"zerosum/internal/topology"
)

// ParseTaskStat parses the single-line /proc/<pid>/task/<tid>/stat format.
// The comm field may contain spaces and parentheses; per the proc(5) advice
// the parser scans for the *last* ')'.
func ParseTaskStat(text string) (TaskStat, error) {
	var s TaskStat
	text = strings.TrimSpace(text)
	open := strings.IndexByte(text, '(')
	close_ := strings.LastIndexByte(text, ')')
	if open < 0 || close_ < open {
		return s, fmt.Errorf("proc: malformed stat line %q", truncate(text, 60))
	}
	pid, err := strconv.Atoi(strings.TrimSpace(text[:open]))
	if err != nil {
		return s, fmt.Errorf("proc: bad pid in stat: %v", err)
	}
	s.PID = pid
	s.Comm = text[open+1 : close_]
	rest := strings.Fields(text[close_+1:])
	// rest[0] is field 3 (state); field n of the stat line is rest[n-3].
	if len(rest) < 37 {
		return s, fmt.Errorf("proc: stat line has %d fields after comm, want >= 37", len(rest))
	}
	field := func(n int) string { return rest[n-3] }
	u64 := func(n int) (uint64, error) { return strconv.ParseUint(field(n), 10, 64) }
	i64 := func(n int) (int64, error) { return strconv.ParseInt(field(n), 10, 64) }

	if len(field(3)) != 1 {
		return s, fmt.Errorf("proc: bad state %q", field(3))
	}
	s.State = TaskState(field(3)[0])
	ppid, err := i64(4)
	if err != nil {
		return s, fmt.Errorf("proc: bad ppid: %v", err)
	}
	s.PPID = int(ppid)
	type fspec struct {
		n   int
		dst *uint64
	}
	for _, f := range []fspec{
		{10, &s.MinFlt}, {12, &s.MajFlt}, {14, &s.UTime}, {15, &s.STime},
		{22, &s.StartTime}, {23, &s.VSize}, {36, &s.NSwap},
	} {
		v, err := u64(f.n)
		if err != nil {
			return s, fmt.Errorf("proc: bad stat field %d: %v", f.n, err)
		}
		*f.dst = v
	}
	for _, f := range []struct {
		n   int
		dst *int
	}{
		{18, &s.Priority}, {19, &s.Nice}, {20, &s.NumThrs}, {39, &s.Processor},
	} {
		v, err := i64(f.n)
		if err != nil {
			return s, fmt.Errorf("proc: bad stat field %d: %v", f.n, err)
		}
		*f.dst = int(v)
	}
	rss, err := i64(24)
	if err != nil {
		return s, fmt.Errorf("proc: bad rss: %v", err)
	}
	s.RSS = rss
	return s, nil
}

// ParseTaskStatus parses /proc/<pid>/status text. Lines it does not model
// are ignored, so it works against any kernel version's status file.
func ParseTaskStatus(text string) (TaskStatus, error) {
	var s TaskStatus
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch key {
		case "Name":
			s.Name = val
		case "State":
			if len(val) > 0 {
				s.State = TaskState(val[0])
			}
		case "Tgid":
			s.Tgid = atoiSoft(val)
		case "Pid":
			s.Pid = atoiSoft(val)
		case "PPid":
			s.PPid = atoiSoft(val)
		case "Threads":
			s.Threads = atoiSoft(val)
		case "VmPeak":
			s.VmPeakKB = kbSoft(val)
		case "VmSize":
			s.VmSizeKB = kbSoft(val)
		case "VmHWM":
			s.VmHWMKB = kbSoft(val)
		case "VmRSS":
			s.VmRSSKB = kbSoft(val)
		case "Cpus_allowed_list":
			set, err := topology.ParseCPUList(val)
			if err != nil {
				return s, fmt.Errorf("proc: bad Cpus_allowed_list: %v", err)
			}
			s.CpusAllowed = set
		case "Cpus_allowed":
			// Only used if the list form is absent; the list form is
			// parsed after and wins because it appears later in the file.
			if s.CpusAllowed.Empty() {
				if set, err := topology.ParseHexMask(val); err == nil {
					s.CpusAllowed = set
				}
			}
		case "voluntary_ctxt_switches":
			s.VoluntaryCtxt = u64Soft(val)
		case "nonvoluntary_ctxt_switches":
			s.NonvoluntaryCtx = u64Soft(val)
		}
	}
	if s.Name == "" && s.Pid == 0 {
		return s, fmt.Errorf("proc: status text has no recognisable fields")
	}
	return s, nil
}

// ParseMeminfo parses /proc/meminfo text.
func ParseMeminfo(text string) (Meminfo, error) {
	var m Meminfo
	seen := false
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		kb := kbSoft(strings.TrimSpace(val))
		switch key {
		case "MemTotal":
			m.MemTotalKB = kb
			seen = true
		case "MemFree":
			m.MemFreeKB = kb
		case "MemAvailable":
			m.MemAvailableKB = kb
		case "Buffers":
			m.BuffersKB = kb
		case "Cached":
			m.CachedKB = kb
		case "SwapTotal":
			m.SwapTotalKB = kb
		case "SwapFree":
			m.SwapFreeKB = kb
		case "Active":
			m.ActiveKB = kb
		case "Inactive":
			m.InactiveKB = kb
		}
	}
	if !seen {
		return m, fmt.Errorf("proc: meminfo text has no MemTotal")
	}
	return m, nil
}

// ParseTaskIO parses /proc/<pid>/io text.
func ParseTaskIO(text string) (TaskIO, error) {
	var io TaskIO
	seen := false
	for _, line := range strings.Split(text, "\n") {
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		v := u64Soft(strings.TrimSpace(val))
		switch key {
		case "rchar":
			io.RChar = v
			seen = true
		case "wchar":
			io.WChar = v
		case "syscr":
			io.SyscR = v
		case "syscw":
			io.SyscW = v
		case "read_bytes":
			io.ReadBytes = v
		case "write_bytes":
			io.WriteBytes = v
		case "cancelled_write_bytes":
			io.Cancelled = v
		}
	}
	if !seen {
		return io, fmt.Errorf("proc: io text has no rchar")
	}
	return io, nil
}

// ParseStat parses /proc/stat text.
func ParseStat(text string) (Stat, error) {
	var st Stat
	seenAgg := false
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case fields[0] == "cpu":
			c, err := parseCPURow(-1, fields[1:])
			if err != nil {
				return st, err
			}
			st.Aggregate = c
			seenAgg = true
		case strings.HasPrefix(fields[0], "cpu"):
			n, err := strconv.Atoi(fields[0][3:])
			if err != nil {
				return st, fmt.Errorf("proc: bad cpu row label %q", fields[0])
			}
			c, err := parseCPURow(n, fields[1:])
			if err != nil {
				return st, err
			}
			st.PerCPU = append(st.PerCPU, c)
		case fields[0] == "ctxt" && len(fields) > 1:
			st.Ctxt = u64Soft(fields[1])
		case fields[0] == "btime" && len(fields) > 1:
			st.BTime = u64Soft(fields[1])
		case fields[0] == "processes" && len(fields) > 1:
			st.Processes = u64Soft(fields[1])
		case fields[0] == "procs_running" && len(fields) > 1:
			st.Running = u64Soft(fields[1])
		case fields[0] == "procs_blocked" && len(fields) > 1:
			st.Blocked = u64Soft(fields[1])
		}
	}
	if !seenAgg {
		return st, fmt.Errorf("proc: stat text has no aggregate cpu row")
	}
	return st, nil
}

func parseCPURow(cpu int, fields []string) (CPUTimes, error) {
	c := CPUTimes{CPU: cpu}
	if len(fields) < 4 {
		return c, fmt.Errorf("proc: cpu row too short (%d fields)", len(fields))
	}
	dst := []*uint64{&c.User, &c.Nice, &c.System, &c.Idle, &c.IOWait, &c.IRQ, &c.SoftIRQ, &c.Steal}
	for i, d := range dst {
		if i >= len(fields) {
			break
		}
		v, err := strconv.ParseUint(fields[i], 10, 64)
		if err != nil {
			return c, fmt.Errorf("proc: bad cpu field %q: %v", fields[i], err)
		}
		*d = v
	}
	return c, nil
}

func atoiSoft(s string) int {
	v, _ := strconv.Atoi(strings.Fields(s + " 0")[0])
	return v
}

func u64Soft(s string) uint64 {
	f := strings.Fields(s)
	if len(f) == 0 {
		return 0
	}
	v, _ := strconv.ParseUint(f[0], 10, 64)
	return v
}

// kbSoft parses "1234 kB" (or bare "1234") into 1234.
func kbSoft(s string) uint64 { return u64Soft(s) }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
